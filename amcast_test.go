package amcast

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func fullMembers(ids ...ProcessID) []Member {
	out := make([]Member, len(ids))
	for i, id := range ids {
		out[i] = Member{ID: id, Proposer: true, Acceptor: true, Learner: true}
	}
	return out
}

func TestPublicAPIQuickstart(t *testing.T) {
	sys := NewSystem()
	defer sys.Close()
	if err := sys.CreateGroup(1, fullMembers(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	chans := make([]chan Delivery, 3)
	for i := 0; i < 3; i++ {
		opts := Defaults()
		opts.RetryInterval = 30 * time.Millisecond
		n, err := sys.NewNode(ProcessID(i+1), opts)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		if err := n.Join(1); err != nil {
			t.Fatal(err)
		}
		ch := make(chan Delivery, 64)
		chans[i] = ch
		if err := n.Subscribe(func(d Delivery) { ch <- d }, 1); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if err := nodes[0].Multicast(1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		select {
		case d := <-ch:
			if string(d.Data) != "hello" || d.Group != 1 {
				t.Errorf("node %d delivered %+v", i+1, d)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("node %d timed out", i+1)
		}
	}
	if nodes[0].ID() != 1 {
		t.Error("ID broken")
	}
	if nodes[0].DeliveredCount() != 1 {
		t.Error("DeliveredCount broken")
	}
	if v := nodes[0].DeliveredVector(); v[1] == 0 {
		t.Error("DeliveredVector broken")
	}
}

func TestPublicAPITwoGroupsSameOrder(t *testing.T) {
	sys := NewSystem()
	defer sys.Close()
	for g := GroupID(1); g <= 2; g++ {
		if err := sys.CreateGroup(g, fullMembers(1, 2)); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	seqs := make(map[ProcessID][]string)
	var nodes []*Node
	for i := ProcessID(1); i <= 2; i++ {
		opts := Defaults()
		opts.RetryInterval = 30 * time.Millisecond
		n, err := sys.NewNode(i, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		for g := GroupID(1); g <= 2; g++ {
			if err := n.Join(g); err != nil {
				t.Fatal(err)
			}
		}
		id := i
		if err := n.Subscribe(func(d Delivery) {
			mu.Lock()
			seqs[id] = append(seqs[id], string(d.Data))
			mu.Unlock()
		}, 1, 2); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	const perGroup = 30
	for i := 0; i < perGroup; i++ {
		if err := nodes[0].Multicast(1, []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := nodes[1].Multicast(2, []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		done := len(seqs[1]) >= 2*perGroup && len(seqs[2]) >= 2*perGroup
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("timeout: node1=%d node2=%d deliveries", len(seqs[1]), len(seqs[2]))
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 2*perGroup; i++ {
		if seqs[1][i] != seqs[2][i] {
			t.Fatalf("order diverges at %d: %q vs %q", i, seqs[1][i], seqs[2][i])
		}
	}
}

func TestPublicAPIGeoSystem(t *testing.T) {
	sys := NewGeoSystem(0.02)
	defer sys.Close()
	regions := Regions()
	if len(regions) != 4 {
		t.Fatalf("regions = %v", regions)
	}
	for i := ProcessID(1); i <= 3; i++ {
		sys.PlaceNode(i, regions[int(i-1)%len(regions)])
	}
	if err := sys.CreateGroup(1, fullMembers(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	ch := make(chan Delivery, 8)
	var nodes []*Node
	for i := ProcessID(1); i <= 3; i++ {
		opts := WANDefaults()
		opts.RetryInterval = 100 * time.Millisecond
		n, err := sys.NewNode(i, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		if err := n.Join(1); err != nil {
			t.Fatal(err)
		}
		if i == 2 {
			if err := n.Subscribe(func(d Delivery) { ch <- d }, 1); err != nil {
				t.Fatal(err)
			}
		}
		nodes = append(nodes, n)
	}
	if err := nodes[2].Multicast(1, []byte("geo")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-ch:
		if string(d.Data) != "geo" {
			t.Errorf("delivered %q", d.Data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("geo delivery timed out")
	}
}

func TestPublicAPICrashRecover(t *testing.T) {
	sys := NewSystem()
	defer sys.Close()
	if err := sys.CreateGroup(1, fullMembers(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	mk := func(id ProcessID, sink chan Delivery) *Node {
		opts := Defaults()
		opts.RetryInterval = 30 * time.Millisecond
		n, err := sys.NewNode(id, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Join(1); err != nil {
			t.Fatal(err)
		}
		if sink != nil {
			if err := n.Subscribe(func(d Delivery) { sink <- d }, 1); err != nil {
				t.Fatal(err)
			}
		}
		return n
	}
	ch2 := make(chan Delivery, 64)
	n1 := mk(1, nil)
	n2 := mk(2, ch2)
	n3 := mk(3, nil)
	defer n2.Stop()
	defer n3.Stop()

	if err := n1.Multicast(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	<-ch2

	// Crash the coordinator (node 1); the group must keep deciding.
	n1.Stop()
	sys.Crash(1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		_ = n3.Multicast(1, []byte("after"))
		select {
		case d := <-ch2:
			if string(d.Data) == "after" {
				return
			}
		case <-time.After(200 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no delivery after coordinator crash")
		}
	}
}

func TestPublicAPIValidation(t *testing.T) {
	sys := NewSystem()
	defer sys.Close()
	if err := sys.CreateGroup(1, []Member{{ID: 1}}); err == nil {
		t.Error("member without roles accepted")
	}
	if err := sys.CreateGroup(1, fullMembers(1)); err != nil {
		t.Fatal(err)
	}
	n, err := sys.NewNode(1, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if err := n.Subscribe(nil, 1); err == nil {
		t.Error("nil handler accepted")
	}
	bad := Defaults()
	bad.Durable = true
	if _, err := sys.NewNode(2, bad); err == nil {
		t.Error("Durable without DataDir accepted")
	}
}

func TestPublicAPIDurable(t *testing.T) {
	sys := NewSystem()
	defer sys.Close()
	if err := sys.CreateGroup(1, fullMembers(1)); err != nil {
		t.Fatal(err)
	}
	opts := Defaults()
	opts.Durable = true
	opts.DataDir = t.TempDir()
	opts.RetryInterval = 30 * time.Millisecond
	n, err := sys.NewNode(1, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if err := n.Join(1); err != nil {
		t.Fatal(err)
	}
	ch := make(chan Delivery, 1)
	if err := n.Subscribe(func(d Delivery) { ch <- d }, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Multicast(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("durable multicast not delivered")
	}
}

func TestSubscribeBatch(t *testing.T) {
	sys := NewSystem()
	defer sys.Close()
	members := []Member{
		{ID: 1, Proposer: true, Acceptor: true, Learner: true},
		{ID: 2, Proposer: true, Acceptor: true, Learner: true},
		{ID: 3, Proposer: true, Acceptor: true, Learner: true},
	}
	if err := sys.CreateGroup(1, members); err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 3)
	for i := ProcessID(1); i <= 3; i++ {
		n, err := sys.NewNode(i, Defaults())
		if err != nil {
			t.Fatal(err)
		}
		defer n.Stop()
		if err := n.Join(1); err != nil {
			t.Fatal(err)
		}
		nodes[i-1] = n
	}
	node := nodes[0]
	got := make(chan string, 64)
	if err := node.SubscribeBatch(func(ds []Delivery) {
		for _, d := range ds {
			got <- string(d.Data)
		}
	}, 1); err != nil {
		t.Fatal(err)
	}
	const count = 20
	for i := 0; i < count; i++ {
		if err := node.Multicast(1, []byte{'a' + byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		select {
		case s := <-got:
			if want := string([]byte{'a' + byte(i)}); s != want {
				t.Fatalf("delivery %d = %q, want %q", i, s, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out at delivery %d", i)
		}
	}
}
