// Package amcast is a Go library for atomic multicast, implementing
// Multi-Ring Paxos (Benz et al., "Building global and scalable systems
// with Atomic Multicast", Middleware 2014).
//
// Atomic multicast generalizes atomic broadcast: processes multicast
// messages to groups, subscribers deliver messages from the groups they
// choose, and delivery order is acyclic across the whole system — any two
// processes delivering the same two messages deliver them in the same
// order. This is the ordering primitive the paper argues scalable,
// strongly consistent services should be built on: state is partitioned,
// each partition maps to a group, and cross-partition requests are ordered
// by multicasting to a group all partitions subscribe to.
//
// # Quick start
//
//	sys := amcast.NewSystem()
//	defer sys.Close()
//
//	members := []amcast.Member{
//		{ID: 1, Proposer: true, Acceptor: true, Learner: true},
//		{ID: 2, Proposer: true, Acceptor: true, Learner: true},
//		{ID: 3, Proposer: true, Acceptor: true, Learner: true},
//	}
//	sys.CreateGroup(1, members)
//
//	node, _ := sys.NewNode(1, amcast.Defaults())
//	node.Join(1)
//	node.Subscribe(func(d amcast.Delivery) {
//		fmt.Printf("delivered %q from group %d\n", d.Data, d.Group)
//	}, 1)
//	node.Multicast(1, []byte("hello"))
//
// The richer building blocks — the replicated key-value store (MRP-Store),
// the distributed log (dLog), state-machine replication, recovery, and the
// benchmark harness reproducing the paper's figures — live under
// internal/; see README.md and the examples/ directory.
package amcast

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// ProcessID identifies a process.
type ProcessID uint32

// GroupID identifies a multicast group (one Ring Paxos ring each).
type GroupID uint32

// Delivery is one message delivered by atomic multicast.
type Delivery struct {
	// Group the message was multicast to.
	Group GroupID
	// Instance is the consensus instance that decided it.
	Instance uint64
	// Data is the message payload.
	Data []byte
}

// Member declares one process's roles in a group.
type Member struct {
	ID ProcessID
	// Proposer processes may multicast to the group.
	Proposer bool
	// Acceptor processes form the group's fault-tolerance quorum.
	Acceptor bool
	// Learner processes may subscribe to the group.
	Learner bool
}

// Options tunes a node's protocol parameters.
type Options struct {
	// M is the deterministic merge quota (consensus instances delivered
	// per group per round-robin turn). The paper uses 1.
	M int
	// SkipInterval is the rate-leveling interval Δ (paper: 5 ms within
	// a datacenter, 20 ms across).
	SkipInterval time.Duration
	// MaxRate is the rate-leveling maximum expected rate λ in messages
	// per second (paper: 9000 within a datacenter, 2000 across).
	MaxRate int
	// BatchBytes packs proposals into consensus instances up to this
	// size (0 disables packing).
	BatchBytes int
	// RetryInterval drives re-proposals and gap chasing.
	RetryInterval time.Duration
	// Durable stores acceptor votes in a file-backed write-ahead log
	// under DataDir instead of memory.
	Durable bool
	// DataDir is the durable log directory (required when Durable).
	DataDir string
	// DeliveryBatchMessages bounds the messages per batch handed to
	// SubscribeBatch handlers (0 uses the library default).
	DeliveryBatchMessages int
	// DeliveryBatchBytes bounds the payload bytes per delivered batch
	// (0 uses the library default).
	DeliveryBatchBytes int
}

// Defaults returns the paper's datacenter configuration.
func Defaults() Options {
	return Options{
		M:            1,
		SkipInterval: 5 * time.Millisecond,
		MaxRate:      9000,
		BatchBytes:   32 << 10,
	}
}

// WANDefaults returns the paper's cross-datacenter configuration.
func WANDefaults() Options {
	return Options{
		M:            1,
		SkipInterval: 20 * time.Millisecond,
		MaxRate:      2000,
		BatchBytes:   32 << 10,
	}
}

// System is an in-process atomic multicast fabric: an emulated network
// plus the coordination service holding group configurations. Multiple
// nodes attach to one System, each with its own ProcessID.
type System struct {
	net *transport.Network
	svc *coord.Service

	mu    sync.Mutex
	sites map[ProcessID]netem.Site
}

// NewSystem creates a fabric with zero network delay (a single host or
// switch-local cluster).
func NewSystem() *System {
	return &System{
		net:   transport.NewNetwork(nil),
		svc:   coord.NewService(),
		sites: make(map[ProcessID]netem.Site),
	}
}

// NewGeoSystem creates a fabric emulating the paper's four Amazon EC2
// regions; scale in (0, 1] shrinks the real 2014-era round-trip times.
// Place nodes with PlaceNode before creating them.
func NewGeoSystem(scale float64) *System {
	topo := netem.EC2Topology()
	topo.SetScale(scale)
	return &System{
		net:   transport.NewNetwork(topo),
		svc:   coord.NewService(),
		sites: make(map[ProcessID]netem.Site),
	}
}

// Regions lists the geo sites of NewGeoSystem in deployment order.
func Regions() []string {
	out := make([]string, len(netem.EC2Regions))
	for i, r := range netem.EC2Regions {
		out[i] = string(r)
	}
	return out
}

// PlaceNode assigns a process to a region (geo systems; default local).
func (s *System) PlaceNode(id ProcessID, region string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sites[id] = netem.Site(region)
}

// CreateGroup registers a multicast group with its member roles. Member
// order defines the ring overlay; the first alive acceptor coordinates.
func (s *System) CreateGroup(g GroupID, members []Member) error {
	ms := make([]coord.Member, 0, len(members))
	for _, m := range members {
		var roles coord.Role
		if m.Proposer {
			roles |= coord.RoleProposer
		}
		if m.Acceptor {
			roles |= coord.RoleAcceptor
		}
		if m.Learner {
			roles |= coord.RoleLearner
		}
		if roles == 0 {
			return fmt.Errorf("amcast: member %d has no roles", m.ID)
		}
		ms = append(ms, coord.Member{ID: transport.ProcessID(m.ID), Roles: roles})
	}
	return s.svc.CreateRing(transport.RingID(g), ms)
}

// Crash makes a process fail: its messages are dropped and the group
// coordinator is re-elected if needed. Use NewNode with the same id to
// model recovery.
func (s *System) Crash(id ProcessID) {
	s.net.Detach(transport.ProcessID(id))
	s.svc.MarkDown(transport.ProcessID(id))
}

// Recover marks a previously crashed process alive again (create a fresh
// Node for it to resume participation).
func (s *System) Recover(id ProcessID) {
	s.svc.MarkUp(transport.ProcessID(id))
}

// Close shuts the fabric down.
func (s *System) Close() { s.net.Close() }

// Node is one process's atomic multicast endpoint.
type Node struct {
	id   ProcessID
	core *core.Node
}

// NewNode attaches a process to the system.
func (s *System) NewNode(id ProcessID, opts Options) (*Node, error) {
	s.mu.Lock()
	site, ok := s.sites[id]
	s.mu.Unlock()
	if !ok {
		site = netem.SiteLocal
	}
	tr := s.net.Attach(transport.ProcessID(id), site)
	router := transport.NewRouter(tr)
	cfg := core.Config{
		Self:   transport.ProcessID(id),
		Router: router,
		Coord:  s.svc,
		M:      opts.M,
		Ring: core.RingOptions{
			RetryInterval: opts.RetryInterval,
			SkipEnabled:   opts.SkipInterval > 0,
			Delta:         opts.SkipInterval,
			Lambda:        opts.MaxRate,
			BatchBytes:    opts.BatchBytes,
		},
		Batch: core.BatchOptions{
			MaxMessages: opts.DeliveryBatchMessages,
			MaxBytes:    opts.DeliveryBatchBytes,
		},
	}
	if opts.Durable {
		if opts.DataDir == "" {
			return nil, errors.New("amcast: Durable requires DataDir")
		}
		dir := opts.DataDir
		cfg.NewLog = func(ring transport.RingID) (storage.Log, error) {
			wal, err := storage.OpenWAL(fmt.Sprintf("%s/ring-%d", dir, ring), storage.WALOptions{
				Mode: storage.SyncPeriodic,
			})
			if err != nil {
				// Durability was requested; failing the join beats
				// silently falling back to volatile storage.
				return nil, fmt.Errorf("amcast: open WAL for ring %d: %w", ring, err)
			}
			return wal, nil
		}
	}
	n, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Node{id: id, core: n}, nil
}

// ID returns the node's process id.
func (n *Node) ID() ProcessID { return n.id }

// Join makes the node participate in a group with its registered roles.
func (n *Node) Join(g GroupID) error {
	return n.core.Join(transport.RingID(g))
}

// Subscribe starts delivery from the given groups: handler runs for every
// message, in the deterministic merge order shared by every subscriber of
// the same group set. Call once, after joining all groups with the learner
// role. It is a thin per-message adapter over SubscribeBatch; throughput-
// sensitive subscribers should use SubscribeBatch directly.
func (n *Node) Subscribe(handler func(Delivery), groups ...GroupID) error {
	if handler == nil {
		return errors.New("amcast: nil handler")
	}
	return n.SubscribeBatch(func(ds []Delivery) {
		for _, d := range ds {
			handler(d)
		}
	}, groups...)
}

// SubscribeBatch starts delivery from the given groups, invoking handler
// with batches of consecutive messages in the deterministic merge order.
// Batches are bounded by Options.DeliveryBatchMessages/Bytes and end
// whenever the merge would otherwise wait for the network, so batching
// adds no delivery latency. The slice is reused between calls — handlers
// must not retain it. Call once, after joining all groups with the
// learner role.
func (n *Node) SubscribeBatch(handler func([]Delivery), groups ...GroupID) error {
	if handler == nil {
		return errors.New("amcast: nil handler")
	}
	gs := make([]transport.RingID, len(groups))
	for i, g := range groups {
		gs[i] = transport.RingID(g)
	}
	var buf []Delivery
	return n.core.SubscribeBatch(func(ds []core.Delivery) {
		if cap(buf) < len(ds) {
			buf = make([]Delivery, 0, cap(ds))
		}
		buf = buf[:0]
		for _, d := range ds {
			buf = append(buf, Delivery{
				Group:    GroupID(d.Group),
				Instance: d.Instance,
				Data:     d.Data,
			})
		}
		handler(buf)
		for i := range buf {
			buf[i] = Delivery{} // release payload references
		}
	}, gs...)
}

// Multicast sends data to a group. The call is asynchronous and
// best-effort: delivery is guaranteed only through the protocol's
// agreement once the message is decided, and applications retry
// end-to-end (see internal/smr for a request/response layer that does).
func (n *Node) Multicast(g GroupID, data []byte) error {
	return n.core.Multicast(transport.RingID(g), data)
}

// DeliveredCount reports messages delivered so far.
func (n *Node) DeliveredCount() uint64 { return n.core.DeliveredCount() }

// DeliveredVector reports per-group delivered consensus instances (the
// checkpoint tuple of the paper's Section 5.2).
func (n *Node) DeliveredVector() map[GroupID]uint64 {
	out := make(map[GroupID]uint64)
	for g, v := range n.core.DeliveredVector() {
		out[GroupID(g)] = v
	}
	return out
}

// Stop shuts the node down.
func (n *Node) Stop() { n.core.Stop() }
