// Package ycsb reimplements the core workloads of the Yahoo! Cloud Serving
// Benchmark (Cooper et al., SoCC 2010) used in the paper's Figure 4 to
// compare MRP-Store against Cassandra and MySQL.
//
// The six standard workloads:
//
//	A: 50% reads, 50% updates, zipfian key choice ("update heavy")
//	B: 95% reads,  5% updates, zipfian ("read mostly")
//	C: 100% reads, zipfian ("read only")
//	D: 95% reads of the latest keys, 5% inserts ("read latest")
//	E: 95% short range scans, 5% inserts ("short ranges")
//	F: 50% reads, 50% read-modify-writes, zipfian
//
// Key choosers implement YCSB's zipfian (Gray et al.'s algorithm with the
// scrambled variant), latest and uniform distributions.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// OpType enumerates workload operations.
type OpType uint8

// Workload operation types.
const (
	OpRead OpType = iota + 1
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

func (o OpType) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "READ-MODIFY-WRITE"
	default:
		return "UNKNOWN"
	}
}

// Op is one generated operation.
type Op struct {
	Type OpType
	// Key is the target record key.
	Key string
	// ScanLength is the number of records a scan touches.
	ScanLength int
	// Value is the payload for writes (nil for reads).
	Value []byte
}

// Workload names one of the six core workloads.
type Workload byte

// The six core YCSB workloads.
const (
	WorkloadA Workload = 'A'
	WorkloadB Workload = 'B'
	WorkloadC Workload = 'C'
	WorkloadD Workload = 'D'
	WorkloadE Workload = 'E'
	WorkloadF Workload = 'F'
)

// Workloads lists all six in order.
var Workloads = []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}

func (w Workload) String() string { return string(w) }

// Config parameterizes a generator.
type Config struct {
	// Workload selects the operation mix.
	Workload Workload
	// Records is the initial database size (key space).
	Records int
	// ValueSize is the payload size for writes (default 1000, YCSB's
	// 10 fields × 100 bytes).
	ValueSize int
	// MaxScanLength bounds scan lengths (default 100, like YCSB).
	MaxScanLength int
	// Seed makes generation deterministic.
	Seed int64
}

// Generator produces operations for one client goroutine. Not safe for
// concurrent use; create one per worker with distinct seeds.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *zipfian
	insertN *counter // shared across generators for D/E inserts
	value   []byte
}

// counter is a shared atomic record counter so concurrent generators
// allocate distinct new keys for inserts.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) next() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n - 1
}

func (c *counter) load() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Factory builds per-worker generators sharing the insert counter.
type Factory struct {
	cfg     Config
	insertN *counter
}

// NewFactory validates the config and returns a generator factory.
func NewFactory(cfg Config) (*Factory, error) {
	switch cfg.Workload {
	case WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF:
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %q", cfg.Workload)
	}
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("ycsb: Records must be positive")
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 1000
	}
	if cfg.MaxScanLength == 0 {
		cfg.MaxScanLength = 100
	}
	return &Factory{cfg: cfg, insertN: &counter{n: cfg.Records}}, nil
}

// Generator builds the generator for one worker.
func (f *Factory) Generator(workerSeed int64) *Generator {
	rng := rand.New(rand.NewSource(f.cfg.Seed ^ workerSeed ^ 0x9e3779b9))
	value := make([]byte, f.cfg.ValueSize)
	rng.Read(value)
	return &Generator{
		cfg:     f.cfg,
		rng:     rng,
		zipf:    newZipfian(int64(f.cfg.Records), 0.99, rng),
		insertN: f.insertN,
		value:   value,
	}
}

// Key formats record i as a YCSB-style key.
func Key(i int) string { return fmt.Sprintf("user%019d", i) }

// LoadKeys enumerates the initial keys for the load phase.
func LoadKeys(records int) []string {
	out := make([]string, records)
	for i := range out {
		out[i] = Key(i)
	}
	return out
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	switch g.cfg.Workload {
	case WorkloadA:
		if p < 0.5 {
			return Op{Type: OpRead, Key: g.zipfKey()}
		}
		return Op{Type: OpUpdate, Key: g.zipfKey(), Value: g.value}
	case WorkloadB:
		if p < 0.95 {
			return Op{Type: OpRead, Key: g.zipfKey()}
		}
		return Op{Type: OpUpdate, Key: g.zipfKey(), Value: g.value}
	case WorkloadC:
		return Op{Type: OpRead, Key: g.zipfKey()}
	case WorkloadD:
		if p < 0.95 {
			return Op{Type: OpRead, Key: g.latestKey()}
		}
		return Op{Type: OpInsert, Key: Key(g.insertN.next()), Value: g.value}
	case WorkloadE:
		if p < 0.95 {
			return Op{
				Type:       OpScan,
				Key:        g.zipfKey(),
				ScanLength: 1 + g.rng.Intn(g.cfg.MaxScanLength),
			}
		}
		return Op{Type: OpInsert, Key: Key(g.insertN.next()), Value: g.value}
	default: // WorkloadF
		if p < 0.5 {
			return Op{Type: OpRead, Key: g.zipfKey()}
		}
		return Op{Type: OpReadModifyWrite, Key: g.zipfKey(), Value: g.value}
	}
}

func (g *Generator) zipfKey() string {
	return Key(int(g.zipf.next()) % g.insertN.load())
}

// latestKey skews towards recently inserted records (workload D).
func (g *Generator) latestKey() string {
	n := g.insertN.load()
	off := int(g.zipf.next())
	if off >= n {
		off = n - 1
	}
	return Key(n - 1 - off)
}

// zipfian implements the Gray et al. incremental zipfian generator used by
// YCSB, over [0, n), with scrambling to spread popular items across the
// key space.
type zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

func zeta(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func newZipfian(n int64, theta float64, rng *rand.Rand) *zipfian {
	// For large n, approximate zeta incrementally from a reference point
	// (YCSB uses the same trick); n here is bounded by Records so a
	// direct sum is fine up to ~10M.
	zn := zeta(n, theta)
	z2 := zeta(2, theta)
	return &zipfian{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zn,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z2/zn),
		rng:   rng,
	}
}

// next returns the next zipfian-distributed value in [0, n), scrambled.
func (z *zipfian) next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var raw int64
	switch {
	case uz < 1:
		raw = 0
	case uz < 1+math.Pow(0.5, z.theta):
		raw = 1
	default:
		raw = int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if raw >= z.n {
		raw = z.n - 1
	}
	// Scramble (FNV-style) so hot keys spread over the key space.
	return int64(fnv64(uint64(raw)) % uint64(z.n))
}

func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
