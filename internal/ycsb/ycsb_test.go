package ycsb

import (
	"math/rand"
	"strings"
	"testing"
)

func mixOf(t *testing.T, w Workload, n int) map[OpType]int {
	t.Helper()
	f, err := NewFactory(Config{Workload: w, Records: 10000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	g := f.Generator(1)
	mix := make(map[OpType]int)
	for i := 0; i < n; i++ {
		op := g.Next()
		mix[op.Type]++
	}
	return mix
}

func assertFraction(t *testing.T, mix map[OpType]int, op OpType, n int, want, tol float64) {
	t.Helper()
	got := float64(mix[op]) / float64(n)
	if got < want-tol || got > want+tol {
		t.Errorf("%v fraction = %.3f, want %.2f±%.2f", op, got, want, tol)
	}
}

func TestWorkloadMixes(t *testing.T) {
	const n = 20000
	tests := []struct {
		w     Workload
		check func(t *testing.T, mix map[OpType]int)
	}{
		{WorkloadA, func(t *testing.T, m map[OpType]int) {
			assertFraction(t, m, OpRead, n, 0.5, 0.02)
			assertFraction(t, m, OpUpdate, n, 0.5, 0.02)
		}},
		{WorkloadB, func(t *testing.T, m map[OpType]int) {
			assertFraction(t, m, OpRead, n, 0.95, 0.01)
			assertFraction(t, m, OpUpdate, n, 0.05, 0.01)
		}},
		{WorkloadC, func(t *testing.T, m map[OpType]int) {
			assertFraction(t, m, OpRead, n, 1.0, 0.001)
		}},
		{WorkloadD, func(t *testing.T, m map[OpType]int) {
			assertFraction(t, m, OpRead, n, 0.95, 0.01)
			assertFraction(t, m, OpInsert, n, 0.05, 0.01)
		}},
		{WorkloadE, func(t *testing.T, m map[OpType]int) {
			assertFraction(t, m, OpScan, n, 0.95, 0.01)
			assertFraction(t, m, OpInsert, n, 0.05, 0.01)
		}},
		{WorkloadF, func(t *testing.T, m map[OpType]int) {
			assertFraction(t, m, OpRead, n, 0.5, 0.02)
			assertFraction(t, m, OpReadModifyWrite, n, 0.5, 0.02)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.w.String(), func(t *testing.T) {
			tt.check(t, mixOf(t, tt.w, n))
		})
	}
}

func TestFactoryValidation(t *testing.T) {
	if _, err := NewFactory(Config{Workload: 'Z', Records: 10}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := NewFactory(Config{Workload: WorkloadA, Records: 0}); err == nil {
		t.Error("zero records accepted")
	}
}

func TestKeysWellFormed(t *testing.T) {
	f, err := NewFactory(Config{Workload: WorkloadA, Records: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := f.Generator(2)
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if !strings.HasPrefix(op.Key, "user") {
			t.Fatalf("malformed key %q", op.Key)
		}
	}
	keys := LoadKeys(10)
	if len(keys) != 10 || keys[0] != Key(0) {
		t.Errorf("LoadKeys = %v", keys[:2])
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := newZipfian(1000, 0.99, rng)
	counts := make(map[int64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.next()
		if v < 0 || v >= 1000 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	// The hottest key should receive far more than uniform share (0.1%).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / n; frac < 0.02 {
		t.Errorf("hottest key fraction = %.4f, want > 0.02 (zipfian skew)", frac)
	}
	// But the tail must still be covered reasonably.
	if len(counts) < 500 {
		t.Errorf("only %d distinct keys of 1000 sampled", len(counts))
	}
}

func TestInsertsAllocateFreshKeys(t *testing.T) {
	f, err := NewFactory(Config{Workload: WorkloadD, Records: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	g1, g2 := f.Generator(1), f.Generator(2)
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		for _, g := range []*Generator{g1, g2} {
			op := g.Next()
			if op.Type != OpInsert {
				continue
			}
			if seen[op.Key] {
				t.Fatalf("insert key %q allocated twice", op.Key)
			}
			seen[op.Key] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no inserts generated")
	}
}

func TestScanLengthsBounded(t *testing.T) {
	f, err := NewFactory(Config{Workload: WorkloadE, Records: 1000, MaxScanLength: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	g := f.Generator(1)
	for i := 0; i < 2000; i++ {
		op := g.Next()
		if op.Type == OpScan && (op.ScanLength < 1 || op.ScanLength > 50) {
			t.Fatalf("scan length %d out of bounds", op.ScanLength)
		}
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	mk := func() []Op {
		f, _ := NewFactory(Config{Workload: WorkloadA, Records: 1000, Seed: 9})
		g := f.Generator(4)
		out := make([]Op, 100)
		for i := range out {
			out[i] = g.Next()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Key != b[i].Key {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestOpTypeString(t *testing.T) {
	if OpRead.String() != "READ" || OpType(99).String() != "UNKNOWN" {
		t.Error("OpType strings broken")
	}
	if WorkloadA.String() != "A" {
		t.Error("workload string broken")
	}
}
