package netem

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// LinkFault describes injected misbehaviour on one directed link. Faults
// compose with the topology's nominal shaping: a message first samples
// drop/duplicate, then has Delay plus a uniform draw from [0,Jitter) added
// to its propagation time.
type LinkFault struct {
	// Drop is the probability in [0,1] that a message is lost.
	Drop float64
	// Dup is the probability in [0,1] that a message is delivered twice.
	Dup float64
	// Delay is extra fixed one-way delay.
	Delay time.Duration
	// Jitter adds a uniform random delay in [0,Jitter).
	Jitter time.Duration
}

// FaultOutcome is the sampled fate of a single message.
type FaultOutcome struct {
	Drop  bool
	Dup   bool
	Extra time.Duration
}

// FaultPlan is a mutable set of injected link faults and partitions,
// consulted by the transport on every send while any fault is active.
// Links are keyed by raw process ids (uint32) so the plan stays free of a
// transport dependency. All methods are safe for concurrent use; sampling
// uses a seeded rng so campaigns replay deterministically given the same
// message interleaving.
type FaultPlan struct {
	mu       sync.Mutex
	rng      *rand.Rand
	faults   map[[2]uint32]LinkFault
	cuts     map[[2]uint32]bool
	isolated map[uint32]bool
	active   atomic.Int32 // len(faults)+len(cuts)+len(isolated); lock-free emptiness check
}

// NewFaultPlan creates an empty plan with a deterministic rng seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		rng:      rand.New(rand.NewSource(seed)),
		faults:   make(map[[2]uint32]LinkFault),
		cuts:     make(map[[2]uint32]bool),
		isolated: make(map[uint32]bool),
	}
}

// Active reports whether any fault or cut is installed. The transport calls
// this on every send; it must stay cheap and lock-free.
func (p *FaultPlan) Active() bool { return p.active.Load() != 0 }

func (p *FaultPlan) recount() {
	p.active.Store(int32(len(p.faults) + len(p.cuts) + len(p.isolated)))
}

// SetLink installs (or replaces) the fault on the from→to link.
func (p *FaultPlan) SetLink(from, to uint32, f LinkFault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults[[2]uint32{from, to}] = f
	p.recount()
}

// SetLinkBoth installs the fault in both directions between a and b.
func (p *FaultPlan) SetLinkBoth(a, b uint32, f LinkFault) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults[[2]uint32{a, b}] = f
	p.faults[[2]uint32{b, a}] = f
	p.recount()
}

// ClearLink removes any fault on the from→to link (cuts are separate).
func (p *FaultPlan) ClearLink(from, to uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.faults, [2]uint32{from, to})
	p.recount()
}

// Cut severs the from→to direction entirely (an asymmetric partition if
// the reverse direction stays up).
func (p *FaultPlan) Cut(from, to uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cuts[[2]uint32{from, to}] = true
	p.recount()
}

// CutBoth severs both directions between a and b.
func (p *FaultPlan) CutBoth(a, b uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cuts[[2]uint32{a, b}] = true
	p.cuts[[2]uint32{b, a}] = true
	p.recount()
}

// Partition severs every link between the two sets, both directions.
// Processes absent from both sets are unaffected.
func (p *FaultPlan) Partition(a, b []uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			p.cuts[[2]uint32{x, y}] = true
			p.cuts[[2]uint32{y, x}] = true
		}
	}
	p.recount()
}

// PartitionOneWay severs only the from-set → to-set direction, modelling
// an asymmetric failure where one side still hears the other.
func (p *FaultPlan) PartitionOneWay(from, to []uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, x := range from {
		for _, y := range to {
			p.cuts[[2]uint32{x, y}] = true
		}
	}
	p.recount()
}

// Heal removes the cut on the from→to direction.
func (p *FaultPlan) Heal(from, to uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.cuts, [2]uint32{from, to})
	p.recount()
}

// Isolate severs every link touching the process, both directions,
// regardless of peer — the node falls off the network wholesale (a NIC
// or top-of-rack failure) without having to enumerate its peers.
func (p *FaultPlan) Isolate(id uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.isolated[id] = true
	p.recount()
}

// Unisolate reconnects a process isolated with Isolate. Pairwise cuts
// and link faults involving it remain in force.
func (p *FaultPlan) Unisolate(id uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.isolated, id)
	p.recount()
}

// HealAll removes every cut, isolation and link fault.
func (p *FaultPlan) HealAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = make(map[[2]uint32]LinkFault)
	p.cuts = make(map[[2]uint32]bool)
	p.isolated = make(map[uint32]bool)
	p.recount()
}

// Sample draws the fate of one message on the from→to link. Cut links
// always drop.
func (p *FaultPlan) Sample(from, to uint32) FaultOutcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := [2]uint32{from, to}
	if p.cuts[key] || p.isolated[from] || p.isolated[to] {
		return FaultOutcome{Drop: true}
	}
	f, ok := p.faults[key]
	if !ok {
		return FaultOutcome{}
	}
	var oc FaultOutcome
	if f.Drop > 0 && p.rng.Float64() < f.Drop {
		oc.Drop = true
		return oc
	}
	if f.Dup > 0 && p.rng.Float64() < f.Dup {
		oc.Dup = true
	}
	oc.Extra = f.Delay
	if f.Jitter > 0 {
		oc.Extra += time.Duration(p.rng.Int63n(int64(f.Jitter)))
	}
	return oc
}
