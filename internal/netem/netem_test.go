package netem

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLinkTransmission(t *testing.T) {
	tests := []struct {
		name string
		link Link
		size int
		want time.Duration
	}{
		{"unlimited", Link{}, 1 << 20, 0},
		{"zero size", Link{Bandwidth: 1000}, 0, 0},
		{"1KB at 1MB/s", Link{Bandwidth: 1 << 20}, 1 << 10, time.Second / 1024},
		{"negative size", Link{Bandwidth: 1000}, -5, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.link.Transmission(tt.size); got != tt.want {
				t.Errorf("Transmission(%d) = %v, want %v", tt.size, got, tt.want)
			}
		})
	}
}

func TestTopologyZeroValueDelay(t *testing.T) {
	topo := NewTopology()
	if d := topo.Delay("a", "b", 100); d != 0 {
		t.Errorf("unconfigured path should have zero delay, got %v", d)
	}
}

func TestSetRTTSymmetric(t *testing.T) {
	topo := NewTopology()
	topo.SetRTT("a", "b", 100*time.Millisecond, 0, 0)
	ab := topo.Link("a", "b")
	ba := topo.Link("b", "a")
	if ab.Latency != 50*time.Millisecond || ba.Latency != 50*time.Millisecond {
		t.Errorf("one-way latencies = %v, %v; want 50ms each", ab.Latency, ba.Latency)
	}
}

func TestScaleShrinksDelay(t *testing.T) {
	topo := NewTopology()
	topo.SetRTT("a", "b", 100*time.Millisecond, 0, 0)
	topo.SetScale(0.1)
	d := topo.Delay("a", "b", 0)
	if d != 5*time.Millisecond {
		t.Errorf("scaled delay = %v, want 5ms", d)
	}
	topo.SetScale(0) // invalid resets to 1
	if topo.Scale() != 1.0 {
		t.Errorf("SetScale(0) should reset to 1.0, got %v", topo.Scale())
	}
}

func TestDelayIncludesJitterBounds(t *testing.T) {
	topo := NewTopology()
	topo.SetLink("a", "b", Link{Latency: 10 * time.Millisecond, Jitter: 2 * time.Millisecond})
	for i := 0; i < 200; i++ {
		d := topo.Delay("a", "b", 0)
		if d < 10*time.Millisecond || d >= 12*time.Millisecond {
			t.Fatalf("delay %v outside [10ms, 12ms)", d)
		}
	}
}

func TestEC2TopologyCoversAllRegionPairs(t *testing.T) {
	topo := EC2Topology()
	for i, a := range EC2Regions {
		for _, b := range EC2Regions[i+1:] {
			if topo.Link(a, b).Latency == 0 {
				t.Errorf("missing link %s -> %s", a, b)
			}
			if topo.Link(b, a).Latency == 0 {
				t.Errorf("missing link %s -> %s", b, a)
			}
		}
	}
	// Intra-region is much faster than inter-region.
	intra := topo.Link(SiteEUWest, SiteEUWest).Latency
	inter := topo.Link(SiteEUWest, SiteUSEast).Latency
	if intra >= inter {
		t.Errorf("intra-region latency %v should be below inter-region %v", intra, inter)
	}
}

func TestEC2GeoRatios(t *testing.T) {
	topo := EC2Topology()
	// eu-west <-> us-west-1 is the longest path; us-west-1 <-> us-west-2 the
	// shortest inter-region one. The protocol benchmarks rely on this
	// structure, so pin it down.
	longest := topo.Link(SiteEUWest, SiteUSWest).Latency
	shortest := topo.Link(SiteUSWest, SiteUSWest2).Latency
	if longest <= shortest {
		t.Fatalf("expected eu-west<->us-west-1 (%v) > us-west-1<->us-west-2 (%v)", longest, shortest)
	}
	if ratio := float64(longest) / float64(shortest); ratio < 4 {
		t.Errorf("latency ratio %v too small; topology lost geo structure", ratio)
	}
}

func TestLANTopology(t *testing.T) {
	topo := LANTopology("h1", "h2", "h3")
	if l := topo.Link("h1", "h3").Latency; l != 50*time.Microsecond {
		t.Errorf("LAN one-way latency = %v, want 50µs", l)
	}
	if topo.Link("h2", "h1").Bandwidth == 0 {
		t.Error("LAN link should have finite bandwidth")
	}
}

func TestDelayMonotoneInSize(t *testing.T) {
	topo := NewTopology()
	topo.SetLink("a", "b", Link{Latency: time.Millisecond, Bandwidth: 1 << 20})
	f := func(a, b uint16) bool {
		small, large := int(a), int(a)+int(b)
		return topo.Delay("a", "b", small) <= topo.Delay("a", "b", large)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
