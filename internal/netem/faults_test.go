package netem

import (
	"testing"
	"time"
)

func TestFaultPlanCutsAndHeal(t *testing.T) {
	p := NewFaultPlan(7)
	if p.Active() {
		t.Fatal("fresh plan should be inactive")
	}
	p.Partition([]uint32{1, 2}, []uint32{3})
	if !p.Active() {
		t.Fatal("partition should activate plan")
	}
	for _, pair := range [][2]uint32{{1, 3}, {3, 1}, {2, 3}, {3, 2}} {
		if !p.Sample(pair[0], pair[1]).Drop {
			t.Fatalf("link %v should be cut", pair)
		}
	}
	if p.Sample(1, 2).Drop {
		t.Fatal("intra-set link must stay up")
	}
	p.HealAll()
	if p.Active() || p.Sample(1, 3).Drop {
		t.Fatal("heal should restore all links")
	}
}

func TestFaultPlanAsymmetric(t *testing.T) {
	p := NewFaultPlan(7)
	p.PartitionOneWay([]uint32{1}, []uint32{2})
	if !p.Sample(1, 2).Drop {
		t.Fatal("1->2 should be cut")
	}
	if p.Sample(2, 1).Drop {
		t.Fatal("2->1 should be up (asymmetric)")
	}
}

func TestFaultPlanSampling(t *testing.T) {
	p := NewFaultPlan(7)
	p.SetLink(1, 2, LinkFault{Drop: 0.5})
	drops := 0
	for i := 0; i < 1000; i++ {
		if p.Sample(1, 2).Drop {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("drop rate %d/1000 far from 0.5", drops)
	}
	p.ClearLink(1, 2)
	p.SetLink(1, 2, LinkFault{Dup: 1, Delay: 3 * time.Millisecond, Jitter: time.Millisecond})
	oc := p.Sample(1, 2)
	if !oc.Dup || oc.Extra < 3*time.Millisecond || oc.Extra > 4*time.Millisecond {
		t.Fatalf("unexpected outcome %+v", oc)
	}
}
