// Package netem models wide-area and datacenter network links so that the
// protocols in this repository can be evaluated under realistic latency and
// bandwidth conditions without physical testbeds.
//
// The paper's "global experiments" ran across four Amazon EC2 regions
// (eu-west-1, us-east-1, us-west-1, us-west-2). EC2Topology reproduces the
// inter-region round-trip times of that era so the geo benchmarks exhibit
// the same latency structure. All delays can be scaled down uniformly with
// Topology.Scale so that tests and benchmarks complete quickly while
// preserving latency ratios between links.
package netem

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Site names a failure/latency domain (a datacenter or EC2 region).
type Site string

// Paper deployment sites (Amazon EC2 regions used in Section 8.4.2).
const (
	SiteLocal   Site = "local" // same datacenter, 0.1 ms RTT 10 Gbps LAN
	SiteEUWest  Site = "eu-west-1"
	SiteUSEast  Site = "us-east-1"
	SiteUSWest  Site = "us-west-1"
	SiteUSWest2 Site = "us-west-2"
)

// Link describes the characteristics of a unidirectional network path.
type Link struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Jitter is the maximum additional random delay, sampled uniformly
	// from [0, Jitter).
	Jitter time.Duration
	// Bandwidth is the link capacity in bytes per second. Zero means
	// unlimited (no serialization delay).
	Bandwidth int64
}

// Transmission returns the serialization delay for a message of size bytes.
func (l Link) Transmission(size int) time.Duration {
	if l.Bandwidth <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(l.Bandwidth) * float64(time.Second))
}

// Topology maps ordered site pairs to link characteristics. The zero value
// is a topology where every path has zero delay.
type Topology struct {
	mu    sync.RWMutex
	links map[[2]Site]Link
	// scale multiplies all delays; 1.0 when unset via NewTopology.
	scale float64
	rng   *rand.Rand
}

// NewTopology returns an empty topology with scale 1.0.
func NewTopology() *Topology {
	return &Topology{
		links: make(map[[2]Site]Link),
		scale: 1.0,
		rng:   rand.New(rand.NewSource(42)),
	}
}

// SetLink installs the link characteristics for messages flowing from one
// site to another. The reverse direction must be set separately (SetRTT sets
// both).
func (t *Topology) SetLink(from, to Site, l Link) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.links[[2]Site{from, to}] = l
}

// SetRTT installs symmetric links between two sites with the given
// round-trip time; each direction gets half the RTT as one-way latency.
func (t *Topology) SetRTT(a, b Site, rtt time.Duration, jitter time.Duration, bandwidth int64) {
	l := Link{Latency: rtt / 2, Jitter: jitter, Bandwidth: bandwidth}
	t.SetLink(a, b, l)
	t.SetLink(b, a, l)
}

// SetScale multiplies every sampled delay by f. Benchmarks use f < 1 to
// shrink wall-clock time while preserving the ratio between links.
func (t *Topology) SetScale(f float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f <= 0 {
		f = 1
	}
	t.scale = f
}

// Scale reports the current delay multiplier.
func (t *Topology) Scale() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.scale
}

// Link returns the link characteristics from one site to another. Paths
// within a site or without an installed link have zero delay.
func (t *Topology) Link(from, to Site) Link {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.links[[2]Site{from, to}]
}

// Delay samples the total one-way delay (propagation + jitter + transmission)
// for a message of size bytes sent from one site to another, scaled by the
// topology's scale factor.
func (t *Topology) Delay(from, to Site, size int) time.Duration {
	t.mu.Lock()
	l := t.links[[2]Site{from, to}]
	d := l.Latency
	if l.Jitter > 0 {
		d += time.Duration(t.rng.Int63n(int64(l.Jitter)))
	}
	d += l.Transmission(size)
	d = time.Duration(float64(d) * t.scale)
	t.mu.Unlock()
	return d
}

// String summarizes the topology for logs.
func (t *Topology) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return fmt.Sprintf("netem.Topology{links: %d, scale: %.3f}", len(t.links), t.scale)
}

// LANTopology returns the paper's local-experiment network: a 10 Gbps
// switch with 0.1 ms round-trip time between any pair of hosts.
func LANTopology(sites ...Site) *Topology {
	t := NewTopology()
	const rtt = 100 * time.Microsecond
	const bw = 10e9 / 8 // 10 Gbps in bytes/sec
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			t.SetRTT(a, b, rtt, 10*time.Microsecond, int64(bw))
		}
	}
	return t
}

// EC2Regions are the four regions used in the paper's horizontal
// scalability experiment (Figure 7), in the order partitions are added.
var EC2Regions = []Site{SiteEUWest, SiteUSWest, SiteUSEast, SiteUSWest2}

// ec2RTT holds approximate 2014-era inter-region round-trip times.
var ec2RTT = map[[2]Site]time.Duration{
	{SiteEUWest, SiteUSEast}:  80 * time.Millisecond,
	{SiteEUWest, SiteUSWest}:  160 * time.Millisecond,
	{SiteEUWest, SiteUSWest2}: 150 * time.Millisecond,
	{SiteUSEast, SiteUSWest}:  80 * time.Millisecond,
	{SiteUSEast, SiteUSWest2}: 70 * time.Millisecond,
	{SiteUSWest, SiteUSWest2}: 25 * time.Millisecond,
}

// EC2Topology returns the paper's global-experiment network: four EC2
// regions with realistic wide-area RTTs, ~1 Gbps inter-region bandwidth and
// LAN characteristics within each region.
func EC2Topology() *Topology {
	t := NewTopology()
	const wanBW = 1e9 / 8 // ~1 Gbps in bytes/sec
	for pair, rtt := range ec2RTT {
		t.SetRTT(pair[0], pair[1], rtt, rtt/20, int64(wanBW))
	}
	// Intra-region paths behave like the LAN.
	for _, s := range EC2Regions {
		t.SetRTT(s, s, 300*time.Microsecond, 30*time.Microsecond, int64(10e9/8))
	}
	return t
}
