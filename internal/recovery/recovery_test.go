package recovery

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"testing/quick"

	"amcast/internal/transport"
)

func TestVectorRoundTrip(t *testing.T) {
	v := Vector{1: 100, 2: 90, 7: 5}
	got, rest, err := DecodeVector(EncodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("unexpected trailing bytes: %d", len(rest))
	}
	if !reflect.DeepEqual(v, got) {
		t.Errorf("round trip: got %v want %v", got, v)
	}
}

func TestVectorRoundTripEmpty(t *testing.T) {
	got, _, err := DecodeVector(EncodeVector(Vector{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected empty vector, got %v", got)
	}
}

func TestVectorDecodeCorrupt(t *testing.T) {
	full := EncodeVector(Vector{1: 5, 2: 3})
	for i := 0; i < len(full); i++ {
		if _, _, err := DecodeVector(full[:i]); err == nil && i < len(full) {
			t.Fatalf("accepted truncation at %d", i)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Vector
		want int
	}{
		{"equal", Vector{1: 5, 2: 3}, Vector{1: 5, 2: 3}, 0},
		{"first group decides", Vector{1: 6, 2: 3}, Vector{1: 5, 2: 9}, 1},
		{"a older", Vector{1: 4, 2: 3}, Vector{1: 5, 2: 3}, -1},
		{"same partition later", Vector{1: 10, 2: 10}, Vector{1: 10, 2: 9}, 1},
		{"missing group treated as zero", Vector{1: 1}, Vector{1: 1, 2: 0}, 0},
		{"empty vs nonempty", Vector{}, Vector{1: 1}, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Compare(tt.a, tt.b); got != tt.want {
				t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a1, a2, b1, b2 uint32) bool {
		a := Vector{1: uint64(a1), 2: uint64(a2)}
		b := Vector{1: uint64(b1), 2: uint64(b2)}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := Checkpoint{
		Vector: Vector{1: 42, 3: 41},
		State:  []byte("the replicated state machine image"),
	}
	got, err := DecodeCheckpoint(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Vector, got.Vector) || !bytes.Equal(c.State, got.State) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, c)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	c := Checkpoint{Vector: Vector{1: 1}, State: []byte("state")}
	buf := c.Encode()
	buf[len(buf)/2] ^= 0xff
	if _, err := DecodeCheckpoint(buf); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	if _, err := DecodeCheckpoint(nil); err == nil {
		t.Error("empty buffer accepted")
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	if _, ok := s.Latest(); ok {
		t.Error("empty store returned a checkpoint")
	}
	if err := s.Save(Checkpoint{Vector: Vector{1: 1}, State: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(Checkpoint{Vector: Vector{1: 2}, State: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	c, ok := s.Latest()
	if !ok || c.Vector[1] != 2 || string(c.State) != "b" {
		t.Errorf("Latest = %+v, %v", c, ok)
	}
	if s.Saves() != 2 {
		t.Errorf("Saves = %d", s.Saves())
	}
	// Mutating the returned checkpoint must not affect the store.
	c.State[0] = 'X'
	c2, _ := s.Latest()
	if string(c2.State) != "b" {
		t.Error("Latest must return copies")
	}
}

func TestFileStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		err := s.Save(Checkpoint{Vector: Vector{1: i, 2: i - 1}, State: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	c, ok := s.Latest()
	if !ok || c.Vector[1] != 5 {
		t.Fatalf("Latest = %+v, %v", c, ok)
	}
	// Only 2 files retained.
	if nums := s.listNums(); len(nums) != 2 {
		t.Errorf("retained %d checkpoints, want 2", len(nums))
	}

	// A new store over the same dir picks up where we left.
	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, ok := s2.Latest()
	if !ok || c2.Vector[1] != 5 || c2.State[0] != 5 {
		t.Errorf("reopened Latest = %+v, %v", c2, ok)
	}
}

func TestFileStoreFallsBackOnCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(Checkpoint{Vector: Vector{1: 1}, State: []byte("good")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(Checkpoint{Vector: Vector{1: 2}, State: []byte("newest")}); err != nil {
		t.Fatal(err)
	}
	nums := s.listNums()
	// Corrupt the newest file.
	if err := writeJunk(s.path(nums[len(nums)-1])); err != nil {
		t.Fatal(err)
	}
	c, ok := s.Latest()
	if !ok || string(c.State) != "good" {
		t.Errorf("fallback Latest = %+v, %v; want the previous checkpoint", c, ok)
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1: 1}
	c := v.Clone()
	c[1] = 99
	if v[1] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestPredicate1TotalOrderProperty(t *testing.T) {
	// For vectors respecting Predicate 1 over groups {1,2}
	// (v[1] >= v[2]), Compare must be a total order consistent with
	// componentwise dominance.
	f := func(a1off, a2, b1off, b2 uint16) bool {
		a := Vector{1: uint64(a2) + uint64(a1off), 2: uint64(a2)}
		b := Vector{1: uint64(b2) + uint64(b1off), 2: uint64(b2)}
		cmp := Compare(a, b)
		if a[1] >= b[1] && a[2] >= b[2] && cmp < 0 {
			return false
		}
		if a[1] <= b[1] && a[2] <= b[2] && cmp > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func writeJunk(path string) error {
	return os.WriteFile(path, []byte("junkjunkjunk"), 0o644)
}

var _ = transport.RingID(0)

// TestFileStoreCrashBeforeRename: a crash between the tmp write and the
// rename leaves a stale .tmp behind. Reopening must fall back to the
// previous intact checkpoint and sweep the leftover.
func TestFileStoreCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(Checkpoint{Vector: Vector{1: 1}, State: []byte("intact")}); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: the next checkpoint's tmp exists (possibly
	// torn), the rename never happened.
	stale := s.path(2) + ".tmp"
	if err := os.WriteFile(stale, []byte("half-writt"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s2.Latest()
	if !ok || string(c.State) != "intact" {
		t.Fatalf("Latest after crash = %+v, %v; want the previous checkpoint", c, ok)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale .tmp not swept on reopen")
	}
	// The store keeps working past the crash point.
	if err := s2.Save(Checkpoint{Vector: Vector{1: 2}, State: []byte("post-crash")}); err != nil {
		t.Fatal(err)
	}
	if c, ok := s2.Latest(); !ok || string(c.State) != "post-crash" {
		t.Errorf("Latest after post-crash save = %+v, %v", c, ok)
	}
}

// TestFileStoreTornNewestFallsBack: a torn newest checkpoint (crash around
// the rename/dir-sync boundary before its data was fully durable) must not
// mask the previous intact one.
func TestFileStoreTornNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(Checkpoint{Vector: Vector{1: 1}, State: []byte("previous")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(Checkpoint{Vector: Vector{1: 2}, State: []byte("newest-but-torn")}); err != nil {
		t.Fatal(err)
	}
	nums := s.listNums()
	newest := s.path(nums[len(nums)-1])
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, buf[:len(buf)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s2.Latest()
	if !ok || string(c.State) != "previous" {
		t.Fatalf("Latest with torn newest = %+v, %v; want the previous checkpoint", c, ok)
	}
}
