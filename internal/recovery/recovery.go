// Package recovery implements the checkpointing substrate for Multi-Ring
// Paxos recovery (Section 5.2).
//
// A replica's checkpoint is identified by a tuple k_p of consensus
// instances — one entry per subscribed multicast group, in ascending
// group-id order. Because learners deliver groups round-robin in group-id
// order, Predicate 1 (x < y ⇒ k[x]_p ≥ k[y]_p) holds for every checkpoint
// a replica takes, which totally orders the checkpoints of all replicas in
// the same partition. That total order is what lets a recovering replica
// pick "the most up-to-date checkpoint" from a quorum Q_R (Predicate 3)
// and still find all later instances at the acceptors (Predicates 2–5).
package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"amcast/internal/transport"
)

// Vector is a checkpoint identifier: delivered-instance high-water marks
// per multicast group (the tuple k_p of Section 5.2).
type Vector map[transport.RingID]uint64

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for g, i := range v {
		out[g] = i
	}
	return out
}

// Compare orders two checkpoint tuples of the same partition. Tuples taken
// by replicas of one partition are totally ordered (Predicate 1), so
// comparing the entries in ascending group order lexicographically is
// consistent: the first differing group decides.
func Compare(a, b Vector) int {
	groups := make([]transport.RingID, 0, len(a)+len(b))
	seen := make(map[transport.RingID]bool)
	for g := range a {
		if !seen[g] {
			groups = append(groups, g)
			seen[g] = true
		}
	}
	for g := range b {
		if !seen[g] {
			groups = append(groups, g)
			seen[g] = true
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	for _, g := range groups {
		av, bv := a[g], b[g]
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
	}
	return 0
}

// EncodeVector serializes a vector in ascending group order.
func EncodeVector(v Vector) []byte {
	groups := make([]transport.RingID, 0, len(v))
	for g := range v {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	buf := make([]byte, 0, 4+12*len(groups))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(groups)))
	buf = append(buf, tmp[:4]...)
	for _, g := range groups {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(g))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:8], v[g])
		buf = append(buf, tmp[:8]...)
	}
	return buf
}

// ErrCorrupt reports an unparsable checkpoint artifact.
var ErrCorrupt = errors.New("recovery: corrupt checkpoint data")

// DecodeVector parses EncodeVector output and returns the remaining bytes.
func DecodeVector(buf []byte) (Vector, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < 12*n {
		return nil, nil, ErrCorrupt
	}
	v := make(Vector, n)
	for i := 0; i < n; i++ {
		g := transport.RingID(binary.LittleEndian.Uint32(buf[:4]))
		inst := binary.LittleEndian.Uint64(buf[4:12])
		v[g] = inst
		buf = buf[12:]
	}
	return v, buf, nil
}

// Checkpoint pairs a state snapshot with the tuple identifying it.
type Checkpoint struct {
	Vector Vector
	State  []byte
}

// Encode serializes a checkpoint with integrity check.
func (c Checkpoint) Encode() []byte {
	vec := EncodeVector(c.Vector)
	buf := make([]byte, 0, len(vec)+8+len(c.State))
	buf = append(buf, vec...)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(c.State)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, c.State...)
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(buf))
	return append(buf, tmp[:4]...)
}

// DecodeCheckpoint parses Encode output.
func DecodeCheckpoint(buf []byte) (Checkpoint, error) {
	if len(buf) < 4 {
		return Checkpoint{}, ErrCorrupt
	}
	body, sumBytes := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(sumBytes) {
		return Checkpoint{}, ErrCorrupt
	}
	vec, rest, err := DecodeVector(body)
	if err != nil {
		return Checkpoint{}, err
	}
	if len(rest) < 4 {
		return Checkpoint{}, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != n {
		return Checkpoint{}, ErrCorrupt
	}
	state := make([]byte, n)
	copy(state, rest)
	return Checkpoint{Vector: vec, State: state}, nil
}

// Store persists checkpoints. Implementations must be safe for concurrent
// use.
type Store interface {
	// Save durably stores a checkpoint (synchronously, as the paper's
	// replicas write checkpoints synchronously to allow log trimming).
	Save(Checkpoint) error
	// Latest returns the newest stored checkpoint.
	Latest() (Checkpoint, bool)
}

// MemStore is an in-memory Store for tests and simulations.
type MemStore struct {
	mu     sync.Mutex
	latest Checkpoint
	has    bool
	saves  int
}

// NewMemStore returns an empty in-memory checkpoint store.
func NewMemStore() *MemStore { return &MemStore{} }

var _ Store = (*MemStore)(nil)

// Save keeps the newest checkpoint.
func (s *MemStore) Save(c Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latest = Checkpoint{Vector: c.Vector.Clone(), State: append([]byte(nil), c.State...)}
	s.has = true
	s.saves++
	return nil
}

// Latest returns the newest checkpoint.
func (s *MemStore) Latest() (Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.has {
		return Checkpoint{}, false
	}
	return Checkpoint{Vector: s.latest.Vector.Clone(), State: append([]byte(nil), s.latest.State...)}, true
}

// Saves reports how many checkpoints were taken (test instrumentation).
func (s *MemStore) Saves() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves
}

// FileStore persists checkpoints as numbered files in a directory, keeping
// the most recent two (the previous one survives a torn write of the
// newest).
type FileStore struct {
	mu  sync.Mutex
	dir string
	seq int
}

// NewFileStore opens (creating if needed) a checkpoint directory and
// sweeps stale .tmp files left by a crash between the temp write and the
// rename — they are at best duplicates of an intact checkpoint and at
// worst torn writes, never the newest durable state.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recovery: create checkpoint dir: %w", err)
	}
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	s := &FileStore{dir: dir}
	nums := s.listNums()
	if len(nums) > 0 {
		s.seq = nums[len(nums)-1]
	}
	return s, nil
}

var _ Store = (*FileStore)(nil)

func (s *FileStore) listNums() []int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var nums []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".ckpt"))
		if err == nil {
			nums = append(nums, n)
		}
	}
	sort.Ints(nums)
	return nums
}

func (s *FileStore) path(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("checkpoint-%09d.ckpt", n))
}

// Save writes the checkpoint synchronously (write + fsync + rename +
// directory fsync) and prunes all but the two newest files. The directory
// fsync matters: without it a crash after Save returns can lose the
// rename, and the trim protocol may already have discarded consensus
// instances on the strength of this "durable" checkpoint.
func (s *FileStore) Save(c Checkpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	tmp := s.path(s.seq) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(c.Encode()); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path(s.seq)); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	nums := s.listNums()
	for len(nums) > 2 {
		_ = os.Remove(s.path(nums[0]))
		nums = nums[1:]
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Windows cannot flush directory handles (and NTFS metadata
// updates do not need it), so it is a no-op there.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }()
	return d.Sync()
}

// Latest loads the newest intact checkpoint, falling back to the previous
// one if the newest is corrupt.
func (s *FileStore) Latest() (Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nums := s.listNums()
	for i := len(nums) - 1; i >= 0; i-- {
		buf, err := os.ReadFile(s.path(nums[i]))
		if err != nil {
			continue
		}
		c, err := DecodeCheckpoint(buf)
		if err != nil {
			continue
		}
		return c, true
	}
	return Checkpoint{}, false
}
