// Package lint implements the repo's protocol-invariant static analysis:
// a small go/analysis-style framework (self-contained — the module has no
// external dependencies, so golang.org/x/tools is deliberately not used)
// plus four analyzers enforcing the invariants the system's safety rests
// on: deterministic execution scopes, a non-blocking ring event loop,
// exhaustive transport.Kind dispatch, and log-before-forward release of
// staged sends. See cmd/lint for the multichecker entry point.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked module package under analysis.
type Package struct {
	Path  string
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
}

// Program is the whole type-checked module: every requested package plus
// all module-internal dependencies, with a shared FileSet so positions are
// comparable across packages. Analyzers that need interprocedural facts
// (call-graph reachability from annotated roots) compute them once per
// Program and cache them here.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // topological order, dependencies first
	ByPath   map[string]*Package

	dirs  *directives
	graph *callGraph
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (resolved by the go
// tool relative to dir, which must lie inside the module). Standard-
// library dependencies are imported from compiler export data out of the
// build cache; module packages are parsed and type-checked from source so
// analyzers can see function bodies across the whole module.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Standard,DepOnly,Export,GoFiles,Imports,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var mod []*listedPkg // non-standard: type-check from source
	exports := make(map[string]string)
	byPath := make(map[string]*listedPkg)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		pp := p
		byPath[p.ImportPath] = &pp
		if p.Standard {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			continue
		}
		mod = append(mod, &pp)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		ByPath: make(map[string]*Package),
	}
	imp := &progImporter{
		prog:    prog,
		gc:      gcImporter(prog.Fset, exports),
		exports: exports,
	}

	for _, lp := range topoSort(mod) {
		var files []*ast.File
		for _, f := range lp.GoFiles {
			af, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, f), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, af)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		p := &Package{Path: lp.ImportPath, Pkg: tpkg, Info: info, Files: files}
		prog.ByPath[lp.ImportPath] = p
		if !lp.DepOnly {
			prog.Packages = append(prog.Packages, p)
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// topoSort orders module packages dependencies-first so each type-check
// finds its module imports already checked.
func topoSort(pkgs []*listedPkg) []*listedPkg {
	byPath := make(map[string]*listedPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	var out []*listedPkg
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *listedPkg)
	visit = func(p *listedPkg) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	// Deterministic traversal order.
	sorted := append([]*listedPkg(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		visit(p)
	}
	return out
}

// gcImporter builds a compiler-export-data importer backed by the build
// cache paths `go list -export` reported.
func gcImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// progImporter resolves imports during type-checking: module packages come
// from the already-checked Program, everything else from export data.
type progImporter struct {
	prog    *Program
	gc      types.Importer
	exports map[string]string
}

func (i *progImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.prog.ByPath[path]; ok {
		return p.Pkg, nil
	}
	return i.gc.Import(path)
}
