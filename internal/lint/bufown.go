package lint

import (
	"go/ast"
	"go/types"
)

// BufownAnalyzer enforces the pooled-buffer ownership discipline on the
// zero-allocation delivery path (PR 10): every reference obtained from
// bufpool.Get or bufpool.Copy must be accounted for before the function
// lets go of it. In code reachable from an //lint:pooled root, a
// Get/Copy result must either
//
//   - be released in the same function (a Release call on the value,
//     direct or deferred), or
//   - have its ownership transferred: passed to a call, stored into a
//     field, slice, map, or composite literal, assigned onward to
//     another holder, or returned.
//
// A result that is only ever used as a method receiver (b.Bytes(),
// b.Len()) — or not used at all — leaks its reference the moment the
// function returns: the pool counts it outstanding forever and the
// leakcheck gate fails. The analyzer is intraprocedural per function
// (refcounts cannot be tracked statically across calls), so a transfer
// is trusted: the receiving holder is expected to release, and the
// //lint:pooled annotation on the root marks the whole path as subject
// to that contract.
var BufownAnalyzer = &Analyzer{
	Name: "bufown",
	Doc:  "pooled buffers must be released or ownership-transferred before escaping",
	Run:  runBufown,
}

func runBufown(pass *Pass) {
	dirs := pass.Prog.directives()
	if len(dirs.pooled) == 0 {
		return
	}
	g := pass.Prog.callgraph()
	// Refs survive goroutine hops (a ref riding a channel into another
	// goroutine is still owned), so follow go-edges too.
	reach := g.reachable(sortedFuncs(dirs.pooled), true)

	for fn, root := range reach {
		n := g.nodes[fn]
		if n == nil || n.pkg != pass.Pkg {
			continue
		}
		// The pool's own internals hand out the references being
		// tracked; the contract starts at its callers.
		if fn.Pkg() != nil && fn.Pkg().Name() == "bufpool" {
			continue
		}
		checkBufown(pass, n, root)
	}
}

// checkBufown applies the ownership rule inside one function.
func checkBufown(pass *Pass, n *funcNode, root *types.Func) {
	// Pass 1: find every acquisition — a bufpool.Get/Copy call that is
	// discarded outright, or whose result is bound to a local variable.
	type acquisition struct {
		call *ast.CallExpr
		obj  types.Object // nil when the result is discarded
	}
	var acqs []acquisition
	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && isPoolAcquire(n.pkg, call) {
				acqs = append(acqs, acquisition{call: call})
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isPoolAcquire(n.pkg, call) {
					continue
				}
				// With a multi-value RHS the i-th LHS receives the i-th
				// RHS; a single call RHS can only be the pool call itself.
				if i >= len(x.Lhs) {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok {
					if obj := n.pkg.Info.Defs[id]; obj != nil {
						acqs = append(acqs, acquisition{call: call, obj: obj})
						continue
					}
					if obj := n.pkg.Info.Uses[id]; obj != nil {
						// Reassignment of an existing local: the old
						// value's refcount is that value's problem; track
						// the new acquisition under the same object.
						acqs = append(acqs, acquisition{call: call, obj: obj})
					}
				}
				// Non-identifier LHS (field, index): the store itself is
				// the ownership transfer.
			}
		case *ast.ValueSpec:
			for i, v := range x.Values {
				call, ok := ast.Unparen(v).(*ast.CallExpr)
				if !ok || !isPoolAcquire(n.pkg, call) || i >= len(x.Names) {
					continue
				}
				if obj := n.pkg.Info.Defs[x.Names[i]]; obj != nil {
					acqs = append(acqs, acquisition{call: call, obj: obj})
				}
			}
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}

	// Pass 2: a parent map, so each use of a tracked variable can be
	// classified by its syntactic context.
	parent := make(map[ast.Node]ast.Node)
	ast.Inspect(n.decl, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		for _, c := range childNodes(node) {
			parent[c] = node
		}
		return true
	})

	for _, a := range acqs {
		if a.obj == nil {
			pass.Reportf(a.call.Pos(), "pooled buffer from bufpool.%s is discarded: the reference leaks immediately (path rooted at %s)",
				acquireName(n.pkg, a.call), root.FullName())
			continue
		}
		if !discharged(n, parent, a.obj) {
			pass.Reportf(a.call.Pos(), "pooled buffer %s escapes %s without a Release or ownership transfer (path rooted at %s)",
				a.obj.Name(), n.fn.Name(), root.FullName())
		}
	}
}

// discharged reports whether any use of obj inside the function releases
// the buffer or transfers its ownership.
func discharged(n *funcNode, parent map[ast.Node]ast.Node, obj types.Object) bool {
	ok := false
	ast.Inspect(n.decl, func(node ast.Node) bool {
		if ok {
			return false
		}
		id, isIdent := node.(*ast.Ident)
		if !isIdent || n.pkg.Info.Uses[id] != obj {
			return true
		}
		switch p := parent[id].(type) {
		case *ast.SelectorExpr:
			// A method/field access on the buffer. Only Release
			// discharges; Retain, Bytes, Len etc. keep the ref live.
			if p.X == id && p.Sel.Name == "Release" {
				ok = true
			}
		case *ast.CallExpr:
			// Bare argument: the reference is handed to the callee.
			for _, arg := range p.Args {
				if arg == id {
					ok = true
				}
			}
		case *ast.ReturnStmt:
			ok = true
		case *ast.AssignStmt:
			// On the RHS of an assignment the ref moves to the new
			// holder (a field, map slot, or follow-up local).
			for _, rhs := range p.Rhs {
				if rhs == id {
					ok = true
				}
			}
		case *ast.CompositeLit, *ast.KeyValueExpr, *ast.IndexExpr:
			ok = true
		}
		return true
	})
	return ok
}

// isPoolAcquire matches calls to Get or Copy declared in a package named
// bufpool (the real pool, or fixture doubles of it).
func isPoolAcquire(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeOf(pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "bufpool" {
		return false
	}
	return fn.Name() == "Get" || fn.Name() == "Copy"
}

func acquireName(pkg *Package, call *ast.CallExpr) string {
	if fn := calleeOf(pkg, call); fn != nil {
		return fn.Name()
	}
	return "Get"
}

// childNodes returns the direct children of node, via a one-level
// Inspect.
func childNodes(node ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(node, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
