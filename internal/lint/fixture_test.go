package lint

import (
	"regexp"
	"strings"
	"testing"
)

// The fixture convention mirrors analysistest: a `// want` comment with
// one or more backtick-quoted regexps expects matching diagnostics on
// its line. Every diagnostic must be expected and every expectation must
// fire; failing fixtures prove each analyzer still catches its
// violation class, passing fixtures pin down what must stay legal.

const fixtureRoot = "./testdata/src/"

var wantRx = regexp.MustCompile("`([^`]+)`")

type wantKey struct {
	file string
	line int
}

// collectWants parses // want comments from every analyzed file.
func collectWants(t *testing.T, prog *Program) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
						rx, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						k := wantKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], rx)
					}
				}
			}
		}
	}
	return wants
}

// runFixture loads the named fixture packages, runs the analyzers, and
// checks the diagnostics against the fixtures' want comments.
func runFixture(t *testing.T, analyzers []*Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, p := range pkgs {
		patterns[i] = fixtureRoot + p
	}
	prog, err := Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", pkgs, err)
	}
	diags := Run(prog, analyzers, Options{})
	wants := collectWants(t, prog)

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		k := wantKey{d.Pos.Filename, d.Pos.Line}
		ok := false
		for _, rx := range wants[k] {
			if rx.MatchString(d.Message) {
				matched[rx] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, rxs := range wants {
		for _, rx := range rxs {
			if !matched[rx] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, rx)
			}
		}
	}
}

func TestDeterminismFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{DeterminismAnalyzer}, "determfail", "determpass")
}

func TestLoopblockFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{LoopblockAnalyzer}, "loopblockfail", "loopblockpass")
}

func TestKindswitchFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{KindswitchAnalyzer}, "kindswitchfail", "kindswitchpass")
}

func TestLogBeforeForwardFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{LogBeforeForwardAnalyzer}, "logfwdfail", "logfwdpass")
}

func TestBufownFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{BufownAnalyzer}, "bufownfail", "bufownpass")
}

// TestFullSuiteOnFixtures runs all analyzers together over every
// fail/pass fixture, proving the analyzers do not interfere (an
// eventloop root in the logfwd fixtures must not trip loopblock, and
// vice versa).
func TestFullSuiteOnFixtures(t *testing.T) {
	runFixture(t, All(),
		"determfail", "determpass",
		"loopblockfail", "loopblockpass",
		"kindswitchfail", "kindswitchpass",
		"logfwdfail", "logfwdpass",
		"bufownfail", "bufownpass",
	)
}

// TestAllowHygiene checks the framework's suppression rules: an allow
// with no reason suppresses its diagnostic but is itself reported, and a
// reasoned allow that suppresses nothing is reported as stale.
func TestAllowHygiene(t *testing.T) {
	prog, err := Load(".", fixtureRoot+"allowcases")
	if err != nil {
		t.Fatalf("loading allowcases: %v", err)
	}
	diags := Run(prog, []*Analyzer{DeterminismAnalyzer}, Options{ReportUnusedAllows: true})
	var got []string
	for _, d := range diags {
		if d.Analyzer != "lint" {
			t.Errorf("suppressed diagnostic leaked: %s", d)
			continue
		}
		got = append(got, d.Message)
	}
	if len(got) != 2 {
		t.Fatalf("want 2 hygiene diagnostics, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "missing a reason") {
		t.Errorf("first hygiene diagnostic = %q, want missing-reason report", got[0])
	}
	if !strings.Contains(got[1], "suppresses nothing") {
		t.Errorf("second hygiene diagnostic = %q, want stale-allow report", got[1])
	}
}

// TestRepoIsClean is the acceptance gate in test form: the analyzer
// suite must exit clean over the whole module, with no unexplained and
// no stale suppressions.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := Run(prog, All(), Options{ReportUnusedAllows: true})
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestAnnotationRoots pins the protocol scopes the suite guards: if a
// refactor renames or drops one of these roots, the lint gate would
// silently stop checking it — fail loudly instead.
func TestAnnotationRoots(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	dirs := prog.directives()
	if len(dirs.eventloop) == 0 {
		t.Error("no //lint:eventloop roots found: the ring event loop is unguarded")
	}
	if len(dirs.release) == 0 {
		t.Error("no //lint:release function found: log-before-forward is unguarded")
	}
	if len(dirs.pooled) == 0 {
		t.Error("no //lint:pooled roots found: pooled-buffer ownership is unguarded")
	}
	var det []string
	for fn := range dirs.deterministic {
		det = append(det, fn.FullName())
	}
	for _, need := range []string{
		"core.Node).merge",
		"store.SM).ExecuteBatch",
		"dlog.SM).ExecuteBatch",
		"smr.Applier).Apply",
		"smr.Replica).deliverBatch",
	} {
		found := false
		for _, name := range det {
			if strings.Contains(name, need) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no //lint:deterministic root matching %q (have %v)", need, det)
		}
	}
}
