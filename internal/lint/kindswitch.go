package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// KindswitchAnalyzer enforces exhaustive message dispatch: every switch
// whose tag is the transport.Kind enum must either handle every declared
// Kind constant or carry an explicit default clause. Adding a message
// kind without wiring it through the routers and handlers then fails
// lint instead of silently dropping traffic.
//
// The enum is identified structurally — a defined type named Kind in a
// package named transport — so the analyzer also works against fixture
// packages.
var KindswitchAnalyzer = &Analyzer{
	Name: "kindswitch",
	Doc:  "requires transport.Kind switches to be exhaustive or explicitly defaulted",
	Run:  runKindswitch,
}

func runKindswitch(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			sw, ok := node.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.Pkg.Info.TypeOf(sw.Tag)
			named := kindEnumType(tagType)
			if named == nil {
				return true
			}
			all := enumConstants(named)
			if len(all) == 0 {
				return true
			}
			handled := make(map[string]bool)
			hasDefault := false
			for _, clause := range sw.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if c := constName(pass.Pkg.Info, e); c != "" {
						handled[c] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, c := range all {
				if !handled[c.Name()] {
					missing = append(missing, c.Name())
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch on %s.Kind is not exhaustive and has no default: missing %s — handle them or add an explicit default stating why they cannot arrive here",
					named.Obj().Pkg().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
}

// kindEnumType returns t as the transport Kind enum type, or nil.
func kindEnumType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Name() != "transport" {
		return nil
	}
	return named
}

// enumConstants lists the constants of the enum type declared in its
// package, ordered by value.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		vi, _ := constant.Uint64Val(out[i].Val())
		vj, _ := constant.Uint64Val(out[j].Val())
		return vi < vj
	})
	return out
}

// constName resolves a case expression to the constant it names.
func constName(info *types.Info, e ast.Expr) string {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	if c, ok := obj.(*types.Const); ok {
		return c.Name()
	}
	return ""
}
