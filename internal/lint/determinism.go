package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// DeterminismAnalyzer enforces replica determinism: every function
// reachable from a //lint:deterministic root (state-machine apply paths,
// the core merge, snapshot/WAL/checkpoint encoders) must produce the same
// results on every replica given the same inputs. It flags:
//
//   - time.Now / time.Since / time.Until — wall-clock reads diverge
//     across replicas;
//   - any use of math/rand or math/rand/v2;
//   - iteration over a map unless the function shows sort evidence (a
//     sort.* / slices.Sort* call) or the loop body is order-insensitive
//     (map deletes, map-index writes, integer commutative accumulation,
//     ifs thereof);
//   - floating-point compound accumulation inside loops — float addition
//     is not associative, so accumulation order changes the result.
//
// `go`-launched callees are traversed too: work spawned from a
// deterministic scope still feeds replicated state.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "flags nondeterminism reachable from //lint:deterministic roots",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	dirs := pass.Prog.directives()
	roots := sortedFuncs(dirs.deterministic)
	if len(roots) == 0 {
		return
	}
	g := pass.Prog.callgraph()
	reach := g.reachable(roots, true)
	for fn, root := range reach {
		n := g.nodes[fn]
		if n == nil || n.pkg != pass.Pkg {
			continue
		}
		checkDeterminism(pass, n, root)
	}
}

func checkDeterminism(pass *Pass, n *funcNode, root *types.Func) {
	info := n.pkg.Info
	sorted := hasSortEvidence(n)
	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			callee := calleeOf(n.pkg, x)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch callee.Pkg().Path() {
			case "time":
				switch callee.Name() {
				case "Now", "Since", "Until":
					pass.Reportf(x.Pos(), "call to time.%s in deterministic scope (reachable from %s): wall-clock reads diverge across replicas",
						callee.Name(), root.FullName())
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(x.Pos(), "use of %s.%s in deterministic scope (reachable from %s): randomness diverges across replicas",
					callee.Pkg().Name(), callee.Name(), root.FullName())
			}
		case *ast.RangeStmt:
			checkFloatAccum(pass, info, x.Body, root)
			t := info.TypeOf(x.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sorted || orderInsensitiveBody(info, x.Body) {
				return true
			}
			pass.Reportf(x.Pos(), "map iteration in deterministic scope (reachable from %s): iteration order is random — collect and sort the keys, or keep the body order-insensitive",
				root.FullName())
		case *ast.ForStmt:
			checkFloatAccum(pass, info, x.Body, root)
		}
		return true
	})
}

// checkFloatAccum flags compound floating-point accumulation directly in
// a loop body (nested loops re-check their own bodies).
func checkFloatAccum(pass *Pass, info *types.Info, body *ast.BlockStmt, root *types.Func) {
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			continue
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			continue
		}
		if t := info.TypeOf(as.Lhs[0]); t != nil && isFloat(t) {
			pass.Reportf(as.Pos(), "floating-point accumulation in a loop in deterministic scope (reachable from %s): float addition is not associative — accumulate integers or fix the order explicitly",
				root.FullName())
		}
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// hasSortEvidence reports whether the function calls into sort/slices
// sorting — taken as evidence that map-derived data is ordered before it
// feeds state or serialized bytes.
func hasSortEvidence(n *funcNode) bool {
	for _, callee := range append(append([]*types.Func(nil), n.calls...), n.goCalls...) {
		pkg := callee.Pkg()
		if pkg == nil {
			continue
		}
		if pkg.Path() == "sort" {
			return true
		}
		if pkg.Path() == "slices" && len(callee.Name()) >= 4 && callee.Name()[:4] == "Sort" {
			return true
		}
	}
	return false
}

// orderInsensitiveBody reports whether executing the loop body for the
// map's entries in any order yields the same final state: map deletes,
// map-index writes, integer commutative compound assignment, increments,
// and ifs/blocks composed of those.
func orderInsensitiveBody(info *types.Info, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		if !orderInsensitiveStmt(info, stmt) {
			return false
		}
	}
	return true
}

func orderInsensitiveStmt(info *types.Info, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		// delete(m, k) only.
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && b.Name() == "delete"
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative and exact for integers only.
			for _, lhs := range s.Lhs {
				t := info.TypeOf(lhs)
				if t == nil || isFloat(t) {
					return false
				}
			}
			return true
		case token.ASSIGN:
			// Writing distinct map slots commutes across iterations.
			for _, lhs := range s.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					return false
				}
				t := info.TypeOf(ix.X)
				if t == nil {
					return false
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return false
				}
			}
			return true
		}
		return false
	case *ast.IfStmt:
		if s.Init != nil || s.Else != nil {
			return false
		}
		return orderInsensitiveBody(info, s.Body)
	case *ast.BlockStmt:
		return orderInsensitiveBody(info, s)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

func sortedFuncs(set map[*types.Func]bool) []*types.Func {
	out := make([]*types.Func, 0, len(set))
	for fn := range set {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}
