package lint

import (
	"go/ast"
	"go/types"
)

// callGraph is the static call graph over every function declared with a
// body in the analyzed module. Edges are resolved through types.Info, so
// only statically known callees appear: direct function calls, concrete
// method calls, and references to named functions passed as values
// (assumed to be invoked synchronously by their consumer — conservative
// for determinism, and in practice correct for the sort.Slice /
// VisitBatch-style callbacks the hot paths use). Interface method calls
// resolve to the interface's *types.Func, which has no body here and is
// therefore a dead end; the analyzers lean on that deliberately (e.g. the
// sanctioned storage.Log.PutBatch call in the ring's release function is
// an interface call, so WAL internals are not dragged into the event-loop
// reachability set).
//
// Calls launched with `go` are kept as separate edges: a goroutine
// spawned from the event loop does not block the loop, but work spawned
// inside a deterministic scope still feeds replicated state.
type callGraph struct {
	nodes map[*types.Func]*funcNode
}

type funcNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	pkg     *Package
	calls   []*types.Func // same-goroutine edges (incl. defers, func-lit bodies)
	goCalls []*types.Func // callees launched via `go`
}

// callgraph builds (once) the program-wide call graph.
func (prog *Program) callgraph() *callGraph {
	if prog.graph != nil {
		return prog.graph
	}
	g := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, pkg := range prog.allPackages() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &funcNode{fn: fn, decl: fd, pkg: pkg}
				collectEdges(pkg, fd.Body, false, n)
				g.nodes[fn] = n
			}
		}
	}
	prog.graph = g
	return g
}

// collectEdges walks body attributing call edges to n. Function literals
// are inlined into the enclosing declaration (their bodies run on the
// same goroutine unless launched with `go`); inGo marks subtrees that
// execute on a spawned goroutine. Every identifier resolving to a
// *types.Func adds an edge, which covers calls, method calls, and
// function/method values passed as callbacks in one rule (duplicates are
// harmless — reachability is a set computation).
func collectEdges(pkg *Package, body ast.Node, inGo bool, n *funcNode) {
	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			// The callee runs on a new goroutine; its arguments are
			// evaluated here. Walk arguments normally, the callee (and a
			// launched func-lit body) as go-edges.
			if fn := calleeOf(pkg, x.Call); fn != nil {
				n.goCalls = append(n.goCalls, fn)
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				collectEdges(pkg, lit.Body, true, n)
			}
			for _, arg := range x.Call.Args {
				collectEdges(pkg, arg, inGo, n)
			}
			return false
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				n.addEdge(fn, inGo)
			}
		}
		return true
	})
}

func (n *funcNode) addEdge(fn *types.Func, inGo bool) {
	if inGo {
		n.goCalls = append(n.goCalls, fn)
	} else {
		n.calls = append(n.calls, fn)
	}
}

// calleeOf resolves a call expression to the *types.Func it statically
// invokes (nil for func-value calls, conversions, and builtins).
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// reachable computes the functions reachable from roots. includeGo also
// follows `go`-launched edges (determinism wants them; loopblock must
// not — a spawned goroutine cannot block the loop).
func (g *callGraph) reachable(roots []*types.Func, includeGo bool) map[*types.Func]*types.Func {
	// Value is the root each function was first reached from, for
	// diagnostic attribution.
	seen := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := seen[r]; !ok {
			seen[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		n := g.nodes[fn]
		if n == nil {
			continue
		}
		edges := n.calls
		if includeGo {
			edges = append(append([]*types.Func(nil), edges...), n.goCalls...)
		}
		for _, callee := range edges {
			if _, ok := seen[callee]; !ok {
				seen[callee] = seen[fn]
				queue = append(queue, callee)
			}
		}
	}
	return seen
}
