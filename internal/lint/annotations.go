package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The annotation surface, scanned from comments:
//
//	//lint:deterministic            (function doc) determinism root: the
//	                                function and everything it calls must
//	                                be replay-deterministic
//	//lint:eventloop                (function doc) loopblock root: the
//	                                function runs on the ring event loop
//	//lint:release                  (function doc) the one sanctioned
//	                                place staged sends are transmitted,
//	                                after the WAL write succeeds
//	//lint:pooled                   (function doc) bufown root: the
//	                                function (and everything it calls)
//	                                handles refcounted pool buffers, so
//	                                every bufpool.Get/Copy result must be
//	                                released or have its ownership
//	                                transferred before it goes dead
//	//lint:allow <analyzer> <reason> suppress <analyzer> diagnostics on
//	                                the same line, the line below the
//	                                directive, or (in a function doc) the
//	                                whole function; the reason is
//	                                mandatory
type directives struct {
	deterministic map[*types.Func]bool
	eventloop     map[*types.Func]bool
	release       map[*types.Func]bool
	pooled        map[*types.Func]bool
	allows        []*allowDirective
}

type allowDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	file     string
	line     int
	// fnStart/fnEnd bound the enclosing function's lines when the
	// directive sits in a function doc comment (0,0 otherwise).
	fnStart, fnEnd int
	used           bool
}

// directives scans (once) every module package for lint annotations.
func (prog *Program) directives() *directives {
	if prog.dirs != nil {
		return prog.dirs
	}
	d := &directives{
		deterministic: make(map[*types.Func]bool),
		eventloop:     make(map[*types.Func]bool),
		release:       make(map[*types.Func]bool),
		pooled:        make(map[*types.Func]bool),
	}
	for _, pkg := range prog.allPackages() {
		for _, f := range pkg.Files {
			inDoc := make(map[*ast.Comment]bool)
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				for _, c := range fd.Doc.List {
					inDoc[c] = true
					verb, rest := parseDirective(c.Text)
					switch verb {
					case "":
						continue
					case "deterministic":
						if fn != nil {
							d.deterministic[fn] = true
						}
					case "eventloop":
						if fn != nil {
							d.eventloop[fn] = true
						}
					case "release":
						if fn != nil {
							d.release[fn] = true
						}
					case "pooled":
						if fn != nil {
							d.pooled[fn] = true
						}
					case "allow":
						al := newAllow(prog.Fset, c, rest)
						al.fnStart = prog.Fset.Position(fd.Pos()).Line
						al.fnEnd = prog.Fset.Position(fd.End()).Line
						d.allows = append(d.allows, al)
					}
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if inDoc[c] {
						continue
					}
					if verb, rest := parseDirective(c.Text); verb == "allow" {
						d.allows = append(d.allows, newAllow(prog.Fset, c, rest))
					}
				}
			}
		}
	}
	prog.dirs = d
	return d
}

// allPackages returns every type-checked module package, including
// dependency-only ones (annotations in a dep must still be honored when
// analyzing a subset of packages).
func (prog *Program) allPackages() []*Package {
	out := make([]*Package, 0, len(prog.ByPath))
	for _, p := range prog.ByPath {
		out = append(out, p)
	}
	return out
}

func newAllow(fset *token.FileSet, c *ast.Comment, rest string) *allowDirective {
	name, reason, _ := strings.Cut(rest, " ")
	pos := fset.Position(c.Pos())
	return &allowDirective{
		analyzer: name,
		reason:   strings.TrimSpace(reason),
		pos:      pos,
		file:     pos.Filename,
		line:     pos.Line,
	}
}

// parseDirective splits a `//lint:<verb> <rest>` comment; verb is ""
// for non-directive comments.
func parseDirective(text string) (verb, rest string) {
	t := strings.TrimPrefix(text, "//")
	t = strings.TrimSpace(t)
	if !strings.HasPrefix(t, "lint:") {
		return "", ""
	}
	t = strings.TrimPrefix(t, "lint:")
	verb, rest, _ = strings.Cut(t, " ")
	return verb, strings.TrimSpace(rest)
}

// allowFor returns the directive suppressing d, or nil.
func (ds *directives) allowFor(d Diagnostic) *allowDirective {
	for _, al := range ds.allows {
		if al.analyzer != d.Analyzer || al.file != d.Pos.Filename {
			continue
		}
		if al.fnEnd != 0 && al.fnStart <= d.Pos.Line && d.Pos.Line <= al.fnEnd {
			return al
		}
		if al.line == d.Pos.Line || al.line == d.Pos.Line-1 {
			return al
		}
	}
	return nil
}
