// Package allowcases exercises the framework's suppression hygiene: an
// allow with no reason is itself a finding, and a reasoned allow that
// suppresses nothing is reported as stale.
package allowcases

import "time"

// Stamp suppresses its clock read without giving a reason — the
// suppression works, but the framework reports the missing reason.
//
//lint:deterministic
func Stamp() int64 {
	//lint:allow determinism
	return time.Now().UnixNano()
}

// Pure has nothing to suppress; the allow below is stale.
//
//lint:deterministic
func Pure(x int) int {
	//lint:allow determinism left over from a refactor
	return x * 2
}
