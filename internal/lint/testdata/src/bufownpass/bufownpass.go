// Package bufownpass pins down the ownership shapes that must stay
// legal: release in scope, deferred release, transfer by call, store,
// append, assignment, composite literal, and return.
package bufownpass

import "amcast/internal/lint/testdata/src/bufpool"

// ReleaseLocal releases the buffer after the single copy out.
//
//lint:pooled
func ReleaseLocal(p []byte) []byte {
	b := bufpool.Copy(p)
	out := append([]byte(nil), b.Bytes()...)
	b.Release()
	return out
}

// DeferredRelease releases on every exit path via defer.
//
//lint:pooled
func DeferredRelease(p []byte) []byte {
	b := bufpool.Copy(p)
	defer b.Release()
	return append([]byte(nil), b.Bytes()...)
}

type holder struct {
	bufs []*bufpool.Buf
	one  *bufpool.Buf
}

// Stash transfers ownership into a longer-lived holder by append.
//
//lint:pooled
func (h *holder) Stash(n int) {
	b := bufpool.Get(n)
	h.bufs = append(h.bufs, b)
}

// Store transfers ownership by field assignment.
//
//lint:pooled
func (h *holder) Store(n int) {
	b := bufpool.Get(n)
	h.one = b
}

// Transfer hands the reference to the sink, which now owns it.
//
//lint:pooled
func Transfer(n int, sink func(*bufpool.Buf)) {
	b := bufpool.Get(n)
	sink(b)
}

// Give returns the reference to the caller.
//
//lint:pooled
func Give(n int) *bufpool.Buf {
	return bufpool.Get(n)
}

// GiveNamed binds then returns — same transfer, different shape.
//
//lint:pooled
func GiveNamed(n int) *bufpool.Buf {
	b := bufpool.Get(n)
	return b
}

type wrapped struct{ buf *bufpool.Buf }

// Wrap transfers ownership into a composite literal.
//
//lint:pooled
func Wrap(n int) wrapped {
	b := bufpool.Get(n)
	return wrapped{buf: b}
}

// Swap replaces a block with a fresh one, releasing the old — the
// readLoop refill shape.
//
//lint:pooled
func Swap(cur *bufpool.Buf, n int) *bufpool.Buf {
	nb := bufpool.Get(n)
	cur.Release()
	cur = nb
	return cur
}
