// Package determpass holds deterministic-scope code the analyzer must
// accept: sorted map iteration, order-insensitive loop bodies, integer
// accumulation, and a reasoned allow.
package determpass

import (
	"sort"
	"time"
)

// EncodeSorted iterates a map but shows sort evidence: the keys are
// collected and ordered before they feed the output bytes.
//
//lint:deterministic
func EncodeSorted(ops map[string][]byte) []byte {
	keys := make([]string, 0, len(ops))
	for k := range ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf []byte
	for _, k := range keys {
		buf = append(buf, k...)
		buf = append(buf, ops[k]...)
	}
	return buf
}

// CountAndTrim's map loops are order-insensitive: integer accumulation,
// deletes, and map-slot writes commute across iterations.
//
//lint:deterministic
func CountAndTrim(seen map[string]int, dead map[string]bool, floor int) int {
	total := 0
	for _, c := range seen {
		total += c
	}
	for k := range dead {
		delete(seen, k)
	}
	for k := range seen {
		if seen[k] < floor {
			dead[k] = true
		}
	}
	return total
}

// SumInts accumulates integers in a loop — exact and associative, unlike
// the float case.
//
//lint:deterministic
func SumInts(xs []int64) int64 {
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Stamp reads the clock inside a deterministic scope, but the reading is
// local telemetry with a documented suppression.
//
//lint:deterministic
func Stamp(gauge *int64) {
	start := time.Now() //lint:allow determinism fixture telemetry: the duration feeds a local gauge, never replicated state
	work()
	*gauge = int64(time.Since(start)) //lint:allow determinism fixture telemetry: the duration feeds a local gauge, never replicated state
}

func work() {}
