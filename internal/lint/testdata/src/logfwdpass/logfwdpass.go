// Package logfwdpass holds the sanctioned log-before-forward shape.
package logfwdpass

import "amcast/internal/lint/testdata/src/transport"

// node stages messages on the loop and releases them after the WAL write.
type node struct {
	conn   transport.Conn
	log    transport.Log
	staged []transport.Message
	wal    [][]byte
}

// Loop stages and then releases through the one sanctioned function.
//
//lint:eventloop
func (n *node) Loop(m transport.Message) {
	n.stage(m)
	n.commitStaged()
}

// stage queues a message for the post-WAL release.
func (n *node) stage(m transport.Message) {
	n.staged = append(n.staged, m)
	n.wal = append(n.wal, m.Data)
}

// commitStaged is the release function: the group-commit WAL write is
// checked, with an early return on failure, before anything leaves the
// node.
//
//lint:release
func (n *node) commitStaged() {
	if err := n.log.PutBatch(n.wal); err != nil {
		n.staged = n.staged[:0]
		n.wal = n.wal[:0]
		return
	}
	_ = n.conn.SendBatch(n.staged)
	n.staged = n.staged[:0]
	n.wal = n.wal[:0]
}
