// Package kindswitchpass holds Kind dispatch the kindswitch analyzer
// must accept: exhaustive switches, explicit defaults, and switches over
// unrelated types.
package kindswitchpass

import "amcast/internal/lint/testdata/src/transport"

// Handle covers every declared kind.
func Handle(m transport.Message) int {
	switch m.Kind {
	case transport.KindA:
		return 1
	case transport.KindB:
		return 2
	case transport.KindC:
		return 3
	}
	return 0
}

// HandleDefault drops unknown kinds explicitly.
func HandleDefault(m transport.Message) int {
	switch m.Kind {
	case transport.KindA:
		return 1
	default:
		// Stray traffic on a shared mailbox: dropping is safe under
		// fair-lossy transport semantics.
		return 0
	}
}

// other is a local enum the analyzer must not confuse with the
// transport Kind.
type other byte

const (
	otherA other = iota
	otherB
)

// HandleOther switches over an unrelated enum; no exhaustiveness is
// demanded.
func HandleOther(o other) bool {
	switch o {
	case otherA:
		return true
	}
	return false
}
