// Package determfail holds code the determinism analyzer must flag.
package determfail

import (
	"math/rand"
	"time"
)

// Apply is a deterministic root with three violations of its own.
//
//lint:deterministic
func Apply(ops map[string][]byte) []byte {
	ts := time.Now() // want `call to time\.Now in deterministic scope`
	var buf []byte
	for k, v := range ops { // want `map iteration in deterministic scope`
		buf = append(buf, k...)
		buf = append(buf, v...)
	}
	buf = append(buf, byte(ts.Nanosecond()))
	buf = append(buf, byte(rand.Intn(256))) // want `use of rand\.Intn in deterministic scope`
	return helper(buf)
}

// helper is not annotated itself: the violation below must be found
// through call-graph reachability from Apply.
func helper(buf []byte) []byte {
	if time.Since(epoch) > time.Second { // want `call to time\.Since in deterministic scope \(reachable from .*determfail\.Apply\)`
		return nil
	}
	return buf
}

var epoch time.Time

// Accumulate sums floats in a loop: float addition is not associative.
//
//lint:deterministic
func Accumulate(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x // want `floating-point accumulation in a loop`
	}
	return sum
}

// Spawned violations count too: goroutines launched from a deterministic
// scope still feed replicated state.
//
//lint:deterministic
func SpawnStamp(out chan<- int64) {
	go func() {
		out <- time.Now().UnixNano() // want `call to time\.Now in deterministic scope`
	}()
}
