// Package bufownfail holds pooled-ownership violations: references
// obtained from the pool that are neither released nor transferred.
package bufownfail

import "amcast/internal/lint/testdata/src/bufpool"

// Leak copies into a pooled buffer, reads it back out, and drops the
// reference on the floor — the pool counts it outstanding forever.
//
//lint:pooled
func Leak(p []byte) []byte {
	b := bufpool.Copy(p) // want `pooled buffer b escapes Leak without a Release or ownership transfer`
	return append([]byte(nil), b.Bytes()...)
}

// Discard loses the reference in the same statement that acquired it.
//
//lint:pooled
func Discard(n int) {
	bufpool.Get(n) // want `pooled buffer from bufpool\.Get is discarded`
}

// Root is the annotated entry point; the contract follows the call.
//
//lint:pooled
func Root(n int) {
	helper(n)
}

// helper is reachable from a pooled root, so the same rule applies even
// without its own annotation.
func helper(n int) {
	b := bufpool.Get(n) // want `pooled buffer b escapes helper without a Release or ownership transfer \(path rooted at .*bufownfail\.Root\)`
	_ = b.Bytes()
}

// RetainIsNotRelease bumps the refcount and then leaks both references:
// only Release (or a transfer) discharges.
//
//lint:pooled
func RetainIsNotRelease(n int) {
	b := bufpool.Get(n) // want `pooled buffer b escapes RetainIsNotRelease without a Release or ownership transfer`
	b.Retain()
}
