// Package kindswitchfail holds Kind dispatch the kindswitch analyzer
// must flag.
package kindswitchfail

import "amcast/internal/lint/testdata/src/transport"

// Handle misses KindC and has no default: adding a kind without wiring
// it through dispatch would silently drop traffic.
func Handle(m transport.Message) int {
	switch m.Kind { // want `switch on transport\.Kind is not exhaustive and has no default: missing KindC`
	case transport.KindA:
		return 1
	case transport.KindB:
		return 2
	}
	return 0
}

// HandleOne misses two kinds; both are named in the diagnostic.
func HandleOne(m transport.Message) bool {
	switch m.Kind { // want `missing KindB, KindC`
	case transport.KindA:
		return true
	}
	return false
}
