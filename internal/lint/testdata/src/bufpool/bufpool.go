// Package bufpool is a fixture double of the real buffer pool. The
// bufown analyzer identifies Get/Copy structurally — by package NAME,
// not import path — so this miniature keeps the fixtures self-contained.
package bufpool

// Buf is a refcounted pooled buffer.
type Buf struct{ data []byte }

// Get hands out a buffer with one reference.
func Get(n int) *Buf { return &Buf{data: make([]byte, n)} }

// Copy is Get plus a copy of p.
func Copy(p []byte) *Buf {
	b := Get(len(p))
	copy(b.data, p)
	return b
}

// Bytes exposes the storage without touching the refcount.
func (b *Buf) Bytes() []byte { return b.data }

// Retain adds a reference.
func (b *Buf) Retain() {}

// Release drops a reference.
func (b *Buf) Release() {}
