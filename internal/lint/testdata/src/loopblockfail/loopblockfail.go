// Package loopblockfail holds event-loop code the loopblock analyzer
// must flag.
package loopblockfail

import (
	"os"
	"sync"
	"time"
)

// Loop is an event-loop root with direct violations.
//
//lint:eventloop
func Loop(ch chan int, mu *sync.Mutex, f *os.File) {
	ch <- 1                          // want `bare channel send on the event loop`
	time.Sleep(time.Millisecond)     // want `time\.Sleep on the event loop`
	if err := f.Sync(); err != nil { // want `fsync on the event loop`
		return
	}
	mu.Lock()
	_, _ = f.Write(nil) // want `os\.Write called while holding a lock`
	mu.Unlock()
	dispatch(ch)
}

// dispatch is unannotated: its violation must be found through
// reachability from Loop.
func dispatch(ch chan int) {
	ch <- 2 // want `bare channel send on the event loop \(reachable from .*loopblockfail\.Loop\)`
}
