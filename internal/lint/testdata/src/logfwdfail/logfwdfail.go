// Package logfwdfail holds log-before-forward violations.
package logfwdfail

import "amcast/internal/lint/testdata/src/transport"

// Loop is the event-loop root; handlers it reaches must stage, not send.
//
//lint:eventloop
func Loop(c transport.Conn, m transport.Message) {
	handle(c, m)
}

// handle transmits directly from the loop path instead of staging.
func handle(c transport.Conn, m transport.Message) {
	_ = c.Send(m) // want `direct transport Send on the event-loop path \(reachable from .*logfwdfail\.Loop\)`
}

// ReleaseEarly transmits before the WAL write is checked: a crash after
// the send but before durability would betray the promise the message
// carries.
//
//lint:release
func ReleaseEarly(c transport.Conn, log transport.Log, staged []transport.Message, recs [][]byte) {
	for _, m := range staged {
		_ = c.Send(m) // want `release function transmits before the checked Log\.PutBatch`
	}
	if err := log.PutBatch(recs); err != nil {
		return
	}
}

// ReleaseUnchecked never checks the WAL write at all.
//
//lint:release
func ReleaseUnchecked(c transport.Conn, log transport.Log, staged []transport.Message, recs [][]byte) {
	_ = log.PutBatch(recs)
	for _, m := range staged {
		_ = c.Send(m) // want `release function transmits staged sends without a checked Log\.PutBatch`
	}
}
