// Package transport is a fixture double of the real transport package.
// The analyzers identify the Kind enum and the Send/SendBatch transmit
// entry points structurally — by package NAME, not import path — so this
// miniature keeps the fixtures self-contained and their expected
// diagnostics small (three kinds instead of twenty-five).
package transport

// Kind tags a message, mirroring the real transport.Kind.
type Kind byte

// The fixture protocol's three message kinds.
const (
	KindA Kind = iota + 1
	KindB
	KindC
)

// Message is a minimal protocol message.
type Message struct {
	Kind Kind
	Data []byte
}

// Conn is a transmit endpoint; its methods are what the logbeforeforward
// analyzer recognizes as transport sends.
type Conn struct{}

// Send transmits one message.
func (Conn) Send(m Message) error { return nil }

// SendBatch transmits a batch.
func (Conn) SendBatch(ms []Message) error { return nil }

// Log is a fixture double of storage.Log's group-commit entry point.
type Log interface {
	PutBatch(recs [][]byte) error
}
