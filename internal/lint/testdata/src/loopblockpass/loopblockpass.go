// Package loopblockpass holds event-loop code the loopblock analyzer
// must accept: select-guarded sends, spawned goroutines, and timer cases.
package loopblockpass

import (
	"os"
	"time"
)

// Loop never blocks: sends are select comm clauses with a default or
// done case, slow work is spawned, and the timer is a channel case.
//
//lint:eventloop
func Loop(in <-chan int, out chan<- int, done <-chan struct{}, f *os.File) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case v := <-in:
			select {
			case out <- v: // non-blocking: select chooses a ready case
			default:
			}
		case <-t.C:
			// Durable work is handed to its own goroutine; a spawned
			// goroutine cannot block the loop.
			go flushDurable(f)
		case <-done:
			return
		}
	}
}

// flushDurable runs off the loop; its fsync is fine there.
func flushDurable(f *os.File) {
	_ = f.Sync()
}
