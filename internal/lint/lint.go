package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// An Analyzer checks one protocol invariant. Run is invoked once per
// analyzed package; interprocedural analyzers share whole-program state
// (annotations, call graph) cached on the Program and report only the
// diagnostics positioned inside the current package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Pass carries one (analyzer, package) execution.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Options configures a Run.
type Options struct {
	// ReportUnusedAllows adds a diagnostic for every //lint:allow that
	// suppressed nothing. Enabled by cmd/lint (stale suppressions rot);
	// disabled by the fixture tests, which run analyzers one at a time.
	ReportUnusedAllows bool
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		LoopblockAnalyzer,
		KindswitchAnalyzer,
		LogBeforeForwardAnalyzer,
		BufownAnalyzer,
	}
}

// Run executes the analyzers over every package of prog, applies
// //lint:allow suppressions, and returns the surviving diagnostics sorted
// by position. Suppressions with an empty reason are themselves reported:
// an unexplained allow defeats the point of machine-checked invariants.
func Run(prog *Program, analyzers []*Analyzer, opts Options) []Diagnostic {
	dirs := prog.directives()
	var raw []Diagnostic
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if al := dirs.allowFor(d); al != nil {
			al.used = true
			continue
		}
		out = append(out, d)
	}

	// Framework-level hygiene diagnostics.
	for _, al := range dirs.allows {
		if al.reason == "" {
			out = append(out, Diagnostic{
				Analyzer: "lint",
				Pos:      al.pos,
				Message:  fmt.Sprintf("//lint:allow %s is missing a reason — every suppression must explain itself", al.analyzer),
			})
			continue
		}
		if opts.ReportUnusedAllows && !al.used {
			out = append(out, Diagnostic{
				Analyzer: "lint",
				Pos:      al.pos,
				Message:  fmt.Sprintf("//lint:allow %s suppresses nothing — remove the stale directive", al.analyzer),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// pathEnclosing returns the innermost FuncDecl containing pos in pkg, or
// nil.
func (p *Package) enclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
					return fd
				}
			}
		}
	}
	return nil
}
