package lint

import (
	"go/ast"
	"go/types"
)

// LoopblockAnalyzer enforces the PR 5 contract: the ring event loop (the
// //lint:eventloop roots and everything they call on the same goroutine)
// must never block. It flags:
//
//   - bare channel sends (a send outside a select comm clause can block
//     forever on a slow receiver — exactly the slow-learner wedge the
//     delivery stage exists to prevent);
//   - time.Sleep;
//   - fsync ((*os.File).Sync, syscall.Fsync/Fdatasync) — durable writes
//     belong to the group-commit release function, reached through the
//     storage.Log interface, not inlined on the loop;
//   - I/O performed while holding a mutex (calls into os/net/bufio
//     between Lock and Unlock).
//
// Goroutines launched from the loop (`go ...`) are exempt by
// construction — they cannot block the loop — which is also why the
// delivery stage's deliveryLoop needs no annotation: it is spawned, never
// called.
var LoopblockAnalyzer = &Analyzer{
	Name: "loopblock",
	Doc:  "flags blocking operations reachable from //lint:eventloop roots",
	Run:  runLoopblock,
}

func runLoopblock(pass *Pass) {
	dirs := pass.Prog.directives()
	roots := sortedFuncs(dirs.eventloop)
	if len(roots) == 0 {
		return
	}
	g := pass.Prog.callgraph()
	reach := g.reachable(roots, false)
	for fn, root := range reach {
		n := g.nodes[fn]
		if n == nil || n.pkg != pass.Pkg {
			continue
		}
		checkLoopblock(pass, n, root)
	}
}

func checkLoopblock(pass *Pass, n *funcNode, root *types.Func) {
	// Sends appearing as a select comm clause are non-blocking by
	// construction (the select chooses among ready cases / default).
	selectComm := make(map[ast.Stmt]bool)
	ast.Inspect(n.decl, func(node ast.Node) bool {
		if sel, ok := node.(*ast.SelectStmt); ok {
			for _, clause := range sel.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
					selectComm[cc.Comm] = true
				}
			}
		}
		return true
	})

	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			// A spawned goroutine cannot block the loop; arguments are
			// evaluated here but argument expressions cannot contain
			// statements other than func-lits, which run on the new
			// goroutine.
			return false
		case *ast.SendStmt:
			if !selectComm[x] {
				pass.Reportf(x.Pos(), "bare channel send on the event loop (reachable from %s): a slow receiver wedges the ring — use a select with default/done, or hand off to the delivery stage",
					root.FullName())
			}
		case *ast.CallExpr:
			callee := calleeOf(n.pkg, x)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch {
			case callee.Pkg().Path() == "time" && callee.Name() == "Sleep":
				pass.Reportf(x.Pos(), "time.Sleep on the event loop (reachable from %s): the loop must stay responsive — use the retry ticker or a timer case in the select",
					root.FullName())
			case isFsync(callee):
				pass.Reportf(x.Pos(), "fsync on the event loop (reachable from %s): durable writes belong to the group-commit path behind storage.Log",
					root.FullName())
			}
		}
		return true
	})

	checkLockHeldIO(pass, n, root)
}

func isFsync(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Sync" // (*os.File).Sync
	case "syscall":
		return fn.Name() == "Fsync" || fn.Name() == "Fdatasync"
	}
	return false
}

// checkLockHeldIO scans statement lists linearly: between a mutex Lock /
// RLock and the matching Unlock, calls into os/net/bufio are flagged.
// The scan is an approximation (it tracks one held flag, follows nested
// blocks, and treats a deferred Unlock as holding to function end) —
// good enough for the handler shapes on the loop, and cheap to reason
// about when it fires.
func checkLockHeldIO(pass *Pass, n *funcNode, root *types.Func) {
	var scan func(stmts []ast.Stmt, held bool) bool
	scan = func(stmts []ast.Stmt, held bool) bool {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					switch lockCallKind(n.pkg, call) {
					case "lock":
						held = true
						continue
					case "unlock":
						held = false
						continue
					}
				}
			case *ast.DeferStmt:
				if lockCallKind(n.pkg, s.Call) == "unlock" {
					// Unlock deferred: held for the rest of the function.
					continue
				}
			case *ast.BlockStmt:
				held = scan(s.List, held)
				continue
			case *ast.IfStmt:
				scan(s.Body.List, held)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					scan(els.List, held)
				}
				continue
			case *ast.ForStmt:
				scan(s.Body.List, held)
				continue
			case *ast.RangeStmt:
				scan(s.Body.List, held)
				continue
			}
			if held {
				reportHeldIO(pass, n, stmt, root)
			}
		}
		return held
	}
	if n.decl.Body != nil {
		scan(n.decl.Body.List, false)
	}
}

// reportHeldIO flags I/O calls syntactically inside stmt.
func reportHeldIO(pass *Pass, n *funcNode, stmt ast.Stmt, root *types.Func) {
	ast.Inspect(stmt, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(n.pkg, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "os", "net", "bufio":
			pass.Reportf(call.Pos(), "%s.%s called while holding a lock on the event loop (reachable from %s): I/O under a lock stalls every contender",
				callee.Pkg().Name(), callee.Name(), root.FullName())
		}
		return true
	})
}

// lockCallKind classifies a call as a sync mutex lock or unlock.
func lockCallKind(pkg *Package, call *ast.CallExpr) string {
	callee := calleeOf(pkg, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return ""
	}
	switch callee.Name() {
	case "Lock", "RLock":
		return "lock"
	case "Unlock", "RUnlock":
		return "unlock"
	}
	return ""
}
