package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LogBeforeForwardAnalyzer enforces the acceptor's log-before-forward
// discipline (PR 2): protocol messages produced on the ring event loop
// are staged, and only the //lint:release function may transmit them —
// after the group-commit WAL write (Log.PutBatch) has been checked for
// success. Concretely:
//
//   - any transport Send/SendBatch call in code reachable from an
//     //lint:eventloop root, outside the release function, is flagged —
//     handlers stage, they do not transmit;
//   - inside the release function, every transmit must be preceded (in
//     source order) by a PutBatch call whose error is checked with an
//     early return; a transmit before the checked WAL write, or an
//     ignored PutBatch error, is flagged.
var LogBeforeForwardAnalyzer = &Analyzer{
	Name: "logbeforeforward",
	Doc:  "staged sends may only be released after a checked Log.PutBatch",
	Run:  runLogBeforeForward,
}

func runLogBeforeForward(pass *Pass) {
	dirs := pass.Prog.directives()
	if len(dirs.eventloop) == 0 && len(dirs.release) == 0 {
		return
	}
	g := pass.Prog.callgraph()
	reach := g.reachable(sortedFuncs(dirs.eventloop), false)

	for fn, root := range reach {
		if dirs.release[fn] {
			continue
		}
		n := g.nodes[fn]
		if n == nil || n.pkg != pass.Pkg {
			continue
		}
		ast.Inspect(n.decl, func(node ast.Node) bool {
			if _, ok := node.(*ast.GoStmt); ok {
				return false // spawned goroutines are not the event loop
			}
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeOf(n.pkg, call); callee != nil && isTransmit(callee) {
				pass.Reportf(call.Pos(), "direct transport %s on the event-loop path (reachable from %s): stage the message and let the release function transmit after the WAL write",
					callee.Name(), root.FullName())
			}
			return true
		})
	}

	for fn := range dirs.release {
		n := g.nodes[fn]
		if n == nil || n.pkg != pass.Pkg {
			continue
		}
		checkReleaseFunc(pass, n)
	}
}

// isTransmit matches the transport-layer send entry points: methods named
// Send/SendBatch declared in a package named transport (the Transport and
// BatchSender interfaces, or fixture doubles of them).
func isTransmit(fn *types.Func) bool {
	if fn.Name() != "Send" && fn.Name() != "SendBatch" {
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Name() != "transport" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// checkReleaseFunc verifies the release function's shape: a checked
// PutBatch with early return on error must precede every transmit.
func checkReleaseFunc(pass *Pass, n *funcNode) {
	var transmits []*ast.CallExpr
	var guardedPut token.Pos // position of the checked PutBatch, if any
	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if callee := calleeOf(n.pkg, x); callee != nil {
				if isTransmit(callee) {
					transmits = append(transmits, x)
				}
				if callee.Name() == "PutBatch" && guardedPut == token.NoPos && putBatchIsGuarded(n, x) {
					guardedPut = x.Pos()
				}
			}
		}
		return true
	})
	if len(transmits) == 0 {
		return
	}
	for _, t := range transmits {
		if guardedPut == token.NoPos {
			pass.Reportf(t.Pos(), "release function transmits staged sends without a checked Log.PutBatch: the WAL write must succeed before anything leaves this node")
		} else if t.Pos() < guardedPut {
			pass.Reportf(t.Pos(), "release function transmits before the checked Log.PutBatch: log before forward")
		}
	}
}

// putBatchIsGuarded reports whether call sits in an
// `if err := ...PutBatch(...); err != nil { ... return }` (or an
// assignment whose error is checked the same way immediately after).
func putBatchIsGuarded(n *funcNode, call *ast.CallExpr) bool {
	guarded := false
	ast.Inspect(n.decl, func(node ast.Node) bool {
		ifs, ok := node.(*ast.IfStmt)
		if !ok || guarded {
			return !guarded
		}
		if !containsNode(ifs.Init, call) && !containsNode(ifs.Cond, call) {
			return true
		}
		if isErrNilCheck(ifs.Cond) && containsReturn(ifs.Body) {
			guarded = true
		}
		return true
	})
	return guarded
}

func containsNode(root ast.Node, target ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(node ast.Node) bool {
		if node == target {
			found = true
		}
		return !found
	})
	return found
}

// isErrNilCheck matches `<expr> != nil`.
func isErrNilCheck(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(be.X) || isNil(be.Y)
}

func containsReturn(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(node ast.Node) bool {
		if _, ok := node.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}
