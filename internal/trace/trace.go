// Package trace provides per-value distributed tracing for the multicast
// stack: a compact trace context (trace id, parent span id, sampled bit)
// is stamped at client submit, rides protocol frames as an optional
// trailing header, and every hop that touches the value records a span
// into a per-process lock-cheap ring buffer. A Collector assembles the
// spans of one trace id across every registered recorder into a single
// causal timeline naming each hop, ring and fsync the value waited on.
//
// The package is dependency-free (stdlib only) and imports nothing from
// this repository, so transport can depend on it without a cycle. All
// Recorder methods are nil-receiver safe: an unwired component simply
// records nothing.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlagSampled marks a context whose value should record spans at every
// hop. Unsampled contexts propagate as zero values and cost nothing.
const FlagSampled = 1 << 0

// Context is the compact trace context carried on protocol frames:
// 17 bytes on the wire (trace id, parent span id, flags).
type Context struct {
	TraceID uint64
	SpanID  uint64 // parent span id for spans recorded under this context
	Flags   byte
}

// Sampled reports whether spans should be recorded for this context.
func (c Context) Sampled() bool {
	return c.TraceID != 0 && c.Flags&FlagSampled != 0
}

// Span is one recorded hop of a traced value's journey.
type Span struct {
	TraceID  uint64        `json:"trace_id"`
	SpanID   uint64        `json:"span_id"`
	ParentID uint64        `json:"parent_id"`
	Name     string        `json:"name"`    // hop name: submit, forward, wal-commit, vote, decide, merge, apply
	Process  string        `json:"process"` // recorder (process) name
	Ring     uint32        `json:"ring"`
	Instance uint64        `json:"instance"`
	ValueID  uint64        `json:"value_id"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
}

// Recorder is a per-process span sink: a fixed-capacity ring buffer of
// atomically published span pointers. Recording is lock-free (one
// atomic add + one atomic pointer store) so it can sit next to the
// protocol hot path; when the buffer wraps, the oldest spans are
// overwritten.
type Recorder struct {
	name  string
	slots []atomic.Pointer[Span]
	idx   atomic.Uint64
	ids   atomic.Uint64
	seed  uint64
	// every is the sampling divisor for roots started at this recorder:
	// 0 disables sampling, 1 samples everything, N samples every Nth
	// submit (counter-based — no randomness near deterministic code).
	every atomic.Uint64
	ctr   atomic.Uint64
}

// DefaultCapacity is the span ring size used when NewRecorder is given
// a non-positive capacity.
const DefaultCapacity = 4096

// NewRecorder returns a recorder named for its process, with sampling
// disabled until SetSampling is called.
func NewRecorder(name string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{name: name, slots: make([]atomic.Pointer[Span], capacity)}
	// Seed id generation from the process name and start time so ids
	// from distinct recorders (and distinct runs) do not collide. This
	// runs at construction, never on a deterministic replica path.
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	r.seed = mix(h ^ uint64(time.Now().UnixNano()))
	return r
}

// mix is splitmix64's finalizer: spreads sequential ids across the
// 64-bit space so truncated displays stay distinguishable.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Name returns the recorder's process name ("" for nil).
func (r *Recorder) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// SetSampling sets the root-sampling divisor: 0 disables tracing, 1
// samples every submit, n samples every nth.
func (r *Recorder) SetSampling(n uint64) {
	if r == nil {
		return
	}
	r.every.Store(n)
}

// Sampling returns the current divisor.
func (r *Recorder) Sampling() uint64 {
	if r == nil {
		return 0
	}
	return r.every.Load()
}

// NextID returns a fresh non-zero span/trace id.
func (r *Recorder) NextID() uint64 {
	if r == nil {
		return 0
	}
	id := mix(r.seed + r.ids.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// StartRoot decides (counter-based) whether this submit is sampled and,
// if so, returns a fresh sampled context whose SpanID is the root span
// id. The zero Context means "not sampled".
func (r *Recorder) StartRoot() Context {
	if r == nil {
		return Context{}
	}
	every := r.every.Load()
	if every == 0 {
		return Context{}
	}
	if every > 1 && r.ctr.Add(1)%every != 0 {
		return Context{}
	}
	return Context{TraceID: r.NextID(), SpanID: r.NextID(), Flags: FlagSampled}
}

// Record publishes a span into the ring buffer. No-op on a nil recorder
// or an unsampled trace id.
func (r *Recorder) Record(s Span) {
	if r == nil || s.TraceID == 0 {
		return
	}
	if s.SpanID == 0 {
		s.SpanID = r.NextID()
	}
	s.Process = r.name
	i := (r.idx.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(&s)
}

// Add records one child span under ctx: a hop named name that started
// at start and lasted d. No-op when ctx is unsampled.
func (r *Recorder) Add(ctx Context, name string, ring uint32, instance, valueID uint64, start time.Time, d time.Duration) {
	if r == nil || !ctx.Sampled() {
		return
	}
	r.Record(Span{
		TraceID:  ctx.TraceID,
		ParentID: ctx.SpanID,
		Name:     name,
		Ring:     ring,
		Instance: instance,
		ValueID:  valueID,
		Start:    start,
		Duration: d,
	})
}

// Spans snapshots the buffer's current contents (unordered).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Collector aggregates the recorders of every process in a deployment
// and assembles per-trace causal timelines. In-process clusters register
// one recorder per simulated process; a multi-process deployment would
// register one per scraped peer.
type Collector struct {
	mu   sync.Mutex
	recs []*Recorder
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Register adds a recorder to the collector. Nil recorders are ignored.
func (c *Collector) Register(r *Recorder) {
	if c == nil || r == nil {
		return
	}
	c.mu.Lock()
	c.recs = append(c.recs, r)
	c.mu.Unlock()
}

// Recorders returns the registered recorder names.
func (c *Collector) Recorders() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, len(c.recs))
	for i, r := range c.recs {
		names[i] = r.Name()
	}
	return names
}

// SpanCount returns how many spans all registered recorders currently
// retain (rings overwrite, so this is retention, not lifetime volume).
func (c *Collector) SpanCount() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, r := range c.snapshot() {
		n += len(r.Spans())
	}
	return n
}

func (c *Collector) snapshot() []*Recorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Recorder(nil), c.recs...)
}

// Trace assembles the causal timeline of one trace id: every span
// recorded for it anywhere in the deployment, ordered causally (parents
// before children, then by start time — all in-process recorders share
// one clock, so start-time order is the causal order within a trace).
func (c *Collector) Trace(id uint64) []Span {
	if c == nil || id == 0 {
		return nil
	}
	var out []Span
	for _, r := range c.snapshot() {
		for _, s := range r.Spans() {
			if s.TraceID == id {
				out = append(out, s)
			}
		}
	}
	sortCausal(out)
	return out
}

// TraceIDs lists the distinct trace ids currently held across all
// recorders, newest-start first, capped at limit (<=0 means all).
func (c *Collector) TraceIDs(limit int) []uint64 {
	if c == nil {
		return nil
	}
	latest := make(map[uint64]time.Time)
	for _, r := range c.snapshot() {
		for _, s := range r.Spans() {
			if t, ok := latest[s.TraceID]; !ok || s.Start.After(t) {
				latest[s.TraceID] = s.Start
			}
		}
	}
	ids := make([]uint64, 0, len(latest))
	for id := range latest {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return latest[ids[i]].After(latest[ids[j]]) })
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	return ids
}

// sortCausal orders spans parents-first: root spans (ParentID 0) lead,
// then children by start time, name and process for a stable display.
func sortCausal(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if (a.ParentID == 0) != (b.ParentID == 0) {
			return a.ParentID == 0
		}
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Process < b.Process
	})
}
