package trace

import (
	"sync"
	"testing"
	"time"
)

func TestContextSampled(t *testing.T) {
	if (Context{}).Sampled() {
		t.Fatal("zero context reports sampled")
	}
	if (Context{TraceID: 1}).Sampled() {
		t.Fatal("unflagged context reports sampled")
	}
	if (Context{Flags: FlagSampled}).Sampled() {
		t.Fatal("context without trace id reports sampled")
	}
	if !(Context{TraceID: 1, Flags: FlagSampled}).Sampled() {
		t.Fatal("sampled context reports unsampled")
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.SetSampling(1)
	if r.Sampling() != 0 || r.Name() != "" || r.NextID() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if ctx := r.StartRoot(); ctx.Sampled() {
		t.Fatal("nil recorder sampled a root")
	}
	r.Record(Span{TraceID: 1})
	r.Add(Context{TraceID: 1, Flags: FlagSampled}, "x", 0, 0, 0, time.Time{}, 0)
	if r.Spans() != nil {
		t.Fatal("nil recorder returned spans")
	}

	var c *Collector
	c.Register(NewRecorder("p", 4))
	if c.Trace(1) != nil || c.TraceIDs(0) != nil || c.SpanCount() != 0 || c.Recorders() != nil {
		t.Fatal("nil collector leaked state")
	}
}

func TestSamplingDivisor(t *testing.T) {
	r := NewRecorder("p", 16)
	// Disabled by default.
	for i := 0; i < 10; i++ {
		if r.StartRoot().Sampled() {
			t.Fatal("sampled with divisor 0")
		}
	}
	r.SetSampling(1)
	for i := 0; i < 10; i++ {
		if !r.StartRoot().Sampled() {
			t.Fatal("divisor 1 skipped a root")
		}
	}
	r.SetSampling(4)
	sampled := 0
	for i := 0; i < 100; i++ {
		if r.StartRoot().Sampled() {
			sampled++
		}
	}
	if sampled != 25 {
		t.Fatalf("divisor 4 sampled %d/100 roots, want 25", sampled)
	}
}

func TestNextIDsDistinctAndNonZero(t *testing.T) {
	a, b := NewRecorder("a", 4), NewRecorder("b", 4)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		for _, id := range []uint64{a.NextID(), b.NextID()} {
			if id == 0 {
				t.Fatal("zero id")
			}
			if seen[id] {
				t.Fatalf("duplicate id %#x", id)
			}
			seen[id] = true
		}
	}
}

func TestRecorderRingOverwrites(t *testing.T) {
	r := NewRecorder("p", 4)
	for i := 1; i <= 10; i++ {
		r.Record(Span{TraceID: uint64(i), SpanID: uint64(i)})
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want capacity 4", len(spans))
	}
	for _, s := range spans {
		if s.TraceID <= 6 {
			t.Fatalf("old span %d survived the wrap", s.TraceID)
		}
		if s.Process != "p" {
			t.Fatalf("span process %q, want recorder name", s.Process)
		}
	}
}

func TestRecordFillsSpanID(t *testing.T) {
	r := NewRecorder("p", 4)
	r.Record(Span{TraceID: 7})
	if s := r.Spans()[0]; s.SpanID == 0 {
		t.Fatal("Record left SpanID zero")
	}
}

func TestAddParentsOnContext(t *testing.T) {
	r := NewRecorder("p", 4)
	ctx := Context{TraceID: 5, SpanID: 9, Flags: FlagSampled}
	r.Add(ctx, "vote", 2, 11, 42, time.Unix(0, 1000), time.Microsecond)
	s := r.Spans()[0]
	if s.TraceID != 5 || s.ParentID != 9 || s.Name != "vote" || s.Ring != 2 || s.Instance != 11 || s.ValueID != 42 {
		t.Fatalf("Add recorded %+v", s)
	}
	r.Add(Context{TraceID: 5}, "unsampled", 0, 0, 0, time.Time{}, 0)
	if len(r.Spans()) != 1 {
		t.Fatal("Add recorded an unsampled span")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder("p", 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Span{TraceID: uint64(g + 1), SpanID: uint64(i + 1)})
			}
		}(g)
	}
	wg.Wait()
	if n := len(r.Spans()); n != 64 {
		t.Fatalf("ring holds %d spans after concurrent writes, want 64", n)
	}
}

func TestCollectorAssemblesCausalTimeline(t *testing.T) {
	client := NewRecorder("client", 8)
	p1 := NewRecorder("p1", 8)
	p2 := NewRecorder("p2", 8)
	c := NewCollector()
	for _, r := range []*Recorder{client, p1, p2} {
		c.Register(r)
	}

	base := time.Unix(100, 0)
	ctx := Context{TraceID: 77, SpanID: 1, Flags: FlagSampled}
	// Root recorded last, started first: order must come from causality,
	// not recording order.
	p2.Add(ctx, "decide", 1, 3, 9, base.Add(20*time.Millisecond), time.Millisecond)
	p1.Add(ctx, "vote", 1, 3, 9, base.Add(10*time.Millisecond), time.Millisecond)
	p1.Add(ctx, "apply", 1, 3, 9, base.Add(30*time.Millisecond), 0)
	client.Record(Span{TraceID: 77, SpanID: 1, Name: "submit", Start: base, Duration: 40 * time.Millisecond})
	// A second trace must not bleed in.
	p1.Add(Context{TraceID: 78, SpanID: 2, Flags: FlagSampled}, "vote", 1, 4, 10, base.Add(5*time.Millisecond), 0)

	spans := c.Trace(77)
	if len(spans) != 4 {
		t.Fatalf("assembled %d spans, want 4", len(spans))
	}
	order := []string{"submit", "vote", "decide", "apply"}
	for i, want := range order {
		if spans[i].Name != want {
			t.Fatalf("span %d is %q, want %q (order %+v)", i, spans[i].Name, want, spans)
		}
	}
	for _, s := range spans[1:] {
		if s.ParentID != 1 {
			t.Fatalf("child %q parent %d, want 1", s.Name, s.ParentID)
		}
	}

	ids := c.TraceIDs(0)
	if len(ids) != 2 {
		t.Fatalf("collector lists %d traces, want 2", len(ids))
	}
	// Newest-start first: trace 77's latest span (apply, +30ms) beats
	// trace 78's only span (+5ms).
	if ids[0] != 77 {
		t.Fatalf("trace order %v, want 77 first", ids)
	}
	if got := c.TraceIDs(1); len(got) != 1 || got[0] != 77 {
		t.Fatalf("limit 1 returned %v", got)
	}
	if c.SpanCount() != 5 {
		t.Fatalf("span count %d, want 5", c.SpanCount())
	}
	if c.Trace(999) != nil {
		t.Fatal("unknown trace id returned spans")
	}
}
