package store

import (
	"sync"

	"amcast/internal/smr"
	"amcast/internal/transport"
)

// SM implements smr.ConflictExecutor: point operations conflict on their
// key's hash token, range scans and splits are barriers. The staged-run
// machinery mirrors apply() exactly over an immutable treap snapshot
// plus a private write overlay, so parallel execution is byte-identical
// to sequential — responses, final tree contents, and checkpoints all
// serialize in key order, which erases the only divergence parallel
// commit order could introduce (treap priorities being consumed in a
// different key order).
var _ smr.ConflictExecutor = (*SM)(nil)

// keyToken hashes a key to a conflict token (FNV-1a). A collision
// between distinct keys merely merges their runs — conservative, never
// incorrect.
func keyToken(k string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	return h
}

// ConflictKeys reports op's conflict tokens, or barrier=true for
// operations that may touch arbitrary keys (scans, splits, undecodable
// input): those fall back to sequential execution against full state.
func (s *SM) ConflictKeys(raw []byte, dst []uint64) ([]uint64, bool) {
	op, err := DecodeOp(raw)
	if err != nil {
		return dst, true
	}
	return opTokens(op, dst)
}

func opTokens(op Op, dst []uint64) ([]uint64, bool) {
	switch op.Kind {
	case OpRead, OpUpdate, OpInsert, OpDelete:
		return append(dst, keyToken(op.Key)), false
	case OpBatch:
		var barrier bool
		for _, sub := range op.Batch {
			if dst, barrier = opTokens(sub, dst); barrier {
				return dst, true
			}
		}
		return dst, false
	default:
		// OpScan reads a key range, OpSplit rewrites ownership, and an
		// unknown kind is unknowable: all barriers.
		return dst, true
	}
}

// stagedWrite is one key's final staged mutation within a run.
type stagedWrite struct {
	key   string
	value []byte
	del   bool
}

// stagedRun is the staging state of one conflict-free run: reads see the
// captured base snapshot below the run's own writes (read-your-writes),
// writes accumulate as the per-key latest mutation for CommitRun.
type stagedRun struct {
	base    treapSnapshot
	bounded bool
	lo, hi  string

	writes  []stagedWrite
	overlay map[string]int // key → index into writes (latest wins)
}

var stagedRunPool = sync.Pool{
	New: func() any { return &stagedRun{overlay: make(map[string]int)} },
}

// StageRun executes one conflict-free run against a snapshot + overlay,
// filling out positionally. Safe concurrently with other StageRun calls:
// the snapshot is immutable (COW treap) and the overlay is private.
//
//lint:deterministic
func (s *SM) StageRun(_ []transport.RingID, ops [][]byte, out [][]byte) any {
	s.mu.Lock()
	st := stagedRunPool.Get().(*stagedRun)
	st.base = s.db.snapshot()
	st.bounded, st.lo, st.hi = s.bounded, s.lo, s.hi
	s.mu.Unlock()
	for i, raw := range ops {
		op, err := DecodeOp(raw)
		if err != nil {
			out[i] = encodeResult(Result{Status: StatusBadRequest})
			continue
		}
		out[i] = encodeResult(st.apply(op))
	}
	return st
}

// CommitRun applies a staged run's writes to the live tree. Called
// sequentially in run order; runs are key-disjoint, so the final tree
// contents cannot depend on the order anyway.
//
//lint:deterministic
func (s *SM) CommitRun(effects any) {
	st := effects.(*stagedRun)
	s.mu.Lock()
	for _, w := range st.writes {
		if w.del {
			s.db.Delete(w.key)
		} else {
			s.db.Put(w.key, w.value)
		}
	}
	s.mu.Unlock()
	st.release()
}

func (st *stagedRun) release() {
	for i := range st.writes {
		st.writes[i] = stagedWrite{}
	}
	st.writes = st.writes[:0]
	clear(st.overlay)
	st.base = treapSnapshot{}
	stagedRunPool.Put(st)
}

// owns mirrors SM.owns over the captured bounds (splits are barriers, so
// bounds cannot change mid-segment).
func (st *stagedRun) owns(key string) bool {
	if !st.bounded {
		return true
	}
	return key >= st.lo && (st.hi == "" || key < st.hi)
}

// get reads through the overlay first (read-your-writes), then the base.
func (st *stagedRun) get(key string) ([]byte, bool) {
	if i, ok := st.overlay[key]; ok {
		w := st.writes[i]
		if w.del {
			return nil, false
		}
		return w.value, true
	}
	return st.base.Get(key)
}

func (st *stagedRun) put(key string, value []byte) {
	if i, ok := st.overlay[key]; ok {
		st.writes[i] = stagedWrite{key: key, value: value}
		return
	}
	st.overlay[key] = len(st.writes)
	st.writes = append(st.writes, stagedWrite{key: key, value: value})
}

// del stages a delete, reporting whether the key existed. Deleting an
// absent key stages nothing (matching the live tree's no-op).
func (st *stagedRun) del(key string) bool {
	if i, ok := st.overlay[key]; ok {
		existed := !st.writes[i].del
		st.writes[i] = stagedWrite{key: key, del: true}
		return existed
	}
	if _, ok := st.base.Get(key); !ok {
		return false
	}
	st.overlay[key] = len(st.writes)
	st.writes = append(st.writes, stagedWrite{key: key, del: true})
	return true
}

// apply mirrors SM.apply for the stageable kinds; ConflictKeys keeps
// scans, splits and undecodable ops out of staged runs (barriers), so
// reaching default here means a ConflictKeys/StageRun mismatch.
func (st *stagedRun) apply(op Op) Result {
	switch op.Kind {
	case OpRead:
		if !st.owns(op.Key) {
			return Result{Status: StatusWrongPartition}
		}
		if v, ok := st.get(op.Key); ok {
			return Result{Status: StatusOK, Entries: []Entry{{Key: op.Key, Value: append([]byte(nil), v...)}}}
		}
		return Result{Status: StatusNotFound}
	case OpUpdate:
		if !st.owns(op.Key) {
			return Result{Status: StatusWrongPartition}
		}
		if _, ok := st.get(op.Key); !ok {
			return Result{Status: StatusNotFound}
		}
		st.put(op.Key, append([]byte(nil), op.Value...))
		return Result{Status: StatusOK}
	case OpInsert:
		if !st.owns(op.Key) {
			return Result{Status: StatusWrongPartition}
		}
		if _, ok := st.get(op.Key); ok {
			return Result{Status: StatusExists}
		}
		st.put(op.Key, append([]byte(nil), op.Value...))
		return Result{Status: StatusOK}
	case OpDelete:
		if !st.owns(op.Key) {
			return Result{Status: StatusWrongPartition}
		}
		if st.del(op.Key) {
			return Result{Status: StatusOK}
		}
		return Result{Status: StatusNotFound}
	case OpBatch:
		res := Result{Status: StatusOK}
		for _, sub := range op.Batch {
			res.Results = append(res.Results, st.apply(sub))
		}
		return res
	default:
		return Result{Status: StatusBadRequest}
	}
}
