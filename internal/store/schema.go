package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"amcast/internal/coord"
	"amcast/internal/transport"
)

// SchemaKind selects hash or range partitioning (applications decide,
// Section 6.1; clients must know the partitioning scheme).
type SchemaKind uint8

const (
	// HashPartitioned assigns keys to partitions by key hash.
	HashPartitioned SchemaKind = iota + 1
	// RangePartitioned assigns keys by sorted key ranges.
	RangePartitioned
)

// SchemaMetaKey is where the schema lives in the coordination service.
const SchemaMetaKey = "mrpstore/schema"

// Partition describes one shard.
type Partition struct {
	// Group is the multicast group (ring) replicating this partition.
	Group transport.RingID
	// Low is the inclusive lower key bound (range partitioning only;
	// the first partition's Low is the empty string).
	Low string
}

// Schema is the partitioning scheme. Partitions are ordered: by index for
// hash partitioning, by Low for range partitioning.
type Schema struct {
	Kind SchemaKind
	// Version counts schema changes: online reconfiguration publishes
	// Version+1 when a partition split commits, and clients reject
	// refreshes that would move them backwards.
	Version uint64
	// GlobalGroup, if nonzero, is a ring all replicas subscribe to;
	// multi-partition operations are multicast to it so they are
	// ordered against everything else. Zero means independent rings
	// (Figure 4's "MRP-Store (indep. rings)" configuration).
	GlobalGroup transport.RingID
	Partitions  []Partition
}

// Validate checks structural invariants.
func (s Schema) Validate() error {
	if len(s.Partitions) == 0 {
		return fmt.Errorf("store: schema needs at least one partition")
	}
	seen := make(map[transport.RingID]bool)
	for _, p := range s.Partitions {
		if seen[p.Group] {
			return fmt.Errorf("store: duplicate group %d in schema", p.Group)
		}
		seen[p.Group] = true
		if p.Group == s.GlobalGroup {
			return fmt.Errorf("store: partition group %d collides with global group", p.Group)
		}
	}
	if s.Kind == RangePartitioned {
		for i := 1; i < len(s.Partitions); i++ {
			if s.Partitions[i].Low <= s.Partitions[i-1].Low {
				return fmt.Errorf("store: range partitions not sorted at %d", i)
			}
		}
		if s.Partitions[0].Low != "" {
			return fmt.Errorf("store: first range partition must start at the empty key")
		}
	}
	return nil
}

// PartitionOf returns the group owning key.
func (s Schema) PartitionOf(key string) transport.RingID {
	switch s.Kind {
	case RangePartitioned:
		idx := sort.Search(len(s.Partitions), func(i int) bool {
			return s.Partitions[i].Low > key
		}) - 1
		if idx < 0 {
			idx = 0
		}
		return s.Partitions[idx].Group
	default:
		h := fnv.New32a()
		_, _ = h.Write([]byte(key))
		return s.Partitions[int(h.Sum32())%len(s.Partitions)].Group
	}
}

// GroupsForScan returns the groups a scan over [lo, hi] must reach: the
// covering range partitions if range-partitioned, or every partition if
// hash-partitioned (Section 6.1).
func (s Schema) GroupsForScan(lo, hi string) []transport.RingID {
	if s.Kind == RangePartitioned {
		var out []transport.RingID
		for i, p := range s.Partitions {
			// Partition i covers [p.Low, next.Low).
			if p.Low > hi && p.Low != "" {
				break
			}
			if i+1 < len(s.Partitions) && s.Partitions[i+1].Low <= lo {
				continue
			}
			out = append(out, p.Group)
		}
		return out
	}
	out := make([]transport.RingID, len(s.Partitions))
	for i, p := range s.Partitions {
		out[i] = p.Group
	}
	return out
}

// Groups returns every partition group in order.
func (s Schema) Groups() []transport.RingID {
	out := make([]transport.RingID, len(s.Partitions))
	for i, p := range s.Partitions {
		out[i] = p.Group
	}
	return out
}

// Encode serializes the schema for the coordination service.
func (s Schema) Encode() []byte {
	var buf []byte
	buf = append(buf, byte(s.Kind))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:8], s.Version)
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(s.GlobalGroup))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(s.Partitions)))
	buf = append(buf, tmp[:4]...)
	for _, p := range s.Partitions {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(p.Group))
		buf = append(buf, tmp[:4]...)
		buf = appendString(buf, p.Low)
	}
	return buf
}

// DecodeSchema parses Encode output.
func DecodeSchema(buf []byte) (Schema, error) {
	var s Schema
	if len(buf) < 17 {
		return s, transport.ErrShortMessage
	}
	s.Kind = SchemaKind(buf[0])
	s.Version = binary.LittleEndian.Uint64(buf[1:9])
	s.GlobalGroup = transport.RingID(binary.LittleEndian.Uint32(buf[9:13]))
	n := int(binary.LittleEndian.Uint32(buf[13:17]))
	buf = buf[17:]
	for i := 0; i < n; i++ {
		if len(buf) < 4 {
			return s, transport.ErrShortMessage
		}
		var p Partition
		p.Group = transport.RingID(binary.LittleEndian.Uint32(buf[:4]))
		buf = buf[4:]
		var ok bool
		if p.Low, buf, ok = readString(buf); !ok {
			return s, transport.ErrShortMessage
		}
		s.Partitions = append(s.Partitions, p)
	}
	return s, nil
}

// PublishSchema stores the schema in the coordination service.
func PublishSchema(svc *coord.Service, s Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	svc.PutMeta(SchemaMetaKey, s.Encode())
	return nil
}

// LoadSchema fetches the schema from the coordination service.
func LoadSchema(svc *coord.Service) (Schema, error) {
	raw, ok := svc.GetMeta(SchemaMetaKey)
	if !ok {
		return Schema{}, fmt.Errorf("store: no schema published")
	}
	return DecodeSchema(raw)
}

// RangeOf returns the key range [lo, hi) a partition group owns under a
// range-partitioned schema; hi == "" means unbounded above. ok is false
// when the schema is not range-partitioned or the group is absent.
func (s Schema) RangeOf(group transport.RingID) (lo, hi string, ok bool) {
	if s.Kind != RangePartitioned {
		return "", "", false
	}
	for i, p := range s.Partitions {
		if p.Group != group {
			continue
		}
		hi := ""
		if i+1 < len(s.Partitions) {
			hi = s.Partitions[i+1].Low
		}
		return p.Low, hi, true
	}
	return "", "", false
}

// SplitRange derives the post-split schema: keys >= key move from the
// partition owning them to newGroup, and the version increments. The
// receiver is unchanged.
func (s Schema) SplitRange(newGroup transport.RingID, key string) (Schema, error) {
	if s.Kind != RangePartitioned {
		return Schema{}, fmt.Errorf("store: split requires a range-partitioned schema")
	}
	if key == "" {
		return Schema{}, fmt.Errorf("store: split key must be nonempty")
	}
	out := s
	out.Partitions = append([]Partition(nil), s.Partitions...)
	idx := sort.Search(len(out.Partitions), func(i int) bool {
		return out.Partitions[i].Low > key
	})
	// idx is the insertion point; the owning partition sits before it.
	if idx > 0 && out.Partitions[idx-1].Low == key {
		return Schema{}, fmt.Errorf("store: split key %q is already a partition boundary", key)
	}
	out.Partitions = append(out.Partitions, Partition{})
	copy(out.Partitions[idx+1:], out.Partitions[idx:])
	out.Partitions[idx] = Partition{Group: newGroup, Low: key}
	out.Version = s.Version + 1
	if err := out.Validate(); err != nil {
		return Schema{}, err
	}
	return out, nil
}

// RangeSchema builds an l-way range schema splitting the printable-ASCII
// key space evenly — convenient for examples and benchmarks.
func RangeSchema(groups []transport.RingID, global transport.RingID) Schema {
	s := Schema{Kind: RangePartitioned, GlobalGroup: global, Version: 1}
	for i, g := range groups {
		low := ""
		if i > 0 {
			// Boundaries spread across ' '..'~'.
			c := byte(' ') + byte(i*95/len(groups))
			low = string([]byte{c})
		}
		s.Partitions = append(s.Partitions, Partition{Group: g, Low: low})
	}
	return s
}

// HashSchema builds an l-way hash schema.
func HashSchema(groups []transport.RingID, global transport.RingID) Schema {
	s := Schema{Kind: HashPartitioned, GlobalGroup: global, Version: 1}
	for _, g := range groups {
		s.Partitions = append(s.Partitions, Partition{Group: g})
	}
	return s
}
