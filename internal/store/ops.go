package store

import (
	"encoding/binary"

	"amcast/internal/transport"
)

// OpKind enumerates MRP-Store operations (Table 1).
type OpKind uint8

const (
	// OpRead returns the value of an entry.
	OpRead OpKind = iota + 1
	// OpScan returns all entries within a key range.
	OpScan
	// OpUpdate replaces an existing entry's value.
	OpUpdate
	// OpInsert adds a new entry.
	OpInsert
	// OpDelete removes an entry.
	OpDelete
	// OpBatch applies a sequence of sub-operations (client-side batching
	// of small commands, Section 7.2).
	OpBatch
	// OpSplit is the partition-split marker (online reconfiguration):
	// delivered through the old partition's group, it marks the exact
	// point in the merged stream where keys >= Key stop being owned by
	// this partition. Replicas split their tree in O(log n), stash the
	// outgoing half for the controller's range transfer (scale-out
	// splits), and shrink their owned range. Value carries an encoded
	// SplitSpec.
	OpSplit
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpScan:
		return "scan"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpBatch:
		return "batch"
	case OpSplit:
		return "split"
	default:
		return "unknown"
	}
}

// Op is one MRP-Store operation.
type Op struct {
	Kind  OpKind
	Key   string
	KeyHi string // scan upper bound
	Value []byte
	Batch []Op // OpBatch sub-operations
}

// Status codes in responses.
type Status uint8

const (
	// StatusOK indicates success.
	StatusOK Status = iota + 1
	// StatusNotFound indicates a missing key (read/update/delete).
	StatusNotFound
	// StatusExists indicates an insert over an existing key.
	StatusExists
	// StatusBadRequest indicates an undecodable operation.
	StatusBadRequest
	// StatusWrongPartition indicates the executing replica no longer owns
	// the key — its partition's range shrank in a split after the client
	// loaded its schema. Clients refresh the schema and retry against the
	// new owner.
	StatusWrongPartition
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusExists:
		return "exists"
	case StatusBadRequest:
		return "bad-request"
	case StatusWrongPartition:
		return "wrong-partition"
	default:
		return "unknown"
	}
}

// SplitSpec parameterizes an OpSplit marker. It rides in the op's Value.
type SplitSpec struct {
	// ID tags the split; the stashed outgoing range and the controller's
	// range-transfer RPCs are keyed by it.
	ID uint64
	// NewGroup is the ring that takes over keys >= the op's Key.
	NewGroup transport.RingID
	// InPlace marks a split where the same replicas host the new ring
	// (they resubscribe instead of moving data): ownership and state stay
	// untouched, only the marker's position in the merged stream matters.
	InPlace bool
}

// Encode serializes a split spec.
func (s SplitSpec) Encode() []byte {
	buf := make([]byte, 13)
	binary.LittleEndian.PutUint64(buf[:8], s.ID)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(s.NewGroup))
	if s.InPlace {
		buf[12] = 1
	}
	return buf
}

// DecodeSplitSpec parses Encode output.
func DecodeSplitSpec(buf []byte) (SplitSpec, error) {
	if len(buf) < 13 {
		return SplitSpec{}, transport.ErrShortMessage
	}
	return SplitSpec{
		ID:       binary.LittleEndian.Uint64(buf[:8]),
		NewGroup: transport.RingID(binary.LittleEndian.Uint32(buf[8:12])),
		InPlace:  buf[12] == 1,
	}, nil
}

// Entry is one key-value pair in a response.
type Entry struct {
	Key   string
	Value []byte
}

// Result is a response to one operation.
type Result struct {
	Status  Status
	Entries []Entry
	Results []Result // OpBatch sub-results
}

// appendString writes a length-prefixed string.
func appendString(buf []byte, s string) []byte {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

func readString(buf []byte) (string, []byte, bool) {
	if len(buf) < 2 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	if len(buf) < n {
		return "", nil, false
	}
	return string(buf[:n]), buf[n:], true
}

func appendBytes(buf, b []byte) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b)))
	buf = append(buf, tmp[:]...)
	return append(buf, b...)
}

func readBytes(buf []byte) ([]byte, []byte, bool) {
	if len(buf) < 4 {
		return nil, nil, false
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < n {
		return nil, nil, false
	}
	return buf[:n], buf[n:], true
}

// Encode serializes an operation.
func (o Op) Encode() []byte {
	return o.appendTo(nil)
}

func (o Op) appendTo(buf []byte) []byte {
	buf = append(buf, byte(o.Kind))
	buf = appendString(buf, o.Key)
	buf = appendString(buf, o.KeyHi)
	buf = appendBytes(buf, o.Value)
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], uint16(len(o.Batch)))
	buf = append(buf, tmp[:]...)
	for _, sub := range o.Batch {
		buf = sub.appendTo(buf)
	}
	return buf
}

// DecodeOp parses an encoded operation.
func DecodeOp(buf []byte) (Op, error) {
	op, _, err := decodeOp(buf)
	return op, err
}

func decodeOp(buf []byte) (Op, []byte, error) {
	var o Op
	if len(buf) < 1 {
		return o, nil, transport.ErrShortMessage
	}
	o.Kind = OpKind(buf[0])
	buf = buf[1:]
	var ok bool
	if o.Key, buf, ok = readString(buf); !ok {
		return o, nil, transport.ErrShortMessage
	}
	if o.KeyHi, buf, ok = readString(buf); !ok {
		return o, nil, transport.ErrShortMessage
	}
	var v []byte
	if v, buf, ok = readBytes(buf); !ok {
		return o, nil, transport.ErrShortMessage
	}
	if len(v) > 0 {
		// Alias rather than copy: the state machine copies values it
		// retains (treap puts), so the delivery hot path need not pay a
		// defensive copy per operation.
		o.Value = v
	}
	if len(buf) < 2 {
		return o, nil, transport.ErrShortMessage
	}
	n := int(binary.LittleEndian.Uint16(buf[:2]))
	buf = buf[2:]
	for i := 0; i < n; i++ {
		var sub Op
		var err error
		if sub, buf, err = decodeOp(buf); err != nil {
			return o, nil, err
		}
		o.Batch = append(o.Batch, sub)
	}
	return o, buf, nil
}

// statusEnc caches the encodings of entry-less results: the write hot path
// (update/insert/delete) returns one per command, and encoding it fresh
// would allocate inside the executor's critical section.
var statusEnc [StatusWrongPartition + 1][]byte

func init() {
	for s := StatusOK; s <= StatusWrongPartition; s++ {
		statusEnc[s] = Result{Status: s}.Encode()
	}
}

// encodeResult serializes a result, reusing the cached encoding for
// status-only results. The returned slice must be treated as read-only.
func encodeResult(r Result) []byte {
	if len(r.Entries) == 0 && len(r.Results) == 0 && r.Status >= StatusOK && r.Status <= StatusWrongPartition {
		return statusEnc[r.Status]
	}
	return r.Encode()
}

// Encode serializes a result.
func (r Result) Encode() []byte {
	return r.appendTo(nil)
}

func (r Result) appendTo(buf []byte) []byte {
	buf = append(buf, byte(r.Status))
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(r.Entries)))
	buf = append(buf, tmp[:]...)
	for _, e := range r.Entries {
		buf = appendString(buf, e.Key)
		buf = appendBytes(buf, e.Value)
	}
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(r.Results)))
	buf = append(buf, tmp[:]...)
	for _, sub := range r.Results {
		buf = sub.appendTo(buf)
	}
	return buf
}

// DecodeResult parses an encoded result.
func DecodeResult(buf []byte) (Result, error) {
	r, _, err := decodeResult(buf)
	return r, err
}

func decodeResult(buf []byte) (Result, []byte, error) {
	var r Result
	if len(buf) < 5 {
		return r, nil, transport.ErrShortMessage
	}
	r.Status = Status(buf[0])
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	buf = buf[5:]
	for i := 0; i < n; i++ {
		var e Entry
		var ok bool
		if e.Key, buf, ok = readString(buf); !ok {
			return r, nil, transport.ErrShortMessage
		}
		var v []byte
		if v, buf, ok = readBytes(buf); !ok {
			return r, nil, transport.ErrShortMessage
		}
		if len(v) > 0 {
			e.Value = append([]byte(nil), v...)
		}
		r.Entries = append(r.Entries, e)
	}
	if len(buf) < 4 {
		return r, nil, transport.ErrShortMessage
	}
	m := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	for i := 0; i < m; i++ {
		var sub Result
		var err error
		if sub, buf, err = decodeResult(buf); err != nil {
			return r, nil, err
		}
		r.Results = append(r.Results, sub)
	}
	return r, buf, nil
}
