package store

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/recovery"
	"amcast/internal/smr"
	"amcast/internal/storage"
	"amcast/internal/trace"
	"amcast/internal/transport"
)

// SM is the MRP-Store replicated state machine: a sorted in-memory
// database applying Table 1 operations. It implements smr.StateMachine;
// all methods are called from the replica's single delivery goroutine, but
// a mutex still guards the tree because benchmarks read sizes concurrently.
//
// When an owned key range is configured (range-partitioned schemas), the
// SM enforces ownership: operations on keys outside [lo, hi) return
// StatusWrongPartition instead of executing, so a replica whose partition
// shrank in a split never serves stale state to clients holding an
// out-of-date schema. OpSplit markers shrink the range online, split the
// tree in O(log n) and stash the outgoing half for the controller's
// range transfer.
type SM struct {
	mu sync.Mutex
	db *treap

	// Owned range [lo, hi); hi == "" means unbounded above. bounded is
	// false for hash-partitioned schemas (no ownership enforcement).
	bounded bool
	lo, hi  string

	// outgoing stashes split-off key ranges by split id until the
	// reconfig controller has streamed them to the new partition.
	// outgoingOrder tracks stash age: at most the two newest stashes are
	// retained (current split + one predecessor), so a lost post-commit
	// release pins a range only until the next split instead of forever
	// — every retained stash rides in checkpoints until released.
	outgoing      map[uint64]outgoingRange
	outgoingOrder []uint64
	// lastSplit remembers the most recent scale-out split so a RETRIED
	// split marker (fresh id, same key, after a failed transfer) can
	// re-stash the already-captured range instead of stranding it: the
	// keys left the live tree at the first marker and exist nowhere
	// else until a transfer completes. Invalidated by ReleaseOutgoing
	// once a transfer is durable (no retry can need it after commit).
	lastSplit struct {
		id    uint64
		key   string
		out   outgoingRange
		valid bool
	}

	migrated   metrics.Counter // keys split off for migration
	splitStall metrics.Gauge   // longest OpSplit execution (ns)
}

// outgoingRange is a captured, immutable key range awaiting transfer.
type outgoingRange struct {
	snap   treapSnapshot
	lo, hi string
}

// NewSM returns an empty database state machine.
func NewSM() *SM {
	return &SM{db: newTreap()}
}

// SetOwnedRange configures ownership enforcement: operations on keys
// outside [lo, hi) return StatusWrongPartition. Call before the replica
// starts executing; a restored snapshot that carries bounds overrides it.
func (s *SM) SetOwnedRange(lo, hi string) {
	s.mu.Lock()
	s.bounded, s.lo, s.hi = true, lo, hi
	s.mu.Unlock()
}

// OwnedRange reports the enforced range (ok=false when unbounded).
func (s *SM) OwnedRange() (lo, hi string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lo, s.hi, s.bounded
}

// owns reports whether this partition still owns key. Callers hold mu.
func (s *SM) owns(key string) bool {
	if !s.bounded {
		return true
	}
	return key >= s.lo && (s.hi == "" || key < s.hi)
}

// MigratedKeys reports how many keys OpSplit markers have split off for
// migration (instrumentation for cmd/bench -reconfig).
func (s *SM) MigratedKeys() uint64 { return s.migrated.Load() }

// SplitStallMax reports the longest an OpSplit stalled execution — the
// path-copying split is O(log n), so this stays microseconds no matter
// how many keys move.
func (s *SM) SplitStallMax() time.Duration {
	return time.Duration(s.splitStall.Load())
}

// OutgoingRange serializes a stashed split-off range (with its bounds, so
// the receiving partition restores ownership along with the data). It
// runs off the delivery path: the stash is an immutable snapshot.
func (s *SM) OutgoingRange(id uint64) ([]byte, bool) {
	s.mu.Lock()
	out, ok := s.outgoing[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return dbSnapshot{db: out.snap, bounded: true, lo: out.lo, hi: out.hi}.Serialize(), true
}

// stashOutgoing records a captured range under id and enforces the
// retention cap. Callers hold mu.
func (s *SM) stashOutgoing(id uint64, out outgoingRange) {
	if s.outgoing == nil {
		s.outgoing = make(map[uint64]outgoingRange)
	}
	s.outgoing[id] = out
	s.outgoingOrder = append(s.outgoingOrder, id)
	for len(s.outgoingOrder) > 2 {
		old := s.outgoingOrder[0]
		s.outgoingOrder = s.outgoingOrder[1:]
		delete(s.outgoing, old)
	}
}

// dropOutgoing removes a stash entry. Callers hold mu.
func (s *SM) dropOutgoing(id uint64) {
	delete(s.outgoing, id)
	for i, x := range s.outgoingOrder {
		if x == id {
			s.outgoingOrder = append(s.outgoingOrder[:i], s.outgoingOrder[i+1:]...)
			break
		}
	}
}

// ReleaseOutgoing drops a stashed range once its transfer completed
// (including the retry stash — a committed split can no longer need it).
func (s *SM) ReleaseOutgoing(id uint64) {
	s.mu.Lock()
	s.dropOutgoing(id)
	if s.lastSplit.valid && s.lastSplit.id == id {
		s.lastSplit.valid = false
		s.lastSplit.out = outgoingRange{}
	}
	s.mu.Unlock()
}

var (
	_ smr.StateMachine     = (*SM)(nil)
	_ smr.BatchExecutor    = (*SM)(nil)
	_ smr.SnapshotCapturer = (*SM)(nil)
)

// Execute applies one encoded operation.
//
//lint:deterministic
func (s *SM) Execute(_ transport.RingID, raw []byte) []byte {
	op, err := DecodeOp(raw)
	if err != nil {
		return Result{Status: StatusBadRequest}.Encode()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return encodeResult(s.apply(op))
}

// ExecuteBatch applies a run of encoded operations under one lock
// acquisition (batch-at-a-time delivery's entry point).
//
//lint:deterministic
func (s *SM) ExecuteBatch(_ []transport.RingID, ops [][]byte) [][]byte {
	out := make([][]byte, len(ops))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, raw := range ops {
		op, err := DecodeOp(raw)
		if err != nil {
			out[i] = encodeResult(Result{Status: StatusBadRequest})
			continue
		}
		out[i] = encodeResult(s.apply(op))
	}
	return out
}

func (s *SM) apply(op Op) Result {
	switch op.Kind {
	case OpRead:
		if !s.owns(op.Key) {
			return Result{Status: StatusWrongPartition}
		}
		if v, ok := s.db.Get(op.Key); ok {
			return Result{Status: StatusOK, Entries: []Entry{{Key: op.Key, Value: append([]byte(nil), v...)}}}
		}
		return Result{Status: StatusNotFound}
	case OpScan:
		// Scans clip to the owned range: covering partitions each return
		// their share, and a partition that shrank in a split simply
		// contributes fewer keys (the new owner serves the rest).
		var entries []Entry
		s.db.Range(op.Key, op.KeyHi, func(k string, v []byte) bool {
			if s.owns(k) {
				entries = append(entries, Entry{Key: k, Value: append([]byte(nil), v...)})
			}
			return true
		})
		return Result{Status: StatusOK, Entries: entries}
	case OpUpdate:
		if !s.owns(op.Key) {
			return Result{Status: StatusWrongPartition}
		}
		if _, ok := s.db.Get(op.Key); !ok {
			return Result{Status: StatusNotFound}
		}
		s.db.Put(op.Key, append([]byte(nil), op.Value...))
		return Result{Status: StatusOK}
	case OpInsert:
		if !s.owns(op.Key) {
			return Result{Status: StatusWrongPartition}
		}
		if _, ok := s.db.Get(op.Key); ok {
			return Result{Status: StatusExists}
		}
		s.db.Put(op.Key, append([]byte(nil), op.Value...))
		return Result{Status: StatusOK}
	case OpDelete:
		if !s.owns(op.Key) {
			return Result{Status: StatusWrongPartition}
		}
		if s.db.Delete(op.Key) {
			return Result{Status: StatusOK}
		}
		return Result{Status: StatusNotFound}
	case OpBatch:
		res := Result{Status: StatusOK}
		for _, sub := range op.Batch {
			res.Results = append(res.Results, s.apply(sub))
		}
		return res
	case OpSplit:
		return s.applySplit(op)
	default:
		return Result{Status: StatusBadRequest}
	}
}

// applySplit executes the partition-split marker. In-place splits (same
// replicas host the new ring) change no state — the marker only pins the
// epoch transition's position in the merged stream. Scale-out splits cut
// the tree at the split key in O(log n) path copies, stash the outgoing
// half for the range transfer and shrink the owned range, so every
// operation on a moved key from here on returns StatusWrongPartition.
func (s *SM) applySplit(op Op) Result {
	spec, err := DecodeSplitSpec(op.Value)
	if err != nil {
		return Result{Status: StatusBadRequest}
	}
	if spec.InPlace {
		return Result{Status: StatusOK}
	}
	if s.hi != "" && s.hi <= op.Key {
		// Replayed or retried marker: the range at and above this key
		// already moved out of the live tree. If this is a RETRY of the
		// last split (same key, fresh id after a failed transfer),
		// re-stash the captured range under the new id so the
		// controller's fetch can succeed — those keys exist nowhere
		// else. A true replay of an older marker stays a no-op.
		if s.hi == op.Key && s.lastSplit.valid && s.lastSplit.key == op.Key && s.lastSplit.id != spec.ID {
			// Re-key the stash: the failed attempt's entry would
			// otherwise pin the captured range forever.
			s.dropOutgoing(s.lastSplit.id)
			s.stashOutgoing(spec.ID, s.lastSplit.out)
			s.lastSplit.id = spec.ID
		}
		return Result{Status: StatusOK}
	}
	start := time.Now() //lint:allow determinism split-stall telemetry only: the duration feeds a metrics gauge, never state or serialized bytes
	oldHi := s.hi
	out := s.db.splitOff(op.Key)
	rng := outgoingRange{snap: out, lo: op.Key, hi: oldHi}
	s.stashOutgoing(spec.ID, rng)
	s.lastSplit.id, s.lastSplit.key, s.lastSplit.out, s.lastSplit.valid = spec.ID, op.Key, rng, true
	s.bounded, s.hi = true, op.Key
	s.migrated.Add(uint64(out.Len()))
	s.splitStall.SetMax(int64(time.Since(start))) //lint:allow determinism split-stall telemetry only: the duration feeds a metrics gauge, never state or serialized bytes
	return Result{Status: StatusOK}
}

// Len reports the number of entries (instrumentation).
func (s *SM) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Len()
}

// SnapshotLen reports the entry count of a serialized SM snapshot
// (the count header), without decoding the entries.
func SnapshotLen(snap []byte) int {
	if len(snap) < 8 {
		return 0
	}
	return int(binary.LittleEndian.Uint64(snap[:8]))
}

// dbSnapshot adapts a captured treap version to smr.StateSnapshot. It
// carries the owned-range bounds captured with the data, so a restored
// replica enforces the post-split ownership its checkpoint was taken
// under, not whatever an out-of-date schema would suggest — and any
// in-flight outgoing split ranges: between a split marker and the
// controller's release, the moved keys exist ONLY in the stash, so a
// checkpoint that recorded the shrunken bounds without the stash would
// make a crash before the transfer completes lose the range permanently.
type dbSnapshot struct {
	db       treapSnapshot
	bounded  bool
	lo, hi   string
	outgoing map[uint64]outgoingRange
}

// Serialize encodes the captured database: count(8) then length-prefixed
// pairs in key order, then (when ownership is enforced) a bounds trailer
// and the in-flight outgoing stash. Runs off the delivery path (the
// captured version is immutable), so serialization cost no longer stalls
// delivery.
//
//lint:deterministic
func (d dbSnapshot) Serialize() []byte {
	buf := make([]byte, 0, 8+d.db.Len()*16)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(d.db.Len()))
	buf = append(buf, tmp[:]...)
	d.db.All(func(k string, v []byte) bool {
		buf = appendString(buf, k)
		buf = appendBytes(buf, v)
		return true
	})
	if d.bounded {
		buf = append(buf, 1)
		buf = appendString(buf, d.lo)
		buf = appendString(buf, d.hi)
		// Emit stashes in ascending id order: identical states must
		// serialize to identical (checksummable) bytes regardless of
		// map iteration order, as with the dedup table.
		ids := make([]uint64, 0, len(d.outgoing))
		for id := range d.outgoing {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(ids)))
		buf = append(buf, tmp[:4]...)
		for _, id := range ids {
			out := d.outgoing[id]
			binary.LittleEndian.PutUint64(tmp[:], id)
			buf = append(buf, tmp[:]...)
			buf = appendString(buf, out.lo)
			buf = appendString(buf, out.hi)
			binary.LittleEndian.PutUint64(tmp[:], uint64(out.snap.Len()))
			buf = append(buf, tmp[:]...)
			out.snap.All(func(k string, v []byte) bool {
				buf = appendString(buf, k)
				buf = appendBytes(buf, v)
				return true
			})
		}
	}
	return buf
}

// CaptureSnapshot captures the current database version in O(1) — the
// treap is copy-on-write, so the returned view shares structure with the
// live tree but never changes. The outgoing stash rides along by
// reference (its snapshots are immutable too).
func (s *SM) CaptureSnapshot() smr.StateSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := dbSnapshot{db: s.db.snapshot(), bounded: s.bounded, lo: s.lo, hi: s.hi}
	if len(s.outgoing) > 0 {
		d.outgoing = make(map[uint64]outgoingRange, len(s.outgoing))
		for id, out := range s.outgoing {
			d.outgoing[id] = out
		}
	}
	return d
}

// Snapshot serializes the database: count(8) then length-prefixed pairs in
// key order (plus the bounds trailer when ownership is enforced).
func (s *SM) Snapshot() []byte {
	return s.CaptureSnapshot().Serialize()
}

// Restore replaces the database with a snapshot. A bounds trailer (written
// by post-split checkpoints and range transfers) restores ownership
// enforcement; its absence keeps whatever bounds were configured.
func (s *SM) Restore(snap []byte) error {
	if len(snap) < 8 {
		return recovery.ErrCorrupt
	}
	n := binary.LittleEndian.Uint64(snap[:8])
	snap = snap[8:]
	db := newTreap()
	for i := uint64(0); i < n; i++ {
		k, rest, ok := readString(snap)
		if !ok {
			return recovery.ErrCorrupt
		}
		v, rest2, ok := readBytes(rest)
		if !ok {
			return recovery.ErrCorrupt
		}
		db.Put(k, append([]byte(nil), v...))
		snap = rest2
	}
	bounded := false
	var lo, hi string
	var outgoing map[uint64]outgoingRange
	if len(snap) > 0 && snap[0] == 1 {
		var ok bool
		if lo, snap, ok = readString(snap[1:]); !ok {
			return recovery.ErrCorrupt
		}
		if hi, snap, ok = readString(snap); !ok {
			return recovery.ErrCorrupt
		}
		bounded = true
		// In-flight outgoing stash (absent in pre-reconfig snapshots):
		// rebuild each captured range so a restarted replica can still
		// serve — or retry — the transfer of keys that exist nowhere
		// else.
		if len(snap) >= 4 {
			nOut := int(binary.LittleEndian.Uint32(snap[:4]))
			snap = snap[4:]
			for j := 0; j < nOut; j++ {
				if len(snap) < 8 {
					return recovery.ErrCorrupt
				}
				id := binary.LittleEndian.Uint64(snap[:8])
				snap = snap[8:]
				var olo, ohi string
				if olo, snap, ok = readString(snap); !ok {
					return recovery.ErrCorrupt
				}
				if ohi, snap, ok = readString(snap); !ok {
					return recovery.ErrCorrupt
				}
				if len(snap) < 8 {
					return recovery.ErrCorrupt
				}
				cnt := binary.LittleEndian.Uint64(snap[:8])
				snap = snap[8:]
				rdb := newTreap()
				for i := uint64(0); i < cnt; i++ {
					k, rest, ok := readString(snap)
					if !ok {
						return recovery.ErrCorrupt
					}
					v, rest2, ok := readBytes(rest)
					if !ok {
						return recovery.ErrCorrupt
					}
					rdb.Put(k, append([]byte(nil), v...))
					snap = rest2
				}
				if outgoing == nil {
					outgoing = make(map[uint64]outgoingRange)
				}
				outgoing[id] = outgoingRange{snap: rdb.snapshot(), lo: olo, hi: ohi}
			}
		}
	}
	s.mu.Lock()
	s.db = db
	if bounded {
		s.bounded, s.lo, s.hi = true, lo, hi
		s.outgoing = outgoing
		// Ascending split ids approximate stash age (ids are minted
		// monotonically per controller) for the retention cap.
		s.outgoingOrder = s.outgoingOrder[:0]
		for id := range outgoing {
			s.outgoingOrder = append(s.outgoingOrder, id)
		}
		sort.Slice(s.outgoingOrder, func(i, j int) bool { return s.outgoingOrder[i] < s.outgoingOrder[j] })
		s.lastSplit.valid = false
		// The stash whose low bound equals the restored owned hi is the
		// most recent split at the current boundary — re-arm the retry
		// path for it.
		for id, out := range outgoing {
			if out.lo == hi {
				s.lastSplit.id, s.lastSplit.key, s.lastSplit.out, s.lastSplit.valid = id, out.lo, out, true
				break
			}
		}
	}
	s.mu.Unlock()
	return nil
}

// ServerConfig configures one MRP-Store replica process.
type ServerConfig struct {
	// Self is the process id.
	Self transport.ProcessID
	// Partition is the partition ring this server replicates.
	Partition transport.RingID
	// Peers are the other replicas of the same partition.
	Peers []transport.ProcessID
	// Router/Coord wire the process into the deployment.
	Router *transport.Router
	Coord  *coord.Service
	// NewLog supplies acceptor logs (defaults to in-memory); an error
	// fails server startup.
	NewLog func(transport.RingID) (storage.Log, error)
	// Checkpoints persists checkpoints; defaults to an in-memory store.
	Checkpoints recovery.Store
	// CheckpointEvery commands between checkpoints (0 disables).
	CheckpointEvery int
	// SyncCheckpoints forces the legacy blocking checkpoint path
	// (benchmark comparison only; see smr.ReplicaConfig).
	SyncCheckpoints bool
	// Ring tunes the consensus rings.
	Ring core.RingOptions
	// Batch bounds the delivery batches executed by the replica.
	Batch core.BatchOptions
	// M is the deterministic merge quota.
	M int
	// GlobalLambda overrides the rate-leveling λ on the global ring (0
	// keeps Ring.Lambda). A higher global λ keeps the deterministic
	// merge from waiting on the (mostly idle) global ring.
	GlobalLambda int
	// RecoveryTimeout bounds peer recovery; zero skips peer recovery.
	RecoveryTimeout time.Duration
	// ExecWorkers sizes the conflict-aware parallel apply pool: 0 or 1
	// applies sequentially, >= 2 uses that many workers, negative uses
	// GOMAXPROCS (see smr.ReplicaConfig.ExecWorkers).
	ExecWorkers int
	// Tracer, when set, records this process's spans for distributed
	// tracing (telemetry only).
	Tracer *trace.Recorder
}

// Server is one MRP-Store replica: it loads the schema, recovers, joins
// its partition ring (and the global ring if the schema has one) and
// serves.
type Server struct {
	sm      *SM
	replica *smr.Replica
	schema  Schema
}

// NewServer boots a replica per the published schema.
func NewServer(cfg ServerConfig) (*Server, error) {
	schema, err := LoadSchema(cfg.Coord)
	if err != nil {
		return nil, err
	}
	if cfg.Checkpoints == nil {
		cfg.Checkpoints = recovery.NewMemStore()
	}
	groups := []transport.RingID{cfg.Partition}
	if schema.GlobalGroup != 0 {
		groups = append(groups, schema.GlobalGroup)
	}
	built, err := smr.BuildNode(smr.RecoveryOptions{
		Core: core.Config{
			Self:           cfg.Self,
			Router:         cfg.Router,
			Coord:          cfg.Coord,
			NewLog:         cfg.NewLog,
			M:              cfg.M,
			Ring:           cfg.Ring,
			Batch:          cfg.Batch,
			Tracer:         cfg.Tracer,
			LambdaOverride: globalLambdaOverride(schema.GlobalGroup, cfg.GlobalLambda),
		},
		Store:   cfg.Checkpoints,
		Peers:   peersOrNil(cfg.RecoveryTimeout, cfg.Peers),
		Service: cfg.Router.Service(),
		Timeout: cfg.RecoveryTimeout,
	})
	if err != nil {
		return nil, err
	}
	sm := NewSM()
	// Range-partitioned schemas enforce ownership: configure the bounds
	// from the schema; a recovered checkpoint that carries (post-split)
	// bounds overrides them during restore.
	if lo, hi, ok := schema.RangeOf(cfg.Partition); ok {
		sm.SetOwnedRange(lo, hi)
	}
	tr := cfg.Router.Transport()
	rep, err := smr.NewReplica(smr.ReplicaConfig{
		Self:            cfg.Self,
		Partition:       cfg.Partition,
		Groups:          groups,
		Peers:           cfg.Peers,
		Node:            built.Node,
		Transport:       tr,
		Service:         cfg.Router.Service(),
		SM:              sm,
		Checkpoints:     cfg.Checkpoints,
		CheckpointEvery: cfg.CheckpointEvery,
		SyncCheckpoints: cfg.SyncCheckpoints,
		ServiceHook:     rangeTransferHook(sm, tr),
		ExecWorkers:     cfg.ExecWorkers,
		Tracer:          cfg.Tracer,
	}, built.Checkpoint)
	if err != nil {
		built.Node.Stop()
		return nil, fmt.Errorf("store: start replica: %w", err)
	}
	return &Server{sm: sm, replica: rep, schema: schema}, nil
}

// rangeTransferHook serves the reconfig controller's split-range RPCs on
// the replica's service goroutine: KindRangeReq streams a stashed
// outgoing range back as CRC-verified KindRangeChunk frames (Count 1
// releases the stash instead, once the controller confirmed the
// transfer). Serialization runs here, off the delivery path — the stash
// is an immutable snapshot.
func rangeTransferHook(sm *SM, tr transport.Transport) func(transport.Message) bool {
	return func(m transport.Message) bool {
		if m.Kind != transport.KindRangeReq {
			return false
		}
		if m.Count == 1 {
			sm.ReleaseOutgoing(m.Instance)
			return true
		}
		if tr == nil {
			return true
		}
		enc, ok := sm.OutgoingRange(m.Instance)
		if !ok {
			// Stash unknown (e.g. this replica restarted since the
			// marker): stay silent, the controller's deadline moves it
			// to the next peer.
			return true
		}
		smr.SendChunked(tr, m.From, transport.KindRangeChunk, m.Seq, enc)
		return true
	}
}

// globalLambdaOverride builds the per-ring λ override map.
func globalLambdaOverride(global transport.RingID, lambda int) map[transport.RingID]int {
	if global == 0 || lambda == 0 {
		return nil
	}
	return map[transport.RingID]int{global: lambda}
}

func peersOrNil(timeout time.Duration, peers []transport.ProcessID) []transport.ProcessID {
	if timeout == 0 {
		return nil
	}
	return peers
}

// SM exposes the state machine (instrumentation).
func (s *Server) SM() *SM { return s.sm }

// Replica exposes the underlying replica (instrumentation).
func (s *Server) Replica() *smr.Replica { return s.replica }

// Stop halts the server.
func (s *Server) Stop() { s.replica.Stop() }

// Client is the MRP-Store client API (Table 1). It is safe for concurrent
// use; each call blocks until the required responses arrive.
//
// The client caches the partitioning schema and refreshes it online: when
// a replica answers StatusWrongPartition (the key moved in a split after
// this client loaded its schema), the client reloads the schema from the
// coordination service and retries against the new owner, so live
// reconfiguration is transparent to callers.
type Client struct {
	svc *coord.Service
	cl  *smr.Client
	// Timeout per operation (also bounds wrong-partition retries).
	Timeout time.Duration

	// watch carries schema-change notifications from the coordination
	// service; Schema drains it opportunistically so clients pick up
	// committed splits without waiting to hit a WrongPartition.
	watch   <-chan []byte
	unwatch func()

	// rr rotates local reads across a partition's replicas.
	rr atomic.Uint32

	mu     sync.RWMutex
	schema Schema
}

// NewClient builds a store client over an smr client and the published
// schema.
func NewClient(svc *coord.Service, cl *smr.Client) (*Client, error) {
	schema, err := LoadSchema(svc)
	if err != nil {
		return nil, err
	}
	watch, unwatch := svc.WatchMeta(SchemaMetaKey)
	return &Client{svc: svc, schema: schema, cl: cl, Timeout: 10 * time.Second, watch: watch, unwatch: unwatch}, nil
}

// Close unsubscribes the client's schema watcher. Optional; a client is
// otherwise stateless.
func (c *Client) Close() {
	if c.unwatch != nil {
		c.unwatch()
	}
}

// OverloadBackoffs reports how many times a coordinator shed one of this
// client's commands under admission control and the underlying smr
// client backed off (bounded, jittered) instead of retrying blindly.
// Transient overload never surfaces to callers — operations simply take
// a backoff longer; only sustained overload fails, with an error
// wrapping ring.ErrOverloaded.
func (c *Client) OverloadBackoffs() uint64 { return c.cl.OverloadBackoffs() }

// Schema returns the partitioning schema in use, first applying any
// pending schema-change notification (newer versions only — the cache
// never moves backwards).
func (c *Client) Schema() Schema {
	c.maybeRefresh()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.schema
}

// maybeRefresh drains pending schema-change notifications and reloads
// the schema only when one arrived; it reports whether the cached
// version advanced. The steady state (no reconfiguration) costs one
// non-blocking channel poll.
func (c *Client) maybeRefresh() bool {
	signaled := false
	for {
		select {
		case <-c.watch:
			signaled = true
			continue
		default:
		}
		break
	}
	if !signaled {
		return false
	}
	return c.refreshSchema()
}

// refreshSchema reloads the schema from the coordination service,
// keeping the cache monotonic (a concurrent refresh may already have
// installed a newer version). It reports whether the cached version
// advanced.
func (c *Client) refreshSchema() bool {
	schema, err := LoadSchema(c.svc)
	if err != nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if schema.Version <= c.schema.Version {
		return false
	}
	c.schema = schema
	return true
}

// Read returns the value of entry k, if existent.
func (c *Client) Read(k string) ([]byte, bool, error) {
	res, err := c.single(Op{Kind: OpRead, Key: k})
	if err != nil {
		return nil, false, err
	}
	if res.Status == StatusNotFound {
		return nil, false, nil
	}
	if res.Status != StatusOK || len(res.Entries) == 0 {
		return nil, false, fmt.Errorf("store: read failed: %s", res.Status)
	}
	return res.Entries[0].Value, true, nil
}

// Insert adds tuple (k, v) to the database.
func (c *Client) Insert(k string, v []byte) error {
	res, err := c.single(Op{Kind: OpInsert, Key: k, Value: v})
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("store: insert %q: %s", k, res.Status)
	}
	return nil
}

// Update replaces entry k with value v, if existent.
func (c *Client) Update(k string, v []byte) error {
	res, err := c.single(Op{Kind: OpUpdate, Key: k, Value: v})
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("store: update %q: %s", k, res.Status)
	}
	return nil
}

// Delete removes entry k from the database.
func (c *Client) Delete(k string) error {
	res, err := c.single(Op{Kind: OpDelete, Key: k})
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("store: delete %q: %s", k, res.Status)
	}
	return nil
}

// single routes a single-key operation to the owning partition. On
// StatusWrongPartition — the partition shrank in a split after this
// client loaded its schema — it refreshes the schema and retries against
// the new owner until the deadline; during the short window between a
// split marker and the schema flip it polls for the new version.
func (c *Client) single(op Op) (Result, error) {
	enc := op.Encode()
	deadline := time.Now().Add(c.Timeout)
	for {
		group := c.Schema().PartitionOf(op.Key)
		resps, err := c.cl.Submit([]transport.RingID{group}, enc, []transport.RingID{group}, 1, c.Timeout)
		if err != nil {
			return Result{}, err
		}
		res, err := DecodeResult(resps[0])
		if err != nil || res.Status != StatusWrongPartition {
			return res, err
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("store: %s %q: no owning partition found before deadline: %s", op.Kind, op.Key, res.Status)
		}
		if !c.refreshSchema() {
			// The split marker executed but the new schema is not
			// published yet; wait out the flip.
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// Scan returns all entries within range k..k'. It is multicast to the
// global group when one exists (totally ordered with everything) or to
// every covering partition group otherwise. If the schema version
// advances while the scan is in flight (a split committed), the scan is
// retried under the new schema: partitions clip scans to their owned
// range, so a scan fanned out under a stale schema could miss the keys
// that moved.
//
// Known window: between a split marker executing and the new schema
// publishing (the transfer/boot phase of Controller.Split, typically
// well under a second), a scan crossing the split key observes only the
// shrunken old partition — the moved keys are reported by neither side
// yet. Single-key operations fail loudly (StatusWrongPartition) in the
// same window; scans cannot distinguish "clipped because another
// partition serves the rest" from "clipped because a split is in
// flight" until the new schema exists to retry against.
func (c *Client) Scan(k, kHi string) ([]Entry, error) {
	op := Op{Kind: OpScan, Key: k, KeyHi: kHi}
	deadline := time.Now().Add(c.Timeout)
	for {
		schema := c.Schema()
		targets := schema.GroupsForScan(k, kHi)
		groups := targets
		if schema.GlobalGroup != 0 {
			groups = []transport.RingID{schema.GlobalGroup}
		}
		resps, err := c.cl.Submit(groups, op.Encode(), targets, len(targets), c.Timeout)
		if err != nil {
			return nil, err
		}
		var all []Entry
		for _, raw := range resps {
			res, err := DecodeResult(raw)
			if err != nil {
				return nil, err
			}
			if res.Status != StatusOK {
				return nil, fmt.Errorf("store: scan failed: %s", res.Status)
			}
			all = append(all, res.Entries...)
		}
		// Retry when the schema advanced past the version this fan-out
		// used — comparing versions (not maybeRefresh's advanced-the-
		// cache signal) so a concurrent caller's refresh doesn't mask
		// the change from us.
		c.maybeRefresh()
		if c.Schema().Version > schema.Version && !time.Now().After(deadline) {
			continue // a split committed mid-scan; re-run under the new schema
		}
		sortEntries(all)
		return all, nil
	}
}

// Batch applies several single-partition operations grouped per partition
// (client-side batching, Section 7.2). All ops in one call must belong to
// the same partition; the helper BatchByPartition groups them.
func (c *Client) Batch(group transport.RingID, ops []Op) ([]Result, error) {
	op := Op{Kind: OpBatch, Batch: ops}
	resps, err := c.cl.Submit([]transport.RingID{group}, op.Encode(), []transport.RingID{group}, 1, c.Timeout)
	if err != nil {
		return nil, err
	}
	res, err := DecodeResult(resps[0])
	if err != nil {
		return nil, err
	}
	return res.Results, nil
}

// BatchByPartition groups operations by owning partition.
func (c *Client) BatchByPartition(ops []Op) map[transport.RingID][]Op {
	schema := c.Schema()
	out := make(map[transport.RingID][]Op)
	for _, op := range ops {
		g := schema.PartitionOf(op.Key)
		out[g] = append(out[g], op)
	}
	return out
}

func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
}
