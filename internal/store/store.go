package store

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/recovery"
	"amcast/internal/smr"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// SM is the MRP-Store replicated state machine: a sorted in-memory
// database applying Table 1 operations. It implements smr.StateMachine;
// all methods are called from the replica's single delivery goroutine, but
// a mutex still guards the tree because benchmarks read sizes concurrently.
type SM struct {
	mu sync.Mutex
	db *treap
}

// NewSM returns an empty database state machine.
func NewSM() *SM {
	return &SM{db: newTreap()}
}

var (
	_ smr.StateMachine     = (*SM)(nil)
	_ smr.BatchExecutor    = (*SM)(nil)
	_ smr.SnapshotCapturer = (*SM)(nil)
)

// Execute applies one encoded operation.
func (s *SM) Execute(_ transport.RingID, raw []byte) []byte {
	op, err := DecodeOp(raw)
	if err != nil {
		return Result{Status: StatusBadRequest}.Encode()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return encodeResult(s.apply(op))
}

// ExecuteBatch applies a run of encoded operations under one lock
// acquisition (batch-at-a-time delivery's entry point).
func (s *SM) ExecuteBatch(_ []transport.RingID, ops [][]byte) [][]byte {
	out := make([][]byte, len(ops))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, raw := range ops {
		op, err := DecodeOp(raw)
		if err != nil {
			out[i] = encodeResult(Result{Status: StatusBadRequest})
			continue
		}
		out[i] = encodeResult(s.apply(op))
	}
	return out
}

func (s *SM) apply(op Op) Result {
	switch op.Kind {
	case OpRead:
		if v, ok := s.db.Get(op.Key); ok {
			return Result{Status: StatusOK, Entries: []Entry{{Key: op.Key, Value: append([]byte(nil), v...)}}}
		}
		return Result{Status: StatusNotFound}
	case OpScan:
		var entries []Entry
		s.db.Range(op.Key, op.KeyHi, func(k string, v []byte) bool {
			entries = append(entries, Entry{Key: k, Value: append([]byte(nil), v...)})
			return true
		})
		return Result{Status: StatusOK, Entries: entries}
	case OpUpdate:
		if _, ok := s.db.Get(op.Key); !ok {
			return Result{Status: StatusNotFound}
		}
		s.db.Put(op.Key, append([]byte(nil), op.Value...))
		return Result{Status: StatusOK}
	case OpInsert:
		if _, ok := s.db.Get(op.Key); ok {
			return Result{Status: StatusExists}
		}
		s.db.Put(op.Key, append([]byte(nil), op.Value...))
		return Result{Status: StatusOK}
	case OpDelete:
		if s.db.Delete(op.Key) {
			return Result{Status: StatusOK}
		}
		return Result{Status: StatusNotFound}
	case OpBatch:
		res := Result{Status: StatusOK}
		for _, sub := range op.Batch {
			res.Results = append(res.Results, s.apply(sub))
		}
		return res
	default:
		return Result{Status: StatusBadRequest}
	}
}

// Len reports the number of entries (instrumentation).
func (s *SM) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Len()
}

// dbSnapshot adapts a captured treap version to smr.StateSnapshot.
type dbSnapshot struct {
	db treapSnapshot
}

// Serialize encodes the captured database: count(8) then length-prefixed
// pairs in key order. Runs off the delivery path (the captured version is
// immutable), so serialization cost no longer stalls delivery.
func (d dbSnapshot) Serialize() []byte {
	buf := make([]byte, 0, 8+d.db.Len()*16)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(d.db.Len()))
	buf = append(buf, tmp[:]...)
	d.db.All(func(k string, v []byte) bool {
		buf = appendString(buf, k)
		buf = appendBytes(buf, v)
		return true
	})
	return buf
}

// CaptureSnapshot captures the current database version in O(1) — the
// treap is copy-on-write, so the returned view shares structure with the
// live tree but never changes.
func (s *SM) CaptureSnapshot() smr.StateSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return dbSnapshot{db: s.db.snapshot()}
}

// Snapshot serializes the database: count(8) then length-prefixed pairs in
// key order.
func (s *SM) Snapshot() []byte {
	return s.CaptureSnapshot().Serialize()
}

// Restore replaces the database with a snapshot.
func (s *SM) Restore(snap []byte) error {
	if len(snap) < 8 {
		return recovery.ErrCorrupt
	}
	n := binary.LittleEndian.Uint64(snap[:8])
	snap = snap[8:]
	db := newTreap()
	for i := uint64(0); i < n; i++ {
		k, rest, ok := readString(snap)
		if !ok {
			return recovery.ErrCorrupt
		}
		v, rest2, ok := readBytes(rest)
		if !ok {
			return recovery.ErrCorrupt
		}
		db.Put(k, append([]byte(nil), v...))
		snap = rest2
	}
	s.mu.Lock()
	s.db = db
	s.mu.Unlock()
	return nil
}

// ServerConfig configures one MRP-Store replica process.
type ServerConfig struct {
	// Self is the process id.
	Self transport.ProcessID
	// Partition is the partition ring this server replicates.
	Partition transport.RingID
	// Peers are the other replicas of the same partition.
	Peers []transport.ProcessID
	// Router/Coord wire the process into the deployment.
	Router *transport.Router
	Coord  *coord.Service
	// NewLog supplies acceptor logs (defaults to in-memory); an error
	// fails server startup.
	NewLog func(transport.RingID) (storage.Log, error)
	// Checkpoints persists checkpoints; defaults to an in-memory store.
	Checkpoints recovery.Store
	// CheckpointEvery commands between checkpoints (0 disables).
	CheckpointEvery int
	// SyncCheckpoints forces the legacy blocking checkpoint path
	// (benchmark comparison only; see smr.ReplicaConfig).
	SyncCheckpoints bool
	// Ring tunes the consensus rings.
	Ring core.RingOptions
	// Batch bounds the delivery batches executed by the replica.
	Batch core.BatchOptions
	// M is the deterministic merge quota.
	M int
	// GlobalLambda overrides the rate-leveling λ on the global ring (0
	// keeps Ring.Lambda). A higher global λ keeps the deterministic
	// merge from waiting on the (mostly idle) global ring.
	GlobalLambda int
	// RecoveryTimeout bounds peer recovery; zero skips peer recovery.
	RecoveryTimeout time.Duration
}

// Server is one MRP-Store replica: it loads the schema, recovers, joins
// its partition ring (and the global ring if the schema has one) and
// serves.
type Server struct {
	sm      *SM
	replica *smr.Replica
	schema  Schema
}

// NewServer boots a replica per the published schema.
func NewServer(cfg ServerConfig) (*Server, error) {
	schema, err := LoadSchema(cfg.Coord)
	if err != nil {
		return nil, err
	}
	if cfg.Checkpoints == nil {
		cfg.Checkpoints = recovery.NewMemStore()
	}
	groups := []transport.RingID{cfg.Partition}
	if schema.GlobalGroup != 0 {
		groups = append(groups, schema.GlobalGroup)
	}
	built, err := smr.BuildNode(smr.RecoveryOptions{
		Core: core.Config{
			Self:           cfg.Self,
			Router:         cfg.Router,
			Coord:          cfg.Coord,
			NewLog:         cfg.NewLog,
			M:              cfg.M,
			Ring:           cfg.Ring,
			Batch:          cfg.Batch,
			LambdaOverride: globalLambdaOverride(schema.GlobalGroup, cfg.GlobalLambda),
		},
		Store:   cfg.Checkpoints,
		Peers:   peersOrNil(cfg.RecoveryTimeout, cfg.Peers),
		Service: cfg.Router.Service(),
		Timeout: cfg.RecoveryTimeout,
	})
	if err != nil {
		return nil, err
	}
	sm := NewSM()
	rep, err := smr.NewReplica(smr.ReplicaConfig{
		Self:            cfg.Self,
		Partition:       cfg.Partition,
		Groups:          groups,
		Peers:           cfg.Peers,
		Node:            built.Node,
		Transport:       cfg.Router.Transport(),
		Service:         cfg.Router.Service(),
		SM:              sm,
		Checkpoints:     cfg.Checkpoints,
		CheckpointEvery: cfg.CheckpointEvery,
		SyncCheckpoints: cfg.SyncCheckpoints,
	}, built.Checkpoint)
	if err != nil {
		built.Node.Stop()
		return nil, fmt.Errorf("store: start replica: %w", err)
	}
	return &Server{sm: sm, replica: rep, schema: schema}, nil
}

// globalLambdaOverride builds the per-ring λ override map.
func globalLambdaOverride(global transport.RingID, lambda int) map[transport.RingID]int {
	if global == 0 || lambda == 0 {
		return nil
	}
	return map[transport.RingID]int{global: lambda}
}

func peersOrNil(timeout time.Duration, peers []transport.ProcessID) []transport.ProcessID {
	if timeout == 0 {
		return nil
	}
	return peers
}

// SM exposes the state machine (instrumentation).
func (s *Server) SM() *SM { return s.sm }

// Replica exposes the underlying replica (instrumentation).
func (s *Server) Replica() *smr.Replica { return s.replica }

// Stop halts the server.
func (s *Server) Stop() { s.replica.Stop() }

// Client is the MRP-Store client API (Table 1). It is safe for concurrent
// use; each call blocks until the required responses arrive.
type Client struct {
	schema Schema
	cl     *smr.Client
	// Timeout per operation.
	Timeout time.Duration
}

// NewClient builds a store client over an smr client and the published
// schema.
func NewClient(svc *coord.Service, cl *smr.Client) (*Client, error) {
	schema, err := LoadSchema(svc)
	if err != nil {
		return nil, err
	}
	return &Client{schema: schema, cl: cl, Timeout: 10 * time.Second}, nil
}

// Schema returns the partitioning schema in use.
func (c *Client) Schema() Schema { return c.schema }

// Read returns the value of entry k, if existent.
func (c *Client) Read(k string) ([]byte, bool, error) {
	res, err := c.single(Op{Kind: OpRead, Key: k})
	if err != nil {
		return nil, false, err
	}
	if res.Status == StatusNotFound {
		return nil, false, nil
	}
	if res.Status != StatusOK || len(res.Entries) == 0 {
		return nil, false, fmt.Errorf("store: read failed: %s", res.Status)
	}
	return res.Entries[0].Value, true, nil
}

// Insert adds tuple (k, v) to the database.
func (c *Client) Insert(k string, v []byte) error {
	res, err := c.single(Op{Kind: OpInsert, Key: k, Value: v})
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("store: insert %q: %s", k, res.Status)
	}
	return nil
}

// Update replaces entry k with value v, if existent.
func (c *Client) Update(k string, v []byte) error {
	res, err := c.single(Op{Kind: OpUpdate, Key: k, Value: v})
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("store: update %q: %s", k, res.Status)
	}
	return nil
}

// Delete removes entry k from the database.
func (c *Client) Delete(k string) error {
	res, err := c.single(Op{Kind: OpDelete, Key: k})
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("store: delete %q: %s", k, res.Status)
	}
	return nil
}

// single routes a single-key operation to the owning partition.
func (c *Client) single(op Op) (Result, error) {
	group := c.schema.PartitionOf(op.Key)
	resps, err := c.cl.Submit([]transport.RingID{group}, op.Encode(), []transport.RingID{group}, 1, c.Timeout)
	if err != nil {
		return Result{}, err
	}
	return DecodeResult(resps[0])
}

// Scan returns all entries within range k..k'. It is multicast to the
// global group when one exists (totally ordered with everything) or to
// every covering partition group otherwise.
func (c *Client) Scan(k, kHi string) ([]Entry, error) {
	op := Op{Kind: OpScan, Key: k, KeyHi: kHi}
	targets := c.schema.GroupsForScan(k, kHi)
	groups := targets
	if c.schema.GlobalGroup != 0 {
		groups = []transport.RingID{c.schema.GlobalGroup}
	}
	resps, err := c.cl.Submit(groups, op.Encode(), targets, len(targets), c.Timeout)
	if err != nil {
		return nil, err
	}
	var all []Entry
	for _, raw := range resps {
		res, err := DecodeResult(raw)
		if err != nil {
			return nil, err
		}
		if res.Status != StatusOK {
			return nil, fmt.Errorf("store: scan failed: %s", res.Status)
		}
		all = append(all, res.Entries...)
	}
	sortEntries(all)
	return all, nil
}

// Batch applies several single-partition operations grouped per partition
// (client-side batching, Section 7.2). All ops in one call must belong to
// the same partition; the helper BatchByPartition groups them.
func (c *Client) Batch(group transport.RingID, ops []Op) ([]Result, error) {
	op := Op{Kind: OpBatch, Batch: ops}
	resps, err := c.cl.Submit([]transport.RingID{group}, op.Encode(), []transport.RingID{group}, 1, c.Timeout)
	if err != nil {
		return nil, err
	}
	res, err := DecodeResult(resps[0])
	if err != nil {
		return nil, err
	}
	return res.Results, nil
}

// BatchByPartition groups operations by owning partition.
func (c *Client) BatchByPartition(ops []Op) map[transport.RingID][]Op {
	out := make(map[transport.RingID][]Op)
	for _, op := range ops {
		g := c.schema.PartitionOf(op.Key)
		out[g] = append(out[g], op)
	}
	return out
}

func sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
}
