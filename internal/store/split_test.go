package store

import (
	"fmt"
	"testing"

	"amcast/internal/transport"
)

func fillTreap(t *treap, n int) {
	for i := 0; i < n; i++ {
		t.Put(fmt.Sprintf("k%04d", i), []byte{byte(i)})
	}
}

func TestTreapSplitOff(t *testing.T) {
	tr := newTreap()
	fillTreap(tr, 100)
	pre := tr.snapshot()

	out := tr.splitOff("k0060")
	if tr.Len() != 60 {
		t.Errorf("left size = %d, want 60", tr.Len())
	}
	if out.Len() != 40 {
		t.Errorf("moved size = %d, want 40", out.Len())
	}
	out.All(func(k string, _ []byte) bool {
		if k < "k0060" {
			t.Errorf("moved key %q below split point", k)
		}
		return true
	})
	tr.All(func(k string, _ []byte) bool {
		if k >= "k0060" {
			t.Errorf("kept key %q at/above split point", k)
		}
		return true
	})
	// The pre-split snapshot still sees everything (copy-on-write).
	if pre.Len() != 100 {
		t.Errorf("pre-split snapshot size = %d, want 100", pre.Len())
	}
	n := 0
	pre.All(func(string, []byte) bool { n++; return true })
	if n != 100 {
		t.Errorf("pre-split snapshot iterated %d, want 100", n)
	}
	// The split tree keeps working.
	if existed := tr.Put("k0010", []byte("new")); !existed {
		t.Error("k0010 should exist in left half")
	}
	if _, ok := tr.Get("k0070"); ok {
		t.Error("k0070 should have moved out")
	}
}

func TestTreapSubtreeCounts(t *testing.T) {
	tr := newTreap()
	fillTreap(tr, 512)
	for i := 0; i < 256; i += 2 {
		tr.Delete(fmt.Sprintf("k%04d", i))
	}
	if got := subCount(tr.root); got != tr.Len() || got != 384 {
		t.Errorf("root subtree count = %d, Len = %d, want 384", got, tr.Len())
	}
	out := tr.splitOff("k0256")
	if subCount(tr.root) != tr.Len() || out.Len() != subCount(out.root) {
		t.Error("subtree counts inconsistent after split")
	}
}

func TestOwnershipEnforcement(t *testing.T) {
	sm := NewSM()
	sm.SetOwnedRange("a", "m")
	exec := func(op Op) Result {
		res, err := DecodeResult(sm.Execute(1, op.Encode()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := exec(Op{Kind: OpInsert, Key: "banana", Value: []byte("v")}); res.Status != StatusOK {
		t.Errorf("owned insert = %s", res.Status)
	}
	if res := exec(Op{Kind: OpInsert, Key: "zebra", Value: []byte("v")}); res.Status != StatusWrongPartition {
		t.Errorf("out-of-range insert = %s, want wrong-partition", res.Status)
	}
	for _, kind := range []OpKind{OpRead, OpUpdate, OpDelete} {
		if res := exec(Op{Kind: kind, Key: "zebra", Value: []byte("v")}); res.Status != StatusWrongPartition {
			t.Errorf("out-of-range %s = %s, want wrong-partition", kind, res.Status)
		}
	}
	// Scans clip to the owned range instead of failing.
	if res := exec(Op{Kind: OpScan, Key: "a", KeyHi: "z"}); res.Status != StatusOK || len(res.Entries) != 1 || res.Entries[0].Key != "banana" {
		t.Errorf("clipped scan = %s %v", res.Status, res.Entries)
	}
}

func TestApplySplitOp(t *testing.T) {
	sm := NewSM()
	sm.SetOwnedRange("", "")
	for i := 0; i < 50; i++ {
		sm.Execute(1, Op{Kind: OpInsert, Key: fmt.Sprintf("k%04d", i), Value: []byte("v")}.Encode())
	}
	split := Op{Kind: OpSplit, Key: "k0030", Value: SplitSpec{ID: 42, NewGroup: 2}.Encode()}
	res, _ := DecodeResult(sm.Execute(1, split.Encode()))
	if res.Status != StatusOK {
		t.Fatalf("split = %s", res.Status)
	}
	if sm.Len() != 30 {
		t.Errorf("post-split len = %d, want 30", sm.Len())
	}
	if got := sm.MigratedKeys(); got != 20 {
		t.Errorf("migrated keys = %d, want 20", got)
	}
	if _, hi, ok := sm.OwnedRange(); !ok || hi != "k0030" {
		t.Errorf("owned hi = %q, %v; want k0030", hi, ok)
	}
	// Moved keys now answer wrong-partition.
	res, _ = DecodeResult(sm.Execute(1, Op{Kind: OpRead, Key: "k0040"}.Encode()))
	if res.Status != StatusWrongPartition {
		t.Errorf("moved key read = %s, want wrong-partition", res.Status)
	}
	// Replayed marker is a no-op (no double stash, no range regression).
	res, _ = DecodeResult(sm.Execute(1, split.Encode()))
	if res.Status != StatusOK || sm.Len() != 30 || sm.MigratedKeys() != 20 {
		t.Errorf("replayed split changed state: len=%d migrated=%d", sm.Len(), sm.MigratedKeys())
	}

	// The stashed range transfers into a fresh SM with its bounds.
	enc, ok := sm.OutgoingRange(42)
	if !ok {
		t.Fatal("outgoing range missing")
	}
	if SnapshotLen(enc) != 20 {
		t.Errorf("outgoing count = %d, want 20", SnapshotLen(enc))
	}
	dst := NewSM()
	if err := dst.Restore(enc); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 20 {
		t.Errorf("restored len = %d, want 20", dst.Len())
	}
	if lo, hi, ok := dst.OwnedRange(); !ok || lo != "k0030" || hi != "" {
		t.Errorf("restored bounds = [%q, %q) %v", lo, hi, ok)
	}
	res, _ = DecodeResult(dst.Execute(2, Op{Kind: OpRead, Key: "k0040"}.Encode()))
	if res.Status != StatusOK {
		t.Errorf("new owner read = %s, want ok", res.Status)
	}
	sm.ReleaseOutgoing(42)
	if _, ok := sm.OutgoingRange(42); ok {
		t.Error("released range still stashed")
	}

	// In-place markers change nothing.
	before := sm.Len()
	res, _ = DecodeResult(sm.Execute(1, Op{Kind: OpSplit, Key: "k0010", Value: SplitSpec{ID: 43, NewGroup: 3, InPlace: true}.Encode()}.Encode()))
	if res.Status != StatusOK || sm.Len() != before {
		t.Errorf("in-place split mutated state: %s len=%d", res.Status, sm.Len())
	}
}

// TestSplitRetryRestashes covers the failed-transfer retry path: after a
// marker executed and shrank ownership, the moved keys exist only in the
// stash. A retried split (same key, fresh id) must re-stash them under
// the new id so the controller's fetch can succeed — and once a transfer
// is committed (ReleaseOutgoing), later replays must NOT resurrect it.
func TestSplitRetryRestashes(t *testing.T) {
	sm := NewSM()
	sm.SetOwnedRange("", "")
	for i := 0; i < 40; i++ {
		sm.Execute(1, Op{Kind: OpInsert, Key: fmt.Sprintf("k%04d", i), Value: []byte("v")}.Encode())
	}
	exec := func(id uint64) Result {
		op := Op{Kind: OpSplit, Key: "k0020", Value: SplitSpec{ID: id, NewGroup: 2}.Encode()}
		res, _ := DecodeResult(sm.Execute(1, op.Encode()))
		return res
	}
	if res := exec(7); res.Status != StatusOK {
		t.Fatalf("first split = %s", res.Status)
	}
	// Retry with a fresh id (the controller's second attempt).
	if res := exec(8); res.Status != StatusOK {
		t.Fatalf("retried split = %s", res.Status)
	}
	enc, ok := sm.OutgoingRange(8)
	if !ok || SnapshotLen(enc) != 20 {
		t.Fatalf("retried split stash: ok=%v len=%d, want 20 keys under id 8", ok, SnapshotLen(enc))
	}
	if sm.MigratedKeys() != 20 {
		t.Errorf("migrated counter double-counted: %d", sm.MigratedKeys())
	}
	// Commit: after release, a replayed marker must not re-stash.
	sm.ReleaseOutgoing(8)
	if res := exec(9); res.Status != StatusOK {
		t.Fatalf("post-commit replay = %s", res.Status)
	}
	if _, ok := sm.OutgoingRange(9); ok {
		t.Error("post-commit replay resurrected a released range")
	}
}

// TestSnapshotCarriesOutgoingStash covers the crash window between a
// split marker and the range transfer: the moved keys exist only in the
// outgoing stash, so checkpoints taken in that window must persist it —
// a replica restored from such a checkpoint must still serve (or retry)
// the transfer.
func TestSnapshotCarriesOutgoingStash(t *testing.T) {
	sm := NewSM()
	sm.SetOwnedRange("", "")
	for i := 0; i < 30; i++ {
		sm.Execute(1, Op{Kind: OpInsert, Key: fmt.Sprintf("k%04d", i), Value: []byte("v")}.Encode())
	}
	split := Op{Kind: OpSplit, Key: "k0020", Value: SplitSpec{ID: 77, NewGroup: 2}.Encode()}
	if res, _ := DecodeResult(sm.Execute(1, split.Encode())); res.Status != StatusOK {
		t.Fatalf("split = %s", res.Status)
	}

	// Checkpoint after the marker, restore into a fresh SM (the restart).
	snap := sm.Snapshot()
	restored := NewSM()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 20 {
		t.Errorf("restored live tree = %d entries, want 20", restored.Len())
	}
	enc, ok := restored.OutgoingRange(77)
	if !ok || SnapshotLen(enc) != 10 {
		t.Fatalf("restored stash: ok=%v len=%d, want the 10 moved keys", ok, SnapshotLen(enc))
	}
	// The retry path survives the restart too: a retried marker (fresh
	// id) re-stashes from the restored lastSplit.
	retry := Op{Kind: OpSplit, Key: "k0020", Value: SplitSpec{ID: 78, NewGroup: 2}.Encode()}
	if res, _ := DecodeResult(restored.Execute(1, retry.Encode())); res.Status != StatusOK {
		t.Fatalf("retried split after restore = %s", res.Status)
	}
	if enc, ok := restored.OutgoingRange(78); !ok || SnapshotLen(enc) != 10 {
		t.Fatalf("post-restore retry stash missing")
	}
	if _, ok := restored.OutgoingRange(77); ok {
		t.Error("re-keyed stash left the stale entry behind")
	}
	// Once released, the stash no longer rides in checkpoints.
	restored.ReleaseOutgoing(78)
	clean := NewSM()
	if err := clean.Restore(restored.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, ok := clean.OutgoingRange(78); ok {
		t.Error("released stash persisted in a later checkpoint")
	}
}

func TestSnapshotCarriesBounds(t *testing.T) {
	sm := NewSM()
	sm.SetOwnedRange("c", "p")
	sm.Execute(1, Op{Kind: OpInsert, Key: "dog", Value: []byte("v")}.Encode())
	snap := sm.Snapshot()

	dst := NewSM()
	if err := dst.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := dst.OwnedRange(); !ok || lo != "c" || hi != "p" {
		t.Errorf("restored bounds = [%q, %q) %v, want [c, p)", lo, hi, ok)
	}
	// Bounds-free snapshots leave configured bounds alone.
	plain := NewSM()
	plain.Execute(1, Op{Kind: OpInsert, Key: "x", Value: []byte("v")}.Encode())
	dst2 := NewSM()
	dst2.SetOwnedRange("a", "z")
	if err := dst2.Restore(plain.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := dst2.OwnedRange(); !ok || lo != "a" || hi != "z" {
		t.Errorf("configured bounds lost: [%q, %q) %v", lo, hi, ok)
	}
}

func TestSchemaSplitRange(t *testing.T) {
	s := RangeSchema([]transport.RingID{1, 2}, 0)
	split, err := s.SplitRange(7, "5")
	if err != nil {
		t.Fatal(err)
	}
	if split.Version != s.Version+1 {
		t.Errorf("version = %d, want %d", split.Version, s.Version+1)
	}
	if got := split.PartitionOf("6"); got != 7 {
		t.Errorf("PartitionOf(6) = %d, want 7", got)
	}
	if got := split.PartitionOf("4"); got != s.PartitionOf("4") {
		t.Errorf("PartitionOf(4) moved to %d", got)
	}
	if lo, hi, ok := split.RangeOf(7); !ok || lo != "5" {
		t.Errorf("RangeOf(7) = [%q, %q) %v", lo, hi, ok)
	}
	if _, err := s.SplitRange(8, ""); err == nil {
		t.Error("empty split key accepted")
	}
	if _, err := s.SplitRange(8, s.Partitions[1].Low); err == nil {
		t.Error("existing boundary accepted as split key")
	}
	if _, err := HashSchema([]transport.RingID{1}, 0).SplitRange(2, "m"); err == nil {
		t.Error("hash schema split accepted")
	}
	// Version survives the coordination-service round trip.
	dec, err := DecodeSchema(split.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Version != split.Version || len(dec.Partitions) != 3 {
		t.Errorf("round trip = v%d %d partitions", dec.Version, len(dec.Partitions))
	}
}
