package store

import (
	"fmt"
	"time"

	"amcast/internal/smr"
	"amcast/internal/transport"
)

// Local reads (no multicast round). MRP-Store exposes the replica's two
// local-read modes on top of the multicast path:
//
//   - ReadLocal/ScanLocal (read-index): the request carries the client's
//     observed applied vector; the chosen replica waits until its state
//     covers it. Within a client session this gives read-your-writes and
//     monotonic reads — the guarantees YCSB-style read-heavy workloads
//     need — at local-read cost. ScanLocal reads each covering partition
//     at its own batch boundary: per-partition consistent, but not the
//     single totally-ordered snapshot a multicast Scan through the
//     global group provides.
//   - ReadStale (bounded staleness): served immediately by any replica
//     that proved merge progress within the bound; otherwise it fails
//     with ErrStale rather than silently returning old data.
var _ smr.LocalReader = (*SM)(nil)

// ErrStale re-exports the replica's bounded-staleness refusal.
var ErrStale = smr.ErrStale

// ReadLocal serves a read-only operation (OpRead or OpScan) against the
// current database. Called with the replica's apply gate held in read
// mode, so it observes a batch-boundary state.
func (s *SM) ReadLocal(_ transport.RingID, raw []byte) ([]byte, bool) {
	op, err := DecodeOp(raw)
	if err != nil || (op.Kind != OpRead && op.Kind != OpScan) {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return encodeResult(s.apply(op)), true
}

// pickReplica chooses an alive learner of group, rotating across calls
// so concurrent clients spread read load over the partition's replicas.
func (c *Client) pickReplica(group transport.RingID) (transport.ProcessID, bool) {
	cfg, ok := c.svc.Ring(group)
	if !ok {
		return 0, false
	}
	learners := cfg.Learners()
	n := 0
	for _, id := range learners {
		if cfg.Alive(id) {
			learners[n] = id
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return learners[int(c.rr.Add(1))%n], true
}

// localRead routes one single-key local read to a replica of the owning
// partition, refreshing the schema on StatusWrongPartition like single().
func (c *Client) localRead(op Op, mode smr.LocalReadMode, bound time.Duration) (Result, error) {
	enc := op.Encode()
	deadline := time.Now().Add(c.Timeout)
	for {
		group := c.Schema().PartitionOf(op.Key)
		target, ok := c.pickReplica(group)
		if !ok {
			return Result{}, fmt.Errorf("store: local read %q: no live replica for group %d", op.Key, group)
		}
		raw, err := c.cl.LocalRead(target, group, enc, mode, bound, c.Timeout)
		if err != nil {
			return Result{}, err
		}
		res, err := DecodeResult(raw)
		if err != nil || res.Status != StatusWrongPartition {
			return res, err
		}
		if time.Now().After(deadline) {
			return res, fmt.Errorf("store: local read %q: no owning partition found before deadline", op.Key)
		}
		if !c.refreshSchema() {
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// decodeRead maps a read Result to the (value, found, error) shape.
func decodeRead(res Result, err error) ([]byte, bool, error) {
	if err != nil {
		return nil, false, err
	}
	if res.Status == StatusNotFound {
		return nil, false, nil
	}
	if res.Status != StatusOK || len(res.Entries) == 0 {
		return nil, false, fmt.Errorf("store: read failed: %s", res.Status)
	}
	return res.Entries[0].Value, true, nil
}

// ReadLocal returns entry k like Read, but via the read-index path: one
// replica serves it once its applied state covers everything this client
// has observed — no multicast round, session-consistent.
func (c *Client) ReadLocal(k string) ([]byte, bool, error) {
	return decodeRead(c.localRead(Op{Kind: OpRead, Key: k}, smr.ReadIndex, 0))
}

// ReadLocalAt is ReadLocal pinned to one replica instead of rotating.
// Geo deployments use it to read from the nearest replica — the whole
// point of the local-read path is that this replica may be in the
// client's region while the multicast round spans the ring's.
func (c *Client) ReadLocalAt(target transport.ProcessID, k string) ([]byte, bool, error) {
	group := c.Schema().PartitionOf(k)
	raw, err := c.cl.LocalRead(target, group, Op{Kind: OpRead, Key: k}.Encode(), smr.ReadIndex, 0, c.Timeout)
	if err != nil {
		return nil, false, err
	}
	return decodeRead(DecodeResult(raw))
}

// ReadStale returns entry k from a replica that proved merge progress
// within bound; ErrStale if the chosen replica cannot.
func (c *Client) ReadStale(k string, bound time.Duration) ([]byte, bool, error) {
	return decodeRead(c.localRead(Op{Kind: OpRead, Key: k}, smr.BoundedStale, bound))
}

// ScanLocal returns all entries within k..k' via read-index local reads,
// one per covering partition. Each partition is read at its own batch
// boundary covering the client's session — unlike Scan through the
// global group, the partitions' states are not from a single point in
// the total order. Retried under a fresh schema if a split commits
// mid-scan, like Scan.
func (c *Client) ScanLocal(k, kHi string) ([]Entry, error) {
	op := Op{Kind: OpScan, Key: k, KeyHi: kHi}
	enc := op.Encode()
	deadline := time.Now().Add(c.Timeout)
	for {
		schema := c.Schema()
		var all []Entry
		for _, g := range schema.GroupsForScan(k, kHi) {
			target, ok := c.pickReplica(g)
			if !ok {
				return nil, fmt.Errorf("store: local scan: no live replica for group %d", g)
			}
			raw, err := c.cl.LocalRead(target, g, enc, smr.ReadIndex, 0, c.Timeout)
			if err != nil {
				return nil, err
			}
			res, err := DecodeResult(raw)
			if err != nil {
				return nil, err
			}
			if res.Status != StatusOK {
				return nil, fmt.Errorf("store: local scan failed: %s", res.Status)
			}
			all = append(all, res.Entries...)
		}
		c.maybeRefresh()
		if c.Schema().Version > schema.Version && !time.Now().After(deadline) {
			continue // a split committed mid-scan; re-run under the new schema
		}
		sortEntries(all)
		return all, nil
	}
}
