// Package store implements MRP-Store (Section 6.1): a partitioned,
// replicated key-value store with sequential consistency built on
// Multi-Ring Paxos state-machine replication.
//
// Keys are strings, values arbitrary byte arrays. The database is divided
// into partitions, each responsible for a subset of the key space (hash-
// or range-partitioned; the schema is published through the coordination
// service as in Section 7.2). Each partition is replicated with
// state-machine replication over its own multicast group; replicas may
// additionally subscribe to a global group so multi-partition operations
// (scans) are ordered with respect to all other operations.
package store

import (
	"strings"
)

// treap is a randomized balanced binary search tree used as the in-memory
// sorted database at every replica (the paper stores entries "in an
// in-memory tree"). Expected O(log n) insert/delete/lookup and in-order
// range iteration for scans.
//
// The tree is persistent (path-copying copy-on-write): nodes are never
// mutated once linked into a root, so Put and Delete rebuild only the
// O(log n) nodes on the touched path and share every other subtree with
// the previous version. snapshot() therefore captures a consistent
// point-in-time view of the whole database in O(1) — the foundation of
// the replica's non-blocking checkpoint pipeline, where serialization
// runs on a background goroutine while new commands keep executing
// against newer roots.
type treap struct {
	root *treapNode
	size int
}

// treapNode is immutable after being linked into a published root; updates
// clone the node instead of mutating it in place.
type treapNode struct {
	key         string
	value       []byte
	priority    int64
	sub         int // subtree entry count (this node + both children)
	left, right *treapNode
}

// subCount is nil-safe subtree size.
func subCount(n *treapNode) int {
	if n == nil {
		return 0
	}
	return n.sub
}

// fix recomputes a freshly cloned node's subtree count from its children.
func (n *treapNode) fix() { n.sub = 1 + subCount(n.left) + subCount(n.right) }

// clone returns a fresh mutable copy of n; callers may mutate the copy
// freely until it is linked into a root.
func (n *treapNode) clone() *treapNode {
	c := *n
	return &c
}

// newTreap builds an empty tree.
func newTreap() *treap {
	return &treap{}
}

// priorityOf derives a node's heap priority from its key (FNV-1a). A
// seeded rand.Rand would also be deterministic per replica, but its
// stream position depends on operation *history* — a replica restored
// from a snapshot and one that applied the ops organically would hold
// differently shaped trees. Hashing the key makes the shape a pure
// function of the key set, and keeps any random source out of the apply
// path entirely.
func priorityOf(key string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int64(h >> 1) // keep priorities non-negative
}

// Len reports the number of entries.
func (t *treap) Len() int { return t.size }

// snapshot captures the current version of the tree in O(1). The returned
// view is immutable: later Put/Delete calls produce new roots and never
// touch the captured one.
func (t *treap) snapshot() treapSnapshot {
	return treapSnapshot{root: t.root, size: t.size}
}

// treapSnapshot is a point-in-time immutable view of a treap, safe to read
// from any goroutine concurrently with writes to the live tree.
type treapSnapshot struct {
	root *treapNode
	size int
}

// Len reports the number of entries in the captured version.
func (s treapSnapshot) Len() int { return s.size }

// All calls fn for every captured entry in ascending key order.
func (s treapSnapshot) All(fn func(key string, value []byte) bool) {
	allNodes(s.root, fn)
}

// Get returns the value stored under key in the captured version. Safe
// from any goroutine: the captured nodes are immutable.
func (s treapSnapshot) Get(key string) ([]byte, bool) {
	n := s.root
	for n != nil {
		switch c := strings.Compare(key, n.key); {
		case c == 0:
			return n.value, true
		case c < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil, false
}

// Range calls fn for every captured entry with lo <= key <= hi in
// ascending key order; fn returning false stops the iteration.
func (s treapSnapshot) Range(lo, hi string, fn func(key string, value []byte) bool) {
	rangeNodes(s.root, lo, hi, fn)
}

// Get returns the value stored under key.
func (t *treap) Get(key string) ([]byte, bool) {
	n := t.root
	for n != nil {
		switch c := strings.Compare(key, n.key); {
		case c == 0:
			return n.value, true
		case c < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil, false
}

// Put inserts or replaces the value under key, reporting whether the key
// already existed.
func (t *treap) Put(key string, value []byte) bool {
	var existed bool
	t.root, existed = t.put(t.root, key, value)
	if !existed {
		t.size++
	}
	return existed
}

func (t *treap) put(n *treapNode, key string, value []byte) (*treapNode, bool) {
	if n == nil {
		return &treapNode{key: key, value: value, priority: priorityOf(key), sub: 1}, false
	}
	nc := n.clone()
	switch c := strings.Compare(key, n.key); {
	case c == 0:
		nc.value = value
		return nc, true
	case c < 0:
		var existed bool
		nc.left, existed = t.put(n.left, key, value)
		nc.fix()
		if nc.left.priority > nc.priority {
			nc = rotateRight(nc)
		}
		return nc, existed
	default:
		var existed bool
		nc.right, existed = t.put(n.right, key, value)
		nc.fix()
		if nc.right.priority > nc.priority {
			nc = rotateLeft(nc)
		}
		return nc, existed
	}
}

// Delete removes key, reporting whether it existed.
func (t *treap) Delete(key string) bool {
	var existed bool
	t.root, existed = t.del(t.root, key)
	if existed {
		t.size--
	}
	return existed
}

func (t *treap) del(n *treapNode, key string) (*treapNode, bool) {
	if n == nil {
		return nil, false
	}
	switch c := strings.Compare(key, n.key); {
	case c < 0:
		nl, existed := t.del(n.left, key)
		if !existed {
			return n, false
		}
		nc := n.clone()
		nc.left = nl
		nc.fix()
		return nc, true
	case c > 0:
		nr, existed := t.del(n.right, key)
		if !existed {
			return n, false
		}
		nc := n.clone()
		nc.right = nr
		nc.fix()
		return nc, true
	default:
		return merge(n.left, n.right), true
	}
}

// merge joins two treaps where every key in a precedes every key in b,
// cloning the spine it descends so shared subtrees stay immutable.
func merge(a, b *treapNode) *treapNode {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.priority > b.priority:
		ac := a.clone()
		ac.right = merge(a.right, b)
		ac.fix()
		return ac
	default:
		bc := b.clone()
		bc.left = merge(a, b.left)
		bc.fix()
		return bc
	}
}

// rotateRight and rotateLeft rebalance freshly cloned path nodes: put()
// only rotates when the rotated child was just returned by its own
// recursive call — a private copy this update owns — so mutating both
// nodes in place is safe and avoids a second clone.
func rotateRight(n *treapNode) *treapNode {
	l := n.left
	n.left = l.right
	l.right = n
	n.fix()
	l.fix()
	return l
}

func rotateLeft(n *treapNode) *treapNode {
	r := n.right
	n.right = r.left
	r.left = n
	n.fix()
	r.fix()
	return r
}

// splitOff removes every entry with key >= at from the tree and returns
// them as an immutable snapshot, in O(log n) expected path copies — both
// halves share all untouched subtrees with the previous version, so
// concurrently captured snapshots keep observing the pre-split database.
// This is what makes a live partition split's delivery stall independent
// of how many keys move: the delivery goroutine only pays the path copy,
// while serializing the outgoing half happens later, off the hot path.
func (t *treap) splitOff(at string) treapSnapshot {
	left, right := splitNodes(t.root, at)
	t.root = left
	t.size = subCount(left)
	return treapSnapshot{root: right, size: subCount(right)}
}

func splitNodes(n *treapNode, at string) (l, r *treapNode) {
	if n == nil {
		return nil, nil
	}
	nc := n.clone()
	if strings.Compare(n.key, at) < 0 {
		ll, rr := splitNodes(n.right, at)
		nc.right = ll
		nc.fix()
		return nc, rr
	}
	ll, rr := splitNodes(n.left, at)
	nc.left = rr
	nc.fix()
	return ll, nc
}

// Range calls fn for every entry with lo <= key <= hi in ascending key
// order; fn returning false stops the iteration.
func (t *treap) Range(lo, hi string, fn func(key string, value []byte) bool) {
	rangeNodes(t.root, lo, hi, fn)
}

func rangeNodes(n *treapNode, lo, hi string, fn func(string, []byte) bool) bool {
	if n == nil {
		return true
	}
	if strings.Compare(n.key, lo) >= 0 {
		if !rangeNodes(n.left, lo, hi, fn) {
			return false
		}
	}
	if strings.Compare(n.key, lo) >= 0 && strings.Compare(n.key, hi) <= 0 {
		if !fn(n.key, n.value) {
			return false
		}
	}
	if strings.Compare(n.key, hi) <= 0 {
		if !rangeNodes(n.right, lo, hi, fn) {
			return false
		}
	}
	return true
}

// All calls fn for every entry in ascending key order.
func (t *treap) All(fn func(key string, value []byte) bool) {
	allNodes(t.root, fn)
}

func allNodes(n *treapNode, fn func(string, []byte) bool) bool {
	if n == nil {
		return true
	}
	if !allNodes(n.left, fn) {
		return false
	}
	if !fn(n.key, n.value) {
		return false
	}
	return allNodes(n.right, fn)
}
