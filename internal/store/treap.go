// Package store implements MRP-Store (Section 6.1): a partitioned,
// replicated key-value store with sequential consistency built on
// Multi-Ring Paxos state-machine replication.
//
// Keys are strings, values arbitrary byte arrays. The database is divided
// into partitions, each responsible for a subset of the key space (hash-
// or range-partitioned; the schema is published through the coordination
// service as in Section 7.2). Each partition is replicated with
// state-machine replication over its own multicast group; replicas may
// additionally subscribe to a global group so multi-partition operations
// (scans) are ordered with respect to all other operations.
package store

import (
	"math/rand"
	"strings"
)

// treap is a randomized balanced binary search tree used as the in-memory
// sorted database at every replica (the paper stores entries "in an
// in-memory tree"). Expected O(log n) insert/delete/lookup and in-order
// range iteration for scans.
type treap struct {
	root *treapNode
	size int
	rng  *rand.Rand
}

type treapNode struct {
	key         string
	value       []byte
	priority    int64
	left, right *treapNode
}

// newTreap builds an empty tree with a deterministic priority source so
// replicas stay byte-identical (determinism matters for state machines).
func newTreap() *treap {
	return &treap{rng: rand.New(rand.NewSource(0x5eed))}
}

// Len reports the number of entries.
func (t *treap) Len() int { return t.size }

// Get returns the value stored under key.
func (t *treap) Get(key string) ([]byte, bool) {
	n := t.root
	for n != nil {
		switch c := strings.Compare(key, n.key); {
		case c == 0:
			return n.value, true
		case c < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil, false
}

// Put inserts or replaces the value under key, reporting whether the key
// already existed.
func (t *treap) Put(key string, value []byte) bool {
	var existed bool
	t.root, existed = t.put(t.root, key, value)
	if !existed {
		t.size++
	}
	return existed
}

func (t *treap) put(n *treapNode, key string, value []byte) (*treapNode, bool) {
	if n == nil {
		return &treapNode{key: key, value: value, priority: t.rng.Int63()}, false
	}
	switch c := strings.Compare(key, n.key); {
	case c == 0:
		n.value = value
		return n, true
	case c < 0:
		var existed bool
		n.left, existed = t.put(n.left, key, value)
		if n.left.priority > n.priority {
			n = rotateRight(n)
		}
		return n, existed
	default:
		var existed bool
		n.right, existed = t.put(n.right, key, value)
		if n.right.priority > n.priority {
			n = rotateLeft(n)
		}
		return n, existed
	}
}

// Delete removes key, reporting whether it existed.
func (t *treap) Delete(key string) bool {
	var existed bool
	t.root, existed = t.del(t.root, key)
	if existed {
		t.size--
	}
	return existed
}

func (t *treap) del(n *treapNode, key string) (*treapNode, bool) {
	if n == nil {
		return nil, false
	}
	switch c := strings.Compare(key, n.key); {
	case c < 0:
		var existed bool
		n.left, existed = t.del(n.left, key)
		return n, existed
	case c > 0:
		var existed bool
		n.right, existed = t.del(n.right, key)
		return n, existed
	default:
		return t.merge(n.left, n.right), true
	}
}

// merge joins two treaps where every key in a precedes every key in b.
func (t *treap) merge(a, b *treapNode) *treapNode {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.priority > b.priority:
		a.right = t.merge(a.right, b)
		return a
	default:
		b.left = t.merge(a, b.left)
		return b
	}
}

func rotateRight(n *treapNode) *treapNode {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *treapNode) *treapNode {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// Range calls fn for every entry with lo <= key <= hi in ascending key
// order; fn returning false stops the iteration.
func (t *treap) Range(lo, hi string, fn func(key string, value []byte) bool) {
	t.rangeNode(t.root, lo, hi, fn)
}

func (t *treap) rangeNode(n *treapNode, lo, hi string, fn func(string, []byte) bool) bool {
	if n == nil {
		return true
	}
	if strings.Compare(n.key, lo) >= 0 {
		if !t.rangeNode(n.left, lo, hi, fn) {
			return false
		}
	}
	if strings.Compare(n.key, lo) >= 0 && strings.Compare(n.key, hi) <= 0 {
		if !fn(n.key, n.value) {
			return false
		}
	}
	if strings.Compare(n.key, hi) <= 0 {
		if !t.rangeNode(n.right, lo, hi, fn) {
			return false
		}
	}
	return true
}

// All calls fn for every entry in ascending key order.
func (t *treap) All(fn func(key string, value []byte) bool) {
	t.all(t.root, fn)
}

func (t *treap) all(n *treapNode, fn func(string, []byte) bool) bool {
	if n == nil {
		return true
	}
	if !t.all(n.left, fn) {
		return false
	}
	if !fn(n.key, n.value) {
		return false
	}
	return t.all(n.right, fn)
}
