package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"amcast/internal/smr"
	"amcast/internal/transport"
)

// randOp draws one operation from a YCSB-A-flavoured mix extended with
// the cases parallel apply must get right: overlapping scan ranges
// (barriers), deletes and re-inserts of hot keys, and batches mixing
// point ops — occasionally containing a scan, which must demote the
// whole batch to a barrier.
func randOp(rng *rand.Rand, nested bool) Op {
	key := func() string { return fmt.Sprintf("user%03d", rng.Intn(200)) }
	roll := rng.Intn(100)
	switch {
	case roll < 35:
		return Op{Kind: OpRead, Key: key()}
	case roll < 65:
		return Op{Kind: OpUpdate, Key: key(), Value: []byte(fmt.Sprintf("v%d", rng.Int63()))}
	case roll < 75:
		return Op{Kind: OpInsert, Key: key(), Value: []byte(fmt.Sprintf("i%d", rng.Int63()))}
	case roll < 85:
		return Op{Kind: OpDelete, Key: key()}
	case roll < 93 && !nested:
		lo := rng.Intn(200)
		hi := lo + rng.Intn(60)
		return Op{Kind: OpScan, Key: fmt.Sprintf("user%03d", lo), KeyHi: fmt.Sprintf("user%03d", hi)}
	default:
		if nested {
			return Op{Kind: OpRead, Key: key()}
		}
		n := 2 + rng.Intn(3)
		b := Op{Kind: OpBatch}
		for i := 0; i < n; i++ {
			b.Batch = append(b.Batch, randOp(rng, true))
		}
		if rng.Intn(4) == 0 {
			b.Batch = append(b.Batch, Op{Kind: OpScan, Key: "user000", KeyHi: "user199"})
		}
		return b
	}
}

// TestParallelApplyEquivalence drives identical randomized op streams
// through the sequential batch path and through an Applier and demands
// byte-identical responses, byte-identical snapshots at every batch
// boundary, and byte-identical final checkpoint captures.
func TestParallelApplyEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		bounded bool
	}{
		{"4workers", 4, false},
		{"8workers", 8, false},
		{"bounded", 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xfeed + int64(tc.workers)))
			seqSM, parSM := NewSM(), NewSM()
			if tc.bounded {
				seqSM.SetOwnedRange("user050", "user150")
				parSM.SetOwnedRange("user050", "user150")
			}
			applier := smr.NewApplier(parSM, tc.workers)
			defer applier.Close()

			// Preload half the keyspace on both.
			for i := 0; i < 100; i++ {
				raw := Op{Kind: OpInsert, Key: fmt.Sprintf("user%03d", i*2), Value: []byte("seed")}.Encode()
				seqSM.Execute(1, raw)
				parSM.Execute(1, raw)
			}

			const batches = 60
			for b := 0; b < batches; b++ {
				n := 1 + rng.Intn(64)
				groups := make([]transport.RingID, n)
				ops := make([][]byte, n)
				for i := 0; i < n; i++ {
					groups[i] = transport.RingID(1 + rng.Intn(3))
					ops[i] = randOp(rng, false).Encode()
				}

				seqOut := seqSM.ExecuteBatch(groups, ops)
				parOut := make([][]byte, n)
				applier.Apply(groups, ops, parOut)

				for i := range ops {
					if !bytes.Equal(seqOut[i], parOut[i]) {
						op, _ := DecodeOp(ops[i])
						t.Fatalf("batch %d op %d (%+v): sequential %x != parallel %x", b, i, op, seqOut[i], parOut[i])
					}
				}
				if b%10 == 9 {
					if !bytes.Equal(seqSM.Snapshot(), parSM.Snapshot()) {
						t.Fatalf("state diverged after batch %d", b)
					}
				}
			}

			seqSnap, parSnap := seqSM.CaptureSnapshot(), parSM.CaptureSnapshot()
			if !bytes.Equal(seqSnap.Serialize(), parSnap.Serialize()) {
				t.Fatal("final checkpoint captures differ")
			}
			if applier.RunSizes().Mean() == 0 {
				t.Fatal("applier recorded no conflict runs; the parallel path never ran")
			}
		})
	}
}

// TestParallelApplyConcurrentSnapshots interleaves snapshot captures with
// parallel batches: the COW treap capture must observe batch-boundary
// states only, never a half-committed wave.
func TestParallelApplyConcurrentSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seqSM, parSM := NewSM(), NewSM()
	applier := smr.NewApplier(parSM, 4)
	defer applier.Close()

	for b := 0; b < 30; b++ {
		n := 1 + rng.Intn(48)
		groups := make([]transport.RingID, n)
		ops := make([][]byte, n)
		for i := 0; i < n; i++ {
			groups[i] = 1
			ops[i] = randOp(rng, false).Encode()
		}
		seqOut := seqSM.ExecuteBatch(groups, ops)
		parOut := make([][]byte, n)
		applier.Apply(groups, ops, parOut)
		for i := range ops {
			if !bytes.Equal(seqOut[i], parOut[i]) {
				t.Fatalf("batch %d op %d diverged", b, i)
			}
		}
		// A capture taken between batches must serialize identically on
		// both machines (batch-boundary equivalence).
		ss, ps := seqSM.CaptureSnapshot(), parSM.CaptureSnapshot()
		if !bytes.Equal(ss.Serialize(), ps.Serialize()) {
			t.Fatalf("captures diverged after batch %d", b)
		}
	}
}
