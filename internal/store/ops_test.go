package store

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"amcast/internal/transport"
)

func TestOpRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpRead, Key: "user42"},
		{Kind: OpScan, Key: "a", KeyHi: "z"},
		{Kind: OpUpdate, Key: "k", Value: []byte("value")},
		{Kind: OpInsert, Key: "k2", Value: []byte{}},
		{Kind: OpDelete, Key: "gone"},
		{Kind: OpBatch, Batch: []Op{
			{Kind: OpInsert, Key: "b1", Value: []byte("x")},
			{Kind: OpRead, Key: "b2"},
		}},
	}
	for _, op := range ops {
		t.Run(op.Kind.String(), func(t *testing.T) {
			got, err := DecodeOp(op.Encode())
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != op.Kind || got.Key != op.Key || got.KeyHi != op.KeyHi ||
				string(got.Value) != string(op.Value) || len(got.Batch) != len(op.Batch) {
				t.Errorf("round trip: got %+v want %+v", got, op)
			}
		})
	}
}

func TestOpDecodeTruncated(t *testing.T) {
	full := (Op{Kind: OpUpdate, Key: "key", Value: []byte("value")}).Encode()
	for i := 0; i < len(full); i++ {
		if _, err := DecodeOp(full[:i]); err == nil {
			t.Fatalf("accepted truncation at %d", i)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := Result{
		Status: StatusOK,
		Entries: []Entry{
			{Key: "a", Value: []byte("1")},
			{Key: "b", Value: []byte("2")},
		},
		Results: []Result{
			{Status: StatusNotFound},
			{Status: StatusOK, Entries: []Entry{{Key: "c", Value: []byte("3")}}},
		},
	}
	got, err := DecodeResult(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, r)
	}
}

func TestOpRoundTripQuick(t *testing.T) {
	f := func(kind uint8, key, keyHi string, value []byte) bool {
		if len(key) > 60000 || len(keyHi) > 60000 {
			return true
		}
		op := Op{Kind: OpKind(kind), Key: key, KeyHi: keyHi, Value: value}
		got, err := DecodeOp(op.Encode())
		if err != nil {
			return false
		}
		return got.Kind == op.Kind && got.Key == op.Key && got.KeyHi == op.KeyHi &&
			string(got.Value) == string(op.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStatusStrings(t *testing.T) {
	if StatusOK.String() != "ok" || StatusNotFound.String() != "not-found" ||
		StatusExists.String() != "exists" || StatusBadRequest.String() != "bad-request" ||
		Status(99).String() != "unknown" {
		t.Error("status strings broken")
	}
	if OpRead.String() != "read" || OpKind(99).String() != "unknown" {
		t.Error("op kind strings broken")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := Schema{
		Kind:        RangePartitioned,
		GlobalGroup: 9,
		Partitions: []Partition{
			{Group: 1, Low: ""},
			{Group: 2, Low: "h"},
			{Group: 3, Low: "q"},
		},
	}
	got, err := DecodeSchema(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip: got %+v want %+v", got, s)
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := (Schema{}).Validate(); err == nil {
		t.Error("empty schema accepted")
	}
	dup := Schema{Kind: HashPartitioned, Partitions: []Partition{{Group: 1}, {Group: 1}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate groups accepted")
	}
	collide := Schema{Kind: HashPartitioned, GlobalGroup: 1, Partitions: []Partition{{Group: 1}}}
	if err := collide.Validate(); err == nil {
		t.Error("global/partition collision accepted")
	}
	unsorted := Schema{Kind: RangePartitioned, Partitions: []Partition{{Group: 1, Low: ""}, {Group: 2, Low: "m"}, {Group: 3, Low: "c"}}}
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted ranges accepted")
	}
	badFirst := Schema{Kind: RangePartitioned, Partitions: []Partition{{Group: 1, Low: "b"}, {Group: 2, Low: "m"}}}
	if err := badFirst.Validate(); err == nil {
		t.Error("first range not at empty key accepted")
	}
	good := RangeSchema([]transport.RingID{1, 2, 3}, 9)
	if err := good.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestRangePartitionOf(t *testing.T) {
	s := Schema{
		Kind: RangePartitioned,
		Partitions: []Partition{
			{Group: 1, Low: ""},
			{Group: 2, Low: "h"},
			{Group: 3, Low: "q"},
		},
	}
	tests := []struct {
		key  string
		want transport.RingID
	}{
		{"", 1}, {"apple", 1}, {"gzzz", 1},
		{"h", 2}, {"hello", 2}, {"pzzz", 2},
		{"q", 3}, {"zebra", 3},
	}
	for _, tt := range tests {
		if got := s.PartitionOf(tt.key); got != tt.want {
			t.Errorf("PartitionOf(%q) = %d, want %d", tt.key, got, tt.want)
		}
	}
}

func TestHashPartitionOfStable(t *testing.T) {
	s := HashSchema([]transport.RingID{1, 2, 3}, 0)
	// Deterministic and within range.
	for _, key := range []string{"a", "b", "user1234", ""} {
		g1 := s.PartitionOf(key)
		g2 := s.PartitionOf(key)
		if g1 != g2 {
			t.Errorf("PartitionOf(%q) unstable", key)
		}
		if g1 < 1 || g1 > 3 {
			t.Errorf("PartitionOf(%q) = %d out of range", key, g1)
		}
	}
	// Distribution sanity: all partitions used.
	used := make(map[transport.RingID]int)
	for i := 0; i < 1000; i++ {
		used[s.PartitionOf(string(rune('a'+i%26))+string(rune('0'+i%10)))]++
	}
	if len(used) != 3 {
		t.Errorf("hash distribution used %d/3 partitions", len(used))
	}
}

func TestGroupsForScan(t *testing.T) {
	s := Schema{
		Kind: RangePartitioned,
		Partitions: []Partition{
			{Group: 1, Low: ""},
			{Group: 2, Low: "h"},
			{Group: 3, Low: "q"},
		},
	}
	tests := []struct {
		lo, hi string
		want   []transport.RingID
	}{
		{"a", "c", []transport.RingID{1}},
		{"a", "j", []transport.RingID{1, 2}},
		{"i", "k", []transport.RingID{2}},
		{"a", "z", []transport.RingID{1, 2, 3}},
		{"r", "z", []transport.RingID{3}},
	}
	for _, tt := range tests {
		got := s.GroupsForScan(tt.lo, tt.hi)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("GroupsForScan(%q,%q) = %v, want %v", tt.lo, tt.hi, got, tt.want)
		}
	}
	// Hash: always all groups.
	h := HashSchema([]transport.RingID{1, 2}, 0)
	if got := h.GroupsForScan("a", "b"); len(got) != 2 {
		t.Errorf("hash scan groups = %v", got)
	}
}

func TestSMExecute(t *testing.T) {
	sm := NewSM()
	exec := func(op Op) Result {
		res, err := DecodeResult(sm.Execute(1, op.Encode()))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := exec(Op{Kind: OpRead, Key: "x"}); res.Status != StatusNotFound {
		t.Errorf("read missing = %v", res.Status)
	}
	if res := exec(Op{Kind: OpInsert, Key: "x", Value: []byte("1")}); res.Status != StatusOK {
		t.Errorf("insert = %v", res.Status)
	}
	if res := exec(Op{Kind: OpInsert, Key: "x", Value: []byte("1")}); res.Status != StatusExists {
		t.Errorf("double insert = %v", res.Status)
	}
	if res := exec(Op{Kind: OpUpdate, Key: "x", Value: []byte("2")}); res.Status != StatusOK {
		t.Errorf("update = %v", res.Status)
	}
	if res := exec(Op{Kind: OpUpdate, Key: "y", Value: []byte("2")}); res.Status != StatusNotFound {
		t.Errorf("update missing = %v", res.Status)
	}
	if res := exec(Op{Kind: OpRead, Key: "x"}); res.Status != StatusOK || string(res.Entries[0].Value) != "2" {
		t.Errorf("read = %+v", res)
	}
	if res := exec(Op{Kind: OpDelete, Key: "x"}); res.Status != StatusOK {
		t.Errorf("delete = %v", res.Status)
	}
	if res := exec(Op{Kind: OpDelete, Key: "x"}); res.Status != StatusNotFound {
		t.Errorf("double delete = %v", res.Status)
	}
	// Batch.
	res := exec(Op{Kind: OpBatch, Batch: []Op{
		{Kind: OpInsert, Key: "a", Value: []byte("1")},
		{Kind: OpInsert, Key: "b", Value: []byte("2")},
		{Kind: OpRead, Key: "a"},
	}})
	if res.Status != StatusOK || len(res.Results) != 3 || res.Results[2].Status != StatusOK {
		t.Errorf("batch = %+v", res)
	}
	// Scan.
	res = exec(Op{Kind: OpScan, Key: "a", KeyHi: "z"})
	if res.Status != StatusOK || len(res.Entries) != 2 {
		t.Errorf("scan = %+v", res)
	}
	// Garbage op.
	if r, err := DecodeResult(sm.Execute(1, []byte{0xff})); err != nil || r.Status != StatusBadRequest {
		t.Errorf("garbage op = %+v, %v", r, err)
	}
}

func TestSMSnapshotRestore(t *testing.T) {
	sm := NewSM()
	for i := 0; i < 50; i++ {
		op := Op{Kind: OpInsert, Key: string(rune('a'+i%26)) + string(rune('0'+i/26)), Value: []byte{byte(i)}}
		sm.Execute(1, op.Encode())
	}
	snap := sm.Snapshot()

	sm2 := NewSM()
	if err := sm2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if sm2.Len() != sm.Len() {
		t.Errorf("restored Len = %d, want %d", sm2.Len(), sm.Len())
	}
	if string(sm2.Snapshot()) != string(snap) {
		t.Error("snapshot of restored state differs")
	}
	if err := sm2.Restore([]byte{1, 2}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

// TestSMExecuteBatchMatchesExecute checks the batch apply entry point is
// equivalent to per-op Execute, including error results and reads.
func TestSMExecuteBatchMatchesExecute(t *testing.T) {
	ops := [][]byte{
		Op{Kind: OpInsert, Key: "a", Value: []byte("1")}.Encode(),
		Op{Kind: OpInsert, Key: "a", Value: []byte("2")}.Encode(), // exists
		Op{Kind: OpRead, Key: "a"}.Encode(),
		Op{Kind: OpUpdate, Key: "a", Value: []byte("3")}.Encode(),
		Op{Kind: OpRead, Key: "a"}.Encode(),
		Op{Kind: OpDelete, Key: "a"}.Encode(),
		Op{Kind: OpRead, Key: "a"}.Encode(), // not found
		{0xFF},                              // undecodable
	}
	groups := make([]transport.RingID, len(ops))
	for i := range groups {
		groups[i] = 1
	}
	single, batched := NewSM(), NewSM()
	var want [][]byte
	for i, op := range ops {
		want = append(want, single.Execute(groups[i], op))
	}
	got := batched.ExecuteBatch(groups, ops)
	if len(got) != len(want) {
		t.Fatalf("results %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("result %d: batch %x, single %x", i, got[i], want[i])
		}
	}
}
