package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTreapBasic(t *testing.T) {
	tr := newTreap()
	if _, ok := tr.Get("a"); ok {
		t.Error("empty treap returned a value")
	}
	if existed := tr.Put("a", []byte("1")); existed {
		t.Error("fresh insert reported existed")
	}
	if existed := tr.Put("a", []byte("2")); !existed {
		t.Error("overwrite not reported")
	}
	v, ok := tr.Get("a")
	if !ok || string(v) != "2" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.Delete("a") {
		t.Error("delete of existing key failed")
	}
	if tr.Delete("a") {
		t.Error("double delete succeeded")
	}
	if tr.Len() != 0 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
}

func TestTreapOrderedIteration(t *testing.T) {
	tr := newTreap()
	keys := []string{"melon", "apple", "zebra", "kiwi", "banana"}
	for _, k := range keys {
		tr.Put(k, []byte(k))
	}
	var got []string
	tr.All(func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	want := append([]string(nil), keys...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iteration order %v, want %v", got, want)
		}
	}
}

func TestTreapRange(t *testing.T) {
	tr := newTreap()
	for i := 0; i < 100; i++ {
		tr.Put(fmt.Sprintf("key%03d", i), []byte{byte(i)})
	}
	var got []string
	tr.Range("key010", "key015", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 6 || got[0] != "key010" || got[5] != "key015" {
		t.Errorf("range = %v", got)
	}
	// Early stop.
	count := 0
	tr.Range("key000", "key099", func(string, []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop iterated %d", count)
	}
	// Empty range.
	got = nil
	tr.Range("zzz", "zzzz", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 0 {
		t.Errorf("empty range returned %v", got)
	}
}

// TestTreapMatchesMap is a property test: after any sequence of puts and
// deletes, the treap agrees with a reference map and iterates sorted.
func TestTreapMatchesMap(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		tr := newTreap()
		ref := make(map[string]byte)
		rng := rand.New(rand.NewSource(seed))
		for _, raw := range opsRaw {
			key := fmt.Sprintf("k%02d", raw%50)
			switch rng.Intn(3) {
			case 0, 1:
				val := byte(raw >> 8)
				tr.Put(key, []byte{val})
				ref[key] = val
			case 2:
				delete(ref, key)
				tr.Delete(key)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		var keys []string
		tr.All(func(k string, _ []byte) bool {
			keys = append(keys, k)
			return true
		})
		return sort.StringsAreSorted(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTreapLarge(t *testing.T) {
	tr := newTreap()
	const n = 10000
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		tr.Put(fmt.Sprintf("key%08d", i), []byte("v"))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i += 997 {
		if _, ok := tr.Get(fmt.Sprintf("key%08d", i)); !ok {
			t.Fatalf("missing key %d", i)
		}
	}
}

// TestTreapSnapshotImmutableUnderMutation: a captured snapshot must keep
// serving the exact capture-point state while the live tree is overwritten,
// shrunk and regrown (the copy-on-write property the non-blocking
// checkpoint pipeline rests on).
func TestTreapSnapshotImmutableUnderMutation(t *testing.T) {
	tr := newTreap()
	want := make(map[string]string)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key%04d", i)
		v := fmt.Sprintf("v%d", i)
		tr.Put(k, []byte(v))
		want[k] = v
	}
	snap := tr.snapshot()

	// Mutate heavily: overwrite all, delete the even half, add new keys.
	for i := 0; i < 1000; i++ {
		tr.Put(fmt.Sprintf("key%04d", i), []byte("CLOBBERED"))
	}
	for i := 0; i < 1000; i += 2 {
		tr.Delete(fmt.Sprintf("key%04d", i))
	}
	for i := 0; i < 500; i++ {
		tr.Put(fmt.Sprintf("new%04d", i), []byte("x"))
	}

	if snap.Len() != len(want) {
		t.Fatalf("snapshot Len = %d, want %d", snap.Len(), len(want))
	}
	got := make(map[string]string)
	var keys []string
	snap.All(func(k string, v []byte) bool {
		got[k] = string(v)
		keys = append(keys, k)
		return true
	})
	if !sort.StringsAreSorted(keys) {
		t.Error("snapshot iteration not sorted")
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot iterated %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("snapshot[%s] = %q, want %q", k, got[k], v)
		}
	}
	// And the live tree reflects the mutations, not the snapshot.
	if v, ok := tr.Get("key0001"); !ok || string(v) != "CLOBBERED" {
		t.Error("live tree lost its mutations")
	}
	if _, ok := tr.Get("key0000"); ok {
		t.Error("live tree kept a deleted key")
	}
}

// TestSMCaptureConcurrentWithWrites drives SM.CaptureSnapshot/Serialize
// from a background goroutine while the state machine keeps executing —
// the race detector guards the COW invariants, and every serialized
// snapshot must be a decodable, internally consistent database image.
func TestSMCaptureConcurrentWithWrites(t *testing.T) {
	sm := NewSM()
	for i := 0; i < 200; i++ {
		op := Op{Kind: OpInsert, Key: fmt.Sprintf("k%04d", i), Value: []byte("init")}
		sm.Execute(1, op.Encode())
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			snap := sm.CaptureSnapshot()
			buf := snap.Serialize()
			probe := NewSM()
			if err := probe.Restore(buf); err != nil {
				done <- fmt.Errorf("snapshot %d undecodable: %w", n, err)
				return
			}
		}
	}()
	for round := 0; round < 50; round++ {
		for i := 0; i < 200; i++ {
			op := Op{Kind: OpUpdate, Key: fmt.Sprintf("k%04d", i), Value: []byte(fmt.Sprintf("r%d", round))}
			sm.Execute(1, op.Encode())
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
