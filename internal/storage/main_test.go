package storage

import (
	"testing"

	"amcast/internal/leakcheck"
)

// TestMain gates the package on goroutine-leak verification and on the
// buffer pool reporting zero outstanding buffers (the pooled MemLog
// retains records in pool buffers until Trim/Close).
func TestMain(m *testing.M) { leakcheck.Main(m) }
