package storage

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestFileWALPutBatchGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()

	openSyncs := w.Fsyncs()
	var recs []Record
	for i := uint64(1); i <= 64; i++ {
		recs = append(recs, Record{Instance: i, Data: []byte(fmt.Sprintf("vote-%d", i))})
	}
	if err := w.PutBatch(recs); err != nil {
		t.Fatal(err)
	}
	// Group commit: the whole batch shares one write barrier.
	if got := w.Fsyncs() - openSyncs; got != 1 {
		t.Errorf("batch of 64 issued %d fsyncs, want 1", got)
	}
	for i := uint64(1); i <= 64; i++ {
		rec, ok := w.Get(i)
		if !ok || string(rec) != fmt.Sprintf("vote-%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, rec, ok)
		}
	}
	if b, items, max := w.BatchGauge().Snapshot(); b != 1 || items != 64 || max != 64 {
		t.Errorf("batch gauge = (%d, %d, %d), want (1, 64, 64)", b, items, max)
	}
}

func TestFileWALPutBatchSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut})
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for i := uint64(1); i <= 100; i++ {
		recs = append(recs, Record{Instance: i, Data: []byte(fmt.Sprintf("r%03d", i))})
	}
	if err := w.PutBatch(recs); err != nil {
		t.Fatal(err)
	}
	// Crash without Close: committed batches are already flushed+fsynced.
	w2, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	for i := uint64(1); i <= 100; i++ {
		rec, ok := w2.Get(i)
		if !ok || string(rec) != fmt.Sprintf("r%03d", i) {
			t.Fatalf("after reopen Get(%d) = %q, %v", i, rec, ok)
		}
	}
}

func TestFileWALGetReadsBackFromDisk(t *testing.T) {
	// A cache smaller than the data forces Get to pread records the LRU
	// evicted — the index holds locations only, not bytes.
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut, CacheBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	payload := func(i uint64) []byte {
		return bytes.Repeat([]byte{byte(i)}, 100)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := w.Put(i, payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Early records were evicted (cache holds ~2); all must still read
	// back correctly, repeatedly (cache re-admission included).
	for pass := 0; pass < 2; pass++ {
		for i := uint64(1); i <= 50; i++ {
			rec, ok := w.Get(i)
			if !ok || !bytes.Equal(rec, payload(i)) {
				t.Fatalf("pass %d Get(%d): ok=%v", pass, i, ok)
			}
		}
	}
}

func TestFileWALGetAcrossSegments(t *testing.T) {
	// Records spread over several rolled segments must all pread back.
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut, MaxSegmentBytes: 512, CacheBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	for i := uint64(1); i <= 40; i++ {
		if err := w.Put(i, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 3 {
		t.Fatalf("expected several segments, got %d", w.SegmentCount())
	}
	for i := uint64(1); i <= 40; i++ {
		rec, ok := w.Get(i)
		if !ok || len(rec) != 64 || rec[0] != byte(i) {
			t.Fatalf("Get(%d) across segments failed: ok=%v", i, ok)
		}
	}
}

func TestFileWALGetUnflushedAsyncRecord(t *testing.T) {
	// In async mode a record can still sit in the write buffer; Get must
	// flush before pread rather than return torn data.
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncPeriodic, FlushInterval: time.Hour, CacheBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	if err := w.Put(7, []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	// CacheBytes=1 keeps "buffered" (8 bytes) out of the cache, so this
	// exercises the flush-then-pread path.
	rec, ok := w.Get(7)
	if !ok || string(rec) != "buffered" {
		t.Fatalf("Get(7) = %q, %v", rec, ok)
	}
}

func TestFileWALPutBatchRespectsTrim(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	if err := w.Put(10, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := w.Trim(10); err != nil {
		t.Fatal(err)
	}
	if err := w.PutBatch([]Record{
		{Instance: 5, Data: []byte("stale")},
		{Instance: 11, Data: []byte("fresh")},
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Get(5); ok {
		t.Error("trimmed instance re-appeared via PutBatch")
	}
	if rec, ok := w.Get(11); !ok || string(rec) != "fresh" {
		t.Errorf("Get(11) = %q, %v", rec, ok)
	}
}

func TestFileWALPromiseRewriteNotStale(t *testing.T) {
	// Rewriting a key (the promise record) must always serve the newest
	// record, including through the location-keyed cache.
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	for ballot := 1; ballot <= 5; ballot++ {
		if err := w.Put(0, []byte{byte(ballot)}); err != nil {
			t.Fatal(err)
		}
		rec, ok := w.Get(0)
		if !ok || rec[0] != byte(ballot) {
			t.Fatalf("ballot %d: Get(0) = %v, %v", ballot, rec, ok)
		}
	}
}

func TestMemLogPutBatch(t *testing.T) {
	l := NewMemLog()
	src := []byte("mutate-me")
	if err := l.PutBatch([]Record{{Instance: 1, Data: src}, {Instance: 2, Data: []byte("two")}}); err != nil {
		t.Fatal(err)
	}
	src[0] = 'X' // PutBatch must copy
	if rec, _ := l.Get(1); string(rec) != "mutate-me" {
		t.Errorf("record aliased caller buffer: %q", rec)
	}
	if rec, ok := l.Get(2); !ok || string(rec) != "two" {
		t.Errorf("Get(2) = %q, %v", rec, ok)
	}
}

func TestSimDiskPutBatchSingleBarrier(t *testing.T) {
	// One batch of n records must cost ~one write barrier, not n.
	spec := DiskSpec{WriteLatency: 20 * time.Millisecond, Throughput: 1 << 30, MaxBacklog: time.Second}
	d := NewSimDisk(NewMemLog(), spec, true, 1)
	var recs []Record
	for i := uint64(1); i <= 10; i++ {
		recs = append(recs, Record{Instance: i, Data: []byte("x")})
	}
	start := time.Now()
	if err := d.PutBatch(recs); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 100*time.Millisecond {
		t.Errorf("batch of 10 took %v; per-record barriers would be ~200ms", elapsed)
	}
	if rec, ok := d.Get(5); !ok || string(rec) != "x" {
		t.Errorf("Get(5) = %q, %v", rec, ok)
	}
}

func TestFileWALPromiseSurvivesTrim(t *testing.T) {
	// The reserved metadata record (instance 0, the acceptor promise) is
	// pinned across trims: its segment survives, the index entry stays,
	// and later rewrites are never skipped as "already trimmed".
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 40; i++ {
		if err := w.Put(i, bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Trim(40); err != nil {
		t.Fatal(err)
	}
	if rec, ok := w.Get(0); !ok || rec[0] != 7 {
		t.Fatalf("promise lost after trim: %v, %v", rec, ok)
	}
	// Rewrites after trim must still persist.
	if err := w.Put(0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := w.Get(0); !ok || rec[0] != 9 {
		t.Fatalf("promise rewrite after trim lost: %v, %v", rec, ok)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// And survive a restart: recovery reads the promise back.
	w2, err := OpenWAL(dir, WALOptions{Mode: SyncEveryPut, MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	if rec, ok := w2.Get(0); !ok || rec[0] != 9 {
		t.Fatalf("promise lost across reopen after trim: %v, %v", rec, ok)
	}
}

func TestMemLogPromiseSurvivesTrim(t *testing.T) {
	l := NewMemLog()
	if err := l.Put(0, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(5, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := l.Trim(10); err != nil {
		t.Fatal(err)
	}
	if rec, ok := l.Get(0); !ok || rec[0] != 3 {
		t.Fatalf("promise lost after trim: %v, %v", rec, ok)
	}
	if err := l.PutBatch([]Record{{Instance: 0, Data: []byte{4}}}); err != nil {
		t.Fatal(err)
	}
	if rec, ok := l.Get(0); !ok || rec[0] != 4 {
		t.Fatalf("promise rewrite after trim lost: %v, %v", rec, ok)
	}
	if _, ok := l.Get(5); ok {
		t.Error("trimmed instance survived")
	}
}
