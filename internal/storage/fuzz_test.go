package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecord drops adversarial bytes on disk as a WAL segment and
// opens the log over them: replay must never panic or over-allocate, the
// opened log must stay usable (a put/get round trip works), and every
// record the replay indexed must be served back intact.
func FuzzWALRecord(f *testing.F) {
	frame := func(instance uint64, record []byte) []byte {
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[:8], instance)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(record)))
		binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(record))
		return append(hdr[:], record...)
	}
	f.Add([]byte{})
	f.Add(frame(1, []byte("hello")))
	two := append(frame(1, []byte("a")), frame(2, []byte("bb"))...)
	f.Add(two)
	f.Add(two[:len(two)-1]) // torn tail
	huge := frame(3, []byte("x"))
	binary.LittleEndian.PutUint32(huge[8:12], 0xFFFFFFF0) // length claims ~4 GB
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-000000000.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			return // rejecting the directory is fine; panicking is not
		}
		defer func() { _ = w.Close() }()

		// Whatever replay indexed must read back: Get on a replayed
		// instance returns the framed record bytes.
		for inst := range w.index {
			if _, ok := w.Get(inst); !ok {
				t.Fatalf("replayed instance %d not readable", inst)
			}
		}

		// The log must stay writable past a corrupt tail.
		rec := []byte("post-replay record")
		if err := w.Put(1<<62, rec); err != nil {
			t.Fatalf("put after replay: %v", err)
		}
		got, ok := w.Get(1 << 62)
		if !ok || !bytes.Equal(got, rec) {
			t.Fatalf("get after replay: ok=%v rec=%q", ok, got)
		}
	})
}
