package storage

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"amcast/internal/bufpool"
)

func TestMemLogPutGet(t *testing.T) {
	l := NewMemLog()
	if err := l.Put(5, []byte("five")); err != nil {
		t.Fatal(err)
	}
	rec, ok := l.Get(5)
	if !ok || string(rec) != "five" {
		t.Errorf("Get(5) = %q, %v", rec, ok)
	}
	if _, ok := l.Get(6); ok {
		t.Error("Get(6) should miss")
	}
}

func TestMemLogPutCopies(t *testing.T) {
	l := NewMemLog()
	buf := []byte("mutable")
	if err := l.Put(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	rec, _ := l.Get(1)
	if string(rec) != "mutable" {
		t.Error("Put must copy the record, caller mutation leaked in")
	}
}

func TestMemLogTrim(t *testing.T) {
	l := NewMemLog()
	for i := uint64(1); i <= 10; i++ {
		if err := l.Put(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Trim(6); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(6); ok {
		t.Error("instance 6 should be trimmed")
	}
	if _, ok := l.Get(7); !ok {
		t.Error("instance 7 should survive trim")
	}
	if got := l.FirstRetained(); got != 7 {
		t.Errorf("FirstRetained = %d, want 7", got)
	}
	// Puts below the watermark are ignored.
	if err := l.Put(3, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(3); ok {
		t.Error("stale put below trim watermark should be ignored")
	}
	// Trim is monotone: lower trims are no-ops.
	if err := l.Trim(2); err != nil {
		t.Fatal(err)
	}
	if got := l.FirstRetained(); got != 7 {
		t.Errorf("FirstRetained after lower trim = %d, want 7", got)
	}
}

func TestMemLogClosed(t *testing.T) {
	l := NewMemLog()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(1, nil); err != ErrLogClosed {
		t.Errorf("Put after close = %v, want ErrLogClosed", err)
	}
	if err := l.Trim(1); err != ErrLogClosed {
		t.Errorf("Trim after close = %v, want ErrLogClosed", err)
	}
}

func TestMemLogZeroValue(t *testing.T) {
	var l MemLog
	if err := l.Put(1, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(1); !ok {
		t.Error("zero-value MemLog should be usable")
	}
}

func TestMemLogConcurrent(t *testing.T) {
	l := NewMemLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				inst := uint64(g*1000 + i)
				if err := l.Put(inst, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, ok := l.Get(inst); !ok {
					t.Errorf("lost instance %d", inst)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 8*200 {
		t.Errorf("Len = %d, want 1600", l.Len())
	}
}

func TestFileWALBasic(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := w.Put(i, []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok := w.Get(25)
	if !ok || string(rec) != "record-25" {
		t.Errorf("Get(25) = %q, %v", rec, ok)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileWALRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("d"), 100)
	for i := uint64(1); i <= 100; i++ {
		if err := w.Put(i, append(payload, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: all records must be recovered from disk.
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	for i := uint64(1); i <= 100; i++ {
		rec, ok := w2.Get(i)
		if !ok {
			t.Fatalf("instance %d lost after recovery", i)
		}
		if rec[len(rec)-1] != byte(i) {
			t.Fatalf("instance %d corrupted after recovery", i)
		}
	}
}

func TestFileWALSegmentRollAndTrim(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{MaxSegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	payload := bytes.Repeat([]byte("x"), 512)
	for i := uint64(1); i <= 64; i++ {
		if err := w.Put(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	if w.SegmentCount() < 2 {
		t.Fatalf("expected multiple segments, got %d", w.SegmentCount())
	}
	before := w.SegmentCount()
	if err := w.Trim(32); err != nil {
		t.Fatal(err)
	}
	if w.SegmentCount() >= before {
		t.Errorf("trim did not remove segments: %d -> %d", before, w.SegmentCount())
	}
	if _, ok := w.Get(10); ok {
		t.Error("trimmed instance should be gone")
	}
	if _, ok := w.Get(60); !ok {
		t.Error("instance above trim must survive")
	}
}

func TestFileWALTrimSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{MaxSegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 256)
	for i := uint64(1); i <= 40; i++ {
		if err := w.Put(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Trim(20); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{MaxSegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	// Records above the trim must be there; fully-trimmed segments gone.
	if _, ok := w2.Get(40); !ok {
		t.Error("instance 40 lost across reopen")
	}
}

func TestFileWALAsyncMode(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{Mode: SyncPeriodic, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := w.Put(i, []byte("async")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	if _, ok := w2.Get(20); !ok {
		t.Error("async record lost despite Sync+Close")
	}
}

func TestFileWALCorruptTailIgnored(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put(1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage to the newest segment to simulate a torn write.
	segs, err := filepathGlob(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments found: %v", err)
	}
	appendGarbage(t, segs[len(segs)-1])

	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w2.Close() }()
	if _, ok := w2.Get(1); !ok {
		t.Error("valid prefix record lost due to corrupt tail")
	}
}

func TestLogInterfaceProperty(t *testing.T) {
	// Property: for any sequence of puts with distinct instances followed
	// by a trim at T, Get(i) succeeds iff i > T.
	f := func(instances []uint16, trimAt uint16) bool {
		l := NewMemLog()
		seen := make(map[uint64]bool)
		for _, i := range instances {
			inst := uint64(i) + 1 // avoid 0
			seen[inst] = true
			if err := l.Put(inst, []byte{1}); err != nil {
				return false
			}
		}
		if err := l.Trim(uint64(trimAt)); err != nil {
			return false
		}
		for inst := range seen {
			_, ok := l.Get(inst)
			if want := inst > uint64(trimAt); ok != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimDiskSyncLatency(t *testing.T) {
	d := NewSimDisk(NewMemLog(), DiskSpec{WriteLatency: 20 * time.Millisecond, Throughput: 1 << 30}, true, 1)
	start := time.Now()
	if err := d.Put(1, []byte("rec")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("sync put took %v, want >= ~20ms", elapsed)
	}
	if _, ok := d.Get(1); !ok {
		t.Error("record lost")
	}
}

func TestSimDiskAsyncFast(t *testing.T) {
	d := NewSimDisk(NewMemLog(), HDDSpec(), false, 1)
	start := time.Now()
	for i := uint64(0); i < 100; i++ {
		if err := d.Put(i, []byte("rec")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("async puts took %v, should absorb into backlog", elapsed)
	}
}

func TestSimDiskAsyncBackpressure(t *testing.T) {
	// Tiny backlog and slow device: writers must be throttled.
	spec := DiskSpec{WriteLatency: 0, Throughput: 1 << 20, MaxBacklog: 10 * time.Millisecond}
	d := NewSimDisk(NewMemLog(), spec, false, 1)
	payload := make([]byte, 64<<10) // 64 KB, ~62ms of device time each
	start := time.Now()
	for i := uint64(0); i < 4; i++ {
		if err := d.Put(i, payload); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("async writes with full backlog took %v, want back-pressure", elapsed)
	}
}

func TestSimDiskSyncFasterOnSSD(t *testing.T) {
	hdd := NewSimDisk(NewMemLog(), HDDSpec(), true, 0.5)
	ssd := NewSimDisk(NewMemLog(), SSDSpec(), true, 0.5)
	rec := make([]byte, 1024)
	timeOf := func(l Log) time.Duration {
		start := time.Now()
		for i := uint64(0); i < 5; i++ {
			if err := l.Put(i, rec); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	if th, ts := timeOf(hdd), timeOf(ssd); th < ts*3 {
		t.Errorf("HDD (%v) should be much slower than SSD (%v) in sync mode", th, ts)
	}
}

func TestNewModeLog(t *testing.T) {
	for _, mode := range Modes {
		l := NewModeLog(mode, 0.1)
		if err := l.Put(1, []byte("x")); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
		if _, ok := l.Get(1); !ok {
			t.Errorf("%v: record lost", mode)
		}
		if err := l.Close(); err != nil {
			t.Errorf("%v: close: %v", mode, err)
		}
	}
	if ModeMemory.String() != "In Memory" || Mode(99).String() != "Unknown" {
		t.Error("Mode.String broken")
	}
}

func TestPooledMemLog(t *testing.T) {
	before := bufpool.Outstanding()
	l := NewPooledMemLog()
	if err := l.Put(1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Put(1, []byte("one-again")); err != nil { // overwrite releases old buf
		t.Fatal(err)
	}
	if err := l.PutBatch([]Record{{Instance: 2, Data: []byte("two")}, {Instance: 3, Data: []byte("three")}}); err != nil {
		t.Fatal(err)
	}
	rec, ok := l.Get(2)
	if !ok || string(rec) != "two" {
		t.Fatalf("Get(2) = %q, %v", rec, ok)
	}
	// Pooled Get must hand back a heap copy, never the pooled bytes.
	rec[0] = 'X'
	if again, _ := l.Get(2); string(again) != "two" {
		t.Error("Get returned aliased pool storage in pooled mode")
	}
	if err := l.Trim(2); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(2); ok {
		t.Error("instance 2 should be trimmed")
	}
	if _, ok := l.Get(3); !ok {
		t.Error("instance 3 should survive trim")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get(3); ok {
		t.Error("pooled Get should miss after Close releases the records")
	}
	if got := bufpool.Outstanding(); got != before {
		t.Errorf("pooled MemLog leaked %d buffers", got-before)
	}
}
