// Package storage provides the stable-storage substrates used by acceptors
// (vote logs) and replicas (checkpoints).
//
// Three layers are provided:
//
//   - Log: the acceptor log contract — durable Put/Get of per-instance
//     records plus prefix Trim (Section 5.1: acceptors log Phase 1B/2B
//     responses before replying, and trim coordinated with checkpoints).
//   - MemLog: volatile slot-buffer implementation, mirroring the paper's
//     in-memory acceptors (pre-allocated buffers of 15000 slots × 32 KB).
//   - FileWAL: a real, file-backed segmented write-ahead log with
//     synchronous and asynchronous modes and segment-granular trimming
//     (the Berkeley DB substitute).
//
// Disk timing for the simulation benchmarks lives in disk.go: a calibrated
// latency model for HDD/SSD × sync/async, wrapped around any Log.
package storage

import (
	"errors"
	"sync"

	"amcast/internal/bufpool"
)

// Record pairs a consensus instance with its durable record, for batched
// log appends.
type Record struct {
	Instance uint64
	Data     []byte
}

// Log is the acceptor stable-storage contract. Implementations must be
// safe for concurrent use.
type Log interface {
	// Put durably stores the record for a consensus instance. For
	// synchronous implementations Put returns after the record is
	// persisted; asynchronous ones may buffer.
	Put(instance uint64, record []byte) error
	// PutBatch durably stores several records with a single
	// stable-storage round trip (group commit): synchronous
	// implementations pay one write barrier for the whole batch instead
	// of one per record. Either every record is as durable as a Put
	// would have made it, or an error is returned and the caller must
	// assume none are.
	PutBatch(recs []Record) error
	// Get returns the record stored for an instance, or ok=false if the
	// instance was never stored or has been trimmed.
	Get(instance uint64) (record []byte, ok bool)
	// Trim discards all records with instance <= upTo, except instance
	// 0: that key is reserved for caller metadata (an acceptor's
	// promised ballot) and is pinned across trims. Implementations may
	// retain more than required but never less.
	Trim(upTo uint64) error
	// FirstRetained returns the lowest instance that is guaranteed still
	// retrievable (0 if nothing was trimmed yet).
	FirstRetained() uint64
	// Sync flushes any buffered records to stable storage.
	Sync() error
	// Close releases resources, flushing buffered data first.
	Close() error
}

// ErrLogClosed is returned by operations on a closed log.
var ErrLogClosed = errors.New("storage: log closed")

// metaInstance is the reserved metadata key exempt from trimming (the
// acceptor promise record; consensus instances start at 1).
const metaInstance = 0

// MemLog is an in-memory Log. It mirrors the paper's in-memory acceptor
// buffers: bounded retention is the caller's job via Trim. The zero value
// is ready to use.
type MemLog struct {
	mu      sync.RWMutex
	records map[uint64][]byte
	trimmed uint64
	closed  bool

	// pooled mode (NewPooledMemLog): records are copied into refcounted
	// pool buffers tracked in bufs, released on overwrite/trim/close.
	pooled bool
	bufs   map[uint64]*bufpool.Buf
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog {
	return &MemLog{records: make(map[uint64][]byte)}
}

// NewPooledMemLog returns an in-memory log whose record copies live in
// refcounted pool buffers instead of per-record heap allocations: the
// steady-state accept path (one record copied per vote) stops producing
// garbage, and Trim returns the bytes to the pool deterministically. Get
// returns a heap copy so callers never alias storage that a concurrent
// Trim could recycle. Close releases all retained records (Get misses
// afterwards, unlike the plain MemLog).
func NewPooledMemLog() *MemLog {
	return &MemLog{
		records: make(map[uint64][]byte),
		bufs:    make(map[uint64]*bufpool.Buf),
		pooled:  true,
	}
}

var _ Log = (*MemLog)(nil)

// Put stores a copy of record for instance.
func (l *MemLog) Put(instance uint64, record []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if l.records == nil {
		l.records = make(map[uint64][]byte)
	}
	if instance != metaInstance && instance <= l.trimmed && l.trimmed > 0 {
		return nil // already trimmed; ignore stale writes
	}
	l.store(instance, record)
	return nil
}

// store copies record into the map under l.mu, using a pool buffer in
// pooled mode (releasing any overwritten one).
func (l *MemLog) store(instance uint64, record []byte) {
	if l.pooled {
		if old, ok := l.bufs[instance]; ok {
			old.Release()
		}
		b := bufpool.Copy(record)
		l.bufs[instance] = b
		l.records[instance] = b.Bytes()
		return
	}
	cp := make([]byte, len(record))
	copy(cp, record)
	l.records[instance] = cp
}

// PutBatch stores copies of all records under one lock acquisition.
func (l *MemLog) PutBatch(recs []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if l.records == nil {
		l.records = make(map[uint64][]byte)
	}
	for _, r := range recs {
		if r.Instance != metaInstance && r.Instance <= l.trimmed && l.trimmed > 0 {
			continue
		}
		l.store(r.Instance, r.Data)
	}
	return nil
}

// Get returns the record for instance. In pooled mode the result is a
// heap copy (the stored bytes may recycle on a concurrent Trim); the
// plain mode returns the stored copy directly, as before.
func (l *MemLog) Get(instance uint64) ([]byte, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	rec, ok := l.records[instance]
	if ok && l.pooled {
		rec = append([]byte(nil), rec...)
	}
	return rec, ok
}

// Trim discards records for instances <= upTo.
func (l *MemLog) Trim(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrLogClosed
	}
	if upTo <= l.trimmed {
		return nil
	}
	for inst := range l.records {
		if inst != metaInstance && inst <= upTo {
			if b, ok := l.bufs[inst]; ok {
				b.Release()
				delete(l.bufs, inst)
			}
			delete(l.records, inst)
		}
	}
	l.trimmed = upTo
	return nil
}

// FirstRetained returns the lowest guaranteed-retrievable instance.
func (l *MemLog) FirstRetained() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.trimmed == 0 {
		return 0
	}
	return l.trimmed + 1
}

// Len reports the number of retained records.
func (l *MemLog) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.records)
}

// Sync is a no-op for the in-memory log.
func (l *MemLog) Sync() error { return nil }

// Close marks the log closed. In pooled mode the retained records return
// to the pool.
func (l *MemLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.pooled {
		for inst, b := range l.bufs {
			b.Release()
			delete(l.bufs, inst)
			delete(l.records, inst)
		}
	}
	return nil
}
