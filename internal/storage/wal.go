package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncMode selects the durability mode of a FileWAL, mirroring the paper's
// synchronous vs. asynchronous acceptor disk writes.
type SyncMode int

const (
	// SyncEveryPut flushes and fsyncs after every Put ("synchronous disk
	// writes"; the paper disables batching in this mode).
	SyncEveryPut SyncMode = iota + 1
	// SyncPeriodic buffers writes and flushes on a background interval
	// ("asynchronous disk writes").
	SyncPeriodic
)

// FileWAL is a segmented, file-backed write-ahead log for acceptor votes
// and decisions. Records are framed as:
//
//	instance(8) len(4) crc32(4) data(len)
//
// Segments roll over at a size threshold; Trim removes whole segments whose
// records are all <= the trim watermark. Open rebuilds the in-memory index
// by scanning segments, so an acceptor recovers its log after a crash
// (Section 5.1, acceptor recovery).
type FileWAL struct {
	dir     string
	mode    SyncMode
	maxSeg  int64
	flushEv time.Duration

	mu       sync.Mutex
	segs     []*walSegment
	cur      *os.File
	curW     *bufio.Writer
	curSize  int64
	curFirst uint64 // lowest instance in current segment
	curLast  uint64
	curBase  int // numeric name of current segment
	index    map[uint64]walLoc
	trimmed  uint64
	closed   bool

	flushDone chan struct{}
	flushStop chan struct{}
}

type walSegment struct {
	path  string
	base  int
	first uint64
	last  uint64
}

type walLoc struct {
	data []byte // records cached in memory for serving retransmissions
}

// WALOptions configures OpenWAL.
type WALOptions struct {
	// Mode selects sync-per-put or periodic flushing. Default SyncEveryPut.
	Mode SyncMode
	// MaxSegmentBytes rolls segments at this size. Default 8 MB.
	MaxSegmentBytes int64
	// FlushInterval is the async flush period. Default 10 ms.
	FlushInterval time.Duration
}

// OpenWAL opens (creating if needed) a WAL in dir and replays existing
// segments to rebuild the index.
func OpenWAL(dir string, opts WALOptions) (*FileWAL, error) {
	if opts.Mode == 0 {
		opts.Mode = SyncEveryPut
	}
	if opts.MaxSegmentBytes == 0 {
		opts.MaxSegmentBytes = 8 << 20
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = 10 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create wal dir: %w", err)
	}
	w := &FileWAL{
		dir:       dir,
		mode:      opts.Mode,
		maxSeg:    opts.MaxSegmentBytes,
		flushEv:   opts.FlushInterval,
		index:     make(map[uint64]walLoc),
		flushDone: make(chan struct{}),
		flushStop: make(chan struct{}),
	}
	if err := w.replay(); err != nil {
		return nil, err
	}
	if err := w.rollSegment(); err != nil {
		return nil, err
	}
	if w.mode == SyncPeriodic {
		go w.flushLoop()
	} else {
		close(w.flushDone)
	}
	return w, nil
}

var _ Log = (*FileWAL)(nil)

func segName(base int) string { return fmt.Sprintf("wal-%09d.seg", base) }

// replay scans existing segments in order, loading records into the index.
func (w *FileWAL) replay() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("storage: read wal dir: %w", err)
	}
	var bases []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		base, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"))
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Ints(bases)
	for _, base := range bases {
		path := filepath.Join(w.dir, segName(base))
		seg := &walSegment{path: path, base: base}
		if err := w.replaySegment(seg); err != nil {
			return err
		}
		w.segs = append(w.segs, seg)
		if base >= w.curBase {
			w.curBase = base + 1
		}
	}
	return nil
}

func (w *FileWAL) replaySegment(seg *walSegment) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("storage: open segment: %w", err)
	}
	defer func() { _ = f.Close() }()
	r := bufio.NewReader(f)
	var hdr [16]byte
	first := true
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// EOF or torn tail record: stop replay of this segment.
			return nil
		}
		inst := binary.LittleEndian.Uint64(hdr[:8])
		size := binary.LittleEndian.Uint32(hdr[8:12])
		sum := binary.LittleEndian.Uint32(hdr[12:16])
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil // torn record
		}
		if crc32.ChecksumIEEE(data) != sum {
			return nil // corrupt tail; discard rest
		}
		w.index[inst] = walLoc{data: data}
		if first || inst < seg.first {
			seg.first = inst
		}
		if inst > seg.last {
			seg.last = inst
		}
		first = false
	}
}

// rollSegment closes the current segment (if any) and starts a new one.
// Caller need not hold the lock during Open; afterwards callers do.
func (w *FileWAL) rollSegment() error {
	if w.cur != nil {
		if err := w.curW.Flush(); err != nil {
			return err
		}
		if err := w.cur.Sync(); err != nil {
			return err
		}
		if err := w.cur.Close(); err != nil {
			return err
		}
		w.segs = append(w.segs, &walSegment{
			path:  filepath.Join(w.dir, segName(w.curBase)),
			base:  w.curBase,
			first: w.curFirst,
			last:  w.curLast,
		})
		w.curBase++
	}
	path := filepath.Join(w.dir, segName(w.curBase))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open segment: %w", err)
	}
	w.cur = f
	w.curW = bufio.NewWriterSize(f, 256<<10)
	w.curSize = 0
	w.curFirst = 0
	w.curLast = 0
	return nil
}

// Put appends a record for instance.
func (w *FileWAL) Put(instance uint64, record []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrLogClosed
	}
	if w.trimmed > 0 && instance <= w.trimmed {
		return nil
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], instance)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(record)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(record))
	if _, err := w.curW.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.curW.Write(record); err != nil {
		return err
	}
	cp := make([]byte, len(record))
	copy(cp, record)
	w.index[instance] = walLoc{data: cp}
	if w.curFirst == 0 || instance < w.curFirst {
		w.curFirst = instance
	}
	if instance > w.curLast {
		w.curLast = instance
	}
	w.curSize += int64(16 + len(record))
	if w.mode == SyncEveryPut {
		if err := w.curW.Flush(); err != nil {
			return err
		}
		if err := w.cur.Sync(); err != nil {
			return err
		}
	}
	if w.curSize >= w.maxSeg {
		return w.rollSegment()
	}
	return nil
}

// Get returns the cached record for instance.
func (w *FileWAL) Get(instance uint64) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	loc, ok := w.index[instance]
	if !ok {
		return nil, false
	}
	return loc.data, true
}

// Trim removes whole segments whose records are all <= upTo and drops
// trimmed entries from the index.
func (w *FileWAL) Trim(upTo uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrLogClosed
	}
	if upTo <= w.trimmed {
		return nil
	}
	w.trimmed = upTo
	kept := w.segs[:0]
	for _, seg := range w.segs {
		if seg.last != 0 && seg.last <= upTo {
			_ = os.Remove(seg.path)
			continue
		}
		kept = append(kept, seg)
	}
	w.segs = kept
	for inst := range w.index {
		if inst <= upTo {
			delete(w.index, inst)
		}
	}
	return nil
}

// FirstRetained returns the lowest guaranteed-retrievable instance.
func (w *FileWAL) FirstRetained() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.trimmed == 0 {
		return 0
	}
	return w.trimmed + 1
}

// Sync flushes buffered records and fsyncs the current segment.
func (w *FileWAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *FileWAL) syncLocked() error {
	if w.closed {
		return ErrLogClosed
	}
	if err := w.curW.Flush(); err != nil {
		return err
	}
	return w.cur.Sync()
}

func (w *FileWAL) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.flushEv)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Close flushes and closes the log.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	err := w.syncLocked()
	w.closed = true
	cerr := w.cur.Close()
	w.mu.Unlock()
	if w.mode == SyncPeriodic {
		close(w.flushStop)
	}
	<-w.flushDone
	if err == nil {
		err = cerr
	}
	return err
}

// SegmentCount reports the number of on-disk segments (including current).
func (w *FileWAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs) + 1
}
