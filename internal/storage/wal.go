package storage

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"amcast/internal/metrics"
)

// SyncMode selects the durability mode of a FileWAL, mirroring the paper's
// synchronous vs. asynchronous acceptor disk writes.
type SyncMode int

const (
	// SyncEveryPut flushes and fsyncs after every Put ("synchronous disk
	// writes"; the paper disables batching in this mode). PutBatch still
	// amortizes: one flush + fsync covers the whole batch (group commit).
	SyncEveryPut SyncMode = iota + 1
	// SyncPeriodic buffers writes and flushes on a background interval
	// ("asynchronous disk writes").
	SyncPeriodic
)

// FileWAL is a segmented, file-backed write-ahead log for acceptor votes
// and decisions. Records are framed as:
//
//	instance(8) len(4) crc32(4) data(len)
//
// Segments roll over at a size threshold; Trim removes whole segments whose
// records are all <= the trim watermark. Open rebuilds the in-memory index
// by scanning segments, so an acceptor recovers its log after a crash
// (Section 5.1, acceptor recovery).
//
// The index holds only record locations — (segment, offset, length) — not
// record bytes: Get serves reads with pread through a small LRU of hot
// records, so memory stays flat no matter how much untrimmed log exists.
type FileWAL struct {
	dir     string
	mode    SyncMode
	maxSeg  int64
	flushEv time.Duration

	mu         sync.Mutex
	segs       []*walSegment
	cur        *os.File
	curW       *bufio.Writer
	curSize    int64
	curFlushed int64 // bytes of the current segment already written through
	curFirst   uint64
	curLast    uint64
	curBase    int // numeric name of current segment
	index      map[uint64]walLoc
	cache      *recordCache
	trimmed    uint64
	closed     bool

	fsyncs     metrics.Counter
	batchGauge metrics.BatchGauge

	flushDone chan struct{}
	flushStop chan struct{}
}

type walSegment struct {
	path  string
	base  int
	first uint64
	last  uint64
	r     *os.File // lazily opened pread handle
}

// walLoc locates one record's data bytes on disk (offset is past the
// 16-byte frame header).
type walLoc struct {
	base int
	off  int64
	n    int
}

// WALOptions configures OpenWAL.
type WALOptions struct {
	// Mode selects sync-per-put or periodic flushing. Default SyncEveryPut.
	Mode SyncMode
	// MaxSegmentBytes rolls segments at this size. Default 8 MB.
	MaxSegmentBytes int64
	// FlushInterval is the async flush period. Default 10 ms.
	FlushInterval time.Duration
	// CacheBytes bounds the in-memory LRU of hot records served by Get
	// (retransmissions read the recent tail). Default 4 MB.
	CacheBytes int
}

// OpenWAL opens (creating if needed) a WAL in dir and replays existing
// segments to rebuild the index.
func OpenWAL(dir string, opts WALOptions) (*FileWAL, error) {
	if opts.Mode == 0 {
		opts.Mode = SyncEveryPut
	}
	if opts.MaxSegmentBytes == 0 {
		opts.MaxSegmentBytes = 8 << 20
	}
	if opts.FlushInterval == 0 {
		opts.FlushInterval = 10 * time.Millisecond
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create wal dir: %w", err)
	}
	w := &FileWAL{
		dir:       dir,
		mode:      opts.Mode,
		maxSeg:    opts.MaxSegmentBytes,
		flushEv:   opts.FlushInterval,
		index:     make(map[uint64]walLoc),
		cache:     newRecordCache(opts.CacheBytes),
		flushDone: make(chan struct{}),
		flushStop: make(chan struct{}),
	}
	if err := w.replay(); err != nil {
		return nil, err
	}
	if err := w.rollSegment(); err != nil {
		return nil, err
	}
	if w.mode == SyncPeriodic {
		go w.flushLoop()
	} else {
		close(w.flushDone)
	}
	return w, nil
}

var _ Log = (*FileWAL)(nil)

func segName(base int) string { return fmt.Sprintf("wal-%09d.seg", base) }

// replay scans existing segments in order, loading record locations into
// the index.
func (w *FileWAL) replay() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("storage: read wal dir: %w", err)
	}
	var bases []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		base, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"))
		if err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Ints(bases)
	for _, base := range bases {
		path := filepath.Join(w.dir, segName(base))
		seg := &walSegment{path: path, base: base}
		if err := w.replaySegment(seg); err != nil {
			return err
		}
		w.segs = append(w.segs, seg)
		if base >= w.curBase {
			w.curBase = base + 1
		}
	}
	return nil
}

func (w *FileWAL) replaySegment(seg *walSegment) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("storage: open segment: %w", err)
	}
	defer func() { _ = f.Close() }()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("storage: stat segment: %w", err)
	}
	fileSize := st.Size()
	r := bufio.NewReader(f)
	var hdr [16]byte
	var off int64
	first := true
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// EOF or torn tail record: stop replay of this segment.
			return nil
		}
		inst := binary.LittleEndian.Uint64(hdr[:8])
		size := binary.LittleEndian.Uint32(hdr[8:12])
		sum := binary.LittleEndian.Uint32(hdr[12:16])
		if int64(size) > fileSize-off-16 {
			// The header claims more bytes than the segment holds: a torn
			// or corrupt length. Sizing the read buffer from the claim
			// would let 4 flipped bytes demand a 4 GB allocation, so bound
			// it by what is actually on disk and treat the tail as torn.
			return nil
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil // torn record
		}
		if crc32.ChecksumIEEE(data) != sum {
			return nil // corrupt tail; discard rest
		}
		w.index[inst] = walLoc{base: seg.base, off: off + 16, n: int(size)}
		off += 16 + int64(size)
		if first || inst < seg.first {
			seg.first = inst
		}
		if inst > seg.last {
			seg.last = inst
		}
		first = false
	}
}

// rollSegment closes the current segment (if any) and starts a new one.
// Caller need not hold the lock during Open; afterwards callers do.
func (w *FileWAL) rollSegment() error {
	if w.cur != nil {
		if err := w.curW.Flush(); err != nil {
			return err
		}
		if err := w.syncCur(); err != nil {
			return err
		}
		if err := w.cur.Close(); err != nil {
			return err
		}
		w.segs = append(w.segs, &walSegment{
			path:  filepath.Join(w.dir, segName(w.curBase)),
			base:  w.curBase,
			first: w.curFirst,
			last:  w.curLast,
		})
		w.curBase++
	}
	path := filepath.Join(w.dir, segName(w.curBase))
	// O_RDWR so Get can pread records of the open segment (O_APPEND only
	// affects writes).
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("storage: open segment: %w", err)
	}
	w.cur = f
	w.curW = bufio.NewWriterSize(f, 256<<10)
	w.curSize = 0
	w.curFlushed = 0
	w.curFirst = 0
	w.curLast = 0
	return nil
}

// appendLocked frames one record into the current segment's buffer and
// indexes its location. It does not flush or sync.
//
//lint:deterministic
func (w *FileWAL) appendLocked(instance uint64, record []byte) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[:8], instance)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(record)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.ChecksumIEEE(record))
	if _, err := w.curW.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.curW.Write(record); err != nil {
		return err
	}
	loc := walLoc{base: w.curBase, off: w.curSize + 16, n: len(record)}
	w.index[instance] = loc
	w.cache.addCopy(loc, record)
	if w.curFirst == 0 || instance < w.curFirst {
		w.curFirst = instance
	}
	if instance > w.curLast {
		w.curLast = instance
	}
	w.curSize += int64(16 + len(record))
	return nil
}

// commitLocked makes everything appended so far durable for synchronous
// mode and rolls the segment at the size threshold.
func (w *FileWAL) commitLocked() error {
	if w.mode == SyncEveryPut {
		if err := w.curW.Flush(); err != nil {
			return err
		}
		w.curFlushed = w.curSize
		if err := w.syncCur(); err != nil {
			return err
		}
	}
	if w.curSize >= w.maxSeg {
		return w.rollSegment()
	}
	return nil
}

// Put appends a record for instance.
func (w *FileWAL) Put(instance uint64, record []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrLogClosed
	}
	if instance != metaInstance && w.trimmed > 0 && instance <= w.trimmed {
		return nil
	}
	if err := w.appendLocked(instance, record); err != nil {
		return err
	}
	return w.commitLocked()
}

// PutBatch appends all records and commits them with one buffered write
// and — under SyncEveryPut — one fsync for the whole batch: group commit,
// amortizing the write barrier that dominates synchronous-disk acceptors.
func (w *FileWAL) PutBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrLogClosed
	}
	appended := 0
	for _, r := range recs {
		if r.Instance != metaInstance && w.trimmed > 0 && r.Instance <= w.trimmed {
			continue
		}
		if err := w.appendLocked(r.Instance, r.Data); err != nil {
			return err
		}
		appended++
	}
	if appended == 0 {
		return nil
	}
	w.batchGauge.Observe(appended)
	return w.commitLocked()
}

// Get returns the record for instance, reading it back from disk (via the
// LRU) if it is not cached.
func (w *FileWAL) Get(instance uint64) ([]byte, bool) {
	w.mu.Lock()
	if w.closed {
		// Segment handles are gone; reopening here would leak them.
		w.mu.Unlock()
		return nil, false
	}
	loc, ok := w.index[instance]
	if !ok {
		w.mu.Unlock()
		return nil, false
	}
	if data, ok := w.cache.get(loc); ok {
		w.mu.Unlock()
		return data, true
	}
	w.mu.Unlock()
	// pread outside the lock: a cold read (retransmission serving) must
	// never stall the hot-path group commit. A concurrent segment roll
	// can close the handle between resolution and ReadAt; the retry
	// re-resolves (the rolled segment reopens via segByBase). Only a
	// Trim or Close — which really removed the record — fails twice.
	var data []byte
	for attempt := 0; ; attempt++ {
		w.mu.Lock()
		f, err := w.readHandleLocked(loc)
		w.mu.Unlock()
		if err != nil {
			return nil, false
		}
		data = make([]byte, loc.n)
		if _, err := f.ReadAt(data, loc.off); err == nil {
			break
		}
		if attempt == 1 {
			return nil, false
		}
	}
	w.mu.Lock()
	if !w.closed {
		w.cache.add(loc, data)
	}
	w.mu.Unlock()
	return data, true
}

// readHandleLocked resolves the file to pread loc from, flushing the
// write buffer first when the record's bytes may still be buffered.
func (w *FileWAL) readHandleLocked(loc walLoc) (*os.File, error) {
	if w.closed {
		return nil, ErrLogClosed // don't reopen (and leak) segment handles
	}
	if loc.base == w.curBase {
		if loc.off+int64(loc.n) > w.curFlushed {
			if err := w.curW.Flush(); err != nil {
				return nil, err
			}
			w.curFlushed = w.curSize
		}
		return w.cur, nil
	}
	seg := w.segByBase(loc.base)
	if seg == nil {
		return nil, fmt.Errorf("storage: segment %d gone", loc.base)
	}
	if seg.r == nil {
		r, err := os.Open(seg.path)
		if err != nil {
			return nil, err
		}
		seg.r = r
	}
	return seg.r, nil
}

func (w *FileWAL) segByBase(base int) *walSegment {
	for _, seg := range w.segs {
		if seg.base == base {
			return seg
		}
	}
	return nil
}

// Trim removes whole segments whose records are all <= upTo and drops
// trimmed entries from the index.
func (w *FileWAL) Trim(upTo uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrLogClosed
	}
	if upTo <= w.trimmed {
		return nil
	}
	w.trimmed = upTo
	// The metadata record (the acceptor promise) is pinned: its segment
	// must survive so replay and Get keep serving the latest promise.
	metaLoc, hasMeta := w.index[metaInstance]
	kept := w.segs[:0]
	for _, seg := range w.segs {
		pinned := hasMeta && metaLoc.base == seg.base
		if !pinned && seg.last != 0 && seg.last <= upTo {
			if seg.r != nil {
				_ = seg.r.Close()
			}
			_ = os.Remove(seg.path)
			continue
		}
		kept = append(kept, seg)
	}
	w.segs = kept
	for inst := range w.index {
		if inst != metaInstance && inst <= upTo {
			delete(w.index, inst)
		}
	}
	return nil
}

// FirstRetained returns the lowest guaranteed-retrievable instance.
func (w *FileWAL) FirstRetained() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.trimmed == 0 {
		return 0
	}
	return w.trimmed + 1
}

// Sync flushes buffered records and fsyncs the current segment.
func (w *FileWAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *FileWAL) syncLocked() error {
	if w.closed {
		return ErrLogClosed
	}
	if err := w.curW.Flush(); err != nil {
		return err
	}
	w.curFlushed = w.curSize
	return w.syncCur()
}

// syncCur fsyncs the current segment, counting the barrier.
func (w *FileWAL) syncCur() error {
	w.fsyncs.Inc()
	return w.cur.Sync()
}

// Fsyncs reports how many fsyncs the WAL has issued — the cost group
// commit exists to amortize.
func (w *FileWAL) Fsyncs() uint64 { return w.fsyncs.Load() }

// BatchGauge returns the PutBatch size distribution (records per commit).
func (w *FileWAL) BatchGauge() *metrics.BatchGauge { return &w.batchGauge }

func (w *FileWAL) flushLoop() {
	defer close(w.flushDone)
	t := time.NewTicker(w.flushEv)
	defer t.Stop()
	for {
		select {
		case <-w.flushStop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				_ = w.syncLocked()
			}
			w.mu.Unlock()
		}
	}
}

// Close flushes and closes the log.
func (w *FileWAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	err := w.syncLocked()
	w.closed = true
	cerr := w.cur.Close()
	for _, seg := range w.segs {
		if seg.r != nil {
			_ = seg.r.Close()
			seg.r = nil
		}
	}
	w.mu.Unlock()
	if w.mode == SyncPeriodic {
		close(w.flushStop)
	}
	<-w.flushDone
	if err == nil {
		err = cerr
	}
	return err
}

// SegmentCount reports the number of on-disk segments (including current).
func (w *FileWAL) SegmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs) + 1
}

// recordCache is a byte-bounded LRU of record payloads keyed by their file
// location. It keeps the hot tail of the log — what retransmission serving
// actually reads — in memory without the full-log copy the index used to
// carry. Locations are unique per appended record, so rewritten keys (the
// promise record) can never serve a stale cached value.
type recordCache struct {
	maxBytes int
	bytes    int
	ll       *list.List // front = most recent
	ents     map[walLoc]*list.Element
}

type cacheEnt struct {
	loc  walLoc
	data []byte
}

func newRecordCache(maxBytes int) *recordCache {
	return &recordCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		ents:     make(map[walLoc]*list.Element),
	}
}

func (c *recordCache) get(loc walLoc) ([]byte, bool) {
	e, ok := c.ents[loc]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEnt).data, true
}

// add caches data, taking ownership of the slice.
func (c *recordCache) add(loc walLoc, data []byte) {
	if len(data) > c.maxBytes {
		return // larger than the whole cache; don't thrash it
	}
	if e, ok := c.ents[loc]; ok {
		c.ll.MoveToFront(e)
		return
	}
	c.ents[loc] = c.ll.PushFront(&cacheEnt{loc: loc, data: data})
	c.bytes += len(data)
	for c.bytes > c.maxBytes {
		e := c.ll.Back()
		if e == nil {
			return
		}
		ent := e.Value.(*cacheEnt)
		c.ll.Remove(e)
		delete(c.ents, ent.loc)
		c.bytes -= len(ent.data)
	}
}

// addCopy caches a copy of data (for callers that keep mutating or reusing
// the slice).
func (c *recordCache) addCopy(loc walLoc, data []byte) {
	if len(data) > c.maxBytes {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.add(loc, cp)
}
