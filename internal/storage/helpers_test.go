package storage

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// filepathGlob lists segment files in a WAL directory in name order.
func filepathGlob(dir string) ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	return matches, nil
}

// appendGarbage writes junk bytes to the end of a file to simulate a torn
// record.
func appendGarbage(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
}
