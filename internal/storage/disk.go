package storage

import (
	"errors"
	"sync"
	"time"
)

// Injected device failures (chaos testing). ErrDiskFull is returned once
// cumulative written bytes exceed an injected capacity; ErrIOFault is the
// default error for injected write/sync failures.
var (
	ErrDiskFull = errors.New("storage: simulated disk full")
	ErrIOFault  = errors.New("storage: simulated I/O fault")
)

// Mode names the five storage configurations evaluated in Figure 3 of the
// paper.
type Mode int

const (
	// ModeMemory keeps acceptor state in pre-allocated memory buffers.
	ModeMemory Mode = iota + 1
	// ModeSyncHDD fsyncs every record to a 7200-RPM hard disk.
	ModeSyncHDD
	// ModeSyncSSD fsyncs every record to a solid-state disk.
	ModeSyncSSD
	// ModeAsyncHDD buffers records and flushes to a hard disk in the
	// background.
	ModeAsyncHDD
	// ModeAsyncSSD buffers records and flushes to an SSD in the
	// background.
	ModeAsyncSSD
)

// Modes lists all storage modes in the order Figure 3 reports them.
var Modes = []Mode{ModeSyncHDD, ModeSyncSSD, ModeAsyncHDD, ModeAsyncSSD, ModeMemory}

func (m Mode) String() string {
	switch m {
	case ModeMemory:
		return "In Memory"
	case ModeSyncHDD:
		return "Sync Disk"
	case ModeSyncSSD:
		return "Sync Disk (SSD)"
	case ModeAsyncHDD:
		return "Async Disk"
	case ModeAsyncSSD:
		return "Async Disk (SSD)"
	default:
		return "Unknown"
	}
}

// DiskSpec models the timing behaviour of a storage device. The defaults
// approximate the paper's hardware: 7200-RPM 4 TB hard disks and 240 GB
// SSDs.
type DiskSpec struct {
	// WriteLatency is the fixed cost of a synchronous write barrier
	// (seek + rotation for HDD, flash program for SSD).
	WriteLatency time.Duration
	// Throughput is sustained sequential write bandwidth in bytes/sec.
	Throughput int64
	// MaxBacklog is how much un-flushed work an asynchronous device
	// absorbs before back-pressuring writers.
	MaxBacklog time.Duration
}

// HDDSpec approximates a 7200-RPM magnetic disk.
func HDDSpec() DiskSpec {
	return DiskSpec{
		WriteLatency: 8 * time.Millisecond,
		Throughput:   120 << 20, // 120 MB/s
		MaxBacklog:   200 * time.Millisecond,
	}
}

// SSDSpec approximates a SATA solid-state disk.
func SSDSpec() DiskSpec {
	return DiskSpec{
		WriteLatency: 250 * time.Microsecond,
		Throughput:   450 << 20, // 450 MB/s
		MaxBacklog:   200 * time.Millisecond,
	}
}

// SimDisk wraps a Log with device timing so simulation benchmarks can
// reproduce the storage-mode separation of Figure 3 without real devices.
//
// A virtual "device busy until" clock serializes writes at the device's
// throughput. Synchronous puts block until the device has committed the
// record (write barrier + serialization). Asynchronous puts return
// immediately while backlog stays under MaxBacklog and block on the excess
// otherwise (modeling a full page cache / write buffer).
type SimDisk struct {
	inner Log
	spec  DiskSpec
	sync  bool
	scale float64

	mu     sync.Mutex
	busyAt time.Time // virtual device-free timestamp

	// Fault injection (all guarded by mu). writeErr fails Put/PutBatch,
	// syncErr fails Sync; capacity, when > 0, bounds cumulative written
	// bytes after which writes fail with ErrDiskFull.
	writeErr error
	syncErr  error
	capacity int64
	written  int64
}

// NewSimDisk wraps inner with device timing. scale multiplies all simulated
// delays (use <1 to shrink benchmark wall-clock while keeping mode ratios).
func NewSimDisk(inner Log, spec DiskSpec, synchronous bool, scale float64) *SimDisk {
	if scale <= 0 {
		scale = 1
	}
	return &SimDisk{inner: inner, spec: spec, sync: synchronous, scale: scale}
}

// NewModeLog builds the Log for a Figure-3 storage mode: a MemLog wrapped
// with the matching device timing (or bare MemLog for ModeMemory).
func NewModeLog(mode Mode, scale float64) Log {
	switch mode {
	case ModeSyncHDD:
		return NewSimDisk(NewMemLog(), HDDSpec(), true, scale)
	case ModeSyncSSD:
		return NewSimDisk(NewMemLog(), SSDSpec(), true, scale)
	case ModeAsyncHDD:
		return NewSimDisk(NewMemLog(), HDDSpec(), false, scale)
	case ModeAsyncSSD:
		return NewSimDisk(NewMemLog(), SSDSpec(), false, scale)
	default:
		return NewMemLog()
	}
}

var _ Log = (*SimDisk)(nil)

// SetWriteError injects err on every subsequent Put/PutBatch (pass nil to
// clear). The write fails before reaching the wrapped log, modeling a dead
// or erroring device.
func (d *SimDisk) SetWriteError(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeErr = err
}

// SetSyncError injects err on every subsequent Sync (pass nil to clear),
// modeling fsync failures.
func (d *SimDisk) SetSyncError(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.syncErr = err
}

// SetCapacity bounds cumulative written bytes: once exceeded, writes fail
// with ErrDiskFull until the capacity is raised or cleared (n <= 0). The
// byte accounting matches the device model (record bytes + 16 overhead).
func (d *SimDisk) SetCapacity(n int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.capacity = n
}

// Written returns cumulative bytes accepted by the device.
func (d *SimDisk) Written() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.written
}

// admit charges size bytes against injected faults; on nil the write may
// proceed.
func (d *SimDisk) admit(size int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.writeErr != nil {
		return d.writeErr
	}
	if d.capacity > 0 && d.written+int64(size) > d.capacity {
		return ErrDiskFull
	}
	d.written += int64(size)
	return nil
}

// occupy reserves device time for size bytes and returns how long the
// caller must wait (commit wait for sync mode, back-pressure for async).
func (d *SimDisk) occupy(size int, barrier bool) time.Duration {
	service := time.Duration(float64(size) / float64(d.spec.Throughput) * float64(time.Second))
	if barrier {
		service += d.spec.WriteLatency
	}
	service = time.Duration(float64(service) * d.scale)

	now := time.Now()
	d.mu.Lock()
	start := now
	if d.busyAt.After(start) {
		start = d.busyAt
	}
	done := start.Add(service)
	d.busyAt = done
	d.mu.Unlock()

	if d.sync {
		return done.Sub(now)
	}
	// Async: block only on backlog beyond the device's absorption window.
	backlog := done.Sub(now)
	limit := time.Duration(float64(d.spec.MaxBacklog) * d.scale)
	if backlog > limit {
		return backlog - limit
	}
	return 0
}

// Put stores the record, blocking per the device model.
func (d *SimDisk) Put(instance uint64, record []byte) error {
	if err := d.admit(len(record) + 16); err != nil {
		return err
	}
	if err := d.inner.Put(instance, record); err != nil {
		return err
	}
	// Synchronous mode pays a write barrier per put (batching disabled,
	// as in the paper's sync experiments); async pays serialization only.
	if wait := d.occupy(len(record)+16, d.sync); wait > 0 {
		time.Sleep(wait)
	}
	return nil
}

// PutBatch stores all records with a single write barrier (group commit):
// the device serializes the batch's bytes but pays WriteLatency once, so
// the simulated acceptor amortizes its seek/flash-program cost exactly as
// a FileWAL amortizes fsync.
func (d *SimDisk) PutBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	size := 0
	for _, r := range recs {
		size += len(r.Data) + 16
	}
	if err := d.admit(size); err != nil {
		return err
	}
	if err := d.inner.PutBatch(recs); err != nil {
		return err
	}
	if wait := d.occupy(size, d.sync); wait > 0 {
		time.Sleep(wait)
	}
	return nil
}

// Get reads from the wrapped log (reads are served from cache; the paper's
// retransmissions read recent instances, which remain memory-resident).
func (d *SimDisk) Get(instance uint64) ([]byte, bool) { return d.inner.Get(instance) }

// Trim forwards to the wrapped log.
func (d *SimDisk) Trim(upTo uint64) error { return d.inner.Trim(upTo) }

// FirstRetained forwards to the wrapped log.
func (d *SimDisk) FirstRetained() uint64 { return d.inner.FirstRetained() }

// Sync waits for the virtual device to drain.
func (d *SimDisk) Sync() error {
	d.mu.Lock()
	busy := d.busyAt
	serr := d.syncErr
	d.mu.Unlock()
	if serr != nil {
		return serr
	}
	if wait := time.Until(busy); wait > 0 {
		time.Sleep(wait)
	}
	return d.inner.Sync()
}

// Close closes the wrapped log.
func (d *SimDisk) Close() error { return d.inner.Close() }
