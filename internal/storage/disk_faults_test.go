package storage

import (
	"errors"
	"testing"
)

func TestSimDiskWriteErrorInjection(t *testing.T) {
	d := NewSimDisk(NewMemLog(), SSDSpec(), true, 0.01)
	if err := d.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	d.SetWriteError(ErrIOFault)
	if err := d.Put(2, []byte("b")); !errors.Is(err, ErrIOFault) {
		t.Fatalf("want ErrIOFault, got %v", err)
	}
	if err := d.PutBatch([]Record{{Instance: 3, Data: []byte("c")}}); !errors.Is(err, ErrIOFault) {
		t.Fatalf("want ErrIOFault on batch, got %v", err)
	}
	// Failed writes must not reach the wrapped log.
	if _, ok := d.Get(2); ok {
		t.Fatal("failed Put leaked into inner log")
	}
	d.SetWriteError(nil)
	if err := d.Put(2, []byte("b")); err != nil {
		t.Fatal(err)
	}
}

func TestSimDiskFull(t *testing.T) {
	d := NewSimDisk(NewMemLog(), SSDSpec(), true, 0.01)
	d.SetCapacity(64)
	if err := d.Put(1, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(2, make([]byte, 32)); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("want ErrDiskFull, got %v", err)
	}
	// Raising capacity unclogs the device.
	d.SetCapacity(1 << 20)
	if err := d.Put(2, make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if d.Written() <= 64 {
		t.Fatalf("written accounting stuck at %d", d.Written())
	}
}

func TestSimDiskSyncErrorInjection(t *testing.T) {
	d := NewSimDisk(NewMemLog(), SSDSpec(), false, 0.01)
	d.SetSyncError(ErrIOFault)
	if err := d.Sync(); !errors.Is(err, ErrIOFault) {
		t.Fatalf("want ErrIOFault, got %v", err)
	}
	d.SetSyncError(nil)
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}
