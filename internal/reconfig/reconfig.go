// Package reconfig implements online reconfiguration for Multi-Ring Paxos
// deployments: dynamic group subscription (epoch transitions) and live
// MRP-Store partition splits.
//
// The paper's scalability story is "add multicast groups to add
// throughput" — this package is what lets a running deployment actually
// do that without stopping delivery. Deterministic merge makes it
// tractable: a subscription change pinned to one value in the merged
// stream (the marker) happens at exactly the same point on every learner,
// so replicas never diverge, and an MRP-Store partition split can name
// the exact handoff prefix after which the old partition stops owning the
// moved keys.
//
// Two split modes are supported:
//
//   - In-place: the old partition's replicas also host the new ring; they
//     resubscribe from {old} to {old, new} at the marker (an epoch
//     transition) and no data moves. This is the cheapest way to give a
//     hot key range its own ring — capacity scales with groups, as in the
//     paper's Figure 5 — and it is where the deterministic merge is
//     indispensable: learners switching at different points would
//     interleave the two rings differently and diverge.
//
//   - Scale-out: a new replica set takes over keys >= the split key. The
//     marker executes as an O(log n) copy-on-write tree split on the old
//     replicas (the delivery stall is independent of how many keys move),
//     the captured range streams to the new replicas as CRC-verified
//     chunks (the same transfer recovery uses for remote checkpoints),
//     the new replicas boot from a seed checkpoint holding exactly the
//     handoff prefix, and finally the schema version flips. Stale clients
//     hitting the shrunken partition get StatusWrongPartition and refresh.
package reconfig

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/coord"
	"amcast/internal/metrics"
	"amcast/internal/recovery"
	"amcast/internal/smr"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// Metrics is the reconfiguration instrumentation surfaced by the bench.
type Metrics struct {
	// SchemaEpoch is the latest schema version this controller published.
	SchemaEpoch metrics.Gauge
	// MigratedKeys counts keys moved to new partitions by scale-out
	// splits.
	MigratedKeys metrics.Counter
}

// Config wires a Controller into a deployment.
type Config struct {
	// Coord is the coordination service (schema, ring registry).
	Coord *coord.Service
	// Client submits the split marker through consensus.
	Client *smr.Client
	// Self/Transport/Service are the controller's own process: prepare
	// acks and range chunks arrive on Service, requests go out on
	// Transport. Use a process distinct from Client's (each process's
	// service channel has a single consumer).
	Self      transport.ProcessID
	Transport transport.Transport
	Service   <-chan transport.Message
	// Timeout bounds each protocol phase (default 5s).
	Timeout time.Duration
}

// Controller drives reconfigurations. One reconfiguration runs at a time;
// Split blocks until the change is committed (schema flipped) or failed.
type Controller struct {
	cfg     Config
	timeout time.Duration

	// Metrics is exported instrumentation (see cmd/bench -reconfig).
	Metrics Metrics

	markerSeq atomic.Uint32

	mu   sync.Mutex // single-flight: one reconfiguration at a time
	acks chan transport.Message
	chks chan transport.Message

	done     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
}

// NewController starts a controller.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Coord == nil || cfg.Client == nil || cfg.Transport == nil || cfg.Service == nil {
		return nil, errors.New("reconfig: Coord, Client, Transport and Service are required")
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	c := &Controller{
		cfg:      cfg,
		timeout:  cfg.Timeout,
		acks:     make(chan transport.Message, 64),
		chks:     make(chan transport.Message, 64),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go c.serviceLoop()
	return c, nil
}

// Close stops the controller's RPC loop.
func (c *Controller) Close() {
	c.stopOnce.Do(func() {
		close(c.done)
		<-c.loopDone
	})
}

// serviceLoop routes the controller's incoming RPC traffic.
func (c *Controller) serviceLoop() {
	defer close(c.loopDone)
	for {
		select {
		case <-c.done:
			return
		case m, ok := <-c.cfg.Service:
			if !ok {
				return
			}
			switch m.Kind {
			case transport.KindReconfigAck:
				select {
				case c.acks <- m:
				default: // stale ack from a past phase
				}
			case transport.KindRangeChunk:
				select {
				case c.chks <- m:
				case <-c.done:
					return
				}
			default:
				// The controller's service mailbox receives only the RPC
				// replies it solicited (acks and range chunks); anything
				// else is late traffic from a finished phase — dropped.
			}
		}
	}
}

// SplitSpec parameterizes a partition split.
type SplitSpec struct {
	// OldGroup is the partition ring being split; NewGroup takes over
	// keys >= Key. NewGroup's ring must already be registered with the
	// coordination service.
	OldGroup, NewGroup transport.RingID
	// Key is the split point (must lie strictly inside OldGroup's range).
	Key string
	// InPlace selects the no-data-movement mode: OldReplicas host the
	// new ring themselves and resubscribe at the marker.
	InPlace bool
	// OldReplicas are the old partition's replica processes — prepared
	// for the epoch transition (in-place) or asked for the captured
	// range (scale-out).
	OldReplicas []transport.ProcessID
}

// SplitResult reports a committed split.
type SplitResult struct {
	// Marker is the multicast value id that pinned the handoff point.
	Marker uint64
	// Schema is the published post-split schema.
	Schema store.Schema
	// Seed is the checkpoint the new partition's replicas boot from
	// (scale-out only; zero for in-place).
	Seed recovery.Checkpoint
	// MovedKeys counts the keys captured for migration (scale-out only).
	MovedKeys int
	// Phase durations (instrumentation).
	PrepareDuration, MarkerDuration, TransferDuration time.Duration
}

// Split executes a live partition split end to end:
//
//  1. Validate the spec against the published schema.
//  2. In-place: arm the epoch transition at every old replica
//     (prepare/ack handshake) so all learners cut at the marker.
//  3. Multicast the split marker through the old group with the
//     pre-agreed value id and wait for it to execute.
//  4. Scale-out: fetch the captured key range from an old replica as
//     CRC-verified chunks, build the new partition's seed checkpoint and
//     hand it to boot (which seeds the checkpoint stores and starts the
//     new replicas; delivery keeps running on the old partition
//     throughout).
//  5. Publish the post-split schema (version+1). Clients refresh on
//     StatusWrongPartition or on their next version check.
//
// boot may be nil for in-place splits.
func (c *Controller) Split(spec SplitSpec, boot func(*SplitResult) error) (*SplitResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	schema, err := store.LoadSchema(c.cfg.Coord)
	if err != nil {
		return nil, err
	}
	if schema.PartitionOf(spec.Key) != spec.OldGroup {
		return nil, fmt.Errorf("reconfig: key %q is owned by group %d, not %d", spec.Key, schema.PartitionOf(spec.Key), spec.OldGroup)
	}
	newSchema, err := schema.SplitRange(spec.NewGroup, spec.Key)
	if err != nil {
		return nil, err
	}
	if !spec.InPlace && schema.GlobalGroup != 0 {
		// A scale-out split would need to pin the new replicas' position
		// in the global stream too; the marker only pins the old group's.
		return nil, errors.New("reconfig: scale-out splits require an independent-rings schema (no global group); use an in-place split instead")
	}
	if _, ok := c.cfg.Coord.Ring(spec.NewGroup); !ok {
		return nil, fmt.Errorf("reconfig: ring %d is not registered; create it (with its members) before splitting", spec.NewGroup)
	}

	res := &SplitResult{
		Marker: transport.MakeValueID(c.cfg.Self, c.markerSeq.Add(1)),
		Schema: newSchema,
	}

	if spec.InPlace {
		start := time.Now()
		if err := c.prepareAll(spec, res.Marker, schema); err != nil {
			c.cancelAll(spec, res.Marker)
			return nil, err
		}
		res.PrepareDuration = time.Since(start)
	}

	// Multicast the marker with the pre-agreed value id; replicas execute
	// the O(log n) split (scale-out) and/or the merge cuts the epoch at
	// exactly this value (in-place).
	start := time.Now()
	op := store.Op{
		Kind:  store.OpSplit,
		Key:   spec.Key,
		Value: store.SplitSpec{ID: res.Marker, NewGroup: spec.NewGroup, InPlace: spec.InPlace}.Encode(),
	}
	// On any marker failure, disarm the prepared transitions (in-place):
	// an armed marker that is never decided would otherwise reject every
	// future reconfiguration as "already pending". If the proposal was
	// lost, disarming restores the exact pre-split state. In the
	// double-fault race (marker decided but the response lost), replicas
	// the cancel beats keep the old subscription while the rest switch —
	// the schema never flips, so the new ring carries no commands and
	// per-key order is unaffected; a retried split re-arms everyone and
	// converges the subscriptions at its own marker.
	raw, err := c.cfg.Client.SubmitMarker(spec.OldGroup, op.Encode(), res.Marker, c.timeout)
	if err != nil {
		if spec.InPlace {
			c.cancelAll(spec, res.Marker)
		}
		return nil, fmt.Errorf("reconfig: split marker: %w", err)
	}
	if mres, err := store.DecodeResult(raw); err != nil {
		if spec.InPlace {
			c.cancelAll(spec, res.Marker)
		}
		return nil, fmt.Errorf("reconfig: split marker response: %w", err)
	} else if mres.Status != store.StatusOK {
		if spec.InPlace {
			c.cancelAll(spec, res.Marker)
		}
		return nil, fmt.Errorf("reconfig: split marker rejected: %s", mres.Status)
	}
	res.MarkerDuration = time.Since(start)

	if !spec.InPlace {
		start = time.Now()
		snap, err := c.fetchRange(spec, res.Marker)
		if err != nil {
			return nil, err
		}
		res.TransferDuration = time.Since(start)
		res.MovedKeys = store.SnapshotLen(snap)
		// Scale-out requires an independent-rings schema (checked
		// above), so the new partition subscribes to its own ring only.
		res.Seed = smr.SeedCheckpoint([]transport.RingID{spec.NewGroup}, 1, snap)
		c.Metrics.MigratedKeys.Add(uint64(res.MovedKeys))
	}

	if boot != nil {
		if err := boot(res); err != nil {
			return nil, fmt.Errorf("reconfig: boot new partition: %w", err)
		}
	}

	// Commit: flip the schema. From here clients route moved keys to the
	// new partition; stragglers refresh on StatusWrongPartition.
	if err := store.PublishSchema(c.cfg.Coord, newSchema); err != nil {
		return nil, fmt.Errorf("reconfig: publish schema: %w", err)
	}
	c.Metrics.SchemaEpoch.SetMax(int64(newSchema.Version))

	if !spec.InPlace {
		// The transfer is durable at the new partition; release the
		// stashed ranges on the old replicas.
		for _, p := range spec.OldReplicas {
			_ = c.cfg.Transport.Send(p, transport.Message{
				Kind:     transport.KindRangeReq,
				Instance: res.Marker,
				Count:    1, // release
			})
		}
	}
	return res, nil
}

// prepareAll arms the epoch transition at every old replica and waits for
// all acks: the determinism contract requires every learner to know the
// marker before it can be delivered.
func (c *Controller) prepareAll(spec SplitSpec, marker uint64, schema store.Schema) error {
	if len(spec.OldReplicas) == 0 {
		return errors.New("reconfig: in-place split needs the old partition's replica list")
	}
	newSub := []transport.RingID{spec.OldGroup, spec.NewGroup}
	if schema.GlobalGroup != 0 {
		newSub = append(newSub, schema.GlobalGroup)
	}
	payload := smr.EncodeRingIDs(newSub)
	for _, p := range spec.OldReplicas {
		if err := c.cfg.Transport.Send(p, transport.Message{
			Kind:     transport.KindReconfigPrepare,
			Seq:      marker,
			Instance: marker,
			Payload:  payload,
		}); err != nil {
			return fmt.Errorf("reconfig: prepare %d: %w", p, err)
		}
	}
	need := make(map[transport.ProcessID]bool, len(spec.OldReplicas))
	for _, p := range spec.OldReplicas {
		need[p] = true
	}
	deadline := time.After(c.timeout)
	for len(need) > 0 {
		select {
		case m := <-c.acks:
			if m.Seq != marker {
				continue
			}
			if m.Instance != 0 {
				return fmt.Errorf("reconfig: replica %d rejected prepare: %s", m.From, m.Payload)
			}
			delete(need, m.From)
		case <-deadline:
			return fmt.Errorf("reconfig: prepare timed out waiting for %d replica(s)", len(need))
		case <-c.done:
			return errors.New("reconfig: controller closed")
		}
	}
	return nil
}

// cancelAll disarms a prepared transition after an aborted split so a
// later attempt (with a fresh marker) is not rejected as already pending.
func (c *Controller) cancelAll(spec SplitSpec, marker uint64) {
	for _, p := range spec.OldReplicas {
		_ = c.cfg.Transport.Send(p, transport.Message{
			Kind:     transport.KindReconfigPrepare,
			Seq:      marker,
			Instance: marker,
			Count:    1, // cancel
		})
	}
}

// fetchRange pulls the captured outgoing range from the old replicas,
// trying each in turn until one streams a verifiable transfer.
func (c *Controller) fetchRange(spec SplitSpec, marker uint64) ([]byte, error) {
	if len(spec.OldReplicas) == 0 {
		return nil, errors.New("reconfig: scale-out split needs the old partition's replica list")
	}
	var lastErr error
	for _, p := range spec.OldReplicas {
		snap, err := c.fetchRangeFrom(p, marker)
		if err == nil {
			return snap, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("reconfig: range transfer failed at every replica: %w", lastErr)
}

func (c *Controller) fetchRangeFrom(p transport.ProcessID, marker uint64) ([]byte, error) {
	// Drain chunks left over from a previously failed attempt.
	for {
		select {
		case <-c.chks:
			continue
		default:
		}
		break
	}
	req := transport.Message{
		Kind:     transport.KindRangeReq,
		Seq:      marker,
		Instance: marker,
	}
	if err := c.cfg.Transport.Send(p, req); err != nil {
		return nil, err
	}
	// Re-request periodically: the first request can race ahead of the
	// replica's own marker execution (service RPCs and delivery are
	// independent paths), and a replica without the stash stays silent.
	// Duplicate streams are harmless — the assembly ignores repeated
	// chunks.
	resend := time.NewTicker(25 * time.Millisecond)
	defer resend.Stop()
	var asm *smr.ChunkAssembly
	deadline := time.After(c.timeout)
	for {
		select {
		case m := <-c.chks:
			if m.Seq != marker || m.From != p {
				continue
			}
			if asm == nil {
				if asm = smr.NewChunkAssembly(m); asm == nil {
					return nil, fmt.Errorf("reconfig: replica %d sent nonsensical transfer framing", p)
				}
			}
			done, err := asm.Add(m)
			if err != nil {
				return nil, fmt.Errorf("reconfig: range transfer from %d: %w", p, err)
			}
			if done {
				return asm.Bytes(), nil
			}
		case <-resend.C:
			if asm == nil {
				if err := c.cfg.Transport.Send(p, req); err != nil {
					return nil, err
				}
			}
		case <-deadline:
			return nil, fmt.Errorf("reconfig: range transfer from %d timed out", p)
		case <-c.done:
			return nil, errors.New("reconfig: controller closed")
		}
	}
}
