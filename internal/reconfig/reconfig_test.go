package reconfig_test

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/coord"
	"amcast/internal/netem"
	"amcast/internal/reconfig"
	"amcast/internal/store"
	"amcast/internal/transport"
)

const splitKey = "k0250"

func key(i int) string { return fmt.Sprintf("k%04d", i) }

// waitConverged polls until every listed replica SM serializes to
// identical bytes (same keys, same values — bounds included).
func waitConverged(t *testing.T, sms []*store.SM, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		snaps := make([][]byte, len(sms))
		for i, sm := range sms {
			snaps[i] = sm.Snapshot()
		}
		equal := true
		for i := 1; i < len(snaps); i++ {
			if !bytes.Equal(snaps[0], snaps[i]) {
				equal = false
				break
			}
		}
		if equal {
			return
		}
		if time.Now().After(deadline) {
			for i, sm := range sms {
				t.Logf("replica %d: %d entries", i, sm.Len())
			}
			t.Fatal("replica states did not converge")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLiveScaleOutSplit runs the acceptance scenario: a live partition
// split under sustained client load with no lost, duplicated or
// reordered writes; the delivery stall is the O(log n) tree split, and a
// killed replica of the new partition recovers the post-split
// subscription from its checkpoint.
func TestLiveScaleOutSplit(t *testing.T) {
	d := cluster.NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions:      1,
		Replicas:        3,
		Kind:            store.RangePartitioned,
		CheckpointEvery: 500,
		RecoveryTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Preload both halves of the key space through consensus.
	const preload = 400
	var ops []store.Op
	for i := 0; i < preload; i++ {
		ops = append(ops, store.Op{Kind: store.OpInsert, Key: key(i), Value: []byte("init")})
	}
	for base := 0; base < len(ops); base += 100 {
		if _, err := sc.Batch(1, ops[base:base+100]); err != nil {
			t.Fatal(err)
		}
	}

	// A client that loaded the pre-split schema: the stale-schema
	// regression — it must transparently refresh and retry when its ops
	// land on the shrunken partition.
	staleSC, staleCl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer staleCl.Close()
	if v := staleSC.Schema().Version; v != 1 {
		t.Fatalf("pre-split schema version = %d, want 1", v)
	}

	// Sustained load across the whole key space while the split runs.
	// Each worker owns a disjoint key set and writes strictly increasing
	// values, remembering the last acknowledged one per key: any lost,
	// duplicated (stale re-execution) or reordered delivery shows up as
	// a final value differing from the last ack.
	const workers = 3
	type ackmap map[string]string
	acked := make([]ackmap, workers)
	var wErrs [workers]error
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		acked[w] = make(ackmap)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				// Disjoint per-worker key sets: worker w owns indices
				// ≡ w (mod workers), so each key has a single writer
				// and "last acknowledged value" is unambiguous.
				k := key((seq%(preload/workers))*workers + w)
				v := fmt.Sprintf("w%d-%06d", w, seq)
				if err := sc.Update(k, []byte(v)); err != nil {
					wErrs[w] = fmt.Errorf("update %s: %w", k, err)
					return
				}
				acked[w][k] = v
			}
		}(w)
	}
	// An insert worker creates fresh keys on both sides of the split
	// point while the handoff is in flight.
	var inserted atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("k%04d-new%04d", (i*211)%500, i)
			if err := sc.Insert(k, []byte("fresh")); err != nil {
				wErrs[0] = fmt.Errorf("insert %s: %w", k, err)
				return
			}
			inserted.Add(1)
		}
	}()

	time.Sleep(100 * time.Millisecond) // load running against v1

	// The live split: new ring, marker through the old group, chunked
	// range transfer, seeded boot, schema flip — all without stopping
	// the workers.
	if err := c.AddPartition(2, 2); err != nil {
		t.Fatal(err)
	}
	ctrl, cleanup, err := c.NewReconfigController()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res, err := ctrl.Split(reconfig.SplitSpec{
		OldGroup:    1,
		NewGroup:    2,
		Key:         splitKey,
		OldReplicas: []transport.ProcessID{cluster.ReplicaID(1, 1), cluster.ReplicaID(1, 2), cluster.ReplicaID(1, 3)},
	}, func(res *reconfig.SplitResult) error {
		if err := c.SeedPartition(2, res.Seed); err != nil {
			return err
		}
		return c.StartPartition(2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedKeys == 0 {
		t.Error("split moved no keys")
	}
	if res.Schema.Version != 2 {
		t.Errorf("post-split schema version = %d, want 2", res.Schema.Version)
	}
	if got := ctrl.Metrics.MigratedKeys.Load(); got != uint64(res.MovedKeys) {
		t.Errorf("migrated-keys counter = %d, want %d", got, res.MovedKeys)
	}
	if ctrl.Metrics.SchemaEpoch.Load() != 2 {
		t.Errorf("schema-epoch gauge = %d, want 2", ctrl.Metrics.SchemaEpoch.Load())
	}

	// The stale client writes to a moved key: it must refresh and land
	// the write on the new owner.
	if err := staleSC.Update(key(preload-1), []byte("stale-client-write")); err != nil {
		t.Fatalf("stale client update after split: %v", err)
	}
	if v := staleSC.Schema().Version; v != 2 {
		t.Errorf("stale client schema after retry = v%d, want v2", v)
	}

	time.Sleep(150 * time.Millisecond) // load running against v2
	close(stop)
	wg.Wait()
	for w, err := range wErrs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Quiesce, then verify: every partition's replicas converge, and the
	// final value of every key is exactly the last acknowledged write.
	waitConverged(t, []*store.SM{c.Server(1, 1).SM(), c.Server(1, 2).SM(), c.Server(1, 3).SM()}, 5*time.Second)
	waitConverged(t, []*store.SM{c.Server(2, 1).SM(), c.Server(2, 2).SM(), c.Server(2, 3).SM()}, 5*time.Second)

	checkSC, checkCl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer checkCl.Close()
	final := make(map[string]string)
	for w := workers - 1; w >= 0; w-- {
		for k, v := range acked[w] {
			if cur, ok := final[k]; !ok || v > cur {
				final[k] = v
			}
		}
	}
	// Workers own disjoint keys, so per-key the last ack is unambiguous.
	mismatches := 0
	for k, want := range final {
		got, ok, err := checkSC.Read(k)
		if err != nil {
			t.Fatalf("read %s: %v", k, err)
		}
		if !ok {
			t.Errorf("acked key %s lost", k)
			mismatches++
		} else if string(got) != want && string(got) != "stale-client-write" {
			t.Errorf("key %s = %q, want last ack %q", k, got, want)
			mismatches++
		}
		if mismatches > 5 {
			t.Fatal("too many mismatches")
		}
	}

	// Ownership actually moved: the old partition holds only keys below
	// the split point, the new one only keys at or above it.
	if _, hi, ok := c.Server(1, 1).SM().OwnedRange(); !ok || hi != splitKey {
		t.Errorf("old partition owned hi = %q, %v; want %q", hi, ok, splitKey)
	}
	if lo, _, ok := c.Server(2, 1).SM().OwnedRange(); !ok || lo != splitKey {
		t.Errorf("new partition owned lo = %q, %v; want %q", lo, ok, splitKey)
	}
	total := c.Server(1, 1).SM().Len() + c.Server(2, 1).SM().Len()
	if want := preload + int(inserted.Load()) + 0; total != want {
		t.Errorf("total keys across partitions = %d, want %d", total, want)
	}

	// The delivery stall is the O(log n) tree split — microseconds, not
	// proportional to the 150+ moved keys' serialization.
	for r := 1; r <= 3; r++ {
		if stall := c.Server(1, r).SM().SplitStallMax(); stall > 50*time.Millisecond {
			t.Errorf("replica %d split stall = %v, want bounded", r, stall)
		}
	}

	// Kill a new-partition replica and bring it back: the checkpoint's
	// cursor carries the post-split subscription.
	c.Crash(2, 2)
	if err := c.Restart(2, 2); err != nil {
		t.Fatal(err)
	}
	rep := c.Server(2, 2).Replica()
	if subs := rep.Subscription(); len(subs) != 1 || subs[0] != 2 {
		t.Errorf("recovered subscription = %v, want [2]", subs)
	}
	// And it keeps executing: a write through the new group reaches it.
	if err := checkSC.Update(key(preload-1), []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*store.SM{c.Server(2, 1).SM(), c.Server(2, 2).SM(), c.Server(2, 3).SM()}, 5*time.Second)
}

// TestInPlaceSplitResubscribes verifies the epoch-transition path: the
// old replicas themselves take over the new ring (no data moves), the
// merge switches subscription at the marker on every replica, the
// transition is checkpointed, and a killed replica recovers the
// post-split {old, new} subscription.
func TestInPlaceSplitResubscribes(t *testing.T) {
	d := cluster.NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions:      1,
		Replicas:        3,
		Kind:            store.RangePartitioned,
		RecoveryTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 100; i++ {
		if err := sc.Insert(key(i*5), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// The new ring is hosted by the same replicas.
	old := []transport.ProcessID{cluster.ReplicaID(1, 1), cluster.ReplicaID(1, 2), cluster.ReplicaID(1, 3)}
	var members []coord.Member
	for _, id := range old {
		members = append(members, coord.Member{ID: id, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner})
	}
	if err := d.Svc.CreateRing(2, members); err != nil {
		t.Fatal(err)
	}
	ctrl, cleanup, err := c.NewReconfigController()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res, err := ctrl.Split(reconfig.SplitSpec{
		OldGroup:    1,
		NewGroup:    2,
		Key:         splitKey,
		InPlace:     true,
		OldReplicas: old,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MovedKeys != 0 {
		t.Errorf("in-place split moved %d keys", res.MovedKeys)
	}

	// Writes to both sides now ride different rings but execute on the
	// same replicas, merged identically everywhere.
	for i := 0; i < 40; i++ {
		if err := sc.Update(key((i%50)*5), []byte(fmt.Sprintf("lo%02d", i))); err != nil {
			t.Fatal(err)
		}
		if err := sc.Update(key((50+i%50)*5), []byte(fmt.Sprintf("hi%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for r := 1; r <= 3; r++ {
			rep := c.Server(1, r).Replica()
			if subs := rep.Subscription(); len(subs) != 2 || subs[0] != 1 || subs[1] != 2 {
				done = false
			}
			if rep.Epoch() != 1 {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			for r := 1; r <= 3; r++ {
				rep := c.Server(1, r).Replica()
				t.Logf("replica %d: subs=%v epoch=%d", r, rep.Subscription(), rep.Epoch())
			}
			t.Fatal("replicas did not all apply the epoch transition")
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitConverged(t, []*store.SM{c.Server(1, 1).SM(), c.Server(1, 2).SM(), c.Server(1, 3).SM()}, 5*time.Second)

	// Kill one replica; its recovery (local checkpoint or a peer's
	// higher-epoch tuple) must restore the {1, 2} subscription.
	c.Crash(1, 3)
	if err := c.Restart(1, 3); err != nil {
		t.Fatal(err)
	}
	rep := c.Server(1, 3).Replica()
	if subs := rep.Subscription(); len(subs) != 2 || subs[0] != 1 || subs[1] != 2 {
		t.Fatalf("recovered subscription = %v, want [1 2]", subs)
	}
	// It still executes traffic from both rings.
	if err := sc.Update(key(5), []byte("post-lo")); err != nil {
		t.Fatal(err)
	}
	if err := sc.Update(key(400), []byte("post-hi")); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, []*store.SM{c.Server(1, 1).SM(), c.Server(1, 2).SM(), c.Server(1, 3).SM()}, 5*time.Second)
}
