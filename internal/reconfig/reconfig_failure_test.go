package reconfig_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/reconfig"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// TestSplitSurvivesCoordinatorCrashMidMarker crosses reconfiguration
// with a crash fault at the nastiest point of an in-place split: after
// every replica acked the prepare (the epoch transition is armed) but
// before the marker decides. The ring links are slowed so the marker
// consensus is still in flight when the coordinator is killed — with no
// MarkDown oracle; the failure detectors must notice, the ring must
// re-elect, and the armed split must then either complete (the
// re-routed marker decides) or abort cleanly (schema unflipped, a retry
// succeeds). Acked writes survive in every outcome.
func TestSplitSurvivesCoordinatorCrashMidMarker(t *testing.T) {
	d := cluster.NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions:      1,
		Replicas:        3,
		Kind:            store.RangePartitioned,
		RecoveryTimeout: 2 * time.Second,
		Detector:        &coord.DetectorOptions{Interval: 20 * time.Millisecond},
		RetainLogs:      true,
		// An in-place split leaves the replicas merging two rings; rate
		// leveling keeps the quieter ring from stalling the merge.
		Ring: core.RingOptions{SkipEnabled: true, Delta: time.Millisecond, Lambda: 20000, RetryInterval: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Preload keys on both sides of the split point (splitKey = k0250).
	const preload = 100
	for i := 0; i < preload; i++ {
		if err := sc.Insert(key(i*5), []byte("init")); err != nil {
			t.Fatal(err)
		}
	}

	// Writers with disjoint keys and strictly increasing values: the
	// last ack per key is a promise. Faults make op errors legitimate
	// (the crash window), so workers tolerate them — but anything acked
	// must survive, and nothing beyond the last issued value may appear.
	const workers = 2
	acked := make([]map[string]string, workers)
	issued := make([]map[string]string, workers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		acked[w] = make(map[string]string)
		issued[w] = make(map[string]string)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wsc, wcl, err := c.NewClient(netem.SiteLocal)
			if err != nil {
				t.Errorf("worker %d client: %v", w, err)
				return
			}
			defer wcl.Close()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key(((seq%(preload/workers))*workers + w) * 5)
				v := fmt.Sprintf("w%d-%06d", w, seq)
				issued[w][k] = v
				if err := wsc.Update(k, []byte(v)); err != nil {
					continue
				}
				acked[w][k] = v
			}
		}(w)
	}

	// In-place split: the new ring is hosted by the same replicas.
	old := []transport.ProcessID{cluster.ReplicaID(1, 1), cluster.ReplicaID(1, 2), cluster.ReplicaID(1, 3)}
	var members []coord.Member
	for _, id := range old {
		members = append(members, coord.Member{ID: id, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner})
	}
	if err := d.Svc.CreateRing(2, members); err != nil {
		t.Fatal(err)
	}
	ctrl, cleanup, err := c.NewReconfigController()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	// Slow only the replica↔replica links: prepare RPCs (controller ↔
	// replicas) stay fast, the marker's ring consensus crawls — so the
	// kill below reliably lands between prepare-ack and marker decision.
	faults := d.Net.Faults()
	slow := netem.LinkFault{Delay: 15 * time.Millisecond}
	for i, a := range old {
		for _, b := range old[i+1:] {
			faults.SetLinkBoth(uint32(a), uint32(b), slow)
		}
	}

	spec := reconfig.SplitSpec{
		OldGroup:    1,
		NewGroup:    2,
		Key:         splitKey,
		InPlace:     true,
		OldReplicas: old,
	}
	type splitRes struct {
		res *reconfig.SplitResult
		err error
	}
	done := make(chan splitRes, 1)
	go func() {
		res, err := ctrl.Split(spec, nil)
		done <- splitRes{res, err}
	}()

	// Prepare completes within a few ms; the marker needs several slowed
	// ring hops. Kill the coordinator inside that window — quietly.
	time.Sleep(30 * time.Millisecond)
	cfg, _ := d.Svc.Ring(1)
	victim := cfg.Coordinator
	if victim == 0 {
		t.Fatal("no coordinator to kill")
	}
	c.Kill(int(victim)/100, int(victim)%100)

	first := <-done
	completed := first.err == nil
	if completed {
		if first.res.Schema.Version != 2 {
			t.Fatalf("split completed with schema v%d, want v2", first.res.Schema.Version)
		}
		t.Logf("split completed through the failover (marker re-routed)")
	} else {
		// Clean abort: the schema must not have half-flipped, and once
		// the detectors finish the failover a retry must succeed.
		t.Logf("split aborted: %v", first.err)
		if v := sc.Schema().Version; v != 1 {
			t.Fatalf("aborted split left schema v%d, want v1", v)
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			if cfg, _ := d.Svc.Ring(1); cfg.Down[victim] && cfg.Coordinator != 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("detectors never completed the failover")
			}
			time.Sleep(5 * time.Millisecond)
		}
		res, err := ctrl.Split(spec, nil)
		if err != nil {
			t.Fatalf("retry split after failover: %v", err)
		}
		if res.Schema.Version != 2 {
			t.Fatalf("retried split gave schema v%d, want v2", res.Schema.Version)
		}
	}

	// Load keeps running briefly against the post-split schema.
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The crashed coordinator returns — quietly; the detectors re-admit
	// it and recovery restores the {1,2} subscription.
	faults.HealAll()
	if err := c.RestartQuiet(int(victim)/100, int(victim)%100); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if cfg, _ := d.Svc.Ring(1); !cfg.Down[victim] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted coordinator was never re-admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitSubscribed(t, c, []transport.RingID{1, 2}, 10*time.Second)
	waitConverged(t, []*store.SM{c.Server(1, 1).SM(), c.Server(1, 2).SM(), c.Server(1, 3).SM()}, 10*time.Second)

	// Safety: for every key, acked ≤ final ≤ issued (single writer per
	// key, monotonic values): no acked write lost, no spurious value.
	checkSC, checkCl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer checkCl.Close()
	for w := 0; w < workers; w++ {
		for k, want := range acked[w] {
			got, ok, err := checkSC.Read(k)
			if err != nil {
				t.Fatalf("final read %s: %v", k, err)
			}
			if !ok || string(got) < want {
				t.Errorf("acked write lost: key %s final %q < acked %q", k, got, want)
			}
			if hi := issued[w][k]; string(got) > hi {
				t.Errorf("key %s final %q beyond last issued %q", k, got, hi)
			}
		}
	}
}

// waitSubscribed polls until every running replica of partition 1
// subscribes exactly to the given rings at epoch ≥ 1.
func waitSubscribed(t *testing.T, c *cluster.StoreCluster, want []transport.RingID, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for r := 1; r <= 3; r++ {
			srv := c.Server(1, r)
			if srv == nil {
				continue
			}
			subs := srv.Replica().Subscription()
			if len(subs) != len(want) {
				ok = false
				break
			}
			for i := range want {
				if subs[i] != want[i] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for r := 1; r <= 3; r++ {
				if srv := c.Server(1, r); srv != nil {
					t.Logf("replica %d subs=%v", r, srv.Replica().Subscription())
				}
			}
			t.Fatal("replicas never converged on the post-split subscription")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
