package transport

import (
	"errors"
	"sync"
)

// Transport lets a process exchange messages with other processes. Send is
// asynchronous and best-effort: delivery fails silently if the destination
// has crashed (fair-lossy links). Recv yields incoming messages in FIFO
// order per sender. Implementations must be safe for concurrent use.
type Transport interface {
	// ID returns the process identifier bound to this transport.
	ID() ProcessID
	// Send queues m for delivery to process to. It never blocks on the
	// receiver. An error is returned only for local failures (closed
	// transport, unknown destination address).
	Send(to ProcessID, m Message) error
	// Recv returns the channel of incoming messages. The channel is
	// closed when the transport is closed.
	Recv() <-chan Message
	// Close releases resources and closes the Recv channel.
	Close() error
}

// BatchSender is implemented by transports that can coalesce several
// messages into fewer writes: one frame buffer and one syscall per
// destination flush on TCP, one hub-lock acquisition per destination run
// on the in-process Network. Each message's To field must be set by the
// caller; From is stamped by the transport. Per-destination FIFO order is
// preserved. Callers should type-assert once and fall back to per-message
// Send when the transport does not implement it.
type BatchSender interface {
	SendBatch(msgs []Message) error
}

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = errors.New("transport: closed")

// forEachRun invokes fn on each maximal run of consecutive messages with
// the same destination — the unit BatchSender implementations coalesce.
func forEachRun(msgs []Message, fn func(run []Message) error) error {
	for i := 0; i < len(msgs); {
		j := i + 1
		for j < len(msgs) && msgs[j].To == msgs[i].To {
			j++
		}
		if err := fn(msgs[i:j]); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// mailbox is an unbounded FIFO queue bridged onto a channel so receivers
// can select on incoming messages together with shutdown signals.
//
// The queue is a slice with an explicit head index rather than the usual
// queue = queue[1:] pop: re-slicing strands the popped prefix, so every
// append past cap sheds the whole backing array as garbage. Compacting in
// place lets steady-state traffic cycle through one array with zero
// allocation, which matters at millions of messages per second.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	head   int
	closed bool

	out  chan Message
	done chan struct{} // pump exited
}

// maxRetainedQueue bounds the backing array kept after a burst drains;
// larger arrays are dropped so one spike does not pin memory forever.
const maxRetainedQueue = 4096

func newMailbox() *mailbox {
	mb := &mailbox{
		out:  make(chan Message, 128),
		done: make(chan struct{}),
	}
	mb.cond = sync.NewCond(&mb.mu)
	go mb.pump()
	return mb
}

// push enqueues a message; drops it if the mailbox is closed.
func (mb *mailbox) push(m Message) {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		m.ReleaseRefs()
		return
	}
	mb.compactLocked()
	mb.queue = append(mb.queue, m)
	mb.mu.Unlock()
	mb.cond.Signal()
}

// compactLocked slides the live region to the front of the backing array
// when the next append would otherwise grow past cap, so popped slots are
// reused instead of abandoned. Caller holds mb.mu.
func (mb *mailbox) compactLocked() {
	if mb.head == 0 || len(mb.queue) < cap(mb.queue) {
		return
	}
	n := copy(mb.queue, mb.queue[mb.head:])
	for i := n; i < len(mb.queue); i++ {
		mb.queue[i] = Message{} // drop stale payload/pool pointers
	}
	mb.queue = mb.queue[:n]
	mb.head = 0
}

// pushAll enqueues a batch of messages under one lock acquisition and one
// wakeup, so coalesced sends stay coalesced through the receive queue.
func (mb *mailbox) pushAll(msgs []Message) {
	if len(msgs) == 0 {
		return
	}
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		for i := range msgs {
			msgs[i].ReleaseRefs()
		}
		return
	}
	mb.compactLocked()
	mb.queue = append(mb.queue, msgs...)
	mb.mu.Unlock()
	mb.cond.Signal()
}

// pump moves messages from the unbounded queue to the bounded channel.
func (mb *mailbox) pump() {
	defer close(mb.done)
	defer close(mb.out)
	for {
		mb.mu.Lock()
		for mb.head == len(mb.queue) && !mb.closed {
			mb.cond.Wait()
		}
		if mb.head == len(mb.queue) {
			mb.mu.Unlock()
			return
		}
		m := mb.queue[mb.head]
		mb.queue[mb.head] = Message{} // release payload/pool pointers to GC
		mb.head++
		if mb.head == len(mb.queue) {
			if cap(mb.queue) > maxRetainedQueue {
				mb.queue = nil
			} else {
				mb.queue = mb.queue[:0]
			}
			mb.head = 0
		}
		mb.mu.Unlock()
		mb.out <- m
	}
}

// close stops the pump after the queue drains to empty-or-closed state.
// Pending messages are discarded.
func (mb *mailbox) close() {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return
	}
	mb.closed = true
	dropped := mb.queue[mb.head:]
	mb.queue = nil
	mb.head = 0
	mb.mu.Unlock()
	for i := range dropped {
		dropped[i].ReleaseRefs()
	}
	mb.cond.Signal()
	// Drain out so the pump can observe closure even if a message is
	// parked on the channel send; drained messages are dropped, so their
	// pooled references are dropped with them.
	go func() {
		for m := range mb.out {
			m.ReleaseRefs()
		}
	}()
	<-mb.done
}
