//go:build race

package transport

// raceEnabled lets allocation-sensitive tests skip under the race
// detector, whose instrumentation inflates alloc counts.
const raceEnabled = true
