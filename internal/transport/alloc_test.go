package transport

import (
	"testing"
	"time"

	"amcast/internal/bufpool"
)

// allocPair builds a warmed-up TCP loopback pair plus a reusable burst
// of ring-kind messages, the steady-state shape the pooled read path is
// specced for.
func allocPair(t *testing.T) (send, recv *TCPNode, msgs []Message) {
	t.Helper()
	recv, err := ListenTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = recv.Close() })
	send, err = ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = send.Close() })
	send.SetPeer(2, recv.Addr())

	payload := make([]byte, 160)
	msgs = make([]Message, 64)
	for i := range msgs {
		msgs[i] = Message{
			Kind:  KindPhase2,
			To:    2,
			Ring:  1,
			Value: Value{ID: uint64(i + 1), Data: payload},
		}
	}
	return send, recv, msgs
}

// roundTrip sends the burst and drains exactly that many messages from
// the receiver, honoring the pooled-ownership contract.
func roundTrip(t *testing.T, send, recv *TCPNode, msgs []Message, seq *uint64) {
	t.Helper()
	for i := range msgs {
		*seq++
		msgs[i].Seq = *seq
		msgs[i].Instance = *seq
	}
	if err := send.SendBatch(msgs); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	for range msgs {
		m, ok := <-recv.Recv()
		if !ok {
			t.Fatal("receiver closed mid-burst")
		}
		m.ReleaseRefs()
	}
}

// TestTCPSteadyStateAllocs pins the tentpole's zero-allocation claim as
// a regression test: once the pool free lists and the connection are
// warm, pushing ring-kind bursts through encode -> syscall -> pooled
// block read -> decode -> deliver -> release must not allocate. The
// bound is a whole-process measurement (AllocsPerRun reads MemStats),
// so it charges the sender, readLoop, mailbox and pump together.
func TestTCPSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts")
	}
	send, recv, msgs := allocPair(t)
	var seq uint64
	// Warm up: fill pool free lists, grow the mailbox queue and the
	// connection's retained write buffer to their steady-state sizes.
	for i := 0; i < 50; i++ {
		roundTrip(t, send, recv, msgs, &seq)
	}
	allocs := testing.AllocsPerRun(50, func() {
		roundTrip(t, send, recv, msgs, &seq)
	})
	// Each run moves 64 messages; a handful of incidental allocations
	// (runtime timers, scheduler bookkeeping) is tolerated, per-message
	// allocations are not.
	if allocs > 8 {
		t.Errorf("steady-state burst allocates %.1f/run (%.3f/msg), want ~0", allocs, allocs/float64(len(msgs)))
	}
}

// TestTCPRefcountRoundTrip checks the ownership ledger end to end: ring
// frames arrive aliasing pooled read blocks, the consumer's ReleaseRefs
// is the only discharge, and once traffic stops and the nodes close,
// every pooled buffer the transport took out comes back.
func TestTCPRefcountRoundTrip(t *testing.T) {
	before := bufpool.Outstanding()
	send, recv, msgs := allocPair(t)
	var seq uint64
	for i := 0; i < 20; i++ {
		roundTrip(t, send, recv, msgs, &seq)
	}
	// Ring kinds must carry their block reference to the consumer.
	for i := range msgs {
		seq++
		msgs[i].Seq = seq
		msgs[i].Instance = seq
	}
	if err := send.SendBatch(msgs); err != nil {
		t.Fatal(err)
	}
	m, ok := <-recv.Recv()
	if !ok {
		t.Fatal("receiver closed")
	}
	if m.Block == nil {
		t.Fatal("ring-kind message arrived without a pooled block reference")
	}
	if refs := m.Block.Refs(); refs < 1 {
		t.Fatalf("delivered block has %d refs, want >= 1", refs)
	}
	m.ReleaseRefs()
	for i := 1; i < len(msgs); i++ {
		m, ok := <-recv.Recv()
		if !ok {
			t.Fatal("receiver closed mid-burst")
		}
		m.ReleaseRefs()
	}

	_ = send.Close()
	_ = recv.Close()
	// Closing tears down readLoops and mailboxes asynchronously; the
	// ledger must return to its starting point once they finish.
	deadline := time.Now().Add(5 * time.Second)
	for bufpool.Outstanding() != before {
		if time.Now().After(deadline) {
			t.Fatalf("outstanding pool buffers = %d, want %d (leaked transport refs)",
				bufpool.Outstanding(), before)
		}
		time.Sleep(time.Millisecond)
	}
}
