package transport

import (
	"testing"
	"time"

	"amcast/internal/netem"
)

// recvN drains n messages or times out.
func recvN(t *testing.T, ch <-chan Message, n int, d time.Duration) []Message {
	t.Helper()
	var out []Message
	deadline := time.After(d)
	for len(out) < n {
		select {
		case m, ok := <-ch:
			if !ok {
				t.Fatalf("channel closed after %d messages", len(out))
			}
			out = append(out, m)
		case <-deadline:
			return out
		}
	}
	return out
}

func TestNetworkFaultCutAndHeal(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	b := n.Attach(2, netem.SiteLocal)

	n.Faults().CutBoth(1, 2)
	if err := a.Send(2, Message{Kind: KindCommand, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if got := recvN(t, b.Recv(), 1, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("cut link delivered %d messages", len(got))
	}

	n.Faults().HealAll()
	if err := a.Send(2, Message{Kind: KindCommand, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, b.Recv(), 1, time.Second)
	if len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("healed link: got %v", got)
	}
}

func TestNetworkFaultDuplicateAndFIFO(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	b := n.Attach(2, netem.SiteLocal)

	n.Faults().SetLink(1, 2, netem.LinkFault{Dup: 1})
	for i := uint64(1); i <= 3; i++ {
		if err := a.Send(2, Message{Kind: KindCommand, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := recvN(t, b.Recv(), 6, time.Second)
	if len(got) != 6 {
		t.Fatalf("want 6 (dup everything), got %d", len(got))
	}
	want := []uint64{1, 1, 2, 2, 3, 3}
	for i, m := range got {
		if m.Seq != want[i] {
			t.Fatalf("order violated at %d: got %d want %d", i, m.Seq, want[i])
		}
	}
}

func TestNetworkFaultDelay(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	b := n.Attach(2, netem.SiteLocal)

	n.Faults().SetLink(1, 2, netem.LinkFault{Delay: 60 * time.Millisecond})
	start := time.Now()
	if err := a.Send(2, Message{Kind: KindCommand, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, b.Recv(), 1, time.Second)
	if len(got) != 1 {
		t.Fatal("message lost")
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("delivered in %v, want >=50ms injected delay", el)
	}
}

func TestRouterHeartbeatChannel(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	b := n.Attach(2, netem.SiteLocal)
	r := NewRouter(b)

	// No consumer yet: heartbeats are dropped, not buffered anywhere.
	if err := a.Send(2, Message{Kind: KindHeartbeat}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)

	hb := r.Heartbeats()
	if err := a.Send(2, Message{Kind: KindHeartbeat, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	got := recvN(t, hb, 1, time.Second)
	if len(got) != 1 || got[0].Seq != 42 {
		t.Fatalf("heartbeat channel got %v", got)
	}
	// Heartbeats must not leak into the service channel.
	select {
	case m := <-r.Service():
		t.Fatalf("heartbeat leaked to service channel: %v", m)
	default:
	}
}
