package transport

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

func newTCPPair(t *testing.T) (*TCPNode, *TCPNode) {
	t.Helper()
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(2, "127.0.0.1:0")
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	a.SetPeer(2, b.Addr())
	b.SetPeer(1, a.Addr())
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := newTCPPair(t)
	msg := Message{Kind: KindCommand, Ring: 3, Seq: 41, Value: Value{ID: 9, Data: []byte("payload")}}
	if err := a.Send(2, msg); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b, 2*time.Second)
	if got.From != 1 || got.Seq != 41 || string(got.Value.Data) != "payload" {
		t.Errorf("unexpected message %+v", got)
	}

	// Reply reuses the inbound stream (peer learned via handshake).
	if err := b.Send(1, Message{Kind: KindResponse, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, a, 2*time.Second); got.Seq != 42 {
		t.Errorf("reply seq = %d, want 42", got.Seq)
	}
}

func TestTCPManyMessagesFIFO(t *testing.T) {
	a, b := newTCPPair(t)
	const count = 500
	for i := uint64(0); i < count; i++ {
		if err := a.Send(2, Message{Kind: KindCommand, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < count; i++ {
		if got := recvOne(t, b, 5*time.Second); got.Seq != i {
			t.Fatalf("out of order at %d: got %d", i, got.Seq)
		}
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send(77, Message{Kind: KindCommand}); err != nil {
		t.Errorf("send to unknown peer should be silently lost, got %v", err)
	}
}

func TestTCPSendToDeadPeer(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.SetPeer(2, "127.0.0.1:1") // nothing listening
	if err := a.Send(2, Message{Kind: KindCommand}); err != nil {
		t.Errorf("send to dead peer should be silently lost, got %v", err)
	}
}

func TestTCPCloseIdempotent(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close errored: %v", err)
	}
	if err := a.Send(2, Message{}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestTCPPeerRestart(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := ListenTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	a.SetPeer(2, addr)
	if err := a.Send(2, Message{Seq: 1, Kind: KindCommand}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, 2*time.Second)
	_ = b.Close()

	// Sends while the peer is down are lost but not fatal.
	_ = a.Send(2, Message{Seq: 2, Kind: KindCommand})

	b2, err := ListenTCP(2, addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer func() { _ = b2.Close() }()

	// Eventually a fresh send gets through after redial.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_ = a.Send(2, Message{Seq: 3, Kind: KindCommand})
		select {
		case m, ok := <-b2.Recv():
			if ok && m.Seq == 3 {
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	t.Fatal("message never delivered after peer restart")
}

// dialRaw opens a raw client connection to node n, completing the
// identification handshake as peer id.
func dialRaw(t *testing.T, n *TCPNode, id ProcessID) net.Conn {
	t.Helper()
	raw, err := net.DialTimeout("tcp", n.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(id))
	if _, err := raw.Write(hello[:]); err != nil {
		_ = raw.Close()
		t.Fatal(err)
	}
	return raw
}

// TestTCPOversizedFrameRejected feeds a frame whose length prefix exceeds
// maxFrame: the reader must drop the connection instead of allocating the
// claimed size, and the node must keep serving other connections.
func TestTCPOversizedFrameRejected(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()

	evil := dialRaw(t, a, 66)
	defer func() { _ = evil.Close() }()
	var header [4]byte
	binary.LittleEndian.PutUint32(header[:], maxFrame+1)
	if _, err := evil.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	// The reader closes the connection without consuming a body.
	_ = evil.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := evil.Read(header[:]); err == nil {
		t.Error("oversized frame did not close the connection")
	}

	// Zero-length frames are rejected the same way.
	evil2 := dialRaw(t, a, 67)
	defer func() { _ = evil2.Close() }()
	binary.LittleEndian.PutUint32(header[:], 0)
	if _, err := evil2.Write(header[:]); err != nil {
		t.Fatal(err)
	}
	_ = evil2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := evil2.Read(header[:]); err == nil {
		t.Error("zero-length frame did not close the connection")
	}

	// The node still accepts well-formed traffic afterwards.
	good := dialRaw(t, a, 3)
	defer func() { _ = good.Close() }()
	m := Message{Kind: KindCommand, Seq: 99}
	frame := make([]byte, 4, 4+m.EncodedSize())
	frame = m.AppendEncode(frame)
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	if _, err := good.Write(frame); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, a, 2*time.Second); got.Seq != 99 {
		t.Errorf("post-rejection message seq = %d, want 99", got.Seq)
	}
}

// TestTCPCorruptFrameClosesConnection sends a frame whose body does not
// decode: the reader drops the connection rather than delivering garbage.
func TestTCPCorruptFrameClosesConnection(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	c := dialRaw(t, a, 68)
	defer func() { _ = c.Close() }()
	var header [4]byte
	binary.LittleEndian.PutUint32(header[:], 3)
	if _, err := c.Write(append(header[:], 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(header[:]); err == nil {
		t.Error("corrupt frame did not close the connection")
	}
}

// TestTCPRedialAfterDrop exercises the Send-side redial path: after the
// peer's connection drops mid-stream, a later Send establishes a fresh
// connection transparently.
func TestTCPRedialAfterDrop(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Send(2, Message{Kind: KindCommand, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, 2*time.Second)

	// Kill b's inbound connections out from under a.
	b.mu.Lock()
	for id, c := range b.conns {
		_ = c.c.Close()
		delete(b.conns, id)
	}
	b.mu.Unlock()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_ = a.Send(2, Message{Kind: KindCommand, Seq: 2})
		select {
		case m, ok := <-b.Recv():
			if ok && m.Seq == 2 {
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
	}
	t.Fatal("message never delivered after connection drop")
}

func TestTCPSendBatchCoalesced(t *testing.T) {
	a, b := newTCPPair(t)
	const count = 400
	msgs := make([]Message, count)
	for i := range msgs {
		msgs[i] = Message{
			Kind:  KindPhase2,
			To:    2,
			Seq:   uint64(i),
			Value: Value{ID: uint64(i + 1), Data: []byte{byte(i), byte(i >> 8)}},
		}
	}
	// One call: all frames encode into one buffer and (conn permitting)
	// one write; every message must arrive intact and in order.
	if err := a.SendBatch(msgs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		got := recvOne(t, b, 5*time.Second)
		if got.Seq != uint64(i) || got.From != 1 {
			t.Fatalf("message %d: got seq %d from %d", i, got.Seq, got.From)
		}
		if got.Value.Data[0] != byte(i) || got.Value.Data[1] != byte(i>>8) {
			t.Fatalf("message %d: payload corrupted: %v", i, got.Value.Data)
		}
	}
}

func TestTCPSendBatchMultiDestinationRuns(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := ListenTCP(3, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close(); _ = b.Close(); _ = c.Close() })
	a.SetPeer(2, b.Addr())
	a.SetPeer(3, c.Addr())

	// Alternating destinations force multiple coalescing runs; order must
	// hold per destination.
	var msgs []Message
	for i := 0; i < 60; i++ {
		msgs = append(msgs, Message{Kind: KindDecision, To: ProcessID(2 + i%2), Seq: uint64(i)})
	}
	if err := a.SendBatch(msgs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if got := recvOne(t, b, 5*time.Second); got.Seq != uint64(2*i) {
			t.Fatalf("b message %d: seq %d", i, got.Seq)
		}
		if got := recvOne(t, c, 5*time.Second); got.Seq != uint64(2*i+1) {
			t.Fatalf("c message %d: seq %d", i, got.Seq)
		}
	}
}

func TestTCPSendBatchInterleavedWithSend(t *testing.T) {
	a, b := newTCPPair(t)
	for i := 0; i < 50; i++ {
		if err := a.Send(2, Message{Kind: KindCommand, Seq: uint64(2 * i)}); err != nil {
			t.Fatal(err)
		}
		if err := a.SendBatch([]Message{{Kind: KindCommand, To: 2, Seq: uint64(2*i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		if got := recvOne(t, b, 5*time.Second); got.Seq != i {
			t.Fatalf("out of order at %d: got %d", i, got.Seq)
		}
	}
}

func TestTCPSendBatchUnknownPeerSkipsRun(t *testing.T) {
	a, b := newTCPPair(t)
	msgs := []Message{
		{Kind: KindCommand, To: 9, Seq: 1}, // unknown: dropped silently
		{Kind: KindCommand, To: 2, Seq: 2},
	}
	if err := a.SendBatch(msgs); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b, 5*time.Second); got.Seq != 2 {
		t.Fatalf("got seq %d, want 2", got.Seq)
	}
}
