package transport

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Kind:     KindPhase2,
		From:     3,
		To:       7,
		Ring:     2,
		Ballot:   9,
		Instance: 123456789,
		Votes:    2,
		Count:    16,
		Seq:      42,
		Value: Value{
			ID:    MakeValueID(3, 11),
			Skip:  false,
			Count: 1,
			Data:  []byte("hello multicast"),
		},
		Payload: []byte{1, 2, 3},
	}
	buf := m.Encode()
	if len(buf) != m.EncodedSize() {
		t.Fatalf("EncodedSize = %d, actual = %d", m.EncodedSize(), len(buf))
	}
	got, err := DecodeMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestMessageRoundTripEmpty(t *testing.T) {
	m := Message{Kind: KindTrim}
	got, err := DecodeMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Errorf("round trip mismatch: got %+v want %+v", got, m)
	}
}

func TestDecodeShortInputs(t *testing.T) {
	m := Message{Kind: KindPhase2, Value: Value{ID: 1, Data: []byte("xyz")}, Payload: []byte("p")}
	full := m.Encode()
	for i := 0; i < len(full); i++ {
		if _, err := DecodeMessage(full[:i]); err == nil {
			t.Fatalf("DecodeMessage accepted truncation at %d bytes", i)
		}
	}
}

func TestMessageRoundTripQuick(t *testing.T) {
	f := func(kind uint8, from, to, ring, ballot uint32, inst uint64, votes, count uint32, seq, vid uint64, skip bool, vcount uint32, data, payload []byte) bool {
		m := Message{
			Kind: Kind(kind), From: ProcessID(from), To: ProcessID(to),
			Ring: RingID(ring), Ballot: ballot, Instance: inst,
			Votes: votes, Count: count, Seq: seq,
			Value:   Value{ID: vid, Skip: skip, Count: vcount, Data: data},
			Payload: payload,
		}
		got, err := DecodeMessage(m.Encode())
		if err != nil {
			return false
		}
		// Decode yields nil for empty slices; normalize.
		if len(m.Value.Data) == 0 {
			m.Value.Data = nil
		}
		if len(m.Payload) == 0 {
			m.Payload = nil
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValueBatchedFlagRoundTrip(t *testing.T) {
	m := Message{Kind: KindPhase2, Value: Value{ID: 3, Batched: true, Count: 1, Data: []byte("packed")}}
	got, err := DecodeMessage(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Value.Batched || got.Value.Skip {
		t.Errorf("flags lost: %+v", got.Value)
	}
	batch := []InstanceValue{{Instance: 1, Value: Value{ID: 9, Batched: true, Data: []byte("x")}}}
	dec, err := DecodeBatch(EncodeBatch(batch))
	if err != nil || !dec[0].Value.Batched {
		t.Errorf("batch flags lost: %+v, %v", dec, err)
	}
}

func TestMakeValueID(t *testing.T) {
	id := MakeValueID(5, 99)
	if id>>32 != 5 || id&0xffffffff != 99 {
		t.Errorf("MakeValueID(5, 99) = %x", id)
	}
}

func TestValueSpan(t *testing.T) {
	if (Value{}).Span() != 1 {
		t.Error("zero value should span 1 instance")
	}
	if (Value{Count: 5}).Span() != 5 {
		t.Error("Count=5 should span 5 instances")
	}
	if !(Value{}).IsZero() {
		t.Error("zero value should be IsZero")
	}
	if (Value{ID: 1}).IsZero() {
		t.Error("non-zero value should not be IsZero")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	batch := []InstanceValue{
		{Instance: 1, Value: Value{ID: 10, Data: []byte("a")}},
		{Instance: 2, Value: Value{ID: 11, Skip: true, Count: 7}},
		{Instance: 9, Value: Value{ID: 12, Data: bytes.Repeat([]byte("x"), 100)}},
	}
	got, err := DecodeBatch(EncodeBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, got) {
		t.Errorf("batch round trip mismatch:\n got %+v\nwant %+v", got, batch)
	}
}

func TestBatchEmpty(t *testing.T) {
	got, err := DecodeBatch(EncodeBatch(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("expected empty batch, got %d entries", len(got))
	}
}

func TestBatchDecodeCorrupt(t *testing.T) {
	batch := []InstanceValue{{Instance: 1, Value: Value{ID: 1, Data: []byte("abcdef")}}}
	full := EncodeBatch(batch)
	for i := 0; i < len(full); i++ {
		if _, err := DecodeBatch(full[:i]); err == nil && i < len(full) {
			t.Fatalf("DecodeBatch accepted truncation at %d bytes", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindPhase2.String() != "Phase2" {
		t.Errorf("KindPhase2.String() = %q", KindPhase2.String())
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind String() = %q", Kind(200).String())
	}
}

func BenchmarkMessageEncode(b *testing.B) {
	data := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(data)
	m := Message{Kind: KindPhase2, Instance: 1 << 40, Value: Value{ID: 7, Data: data}}
	buf := make([]byte, 0, m.EncodedSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = m.AppendEncode(buf[:0])
	}
}

func BenchmarkMessageDecode(b *testing.B) {
	data := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(data)
	m := Message{Kind: KindPhase2, Instance: 1 << 40, Value: Value{ID: 7, Data: data}}
	buf := m.Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMessage(buf); err != nil {
			b.Fatal(err)
		}
	}
}
