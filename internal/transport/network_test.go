package transport

import (
	"testing"
	"time"

	"amcast/internal/netem"
)

func recvOne(t *testing.T, tr Transport, timeout time.Duration) Message {
	t.Helper()
	select {
	case m, ok := <-tr.Recv():
		if !ok {
			t.Fatal("transport closed unexpectedly")
		}
		// Honor the pooled-read contract on behalf of the test: copy
		// anything aliasing a pooled read block, then drop the refs.
		m.DetachAlias()
		m.ReleaseRefs()
		return m
	case <-time.After(timeout):
		t.Fatal("timed out waiting for message")
	}
	panic("unreachable")
}

func TestNetworkDeliver(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	b := n.Attach(2, netem.SiteLocal)

	if err := a.Send(2, Message{Kind: KindCommand, Seq: 7}); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b, time.Second)
	if m.From != 1 || m.To != 2 || m.Seq != 7 {
		t.Errorf("unexpected message %+v", m)
	}
}

func TestNetworkFIFOPerLink(t *testing.T) {
	topo := netem.NewTopology()
	topo.SetLink("a", "b", netem.Link{Latency: time.Millisecond, Jitter: 2 * time.Millisecond})
	n := NewNetwork(topo)
	defer n.Close()
	a := n.Attach(1, "a")
	b := n.Attach(2, "b")

	const count = 200
	for i := uint64(0); i < count; i++ {
		if err := a.Send(2, Message{Kind: KindCommand, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < count; i++ {
		m := recvOne(t, b, 5*time.Second)
		if m.Seq != i {
			t.Fatalf("out of order: got seq %d want %d", m.Seq, i)
		}
	}
}

func TestNetworkLatencyApplied(t *testing.T) {
	topo := netem.NewTopology()
	topo.SetRTT("x", "y", 40*time.Millisecond, 0, 0)
	n := NewNetwork(topo)
	defer n.Close()
	a := n.Attach(1, "x")
	b := n.Attach(2, "y")

	start := time.Now()
	if err := a.Send(2, Message{Kind: KindCommand}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, time.Second)
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("one-way delivery took %v, want >= ~20ms", elapsed)
	}
}

func TestNetworkSendToCrashed(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	n.Attach(2, netem.SiteLocal)
	n.Detach(2)

	// Lost silently, no error.
	if err := a.Send(2, Message{Kind: KindCommand}); err != nil {
		t.Fatalf("send to crashed process should not error: %v", err)
	}
	if err := a.Send(99, Message{Kind: KindCommand}); err != nil {
		t.Fatalf("send to unknown process should not error: %v", err)
	}
}

func TestNetworkReattachDropsInFlight(t *testing.T) {
	topo := netem.NewTopology()
	topo.SetRTT("x", "y", 50*time.Millisecond, 0, 0)
	n := NewNetwork(topo)
	defer n.Close()
	a := n.Attach(1, "x")
	n.Attach(2, "y")

	// Message in flight to the old incarnation must not reach the new one.
	if err := a.Send(2, Message{Kind: KindCommand, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	b2 := n.Attach(2, "y") // crash + recover before delivery
	if err := a.Send(2, Message{Kind: KindCommand, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, b2, time.Second)
	if m.Seq != 2 {
		t.Errorf("new incarnation received stale message seq=%d", m.Seq)
	}
}

func TestNetworkBlockUnblock(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	b := n.Attach(2, netem.SiteLocal)

	n.Block(1, 2)
	if err := a.Send(2, Message{Kind: KindCommand, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("message crossed a blocked link")
	case <-time.After(50 * time.Millisecond):
	}
	n.Unblock(1, 2)
	if err := a.Send(2, Message{Kind: KindCommand, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, b, time.Second); m.Seq != 2 {
		t.Errorf("got seq %d after unblock, want 2", m.Seq)
	}
}

func TestNetworkSendAfterClose(t *testing.T) {
	n := NewNetwork(nil)
	a := n.Attach(1, netem.SiteLocal)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, Message{}); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
	n.Close()
}

func TestNetworkBandwidthSerialization(t *testing.T) {
	topo := netem.NewTopology()
	// 1 MB/s link: a 100 KB payload takes ~100 ms to serialize.
	topo.SetLink("x", "y", netem.Link{Bandwidth: 1 << 20})
	n := NewNetwork(topo)
	defer n.Close()
	a := n.Attach(1, "x")
	b := n.Attach(2, "y")

	payload := make([]byte, 100<<10)
	start := time.Now()
	if err := a.Send(2, Message{Kind: KindCommand, Value: Value{Data: payload}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b, 5*time.Second)
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("100KB over 1MB/s took %v, want >= ~95ms", elapsed)
	}
}

func TestMailboxCloseDiscards(t *testing.T) {
	mb := newMailbox()
	for i := 0; i < 10; i++ {
		mb.push(Message{Seq: uint64(i)})
	}
	mb.close()
	mb.push(Message{Seq: 99}) // no-op after close
	// Channel must be closed eventually.
	deadline := time.After(time.Second)
	for {
		select {
		case _, ok := <-mb.out:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("mailbox channel never closed")
		}
	}
}

func TestNetworkSendBatch(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	b := n.Attach(2, netem.SiteLocal)

	const count = 300
	msgs := make([]Message, count)
	for i := range msgs {
		msgs[i] = Message{Kind: KindPhase2, To: 2, Seq: uint64(i)}
	}
	if err := a.(BatchSender).SendBatch(msgs); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < count; i++ {
		if m := recvOne(t, b, 5*time.Second); m.Seq != i || m.From != 1 {
			t.Fatalf("message %d: %+v", i, m)
		}
	}
}

func TestNetworkSendBatchShapedFIFO(t *testing.T) {
	// A shaped link forces the queued path; batch and single sends must
	// still arrive FIFO.
	topo := netem.NewTopology()
	topo.SetLink("a", "b", netem.Link{Latency: time.Millisecond, Jitter: 2 * time.Millisecond})
	n := NewNetwork(topo)
	defer n.Close()
	a := n.Attach(1, "a")
	b := n.Attach(2, "b")

	const rounds = 50
	for i := 0; i < rounds; i++ {
		if err := a.(BatchSender).SendBatch([]Message{
			{Kind: KindPhase2, To: 2, Seq: uint64(3 * i)},
			{Kind: KindPhase2, To: 2, Seq: uint64(3*i + 1)},
		}); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(2, Message{Kind: KindDecision, Seq: uint64(3*i + 2)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 3*rounds; i++ {
		if m := recvOne(t, b, 5*time.Second); m.Seq != i {
			t.Fatalf("out of order: got seq %d want %d", m.Seq, i)
		}
	}
}

func TestNetworkSendBatchToCrashedAndBlocked(t *testing.T) {
	n := NewNetwork(nil)
	defer n.Close()
	a := n.Attach(1, netem.SiteLocal)
	b := n.Attach(2, netem.SiteLocal)
	n.Block(1, 3) // 3 never attached anyway; also exercise blocked path
	msgs := []Message{
		{Kind: KindCommand, To: 3, Seq: 1}, // blocked/crashed: lost
		{Kind: KindCommand, To: 9, Seq: 2}, // never attached: lost
		{Kind: KindCommand, To: 2, Seq: 3},
	}
	if err := a.(BatchSender).SendBatch(msgs); err != nil {
		t.Fatal(err)
	}
	if m := recvOne(t, b, 5*time.Second); m.Seq != 3 {
		t.Fatalf("got seq %d, want 3", m.Seq)
	}
}
