package transport

import (
	"sync"
	"time"

	"amcast/internal/netem"
)

// Network is an in-process transport hub. Every attached process gets a
// Transport whose links to other processes are shaped by a netem.Topology:
// messages experience serialization delay (bandwidth), propagation delay
// and jitter while preserving FIFO order per sender-receiver pair.
//
// Crashing a process (Detach) silently drops messages addressed to it, and
// a link can be blocked to emulate network partitions.
type Network struct {
	topo   *netem.Topology
	faults *netem.FaultPlan

	mu      sync.Mutex
	eps     map[ProcessID]*netEndpoint
	sites   map[ProcessID]netem.Site
	links   map[[2]ProcessID]*linkState
	blocked map[[2]ProcessID]bool
	closed  bool

	timers sync.WaitGroup
}

// linkState serializes deliveries on one sender-receiver path. A single
// drain goroutine per active link sleeps until each message's delivery time
// and pushes it to the destination mailbox, guaranteeing FIFO order.
type linkState struct {
	mu          sync.Mutex
	nextFree    time.Time // when the link finishes serializing prior sends
	lastDeliver time.Time // monotonic delivery horizon (FIFO with jitter)
	queue       []scheduledMsg
	draining    bool
}

type scheduledMsg struct {
	deliverAt time.Time
	msg       Message
	dst       *netEndpoint
}

// NewNetwork creates a hub over the given topology. A nil topology means
// zero-delay links (useful in unit tests).
func NewNetwork(topo *netem.Topology) *Network {
	if topo == nil {
		topo = netem.NewTopology()
	}
	return &Network{
		topo:    topo,
		faults:  netem.NewFaultPlan(1),
		eps:     make(map[ProcessID]*netEndpoint),
		sites:   make(map[ProcessID]netem.Site),
		links:   make(map[[2]ProcessID]*linkState),
		blocked: make(map[[2]ProcessID]bool),
	}
}

// Topology returns the topology shaping this network.
func (n *Network) Topology() *netem.Topology { return n.topo }

// Faults returns the mutable fault plan consulted on every send. With no
// faults installed the send path is unchanged; installing one switches the
// affected links to per-message sampling (drop/duplicate/extra delay, cuts).
func (n *Network) Faults() *netem.FaultPlan { return n.faults }

// Attach registers a process at a site and returns its transport. Attaching
// an existing id replaces the previous endpoint (the old one is closed),
// which models a process recovering with an empty volatile state.
func (n *Network) Attach(id ProcessID, site netem.Site) Transport {
	ep := &netEndpoint{id: id, net: n, mb: newMailbox()}
	n.mu.Lock()
	old := n.eps[id]
	n.eps[id] = ep
	n.sites[id] = site
	n.mu.Unlock()
	if old != nil {
		old.closeLocal()
	}
	return ep
}

// Detach crashes a process: its transport closes and future messages to it
// are dropped.
func (n *Network) Detach(id ProcessID) {
	n.mu.Lock()
	ep := n.eps[id]
	delete(n.eps, id)
	n.mu.Unlock()
	if ep != nil {
		ep.closeLocal()
	}
}

// Block stops message flow from a to b (one direction). Use Unblock to heal.
func (n *Network) Block(from, to ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]ProcessID{from, to}] = true
}

// Unblock restores message flow from a to b.
func (n *Network) Unblock(from, to ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]ProcessID{from, to})
}

// Close shuts the hub and all endpoints down, waiting for in-flight
// delivery timers to finish.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*netEndpoint, 0, len(n.eps))
	for _, ep := range n.eps {
		eps = append(eps, ep)
	}
	n.eps = make(map[ProcessID]*netEndpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.closeLocal()
	}
	n.timers.Wait()
}

// send routes a message, applying link shaping. It is the one-message
// case of sendRun, so batched and single sends share one scheduling
// implementation.
func (n *Network) send(from ProcessID, m Message) error {
	run := [1]Message{m}
	return n.sendRun(from, run[:])
}

// sendBatch routes a staged batch: consecutive same-destination messages
// (the dominant shape — a ring burst forwards almost everything to the
// successor) resolve the destination and take the link lock once per run,
// and messages deliverable immediately land in the destination mailbox
// with a single push.
func (n *Network) sendBatch(from ProcessID, msgs []Message) error {
	return forEachRun(msgs, func(run []Message) error {
		return n.sendRun(from, run)
	})
}

// sendRun applies link shaping to one same-destination run. It mirrors
// send's per-message schedule computation; messages whose delivery time
// has already passed on an idle link form a prefix of the run (once one
// message queues, FIFO forces the rest behind it) and are delivered
// together.
func (n *Network) sendRun(from ProcessID, run []Message) error {
	to := run[0].To
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.blocked[[2]ProcessID{from, to}] {
		n.mu.Unlock()
		return nil // silently lost, like a partitioned link
	}
	dst, ok := n.eps[to]
	if !ok {
		n.mu.Unlock()
		return nil // destination crashed: messages lost
	}
	key := [2]ProcessID{from, to}
	ls := n.links[key]
	if ls == nil {
		ls = &linkState{}
		n.links[key] = ls
	}
	fromSite, toSite := n.sites[from], n.sites[to]
	n.mu.Unlock()

	link := n.topo.Link(fromSite, toSite)
	scale := n.topo.Scale()

	// Injected faults force the queue path (per-message sampling defeats
	// the ready-prefix batching); untouched links keep the fast path.
	faulty := n.faults.Active()

	now := time.Now()
	ready := 0 // prefix of run deliverable immediately
	pushed := false
	ls.mu.Lock()
	busy := ls.draining || len(ls.queue) > 0
	for _, m := range run {
		var oc netem.FaultOutcome
		if faulty {
			oc = n.faults.Sample(uint32(from), uint32(to))
			if oc.Drop {
				continue
			}
		}
		tx := time.Duration(float64(link.Transmission(m.EncodedSize())) * scale)
		prop := n.topo.Delay(fromSite, toSite, 0) + oc.Extra
		start := now
		if ls.nextFree.After(start) {
			start = ls.nextFree
		}
		ls.nextFree = start.Add(tx)
		deliverAt := start.Add(tx + prop)
		if deliverAt.Before(ls.lastDeliver) {
			deliverAt = ls.lastDeliver // keep FIFO despite jitter
		}
		ls.lastDeliver = deliverAt
		// A pooled payload crosses by slice alias here, not as an encoded
		// wire copy: each delivered copy pins its buffers so the sender
		// releasing its own references cannot recycle bytes a receiver
		// still reads. Dropped messages (above) take no reference; the
		// mailbox and drainLink release on their drop paths.
		m.RetainRefs()
		if !faulty && !busy && deliverAt.Sub(now) <= 0 {
			ready++
			continue
		}
		if !busy && ready > 0 {
			// Release the ready prefix before the first message queues:
			// once drainLink is running it could otherwise deliver the
			// suffix ahead of a prefix pushed after unlock.
			dst.mb.pushAll(run[:ready])
			pushed = true
		}
		busy = true
		ls.queue = append(ls.queue, scheduledMsg{deliverAt: deliverAt, msg: m, dst: dst})
		if oc.Dup {
			m.RetainRefs() // the duplicate is its own in-flight copy
			ls.queue = append(ls.queue, scheduledMsg{deliverAt: deliverAt, msg: m, dst: dst})
		}
		if !ls.draining {
			ls.draining = true
			n.timers.Add(1)
			go n.drainLink(ls)
		}
	}
	ls.mu.Unlock()
	if !pushed {
		dst.mb.pushAll(run[:ready])
	}
	return nil
}

// drainLink delivers queued messages for one link in order, sleeping until
// each message's delivery time. It exits when the queue empties.
func (n *Network) drainLink(ls *linkState) {
	defer n.timers.Done()
	for {
		ls.mu.Lock()
		if len(ls.queue) == 0 {
			ls.draining = false
			ls.mu.Unlock()
			return
		}
		sm := ls.queue[0]
		ls.queue = ls.queue[1:]
		ls.mu.Unlock()

		if d := time.Until(sm.deliverAt); d > 0 {
			time.Sleep(d)
		}
		n.mu.Lock()
		cur, ok := n.eps[sm.msg.To]
		n.mu.Unlock()
		// Deliver only if the same endpoint incarnation is attached.
		if ok && cur == sm.dst {
			sm.dst.mb.push(sm.msg)
		} else {
			sm.msg.ReleaseRefs()
		}
	}
}

// netEndpoint is the per-process view of a Network.
type netEndpoint struct {
	id  ProcessID
	net *Network
	mb  *mailbox

	mu     sync.Mutex
	closed bool
}

var _ Transport = (*netEndpoint)(nil)
var _ BatchSender = (*netEndpoint)(nil)

func (e *netEndpoint) ID() ProcessID { return e.id }

// SendBatch routes a staged batch through the hub's coalescing path. Each
// message's To must be set; From is stamped here.
func (e *netEndpoint) SendBatch(msgs []Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	for i := range msgs {
		msgs[i].From = e.id
	}
	return e.net.sendBatch(e.id, msgs)
}

func (e *netEndpoint) Send(to ProcessID, m Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	m.From = e.id
	m.To = to
	return e.net.send(e.id, m)
}

func (e *netEndpoint) Recv() <-chan Message { return e.mb.out }

func (e *netEndpoint) Close() error {
	e.net.mu.Lock()
	if e.net.eps[e.id] == e {
		delete(e.net.eps, e.id)
	}
	e.net.mu.Unlock()
	e.closeLocal()
	return nil
}

func (e *netEndpoint) closeLocal() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.mb.close()
}
