// Package transport provides the message types and the process-to-process
// communication substrate used by every protocol in this repository.
//
// Two interchangeable implementations are provided:
//
//   - Network: an in-process transport whose links are shaped by a
//     netem.Topology (latency, jitter, bandwidth). All simulation tests and
//     benchmark figures run on it.
//   - TCPNode: a real TCP transport with length-prefixed binary frames, used
//     by the cmd/ executables for multi-process deployments.
//
// Both deliver messages FIFO per sender-receiver pair and drop (rather than
// block on) messages addressed to crashed processes, matching the system
// model in Section 2 of the paper: crash-recovery failures, no Byzantine
// behaviour, fair-lossy links made reliable by retransmission above.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"amcast/internal/bufpool"
	"amcast/internal/trace"
)

// ProcessID identifies a process in the system (Π = {p1, p2, ...}).
type ProcessID uint32

// RingID identifies a Ring Paxos ring. Each multicast group maps 1:1 to a
// ring, so RingID doubles as the group identifier γ.
type RingID uint32

// Kind enumerates protocol message types.
type Kind uint8

// Message kinds. Kinds beginning with Kind2 belong to Ring Paxos consensus;
// the rest support recovery, services and client traffic.
const (
	// KindProposal carries a client value along the ring toward the
	// coordinator (Ring Paxos proposal forwarding).
	KindProposal Kind = iota + 1
	// KindPhase1A reserves a window of consensus instances (pre-executed
	// Phase 1); circulates the ring accumulating promises.
	KindPhase1A
	// KindPhase1B confirms a reserved window back to the coordinator.
	KindPhase1B
	// KindPhase2 is the combined Phase 2A/2B message: the coordinator's
	// proposal plus the votes accumulated so far.
	KindPhase2
	// KindDecision announces a decided instance; circulates one full loop.
	KindDecision
	// KindRetransmitReq asks an acceptor for decided values in an
	// instance range (replica recovery catch-up).
	KindRetransmitReq
	// KindRetransmitResp returns a batch of decided (instance, value)
	// pairs.
	KindRetransmitResp
	// KindSafeReq asks a replica for its highest checkpointed instance
	// for a group (trim protocol, quorum Q_T).
	KindSafeReq
	// KindSafeResp carries the replica's answer k[x]p.
	KindSafeResp
	// KindTrim instructs acceptors to discard instances <= Instance.
	KindTrim
	// KindCommand is a client request to a replicated service.
	KindCommand
	// KindResponse is a replica's reply to a client.
	KindResponse
	// KindCheckpointReq asks partition peers for their newest checkpoint
	// identifier (recovery quorum Q_R).
	KindCheckpointReq
	// KindCheckpointResp returns a checkpoint tuple identifier.
	KindCheckpointResp
	// KindSnapshotReq asks a peer replica for the full checkpoint bytes.
	KindSnapshotReq
	// KindSnapshotChunk carries one chunk of a streamed checkpoint:
	// Instance is the byte offset, Votes the chunk index, Count the chunk
	// count, Value.ID the total encoded size and Ballot the CRC of the
	// whole encoding. Replaces the former monolithic snapshot response,
	// which could not carry states larger than a single frame.
	KindSnapshotChunk
	// KindReconfigPrepare arms an epoch transition at a replica before
	// the reconfiguration marker is multicast: Instance carries the
	// marker value id, Payload the new group set.
	KindReconfigPrepare
	// KindReconfigAck confirms (Instance 0) or rejects (Instance 1, error
	// text in Payload) a reconfiguration prepare.
	KindReconfigAck
	// KindRangeReq asks a replica for the outgoing key range captured by
	// a partition-split marker; Instance carries the split id.
	KindRangeReq
	// KindRangeChunk streams the captured range back with the same
	// chunked framing as KindSnapshotChunk (offset/index/count/size/CRC).
	KindRangeChunk
	// KindFlowFeedback carries a learner's merge-stall report to a ring's
	// coordinator (adaptive rate leveling): Instance is the nanoseconds
	// the deterministic merge waited on this ring since the last report.
	KindFlowFeedback
	// KindOverloaded is a coordinator's admission-control reply to a
	// proposal it refused because its queue is full: Value.ID echoes the
	// refused proposal's value id, Instance carries the suggested
	// retry-after in milliseconds, Count the queue depth. Clients back
	// off (bounded, jittered) instead of retrying blindly.
	KindOverloaded
	// KindLocalRead is a client's direct read request to one replica
	// (no multicast round). The payload carries the read mode, the
	// client's read-index requirement (or staleness bound) and the
	// inner service operation; Seq matches request to response.
	KindLocalRead
	// KindLocalReadResp is the replica's reply to a KindLocalRead:
	// a status byte followed by the service result. Instance carries
	// the replica's applied high-water mark for the addressed group so
	// clients advance their observed read index on every reply.
	KindLocalReadResp
	// KindHeartbeat is a failure-detector liveness beacon. It carries no
	// payload beyond the envelope: the arrival time at the receiver is
	// the signal (φ-accrual inter-arrival estimation in coord.Detector).
	KindHeartbeat
)

var kindNames = map[Kind]string{
	KindProposal:        "Proposal",
	KindPhase1A:         "Phase1A",
	KindPhase1B:         "Phase1B",
	KindPhase2:          "Phase2",
	KindDecision:        "Decision",
	KindRetransmitReq:   "RetransmitReq",
	KindRetransmitResp:  "RetransmitResp",
	KindSafeReq:         "SafeReq",
	KindSafeResp:        "SafeResp",
	KindTrim:            "Trim",
	KindCommand:         "Command",
	KindResponse:        "Response",
	KindCheckpointReq:   "CheckpointReq",
	KindCheckpointResp:  "CheckpointResp",
	KindSnapshotReq:     "SnapshotReq",
	KindSnapshotChunk:   "SnapshotChunk",
	KindReconfigPrepare: "ReconfigPrepare",
	KindReconfigAck:     "ReconfigAck",
	KindRangeReq:        "RangeReq",
	KindRangeChunk:      "RangeChunk",
	KindFlowFeedback:    "FlowFeedback",
	KindOverloaded:      "Overloaded",
	KindLocalRead:       "LocalRead",
	KindLocalReadResp:   "LocalReadResp",
	KindHeartbeat:       "Heartbeat",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a proposed or decided consensus value. Skip values decide Count
// consecutive null instances (rate leveling, Section 4); they advance the
// deterministic merge without delivering anything to the application.
type Value struct {
	// ID uniquely identifies a proposal: high 32 bits are the proposer's
	// ProcessID, low 32 bits a proposer-local sequence number.
	ID uint64
	// Skip marks a null value used to skip instances.
	Skip bool
	// Batched marks a value whose Data packs several proposals into one
	// consensus instance (message packing, Section 4); Data is then an
	// EncodeBatch payload whose entries carry the original values.
	Batched bool
	// Count is the number of consecutive instances this value decides
	// (1 for normal values, >=1 for skip ranges).
	Count uint32
	// Data is the application payload (opaque to the protocol).
	Data []byte
	// Buf, when non-nil, is the pooled refcounted buffer backing Data.
	// It never rides the wire (encoders ignore it) and is only set on
	// pooled paths: the ring interns a TCP-delivered payload once into a
	// pooled buffer and every downstream holder (accepted map, WAL
	// batch, staged forward, delivery batch) takes its own reference.
	// Holders that copy a Value for retention must Retain; whoever
	// drops the last copy Releases. Code that stores Data beyond the
	// current call without touching Buf must heap-detach it first.
	Buf *bufpool.Buf
}

// IsZero reports whether v is the zero Value.
func (v Value) IsZero() bool {
	return v.ID == 0 && !v.Skip && !v.Batched && v.Count == 0 && len(v.Data) == 0
}

// value flag bits in the encoded flags byte.
const (
	valueFlagSkip    = 1 << 0
	valueFlagBatched = 1 << 1
)

func (v Value) flags() byte {
	var f byte
	if v.Skip {
		f |= valueFlagSkip
	}
	if v.Batched {
		f |= valueFlagBatched
	}
	return f
}

// Span returns the number of instances the value decides (at least 1).
func (v Value) Span() uint64 {
	if v.Count <= 1 {
		return 1
	}
	return uint64(v.Count)
}

// MakeValueID composes a proposal identifier from a proposer and a local
// sequence number.
func MakeValueID(p ProcessID, seq uint32) uint64 {
	return uint64(p)<<32 | uint64(seq)
}

// TraceRef binds a trace context to one value id carried by a message.
// A message whose Value packs several proposals (message packing) may
// carry one ref per sampled inner value.
type TraceRef struct {
	ValueID uint64
	Ctx     trace.Context
}

// Message is the single wire envelope for all protocols. Field meaning
// depends on Kind; unused fields are zero and cost little on the wire.
type Message struct {
	Kind     Kind
	From     ProcessID // original sender
	To       ProcessID // destination (set by the transport on send)
	Ring     RingID    // ring / multicast group
	Ballot   uint32    // Paxos ballot (Phase 1/2)
	Instance uint64    // consensus instance (or range start)
	Votes    uint32    // accumulated Phase 2B votes
	Count    uint32    // window size (Phase1), batch counts, etc.
	Seq      uint64    // request id for client/recovery RPC matching
	Value    Value     // consensus value
	Payload  []byte    // auxiliary bytes (snapshots, batches)
	// Traces carries sampled trace contexts for the value ids on this
	// message. It rides the wire as an OPTIONAL trailing header after
	// Payload: decoders that predate it ignore trailing bytes, and this
	// decoder skips unknown optional header types, so mixed-version
	// rings interoperate (forward and backward compatible).
	Traces []TraceRef
	// Block, when non-nil, is the pooled TCP read block whose storage
	// Value.Data and Payload alias. The reference it represents is owned
	// by the message: the consumer that drains the message releases it
	// once it no longer reads the aliased slices (the ring releases a
	// burst's blocks after the burst's staged work is flushed). Never
	// set on in-process transports, never encoded.
	Block *bufpool.Buf
}

// ReleaseRefs drops the pooled-buffer references carried by m (read
// block and interned value buffer), if any. Nil-safe on both; called
// wherever a message is dropped instead of handed to its consumer so
// pooled storage is not leaked.
func (m *Message) ReleaseRefs() {
	m.Block.Release()
	m.Block = nil
	m.Value.Buf.Release()
	m.Value.Buf = nil
}

// RetainRefs takes one additional reference on each pooled buffer m
// carries, nil-safe. The in-process transport calls it per delivered
// copy of a message: a pooled payload crosses process boundaries as a
// slice alias rather than an encoded wire copy there, so each in-flight
// copy must pin the buffer until its consumer releases it — otherwise
// the sender's shutdown could recycle bytes a receiver is still reading.
func (m *Message) RetainRefs() {
	m.Block.Retain()
	m.Value.Buf.Retain()
}

// DetachAlias copies m's wire-aliasing byte fields (Value.Data,
// Payload) onto the GC heap and clears Value.Buf, so the message stays
// valid after the read block it was decoded from is recycled. Used for
// message kinds outside the pooled steady-state path, whose holders
// may retain the bytes indefinitely.
func (m *Message) DetachAlias() {
	if len(m.Value.Data) > 0 {
		m.Value.Data = append([]byte(nil), m.Value.Data...)
	}
	m.Value.Buf = nil
	if len(m.Payload) > 0 {
		m.Payload = append([]byte(nil), m.Payload...)
	}
}

const msgFixedHeader = 1 + 4 + 4 + 4 + 4 + 8 + 4 + 4 + 8 // through Seq

// Optional trailing headers: after Payload a message may carry a
// sequence of (type byte, uint16 length, body) extensions. Unknown
// types are skipped; malformed trailing bytes are ignored (they are
// indistinguishable from a pre-extension peer's padding).
const (
	extTypeTrace    = 0x01
	extHeaderSize   = 1 + 2                // type + length
	traceRefSize    = 8 + 8 + 8 + 1        // value id, trace id, span id, flags
	maxTraceRefsEnc = 65535 / traceRefSize // uint16 length cap per header
)

// encodedTraceCount caps the refs that fit one optional header. In
// practice a message carries a handful; the cap only guards the uint16.
func (m *Message) encodedTraceCount() int {
	n := len(m.Traces)
	if n > maxTraceRefsEnc {
		n = maxTraceRefsEnc
	}
	return n
}

// EncodedSize returns the exact encoding length of m.
func (m *Message) EncodedSize() int {
	n := msgFixedHeader + 8 + 1 + 4 + 4 + len(m.Value.Data) + 4 + len(m.Payload)
	if tc := m.encodedTraceCount(); tc > 0 {
		n += extHeaderSize + tc*traceRefSize
	}
	return n
}

// AppendEncode appends the binary encoding of m to buf and returns the
// extended slice. The format is fixed-width little-endian; no reflection.
//
//lint:deterministic
func (m *Message) AppendEncode(buf []byte) []byte {
	var tmp [8]byte
	buf = append(buf, byte(m.Kind))
	binary.LittleEndian.PutUint32(tmp[:4], uint32(m.From))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(m.To))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(m.Ring))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], m.Ballot)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:8], m.Instance)
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint32(tmp[:4], m.Votes)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], m.Count)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:8], m.Seq)
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint64(tmp[:8], m.Value.ID)
	buf = append(buf, tmp[:8]...)
	buf = append(buf, m.Value.flags())
	binary.LittleEndian.PutUint32(tmp[:4], m.Value.Count)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(m.Value.Data)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, m.Value.Data...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(m.Payload)))
	buf = append(buf, tmp[:4]...)
	buf = append(buf, m.Payload...)
	if tc := m.encodedTraceCount(); tc > 0 {
		buf = append(buf, extTypeTrace)
		binary.LittleEndian.PutUint16(tmp[:2], uint16(tc*traceRefSize))
		buf = append(buf, tmp[:2]...)
		for _, tr := range m.Traces[:tc] {
			binary.LittleEndian.PutUint64(tmp[:8], tr.ValueID)
			buf = append(buf, tmp[:8]...)
			binary.LittleEndian.PutUint64(tmp[:8], tr.Ctx.TraceID)
			buf = append(buf, tmp[:8]...)
			binary.LittleEndian.PutUint64(tmp[:8], tr.Ctx.SpanID)
			buf = append(buf, tmp[:8]...)
			buf = append(buf, tr.Ctx.Flags)
		}
	}
	return buf
}

// Encode returns the binary encoding of m.
func (m *Message) Encode() []byte {
	return m.AppendEncode(make([]byte, 0, m.EncodedSize()))
}

// ErrShortMessage reports a truncated or corrupt encoding.
var ErrShortMessage = errors.New("transport: short or corrupt message encoding")

// DecodeMessage parses a message encoded by Encode. The returned message
// aliases buf's storage for Value.Data and Payload.
func DecodeMessage(buf []byte) (Message, error) {
	var m Message
	if len(buf) < msgFixedHeader {
		return m, ErrShortMessage
	}
	m.Kind = Kind(buf[0])
	m.From = ProcessID(binary.LittleEndian.Uint32(buf[1:5]))
	m.To = ProcessID(binary.LittleEndian.Uint32(buf[5:9]))
	m.Ring = RingID(binary.LittleEndian.Uint32(buf[9:13]))
	m.Ballot = binary.LittleEndian.Uint32(buf[13:17])
	m.Instance = binary.LittleEndian.Uint64(buf[17:25])
	m.Votes = binary.LittleEndian.Uint32(buf[25:29])
	m.Count = binary.LittleEndian.Uint32(buf[29:33])
	m.Seq = binary.LittleEndian.Uint64(buf[33:41])
	rest := buf[41:]
	if len(rest) < 8+1+4+4 {
		return m, ErrShortMessage
	}
	m.Value.ID = binary.LittleEndian.Uint64(rest[:8])
	m.Value.Skip = rest[8]&valueFlagSkip != 0
	m.Value.Batched = rest[8]&valueFlagBatched != 0
	m.Value.Count = binary.LittleEndian.Uint32(rest[9:13])
	dataLen := int(binary.LittleEndian.Uint32(rest[13:17]))
	rest = rest[17:]
	if len(rest) < dataLen+4 {
		return m, ErrShortMessage
	}
	if dataLen > 0 {
		m.Value.Data = rest[:dataLen]
	}
	rest = rest[dataLen:]
	payLen := int(binary.LittleEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) < payLen {
		return m, ErrShortMessage
	}
	if payLen > 0 {
		m.Payload = rest[:payLen]
	}
	rest = rest[payLen:]
	// Optional trailing headers. Unknown types are skipped (forward
	// compatibility: a newer peer's extension must not reject an
	// otherwise valid frame) and malformed trailers are ignored rather
	// than rejected — old decoders never looked past Payload at all.
	for len(rest) >= extHeaderSize {
		typ := rest[0]
		bodyLen := int(binary.LittleEndian.Uint16(rest[1:3]))
		if len(rest) < extHeaderSize+bodyLen {
			break // truncated trailer: ignore
		}
		body := rest[extHeaderSize : extHeaderSize+bodyLen]
		rest = rest[extHeaderSize+bodyLen:]
		if typ != extTypeTrace || bodyLen%traceRefSize != 0 {
			continue // unknown or malformed extension: skip it
		}
		for len(body) >= traceRefSize && len(m.Traces) < maxTraceRefsEnc {
			m.Traces = append(m.Traces, TraceRef{
				ValueID: binary.LittleEndian.Uint64(body[:8]),
				Ctx: trace.Context{
					TraceID: binary.LittleEndian.Uint64(body[8:16]),
					SpanID:  binary.LittleEndian.Uint64(body[16:24]),
					Flags:   body[24],
				},
			})
			body = body[traceRefSize:]
		}
	}
	return m, nil
}

// TraceFor returns the trace context attached for a value id, if any.
func (m *Message) TraceFor(id uint64) (trace.Context, bool) {
	for _, tr := range m.Traces {
		if tr.ValueID == id {
			return tr.Ctx, true
		}
	}
	return trace.Context{}, false
}

// InstanceValue pairs a decided instance with its value; used in
// retransmission batches.
type InstanceValue struct {
	Instance uint64
	Value    Value
}

// AppendValue appends one batch entry's value encoding (the per-entry
// layout of EncodeBatch, after the instance) to buf.
//
//lint:deterministic
func AppendValue(buf []byte, v Value) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:8], v.ID)
	buf = append(buf, tmp[:8]...)
	buf = append(buf, v.flags())
	binary.LittleEndian.PutUint32(tmp[:4], v.Count)
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(v.Data)))
	buf = append(buf, tmp[:4]...)
	return append(buf, v.Data...)
}

// EncodedBatchSize returns the exact size of EncodeBatch's output, so
// callers can encode into a pre-sized (possibly pooled) buffer via
// AppendBatch without a second copy.
func EncodedBatchSize(batch []InstanceValue) int {
	size := 4
	for _, iv := range batch {
		size += 8 + 8 + 1 + 4 + 4 + len(iv.Value.Data)
	}
	return size
}

// AppendBatch appends the batch encoding to buf and returns the extended
// slice (EncodedBatchSize bytes are written).
//
//lint:deterministic
func AppendBatch(buf []byte, batch []InstanceValue) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(batch)))
	buf = append(buf, tmp[:4]...)
	for _, iv := range batch {
		binary.LittleEndian.PutUint64(tmp[:8], iv.Instance)
		buf = append(buf, tmp[:8]...)
		buf = AppendValue(buf, iv.Value)
	}
	return buf
}

// EncodeBatch encodes a retransmission batch into a payload.
//
//lint:deterministic
func EncodeBatch(batch []InstanceValue) []byte {
	return AppendBatch(make([]byte, 0, EncodedBatchSize(batch)), batch)
}

// VisitBatch parses a payload produced by EncodeBatch, calling fn for each
// entry instead of materializing the batch slice — the delivery hot path
// unpacks one message-packed instance per consensus decision and would
// otherwise allocate per instance. Entries alias buf's storage.
func VisitBatch(buf []byte, fn func(InstanceValue)) error {
	if len(buf) < 4 {
		return ErrShortMessage
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	for i := 0; i < n; i++ {
		if len(buf) < 8+8+1+4+4 {
			return ErrShortMessage
		}
		var iv InstanceValue
		iv.Instance = binary.LittleEndian.Uint64(buf[:8])
		iv.Value.ID = binary.LittleEndian.Uint64(buf[8:16])
		iv.Value.Skip = buf[16]&valueFlagSkip != 0
		iv.Value.Batched = buf[16]&valueFlagBatched != 0
		iv.Value.Count = binary.LittleEndian.Uint32(buf[17:21])
		dataLen := int(binary.LittleEndian.Uint32(buf[21:25]))
		buf = buf[25:]
		if len(buf) < dataLen {
			return ErrShortMessage
		}
		if dataLen > 0 {
			iv.Value.Data = buf[:dataLen]
		}
		buf = buf[dataLen:]
		fn(iv)
	}
	return nil
}

// DecodeBatch parses a payload produced by EncodeBatch.
func DecodeBatch(buf []byte) ([]InstanceValue, error) {
	var batch []InstanceValue
	if len(buf) >= 4 {
		// The count header comes off the wire: cap the preallocation by
		// the entries the buffer could physically hold (25 bytes each),
		// or 4 corrupt bytes could demand a ~200 GB make.
		n := int(binary.LittleEndian.Uint32(buf[:4]))
		if max := (len(buf) - 4) / 25; n > max {
			n = max
		}
		batch = make([]InstanceValue, 0, n)
	}
	if err := VisitBatch(buf, func(iv InstanceValue) {
		batch = append(batch, iv)
	}); err != nil {
		return nil, err
	}
	return batch, nil
}
