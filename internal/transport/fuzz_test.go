package transport

import (
	"bytes"
	"testing"

	"amcast/internal/trace"
)

// FuzzFrameDecode hammers the wire-format message decoder: DecodeMessage
// must never panic on adversarial bytes, and whatever it accepts must
// survive an encode/decode round trip unchanged (the encoding is
// canonical for the fields the decoder exposes).
func FuzzFrameDecode(f *testing.F) {
	seed := Message{
		Kind:     KindProposal,
		From:     3,
		To:       7,
		Ring:     2,
		Ballot:   9,
		Instance: 41,
		Votes:    1,
		Count:    2,
		Seq:      77,
		Value:    Value{ID: 5, Count: 1, Data: []byte("payload")},
		Payload:  []byte("aux"),
	}
	f.Add(seed.Encode())
	f.Add(seed.Encode()[:10]) // truncated header
	f.Add([]byte{})
	batched := seed
	batched.Value.Batched = true
	batched.Value.Data = EncodeBatch([]InstanceValue{
		{Instance: 1, Value: Value{ID: 1, Data: []byte("a")}},
		{Instance: 2, Value: Value{ID: 2, Skip: true, Count: 3}},
	})
	f.Add(batched.Encode())
	traced := seed
	traced.Traces = []TraceRef{{ValueID: 5, Ctx: trace.Context{TraceID: 11, SpanID: 12, Flags: trace.FlagSampled}}}
	f.Add(traced.Encode())
	// Forward compatibility: an UNKNOWN optional trailing header (type
	// 0x7f) on an otherwise valid frame must be skipped, not rejected,
	// and headers after it must still parse.
	unknown := append(seed.Encode(), 0x7f, 4, 0, 0xde, 0xad, 0xbe, 0xef)
	unknown = append(unknown, traced.Encode()[len(seed.Encode()):]...) // trace header after the unknown one
	f.Add(unknown)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		enc := m.Encode()
		if len(enc) != m.EncodedSize() {
			t.Fatalf("EncodedSize %d != len(Encode) %d", m.EncodedSize(), len(enc))
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if !messagesEqual(m, m2) {
			t.Fatalf("round trip changed message:\n  in:  %+v\n  out: %+v", m, m2)
		}

		// The batch codec must agree with itself on whatever it accepts.
		batch, err := DecodeBatch(m.Value.Data)
		if err != nil {
			return
		}
		visited := 0
		if err := VisitBatch(m.Value.Data, func(iv InstanceValue) {
			if visited < len(batch) {
				want := batch[visited]
				if iv.Instance != want.Instance || !bytes.Equal(iv.Value.Data, want.Value.Data) {
					t.Fatalf("VisitBatch entry %d disagrees with DecodeBatch", visited)
				}
			}
			visited++
		}); err != nil {
			t.Fatalf("VisitBatch rejected what DecodeBatch accepted: %v", err)
		}
		if visited != len(batch) {
			t.Fatalf("VisitBatch saw %d entries, DecodeBatch %d", visited, len(batch))
		}
		reenc := EncodeBatch(batch)
		batch2, err := DecodeBatch(reenc)
		if err != nil || len(batch2) != len(batch) {
			t.Fatalf("batch re-encoding round trip failed: %v (%d vs %d entries)", err, len(batch2), len(batch))
		}
	})
}

func messagesEqual(a, b Message) bool {
	if len(a.Traces) != len(b.Traces) {
		return false
	}
	for i := range a.Traces {
		if a.Traces[i] != b.Traces[i] {
			return false
		}
	}
	return a.Kind == b.Kind && a.From == b.From && a.To == b.To &&
		a.Ring == b.Ring && a.Ballot == b.Ballot && a.Instance == b.Instance &&
		a.Votes == b.Votes && a.Count == b.Count && a.Seq == b.Seq &&
		a.Value.ID == b.Value.ID && a.Value.Skip == b.Value.Skip &&
		a.Value.Batched == b.Value.Batched && a.Value.Count == b.Value.Count &&
		bytes.Equal(a.Value.Data, b.Value.Data) && bytes.Equal(a.Payload, b.Payload)
}
