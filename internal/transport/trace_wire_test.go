package transport

import (
	"testing"
	"time"

	"amcast/internal/trace"
)

// TestTraceHeaderRoundTrip pins the optional trailing trace header:
// refs survive encode/decode byte-exactly and EncodedSize stays exact.
func TestTraceHeaderRoundTrip(t *testing.T) {
	m := Message{
		Kind:  KindPhase2,
		From:  1,
		Ring:  2,
		Value: Value{ID: MakeValueID(1, 7), Data: []byte("v")},
		Traces: []TraceRef{
			{ValueID: MakeValueID(1, 7), Ctx: trace.Context{TraceID: 0xabcd, SpanID: 0x1234, Flags: trace.FlagSampled}},
			{ValueID: MakeValueID(2, 9), Ctx: trace.Context{TraceID: 0xefef, SpanID: 0x5678, Flags: trace.FlagSampled}},
		},
	}
	enc := m.Encode()
	if len(enc) != m.EncodedSize() {
		t.Fatalf("EncodedSize %d != len(Encode) %d", m.EncodedSize(), len(enc))
	}
	got, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !messagesEqual(m, got) {
		t.Fatalf("round trip changed message:\n in:  %+v\n out: %+v", m, got)
	}
	if ctx, ok := got.TraceFor(MakeValueID(2, 9)); !ok || ctx.TraceID != 0xefef {
		t.Fatalf("TraceFor lost the second ref: %+v %v", ctx, ok)
	}
}

// TestUnknownOptionalHeaderSkipped pins forward compatibility: a frame
// carrying an optional header type this decoder does not know must
// decode cleanly — the unknown header skipped, known headers after it
// still parsed — and a legacy frame with no trailer at all must too.
func TestUnknownOptionalHeaderSkipped(t *testing.T) {
	base := Message{Kind: KindDecision, Ring: 1, Instance: 5, Value: Value{ID: 9, Data: []byte("x")}}
	plain := base.Encode()

	// Unknown type 0x42 with a 3-byte body, then a valid trace header.
	traced := base
	traced.Traces = []TraceRef{{ValueID: 9, Ctx: trace.Context{TraceID: 7, SpanID: 8, Flags: trace.FlagSampled}}}
	tracedEnc := traced.Encode()
	frame := append(append([]byte{}, plain...), 0x42, 3, 0, 1, 2, 3)
	frame = append(frame, tracedEnc[len(plain):]...)

	got, err := DecodeMessage(frame)
	if err != nil {
		t.Fatalf("frame with unknown optional header rejected: %v", err)
	}
	if got.Kind != KindDecision || got.Value.ID != 9 {
		t.Fatalf("frame fields corrupted: %+v", got)
	}
	if len(got.Traces) != 1 || got.Traces[0].Ctx.TraceID != 7 {
		t.Fatalf("trace header after unknown header lost: %+v", got.Traces)
	}

	// A truncated trailer is ignored, never an error.
	if _, err := DecodeMessage(append(append([]byte{}, plain...), 0x42, 0xff, 0xff, 1)); err != nil {
		t.Fatalf("truncated trailer rejected: %v", err)
	}
}

// TestTraceSurvivesCoalescedSendBatch pins satellite coverage for the
// first span-dropping hazard: same-destination runs coalesced by a
// BatchSender must deliver every message's trace refs intact.
func TestTraceSurvivesCoalescedSendBatch(t *testing.T) {
	net := NewNetwork(nil)
	defer net.Close()
	a := net.Attach(1, "")
	b := net.Attach(2, "")

	ctx1 := trace.Context{TraceID: 101, SpanID: 1, Flags: trace.FlagSampled}
	ctx2 := trace.Context{TraceID: 202, SpanID: 2, Flags: trace.FlagSampled}
	batch := []Message{
		{Kind: KindPhase2, To: 2, Ring: 1, Instance: 1, Value: Value{ID: 11},
			Traces: []TraceRef{{ValueID: 11, Ctx: ctx1}}},
		{Kind: KindPhase2, To: 2, Ring: 1, Instance: 2, Value: Value{ID: 22},
			Traces: []TraceRef{{ValueID: 22, Ctx: ctx2}}},
		{Kind: KindDecision, To: 2, Ring: 1, Instance: 1, Value: Value{ID: 11},
			Traces: []TraceRef{{ValueID: 11, Ctx: ctx1}}},
	}
	bs, ok := a.(BatchSender)
	if !ok {
		t.Fatal("network transport does not implement BatchSender")
	}
	if err := bs.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	for i, want := range batch {
		got, err := recvTimeout(b, time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if gotCtx, ok := got.TraceFor(want.Value.ID); !ok || gotCtx != want.Traces[0].Ctx {
			t.Fatalf("msg %d lost its trace context through the coalesced batch: %+v", i, got.Traces)
		}
	}
}

func recvTimeout(tr Transport, d time.Duration) (Message, error) {
	select {
	case m := <-tr.Recv():
		return m, nil
	case <-time.After(d):
		return Message{}, errTimeout
	}
}

var errTimeout = errTimeoutType{}

type errTimeoutType struct{}

func (errTimeoutType) Error() string { return "recv timeout" }
