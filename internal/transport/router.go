package transport

import (
	"sync"
)

// Router demultiplexes one process's incoming messages: consensus traffic
// is routed to a per-ring channel (a process participates in many rings
// over a single transport), everything else — client commands, responses,
// recovery RPCs — goes to the service channel.
type Router struct {
	tr Transport

	mu     sync.Mutex
	rings  map[RingID]*mailbox
	other  *mailbox
	hb     *mailbox // lazily created by Heartbeats; nil => heartbeats dropped
	closed bool
	done   chan struct{}
}

// ringKinds are handled by ring.Node instances.
func isRingKind(k Kind) bool {
	switch k {
	case KindProposal, KindPhase1A, KindPhase1B, KindPhase2, KindDecision,
		KindRetransmitReq, KindRetransmitResp, KindSafeResp, KindTrim,
		KindFlowFeedback:
		return true
	default:
		return false
	}
}

// NewRouter starts routing messages from tr. Close the transport to stop it.
func NewRouter(tr Transport) *Router {
	r := &Router{
		tr:    tr,
		rings: make(map[RingID]*mailbox),
		other: newMailbox(),
		done:  make(chan struct{}),
	}
	go r.loop()
	return r
}

// Transport returns the underlying transport (for sending).
func (r *Router) Transport() Transport { return r.tr }

func (r *Router) loop() {
	defer close(r.done)
	for m := range r.tr.Recv() {
		if m.Kind == KindHeartbeat {
			// Heartbeats are only buffered once a consumer asked for
			// them; otherwise they are dropped on the floor so an
			// unconsumed mailbox cannot grow without bound.
			r.mu.Lock()
			hb := r.hb
			r.mu.Unlock()
			if hb != nil {
				hb.push(m)
			} else {
				m.ReleaseRefs()
			}
			continue
		}
		if isRingKind(m.Kind) {
			r.ringMailbox(m.Ring).push(m)
		} else {
			r.other.push(m)
		}
	}
	// Transport closed: close all mailboxes.
	r.mu.Lock()
	r.closed = true
	boxes := make([]*mailbox, 0, len(r.rings)+2)
	for _, mb := range r.rings {
		boxes = append(boxes, mb)
	}
	boxes = append(boxes, r.other)
	if r.hb != nil {
		boxes = append(boxes, r.hb)
	}
	r.mu.Unlock()
	for _, mb := range boxes {
		mb.close()
	}
}

func (r *Router) ringMailbox(ring RingID) *mailbox {
	r.mu.Lock()
	defer r.mu.Unlock()
	mb, ok := r.rings[ring]
	if !ok {
		mb = newMailbox()
		r.rings[ring] = mb
	}
	return mb
}

// Ring returns the channel of consensus messages for one ring. The channel
// closes when the transport closes.
func (r *Router) Ring(ring RingID) <-chan Message {
	return r.ringMailbox(ring).out
}

// Service returns the channel of non-consensus messages (commands,
// responses, recovery RPCs). The channel closes when the transport closes.
func (r *Router) Service() <-chan Message {
	return r.other.out
}

// Heartbeats returns the channel of failure-detector heartbeats. Until the
// first call, incoming heartbeats are dropped (no consumer, no buffering).
// The channel closes when the transport closes.
func (r *Router) Heartbeats() <-chan Message {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hb == nil {
		r.hb = newMailbox()
		if r.closed {
			// Router already shut down: close the fresh mailbox so the
			// caller observes a closed channel rather than a stuck one.
			r.hb.close()
		}
	}
	return r.hb.out
}

// Done is closed after the router has shut down.
func (r *Router) Done() <-chan struct{} { return r.done }
