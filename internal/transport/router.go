package transport

import (
	"sync"
)

// Router demultiplexes one process's incoming messages: consensus traffic
// is routed to a per-ring channel (a process participates in many rings
// over a single transport), everything else — client commands, responses,
// recovery RPCs — goes to the service channel.
type Router struct {
	tr Transport

	mu    sync.Mutex
	rings map[RingID]*mailbox
	other *mailbox
	done  chan struct{}
}

// ringKinds are handled by ring.Node instances.
func isRingKind(k Kind) bool {
	switch k {
	case KindProposal, KindPhase1A, KindPhase1B, KindPhase2, KindDecision,
		KindRetransmitReq, KindRetransmitResp, KindSafeResp, KindTrim,
		KindFlowFeedback:
		return true
	default:
		return false
	}
}

// NewRouter starts routing messages from tr. Close the transport to stop it.
func NewRouter(tr Transport) *Router {
	r := &Router{
		tr:    tr,
		rings: make(map[RingID]*mailbox),
		other: newMailbox(),
		done:  make(chan struct{}),
	}
	go r.loop()
	return r
}

// Transport returns the underlying transport (for sending).
func (r *Router) Transport() Transport { return r.tr }

func (r *Router) loop() {
	defer close(r.done)
	for m := range r.tr.Recv() {
		if isRingKind(m.Kind) {
			r.ringMailbox(m.Ring).push(m)
		} else {
			r.other.push(m)
		}
	}
	// Transport closed: close all mailboxes.
	r.mu.Lock()
	boxes := make([]*mailbox, 0, len(r.rings)+1)
	for _, mb := range r.rings {
		boxes = append(boxes, mb)
	}
	boxes = append(boxes, r.other)
	r.mu.Unlock()
	for _, mb := range boxes {
		mb.close()
	}
}

func (r *Router) ringMailbox(ring RingID) *mailbox {
	r.mu.Lock()
	defer r.mu.Unlock()
	mb, ok := r.rings[ring]
	if !ok {
		mb = newMailbox()
		r.rings[ring] = mb
	}
	return mb
}

// Ring returns the channel of consensus messages for one ring. The channel
// closes when the transport closes.
func (r *Router) Ring(ring RingID) <-chan Message {
	return r.ringMailbox(ring).out
}

// Service returns the channel of non-consensus messages (commands,
// responses, recovery RPCs). The channel closes when the transport closes.
func (r *Router) Service() <-chan Message {
	return r.other.out
}

// Done is closed after the router has shut down.
func (r *Router) Done() <-chan struct{} { return r.done }
