package transport

import (
	"testing"

	"amcast/internal/leakcheck"
)

// TestMain gates the package on goroutine-leak verification and on the
// buffer pool reporting zero outstanding buffers: the pooled read path
// lives here, so a missing Release anywhere in a test run fails the
// whole binary.
func TestMain(m *testing.M) { leakcheck.Main(m) }
