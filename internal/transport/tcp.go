package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPNode is a Transport over real TCP sockets for multi-process
// deployments (cmd/mrpstore, cmd/dlogd). Frames are length-prefixed binary
// messages; connections are established lazily and re-dialed on failure.
type TCPNode struct {
	id ProcessID
	ln net.Listener
	mb *mailbox

	mu     sync.Mutex
	addrs  map[ProcessID]string
	conns  map[ProcessID]*tcpConn
	closed bool

	wg sync.WaitGroup
}

type tcpConn struct {
	mu   sync.Mutex // serializes writes
	c    net.Conn
	wbuf []byte // reused frame-encode buffer (coalescing writer)
}

// maxFrame bounds a single message frame (64 MB) to protect against
// corrupt length prefixes.
const maxFrame = 64 << 20

// maxRetainedBuf caps the per-connection encode buffer kept across writes;
// an occasional oversized frame (snapshot transfer) doesn't pin its memory
// on the connection forever.
const maxRetainedBuf = 1 << 20

// appendFrame appends m's length-prefixed encoding to buf.
func appendFrame(buf []byte, m *Message) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = m.AppendEncode(buf)
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(buf)-start-4))
	return buf
}

// write encodes the frames into the connection's reused buffer and writes
// them with a single syscall. Returns the write error, if any.
func (c *tcpConn) write(msgs ...Message) error {
	c.mu.Lock()
	buf := c.wbuf[:0]
	for i := range msgs {
		buf = appendFrame(buf, &msgs[i])
	}
	_, err := c.c.Write(buf)
	if cap(buf) <= maxRetainedBuf {
		c.wbuf = buf[:0]
	} else {
		c.wbuf = nil
	}
	c.mu.Unlock()
	return err
}

// ListenTCP starts a TCP transport for process id on addr
// (e.g. "127.0.0.1:7001"). Peer addresses are registered with SetPeer.
func ListenTCP(id ProcessID, addr string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:    id,
		ln:    ln,
		mb:    newMailbox(),
		addrs: make(map[ProcessID]string),
		conns: make(map[ProcessID]*tcpConn),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

var _ Transport = (*TCPNode)(nil)
var _ BatchSender = (*TCPNode)(nil)

// ID returns the process id bound to this node.
func (n *TCPNode) ID() ProcessID { return n.id }

// Addr returns the listening address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeer registers the address of a peer process.
func (n *TCPNode) SetPeer(id ProcessID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

// Recv returns the incoming message channel.
func (n *TCPNode) Recv() <-chan Message { return n.mb.out }

// Send encodes and writes m to the peer, dialing if necessary. Connection
// errors drop the cached connection so a later Send re-dials; the message
// is lost, which the protocols tolerate (fair-lossy links).
func (n *TCPNode) Send(to ProcessID, m Message) error {
	m.From = n.id
	m.To = to
	conn, err := n.conn(to)
	if err != nil {
		return err
	}
	if conn == nil {
		return nil // unknown peer address: treat as lost
	}
	if werr := conn.write(m); werr != nil {
		n.dropConn(to, conn)
	}
	return nil
}

// SendBatch writes a staged batch of messages, coalescing consecutive
// same-destination messages — the dominant shape on the ring, where a
// drained burst forwards almost everything to the successor — into one
// frame buffer and one write syscall per run.
func (n *TCPNode) SendBatch(msgs []Message) error {
	return forEachRun(msgs, func(run []Message) error {
		to := run[0].To
		for k := range run {
			run[k].From = n.id
		}
		conn, err := n.conn(to)
		if err != nil {
			return err
		}
		if conn != nil {
			if werr := conn.write(run...); werr != nil {
				n.dropConn(to, conn)
			}
		}
		return nil
	})
}

// Close shuts down the listener and all connections.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*tcpConn, 0, len(n.conns))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	n.conns = make(map[ProcessID]*tcpConn)
	n.mu.Unlock()

	err := n.ln.Close()
	for _, c := range conns {
		_ = c.c.Close()
	}
	n.wg.Wait()
	n.mb.close()
	return err
}

func (n *TCPNode) conn(to ProcessID) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return nil, nil
	}
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, nil // peer down: message lost
	}
	// Handshake: announce our id so the peer can map the inbound stream.
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(n.id))
	if _, err := raw.Write(hello[:]); err != nil {
		_ = raw.Close()
		return nil, nil
	}
	c := &tcpConn{c: raw}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = raw.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		n.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	n.conns[to] = c
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(raw)
	return c, nil
}

func (n *TCPNode) dropConn(to ProcessID, c *tcpConn) {
	n.mu.Lock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	_ = c.c.Close()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		raw, err := n.ln.Accept()
		if err != nil {
			return
		}
		// Read the peer's hello so replies can reuse this stream.
		var hello [4]byte
		if _, err := io.ReadFull(raw, hello[:]); err != nil {
			_ = raw.Close()
			continue
		}
		peer := ProcessID(binary.LittleEndian.Uint32(hello[:]))
		c := &tcpConn{c: raw}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = raw.Close()
			return
		}
		if _, ok := n.conns[peer]; !ok {
			n.conns[peer] = c
		}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(raw)
	}
}

func (n *TCPNode) readLoop(raw net.Conn) {
	defer n.wg.Done()
	defer func() { _ = raw.Close() }()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(raw, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrame {
			return
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(raw, frame); err != nil {
			return
		}
		m, err := DecodeMessage(frame)
		if err != nil {
			return
		}
		n.mb.push(m)
	}
}
