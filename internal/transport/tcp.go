package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/bufpool"
)

// TCPNode is a Transport over real TCP sockets for multi-process
// deployments (cmd/mrpstore, cmd/dlogd). Frames are length-prefixed binary
// messages; connections are established lazily and re-dialed on failure.
type TCPNode struct {
	id ProcessID
	ln net.Listener
	mb *mailbox

	mu     sync.Mutex
	addrs  map[ProcessID]string
	conns  map[ProcessID]*tcpConn
	redial map[ProcessID]*redialState
	closed bool
	pooled bool

	dropped atomic.Uint64

	wg sync.WaitGroup
}

// redialState tracks dial backoff for one unreachable peer so a
// flapping destination cannot trigger a dial (and its 2 s timeout) per
// Send — consecutive failures push the next attempt out exponentially,
// with jitter so a restarted cluster's peers don't re-dial in lockstep.
type redialState struct {
	fails int
	until time.Time
}

const (
	redialBase = 50 * time.Millisecond
	redialMax  = 2 * time.Second
)

type tcpConn struct {
	mu   sync.Mutex // serializes writes
	c    net.Conn
	wbuf []byte // reused frame-encode buffer (coalescing writer)
}

// maxFrame bounds a single message frame (64 MB) to protect against
// corrupt length prefixes.
const maxFrame = 64 << 20

// maxRetainedBuf caps the per-connection encode buffer kept across writes;
// an occasional oversized frame (snapshot transfer) doesn't pin its memory
// on the connection forever.
const maxRetainedBuf = 1 << 20

// appendFrame appends m's length-prefixed encoding to buf.
func appendFrame(buf []byte, m *Message) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = m.AppendEncode(buf)
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(buf)-start-4))
	return buf
}

// write encodes the frames into the connection's reused buffer and writes
// them with a single syscall. Returns the write error, if any.
func (c *tcpConn) write(msgs ...Message) error {
	c.mu.Lock()
	buf := c.wbuf[:0]
	for i := range msgs {
		buf = appendFrame(buf, &msgs[i])
	}
	_, err := c.c.Write(buf)
	if cap(buf) <= maxRetainedBuf {
		c.wbuf = buf[:0]
	} else {
		c.wbuf = nil
	}
	c.mu.Unlock()
	return err
}

// ListenTCP starts a TCP transport for process id on addr
// (e.g. "127.0.0.1:7001"). Peer addresses are registered with SetPeer.
func ListenTCP(id ProcessID, addr string) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:     id,
		ln:     ln,
		mb:     newMailbox(),
		addrs:  make(map[ProcessID]string),
		conns:  make(map[ProcessID]*tcpConn),
		redial: make(map[ProcessID]*redialState),
		pooled: true,
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// SetPooling toggles pooled read blocks (on by default). With pooling
// off every inbound frame is decoded from a fresh heap buffer and no
// message carries pooled references — the pre-pool behaviour, kept as
// the comparison baseline for cmd/bench -mem. Call before traffic
// flows; the setting is read at connection setup.
func (n *TCPNode) SetPooling(on bool) {
	n.mu.Lock()
	n.pooled = on
	n.mu.Unlock()
}

// DroppedSends reports messages dropped on the send path: destination
// unknown, dial failed (or suppressed by re-dial backoff), or the
// connection broke mid-write. Exposed as transport.send.dropped via
// internal/obs — the protocols tolerate fair-lossy links, but silent
// loss should never be invisible in telemetry.
func (n *TCPNode) DroppedSends() uint64 { return n.dropped.Load() }

var _ Transport = (*TCPNode)(nil)
var _ BatchSender = (*TCPNode)(nil)

// ID returns the process id bound to this node.
func (n *TCPNode) ID() ProcessID { return n.id }

// Addr returns the listening address.
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeer registers the address of a peer process.
func (n *TCPNode) SetPeer(id ProcessID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addrs[id] = addr
}

// Recv returns the incoming message channel.
func (n *TCPNode) Recv() <-chan Message { return n.mb.out }

// Send encodes and writes m to the peer, dialing if necessary. Connection
// errors drop the cached connection so a later Send re-dials; the message
// is lost, which the protocols tolerate (fair-lossy links) — but every
// loss is counted in DroppedSends rather than vanishing silently.
func (n *TCPNode) Send(to ProcessID, m Message) error {
	m.From = n.id
	m.To = to
	conn, err := n.conn(to)
	if err != nil {
		return err
	}
	if conn == nil {
		n.dropped.Add(1)
		return nil // unknown or unreachable peer: treat as lost
	}
	if werr := conn.write(m); werr != nil {
		n.dropped.Add(1)
		n.dropConn(to, conn)
	}
	return nil
}

// SendBatch writes a staged batch of messages, coalescing consecutive
// same-destination messages — the dominant shape on the ring, where a
// drained burst forwards almost everything to the successor — into one
// frame buffer and one write syscall per run.
func (n *TCPNode) SendBatch(msgs []Message) error {
	return forEachRun(msgs, func(run []Message) error {
		to := run[0].To
		for k := range run {
			run[k].From = n.id
		}
		conn, err := n.conn(to)
		if err != nil {
			return err
		}
		if conn == nil {
			n.dropped.Add(uint64(len(run)))
			return nil
		}
		if werr := conn.write(run...); werr != nil {
			n.dropped.Add(uint64(len(run)))
			n.dropConn(to, conn)
		}
		return nil
	})
}

// Close shuts down the listener and all connections.
func (n *TCPNode) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*tcpConn, 0, len(n.conns))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	n.conns = make(map[ProcessID]*tcpConn)
	n.mu.Unlock()

	err := n.ln.Close()
	for _, c := range conns {
		_ = c.c.Close()
	}
	n.wg.Wait()
	n.mb.close()
	return err
}

// conn returns the cached connection to a peer, dialing if necessary.
// A nil, nil return means the message cannot be delivered right now
// (unknown address, peer down, or dial suppressed by backoff); callers
// count the loss in DroppedSends.
func (n *TCPNode) conn(to ProcessID) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.addrs[to]
	if !ok {
		n.mu.Unlock()
		return nil, nil
	}
	if rs := n.redial[to]; rs != nil && time.Now().Before(rs.until) {
		n.mu.Unlock()
		return nil, nil // backing off a failed peer: no dial storm
	}
	n.mu.Unlock()
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		n.dialFailed(to)
		return nil, nil // peer down: message lost
	}
	// Handshake: announce our id so the peer can map the inbound stream.
	var hello [4]byte
	binary.LittleEndian.PutUint32(hello[:], uint32(n.id))
	if _, err := raw.Write(hello[:]); err != nil {
		_ = raw.Close()
		n.dialFailed(to)
		return nil, nil
	}
	c := &tcpConn{c: raw}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = raw.Close()
		return nil, ErrClosed
	}
	delete(n.redial, to)
	if existing, ok := n.conns[to]; ok {
		n.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	n.conns[to] = c
	n.mu.Unlock()
	n.wg.Add(1)
	go n.readLoop(raw)
	return c, nil
}

// dialFailed schedules the next allowed dial attempt for a peer:
// exponential backoff from redialBase to redialMax, jittered ±50% so
// many senders to one dead peer spread their probes.
func (n *TCPNode) dialFailed(to ProcessID) {
	n.mu.Lock()
	rs := n.redial[to]
	if rs == nil {
		rs = &redialState{}
		n.redial[to] = rs
	}
	rs.fails++
	d := redialBase << min(rs.fails-1, 10)
	if d > redialMax {
		d = redialMax
	}
	jittered := d/2 + rand.N(d)
	rs.until = time.Now().Add(jittered)
	n.mu.Unlock()
}

func (n *TCPNode) dropConn(to ProcessID, c *tcpConn) {
	n.mu.Lock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	_ = c.c.Close()
}

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		raw, err := n.ln.Accept()
		if err != nil {
			return
		}
		// Read the peer's hello so replies can reuse this stream.
		var hello [4]byte
		if _, err := io.ReadFull(raw, hello[:]); err != nil {
			_ = raw.Close()
			continue
		}
		peer := ProcessID(binary.LittleEndian.Uint32(hello[:]))
		c := &tcpConn{c: raw}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = raw.Close()
			return
		}
		if _, ok := n.conns[peer]; !ok {
			n.conns[peer] = c
		}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(raw)
	}
}

// readBlockSize is the pooled block each read syscall fills. At steady
// state one read picks up a whole burst of frames (the sender coalesces
// a ring burst into one write), so the per-frame syscall and per-frame
// allocation of the naive loop both disappear.
const readBlockSize = 256 << 10

// readLoop drains one inbound connection. In pooled mode (the default)
// it reads many frames per syscall into a pooled block and decodes them
// aliasing the block's storage: each ring-kind message carries a block
// reference that its consumer releases after the burst drains, while
// other kinds — whose consumers may hold bytes indefinitely — are
// detached onto the heap immediately. A partial frame left at the end
// of a block is moved (never compacted in place — earlier frames in the
// block are still referenced) to a fresh block sized for the frame.
//
//lint:pooled
func (n *TCPNode) readLoop(raw net.Conn) {
	defer n.wg.Done()
	defer func() { _ = raw.Close() }()
	n.mu.Lock()
	pooled := n.pooled
	n.mu.Unlock()
	if !pooled {
		n.readLoopUnpooled(raw)
		return
	}

	block := bufpool.Get(readBlockSize)
	defer func() { block.Release() }()
	data := block.Bytes()
	start, end := 0, 0
	for {
		// Decode every complete frame buffered in [start, end).
		for end-start >= 4 {
			size := int(binary.LittleEndian.Uint32(data[start : start+4]))
			if size == 0 || size > maxFrame {
				return
			}
			if end-start < 4+size {
				break
			}
			m, err := DecodeMessage(data[start+4 : start+4+size])
			if err != nil {
				return
			}
			start += 4 + size
			if isRingKind(m.Kind) {
				// The pooled steady state: the message rides with a
				// block reference, released by the ring's burst drain.
				block.Retain()
				m.Block = block
			} else {
				// Client/recovery traffic may be retained indefinitely
				// by its consumer: detach from the block here.
				m.DetachAlias()
			}
			n.mb.push(m)
		}
		// Refill. If the remaining space cannot hold the next frame
		// (partial tail near the block's end, or an oversized frame),
		// move the tail to a fresh block first.
		need := 4
		if end-start >= 4 {
			need = 4 + int(binary.LittleEndian.Uint32(data[start:start+4]))
		}
		if len(data)-start < need {
			nb := bufpool.Get(max(readBlockSize, need))
			ndata := nb.Bytes()
			copy(ndata, data[start:end])
			block.Release()
			block, data = nb, ndata
			end -= start
			start = 0
		}
		nn, err := raw.Read(data[end:])
		if err != nil {
			return
		}
		end += nn
	}
}

// readLoopUnpooled is the pre-pool read path: one length-prefix read
// and one fresh heap buffer per frame. Kept as the -mem benchmark's
// baseline and for SetPooling(false) deployments.
func (n *TCPNode) readLoopUnpooled(raw net.Conn) {
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(raw, lenBuf[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrame {
			return
		}
		frame := make([]byte, size)
		if _, err := io.ReadFull(raw, frame); err != nil {
			return
		}
		m, err := DecodeMessage(frame)
		if err != nil {
			return
		}
		n.mb.push(m)
	}
}
