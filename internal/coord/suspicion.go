package coord

import (
	"amcast/internal/transport"
)

// Suspicion arbitration: failure detectors (see Detector) file per-observer
// suspicion reports here instead of calling MarkDown directly. A target is
// marked down only when a majority of its alive monitors — processes that
// share at least one ring with it — agree, which keeps one partitioned or
// freshly crashed observer from taking healthy nodes out. When every report
// against an auto-marked target is withdrawn (heartbeats resumed and the
// observers' hysteresis cleared), the target is marked up again.
//
// The paper delegates this to Zookeeper (Section 7.1: ring management is
// "handled by Zookeeper"); here the same session-expiry role is played by
// heartbeat observers arbitrated through the coordination service itself.

// Suspect files observer's suspicion of target. Idempotent; every call
// re-runs the arbitration so reports filed before a membership change still
// take effect after it.
func (s *Service) Suspect(observer, target transport.ProcessID) {
	if observer == target {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.suspicion[target]
	if set == nil {
		set = make(map[transport.ProcessID]bool)
		s.suspicion[target] = set
	}
	set[observer] = true
	s.evalSuspicionAllLocked()
}

// Unsuspect withdraws observer's suspicion of target (heartbeats resumed).
func (s *Service) Unsuspect(observer, target transport.ProcessID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if set := s.suspicion[target]; set != nil {
		delete(set, observer)
		if len(set) == 0 {
			delete(s.suspicion, target)
		}
	}
	s.evalSuspicionAllLocked()
}

// ClearObserver withdraws every report filed by observer. Called when a
// detector stops gracefully so a departing process cannot leave stale
// accusations behind.
func (s *Service) ClearObserver(observer transport.ProcessID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for target, set := range s.suspicion {
		delete(set, observer)
		if len(set) == 0 {
			delete(s.suspicion, target)
		}
	}
	s.evalSuspicionAllLocked()
}

// Suspectors returns the observers currently suspecting target (diagnostics).
func (s *Service) Suspectors(target transport.ProcessID) []transport.ProcessID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []transport.ProcessID
	for obs := range s.suspicion[target] {
		out = append(out, obs)
	}
	return out
}

// downAnywhereLocked reports whether id is marked down in some ring.
func (s *Service) downAnywhereLocked(id transport.ProcessID) bool {
	for _, st := range s.rings {
		if st.cfg.Down[id] {
			return true
		}
	}
	return false
}

// monitorsLocked returns the alive processes sharing at least one ring with
// target (the electorate for suspicion arbitration).
func (s *Service) monitorsLocked(target transport.ProcessID) map[transport.ProcessID]bool {
	monitors := make(map[transport.ProcessID]bool)
	for _, st := range s.rings {
		member := false
		for _, m := range st.cfg.Members {
			if m.ID == target {
				member = true
				break
			}
		}
		if !member {
			continue
		}
		for _, m := range st.cfg.Members {
			if m.ID != target && !st.cfg.Down[m.ID] {
				monitors[m.ID] = true
			}
		}
	}
	return monitors
}

// evalSuspicionAllLocked re-arbitrates every target with outstanding or
// recently withdrawn reports. Marking one target down shrinks the monitor
// electorate of others, so arbitration iterates toward a fixed point (with
// a safety bound against pathological oscillation).
func (s *Service) evalSuspicionAllLocked() {
	for round := 0; round < len(s.suspicion)+len(s.autoDown)+2; round++ {
		changed := false
		// Auto-down first: a crashed observer's stale reports lose weight
		// once the crash itself is agreed on.
		for target := range s.suspicion {
			if s.evalTargetLocked(target) {
				changed = true
			}
		}
		// Auto-up: targets no alive monitor suspects any more. Reports
		// from down observers are stale accusations, not evidence — if the
		// target is genuinely still dead, live detectors re-suspect it on
		// their next tick.
		for target := range s.autoDown {
			if !s.downAnywhereLocked(target) {
				delete(s.autoDown, target)
				continue
			}
			monitors := s.monitorsLocked(target)
			live := 0
			for obs := range s.suspicion[target] {
				if monitors[obs] {
					live++
				}
			}
			if live == 0 {
				delete(s.autoDown, target)
				s.setLivenessLocked(target, false)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// evalTargetLocked marks target down if a majority of its alive monitors
// suspect it. Returns true if liveness changed.
func (s *Service) evalTargetLocked(target transport.ProcessID) bool {
	if s.downAnywhereLocked(target) {
		return false // already down (auto or manual)
	}
	monitors := s.monitorsLocked(target)
	if len(monitors) == 0 {
		return false
	}
	count := 0
	for obs := range s.suspicion[target] {
		if monitors[obs] {
			count++
		}
	}
	if count < len(monitors)/2+1 {
		return false
	}
	s.autoDown[target] = true
	s.setLivenessLocked(target, true)
	return true
}
