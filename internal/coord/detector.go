package coord

import (
	"math"
	"sync"
	"time"

	"amcast/internal/transport"
)

// DetectorOptions tunes the heartbeat failure detector.
type DetectorOptions struct {
	// Interval is the heartbeat period. Default 50ms.
	Interval time.Duration
	// Phi is the φ-accrual suspicion threshold: suspect once the
	// probability that a beat is merely late drops below 10^-Phi.
	// Default 8.
	Phi float64
	// MinTimeout floors the silence before suspicion regardless of φ
	// (guards against a too-confident estimator on a quiet, regular
	// network). Default 10×Interval.
	MinTimeout time.Duration
	// MaxTimeout caps the silence: past it a peer is suspected even
	// without enough samples for a φ estimate. Default 60×Interval.
	MaxTimeout time.Duration
	// RejoinBeats is the hysteresis: consecutive beats a suspected peer
	// must deliver before the suspicion is withdrawn, so a flapping link
	// does not yo-yo the membership. Default 3.
	RejoinBeats int
	// Window is the number of inter-arrival samples kept. Default 64.
	Window int
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.Interval <= 0 {
		o.Interval = 50 * time.Millisecond
	}
	if o.Phi <= 0 {
		o.Phi = 8
	}
	if o.MinTimeout <= 0 {
		o.MinTimeout = 10 * o.Interval
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 60 * o.Interval
	}
	if o.MaxTimeout < o.MinTimeout {
		o.MaxTimeout = o.MinTimeout
	}
	if o.RejoinBeats <= 0 {
		o.RejoinBeats = 3
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	return o
}

// Detector is one process's failure detector. It heartbeats every peer it
// shares a ring with, estimates each peer's inter-arrival distribution
// (φ-accrual: suspicion accrues with silence instead of tripping a fixed
// timeout), and files suspicion reports with the coordination service,
// which arbitrates them into MarkDown/MarkUp (see suspicion.go). The
// detector never manipulates liveness directly, so a single confused
// observer cannot evict a healthy node.
type Detector struct {
	self transport.ProcessID
	svc  *Service
	tr   transport.Transport
	in   <-chan transport.Message
	opts DetectorOptions

	mu    sync.Mutex
	peers map[transport.ProcessID]*peerState

	done chan struct{}
	wg   sync.WaitGroup
}

// peerState is the detector's view of one monitored peer.
type peerState struct {
	last      time.Time // last heartbeat (or first-monitored time)
	heard     bool      // ever heard from this peer
	samples   []float64 // inter-arrival window, seconds
	idx       int
	filled    bool
	suspected bool
	beats     int // consecutive beats while suspected (hysteresis)
}

// NewDetector starts a detector for self. in must be the router's
// Heartbeats channel; tr the matching transport. The detector stops when
// in closes or Stop is called.
func NewDetector(self transport.ProcessID, svc *Service, tr transport.Transport, in <-chan transport.Message, opts DetectorOptions) *Detector {
	d := &Detector{
		self:  self,
		svc:   svc,
		tr:    tr,
		in:    in,
		opts:  opts.withDefaults(),
		peers: make(map[transport.ProcessID]*peerState),
		done:  make(chan struct{}),
	}
	d.refreshPeers(time.Now())
	d.wg.Add(2)
	go d.recvLoop()
	go d.tickLoop()
	return d
}

// Stop halts heartbeating and withdraws this observer's suspicion reports.
func (d *Detector) Stop() {
	select {
	case <-d.done:
	default:
		close(d.done)
	}
	d.wg.Wait()
	d.svc.ClearObserver(d.self)
}

// Suspects returns the peers this observer currently suspects (diagnostics).
func (d *Detector) Suspects() []transport.ProcessID {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []transport.ProcessID
	for id, ps := range d.peers {
		if ps.suspected {
			out = append(out, id)
		}
	}
	return out
}

func (d *Detector) recvLoop() {
	defer d.wg.Done()
	for {
		select {
		case m, ok := <-d.in:
			if !ok {
				return
			}
			if m.Kind == transport.KindHeartbeat {
				d.onBeat(m.From, time.Now())
			}
		case <-d.done:
			return
		}
	}
}

func (d *Detector) tickLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.done:
			return
		case now := <-t.C:
			d.refreshPeers(now)
			d.beatAndEvaluate(now)
		}
	}
}

// refreshPeers recomputes the monitored set: every co-member of every ring
// containing self, down or not (a down peer is still monitored so its
// recovery is noticed). State of peers that left all shared rings is
// dropped along with any suspicion filed against them.
func (d *Detector) refreshPeers(now time.Time) {
	want := make(map[transport.ProcessID]bool)
	for _, ringID := range d.svc.Rings() {
		cfg, ok := d.svc.Ring(ringID)
		if !ok || cfg.Roles(d.self) == 0 {
			continue
		}
		for _, m := range cfg.Members {
			if m.ID != d.self {
				want[m.ID] = true
			}
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for id := range want {
		if d.peers[id] == nil {
			d.peers[id] = &peerState{last: now}
		}
	}
	for id, ps := range d.peers {
		if !want[id] {
			if ps.suspected {
				d.svc.Unsuspect(d.self, id)
			}
			delete(d.peers, id)
		}
	}
}

// onBeat records a heartbeat arrival from peer p.
func (d *Detector) onBeat(p transport.ProcessID, now time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ps := d.peers[p]
	if ps == nil {
		return // not monitored (e.g. a client); refresh governs the set
	}
	if ps.suspected {
		// Hysteresis: withdraw only after RejoinBeats consecutive beats.
		// A beat arriving after another long silence restarts the count.
		if now.Sub(ps.last) > d.opts.MinTimeout {
			ps.beats = 1
		} else {
			ps.beats++
		}
		ps.last = now
		if ps.beats >= d.opts.RejoinBeats {
			ps.suspected = false
			ps.beats = 0
			// The silence polluted the window; restart the estimate.
			ps.samples = ps.samples[:0]
			ps.idx, ps.filled = 0, false
			d.svc.Unsuspect(d.self, p)
		}
		return
	}
	if ps.heard {
		d.record(ps, now.Sub(ps.last).Seconds())
	}
	ps.heard = true
	ps.last = now
}

func (d *Detector) record(ps *peerState, interval float64) {
	if len(ps.samples) < d.opts.Window {
		ps.samples = append(ps.samples, interval)
		return
	}
	ps.samples[ps.idx] = interval
	ps.idx = (ps.idx + 1) % d.opts.Window
	ps.filled = true
}

// beatAndEvaluate sends a heartbeat to every monitored peer and accrues
// suspicion on silence.
func (d *Detector) beatAndEvaluate(now time.Time) {
	d.mu.Lock()
	type verdict struct {
		id      transport.ProcessID
		suspect bool
	}
	targets := make([]transport.ProcessID, 0, len(d.peers))
	var verdicts []verdict
	for id, ps := range d.peers {
		targets = append(targets, id)
		if ps.suspected {
			// Re-assert: arbitration re-runs against the current monitor
			// electorate, so reports filed before a membership change
			// still count after it.
			verdicts = append(verdicts, verdict{id, true})
			continue
		}
		elapsed := now.Sub(ps.last)
		if elapsed < d.opts.MinTimeout {
			continue
		}
		if elapsed >= d.opts.MaxTimeout || d.phi(ps, elapsed) >= d.opts.Phi {
			ps.suspected = true
			ps.beats = 0
			verdicts = append(verdicts, verdict{id, true})
		}
	}
	d.mu.Unlock()

	// File reports and send beats outside d.mu: the service takes its own
	// lock, and Send may block on transport backpressure.
	for _, v := range verdicts {
		if v.suspect {
			d.svc.Suspect(d.self, v.id)
		}
	}
	for _, id := range targets {
		_ = d.tr.Send(id, transport.Message{Kind: transport.KindHeartbeat})
	}
}

// phi computes the φ-accrual suspicion level after elapsed silence, using a
// normal approximation of the inter-arrival distribution. With too few
// samples it returns 0 (MaxTimeout then provides the only bound).
func (d *Detector) phi(ps *peerState, elapsed time.Duration) float64 {
	n := len(ps.samples)
	if n < 8 {
		return 0
	}
	var sum, sq float64
	for _, s := range ps.samples {
		sum += s
		sq += s * s
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	// Clamp the deviation: a perfectly regular simulated network yields a
	// near-zero σ that would make any hiccup look infinitely suspicious.
	if floor := mean / 4; std < floor {
		std = floor
	}
	if floor := 0.001; std < floor { // 1ms
		std = floor
	}
	t := elapsed.Seconds()
	pLater := 0.5 * math.Erfc((t-mean)/(std*math.Sqrt2))
	if pLater < 1e-300 {
		pLater = 1e-300
	}
	return -math.Log10(pLater)
}
