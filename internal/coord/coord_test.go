package coord

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"amcast/internal/transport"
)

func threeAcceptorRing() []Member {
	return []Member{
		{ID: 1, Roles: RoleProposer | RoleAcceptor | RoleLearner},
		{ID: 2, Roles: RoleAcceptor},
		{ID: 3, Roles: RoleAcceptor | RoleLearner},
	}
}

func TestCreateRingAndElection(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, threeAcceptorRing()); err != nil {
		t.Fatal(err)
	}
	cfg, ok := s.Ring(1)
	if !ok {
		t.Fatal("ring 1 missing")
	}
	if cfg.Coordinator != 1 {
		t.Errorf("coordinator = %d, want 1 (first acceptor)", cfg.Coordinator)
	}
	if cfg.Majority() != 2 {
		t.Errorf("majority = %d, want 2", cfg.Majority())
	}
	if cfg.Version != 1 {
		t.Errorf("version = %d, want 1", cfg.Version)
	}
}

func TestCreateRingValidation(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, threeAcceptorRing()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRing(1, threeAcceptorRing()); err == nil {
		t.Error("duplicate ring creation should fail")
	}
	if err := s.CreateRing(2, []Member{{ID: 1, Roles: RoleLearner}}); err == nil {
		t.Error("ring without acceptors should fail")
	}
	if err := s.CreateRing(3, []Member{{ID: 1, Roles: RoleAcceptor}, {ID: 1, Roles: RoleLearner}}); err == nil {
		t.Error("duplicate member should fail")
	}
}

func TestSuccessorSkipsDown(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, threeAcceptorRing()); err != nil {
		t.Fatal(err)
	}
	cfg, _ := s.Ring(1)
	if succ, ok := cfg.Successor(1); !ok || succ != 2 {
		t.Errorf("Successor(1) = %d, %v; want 2", succ, ok)
	}
	if succ, ok := cfg.Successor(3); !ok || succ != 1 {
		t.Errorf("Successor(3) = %d, %v; want 1 (wraps)", succ, ok)
	}

	s.MarkDown(2)
	cfg, _ = s.Ring(1)
	if succ, ok := cfg.Successor(1); !ok || succ != 3 {
		t.Errorf("Successor(1) with 2 down = %d, %v; want 3", succ, ok)
	}
}

func TestCoordinatorFailover(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, threeAcceptorRing()); err != nil {
		t.Fatal(err)
	}
	s.MarkDown(1)
	cfg, _ := s.Ring(1)
	if cfg.Coordinator != 2 {
		t.Errorf("after coordinator crash, coordinator = %d, want 2", cfg.Coordinator)
	}
	if cfg.Version != 2 {
		t.Errorf("version = %d, want 2", cfg.Version)
	}
	// Still quorum over FULL acceptor set.
	if cfg.Majority() != 2 {
		t.Errorf("majority = %d, want 2", cfg.Majority())
	}

	s.MarkUp(1)
	cfg, _ = s.Ring(1)
	if cfg.Coordinator != 1 {
		t.Errorf("after recovery, coordinator = %d, want 1", cfg.Coordinator)
	}
	if !cfg.Alive(1) {
		t.Error("recovered process should be alive")
	}
}

func TestMarkDownIdempotent(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, threeAcceptorRing()); err != nil {
		t.Fatal(err)
	}
	s.MarkDown(2)
	cfg1, _ := s.Ring(1)
	s.MarkDown(2) // repeat: no version bump
	cfg2, _ := s.Ring(1)
	if cfg1.Version != cfg2.Version {
		t.Errorf("idempotent MarkDown bumped version %d -> %d", cfg1.Version, cfg2.Version)
	}
	s.MarkDown(99) // non-member: no effect
	cfg3, _ := s.Ring(1)
	if cfg3.Version != cfg2.Version {
		t.Error("MarkDown of non-member changed config")
	}
}

func TestWatchDeliversUpdates(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, threeAcceptorRing()); err != nil {
		t.Fatal(err)
	}
	ch, cancel := s.Watch(1)
	defer cancel()

	// Immediate snapshot.
	select {
	case cfg := <-ch:
		if cfg.Version != 1 {
			t.Errorf("initial version = %d, want 1", cfg.Version)
		}
	case <-time.After(time.Second):
		t.Fatal("no initial config")
	}

	s.MarkDown(1)
	select {
	case cfg := <-ch:
		if cfg.Coordinator != 2 {
			t.Errorf("watched coordinator = %d, want 2", cfg.Coordinator)
		}
	case <-time.After(time.Second):
		t.Fatal("no update after MarkDown")
	}

	cancel()
	s.MarkDown(2)
	select {
	case _, ok := <-ch:
		if ok {
			t.Error("cancelled watcher still receives updates")
		}
	case <-time.After(50 * time.Millisecond):
		// Expected: nothing delivered.
	}
}

func TestWatchOverflowKeepsNewest(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, threeAcceptorRing()); err != nil {
		t.Fatal(err)
	}
	ch, cancel := s.Watch(1)
	defer cancel()
	// Generate more updates than the channel buffers without reading.
	for i := 0; i < 50; i++ {
		s.MarkDown(2)
		s.MarkUp(2)
	}
	var last RingConfig
	for {
		select {
		case cfg := <-ch:
			last = cfg
			continue
		default:
		}
		break
	}
	if last.Version == 0 {
		t.Fatal("no config received")
	}
	cfg, _ := s.Ring(1)
	if last.Version != cfg.Version {
		t.Errorf("newest watched version = %d, want %d", last.Version, cfg.Version)
	}
}

func TestRolesAndAccessors(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(7, threeAcceptorRing()); err != nil {
		t.Fatal(err)
	}
	cfg, _ := s.Ring(7)
	if got := cfg.Roles(1); !got.Has(RoleProposer | RoleAcceptor | RoleLearner) {
		t.Errorf("Roles(1) = %v", got)
	}
	if got := cfg.Roles(99); got != 0 {
		t.Errorf("Roles(non-member) = %v, want 0", got)
	}
	if accs := cfg.Acceptors(); len(accs) != 3 {
		t.Errorf("Acceptors = %v", accs)
	}
	if ls := cfg.Learners(); len(ls) != 2 || ls[0] != 1 || ls[1] != 3 {
		t.Errorf("Learners = %v", ls)
	}
	s.MarkDown(2)
	cfg, _ = s.Ring(7)
	if alive := cfg.AliveAcceptors(); len(alive) != 2 {
		t.Errorf("AliveAcceptors = %v", alive)
	}
	if (RoleProposer | RoleLearner).String() != "PL" {
		t.Errorf("Role string = %q", (RoleProposer | RoleLearner).String())
	}
	if Role(0).String() != "-" {
		t.Errorf("zero role string = %q", Role(0).String())
	}
}

func TestRingsSorted(t *testing.T) {
	s := NewService()
	for _, id := range []transport.RingID{5, 1, 3} {
		if err := s.CreateRing(id, threeAcceptorRing()); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Rings()
	want := []transport.RingID{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rings() = %v, want %v", got, want)
		}
	}
}

func TestMeta(t *testing.T) {
	s := NewService()
	if _, ok := s.GetMeta("schema"); ok {
		t.Error("unset meta key should miss")
	}
	s.PutMeta("schema", []byte("hash:3"))
	v, ok := s.GetMeta("schema")
	if !ok || string(v) != "hash:3" {
		t.Errorf("GetMeta = %q, %v", v, ok)
	}
	// Returned slice is a copy.
	v[0] = 'X'
	v2, _ := s.GetMeta("schema")
	if string(v2) != "hash:3" {
		t.Error("GetMeta must return a copy")
	}

	ch, cancelMeta := s.WatchMeta("schema")
	defer cancelMeta()
	s.PutMeta("schema", []byte("range:4"))
	select {
	case got := <-ch:
		if string(got) != "range:4" {
			t.Errorf("watched meta = %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("meta watcher not notified")
	}
}

func TestWatchUnknownRing(t *testing.T) {
	s := NewService()
	ch, cancel := s.Watch(42)
	defer cancel()
	select {
	case <-ch:
		t.Error("watch on unknown ring delivered a config")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestWatchMetaBurstKeepsLatest hammers one meta key from many writers
// while slow watchers drain lazily: coalescing intermediate values is
// allowed, but after the dust settles every watcher must observe the
// value GetMeta reports — the reconfig flow depends on a schema watcher
// never missing the final published version. Run with -race.
func TestWatchMetaBurstKeepsLatest(t *testing.T) {
	s := NewService()
	const watchers = 4
	const writers = 8
	const perWriter = 200

	chans := make([]<-chan []byte, watchers)
	for i := range chans {
		ch, cancel := s.WatchMeta("schema")
		defer cancel()
		chans[i] = ch
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.PutMeta("schema", []byte(fmt.Sprintf("w%d-%04d", w, i)))
				if i%32 == 0 {
					runtime.Gosched()
				}
			}
		}(w)
	}
	// Slow concurrent drains keep the watcher channels saturated so the
	// drop-oldest path is exercised while writes race; each records the
	// last value it saw (delivery is FIFO, so the last received is the
	// newest delivered).
	lastSeen := make([][]byte, watchers)
	for i, ch := range chans {
		wg.Add(1)
		go func(i int, ch <-chan []byte) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				select {
				case v := <-ch:
					lastSeen[i] = v
				case <-time.After(time.Millisecond):
				}
			}
		}(i, ch)
	}
	wg.Wait()

	final, ok := s.GetMeta("schema")
	if !ok {
		t.Fatal("no meta after burst")
	}
	for i, ch := range chans {
	drain:
		for {
			select {
			case v := <-ch:
				lastSeen[i] = v
			default:
				break drain
			}
		}
		if string(lastSeen[i]) != string(final) {
			t.Errorf("watcher %d last observed %q, want final %q", i, lastSeen[i], final)
		}
	}
}

// TestWatchMetaCancel verifies a cancelled watcher stops receiving.
func TestWatchMetaCancel(t *testing.T) {
	s := NewService()
	ch, cancel := s.WatchMeta("k")
	cancel()
	s.PutMeta("k", []byte("v"))
	select {
	case v := <-ch:
		t.Errorf("cancelled watcher received %q", v)
	case <-time.After(20 * time.Millisecond):
	}
}
