package coord

import (
	"testing"
	"time"

	"amcast/internal/netem"
	"amcast/internal/transport"
)

func pal(ids ...transport.ProcessID) []Member {
	var out []Member
	for _, id := range ids {
		out = append(out, Member{ID: id, Roles: RoleProposer | RoleAcceptor | RoleLearner})
	}
	return out
}

func TestSuspicionQuorumArbitration(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, pal(1, 2, 3)); err != nil {
		t.Fatal(err)
	}

	// One accuser of three members is not a majority of the monitors {2,3}.
	s.Suspect(2, 1)
	if cfg, _ := s.Ring(1); cfg.Down[1] {
		t.Fatal("single report must not mark a process down")
	}
	// Second accuser completes the quorum.
	s.Suspect(3, 1)
	cfg, _ := s.Ring(1)
	if !cfg.Down[1] {
		t.Fatal("majority suspicion should mark the target down")
	}
	if cfg.Coordinator != 2 {
		t.Fatalf("coordinator should fail over to 2, got %d", cfg.Coordinator)
	}

	// Withdrawing all reports auto-reverts a detector-driven mark.
	s.Unsuspect(2, 1)
	s.Unsuspect(3, 1)
	cfg, _ = s.Ring(1)
	if cfg.Down[1] {
		t.Fatal("withdrawn suspicion should mark the target up again")
	}
	if cfg.Coordinator != 1 {
		t.Fatalf("coordinator should revert to 1, got %d", cfg.Coordinator)
	}
}

func TestSuspicionManualMarksSticky(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, pal(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	// A manual MarkDown (e.g. a node stepping out over a wedged WAL) must
	// not be reverted by the absence of suspicion reports.
	s.MarkDown(1)
	s.Suspect(2, 1)
	s.Unsuspect(2, 1)
	if cfg, _ := s.Ring(1); !cfg.Down[1] {
		t.Fatal("manual mark must survive suspicion churn")
	}
	s.MarkUp(1)
	if cfg, _ := s.Ring(1); cfg.Down[1] {
		t.Fatal("MarkUp should clear the manual mark")
	}
}

func TestSuspicionStaleAccuserCannotPin(t *testing.T) {
	s := NewService()
	if err := s.CreateRing(1, pal(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	// 2 and 3 take 1 down; then 3 goes down too, leaving its stale report.
	s.Suspect(2, 1)
	s.Suspect(3, 1)
	s.Suspect(1, 3) // stale report from the dead 1; ignored (1 is down)
	s.Suspect(2, 3)
	cfg, _ := s.Ring(1)
	if !cfg.Down[1] || !cfg.Down[3] {
		t.Fatalf("both 1 and 3 should be down: %v", cfg.Down)
	}
	// 1 recovers; only the live monitor 2 matters for auto-up.
	s.Unsuspect(2, 1)
	cfg, _ = s.Ring(1)
	if cfg.Down[1] {
		t.Fatal("stale report from down observer 3 must not pin 1 down")
	}
}

// detProc is one detector-equipped process in an end-to-end test.
type detProc struct {
	id  transport.ProcessID
	tr  transport.Transport
	rt  *transport.Router
	det *Detector
}

func startDet(net *transport.Network, svc *Service, id transport.ProcessID, opts DetectorOptions) *detProc {
	tr := net.Attach(id, netem.SiteLocal)
	rt := transport.NewRouter(tr)
	det := NewDetector(id, svc, tr, rt.Heartbeats(), opts)
	return &detProc{id: id, tr: tr, rt: rt, det: det}
}

func waitDown(t *testing.T, svc *Service, ring transport.RingID, id transport.ProcessID, want bool, d time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(d)
	for time.Now().Before(deadline) {
		cfg, _ := svc.Ring(ring)
		if cfg.Down[id] == want {
			return time.Since(start)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("process %d did not reach down=%v within %v", id, want, d)
	return 0
}

func TestDetectorEndToEndCrashAndRejoin(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := NewService()
	if err := svc.CreateRing(1, pal(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	opts := DetectorOptions{
		Interval:   10 * time.Millisecond,
		MinTimeout: 80 * time.Millisecond,
		MaxTimeout: 500 * time.Millisecond,
	}
	procs := make(map[transport.ProcessID]*detProc)
	for _, id := range []transport.ProcessID{1, 2, 3} {
		procs[id] = startDet(net, svc, id, opts)
	}
	defer func() {
		for _, p := range procs {
			p.det.Stop()
		}
	}()

	// Let the estimators warm up; nobody should be suspected.
	time.Sleep(300 * time.Millisecond)
	if cfg, _ := svc.Ring(1); len(cfg.Down) != 0 {
		t.Fatalf("false positives during steady state: %v", cfg.Down)
	}

	// Hard-crash the coordinator: no MarkDown anywhere, the survivors'
	// detectors must agree on their own. Its detector keeps running —
	// a crashed process's stale accusations must not take survivors out.
	net.Detach(1)
	el := waitDown(t, svc, 1, 1, true, 3*time.Second)
	t.Logf("detection latency: %v", el)
	cfg, _ := svc.Ring(1)
	if cfg.Coordinator != 2 {
		t.Fatalf("want failover to 2, got %d", cfg.Coordinator)
	}
	if cfg.Down[2] || cfg.Down[3] {
		t.Fatalf("survivors wrongly down: %v", cfg.Down)
	}

	// Restart process 1 with no MarkUp: resumed heartbeats must clear the
	// suspicion (hysteresis) and auto-rejoin it.
	procs[1].det.Stop()
	procs[1] = startDet(net, svc, 1, opts)
	waitDown(t, svc, 1, 1, false, 3*time.Second)
	cfg, _ = svc.Ring(1)
	if cfg.Coordinator != 1 {
		t.Fatalf("want coordinator back to 1 after rejoin, got %d", cfg.Coordinator)
	}
}

func TestDetectorAsymmetricCutNoQuorumNoEviction(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := NewService()
	if err := svc.CreateRing(1, pal(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	opts := DetectorOptions{
		Interval:   10 * time.Millisecond,
		MinTimeout: 80 * time.Millisecond,
		MaxTimeout: 400 * time.Millisecond,
	}
	var procs []*detProc
	for _, id := range []transport.ProcessID{1, 2, 3} {
		procs = append(procs, startDet(net, svc, id, opts))
	}
	defer func() {
		for _, p := range procs {
			p.det.Stop()
		}
	}()

	// Sever only the 1↔2 links: each of 1 and 2 suspects the other, but
	// neither accusation reaches a majority of monitors (3 hears both).
	net.Faults().CutBoth(1, 2)
	time.Sleep(600 * time.Millisecond)
	if cfg, _ := svc.Ring(1); len(cfg.Down) != 0 {
		t.Fatalf("partial cut must not evict anyone: %v", cfg.Down)
	}
	// Heal; the pairwise suspicion drains without membership churn.
	net.Faults().HealAll()
	time.Sleep(300 * time.Millisecond)
	if cfg, _ := svc.Ring(1); len(cfg.Down) != 0 {
		t.Fatalf("membership churned after heal: %v", cfg.Down)
	}
}
