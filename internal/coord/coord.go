// Package coord is the coordination service the protocols rely on for ring
// configuration, coordinator election and shared metadata — the role
// Zookeeper plays in the paper's implementation (Section 7.1: "Automatic
// ring management and configuration management is handled by Zookeeper").
//
// The service keeps, per ring, an ordered member list with roles and a
// liveness view. The ring overlay follows member order, skipping processes
// marked down; the coordinator is always the first alive acceptor. Every
// mutation bumps the ring's configuration version and notifies watchers,
// which is how processes learn about re-elections and overlay changes.
//
// A small key-value area (PutMeta/GetMeta) stores service metadata such as
// the MRP-Store partitioning schema, mirroring how the paper stores the
// partitioning schema in Zookeeper (Section 7.2).
package coord

import (
	"fmt"
	"sort"
	"sync"

	"amcast/internal/transport"
)

// Role is a bitmask of Ring Paxos roles a process plays in a ring.
type Role uint8

// Process roles within a ring (a process may hold several).
const (
	RoleProposer Role = 1 << iota
	RoleAcceptor
	RoleLearner
)

// Has reports whether r includes all roles in mask.
func (r Role) Has(mask Role) bool { return r&mask == mask }

func (r Role) String() string {
	s := ""
	if r.Has(RoleProposer) {
		s += "P"
	}
	if r.Has(RoleAcceptor) {
		s += "A"
	}
	if r.Has(RoleLearner) {
		s += "L"
	}
	if s == "" {
		return "-"
	}
	return s
}

// Member is one process in a ring, with its roles.
type Member struct {
	ID    transport.ProcessID
	Roles Role
}

// RingConfig is an immutable snapshot of a ring's configuration.
type RingConfig struct {
	Ring    transport.RingID
	Version uint64
	// Members in ring-overlay order (the unidirectional ring follows
	// this order, wrapping around).
	Members []Member
	// Down holds members currently considered crashed.
	Down map[transport.ProcessID]bool
	// Coordinator is the first alive acceptor, or 0 if none.
	Coordinator transport.ProcessID
}

// Alive reports whether id is a member and not marked down.
func (c RingConfig) Alive(id transport.ProcessID) bool {
	if c.Down[id] {
		return false
	}
	for _, m := range c.Members {
		if m.ID == id {
			return true
		}
	}
	return false
}

// Roles returns the roles of a member (0 if not a member).
func (c RingConfig) Roles(id transport.ProcessID) Role {
	for _, m := range c.Members {
		if m.ID == id {
			return m.Roles
		}
	}
	return 0
}

// Successor returns the next alive member after id in ring order. If id is
// not a member, returns the first alive member. ok=false when no other
// alive member exists.
func (c RingConfig) Successor(id transport.ProcessID) (transport.ProcessID, bool) {
	n := len(c.Members)
	if n == 0 {
		return 0, false
	}
	start := -1
	for i, m := range c.Members {
		if m.ID == id {
			start = i
			break
		}
	}
	for off := 1; off <= n; off++ {
		m := c.Members[(start+off+n)%n]
		if m.ID != id && !c.Down[m.ID] {
			return m.ID, true
		}
	}
	return 0, false
}

// Acceptors returns the IDs of all acceptors (alive or not) in ring order.
// Quorums are computed over the full acceptor set, so a majority remains a
// majority across crashes.
func (c RingConfig) Acceptors() []transport.ProcessID {
	var out []transport.ProcessID
	for _, m := range c.Members {
		if m.Roles.Has(RoleAcceptor) {
			out = append(out, m.ID)
		}
	}
	return out
}

// AliveAcceptors returns the alive acceptors in ring order.
func (c RingConfig) AliveAcceptors() []transport.ProcessID {
	var out []transport.ProcessID
	for _, m := range c.Members {
		if m.Roles.Has(RoleAcceptor) && !c.Down[m.ID] {
			out = append(out, m.ID)
		}
	}
	return out
}

// Learners returns all learner IDs in ring order.
func (c RingConfig) Learners() []transport.ProcessID {
	var out []transport.ProcessID
	for _, m := range c.Members {
		if m.Roles.Has(RoleLearner) {
			out = append(out, m.ID)
		}
	}
	return out
}

// Majority returns the quorum size over the full acceptor set.
func (c RingConfig) Majority() int {
	return len(c.Acceptors())/2 + 1
}

// clone deep-copies the config so watchers can't race with mutations.
func (c RingConfig) clone() RingConfig {
	out := c
	out.Members = append([]Member(nil), c.Members...)
	out.Down = make(map[transport.ProcessID]bool, len(c.Down))
	for id, d := range c.Down {
		out.Down[id] = d
	}
	return out
}

// Service is the in-process coordination registry shared by all processes
// of a deployment. It is safe for concurrent use.
type Service struct {
	mu       sync.RWMutex
	rings    map[transport.RingID]*ringState
	meta     map[string][]byte
	metaSubs map[string][]chan []byte

	// Failure-detector suspicion state (see suspicion.go): per-target set
	// of suspecting observers, and which down-marks the arbitration itself
	// issued (only those may be auto-reverted on recovery — marks placed
	// via MarkDown stay sticky until MarkUp).
	suspicion map[transport.ProcessID]map[transport.ProcessID]bool
	autoDown  map[transport.ProcessID]bool
}

type ringState struct {
	cfg      RingConfig
	watchers []chan RingConfig
}

// NewService returns an empty coordination service.
func NewService() *Service {
	return &Service{
		rings:     make(map[transport.RingID]*ringState),
		meta:      make(map[string][]byte),
		metaSubs:  make(map[string][]chan []byte),
		suspicion: make(map[transport.ProcessID]map[transport.ProcessID]bool),
		autoDown:  make(map[transport.ProcessID]bool),
	}
}

// CreateRing registers a ring with the given ordered members. The first
// alive acceptor becomes coordinator.
func (s *Service) CreateRing(ring transport.RingID, members []Member) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.rings[ring]; exists {
		return fmt.Errorf("coord: ring %d already exists", ring)
	}
	seen := make(map[transport.ProcessID]bool)
	hasAcceptor := false
	for _, m := range members {
		if seen[m.ID] {
			return fmt.Errorf("coord: duplicate member %d in ring %d", m.ID, ring)
		}
		seen[m.ID] = true
		if m.Roles.Has(RoleAcceptor) {
			hasAcceptor = true
		}
	}
	if !hasAcceptor {
		return fmt.Errorf("coord: ring %d needs at least one acceptor", ring)
	}
	cfg := RingConfig{
		Ring:    ring,
		Version: 1,
		Members: append([]Member(nil), members...),
		Down:    make(map[transport.ProcessID]bool),
	}
	cfg.Coordinator = electCoordinator(cfg)
	s.rings[ring] = &ringState{cfg: cfg}
	return nil
}

// electCoordinator picks the first alive acceptor in ring order.
func electCoordinator(cfg RingConfig) transport.ProcessID {
	for _, m := range cfg.Members {
		if m.Roles.Has(RoleAcceptor) && !cfg.Down[m.ID] {
			return m.ID
		}
	}
	return 0
}

// Ring returns the current configuration of a ring.
func (s *Service) Ring(ring transport.RingID) (RingConfig, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st, ok := s.rings[ring]
	if !ok {
		return RingConfig{}, false
	}
	return st.cfg.clone(), true
}

// Rings returns all ring IDs in ascending order.
func (s *Service) Rings() []transport.RingID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]transport.RingID, 0, len(s.rings))
	for id := range s.rings {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Watch subscribes to configuration changes of a ring. The current config
// is delivered immediately. Call the returned cancel function to stop.
func (s *Service) Watch(ring transport.RingID) (<-chan RingConfig, func()) {
	ch := make(chan RingConfig, 16)
	s.mu.Lock()
	st, ok := s.rings[ring]
	if ok {
		st.watchers = append(st.watchers, ch)
		notify(ch, st.cfg.clone())
	}
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		st, ok := s.rings[ring]
		if !ok {
			return
		}
		for i, w := range st.watchers {
			if w == ch {
				st.watchers = append(st.watchers[:i], st.watchers[i+1:]...)
				break
			}
		}
	}
	return ch, cancel
}

// notify delivers v without blocking; if the watcher is saturated the
// oldest pending update is dropped (watchers only need the newest value).
// Dropping the oldest — never the incoming value — is what guarantees a
// watcher always observes the final update of a burst: coalescing is
// allowed, losing the latest value is not.
func notify[T any](ch chan T, v T) {
	for {
		select {
		case ch <- v:
			return
		default:
			select {
			case <-ch: // drop oldest
			default:
			}
		}
	}
}

// MarkDown declares a process crashed. Every ring containing it re-elects
// its coordinator if needed and notifies watchers. A manual mark is sticky:
// the failure detector never reverts it (only MarkUp does), so a node that
// stepped out deliberately — e.g. over a wedged WAL — stays out even while
// its process keeps heartbeating.
func (s *Service) MarkDown(id transport.ProcessID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.autoDown, id)
	s.setLivenessLocked(id, true)
	s.evalSuspicionAllLocked()
}

// MarkUp declares a process recovered and re-joins it to its rings. Stale
// suspicion reports against it are discarded so observers that have not yet
// seen fresh heartbeats cannot immediately re-mark it down.
func (s *Service) MarkUp(id transport.ProcessID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.autoDown, id)
	delete(s.suspicion, id)
	s.setLivenessLocked(id, false)
	s.evalSuspicionAllLocked()
}

func (s *Service) setLivenessLocked(id transport.ProcessID, down bool) {
	for _, st := range s.rings {
		member := false
		for _, m := range st.cfg.Members {
			if m.ID == id {
				member = true
				break
			}
		}
		if !member || st.cfg.Down[id] == down {
			continue
		}
		st.cfg.Down[id] = down
		if !down {
			delete(st.cfg.Down, id)
		}
		st.cfg.Version++
		st.cfg.Coordinator = electCoordinator(st.cfg)
		cfg := st.cfg.clone()
		for _, w := range st.watchers {
			notify(w, cfg)
		}
	}
}

// PutMeta stores a metadata blob under key and notifies meta watchers.
// Saturated watchers coalesce (intermediate values of a burst may be
// dropped) but always receive the newest value: the reconfig flow depends
// on a schema watcher never missing the final published version.
func (s *Service) PutMeta(key string, value []byte) {
	cp := append([]byte(nil), value...)
	s.mu.Lock()
	// Notify under the lock so the delivery order every watcher sees
	// matches the store order: concurrent bursts then always end with the
	// value GetMeta would return. notify never blocks, so holding the
	// lock here cannot deadlock.
	s.meta[key] = cp
	for _, ch := range s.metaSubs[key] {
		notify(ch, cp)
	}
	s.mu.Unlock()
}

// GetMeta returns the metadata stored under key.
func (s *Service) GetMeta(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.meta[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// WatchMeta subscribes to updates of a metadata key. Bursts of updates
// may coalesce on a slow watcher, but the newest value is always
// delivered. Call the returned cancel function to unsubscribe.
func (s *Service) WatchMeta(key string) (<-chan []byte, func()) {
	ch := make(chan []byte, 4)
	s.mu.Lock()
	s.metaSubs[key] = append(s.metaSubs[key], ch)
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		subs := s.metaSubs[key]
		for i, w := range subs {
			if w == ch {
				s.metaSubs[key] = append(subs[:i], subs[i+1:]...)
				break
			}
		}
	}
	return ch, cancel
}
