package baseline

import (
	"sync"
	"time"

	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// SingleNodeConfig configures the MySQL-like comparator.
type SingleNodeConfig struct {
	// Net is the shared emulated network.
	Net *transport.Network
	// ServiceTime is per-operation server cost (single service queue).
	ServiceTime time.Duration
	// WAL, if non-nil, receives every write (wrap a SimDisk for device
	// timing; MySQL with an async-flushed redo log by default).
	WAL storage.Log
	// ID is the server's process id.
	ID transport.ProcessID
}

// SingleNode models MySQL in the paper's Figure 4: one strongly consistent
// server, no replication, every operation through one service queue.
type SingleNode struct {
	cfg   SingleNodeConfig
	tr    transport.Transport
	clock serviceClock

	mu     sync.Mutex
	db     *store.SM
	walSeq uint64

	done     chan struct{}
	loopDone chan struct{}
}

// StartSingleNode boots the server.
func StartSingleNode(cfg SingleNodeConfig) (*SingleNode, error) {
	if cfg.ServiceTime == 0 {
		cfg.ServiceTime = 25 * time.Microsecond
	}
	if cfg.ID == 0 {
		cfg.ID = 31000
	}
	s := &SingleNode{
		cfg:      cfg,
		db:       store.NewSM(),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	tr, router := attach(cfg.Net, cfg.ID, netem.SiteLocal)
	s.tr = tr
	go s.loop(router.Service())
	return s, nil
}

// ID returns the server's process id.
func (s *SingleNode) ID() transport.ProcessID { return s.cfg.ID }

// Stop halts the server.
func (s *SingleNode) Stop() {
	close(s.done)
	<-s.loopDone
	_ = s.tr.Close()
}

func (s *SingleNode) loop(service <-chan transport.Message) {
	defer close(s.loopDone)
	for {
		select {
		case <-s.done:
			return
		case m, ok := <-service:
			if !ok {
				return
			}
			if m.Kind != transport.KindCommand {
				continue
			}
			op, err := store.DecodeOp(m.Payload)
			if err != nil {
				continue
			}
			s.mu.Lock()
			raw := s.db.Execute(0, m.Payload)
			if s.cfg.WAL != nil {
				switch op.Kind {
				case store.OpUpdate, store.OpInsert, store.OpDelete:
					s.walSeq++
					_ = s.cfg.WAL.Put(s.walSeq, m.Payload)
				}
			}
			s.mu.Unlock()
			// One service queue models the single server's capacity;
			// replies are deferred so the accept loop keeps draining.
			wait := s.clock.occupy(s.cfg.ServiceTime)
			from, seq := m.From, m.Seq
			go func() {
				if wait > 0 {
					time.Sleep(wait)
				}
				_ = s.tr.Send(from, transport.Message{
					Kind: transport.KindResponse, Seq: seq, Payload: raw,
				})
			}()
		}
	}
}

// SingleNodeClient is a client of the MySQL model.
type SingleNodeClient struct {
	s   *SingleNode
	rpc *rpcClient
	// Timeout per operation.
	Timeout time.Duration
}

// NewClient attaches a client process.
func (s *SingleNode) NewClient(id transport.ProcessID) *SingleNodeClient {
	tr, router := attach(s.cfg.Net, id, netem.SiteLocal)
	return &SingleNodeClient{s: s, rpc: newRPCClient(tr, router.Service()), Timeout: 10 * time.Second}
}

// Do executes one operation (scans included: single node holds all data).
func (c *SingleNodeClient) Do(op store.Op) (store.Result, error) {
	raw, err := c.rpc.call(c.s.ID(), op.Encode(), c.Timeout)
	if err != nil {
		return store.Result{}, err
	}
	return store.DecodeResult(raw)
}

// Close releases the client.
func (c *SingleNodeClient) Close() { c.rpc.close() }
