package baseline

import (
	"sync"
	"time"

	"amcast/internal/netem"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// EventualConfig configures the Cassandra-like store.
type EventualConfig struct {
	// Net is the shared emulated network.
	Net *transport.Network
	// Partitions and ReplicationFactor define the layout (Figure 4 uses
	// 3 partitions with replication factor 3).
	Partitions        int
	ReplicationFactor int
	// WriteServiceTime and ReadServiceTime model per-operation server
	// cost (defaults calibrated in EXPERIMENTS.md).
	WriteServiceTime time.Duration
	ReadServiceTime  time.Duration
	// ScanPerRow models Cassandra's expensive range scans: added server
	// time per row returned.
	ScanPerRow time.Duration
	// BaseID is the first process id used by servers.
	BaseID transport.ProcessID
}

// EventualStore is the Cassandra model: per-partition replica groups,
// write-one/read-one consistency, asynchronous replication, no ordering.
type EventualStore struct {
	cfg     EventualConfig
	schema  store.Schema
	servers []*eventualServer
}

type eventualServer struct {
	id        transport.ProcessID
	partition int
	replicas  []transport.ProcessID // peers of the same partition
	tr        transport.Transport
	clock     serviceClock
	cfg       *EventualConfig

	mu sync.Mutex
	db *store.SM // reuse the KV state machine as the local table

	done     chan struct{}
	loopDone chan struct{}
}

// StartEventual boots the Cassandra-like cluster.
func StartEventual(cfg EventualConfig) (*EventualStore, error) {
	if cfg.Partitions == 0 {
		cfg.Partitions = 3
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = 3
	}
	if cfg.WriteServiceTime == 0 {
		cfg.WriteServiceTime = 15 * time.Microsecond
	}
	if cfg.ReadServiceTime == 0 {
		cfg.ReadServiceTime = 12 * time.Microsecond
	}
	if cfg.ScanPerRow == 0 {
		cfg.ScanPerRow = 25 * time.Microsecond
	}
	if cfg.BaseID == 0 {
		cfg.BaseID = 30000
	}
	// Partition p's groups use ring ids 1..P so store.Schema routing
	// works unchanged; servers are plain processes (no rings involved).
	groups := make([]transport.RingID, cfg.Partitions)
	for i := range groups {
		groups[i] = transport.RingID(i + 1)
	}
	s := &EventualStore{cfg: cfg, schema: store.HashSchema(groups, 0)}
	for p := 0; p < cfg.Partitions; p++ {
		var ids []transport.ProcessID
		for r := 0; r < cfg.ReplicationFactor; r++ {
			ids = append(ids, cfg.BaseID+transport.ProcessID(p*10+r))
		}
		for r, id := range ids {
			srv := &eventualServer{
				id:        id,
				partition: p,
				cfg:       &cfg,
				db:        store.NewSM(),
				done:      make(chan struct{}),
				loopDone:  make(chan struct{}),
			}
			for rr, peer := range ids {
				if rr != r {
					srv.replicas = append(srv.replicas, peer)
				}
			}
			tr, router := attach(cfg.Net, id, netem.SiteLocal)
			srv.tr = tr
			go srv.loop(router.Service())
			s.servers = append(s.servers, srv)
		}
	}
	return s, nil
}

// Coordinator returns the server a client should contact for a key (the
// first replica of the owning partition).
func (s *EventualStore) Coordinator(key string) transport.ProcessID {
	g := int(s.schema.PartitionOf(key)) - 1
	return s.cfg.BaseID + transport.ProcessID(g*10)
}

// Coordinators returns one coordinator per partition (for scatter-gather).
func (s *EventualStore) Coordinators() []transport.ProcessID {
	out := make([]transport.ProcessID, s.cfg.Partitions)
	for p := range out {
		out[p] = s.cfg.BaseID + transport.ProcessID(p*10)
	}
	return out
}

// Stop halts all servers.
func (s *EventualStore) Stop() {
	for _, srv := range s.servers {
		close(srv.done)
		<-srv.loopDone
		_ = srv.tr.Close()
	}
}

func (srv *eventualServer) loop(service <-chan transport.Message) {
	defer close(srv.loopDone)
	for {
		select {
		case <-srv.done:
			return
		case m, ok := <-service:
			if !ok {
				return
			}
			if m.Kind != transport.KindCommand {
				continue
			}
			srv.handle(m)
		}
	}
}

func (srv *eventualServer) handle(m transport.Message) {
	op, err := store.DecodeOp(m.Payload)
	if err != nil {
		return
	}
	cost := srv.cfg.ReadServiceTime
	switch op.Kind {
	case store.OpUpdate, store.OpInsert, store.OpDelete:
		cost = srv.cfg.WriteServiceTime
	}
	srv.mu.Lock()
	raw := srv.db.Execute(0, m.Payload)
	srv.mu.Unlock()
	if op.Kind == store.OpScan {
		if res, err := store.DecodeResult(raw); err == nil {
			cost += time.Duration(len(res.Entries)) * srv.cfg.ScanPerRow
		}
	}
	// Replication message (Seq 0): apply only, no reply, no fan-out.
	if m.Seq == 0 {
		return
	}
	// Asynchronous replication to the partition peers (consistency ONE:
	// reply before peers apply).
	for _, peer := range srv.replicas {
		_ = srv.tr.Send(peer, transport.Message{Kind: transport.KindCommand, Seq: 0, Payload: m.Payload})
	}
	// The service clock serializes server capacity; the reply is deferred
	// without blocking the accept loop (requests overlap, as in a real
	// threaded server).
	wait := srv.clock.occupy(cost)
	go func() {
		if wait > 0 {
			time.Sleep(wait)
		}
		_ = srv.tr.Send(m.From, transport.Message{Kind: transport.KindResponse, Seq: m.Seq, Payload: raw})
	}()
}

// EventualClient is a client of the Cassandra model.
type EventualClient struct {
	s   *EventualStore
	rpc *rpcClient
	// Timeout per operation.
	Timeout time.Duration
}

// NewClient attaches a client process.
func (s *EventualStore) NewClient(id transport.ProcessID) *EventualClient {
	tr, router := attach(s.cfg.Net, id, netem.SiteLocal)
	return &EventualClient{
		s:       s,
		rpc:     newRPCClient(tr, router.Service()),
		Timeout: 10 * time.Second,
	}
}

// Do executes one single-key operation (read/update/insert/delete).
func (c *EventualClient) Do(op store.Op) (store.Result, error) {
	raw, err := c.rpc.call(c.s.Coordinator(op.Key), op.Encode(), c.Timeout)
	if err != nil {
		return store.Result{}, err
	}
	return store.DecodeResult(raw)
}

// Scan scatter-gathers a range over every partition coordinator.
func (c *EventualClient) Scan(lo, hi string) ([]store.Entry, error) {
	op := store.Op{Kind: store.OpScan, Key: lo, KeyHi: hi}
	var all []store.Entry
	for _, coordID := range c.s.Coordinators() {
		raw, err := c.rpc.call(coordID, op.Encode(), c.Timeout)
		if err != nil {
			return nil, err
		}
		res, err := store.DecodeResult(raw)
		if err != nil {
			return nil, err
		}
		all = append(all, res.Entries...)
	}
	return all, nil
}

// Close releases the client.
func (c *EventualClient) Close() { c.rpc.close() }
