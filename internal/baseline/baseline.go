// Package baseline implements simplified models of the comparator systems
// in the paper's evaluation — Apache Cassandra (Figure 4), MySQL
// (Figure 4) and Apache Bookkeeper (Figure 5) — as real request/response
// servers over the same emulated network the Multi-Ring Paxos systems use.
//
// Each model captures the structural property that drives its figure:
//
//   - EventualStore (Cassandra): no ordering on any request; writes are
//     acknowledged after one replica applies them and replicate
//     asynchronously (consistency ONE), so it outruns every ordered
//     system — except on range scans, which scatter-gather with a
//     per-row cost (workload E's reversal).
//   - SingleNode (MySQL): strongly consistent but a single server; all
//     operations serialize through one service queue.
//   - BookLog (Bookkeeper): quorum-replicated synchronous log whose
//     aggressive time-based batching maximizes disk utilization at the
//     cost of added latency (Figure 5's latency gap).
//
// Absolute service times are calibrated constants (documented in
// EXPERIMENTS.md); the figures' shapes come from the structure above.
package baseline

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/netem"
	"amcast/internal/transport"
)

// serviceClock serializes a server's CPU: each operation occupies the
// server for a service time; callers observe queueing delay under load,
// which produces realistic saturation curves.
type serviceClock struct {
	mu     sync.Mutex
	busyAt time.Time
}

// occupy reserves d of server time and returns how long the caller waits.
func (c *serviceClock) occupy(d time.Duration) time.Duration {
	now := time.Now()
	c.mu.Lock()
	start := now
	if c.busyAt.After(start) {
		start = c.busyAt
	}
	done := start.Add(d)
	c.busyAt = done
	c.mu.Unlock()
	return done.Sub(now)
}

// rpcClient matches responses to requests over a Router's service channel.
type rpcClient struct {
	tr transport.Transport

	mu      sync.Mutex
	pending map[uint64]chan transport.Message
	seq     atomic.Uint64

	done     chan struct{}
	loopDone chan struct{}
	once     sync.Once
}

func newRPCClient(tr transport.Transport, service <-chan transport.Message) *rpcClient {
	c := &rpcClient{
		tr:       tr,
		pending:  make(map[uint64]chan transport.Message),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go func() {
		defer close(c.loopDone)
		for {
			select {
			case <-c.done:
				return
			case m, ok := <-service:
				if !ok {
					return
				}
				if m.Kind != transport.KindResponse {
					continue
				}
				c.mu.Lock()
				ch := c.pending[m.Seq]
				c.mu.Unlock()
				if ch != nil {
					select {
					case ch <- m:
					default:
					}
				}
			}
		}
	}()
	return c
}

// errTimeout reports an unanswered baseline request.
var errTimeout = errors.New("baseline: request timed out")

// call sends payload to server and waits for the response.
func (c *rpcClient) call(server transport.ProcessID, payload []byte, timeout time.Duration) ([]byte, error) {
	seq := c.seq.Add(1)
	ch := make(chan transport.Message, 1)
	c.mu.Lock()
	c.pending[seq] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
	}()
	if err := c.tr.Send(server, transport.Message{
		Kind:    transport.KindCommand,
		Seq:     seq,
		Payload: payload,
	}); err != nil {
		return nil, err
	}
	select {
	case m := <-ch:
		return m.Payload, nil
	case <-time.After(timeout):
		return nil, errTimeout
	case <-c.done:
		return nil, errTimeout
	}
}

func (c *rpcClient) close() {
	c.once.Do(func() {
		close(c.done)
		<-c.loopDone
	})
}

// attach wires a fresh process into the network and returns its transport
// and router.
func attach(net *transport.Network, id transport.ProcessID, site netem.Site) (transport.Transport, *transport.Router) {
	tr := net.Attach(id, site)
	return tr, transport.NewRouter(tr)
}
