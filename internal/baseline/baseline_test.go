package baseline

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"amcast/internal/store"
	"amcast/internal/transport"
)

func TestEventualStoreBasic(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	s, err := StartEventual(EventualConfig{Net: net, Partitions: 3, ReplicationFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	c := s.NewClient(40001)
	defer c.Close()

	res, err := c.Do(store.Op{Kind: store.OpInsert, Key: "k1", Value: []byte("v1")})
	if err != nil || res.Status != store.StatusOK {
		t.Fatalf("insert = %+v, %v", res, err)
	}
	res, err = c.Do(store.Op{Kind: store.OpRead, Key: "k1"})
	if err != nil || res.Status != store.StatusOK || string(res.Entries[0].Value) != "v1" {
		t.Fatalf("read = %+v, %v", res, err)
	}
	res, err = c.Do(store.Op{Kind: store.OpUpdate, Key: "k1", Value: []byte("v2")})
	if err != nil || res.Status != store.StatusOK {
		t.Fatalf("update = %+v, %v", res, err)
	}
	res, err = c.Do(store.Op{Kind: store.OpDelete, Key: "k1"})
	if err != nil || res.Status != store.StatusOK {
		t.Fatalf("delete = %+v, %v", res, err)
	}
}

func TestEventualScanScatterGather(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	s, err := StartEventual(EventualConfig{Net: net, Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	c := s.NewClient(40002)
	defer c.Close()
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key%02d", i)
		if _, err := c.Do(store.Op{Kind: store.OpInsert, Key: k, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.Scan("key00", "key99")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Fatalf("scan = %d entries, want 20", len(entries))
	}
}

func TestEventualConcurrent(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	s, err := StartEventual(EventualConfig{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		c := s.NewClient(transport.ProcessID(40100 + w))
		defer c.Close()
		wg.Add(1)
		go func(w int, c *EventualClient) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("w%d-%d", w, i)
				if _, err := c.Do(store.Op{Kind: store.OpInsert, Key: k, Value: []byte("v")}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w, c)
	}
	wg.Wait()
}

func TestSingleNodeBasic(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	s, err := StartSingleNode(SingleNodeConfig{Net: net})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	c := s.NewClient(41001)
	defer c.Close()

	if res, err := c.Do(store.Op{Kind: store.OpInsert, Key: "a", Value: []byte("1")}); err != nil || res.Status != store.StatusOK {
		t.Fatalf("insert = %+v, %v", res, err)
	}
	res, err := c.Do(store.Op{Kind: store.OpScan, Key: "a", KeyHi: "z"})
	if err != nil || len(res.Entries) != 1 {
		t.Fatalf("scan = %+v, %v", res, err)
	}
}

func TestSingleNodeSerializes(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	s, err := StartSingleNode(SingleNodeConfig{Net: net, ServiceTime: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// 10 concurrent ops at 2ms service time must take >= ~20ms total.
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < 10; w++ {
		c := s.NewClient(transport.ProcessID(41100 + w))
		defer c.Close()
		wg.Add(1)
		go func(w int, c *SingleNodeClient) {
			defer wg.Done()
			if _, err := c.Do(store.Op{Kind: store.OpInsert, Key: fmt.Sprintf("k%d", w), Value: []byte("v")}); err != nil {
				t.Errorf("do: %v", err)
			}
		}(w, c)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("10 ops at 2ms service finished in %v; queue not serializing", elapsed)
	}
}

func TestBookLogAppend(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	b, err := StartBookLog(BookLogConfig{Net: net, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	c := b.NewClient(42001)
	defer c.Close()

	p0, err := c.Append([]byte("entry0"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := c.Append([]byte("entry1"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 <= p0 {
		t.Errorf("positions %d, %d not increasing", p0, p1)
	}
}

func TestBookLogBatchingAddsLatency(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	b, err := StartBookLog(BookLogConfig{Net: net, FlushInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	c := b.NewClient(42002)
	defer c.Close()
	start := time.Now()
	if _, err := c.Append([]byte("e")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("append latency %v; batching window not applied", elapsed)
	}
}

func TestBookLogConcurrentAppendsDistinctPositions(t *testing.T) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	b, err := StartBookLog(BookLogConfig{Net: net, FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Stop()
	const writers = 5
	const per = 10
	positions := make(chan uint64, writers*per)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		c := b.NewClient(transport.ProcessID(42100 + w))
		defer c.Close()
		wg.Add(1)
		go func(c *BookClient) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p, err := c.Append([]byte("entry"))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				positions <- p
			}
		}(c)
	}
	wg.Wait()
	close(positions)
	seen := make(map[uint64]bool)
	for p := range positions {
		if seen[p] {
			t.Fatalf("position %d assigned twice", p)
		}
		seen[p] = true
	}
}
