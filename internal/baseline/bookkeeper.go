package baseline

import (
	"encoding/binary"
	"sync"
	"time"

	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// BookLogConfig configures the Bookkeeper-like log.
type BookLogConfig struct {
	// Net is the shared emulated network.
	Net *transport.Network
	// Ensemble is the number of storage nodes (paper: 3); writes are
	// acknowledged by a quorum (majority).
	Ensemble int
	// FlushInterval is the leader's batch window: entries buffer until
	// the window closes, then one synchronous quorum write commits the
	// whole batch. This is the "aggressive batching mechanism, which
	// attempts to maximize disk use by writing in large chunks" that
	// explains Bookkeeper's large latency in Figure 5.
	FlushInterval time.Duration
	// NewDisk supplies each node's journal device (default: sync HDD).
	NewDisk func() storage.Log
	// BaseID is the first process id used by nodes.
	BaseID transport.ProcessID
}

// BookLog models Apache Bookkeeper for Figure 5: a quorum-replicated
// synchronous log with time-based batch commits.
type BookLog struct {
	cfg    BookLogConfig
	leader *bookLeader
	nodes  []*bookNode
}

type pendingAppend struct {
	client transport.ProcessID
	seq    uint64
	size   int
}

type bookLeader struct {
	cfg   *BookLogConfig
	tr    transport.Transport
	disk  storage.Log
	peers []transport.ProcessID

	mu      sync.Mutex
	batch   []pendingAppend
	nextPos uint64
	acks    map[uint64]int // batch id -> follower acks
	flights map[uint64][]pendingAppend

	done     chan struct{}
	loopDone chan struct{}
}

type bookNode struct {
	tr   transport.Transport
	disk storage.Log

	done     chan struct{}
	loopDone chan struct{}
}

// StartBookLog boots the ensemble: node 0 is the leader clients talk to.
func StartBookLog(cfg BookLogConfig) (*BookLog, error) {
	if cfg.Ensemble == 0 {
		cfg.Ensemble = 3
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 20 * time.Millisecond
	}
	if cfg.NewDisk == nil {
		cfg.NewDisk = func() storage.Log {
			return storage.NewSimDisk(storage.NewMemLog(), storage.HDDSpec(), true, 1)
		}
	}
	if cfg.BaseID == 0 {
		cfg.BaseID = 32000
	}
	b := &BookLog{cfg: cfg}
	leaderID := cfg.BaseID
	var peers []transport.ProcessID
	for i := 1; i < cfg.Ensemble; i++ {
		id := cfg.BaseID + transport.ProcessID(i)
		peers = append(peers, id)
		node := &bookNode{
			disk:     cfg.NewDisk(),
			done:     make(chan struct{}),
			loopDone: make(chan struct{}),
		}
		tr, router := attach(cfg.Net, id, netem.SiteLocal)
		node.tr = tr
		go node.loop(router.Service())
		b.nodes = append(b.nodes, node)
	}
	leader := &bookLeader{
		cfg:      &cfg,
		disk:     cfg.NewDisk(),
		peers:    peers,
		acks:     make(map[uint64]int),
		flights:  make(map[uint64][]pendingAppend),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	tr, router := attach(cfg.Net, leaderID, netem.SiteLocal)
	leader.tr = tr
	go leader.loop(router.Service())
	b.leader = leader
	return b, nil
}

// LeaderID returns the process clients send appends to.
func (b *BookLog) LeaderID() transport.ProcessID { return b.cfg.BaseID }

// Stop halts the ensemble.
func (b *BookLog) Stop() {
	close(b.leader.done)
	<-b.leader.loopDone
	_ = b.leader.tr.Close()
	for _, n := range b.nodes {
		close(n.done)
		<-n.loopDone
		_ = n.tr.Close()
	}
}

func (l *bookLeader) loop(service <-chan transport.Message) {
	defer close(l.loopDone)
	flush := time.NewTicker(l.cfg.FlushInterval)
	defer flush.Stop()
	batchID := uint64(0)
	for {
		select {
		case <-l.done:
			return
		case <-flush.C:
			l.mu.Lock()
			if len(l.batch) == 0 {
				l.mu.Unlock()
				continue
			}
			batchID++
			entries := l.batch
			l.batch = nil
			l.flights[batchID] = entries
			l.acks[batchID] = 1 // the leader's own journal write below
			l.mu.Unlock()

			// One large synchronous chunk to the local journal.
			size := 0
			for _, e := range entries {
				size += e.size
			}
			_ = l.disk.Put(batchID, make([]byte, size))
			// Replicate the chunk; followers ack after their sync
			// write.
			for _, p := range l.peers {
				var hdr [8]byte
				binary.LittleEndian.PutUint64(hdr[:], batchID)
				_ = l.tr.Send(p, transport.Message{
					Kind:    transport.KindCommand,
					Seq:     batchID,
					Payload: append(hdr[:], make([]byte, size)...),
				})
			}
			l.maybeCommit(batchID)
		case m, ok := <-service:
			if !ok {
				return
			}
			switch m.Kind {
			case transport.KindCommand: // client append
				l.mu.Lock()
				l.batch = append(l.batch, pendingAppend{
					client: m.From, seq: m.Seq, size: len(m.Payload),
				})
				l.mu.Unlock()
			case transport.KindResponse: // follower ack
				l.mu.Lock()
				l.acks[m.Seq]++
				l.mu.Unlock()
				l.maybeCommit(m.Seq)
			default:
				// The bookkeeper baseline speaks only append/ack; other
				// kinds addressed to this process are stray traffic from
				// the shared transport and are dropped.
			}
		}
	}
}

// maybeCommit responds to every append of a batch once a majority of the
// ensemble has journaled it.
func (l *bookLeader) maybeCommit(batchID uint64) {
	quorum := l.cfg.Ensemble/2 + 1
	l.mu.Lock()
	if l.acks[batchID] < quorum {
		l.mu.Unlock()
		return
	}
	entries := l.flights[batchID]
	delete(l.flights, batchID)
	delete(l.acks, batchID)
	pos := l.nextPos
	l.nextPos += uint64(len(entries))
	l.mu.Unlock()
	for i, e := range entries {
		var posBuf [8]byte
		binary.LittleEndian.PutUint64(posBuf[:], pos+uint64(i))
		_ = l.tr.Send(e.client, transport.Message{
			Kind:    transport.KindResponse,
			Seq:     e.seq,
			Payload: posBuf[:],
		})
	}
}

func (n *bookNode) loop(service <-chan transport.Message) {
	defer close(n.loopDone)
	for {
		select {
		case <-n.done:
			return
		case m, ok := <-service:
			if !ok {
				return
			}
			if m.Kind != transport.KindCommand || len(m.Payload) < 8 {
				continue
			}
			batchID := binary.LittleEndian.Uint64(m.Payload[:8])
			_ = n.disk.Put(batchID, m.Payload[8:]) // synchronous journal write
			_ = n.tr.Send(m.From, transport.Message{Kind: transport.KindResponse, Seq: batchID})
		}
	}
}

// BookClient appends to the Bookkeeper model.
type BookClient struct {
	b   *BookLog
	rpc *rpcClient
	// Timeout per append.
	Timeout time.Duration
}

// NewClient attaches a client process.
func (b *BookLog) NewClient(id transport.ProcessID) *BookClient {
	tr, router := attach(b.cfg.Net, id, netem.SiteLocal)
	return &BookClient{b: b, rpc: newRPCClient(tr, router.Service()), Timeout: 30 * time.Second}
}

// Append adds an entry and returns its position.
func (c *BookClient) Append(v []byte) (uint64, error) {
	raw, err := c.rpc.call(c.b.LeaderID(), v, c.Timeout)
	if err != nil {
		return 0, err
	}
	if len(raw) < 8 {
		return 0, errTimeout
	}
	return binary.LittleEndian.Uint64(raw), nil
}

// Close releases the client.
func (c *BookClient) Close() { c.rpc.close() }
