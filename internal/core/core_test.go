package core

import (
	"fmt"
	"testing"
	"time"

	"amcast/internal/coord"
	"amcast/internal/netem"
	"amcast/internal/transport"
)

// deployment builds a Multi-Ring Paxos deployment for tests: a set of
// rings, each with the given members, all over one in-process network.
type deployment struct {
	t     *testing.T
	net   *transport.Network
	svc   *coord.Service
	nodes map[transport.ProcessID]*Node
	chans map[transport.ProcessID]chan Delivery
}

// newDeployment creates nodes 1..n. ringsOf maps each ring to the member
// processes participating with full roles (proposer+acceptor+learner).
func newDeployment(t *testing.T, n int, ringsOf map[transport.RingID][]transport.ProcessID, tweak func(*Config)) *deployment {
	t.Helper()
	d := &deployment{
		t:     t,
		net:   transport.NewNetwork(nil),
		svc:   coord.NewService(),
		nodes: make(map[transport.ProcessID]*Node),
		chans: make(map[transport.ProcessID]chan Delivery),
	}
	for ringID, members := range ringsOf {
		var ms []coord.Member
		for _, id := range members {
			ms = append(ms, coord.Member{ID: id, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner})
		}
		if err := d.svc.CreateRing(ringID, ms); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= n; i++ {
		id := transport.ProcessID(i)
		router := transport.NewRouter(d.net.Attach(id, netem.SiteLocal))
		cfg := Config{
			Self:   id,
			Router: router,
			Coord:  d.svc,
			Ring:   RingOptions{RetryInterval: 30 * time.Millisecond},
		}
		if tweak != nil {
			tweak(&cfg)
		}
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.nodes[id] = node
		d.chans[id] = make(chan Delivery, 4096)
	}
	t.Cleanup(func() {
		for _, n := range d.nodes {
			n.Stop()
		}
		d.net.Close()
	})
	return d
}

// joinAll joins node id to the given rings and subscribes to subs with a
// handler that forwards into the node's test channel.
func (d *deployment) joinAll(id transport.ProcessID, rings []transport.RingID, subs []transport.RingID) {
	d.t.Helper()
	for _, r := range rings {
		if err := d.nodes[id].Join(r); err != nil {
			d.t.Fatalf("node %d join ring %d: %v", id, r, err)
		}
	}
	if len(subs) > 0 {
		ch := d.chans[id]
		if err := d.nodes[id].Subscribe(func(dd Delivery) { ch <- dd }, subs...); err != nil {
			d.t.Fatalf("node %d subscribe: %v", id, err)
		}
	}
}

func (d *deployment) collect(id transport.ProcessID, count int, timeout time.Duration) []Delivery {
	d.t.Helper()
	var out []Delivery
	deadline := time.After(timeout)
	for len(out) < count {
		select {
		case dd := <-d.chans[id]:
			out = append(out, dd)
		case <-deadline:
			d.t.Fatalf("node %d timed out at %d/%d deliveries", id, len(out), count)
		}
	}
	return out
}

func TestSingleGroupMulticast(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, nil)
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1}, []transport.RingID{1})
	}
	if err := d.nodes[1].Multicast(1, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		ds := d.collect(transport.ProcessID(i), 1, 5*time.Second)
		if string(ds[0].Data) != "m1" || ds[0].Group != 1 {
			t.Errorf("node %d delivered %+v", i, ds[0])
		}
	}
}

func TestMulticastFromNonMember(t *testing.T) {
	// Node 4 is a pure client: member of no ring.
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 4, rings, nil)
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1}, []transport.RingID{1})
	}
	if err := d.nodes[4].Multicast(1, []byte("from-client")); err != nil {
		t.Fatal(err)
	}
	ds := d.collect(1, 1, 5*time.Second)
	if string(ds[0].Data) != "from-client" {
		t.Errorf("delivered %q", ds[0].Data)
	}
	if err := d.nodes[4].Multicast(99, nil); err == nil {
		t.Error("multicast to unknown group should fail")
	}
}

// TestDeterministicMergeSameOrder is the core atomic multicast property:
// learners subscribed to the same two groups deliver the same global
// sequence, even with concurrent proposers on both groups.
func TestDeterministicMergeSameOrder(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1, 2, 3},
		2: {1, 2, 3},
	}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.Ring.SkipEnabled = true
		cfg.Ring.Delta = 5 * time.Millisecond
		cfg.Ring.Lambda = 2000
	})
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1, 2}, []transport.RingID{1, 2})
	}
	const perGroup = 100
	go func() {
		for i := 0; i < perGroup; i++ {
			_ = d.nodes[1].Multicast(1, []byte(fmt.Sprintf("g1-%d", i)))
		}
	}()
	go func() {
		for i := 0; i < perGroup; i++ {
			_ = d.nodes[2].Multicast(2, []byte(fmt.Sprintf("g2-%d", i)))
		}
	}()
	seq1 := d.collect(1, 2*perGroup, 30*time.Second)
	seq2 := d.collect(2, 2*perGroup, 30*time.Second)
	seq3 := d.collect(3, 2*perGroup, 30*time.Second)
	for i := range seq1 {
		if string(seq1[i].Data) != string(seq2[i].Data) || string(seq1[i].Data) != string(seq3[i].Data) {
			t.Fatalf("merge order diverges at %d: %q vs %q vs %q",
				i, seq1[i].Data, seq2[i].Data, seq3[i].Data)
		}
		if seq1[i].Group != seq2[i].Group || seq1[i].Instance != seq2[i].Instance {
			t.Fatalf("merge metadata diverges at %d", i)
		}
	}
}

// TestPartialSubscription mirrors Figure 2(c): learners L1, L2 subscribe to
// rings 1 and 2; learner L3 subscribes to ring 2 only. L3 must deliver all
// of ring 2's messages in ring-2 order without needing ring 1 at all.
func TestPartialSubscription(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1, 2},
		2: {1, 2, 3},
	}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.Ring.SkipEnabled = true
		cfg.Ring.Delta = 5 * time.Millisecond
		cfg.Ring.Lambda = 2000
	})
	d.joinAll(1, []transport.RingID{1, 2}, []transport.RingID{1, 2})
	d.joinAll(2, []transport.RingID{1, 2}, []transport.RingID{1, 2})
	d.joinAll(3, []transport.RingID{2}, []transport.RingID{2})

	const count = 50
	for i := 0; i < count; i++ {
		if err := d.nodes[1].Multicast(1, []byte(fmt.Sprintf("r1-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := d.nodes[1].Multicast(2, []byte(fmt.Sprintf("r2-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// L3 sees only ring 2, in order.
	ds := d.collect(3, count, 20*time.Second)
	for i, dd := range ds {
		if dd.Group != 2 {
			t.Fatalf("L3 delivered from group %d", dd.Group)
		}
		if want := fmt.Sprintf("r2-%d", i); string(dd.Data) != want {
			t.Fatalf("L3 delivery %d = %q, want %q", i, dd.Data, want)
		}
	}
	// L1 and L2 see both groups in the same merged order.
	s1 := d.collect(1, 2*count, 20*time.Second)
	s2 := d.collect(2, 2*count, 20*time.Second)
	for i := range s1 {
		if string(s1[i].Data) != string(s2[i].Data) {
			t.Fatalf("L1/L2 diverge at %d: %q vs %q", i, s1[i].Data, s2[i].Data)
		}
	}
}

func TestRateLevelingUnblocksIdleGroup(t *testing.T) {
	// Group 2 is idle; without skips, subscribers of {1,2} would stall
	// after M instances of group 1.
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1, 2, 3},
		2: {1, 2, 3},
	}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.Ring.SkipEnabled = true
		cfg.Ring.Delta = 10 * time.Millisecond
		cfg.Ring.Lambda = 1000
	})
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1, 2}, []transport.RingID{1, 2})
	}
	const count = 40
	for i := 0; i < count; i++ {
		if err := d.nodes[1].Multicast(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := d.collect(2, count, 20*time.Second)
	for i, dd := range ds {
		if dd.Data[0] != byte(i) {
			t.Fatalf("delivery %d out of order", i)
		}
	}
}

func TestDeliveredVectorAdvances(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1, 2, 3},
		2: {1, 2, 3},
	}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.Ring.SkipEnabled = true
		cfg.Ring.Delta = 5 * time.Millisecond
		cfg.Ring.Lambda = 1000
	})
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1, 2}, []transport.RingID{1, 2})
	}
	for i := 0; i < 30; i++ {
		_ = d.nodes[1].Multicast(1, []byte{1})
		_ = d.nodes[1].Multicast(2, []byte{2})
	}
	d.collect(1, 60, 20*time.Second)
	vec := d.nodes[1].DeliveredVector()
	if vec[1] == 0 || vec[2] == 0 {
		t.Fatalf("vector missing entries: %v", vec)
	}
	sub := d.nodes[1].Subscription()
	if len(sub) != 2 || sub[0] != 1 || sub[1] != 2 {
		t.Fatalf("subscription = %v", sub)
	}
	cur := d.nodes[1].MergeCursor()
	if len(cur.Groups) != 2 {
		t.Fatalf("cursor = %+v", cur)
	}
}

func TestSubscribeValidation(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, nil)
	n := d.nodes[1]
	h := func(Delivery) {}
	if err := n.Subscribe(nil, 1); err == nil {
		t.Error("nil handler should fail")
	}
	if err := n.Subscribe(h); err == nil {
		t.Error("empty subscription should fail")
	}
	if err := n.Subscribe(h, 1); err != ErrNotSubscribed {
		t.Errorf("subscribe before join = %v, want ErrNotSubscribed", err)
	}
	if err := n.Join(99); err == nil {
		t.Error("join of unknown ring should fail")
	}
	if err := n.Join(1); err != nil {
		t.Fatal(err)
	}
	if err := n.Join(1); err != nil {
		t.Errorf("re-join should be a no-op, got %v", err)
	}
	if err := n.Subscribe(h, 1, 1); err == nil {
		t.Error("duplicate groups in subscription should fail")
	}
	if err := n.Subscribe(h, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Subscribe(h, 1); err == nil {
		t.Error("second subscribe should fail")
	}
}

func TestJoinNonMember(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2}}
	d := newDeployment(t, 3, rings, nil)
	if err := d.nodes[3].Join(1); err != ErrNotMember {
		t.Errorf("join as non-member = %v, want ErrNotMember", err)
	}
}

func TestStopIdempotentAndMulticastAfterStop(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, nil)
	d.joinAll(1, []transport.RingID{1}, []transport.RingID{1})
	n := d.nodes[1]
	n.Stop()
	n.Stop()
	if err := n.Multicast(1, []byte("late")); err != ErrStopped {
		t.Errorf("multicast after stop = %v, want ErrStopped", err)
	}
	if err := n.Join(1); err != ErrStopped {
		t.Errorf("join after stop = %v, want ErrStopped", err)
	}
}

func TestMergeQuotaM(t *testing.T) {
	// With M=4 and both groups loaded, the merged order must still be
	// identical across learners.
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1, 2, 3},
		2: {1, 2, 3},
	}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.M = 4
		cfg.Ring.SkipEnabled = true
		cfg.Ring.Delta = 5 * time.Millisecond
		cfg.Ring.Lambda = 2000
	})
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1, 2}, []transport.RingID{1, 2})
	}
	const perGroup = 40
	for i := 0; i < perGroup; i++ {
		_ = d.nodes[1].Multicast(1, []byte(fmt.Sprintf("a%d", i)))
		_ = d.nodes[2].Multicast(2, []byte(fmt.Sprintf("b%d", i)))
	}
	s1 := d.collect(1, 2*perGroup, 30*time.Second)
	s2 := d.collect(2, 2*perGroup, 30*time.Second)
	for i := range s1 {
		if string(s1[i].Data) != string(s2[i].Data) {
			t.Fatalf("M=4 merge diverges at %d", i)
		}
	}
}

func TestDeliveredCount(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, nil)
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1}, []transport.RingID{1})
	}
	for i := 0; i < 10; i++ {
		if err := d.nodes[1].Multicast(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.collect(1, 10, 10*time.Second)
	if got := d.nodes[1].DeliveredCount(); got != 10 {
		t.Errorf("DeliveredCount = %d, want 10", got)
	}
}

func TestBatchedMulticastUnpacks(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.Ring.BatchBytes = 32 << 10
	})
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1}, []transport.RingID{1})
	}
	const count = 100
	for i := 0; i < count; i++ {
		if err := d.nodes[1].Multicast(1, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// All messages are delivered, in order, despite packing.
	ds := d.collect(1, count, 15*time.Second)
	for i, dd := range ds {
		if want := fmt.Sprintf("m%03d", i); string(dd.Data) != want {
			t.Fatalf("delivery %d = %q, want %q", i, dd.Data, want)
		}
	}
	// Fewer consensus instances than messages prove packing happened.
	vec := d.nodes[1].DeliveredVector()
	if vec[1] >= count {
		t.Errorf("instances used = %d for %d messages; batching never packed", vec[1], count)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	c := Cursor{
		Groups:    []transport.RingID{1, 2, 7},
		Credits:   []uint64{0, 5, 2},
		Next:      1,
		Remaining: 3,
	}
	got, err := DecodeCursor(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Groups) != 3 || got.Groups[2] != 7 || got.Credits[1] != 5 ||
		got.Next != 1 || got.Remaining != 3 {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeCursor([]byte{1, 2}); err == nil {
		t.Error("short cursor accepted")
	}
}

func TestCursorSubscriptionMismatch(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.StartCursor = Cursor{Groups: []transport.RingID{1, 2}, Credits: []uint64{0, 0}}
	})
	if err := d.nodes[1].Join(1); err != nil {
		t.Fatal(err)
	}
	if err := d.nodes[1].Subscribe(func(Delivery) {}, 1); err == nil {
		t.Error("cursor/subscription mismatch should fail")
	}
}

// TestAdaptiveLambdaRaisesOnMergeStall drives the adaptive rate-leveling
// feedback loop end-to-end: ring 1 carries heavy traffic while ring 2 is
// idle with a (deliberately) far-too-low initial λ. The merge stalls on
// ring 2, learners report the stall to its coordinator, and the skip
// target must climb well past the mis-set static value — which is what
// lets ring 1's delivered throughput outrun the static cap. The merge
// telemetry must also name ring 2 as the straggler.
func TestAdaptiveLambdaRaisesOnMergeStall(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}, 2: {1, 2, 3}}
	const missetLambda = 100 // 4x+ below what ring 1 can sustain
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.Ring.SkipEnabled = true
		cfg.Ring.AdaptiveSkip = true
		cfg.Ring.Delta = 5 * time.Millisecond
		cfg.Ring.Lambda = missetLambda
		cfg.Ring.LambdaMax = 100000
	})
	for i := 1; i <= 3; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1, 2}, []transport.RingID{1, 2})
	}

	stop := make(chan struct{})
	defer close(stop)
	go func() {
		// Paced at ~4k msgs/s: far above the mis-set static cap but
		// gentle enough not to starve the scheduler under -race.
		payload := make([]byte, 32)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = d.nodes[1].Multicast(1, payload)
			time.Sleep(250 * time.Microsecond)
		}
	}()

	// With static λ=100 the merge could deliver at most ~100 ring-1
	// messages/s; collecting 2000 within the deadline requires the
	// feedback loop to have raised ring 2's skip target. Track the peak
	// λ while collecting — once ring 2 levels out, calm-window decay may
	// legitimately lower it again.
	got, maxLam := 0, 0
	deadline := time.After(15 * time.Second)
	for got < 2000 {
		select {
		case dd := <-d.chans[2]:
			if dd.Group == 1 {
				got++
			}
			if lam, ok := d.nodes[1].RingLambdaNow(2); ok && lam > maxLam {
				maxLam = lam
			}
		case <-deadline:
			t.Fatalf("delivered %d/2000 ring-1 messages; adaptive λ did not recover the merge", got)
		}
	}

	if maxLam <= missetLambda {
		t.Errorf("ring 2 peak λ = %d, want raised above mis-set %d", maxLam, missetLambda)
	}
	if _, ok := d.nodes[2].Straggler(); !ok {
		t.Error("no straggler reported despite merge stalls")
	}
	ring2Stalled := false
	for _, st := range d.nodes[2].MergeStalls() {
		if st.Ring == 2 && st.Count > 0 {
			ring2Stalled = true
		}
	}
	if !ring2Stalled {
		t.Errorf("no merge-stall telemetry for the mis-set ring: %+v", d.nodes[2].MergeStalls())
	}
}
