// Package core implements Multi-Ring Paxos, the paper's primary
// contribution: an atomic multicast protocol composed of coordinated Ring
// Paxos instances (Section 4).
//
// Each multicast group γ maps 1:1 to a ring. The group-addressing
// semantics are "inverted" with respect to classical atomic multicast
// (Section 3): a client addresses exactly one group per multicast, and
// each server subscribes to any set of groups it is interested in — like
// IP multicast. The set of groups a replica subscribes to defines its
// partition (Section 5.2).
//
// Ordered delivery across groups uses deterministic merge: a learner
// subscribed to rings r1 < r2 < ... delivers messages decided in M
// consensus instances from r1, then M from r2, and so on, cyclically.
// Because merge order is a pure function of (subscription set, M, decided
// sequences, start position), any two learners with the same subscription
// deliver the same global sequence — atomic multicast's acyclic order
// property.
//
// Unbalanced group load would make everyone run at the slowest group's
// pace, so coordinators of slow rings fill their windows with skip
// instances (rate leveling, configured by Δ and λ); the merge layer
// consumes skips silently, advancing the round-robin.
//
// Delivery is synchronous: Subscribe takes a handler invoked inline by the
// merge goroutine. This makes checkpointing trivially consistent — inside
// the handler, DeliveredVector and MergeCursor exactly describe the state
// after the current delivery, which is what Section 5.2's tuple-identified
// checkpoints require.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/coord"
	"amcast/internal/recovery"
	"amcast/internal/ring"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// Delivery is one application message delivered by atomic multicast.
type Delivery struct {
	// Group the message was multicast to.
	Group transport.RingID
	// Instance is the consensus instance within the group's ring.
	Instance uint64
	// ValueID is the proposal's unique identifier.
	ValueID uint64
	// Data is the multicast payload.
	Data []byte
}

// Handler consumes deliveries in merged order. It runs on the merge
// goroutine; blocking it back-pressures the whole subscription.
type Handler func(Delivery)

// RingOptions tunes every ring this node participates in.
type RingOptions struct {
	// Window bounds outstanding undecided instances at coordinators.
	Window int
	// MaxPending bounds queued proposals at coordinators.
	MaxPending int
	// RetryInterval drives coordinator re-proposals and gap chasing.
	RetryInterval time.Duration
	// DeliverBuffer is each ring's local delivery buffer.
	DeliverBuffer int
	// SkipEnabled turns on rate leveling.
	SkipEnabled bool
	// Delta is the rate-leveling interval (paper: 5 ms LAN, 20 ms WAN).
	Delta time.Duration
	// Lambda is the maximum expected rate, msgs/s (paper: 9000 LAN,
	// 2000 WAN).
	Lambda int
	// TrimInterval enables coordinator-driven acceptor log trimming.
	TrimInterval time.Duration
	// BatchBytes enables coordinator message packing up to this many
	// payload bytes per consensus instance (paper: 32 KB).
	BatchBytes int
}

// Config configures a Multi-Ring Paxos node.
type Config struct {
	// Self is this process's identifier.
	Self transport.ProcessID
	// Router delivers this process's incoming messages.
	Router *transport.Router
	// Coord is the coordination service with ring configurations.
	Coord *coord.Service
	// NewLog builds the stable log for each ring this process accepts
	// in. Figure 6 attaches one disk per ring through this hook.
	// Defaults to in-memory logs.
	NewLog func(transport.RingID) storage.Log
	// M is the deterministic-merge quota: consensus instances delivered
	// per ring per round-robin turn. The paper uses M=1.
	M int
	// Ring tunes the per-ring protocol.
	Ring RingOptions
	// LambdaOverride raises or lowers the rate-leveling λ for specific
	// rings (e.g. a global ring whose skip stream must outrun the
	// partition rings so the deterministic merge never waits on it).
	LambdaOverride map[transport.RingID]int
	// StartVector resumes delivery after a recovered checkpoint: for
	// each subscribed group, delivery starts at StartVector[g]+1.
	StartVector recovery.Vector
	// StartCursor resumes the merge round-robin at the checkpointed
	// position. Zero value starts a fresh merge.
	StartCursor Cursor
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.M == 0 {
		out.M = 1
	}
	if out.NewLog == nil {
		out.NewLog = func(transport.RingID) storage.Log { return storage.NewMemLog() }
	}
	return out
}

// Errors returned by Node operations.
var (
	ErrNotMember     = errors.New("core: process is not a member of the ring")
	ErrNotSubscribed = errors.New("core: ring not joined with the learner role")
	ErrStopped       = errors.New("core: node stopped")
)

// Node is one process's Multi-Ring Paxos endpoint: it can multicast to any
// group and, after Subscribe, delivers the merged ordered stream of all
// groups it subscribes to.
type Node struct {
	cfg   Config
	id    transport.ProcessID
	tr    transport.Transport
	coord *coord.Service

	mu         sync.Mutex
	rings      map[transport.RingID]*ring.Node
	subscribed []transport.RingID
	vector     recovery.Vector // delivered high-water marks
	cursor     Cursor          // merge position (updated by merge loop)
	merging    bool
	stopped    bool

	mergeDone chan struct{}
	done      chan struct{}

	proposeSeq atomic.Uint32
	delivered  atomic.Uint64
}

// New creates a Multi-Ring Paxos node. Join rings and Subscribe to start
// delivering.
func New(cfg Config) (*Node, error) {
	if cfg.Router == nil || cfg.Coord == nil {
		return nil, errors.New("core: Router and Coord are required")
	}
	c := cfg.withDefaults()
	return &Node{
		cfg:       c,
		id:        c.Self,
		tr:        c.Router.Transport(),
		coord:     c.Coord,
		rings:     make(map[transport.RingID]*ring.Node),
		vector:    make(recovery.Vector),
		mergeDone: make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// Join makes this process participate in a ring with the roles recorded in
// the coordination service (acceptor, proposer and/or learner).
func (n *Node) Join(ringID transport.RingID) error {
	rc, ok := n.coord.Ring(ringID)
	if !ok {
		return fmt.Errorf("core: ring %d not registered", ringID)
	}
	roles := rc.Roles(n.id)
	if roles == 0 {
		return ErrNotMember
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}
	if _, ok := n.rings[ringID]; ok {
		return nil // already joined
	}
	var log storage.Log
	if roles.Has(coord.RoleAcceptor) {
		log = n.cfg.NewLog(ringID)
	}
	lambda := n.cfg.Ring.Lambda
	if l, ok := n.cfg.LambdaOverride[ringID]; ok {
		lambda = l
	}
	rn, err := ring.New(ring.Config{
		Ring:          ringID,
		Self:          n.id,
		Router:        n.cfg.Router,
		Coord:         n.coord,
		Log:           log,
		Window:        n.cfg.Ring.Window,
		MaxPending:    n.cfg.Ring.MaxPending,
		RetryInterval: n.cfg.Ring.RetryInterval,
		DeliverBuffer: n.cfg.Ring.DeliverBuffer,
		SkipEnabled:   n.cfg.Ring.SkipEnabled,
		Delta:         n.cfg.Ring.Delta,
		Lambda:        lambda,
		TrimInterval:  n.cfg.Ring.TrimInterval,
		BatchBytes:    n.cfg.Ring.BatchBytes,
		StartInstance: n.cfg.StartVector[ringID] + 1,
	})
	if err != nil {
		return err
	}
	n.rings[ringID] = rn
	return nil
}

// Subscribe declares the set of groups this process delivers from and
// starts the deterministic merge, invoking handler inline for every
// delivered message. All groups must be joined with the learner role.
// Subscribe may be called once.
func (n *Node) Subscribe(handler Handler, groups ...transport.RingID) error {
	if handler == nil {
		return errors.New("core: nil delivery handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}
	if n.merging {
		return errors.New("core: already subscribed")
	}
	if len(groups) == 0 {
		return errors.New("core: empty subscription")
	}
	set := make(map[transport.RingID]bool, len(groups))
	sorted := append([]transport.RingID(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var chans []<-chan ring.Delivery
	for _, g := range sorted {
		if set[g] {
			return fmt.Errorf("core: duplicate group %d in subscription", g)
		}
		set[g] = true
		rn, ok := n.rings[g]
		if !ok {
			return ErrNotSubscribed
		}
		rc, _ := n.coord.Ring(g)
		if !rc.Roles(n.id).Has(coord.RoleLearner) {
			return ErrNotSubscribed
		}
		chans = append(chans, rn.Deliveries())
		if _, ok := n.vector[g]; !ok {
			n.vector[g] = n.cfg.StartVector[g]
		}
	}
	// Restore or initialize the merge cursor.
	cur := n.cfg.StartCursor.Clone()
	if len(cur.Groups) == 0 {
		cur = Cursor{Groups: sorted, Credits: make([]uint64, len(sorted))}
	} else {
		if len(cur.Groups) != len(sorted) {
			return errors.New("core: cursor subscription mismatch")
		}
		for i := range sorted {
			if cur.Groups[i] != sorted[i] {
				return errors.New("core: cursor subscription mismatch")
			}
		}
	}
	n.subscribed = sorted
	n.cursor = cur
	n.merging = true
	go n.merge(sorted, chans, handler, cur.Clone())
	return nil
}

// merge implements the deterministic merge: round-robin over subscribed
// rings in ascending ring-id order, consuming M consensus instances per
// turn. Skip values advance the cursor without delivering. Credit from
// skip ranges that overshoot a turn's quota carries over to later turns,
// so all learners observe identical turn boundaries.
func (n *Node) merge(groups []transport.RingID, chans []<-chan ring.Delivery, handler Handler, cur Cursor) {
	defer close(n.mergeDone)
	m := uint64(n.cfg.M)
	for {
		i := cur.Next
		if cur.Remaining == 0 {
			if cur.Credits[i] >= m {
				cur.Credits[i] -= m
				cur.Next = (i + 1) % len(groups)
				n.storeCursor(cur)
				continue
			}
			cur.Remaining = m - cur.Credits[i]
			cur.Credits[i] = 0
		}
		for cur.Remaining > 0 {
			var d ring.Delivery
			var ok bool
			select {
			case d, ok = <-chans[i]:
				if !ok {
					return // ring stopped; shut down merge
				}
			case <-n.done:
				return
			}
			span := d.Value.Span()
			if span >= cur.Remaining {
				cur.Credits[i] += span - cur.Remaining
				cur.Remaining = 0
			} else {
				cur.Remaining -= span
			}
			end := d.Instance + span - 1
			if cur.Remaining == 0 {
				// Normalize so a snapshot taken now resumes at
				// the next group's turn.
				cur.Next = (i + 1) % len(groups)
			}
			n.noteDelivered(groups[i], end, cur)
			switch {
			case d.Value.Skip:
				// Rate-leveling filler: consumed silently.
			case d.Value.Batched:
				// Unpack message-packed proposals (one consensus
				// instance, several application messages).
				if sub, err := transport.DecodeBatch(d.Value.Data); err == nil {
					for _, iv := range sub {
						n.delivered.Add(1)
						handler(Delivery{
							Group:    groups[i],
							Instance: d.Instance,
							ValueID:  iv.Value.ID,
							Data:     iv.Value.Data,
						})
					}
				}
			default:
				n.delivered.Add(1)
				handler(Delivery{
					Group:    groups[i],
					Instance: d.Instance,
					ValueID:  d.Value.ID,
					Data:     d.Value.Data,
				})
			}
			select {
			case <-n.done:
				return
			default:
			}
		}
	}
}

// noteDelivered advances the delivered mark for a group and publishes the
// cursor, so DeliveredVector/MergeCursor are consistent inside handlers.
func (n *Node) noteDelivered(g transport.RingID, upTo uint64, cur Cursor) {
	n.mu.Lock()
	if upTo > n.vector[g] {
		n.vector[g] = upTo
	}
	n.cursor = cur.Clone()
	n.mu.Unlock()
}

func (n *Node) storeCursor(cur Cursor) {
	n.mu.Lock()
	n.cursor = cur.Clone()
	n.mu.Unlock()
}

// DeliveredVector snapshots the per-group delivered instance high-water
// marks (the tuple k_p of Section 5.2). Inside a delivery handler it
// reflects exactly the deliveries up to and including the current one, and
// satisfies Predicate 1 (x < y ⇒ k[x] ≥ k[y]) at merge-turn boundaries.
func (n *Node) DeliveredVector() recovery.Vector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.vector.Clone()
}

// MergeCursor snapshots the merge position. Pair it with DeliveredVector
// (read atomically inside a delivery handler) to identify a checkpoint.
func (n *Node) MergeCursor() Cursor {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cursor.Clone()
}

// Subscription returns the subscribed groups in ascending order (the
// partition this node belongs to).
func (n *Node) Subscription() []transport.RingID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]transport.RingID(nil), n.subscribed...)
}

// Multicast sends data to group γ: the value is proposed to the ring's
// coordinator. The caller need not be a member of the ring (clients act as
// proposers). Delivery is not guaranteed; callers retry end-to-end.
func (n *Node) Multicast(group transport.RingID, data []byte) error {
	select {
	case <-n.done:
		return ErrStopped
	default:
	}
	n.mu.Lock()
	rn := n.rings[group]
	n.mu.Unlock()
	if rn != nil {
		return rn.Propose(data)
	}
	rc, ok := n.coord.Ring(group)
	if !ok {
		return fmt.Errorf("core: ring %d not registered", group)
	}
	if rc.Coordinator == 0 {
		return ring.ErrNoCoordinator
	}
	return n.tr.Send(rc.Coordinator, transport.Message{
		Kind: transport.KindProposal,
		Ring: group,
		Value: transport.Value{
			ID:    transport.MakeValueID(n.id, n.proposeSeq.Add(1)),
			Count: 1,
			Data:  data,
		},
	})
}

// DeliveredCount reports the number of application messages delivered.
func (n *Node) DeliveredCount() uint64 { return n.delivered.Load() }

// Stop shuts down the merge and every joined ring.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	merging := n.merging
	rings := make([]*ring.Node, 0, len(n.rings))
	for _, rn := range n.rings {
		rings = append(rings, rn)
	}
	n.mu.Unlock()

	close(n.done)
	for _, rn := range rings {
		rn.Stop()
	}
	if merging {
		<-n.mergeDone
	}
}
