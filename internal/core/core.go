// Package core implements Multi-Ring Paxos, the paper's primary
// contribution: an atomic multicast protocol composed of coordinated Ring
// Paxos instances (Section 4).
//
// Each multicast group γ maps 1:1 to a ring. The group-addressing
// semantics are "inverted" with respect to classical atomic multicast
// (Section 3): a client addresses exactly one group per multicast, and
// each server subscribes to any set of groups it is interested in — like
// IP multicast. The set of groups a replica subscribes to defines its
// partition (Section 5.2).
//
// Ordered delivery across groups uses deterministic merge: a learner
// subscribed to rings r1 < r2 < ... delivers messages decided in M
// consensus instances from r1, then M from r2, and so on, cyclically.
// Because merge order is a pure function of (subscription set, M, decided
// sequences, start position), any two learners with the same subscription
// deliver the same global sequence — atomic multicast's acyclic order
// property.
//
// Unbalanced group load would make everyone run at the slowest group's
// pace, so coordinators of slow rings fill their windows with skip
// instances (rate leveling, configured by Δ and λ); the merge layer
// consumes skips silently, advancing the round-robin.
//
// Delivery is synchronous and batch-at-a-time: SubscribeBatch takes a
// handler invoked inline by the merge goroutine with a batch of
// consecutive merged deliveries, so every layer above (SMR, MRP-Store,
// dLog) amortizes its per-message lock, dispatch and allocation costs over
// the batch. Batches are bounded by count and bytes (BatchOptions) and the
// merge hands a batch over whenever it would otherwise block waiting for a
// ring, so batching never adds latency. Checkpointing stays consistent:
// DeliveredVector and MergeCursor are published together once per batch
// and, inside the handler, exactly describe the state after the batch's
// last delivery — which is what Section 5.2's tuple-identified checkpoints
// require, now at batch boundaries. Subscribe remains as a thin
// per-message adapter.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/bufpool"
	"amcast/internal/coord"
	"amcast/internal/metrics"
	"amcast/internal/recovery"
	"amcast/internal/ring"
	"amcast/internal/storage"
	"amcast/internal/trace"
	"amcast/internal/transport"
)

// Delivery is one application message delivered by atomic multicast.
type Delivery struct {
	// Group the message was multicast to.
	Group transport.RingID
	// Instance is the consensus instance within the group's ring.
	Instance uint64
	// ValueID is the proposal's unique identifier.
	ValueID uint64
	// Data is the multicast payload.
	Data []byte
	// Trace is the sampled trace context that rode the value's frames
	// (zero for unsampled values). Telemetry only: it never influences
	// execution, responses or checkpoint bytes.
	Trace trace.Context
}

// Handler consumes deliveries in merged order. It runs on the merge
// goroutine; blocking it back-pressures the whole subscription.
type Handler func(Delivery)

// BatchHandler consumes batches of deliveries in merged order. It runs on
// the merge goroutine; blocking it back-pressures the whole subscription.
// The slice is reused between calls — handlers must not retain it. On
// pooled transports (TCP) the payload bytes are backed by refcounted pool
// buffers that recycle after the handler returns, so handlers must also
// not retain Data: anything kept past the call (applied state, queued
// replies) must be copied. smr.Replica applies and replies synchronously
// inside the handler, so the contract holds there by construction.
type BatchHandler func([]Delivery)

// BatchOptions bounds the delivery batches handed to batch subscribers.
type BatchOptions struct {
	// MaxMessages bounds application messages per batch (default 512).
	MaxMessages int
	// MaxBytes bounds cumulative payload bytes per batch (default 1 MB).
	MaxBytes int
}

func (b BatchOptions) withDefaults() BatchOptions {
	if b.MaxMessages <= 0 {
		b.MaxMessages = 512
	}
	if b.MaxBytes <= 0 {
		b.MaxBytes = 1 << 20
	}
	return b
}

// RingOptions tunes every ring this node participates in.
type RingOptions struct {
	// Window bounds outstanding undecided instances at coordinators.
	Window int
	// MaxPending bounds queued proposals at coordinators.
	MaxPending int
	// RetryInterval drives coordinator re-proposals and gap chasing.
	RetryInterval time.Duration
	// DeliverBuffer is each ring's local delivery buffer.
	DeliverBuffer int
	// SkipEnabled turns on rate leveling.
	SkipEnabled bool
	// Delta is the rate-leveling interval (paper: 5 ms LAN, 20 ms WAN).
	Delta time.Duration
	// Lambda is the maximum expected rate, msgs/s (paper: 9000 LAN,
	// 2000 WAN). With AdaptiveSkip it is only the initial target.
	Lambda int
	// AdaptiveSkip replaces the statically preset λ with a feedback
	// loop: coordinators track their decided-rate EWMA per Δ window and
	// move the skip target within [LambdaMin, LambdaMax], raised sharply
	// when this node's merge reports stalling on a ring and decayed when
	// nobody waits. See ring.Config.AdaptiveSkip.
	AdaptiveSkip bool
	// LambdaMin / LambdaMax bound the adaptive skip target (defaults:
	// Lambda/16 and Lambda*16).
	LambdaMin int
	LambdaMax int
	// FeedbackInterval paces the merge's per-ring stall reports to ring
	// coordinators (adaptive rate leveling). Default 4×Delta.
	FeedbackInterval time.Duration
	// TrimInterval enables coordinator-driven acceptor log trimming.
	TrimInterval time.Duration
	// BatchBytes enables coordinator message packing up to this many
	// payload bytes per consensus instance (paper: 32 KB).
	BatchBytes int
	// CommitFailureBudget bounds consecutive failed group commits before
	// an acceptor steps out of the membership (see
	// ring.Config.CommitFailureBudget). 0 = default, negative = never.
	CommitFailureBudget int
}

// Config configures a Multi-Ring Paxos node.
type Config struct {
	// Self is this process's identifier.
	Self transport.ProcessID
	// Router delivers this process's incoming messages.
	Router *transport.Router
	// Coord is the coordination service with ring configurations.
	Coord *coord.Service
	// NewLog builds the stable log for each ring this process accepts
	// in. Figure 6 attaches one disk per ring through this hook.
	// Defaults to in-memory logs. An error fails the Join — durability
	// requested but unavailable must not degrade silently. Deployments
	// that close their logs on shutdown can return
	// storage.NewPooledMemLog() here to recycle vote-record storage
	// instead of growing the heap (the core never closes logs itself —
	// they may be retained across restarts for recovery).
	NewLog func(transport.RingID) (storage.Log, error)
	// M is the deterministic-merge quota: consensus instances delivered
	// per ring per round-robin turn. The paper uses M=1.
	M int
	// Ring tunes the per-ring protocol.
	Ring RingOptions
	// Batch bounds the delivery batches handed to SubscribeBatch
	// handlers.
	Batch BatchOptions
	// LambdaOverride raises or lowers the rate-leveling λ for specific
	// rings (e.g. a global ring whose skip stream must outrun the
	// partition rings so the deterministic merge never waits on it).
	LambdaOverride map[transport.RingID]int
	// StartVector resumes delivery after a recovered checkpoint: for
	// each subscribed group, delivery starts at StartVector[g]+1.
	StartVector recovery.Vector
	// StartCursor resumes the merge round-robin at the checkpointed
	// position. Zero value starts a fresh merge.
	StartCursor Cursor
	// Tracer, when set, records distributed-tracing spans for sampled
	// values on this process (per-value tracing, internal/trace). It is
	// shared with every ring this node joins. Nil disables tracing.
	Tracer *trace.Recorder
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.M == 0 {
		out.M = 1
	}
	if out.NewLog == nil {
		out.NewLog = func(transport.RingID) (storage.Log, error) { return storage.NewMemLog(), nil }
	}
	out.Batch = out.Batch.withDefaults()
	return out
}

// Errors returned by Node operations.
var (
	ErrNotMember     = errors.New("core: process is not a member of the ring")
	ErrNotSubscribed = errors.New("core: ring not joined with the learner role")
	ErrStopped       = errors.New("core: node stopped")
)

// Node is one process's Multi-Ring Paxos endpoint: it can multicast to any
// group and, after Subscribe, delivers the merged ordered stream of all
// groups it subscribes to.
type Node struct {
	cfg   Config
	id    transport.ProcessID
	tr    transport.Transport
	coord *coord.Service

	mu         sync.Mutex
	rings      map[transport.RingID]*ring.Node
	subscribed []transport.RingID
	vector     recovery.Vector // delivered high-water marks
	cursor     Cursor          // merge position (updated by merge loop)
	merging    bool
	stopped    bool
	// dropped records rings removed by a past epoch transition. Their
	// delivery stream is (partially) consumed by a drain goroutine, so
	// re-subscribing one would silently skip instances; it is refused.
	dropped map[transport.RingID]bool

	mergeDone chan struct{}
	done      chan struct{}

	proposeSeq atomic.Uint32
	delivered  atomic.Uint64

	// progressNs is the monotonic-clock nanosecond reading of the last
	// merge flush (vector/cursor publication). Skip values count: a
	// batch flushed after consuming only rate-leveling fillers still
	// proves the merge is live, which is exactly the signal
	// bounded-staleness follower reads need.
	progressNs atomic.Int64

	// boundary, when set, is invoked by the merge goroutine after every
	// batch-boundary flush — i.e. after the published vector's whole
	// prefix has been handed to (and processed by) the delivery
	// handler. Skip-only flushes fire it too, so a listener tracking
	// "state applied through instance k" stays current even when the
	// stream advances purely by rate-leveling fillers. Read-index local
	// reads key off this signal.
	boundary atomic.Pointer[func()]

	// resub is the armed epoch transition (nil when none): the merge
	// consumes it when it delivers the marker value. Written by
	// PrepareResubscribe, read per consensus instance by the merge.
	resub atomic.Pointer[resubRequest]
	// resubStall is the longest a subscription switch blocked the merge
	// goroutine, in ns (instrumentation for the reconfig bench).
	resubStall metrics.Gauge

	// Merge stall telemetry: per-ring records of how long the
	// deterministic merge waited on each subscribed ring (the straggler
	// signal that feeds adaptive rate leveling).
	stallMu sync.Mutex
	stalls  map[transport.RingID]*ringStallRec

	// halted records a premature merge exit: a subscribed ring's
	// delivery stream terminated while the node was still running.
	halted     bool
	haltedRing transport.RingID
}

// ringStallRec accumulates merge-stall telemetry for one ring.
type ringStallRec struct {
	hist  *metrics.Histogram
	total atomic.Int64
}

// resubRequest is an armed subscription change.
type resubRequest struct {
	marker uint64
	groups []transport.RingID // ascending, deduplicated
}

// New creates a Multi-Ring Paxos node. Join rings and Subscribe to start
// delivering.
func New(cfg Config) (*Node, error) {
	if cfg.Router == nil || cfg.Coord == nil {
		return nil, errors.New("core: Router and Coord are required")
	}
	c := cfg.withDefaults()
	return &Node{
		cfg:       c,
		id:        c.Self,
		tr:        c.Router.Transport(),
		coord:     c.Coord,
		rings:     make(map[transport.RingID]*ring.Node),
		vector:    make(recovery.Vector),
		mergeDone: make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// Join makes this process participate in a ring with the roles recorded in
// the coordination service (acceptor, proposer and/or learner).
func (n *Node) Join(ringID transport.RingID) error {
	rc, ok := n.coord.Ring(ringID)
	if !ok {
		return fmt.Errorf("core: ring %d not registered", ringID)
	}
	roles := rc.Roles(n.id)
	if roles == 0 {
		return ErrNotMember
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}
	if _, ok := n.rings[ringID]; ok {
		return nil // already joined
	}
	var log storage.Log
	if roles.Has(coord.RoleAcceptor) {
		var err error
		if log, err = n.cfg.NewLog(ringID); err != nil {
			return fmt.Errorf("core: open stable log for ring %d: %w", ringID, err)
		}
	}
	lambda := n.cfg.Ring.Lambda
	if l, ok := n.cfg.LambdaOverride[ringID]; ok {
		lambda = l
	}
	rn, err := ring.New(ring.Config{
		Ring:                ringID,
		Self:                n.id,
		Router:              n.cfg.Router,
		Coord:               n.coord,
		Log:                 log,
		Window:              n.cfg.Ring.Window,
		MaxPending:          n.cfg.Ring.MaxPending,
		RetryInterval:       n.cfg.Ring.RetryInterval,
		DeliverBuffer:       n.cfg.Ring.DeliverBuffer,
		SkipEnabled:         n.cfg.Ring.SkipEnabled,
		Delta:               n.cfg.Ring.Delta,
		Lambda:              lambda,
		AdaptiveSkip:        n.cfg.Ring.AdaptiveSkip,
		LambdaMin:           n.cfg.Ring.LambdaMin,
		LambdaMax:           n.cfg.Ring.LambdaMax,
		TrimInterval:        n.cfg.Ring.TrimInterval,
		BatchBytes:          n.cfg.Ring.BatchBytes,
		StartInstance:       n.cfg.StartVector[ringID] + 1,
		CommitFailureBudget: n.cfg.Ring.CommitFailureBudget,
		Tracer:              n.cfg.Tracer,
	})
	if err != nil {
		return err
	}
	n.rings[ringID] = rn
	return nil
}

// Subscribe declares the set of groups this process delivers from and
// starts the deterministic merge, invoking handler inline for every
// delivered message. All groups must be joined with the learner role.
// Subscribe may be called once (and not combined with SubscribeBatch).
//
// Subscribe is a thin adapter over SubscribeBatch: the merge runs
// batch-at-a-time underneath, so DeliveredVector/MergeCursor reflect the
// current batch's last delivery, not the message in hand. Handlers that
// checkpoint should use SubscribeBatch and checkpoint at batch boundaries.
func (n *Node) Subscribe(handler Handler, groups ...transport.RingID) error {
	if handler == nil {
		return errors.New("core: nil delivery handler")
	}
	return n.SubscribeBatch(func(ds []Delivery) {
		for _, d := range ds {
			handler(d)
		}
	}, groups...)
}

// SubscribeBatch declares the set of groups this process delivers from and
// starts the deterministic merge, invoking handler inline with batches of
// consecutive merged deliveries. All groups must be joined with the
// learner role. SubscribeBatch may be called once.
//
// Batches end at the configured count/byte bounds and whenever the merge
// would block waiting for a ring, so delivery latency is never traded for
// batch size. Bounds hold at consensus-instance granularity: an instance
// is never split across batches (the delivered vector is per-instance),
// so one message-packed instance may overshoot the bounds by its content.
// DeliveredVector and MergeCursor are updated atomically per batch:
// inside the handler they exactly describe the state after the batch's
// last delivery, which is what Section 5.2's tuple-identified checkpoints
// require.
func (n *Node) SubscribeBatch(handler BatchHandler, groups ...transport.RingID) error {
	if handler == nil {
		return errors.New("core: nil delivery handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}
	if n.merging {
		return errors.New("core: already subscribed")
	}
	if len(groups) == 0 {
		return errors.New("core: empty subscription")
	}
	set := make(map[transport.RingID]bool, len(groups))
	sorted := append([]transport.RingID(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var srcs []*ringSource
	for _, g := range sorted {
		if set[g] {
			return fmt.Errorf("core: duplicate group %d in subscription", g)
		}
		set[g] = true
		rn, ok := n.rings[g]
		if !ok {
			return ErrNotSubscribed
		}
		rc, _ := n.coord.Ring(g)
		if !rc.Roles(n.id).Has(coord.RoleLearner) {
			return ErrNotSubscribed
		}
		srcs = append(srcs, &ringSource{rn: rn, ch: rn.DeliveryBatches()})
		if _, ok := n.vector[g]; !ok {
			n.vector[g] = n.cfg.StartVector[g]
		}
	}
	// Restore or initialize the merge cursor.
	cur := n.cfg.StartCursor.Clone()
	if len(cur.Groups) == 0 {
		cur = Cursor{Groups: sorted, Credits: make([]uint64, len(sorted)), Epoch: n.cfg.StartCursor.Epoch}
	} else if !ringIDsEqual(cur.Groups, sorted) {
		return fmt.Errorf("core: cursor subscription mismatch: the checkpointed cursor (epoch %d) covers groups %v but the subscription requests %v; subscribe with the checkpointed group set (recovery restores the post-reconfiguration subscription) or discard the cursor to start a fresh merge", cur.Epoch, cur.Groups, sorted)
	}
	n.subscribed = sorted
	n.cursor = cur
	n.merging = true
	go n.merge(sorted, srcs, handler, cur.Clone())
	return nil
}

// PrepareResubscribe arms an epoch transition: when the merge delivers
// the application message whose value id equals marker, it ends the
// delivery batch at exactly that instance, switches the subscription to
// groups (ascending ring-id order), increments the cursor epoch and
// restarts the round-robin at the first group. Every group must already
// be joined with the learner role; groups absent from the current
// subscription start delivering from their join point, and groups dropped
// from it stop delivering right after the marker.
//
// Determinism contract: the marker must be armed at every learner of the
// partition BEFORE the marker value is multicast. A learner that delivers
// the marker unarmed treats it as an ordinary (opaque) message and keeps
// the old subscription, diverging from its peers; reconfig.Controller
// implements the prepare/ack handshake that upholds the contract.
func (n *Node) PrepareResubscribe(marker uint64, groups ...transport.RingID) error {
	if marker == 0 {
		return errors.New("core: resubscribe marker must be nonzero")
	}
	if len(groups) == 0 {
		return errors.New("core: empty resubscription")
	}
	sorted := append([]transport.RingID(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stopped {
		return ErrStopped
	}
	if !n.merging {
		return errors.New("core: PrepareResubscribe requires an active subscription")
	}
	for i, g := range sorted {
		if i > 0 && sorted[i-1] == g {
			return fmt.Errorf("core: duplicate group %d in resubscription", g)
		}
		if n.dropped[g] {
			// A past transition dropped this ring and its delivery
			// stream has been partially discarded by the drain
			// goroutine; re-adding it would skip those instances and
			// diverge from peers. Re-join semantics need ring-level
			// redelivery, which does not exist yet.
			return fmt.Errorf("core: group %d was dropped by a previous epoch transition and cannot be re-added", g)
		}
		if _, ok := n.rings[g]; !ok {
			return fmt.Errorf("core: resubscription group %d: %w", g, ErrNotSubscribed)
		}
		rc, _ := n.coord.Ring(g)
		if !rc.Roles(n.id).Has(coord.RoleLearner) {
			return fmt.Errorf("core: resubscription group %d: %w", g, ErrNotSubscribed)
		}
	}
	// A new prepare REPLACES an armed-but-unfired transition rather than
	// rejecting it: a controller that died (or whose cancel message was
	// lost) between prepare and marker would otherwise wedge this
	// learner's reconfiguration until restart. Replacement is safe under
	// the one-active-controller protocol: a marker is only multicast
	// after every learner acked its prepare, so a replaced marker either
	// was never proposed (aborted prepare phase) or — having been armed
	// everywhere — already fired and cleared the pending slot; in both
	// cases no learner can deliver the replaced marker armed.
	n.resub.Store(&resubRequest{marker: marker, groups: sorted})
	return nil
}

// CancelResubscribe disarms a pending epoch transition whose marker
// matches (an aborted reconfiguration whose marker will never be
// multicast). Reports whether a pending transition was removed.
func (n *Node) CancelResubscribe(marker uint64) bool {
	p := n.resub.Load()
	if p == nil || p.marker != marker {
		return false
	}
	return n.resub.CompareAndSwap(p, nil)
}

// ringSource adapts one ring's batch delivery channel into a pull
// interface for the merge: it holds the in-progress batch and recycles
// exhausted buffers back to the ring. stallAcc/lastFB pace the merge's
// stall feedback to this ring's coordinator (adaptive rate leveling).
type ringSource struct {
	rn  *ring.Node
	ch  <-chan []ring.Delivery
	buf []ring.Delivery
	idx int

	stallAcc time.Duration
	lastFB   time.Time
}

// ready reports whether a delivery is available without blocking,
// refilling from the channel opportunistically.
func (s *ringSource) ready() bool {
	if s.idx < len(s.buf) {
		return true
	}
	s.recycle()
	select {
	case b, ok := <-s.ch:
		if !ok {
			return false
		}
		s.buf, s.idx = b, 0
		return len(b) > 0
	default:
		return false
	}
}

// refill blocks until a delivery is available; false means the ring
// stopped or the node shut down.
func (s *ringSource) refill(done <-chan struct{}) bool {
	if s.idx < len(s.buf) {
		return true
	}
	s.recycle()
	select {
	case b, ok := <-s.ch:
		if !ok {
			return false
		}
		s.buf, s.idx = b, 0
		return len(b) > 0
	case <-done:
		return false
	}
}

// next returns the current delivery and advances. Call only after ready or
// refill returned true.
func (s *ringSource) next() ring.Delivery {
	d := s.buf[s.idx]
	s.idx++
	return d
}

// recycle hands an exhausted batch buffer back to the ring for reuse.
func (s *ringSource) recycle() {
	if s.buf != nil {
		s.rn.ReleaseBatch(s.buf)
		s.buf, s.idx = nil, 0
	}
}

// merge implements the deterministic merge, batch-at-a-time: round-robin
// over subscribed rings in ascending ring-id order, consuming M consensus
// instances per turn. Skip values advance the cursor without delivering.
// Credit from skip ranges that overshoot a turn's quota carries over to
// later turns, so all learners observe identical turn boundaries.
//
// Deliveries accumulate into one output batch; the batch is flushed — the
// delivered vector and cursor published under a single lock acquisition,
// then the handler invoked — when it reaches the configured bounds or when
// the merge would otherwise block waiting for a ring.
//
// When an epoch transition is armed (PrepareResubscribe) and the consumed
// instance carries the marker value, the batch is cut immediately after
// that instance and the subscription switches before the handler runs: the
// published cursor already carries the new group set and incremented
// epoch, so a checkpoint taken inside that handler records the
// transition exactly at the marker.
//
//lint:deterministic
func (n *Node) merge(groups []transport.RingID, srcs []*ringSource, handler BatchHandler, cur Cursor) {
	defer close(n.mergeDone)
	defer func() {
		for _, s := range srcs {
			s.recycle()
		}
	}()
	m := uint64(n.cfg.M)
	maxMsgs := n.cfg.Batch.MaxMessages
	maxBytes := n.cfg.Batch.MaxBytes
	n.progressNs.Store(nowNanos()) // merge is live from this point
	batch := make([]Delivery, 0, maxMsgs)
	batchBytes := 0
	high := make([]uint64, len(groups)) // delivered marks pending publication

	// held pins the pooled buffers backing the batch's payload aliases:
	// a ring batch can recycle (ringSource.recycle) before this batch is
	// emitted, so the merge takes one reference per consumed delivery and
	// drops them only after the handler has run.
	var held []*bufpool.Buf
	releaseHeld := func() {
		for idx, b := range held {
			b.Release()
			held[idx] = nil
		}
		held = held[:0]
	}
	defer releaseHeld()

	// emit hands the accumulated batch to the handler (after the vector
	// and cursor were published by the caller).
	emit := func() {
		if len(batch) > 0 {
			n.delivered.Add(uint64(len(batch)))
			handler(batch)
			for idx := range batch {
				batch[idx] = Delivery{} // release payload references
			}
			batch = batch[:0]
			batchBytes = 0
		}
		// No batch entry aliases pooled bytes anymore.
		releaseHeld()
	}
	// publish writes the delivered high-water marks under the node lock;
	// the caller extends the same critical section with cursor (and, on a
	// switch, subscription) updates before unlocking.
	publish := func() {
		for idx, hi := range high {
			if hi > n.vector[groups[idx]] {
				n.vector[groups[idx]] = hi
			}
			high[idx] = 0
		}
	}
	flush := func() {
		n.mu.Lock()
		publish()
		n.cursor = cur.Clone()
		n.mu.Unlock()
		n.progressNs.Store(nowNanos())
		emit()
		if fn := n.boundary.Load(); fn != nil {
			(*fn)()
		}
	}

	for {
		i := cur.Next
		if cur.Remaining == 0 {
			if cur.Credits[i] >= m {
				cur.Credits[i] -= m
				cur.Next = (i + 1) % len(groups)
				continue
			}
			cur.Remaining = m - cur.Credits[i]
			cur.Credits[i] = 0
		}
		for cur.Remaining > 0 {
			if !srcs[i].ready() {
				// About to block: hand over what we have so the
				// subscriber is never idle while the merge waits, and
				// time the wait — it is the straggler signal behind the
				// per-ring stall telemetry and the adaptive-λ feedback.
				flush()
				waitStart := time.Now() //lint:allow determinism stall telemetry only: the wait duration feeds metrics and the adaptive-λ signal, never delivered state
				if !srcs[i].refill(n.done) {
					// Ring stream ended. At Stop that is normal; while
					// the node is still running it means the ring
					// terminated delivery (e.g. a catch-up range trimmed
					// beyond recovery) — record it so the halt is
					// observable (MergeHalted / Replica.Halted) instead
					// of the merge vanishing silently.
					n.noteMergeHalt(groups[i])
					return
				}
				n.observeMergeStall(srcs[i], groups[i], time.Since(waitStart)) //lint:allow determinism stall telemetry only: the wait duration feeds metrics and the adaptive-λ signal, never delivered state
			}
			d := srcs[i].next()
			if d.Value.Buf != nil {
				d.Value.Buf.Retain()
				held = append(held, d.Value.Buf)
			}
			span := d.Value.Span()
			if span >= cur.Remaining {
				cur.Credits[i] += span - cur.Remaining
				cur.Remaining = 0
				// Normalize so a snapshot taken at the flush resumes
				// at the next group's turn.
				cur.Next = (i + 1) % len(groups)
			} else {
				cur.Remaining -= span
			}
			if end := d.Instance + span - 1; end > high[i] {
				high[i] = end
			}
			pending := n.resub.Load()
			hitMarker := false
			switch {
			case d.Value.Skip:
				// Rate-leveling filler: consumed silently.
			case d.Value.Batched:
				// Unpack message-packed proposals (one consensus
				// instance, several application messages) in place,
				// rolling back on a corrupt payload so a packed
				// instance delivers all of its messages or none (as
				// the pre-batching decode did).
				mark, markBytes := len(batch), batchBytes
				if err := transport.VisitBatch(d.Value.Data, func(iv transport.InstanceValue) {
					batch = append(batch, Delivery{
						Group:    groups[i],
						Instance: d.Instance,
						ValueID:  iv.Value.ID,
						Data:     iv.Value.Data,
					})
					n.traceDelivery(srcs[i].rn, &batch[len(batch)-1])
					batchBytes += len(iv.Value.Data)
					if pending != nil && iv.Value.ID == pending.marker {
						hitMarker = true
					}
				}); err != nil {
					batch, batchBytes = batch[:mark], markBytes
					hitMarker = false
				}
			default:
				batch = append(batch, Delivery{
					Group:    groups[i],
					Instance: d.Instance,
					ValueID:  d.Value.ID,
					Data:     d.Value.Data,
				})
				n.traceDelivery(srcs[i].rn, &batch[len(batch)-1])
				batchBytes += len(d.Value.Data)
				if pending != nil && d.Value.ID == pending.marker {
					hitMarker = true
				}
			}
			if hitMarker {
				// Epoch transition: cut the batch at the marker
				// instance, switch the subscription, then hand the
				// batch over — the handler observes the new cursor
				// (epoch+1, fresh round-robin) at this boundary.
				// Time only the switch itself: emit() runs the handler's
				// ordinary batch execution, which happens for every
				// batch and would drown the transition cost.
				start := time.Now() //lint:allow determinism resubscribe-stall telemetry only: the duration feeds a local gauge, never delivered state
				groups, srcs = n.switchSubscription(pending, groups, srcs, &cur, publish)
				high = make([]uint64, len(groups))
				n.resubStall.SetMax(int64(time.Since(start))) //lint:allow determinism resubscribe-stall telemetry only: the duration feeds a local gauge, never delivered state
				emit()
				if fn := n.boundary.Load(); fn != nil {
					(*fn)()
				}
				break // restart the round-robin on the new group set
			}
			if len(batch) >= maxMsgs || batchBytes >= maxBytes {
				flush()
			}
			select {
			case <-n.done:
				return
			default:
			}
		}
	}
}

// traceDelivery stamps an unpacked delivery with the sampled trace
// context its ring saw for the value id (if any) and records the
// "merge" hop: the instant the deterministic merge emitted the value
// into the globally ordered stream. Runs on the merge goroutine;
// telemetry only — the context never feeds delivered state.
func (n *Node) traceDelivery(rn *ring.Node, d *Delivery) {
	if n.cfg.Tracer == nil {
		return
	}
	ctx, ok := rn.TraceContextOf(d.ValueID)
	if !ok {
		return
	}
	d.Trace = ctx
	n.cfg.Tracer.Add(ctx, "merge", uint32(d.Group), d.Instance, d.ValueID, time.Now(), 0) //lint:allow determinism trace telemetry only: the span timestamp feeds the trace recorder, never delivered state
}

// switchSubscription applies an armed epoch transition at the marker
// boundary: it publishes the delivered marks (including the marker
// instance), prunes/extends the vector for the new group set, installs a
// fresh cursor at epoch+1 and rebuilds the ring sources — kept rings
// continue from their exact positions, removed rings are handed to a
// drain goroutine (their node may still be an acceptor whose delivery
// channel must not wedge the ring), added rings start at their join
// point. Runs on the merge goroutine.
func (n *Node) switchSubscription(pending *resubRequest, groups []transport.RingID, srcs []*ringSource, cur *Cursor, publish func()) ([]transport.RingID, []*ringSource) {
	newGroups := append([]transport.RingID(nil), pending.groups...)

	n.mu.Lock()
	publish()
	for g := range n.vector {
		if !containsRing(newGroups, g) {
			delete(n.vector, g)
		}
	}
	for _, g := range newGroups {
		if _, ok := n.vector[g]; !ok {
			n.vector[g] = n.cfg.StartVector[g]
		}
	}
	*cur = Cursor{
		Groups:  append([]transport.RingID(nil), newGroups...),
		Credits: make([]uint64, len(newGroups)),
		Epoch:   cur.Epoch + 1,
	}
	n.cursor = cur.Clone()
	n.subscribed = append([]transport.RingID(nil), newGroups...)
	rings := make(map[transport.RingID]*ring.Node, len(newGroups))
	for _, g := range newGroups {
		rings[g] = n.rings[g]
	}
	n.mu.Unlock()

	bySrc := make(map[transport.RingID]*ringSource, len(groups))
	for idx, g := range groups {
		bySrc[g] = srcs[idx]
	}
	newSrcs := make([]*ringSource, len(newGroups))
	for idx, g := range newGroups {
		if s, ok := bySrc[g]; ok {
			newSrcs[idx] = s
			delete(bySrc, g)
			continue
		}
		rn := rings[g]
		newSrcs[idx] = &ringSource{rn: rn, ch: rn.DeliveryBatches()}
	}
	if len(bySrc) > 0 {
		n.mu.Lock()
		if n.dropped == nil {
			n.dropped = make(map[transport.RingID]bool)
		}
		for g := range bySrc {
			n.dropped[g] = true
		}
		n.mu.Unlock()
	}
	//lint:allow determinism drainer launch order is irrelevant: each dropped source gets its own goroutine and no state depends on the order
	for _, s := range bySrc {
		go n.drainRemoved(s)
	}
	n.resub.CompareAndSwap(pending, nil)
	return newGroups, newSrcs
}

// drainRemoved keeps consuming a dropped ring's delivery channel so the
// ring node (possibly still an acceptor of that ring) never wedges on a
// full channel. Fully leaving a ring (stopping the learner) is future
// work; the drained batches are recycled immediately.
func (n *Node) drainRemoved(s *ringSource) {
	s.recycle()
	for {
		select {
		case b, ok := <-s.ch:
			if !ok {
				return
			}
			s.rn.ReleaseBatch(b)
		case <-n.done:
			return
		}
	}
}

// noteMergeHalt records that the merge exited because a subscribed
// ring's delivery stream ended while the node was NOT stopping.
func (n *Node) noteMergeHalt(g transport.RingID) {
	select {
	case <-n.done:
		return // normal shutdown
	default:
	}
	n.mu.Lock()
	n.halted, n.haltedRing = true, g
	n.mu.Unlock()
}

// MergeDone is closed when the deterministic merge goroutine exits — at
// Stop, or prematurely if a subscribed ring's delivery stream terminated
// (see MergeHalted). It never closes on a node that was not subscribed.
func (n *Node) MergeDone() <-chan struct{} { return n.mergeDone }

// MergeHalted reports whether the merge exited prematurely — a
// subscribed ring terminated its delivery stream while the node was
// still running (e.g. the learner's catch-up range was trimmed beyond
// ring-level recovery; see ring.FlowStats.CatchupAborted) — and which
// ring caused it. Delivery for EVERY subscribed group has stopped at
// that point; the replica must recover via checkpoint transfer
// (Section 5.2), typically by restarting through BuildNode.
func (n *Node) MergeHalted() (transport.RingID, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.haltedRing, n.halted
}

// observeMergeStall records one refill wait in the per-ring stall
// telemetry and, when adaptive rate leveling is on, reports the
// accumulated stall to the ring's coordinator at most once per feedback
// interval. Runs on the merge goroutine.
//
//lint:allow determinism stall telemetry and feedback pacing only: nothing here feeds delivered state or serialized bytes
func (n *Node) observeMergeStall(s *ringSource, g transport.RingID, d time.Duration) {
	if d <= 0 {
		return
	}
	rec := n.stallRec(g)
	rec.hist.Record(d)
	rec.total.Add(int64(d))
	if !n.cfg.Ring.AdaptiveSkip || !n.cfg.Ring.SkipEnabled {
		return
	}
	s.stallAcc += d
	now := time.Now()
	if s.lastFB.IsZero() {
		s.lastFB = now
	}
	if now.Sub(s.lastFB) >= n.feedbackInterval() {
		s.rn.ReportMergeStall(s.stallAcc)
		s.stallAcc = 0
		s.lastFB = now
	}
}

// feedbackInterval returns the configured stall-report pacing (default
// 4×Delta).
func (n *Node) feedbackInterval() time.Duration {
	if n.cfg.Ring.FeedbackInterval > 0 {
		return n.cfg.Ring.FeedbackInterval
	}
	d := n.cfg.Ring.Delta
	if d == 0 {
		d = 5 * time.Millisecond
	}
	return 4 * d
}

// stallRec returns (lazily creating) the stall record of one ring.
func (n *Node) stallRec(g transport.RingID) *ringStallRec {
	n.stallMu.Lock()
	defer n.stallMu.Unlock()
	rec, ok := n.stalls[g]
	if !ok {
		if n.stalls == nil {
			n.stalls = make(map[transport.RingID]*ringStallRec)
		}
		rec = &ringStallRec{hist: metrics.NewHistogram()}
		n.stalls[g] = rec
	}
	return rec
}

// RingStall summarizes how long the deterministic merge has waited on one
// subscribed ring.
type RingStall struct {
	Ring  transport.RingID
	Total time.Duration
	Count uint64
	Mean  time.Duration
	Max   time.Duration
	P99   time.Duration
}

// MergeStalls snapshots the per-ring merge-stall telemetry, sorted by
// total stall descending — the first entry is the straggler.
func (n *Node) MergeStalls() []RingStall {
	n.stallMu.Lock()
	recs := make(map[transport.RingID]*ringStallRec, len(n.stalls))
	for g, rec := range n.stalls {
		recs[g] = rec
	}
	n.stallMu.Unlock()
	out := make([]RingStall, 0, len(recs))
	for g, rec := range recs {
		out = append(out, RingStall{
			Ring:  g,
			Total: time.Duration(rec.total.Load()),
			Count: rec.hist.Count(),
			Mean:  rec.hist.Mean(),
			Max:   rec.hist.Max(),
			P99:   rec.hist.Quantile(0.99),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Straggler reports the ring the merge has waited on the longest (ok is
// false when the merge never waited).
func (n *Node) Straggler() (RingStall, bool) {
	stalls := n.MergeStalls()
	if len(stalls) == 0 || stalls[0].Total == 0 {
		return RingStall{}, false
	}
	return stalls[0], true
}

// RingFlowStats returns a joined ring's delivery-stage flow-control
// counters (lag, overruns, catch-up accounting), or ok=false if the
// process has not joined the ring.
func (n *Node) RingFlowStats(ringID transport.RingID) (ring.FlowStats, bool) {
	n.mu.Lock()
	rn := n.rings[ringID]
	n.mu.Unlock()
	if rn == nil {
		return ring.FlowStats{}, false
	}
	return rn.FlowStats(), true
}

// RingStats reports a joined ring's decided and skipped instance
// counters (decided includes skipped); ok=false if not joined.
func (n *Node) RingStats(ringID transport.RingID) (decided, skipped uint64, ok bool) {
	n.mu.Lock()
	rn := n.rings[ringID]
	n.mu.Unlock()
	if rn == nil {
		return 0, 0, false
	}
	decided, skipped = rn.Stats()
	return decided, skipped, true
}

// RingWALHealth reports a joined ring's group-commit failure accounting
// (see ring.Node.WALHealth); ok=false if not joined.
func (n *Node) RingWALHealth(ringID transport.RingID) (failures uint64, steppedOut bool, lastErr string, ok bool) {
	n.mu.Lock()
	rn := n.rings[ringID]
	n.mu.Unlock()
	if rn == nil {
		return 0, false, "", false
	}
	failures, steppedOut, lastErr = rn.WALHealth()
	return failures, steppedOut, lastErr, true
}

// RingLambdaNow reports a joined ring's current rate-leveling target λ
// (static Lambda unless AdaptiveSkip moved it); ok=false if not joined.
func (n *Node) RingLambdaNow(ringID transport.RingID) (int, bool) {
	n.mu.Lock()
	rn := n.rings[ringID]
	n.mu.Unlock()
	if rn == nil {
		return 0, false
	}
	return rn.LambdaNow(), true
}

// ResubscribeStallMax reports the longest time an epoch transition blocked
// the merge goroutine (instrumentation for cmd/bench -reconfig).
func (n *Node) ResubscribeStallMax() time.Duration {
	return time.Duration(n.resubStall.Load())
}

func containsRing(ids []transport.RingID, g transport.RingID) bool {
	for _, x := range ids {
		if x == g {
			return true
		}
	}
	return false
}

func ringIDsEqual(a, b []transport.RingID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// DeliveredVector snapshots the per-group delivered instance high-water
// marks (the tuple k_p of Section 5.2). Inside a delivery handler it
// reflects exactly the deliveries up to and including the current one, and
// satisfies Predicate 1 (x < y ⇒ k[x] ≥ k[y]) at merge-turn boundaries.
func (n *Node) DeliveredVector() recovery.Vector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.vector.Clone()
}

// MergeCursor snapshots the merge position. Pair it with DeliveredVector
// (read atomically inside a delivery handler) to identify a checkpoint.
func (n *Node) MergeCursor() Cursor {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cursor.Clone()
}

// nowNanos reads the monotonic clock as nanoseconds (wall-clock jumps must
// not fake or hide merge progress).
//
//lint:allow determinism liveness telemetry only: the monotonic reading feeds SinceProgress staleness bounds, never delivered state
func nowNanos() int64 { return int64(time.Since(progressEpoch)) }

var progressEpoch = time.Now()

// SinceProgress reports how long ago the deterministic merge last flushed
// a batch boundary (published its vector and cursor). Skip-only flushes
// count as progress — they prove the merge is consuming the streams — so
// the value bounds how stale this learner's state can be relative to the
// global delivered order. ok is false before the first subscription
// flush, when no bound can be given.
// SetBatchBoundary installs fn to be called by the merge goroutine after
// every batch-boundary flush, once the flushed prefix has been fully
// processed by the delivery handler (including skip-only flushes, which
// advance the vector without invoking the handler). Install it before
// Subscribe; fn must be fast and must not call back into the node's
// delivery path.
func (n *Node) SetBatchBoundary(fn func()) {
	if fn == nil {
		n.boundary.Store(nil)
		return
	}
	n.boundary.Store(&fn)
}

func (n *Node) SinceProgress() (time.Duration, bool) {
	at := n.progressNs.Load()
	if at == 0 {
		return 0, false
	}
	return time.Duration(nowNanos() - at), true
}

// LimitBatch caps the number of messages per delivery batch. Call before
// subscribing; replicas with periodic checkpoints use it so the
// every-N-commands checkpoint cadence survives batch-at-a-time delivery
// (a batch never spans more than one checkpoint interval). Values <= 0 and
// values above the configured bound are ignored.
func (n *Node) LimitBatch(maxMessages int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if maxMessages <= 0 || n.merging {
		return
	}
	if maxMessages < n.cfg.Batch.MaxMessages {
		n.cfg.Batch.MaxMessages = maxMessages
	}
}

// Subscription returns the subscribed groups in ascending order (the
// partition this node belongs to).
func (n *Node) Subscription() []transport.RingID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]transport.RingID(nil), n.subscribed...)
}

// Multicast sends data to group γ: the value is proposed to the ring's
// coordinator. The caller need not be a member of the ring (clients act as
// proposers). Delivery is not guaranteed; callers retry end-to-end.
func (n *Node) Multicast(group transport.RingID, data []byte) error {
	return n.MulticastValue(group, 0, data)
}

// MulticastValue multicasts data with a caller-chosen value id (0 picks a
// fresh one). Reconfiguration markers need a pre-agreed id: learners arm
// PrepareResubscribe with it before the value is multicast, and retries
// reuse the same id so a retransmitted marker cannot trigger two epochs.
func (n *Node) MulticastValue(group transport.RingID, id uint64, data []byte) error {
	return n.MulticastValueTraced(group, id, data, trace.Context{})
}

// MulticastValueTraced is MulticastValue with a trace context: when ctx
// is sampled the proposal frame carries it as an optional trailing
// header, so every hop of the value's journey records spans under it.
func (n *Node) MulticastValueTraced(group transport.RingID, id uint64, data []byte, ctx trace.Context) error {
	select {
	case <-n.done:
		return ErrStopped
	default:
	}
	if id == 0 {
		id = transport.MakeValueID(n.id, n.proposeSeq.Add(1))
	}
	v := transport.Value{ID: id, Count: 1, Data: data}
	n.mu.Lock()
	rn := n.rings[group]
	n.mu.Unlock()
	if rn != nil {
		return rn.ProposeValueTraced(v, ctx)
	}
	rc, ok := n.coord.Ring(group)
	if !ok {
		return fmt.Errorf("core: ring %d not registered", group)
	}
	if rc.Coordinator == 0 {
		return ring.ErrNoCoordinator
	}
	m := transport.Message{
		Kind:  transport.KindProposal,
		Ring:  group,
		Value: v,
		// Seq carries the original proposer so admission-control replies
		// survive proposal forwarding (see ring.ProposeValue).
		Seq: uint64(n.id),
	}
	if n.cfg.Tracer != nil && ctx.Sampled() {
		m.Traces = append(m.Traces, transport.TraceRef{ValueID: id, Ctx: ctx})
		n.cfg.Tracer.Add(ctx, "forward", uint32(group), 0, id, time.Now(), 0)
	}
	return n.tr.Send(rc.Coordinator, m)
}

// MarkerID returns a fresh proposer-unique value id suitable for
// MulticastValue/PrepareResubscribe markers.
func (n *Node) MarkerID() uint64 {
	return transport.MakeValueID(n.id, n.proposeSeq.Add(1))
}

// DeliveredCount reports the number of application messages delivered.
func (n *Node) DeliveredCount() uint64 { return n.delivered.Load() }

// RingIOGauges returns a joined ring's group-commit instrumentation (WAL
// batch and staged-send batch size distributions), or nils if the process
// has not joined the ring.
func (n *Node) RingIOGauges(ringID transport.RingID) (wal, send *metrics.BatchGauge) {
	n.mu.Lock()
	rn := n.rings[ringID]
	n.mu.Unlock()
	if rn == nil {
		return nil, nil
	}
	return rn.IOGauges()
}

// Stop shuts down the merge and every joined ring.
func (n *Node) Stop() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	merging := n.merging
	rings := make([]*ring.Node, 0, len(n.rings))
	for _, rn := range n.rings {
		rings = append(rings, rn)
	}
	n.mu.Unlock()

	close(n.done)
	for _, rn := range rings {
		rn.Stop()
	}
	if merging {
		<-n.mergeDone
	}
}
