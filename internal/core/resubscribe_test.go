package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"amcast/internal/transport"
)

// TestResubscribeSwitchesAtMarker verifies the heart of online
// reconfiguration: two learners arm the same marker, the subscription
// switches from {1} to {1, 2} at exactly that value, and both learners
// deliver identical merged sequences across the transition — the
// deterministic merge property extended over an epoch change.
func TestResubscribeSwitchesAtMarker(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1, 2},
		2: {1, 2},
	}
	d := newDeployment(t, 2, rings, nil)
	for i := 1; i <= 2; i++ {
		d.joinAll(transport.ProcessID(i), []transport.RingID{1, 2}, []transport.RingID{1})
	}

	// Pre-marker traffic on the old subscription.
	for i := 0; i < 10; i++ {
		if err := d.nodes[1].Multicast(1, []byte(fmt.Sprintf("pre%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Arm the transition at both learners BEFORE the marker is proposed
	// (the determinism contract), then multicast the marker.
	marker := d.nodes[1].MarkerID()
	for i := 1; i <= 2; i++ {
		if err := d.nodes[transport.ProcessID(i)].PrepareResubscribe(marker, 1, 2); err != nil {
			t.Fatalf("node %d prepare: %v", i, err)
		}
	}
	if err := d.nodes[1].MulticastValue(1, marker, []byte("MARK")); err != nil {
		t.Fatal(err)
	}

	// Post-marker traffic interleaved across both rings: only a correct
	// epoch transition merges ring 2 identically on both learners.
	for i := 0; i < 20; i++ {
		if err := d.nodes[1].Multicast(1, []byte(fmt.Sprintf("a%02d", i))); err != nil {
			t.Fatal(err)
		}
		if err := d.nodes[1].Multicast(2, []byte(fmt.Sprintf("b%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	const total = 10 + 1 + 40
	seq1 := d.collect(1, total, 10*time.Second)
	seq2 := d.collect(2, total, 10*time.Second)
	for i := range seq1 {
		if seq1[i].Group != seq2[i].Group || seq1[i].ValueID != seq2[i].ValueID {
			t.Fatalf("merged sequences diverge at %d: node1=(%d,%x) node2=(%d,%x)",
				i, seq1[i].Group, seq1[i].ValueID, seq2[i].Group, seq2[i].ValueID)
		}
	}

	for i := 1; i <= 2; i++ {
		n := d.nodes[transport.ProcessID(i)]
		cur := n.MergeCursor()
		if cur.Epoch != 1 {
			t.Errorf("node %d epoch = %d, want 1", i, cur.Epoch)
		}
		if subs := n.Subscription(); len(subs) != 2 || subs[0] != 1 || subs[1] != 2 {
			t.Errorf("node %d subscription = %v, want [1 2]", i, subs)
		}
		vec := n.DeliveredVector()
		if _, ok := vec[2]; !ok {
			t.Errorf("node %d vector missing new group: %v", i, vec)
		}
	}
}

// TestResubscribeDropsGroup verifies that removing a group at the marker
// stops its deliveries and prunes its vector entry.
func TestResubscribeDropsGroup(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1},
		2: {1},
	}
	d := newDeployment(t, 1, rings, nil)
	d.joinAll(1, []transport.RingID{1, 2}, []transport.RingID{1, 2})

	// One message per ring: the round-robin merge consumes group 1's
	// turn before it looks at group 2.
	if err := d.nodes[1].Multicast(1, []byte("on1")); err != nil {
		t.Fatal(err)
	}
	if err := d.nodes[1].Multicast(2, []byte("on2")); err != nil {
		t.Fatal(err)
	}
	d.collect(1, 2, 5*time.Second)

	marker := d.nodes[1].MarkerID()
	if err := d.nodes[1].PrepareResubscribe(marker, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.nodes[1].MulticastValue(1, marker, []byte("MARK")); err != nil {
		t.Fatal(err)
	}
	d.collect(1, 1, 5*time.Second) // the marker itself

	// Traffic on the dropped ring must not be delivered anymore; traffic
	// on the kept ring still flows.
	if err := d.nodes[1].Multicast(2, []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	if err := d.nodes[1].Multicast(1, []byte("kept")); err != nil {
		t.Fatal(err)
	}
	ds := d.collect(1, 1, 5*time.Second)
	if string(ds[0].Data) != "kept" || ds[0].Group != 1 {
		t.Fatalf("delivered %q from group %d after dropping group 2", ds[0].Data, ds[0].Group)
	}
	vec := d.nodes[1].DeliveredVector()
	if _, ok := vec[2]; ok {
		t.Errorf("vector still carries dropped group: %v", vec)
	}
	if got := d.nodes[1].Subscription(); len(got) != 1 || got[0] != 1 {
		t.Errorf("subscription = %v, want [1]", got)
	}
	// A dropped ring's delivery stream has been partially discarded by
	// the drain goroutine; re-adding it must be refused, not silently
	// diverge.
	err := d.nodes[1].PrepareResubscribe(d.nodes[1].MarkerID(), 1, 2)
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Errorf("re-adding dropped ring: err = %v, want dropped-ring rejection", err)
	}
}

// TestPrepareResubscribeValidation covers the arming error paths.
func TestPrepareResubscribeValidation(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1, 2},
		2: {2}, // node 1 is not a member of ring 2
	}
	d := newDeployment(t, 2, rings, nil)
	if err := d.nodes[1].PrepareResubscribe(7, 1); err == nil {
		t.Error("prepare before subscribe should fail")
	}
	d.joinAll(1, []transport.RingID{1}, []transport.RingID{1})
	if err := d.nodes[1].PrepareResubscribe(0, 1); err == nil {
		t.Error("zero marker accepted")
	}
	if err := d.nodes[1].PrepareResubscribe(7, 1, 2); err == nil {
		t.Error("resubscribing to an unjoined ring should fail")
	}
	if err := d.nodes[1].PrepareResubscribe(7, 1); err != nil {
		t.Fatalf("valid prepare failed: %v", err)
	}
	// A newer prepare replaces an armed-but-unfired transition (an
	// orphaned marker must not wedge reconfiguration forever).
	if err := d.nodes[1].PrepareResubscribe(8, 1); err != nil {
		t.Errorf("replacing prepare failed: %v", err)
	}
	if d.nodes[1].CancelResubscribe(7) {
		t.Error("cancel of replaced marker succeeded")
	}
	if !d.nodes[1].CancelResubscribe(8) {
		t.Error("cancel of pending marker failed")
	}
	if d.nodes[1].CancelResubscribe(8) {
		t.Error("cancel of absent marker succeeded")
	}
	if err := d.nodes[1].PrepareResubscribe(9, 1); err != nil {
		t.Errorf("prepare after cancel failed: %v", err)
	}
}

// TestCursorMismatchDiagnostics verifies the error names the expected and
// provided group sets instead of the old opaque message.
func TestCursorMismatchDiagnostics(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.StartCursor = Cursor{Groups: []transport.RingID{1, 2}, Credits: []uint64{0, 0}, Epoch: 3}
	})
	if err := d.nodes[1].Join(1); err != nil {
		t.Fatal(err)
	}
	err := d.nodes[1].Subscribe(func(Delivery) {}, 1)
	if err == nil {
		t.Fatal("cursor/subscription mismatch should fail")
	}
	for _, want := range []string{"[1 2]", "[1]", "epoch 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("diagnostic %q does not name %q", err, want)
		}
	}
}
