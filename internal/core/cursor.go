package core

import (
	"encoding/binary"

	"amcast/internal/recovery"
	"amcast/internal/transport"
)

// Cursor captures the deterministic merge's round-robin position so a
// recovered replica resumes delivery at exactly the point its checkpoint
// was taken — even mid-turn. Together with the delivered-instance vector
// (recovery.Vector), it fully identifies a point in the merged sequence:
// two learners with equal (vector, cursor) will deliver identical suffixes.
type Cursor struct {
	// Groups lists the subscription in ascending order (sanity check on
	// restore).
	Groups []transport.RingID
	// Credits are surplus instances consumed beyond past turn quotas
	// (skip ranges can overshoot a turn), indexed like Groups.
	Credits []uint64
	// Next is the index of the group whose turn is in progress or next.
	Next int
	// Remaining is how many instances the in-progress turn still has to
	// consume; zero means the turn has not started.
	Remaining uint64
	// Epoch counts subscription changes: it starts at 0 when a node first
	// subscribes and increments every time the merge applies a
	// Resubscribe at a marker. A checkpoint therefore records not just
	// where in the merged stream it was taken but under which group set,
	// and recovery restores the post-reconfiguration subscription instead
	// of rejecting it as a mismatch.
	Epoch uint64
}

// Clone deep-copies the cursor.
func (c Cursor) Clone() Cursor {
	return Cursor{
		Groups:    append([]transport.RingID(nil), c.Groups...),
		Credits:   append([]uint64(nil), c.Credits...),
		Next:      c.Next,
		Remaining: c.Remaining,
		Epoch:     c.Epoch,
	}
}

// Encode serializes the cursor for inclusion in a checkpoint.
func (c Cursor) Encode() []byte {
	buf := make([]byte, 0, 4+len(c.Groups)*12+20)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(c.Groups)))
	buf = append(buf, tmp[:4]...)
	for i, g := range c.Groups {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(g))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:8], c.Credits[i])
		buf = append(buf, tmp[:8]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(c.Next))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:8], c.Remaining)
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint64(tmp[:8], c.Epoch)
	buf = append(buf, tmp[:8]...)
	return buf
}

// DecodeCursor parses Encode output. Cursors encoded before the epoch
// field existed (12 trailing bytes instead of 20) decode with Epoch 0.
func DecodeCursor(buf []byte) (Cursor, error) {
	if len(buf) < 4 {
		return Cursor{}, recovery.ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < n*12+12 {
		return Cursor{}, recovery.ErrCorrupt
	}
	c := Cursor{
		Groups:  make([]transport.RingID, n),
		Credits: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		c.Groups[i] = transport.RingID(binary.LittleEndian.Uint32(buf[:4]))
		c.Credits[i] = binary.LittleEndian.Uint64(buf[4:12])
		buf = buf[12:]
	}
	c.Next = int(binary.LittleEndian.Uint32(buf[:4]))
	c.Remaining = binary.LittleEndian.Uint64(buf[4:12])
	if len(buf) >= 20 {
		c.Epoch = binary.LittleEndian.Uint64(buf[12:20])
	}
	return c, nil
}
