package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"amcast/internal/transport"
)

// TestSubscribeBatchMatchesSubscribe is the batched-delivery equivalence
// property: a per-message subscriber and a batch subscriber attached to
// the same decided sequences deliver the identical global order — with
// concurrent proposers on two groups, rate-leveling skips and message
// packing all in play.
func TestSubscribeBatchMatchesSubscribe(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{
		1: {1, 2, 3},
		2: {1, 2, 3},
	}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.Ring.SkipEnabled = true
		cfg.Ring.Delta = 5 * time.Millisecond
		cfg.Ring.Lambda = 2000
		cfg.Ring.BatchBytes = 4 << 10 // message packing on
	})
	for i := 1; i <= 3; i++ {
		for _, r := range []transport.RingID{1, 2} {
			if err := d.nodes[transport.ProcessID(i)].Join(r); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Node 1 subscribes per message, node 2 per batch.
	var mu sync.Mutex
	var perMsg, batched []Delivery
	if err := d.nodes[1].Subscribe(func(dd Delivery) {
		mu.Lock()
		perMsg = append(perMsg, Delivery{Group: dd.Group, Instance: dd.Instance, ValueID: dd.ValueID, Data: append([]byte(nil), dd.Data...)})
		mu.Unlock()
	}, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.nodes[2].SubscribeBatch(func(ds []Delivery) {
		mu.Lock()
		for _, dd := range ds {
			batched = append(batched, Delivery{Group: dd.Group, Instance: dd.Instance, ValueID: dd.ValueID, Data: append([]byte(nil), dd.Data...)})
		}
		mu.Unlock()
	}, 1, 2); err != nil {
		t.Fatal(err)
	}

	const perGroup = 150
	go func() {
		for i := 0; i < perGroup; i++ {
			_ = d.nodes[1].Multicast(1, []byte(fmt.Sprintf("g1-%03d", i)))
		}
	}()
	go func() {
		for i := 0; i < perGroup; i++ {
			_ = d.nodes[2].Multicast(2, []byte(fmt.Sprintf("g2-%03d", i)))
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		p, b := len(perMsg), len(batched)
		mu.Unlock()
		if p >= 2*perGroup && b >= 2*perGroup {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: per-message %d, batched %d of %d", p, b, 2*perGroup)
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	n := min(len(perMsg), len(batched))
	for i := 0; i < n; i++ {
		p, b := perMsg[i], batched[i]
		if p.Group != b.Group || p.Instance != b.Instance || p.ValueID != b.ValueID || string(p.Data) != string(b.Data) {
			t.Fatalf("order diverges at %d: per-message %+v vs batched %+v", i, p, b)
		}
	}
}

// TestBatchBoundsRespected checks that batches never exceed the
// configured message bound and that LimitBatch tightens it. Packing is
// off: batch bounds hold at consensus-instance granularity (an instance
// is never split across batches, so a packed instance may overshoot).
func TestBatchBoundsRespected(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, func(cfg *Config) {
		cfg.Batch = BatchOptions{MaxMessages: 16}
	})
	for i := 1; i <= 3; i++ {
		if err := d.nodes[transport.ProcessID(i)].Join(1); err != nil {
			t.Fatal(err)
		}
	}
	d.nodes[2].LimitBatch(7)

	type sub struct {
		mu    sync.Mutex
		sizes []int
		total int
	}
	subs := make([]*sub, 2)
	for i, id := range []transport.ProcessID{1, 2} {
		s := &sub{}
		subs[i] = s
		if err := d.nodes[id].SubscribeBatch(func(ds []Delivery) {
			s.mu.Lock()
			s.sizes = append(s.sizes, len(ds))
			s.total += len(ds)
			s.mu.Unlock()
		}, 1); err != nil {
			t.Fatal(err)
		}
	}

	const count = 200
	for i := 0; i < count; i++ {
		if err := d.nodes[1].Multicast(1, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		subs[0].mu.Lock()
		t0 := subs[0].total
		subs[0].mu.Unlock()
		subs[1].mu.Lock()
		t1 := subs[1].total
		subs[1].mu.Unlock()
		if t0 >= count && t1 >= count {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d/%d deliveries", t0, count)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, limit := range []int{16, 7} {
		subs[i].mu.Lock()
		for _, sz := range subs[i].sizes {
			if sz == 0 || sz > limit {
				t.Errorf("node %d batch size %d outside (0, %d]", i+1, sz, limit)
			}
		}
		subs[i].mu.Unlock()
	}
}

// TestBatchVectorConsistency: inside a batch handler, DeliveredVector and
// MergeCursor describe exactly the state after the batch's last delivery
// (the Section 5.2 checkpoint tuple at batch boundaries).
func TestBatchVectorConsistency(t *testing.T) {
	rings := map[transport.RingID][]transport.ProcessID{1: {1, 2, 3}}
	d := newDeployment(t, 3, rings, nil)
	for i := 1; i <= 3; i++ {
		if err := d.nodes[transport.ProcessID(i)].Join(1); err != nil {
			t.Fatal(err)
		}
	}
	node := d.nodes[1]
	errc := make(chan error, 1)
	done := make(chan struct{})
	var total int
	if err := node.SubscribeBatch(func(ds []Delivery) {
		vec := node.DeliveredVector()
		last := ds[len(ds)-1]
		if vec[1] != last.Instance {
			select {
			case errc <- fmt.Errorf("vector[1]=%d inside handler, want last instance %d", vec[1], last.Instance):
			default:
			}
		}
		total += len(ds)
		if total >= 50 {
			select {
			case <-done:
			default:
				close(done)
			}
		}
	}, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := node.Multicast(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("timed out at %d deliveries", total)
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}
