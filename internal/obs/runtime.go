package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"amcast/internal/bufpool"
)

// GC-pressure and pool telemetry. The zero-allocation work (pooled reads,
// refcounted value buffers) is only verifiable if its effect is visible at
// runtime, so every deployment registry carries:
//
//   - go.* gauges over runtime.MemStats — heap level and GC pause
//     quantiles computed from the PauseNs ring, sampled at scrape time
//     behind a short-lived cache (ReadMemStats stops the world);
//   - mrp.bufpool.* counters over the process-wide buffer pool — hit/miss
//     rates say whether the size classes fit the workload, outstanding
//     says whether refs leak.

// memSampler caches one MemStats snapshot briefly so a scrape reading a
// dozen go.* series pays for a single ReadMemStats.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

const memSampleTTL = 100 * time.Millisecond

func (s *memSampler) snapshot() runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.at) > memSampleTTL {
		runtime.ReadMemStats(&s.stat)
		s.at = now
	}
	return s.stat
}

// pauseQuantile computes a quantile over the recent GC pauses recorded in
// the MemStats.PauseNs circular buffer (up to the last 256 cycles).
func pauseQuantile(m *runtime.MemStats, q float64) float64 {
	n := int(m.NumGC)
	if n == 0 {
		return 0
	}
	if n > len(m.PauseNs) {
		n = len(m.PauseNs)
	}
	pauses := make([]uint64, n)
	for i := 0; i < n; i++ {
		pauses[i] = m.PauseNs[(int(m.NumGC)-1-i+len(m.PauseNs))%len(m.PauseNs)]
	}
	sort.Slice(pauses, func(i, j int) bool { return pauses[i] < pauses[j] })
	idx := int(q * float64(n-1))
	return float64(pauses[idx]) / 1e9
}

// RegisterRuntime registers heap and GC-pause telemetry for this process.
func RegisterRuntime(r *Registry) {
	if r == nil {
		return
	}
	s := &memSampler{}
	gauge := func(name string, read func(*runtime.MemStats) float64) {
		r.Gauge(name, nil, func() float64 { m := s.snapshot(); return read(&m) })
	}
	counter := func(name string, read func(*runtime.MemStats) float64) {
		r.Counter(name, nil, func() float64 { m := s.snapshot(); return read(&m) })
	}
	gauge("go.heap.inuse_bytes", func(m *runtime.MemStats) float64 { return float64(m.HeapInuse) })
	gauge("go.heap.objects", func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) })
	gauge("go.gc.pause_p50_seconds", func(m *runtime.MemStats) float64 { return pauseQuantile(m, 0.50) })
	gauge("go.gc.pause_p99_seconds", func(m *runtime.MemStats) float64 { return pauseQuantile(m, 0.99) })
	counter("go.gc.pause_seconds_total", func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 })
	counter("go.gc.cycles_total", func(m *runtime.MemStats) float64 { return float64(m.NumGC) })
	counter("go.alloc.mallocs_total", func(m *runtime.MemStats) float64 { return float64(m.Mallocs) })
	counter("go.alloc.bytes_total", func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) })
}

// RegisterBufPool registers the process-wide buffer-pool statistics.
func RegisterBufPool(r *Registry) {
	if r == nil {
		return
	}
	r.Counter("mrp.bufpool.hits_total", nil, func() float64 {
		return float64(bufpool.Snapshot().Hits)
	})
	r.Counter("mrp.bufpool.misses_total", nil, func() float64 {
		return float64(bufpool.Snapshot().Misses)
	})
	r.Counter("mrp.bufpool.oversize_total", nil, func() float64 {
		return float64(bufpool.Snapshot().Oversize)
	})
	r.Gauge("mrp.bufpool.outstanding", nil, func() float64 {
		return float64(bufpool.Outstanding())
	})
}

// DropCounter is implemented by transports that count dropped sends
// (transport.TCPNode).
type DropCounter interface{ DroppedSends() uint64 }

// RegisterTransport registers a transport node's send-drop counter under
// transport.send.dropped with a {process} label.
func RegisterTransport(r *Registry, process string, tr DropCounter) {
	if r == nil || tr == nil {
		return
	}
	r.Counter("transport.send.dropped", map[string]string{"process": process}, func() float64 {
		return float64(tr.DroppedSends())
	})
}
