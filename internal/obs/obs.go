// Package obs is the process-wide observability surface: a pull-based
// metric registry unifying the counters, gauges, EWMAs and histograms
// scattered across the stack under stable dotted names with labels, and
// an HTTP mux exporting them as Prometheus text (/metrics) alongside
// JSON debug views (/debug/rings, /debug/traces, /debug/trace/<id>) and
// the standard pprof profiles (/debug/pprof/...).
//
// The registry is read-at-scrape: components register a read function
// over instrumentation they already maintain (atomic counters, gauge
// snapshots), so registration adds no cost to any hot path — the only
// work happens when a scraper asks.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"

	"amcast/internal/trace"
)

// Kind classifies a metric for exposition.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing cumulative count.
	KindCounter Kind = iota
	// KindGauge is a point-in-time level that can go up and down.
	KindGauge
)

func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// entry is one registered metric: a stable dotted name, constant labels
// and a read function sampled at scrape time.
type entry struct {
	name   string
	kind   Kind
	labels map[string]string
	read   func() float64
}

// Sample is one scraped metric value.
type Sample struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Registry is the process-wide metric registry. All methods are safe for
// concurrent use and nil-receiver safe, so components can register
// unconditionally and an unwired deployment pays nothing.
type Registry struct {
	mu      sync.Mutex
	entries []entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers a cumulative metric under a dotted name. read is
// called at scrape time; labels are constant for the metric's lifetime.
func (r *Registry) Counter(name string, labels map[string]string, read func() float64) {
	r.register(name, KindCounter, labels, read)
}

// Gauge registers a level metric under a dotted name.
func (r *Registry) Gauge(name string, labels map[string]string, read func() float64) {
	r.register(name, KindGauge, labels, read)
}

func (r *Registry) register(name string, kind Kind, labels map[string]string, read func() float64) {
	if r == nil || read == nil {
		return
	}
	var copied map[string]string
	if len(labels) > 0 {
		copied = make(map[string]string, len(labels))
		for k, v := range labels {
			copied[k] = v
		}
	}
	r.mu.Lock()
	r.entries = append(r.entries, entry{name: name, kind: kind, labels: copied, read: read})
	r.mu.Unlock()
}

// Samples scrapes every registered metric, sorted by name then label
// fingerprint for stable output.
func (r *Registry) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	out := make([]Sample, len(entries))
	for i, e := range entries {
		out[i] = Sample{Name: e.name, Kind: e.kind.String(), Labels: e.labels, Value: e.read()}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelFingerprint(out[i].Labels) < labelFingerprint(out[j].Labels)
	})
	return out
}

func labelFingerprint(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}

// promName maps a dotted metric name to the Prometheus charset
// (dots and dashes become underscores).
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format v0.0.4: one # TYPE line per metric name, then each labeled
// series, stably ordered.
func (r *Registry) WritePrometheus(w io.Writer) {
	samples := r.Samples()
	lastName := ""
	for _, s := range samples {
		pn := promName(s.Name)
		if s.Name != lastName {
			fmt.Fprintf(w, "# TYPE %s %s\n", pn, s.Kind)
			lastName = s.Name
		}
		if len(s.Labels) == 0 {
			fmt.Fprintf(w, "%s %s\n", pn, formatValue(s.Value))
			continue
		}
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%q", promName(k), s.Labels[k])
		}
		fmt.Fprintf(w, "%s{%s} %s\n", pn, strings.Join(parts, ","), formatValue(s.Value))
	}
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DebugProvider produces a JSON-serializable snapshot for one
// /debug/<name> endpoint (e.g. per-ring protocol state for /debug/rings).
type DebugProvider func() any

// NewMux builds the observability mux:
//
//	/metrics            Prometheus text exposition of reg
//	/debug/<name>       JSON from each debug provider (e.g. /debug/rings)
//	/debug/traces       recent trace ids + registered recorders
//	/debug/trace/<id>   one assembled causal timeline (hex or decimal id)
//	/debug/pprof/...    standard net/http/pprof profiles
//
// Any of reg/col may be nil; the matching endpoints then serve empty
// documents rather than 404, so scrapers stay config-independent.
func NewMux(reg *Registry, col *trace.Collector, debug map[string]DebugProvider) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Samples())
	})
	for name, provider := range debug {
		p := provider
		mux.HandleFunc("/debug/"+name, func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, p())
		})
	}
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		ids := col.TraceIDs(100)
		hexIDs := make([]string, len(ids))
		for i, id := range ids {
			hexIDs[i] = strconv.FormatUint(id, 16)
		}
		writeJSON(w, map[string]any{
			"traces":    hexIDs,
			"recorders": col.Recorders(),
		})
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, req *http.Request) {
		raw := strings.TrimPrefix(req.URL.Path, "/debug/trace/")
		id, err := strconv.ParseUint(raw, 16, 64)
		if err != nil {
			if id, err = strconv.ParseUint(raw, 10, 64); err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
		}
		spans := col.Trace(id)
		writeJSON(w, map[string]any{
			"trace_id": strconv.FormatUint(id, 16),
			"spans":    spans,
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
