package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"amcast/internal/trace"
)

func TestRegistryPrometheusText(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mrp.wal.fsyncs", map[string]string{"process": "p1r1", "ring": "1"}, func() float64 { return 42 })
	reg.Counter("mrp.wal.fsyncs", map[string]string{"process": "p1r2", "ring": "1"}, func() float64 { return 7 })
	reg.Gauge("mrp.ring.lambda", map[string]string{"ring": "1"}, func() float64 { return 9000 })
	reg.Gauge("mrp.merge.stall.mean_seconds", nil, func() float64 { return 0.0015 })

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE mrp_wal_fsyncs counter\n",
		"mrp_wal_fsyncs{process=\"p1r1\",ring=\"1\"} 42\n",
		"mrp_wal_fsyncs{process=\"p1r2\",ring=\"1\"} 7\n",
		"# TYPE mrp_ring_lambda gauge\n",
		"mrp_ring_lambda{ring=\"1\"} 9000\n",
		"mrp_merge_stall_mean_seconds 0.0015\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per name, not per series.
	if n := strings.Count(out, "# TYPE mrp_wal_fsyncs"); n != 1 {
		t.Fatalf("TYPE line repeated %d times", n)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var reg *Registry
	reg.Counter("x", nil, func() float64 { return 1 })
	if s := reg.Samples(); s != nil {
		t.Fatalf("nil registry returned samples: %v", s)
	}
	var b strings.Builder
	reg.WritePrometheus(&b) // must not panic
}

func TestMuxEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mrp.core.delivered", nil, func() float64 { return 123 })

	rec := trace.NewRecorder("p1r1", 64)
	rec.SetSampling(1)
	ctx := rec.StartRoot()
	rec.Record(trace.Span{TraceID: ctx.TraceID, SpanID: ctx.SpanID, Name: "submit", Start: time.Now()})
	rec.Add(ctx, "merge", 1, 5, 99, time.Now(), 0)
	col := trace.NewCollector()
	col.Register(rec)

	srv := httptest.NewServer(NewMux(reg, col, map[string]DebugProvider{
		"rings": func() any { return map[string]any{"ring": 1} },
	}))
	defer srv.Close()

	body := get(t, srv.URL+"/metrics", http.StatusOK)
	if !strings.Contains(body, "mrp_core_delivered 123") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	body = get(t, srv.URL+"/debug/rings", http.StatusOK)
	if !strings.Contains(body, "\"ring\": 1") {
		t.Fatalf("/debug/rings wrong body: %s", body)
	}

	var list struct {
		Traces    []string `json:"traces"`
		Recorders []string `json:"recorders"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/traces", http.StatusOK)), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || len(list.Recorders) != 1 || list.Recorders[0] != "p1r1" {
		t.Fatalf("unexpected /debug/traces: %+v", list)
	}
	if got, want := list.Traces[0], strconv.FormatUint(ctx.TraceID, 16); got != want {
		t.Fatalf("trace id %s != %s", got, want)
	}

	var tr struct {
		Spans []trace.Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/debug/trace/"+list.Traces[0], http.StatusOK)), &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 2 || tr.Spans[0].Name != "submit" || tr.Spans[1].Name != "merge" {
		t.Fatalf("unexpected spans: %+v", tr.Spans)
	}

	get(t, srv.URL+"/debug/trace/not-an-id", http.StatusBadRequest)
	get(t, srv.URL+"/debug/pprof/", http.StatusOK)
}

func get(t *testing.T, url string, wantStatus int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
