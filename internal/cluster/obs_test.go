package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"amcast/internal/netem"
	"amcast/internal/trace"
)

// TestEndToEndTraceAndMetrics boots a live multi-ring MRP-Store cluster
// with 100% trace sampling, performs one write, and asserts over the
// actual HTTP surface that (a) /metrics exposes the unified catalog and
// (b) /debug/trace/<id> assembles one cluster-wide causal timeline with
// the full hop sequence submit → forward → wal-commit → vote → decide →
// merge → apply.
func TestEndToEndTraceAndMetrics(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	d.SetTraceSampling(1)
	c, err := d.StartStore(StoreOptions{Partitions: 2, Replicas: 3, Global: true})
	if err != nil {
		t.Fatal(err)
	}
	sc, raw, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()

	if err := sc.Insert("trace-key", []byte("trace-value")); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(c.ObsMux())
	defer srv.Close()

	// Metrics: the catalog must expose replica, ring and client series.
	metrics := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"# TYPE mrp_replica_executed_total counter",
		"# TYPE mrp_core_delivered_total counter",
		"# TYPE mrp_ring_decided_total counter",
		"# TYPE mrp_ring_lambda gauge",
		"# TYPE mrp_merge_stall_seconds_total counter",
		"# TYPE mrp_client_retransmits_total counter",
		`mrp_replica_executed_total{process="p1r1"}`,
		`mrp_ring_decided_total{process="p2r3",ring="2"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q\n%s", want, metrics)
		}
	}

	// The executed write must show up as a non-zero counter somewhere.
	if !strings.Contains(metrics, "mrp_replica_executed_total{process=\"p") {
		t.Fatal("no executed counters exposed")
	}

	// Debug ring state.
	var rings struct {
		Servers []struct {
			Process string `json:"process"`
		} `json:"servers"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/rings")), &rings); err != nil {
		t.Fatal(err)
	}
	if len(rings.Servers) != 6 {
		t.Fatalf("/debug/rings lists %d servers, want 6", len(rings.Servers))
	}

	// Trace assembly: the write's trace must exist and carry the full
	// causally-ordered hop sequence.
	var list struct {
		Traces []string `json:"traces"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/traces")), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) == 0 {
		t.Fatal("no traces collected")
	}

	want := []string{"submit", "forward", "wal-commit", "vote", "decide", "merge", "apply"}
	var best []trace.Span
	for _, id := range list.Traces {
		var tr struct {
			Spans []trace.Span `json:"spans"`
		}
		if err := json.Unmarshal([]byte(httpGet(t, srv.URL+"/debug/trace/"+id)), &tr); err != nil {
			t.Fatal(err)
		}
		if coversAll(tr.Spans, want) {
			best = tr.Spans
			break
		}
	}
	if best == nil {
		t.Fatalf("no trace covers the full hop sequence %v", want)
	}
	if len(best) < 6 {
		t.Fatalf("assembled trace has %d spans, want >= 6", len(best))
	}
	// Causal order: the root submit span leads, and every other span
	// starts inside its duration (all recorders share one clock here).
	if best[0].Name != "submit" || best[0].ParentID != 0 {
		t.Fatalf("first span is %q (parent %d), want root submit", best[0].Name, best[0].ParentID)
	}
	rootEnd := best[0].Start.Add(best[0].Duration)
	for _, s := range best[1:] {
		if s.ParentID != best[0].SpanID {
			t.Fatalf("span %q has parent %d, want root %d", s.Name, s.ParentID, best[0].SpanID)
		}
		if s.Start.Before(best[0].Start) || s.Start.After(rootEnd.Add(time.Second)) {
			t.Fatalf("span %q at %v outside root window [%v, %v]", s.Name, s.Start, best[0].Start, rootEnd)
		}
	}
	// Spans after the root are start-time ordered (sortCausal).
	for i := 2; i < len(best); i++ {
		if best[i].Start.Before(best[i-1].Start) {
			t.Fatalf("spans out of causal order: %q before %q", best[i].Name, best[i-1].Name)
		}
	}
}

func coversAll(spans []trace.Span, names []string) bool {
	seen := make(map[string]bool, len(spans))
	for _, s := range spans {
		seen[s.Name] = true
	}
	for _, n := range names {
		if !seen[n] {
			return false
		}
	}
	return true
}

// TestTraceSamplingDivisor checks the every-Nth sampling knob: at
// divisor 3, roughly one third of submissions root a trace.
func TestTraceSamplingDivisor(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	d.SetTraceSampling(3)
	c, err := d.StartStore(StoreOptions{Partitions: 1, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	sc, raw, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	for i := 0; i < 9; i++ {
		if err := sc.Insert(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ids := d.Trace.TraceIDs(0)
	if len(ids) != 3 {
		t.Fatalf("divisor 3 over 9 submits rooted %d traces, want 3", len(ids))
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
