package cluster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/store"
)

// TestParallelReplicasStayByteIdentical runs a mixed cluster — replica 1
// of each partition applies sequentially, the others with a 4-worker
// parallel applier — under concurrent YCSB-A-ish traffic (updates,
// inserts, deletes, scans, batches) while a background goroutine forces
// checkpoints mid-stream. After quiescing, every replica of a partition
// must hold byte-identical state: parallel apply may not diverge from
// sequential, not even transiently at checkpoint boundaries.
func TestParallelReplicasStayByteIdentical(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{
		Partitions: 2, Replicas: 3, Global: true, Ring: fastRing(),
		ExecWorkersOf: func(p, r int) int {
			if r == 1 {
				return 0 // sequential reference replica
			}
			return 4
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for !stop.Load() {
			for p := 1; p <= 2; p++ {
				for r := 1; r <= 3; r++ {
					c.Server(p, r).Replica().ForceCheckpoint()
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		sc, cl, err := c.NewClient(netem.SiteLocal)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(w int, sc *store.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				k := fmt.Sprintf("eq%03d", rng.Intn(60))
				var err error
				switch rng.Intn(10) {
				case 0:
					err = sc.Delete(k)
					if err != nil {
						err = nil // deleting an absent key fails by status, not transport
					}
				case 1:
					_, err = sc.Scan("eq000", "eq999")
				default:
					if insErr := sc.Insert(k, []byte(fmt.Sprintf("w%d-%d", w, i))); insErr != nil {
						err = sc.Update(k, []byte(fmt.Sprintf("w%d-%d", w, i)))
					}
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
		}(w, sc)
	}
	wg.Wait()
	stop.Store(true)
	ckptWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Wait for every replica of each partition to converge on the
	// sequential replica's exact state bytes.
	for p := 1; p <= 2; p++ {
		want := func() []byte { return c.Server(p, 1).SM().Snapshot() }
		for r := 2; r <= 3; r++ {
			deadline := time.Now().Add(10 * time.Second)
			for time.Now().Before(deadline) {
				if bytes.Equal(want(), c.Server(p, r).SM().Snapshot()) {
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
			if !bytes.Equal(want(), c.Server(p, r).SM().Snapshot()) {
				t.Fatalf("partition %d replica %d state diverged from sequential replica", p, r)
			}
		}
	}
	// Sanity: the parallel appliers actually ran.
	ap := c.Server(1, 2).Replica().Applier()
	if ap == nil {
		t.Fatal("replica 2 has no applier despite ExecWorkersOf")
	}
	if c.Server(1, 1).Replica().Applier() != nil {
		t.Fatal("sequential replica unexpectedly built an applier")
	}
}

// TestStoreLocalReads covers the read-index client path end to end:
// read-your-writes across rotating replicas, local scans, and the
// bounded-staleness mode staying fresh under rate-leveling skips.
func TestStoreLocalReads(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{Partitions: 2, Replicas: 3, Global: true, Ring: fastRing()})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 8; i++ {
		if err := sc.Insert(fmt.Sprintf("lr%02d", i), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	// Session read-your-writes: every local read after an update must see
	// that update, even though reads rotate over replicas that may not
	// have applied it yet (the read-index wait is what makes this hold).
	for i := 1; i <= 30; i++ {
		want := []byte(fmt.Sprintf("v%d", i))
		if err := sc.Update("lr00", want); err != nil {
			t.Fatal(err)
		}
		v, ok, err := sc.ReadLocal("lr00")
		if err != nil || !ok || !bytes.Equal(v, want) {
			t.Fatalf("iteration %d: local read = %q, %v, %v; want %q", i, v, ok, err, want)
		}
	}
	if _, ok, err := sc.ReadLocal("lr-missing"); err != nil || ok {
		t.Fatalf("local read of missing key = %v, %v", ok, err)
	}

	entries, err := sc.ScanLocal("lr00", "lr99")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("local scan = %d entries, want 8", len(entries))
	}

	// With rate-leveling skips on (fastRing sets λ), every replica keeps
	// proving progress, so bounded-staleness reads succeed.
	if _, ok, err := sc.ReadStale("lr01", 5*time.Second); err != nil || !ok {
		t.Fatalf("bounded-stale read = %v, %v", ok, err)
	}

	// Local reads were actually served locally.
	var served uint64
	for p := 1; p <= 2; p++ {
		for r := 1; r <= 3; r++ {
			served += c.Server(p, r).Replica().LocalReads()
		}
	}
	if served == 0 {
		t.Fatal("no replica counted a local read")
	}
}

// TestStoreReadStaleRefusesIdleReplica: without rate-leveling skips an
// idle partition stops proving progress, so a tight bound must surface
// ErrStale instead of old data.
func TestStoreReadStaleRefusesIdleReplica(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{
		Partitions: 1, Replicas: 3,
		Ring: core.RingOptions{RetryInterval: 30 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := sc.Insert("idle", []byte("v")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if _, _, err := sc.ReadStale("idle", 20*time.Millisecond); !errors.Is(err, store.ErrStale) {
		t.Fatalf("idle bounded-stale read: err = %v, want ErrStale", err)
	}
	if v, ok, err := sc.ReadStale("idle", time.Hour); err != nil || !ok || string(v) != "v" {
		t.Fatalf("generous bound = %q, %v, %v", v, ok, err)
	}
}
