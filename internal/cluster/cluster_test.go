package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"amcast/internal/core"
	"amcast/internal/dlog"
	"amcast/internal/netem"
	"amcast/internal/store"
)

func fastRing() core.RingOptions {
	return core.RingOptions{
		RetryInterval: 30 * time.Millisecond,
		SkipEnabled:   true,
		Delta:         5 * time.Millisecond,
		Lambda:        2000,
	}
}

func TestStoreEndToEnd(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{Partitions: 3, Replicas: 3, Global: true, Ring: fastRing()})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Table 1 operations end to end.
	if err := sc.Insert("alpha", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := sc.Insert("zeta", []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := sc.Read("alpha")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("read alpha = %q, %v, %v", v, ok, err)
	}
	if err := sc.Update("alpha", []byte("1b")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = sc.Read("alpha")
	if string(v) != "1b" {
		t.Fatalf("updated read = %q", v)
	}
	if _, ok, _ := sc.Read("missing"); ok {
		t.Error("read of missing key reported found")
	}
	if err := sc.Delete("zeta"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := sc.Read("zeta"); ok {
		t.Error("deleted key still readable")
	}
}

func TestStoreScanAcrossPartitions(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{
		Partitions: 3, Replicas: 3, Global: true,
		Kind: store.RangePartitioned, Ring: fastRing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Keys spread across the range partitions.
	keys := []string{"aaa", "mmm", "zzz", "bbb", "qqq", "hhh"}
	for i, k := range keys {
		if err := sc.Insert(k, []byte{byte(i)}); err != nil {
			t.Fatalf("insert %q: %v", k, err)
		}
	}
	entries, err := sc.Scan("a", "zzzz")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(keys) {
		t.Fatalf("scan returned %d entries, want %d: %+v", len(entries), len(keys), entries)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Key <= entries[i-1].Key {
			t.Fatal("scan results not sorted")
		}
	}
	// Narrow scan hits a subset.
	entries, err = sc.Scan("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("narrow scan = %+v", entries)
	}
}

func TestStoreIndependentRingsScan(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{
		Partitions: 3, Replicas: 3, Global: false,
		Kind: store.HashPartitioned, Ring: fastRing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 12; i++ {
		if err := sc.Insert(fmt.Sprintf("key%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := sc.Scan("key00", "key99")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("independent-rings scan = %d entries, want 12", len(entries))
	}
}

func TestStoreConcurrentClients(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{Partitions: 2, Replicas: 3, Ring: fastRing()})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 4
	const perClient = 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		sc, cl, err := c.NewClient(netem.SiteLocal)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, sc *store.Client) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				k := fmt.Sprintf("c%d-k%d", i, j)
				if err := sc.Insert(k, []byte("v")); err != nil {
					errs <- err
					return
				}
				if _, ok, err := sc.Read(k); err != nil || !ok {
					errs <- fmt.Errorf("read own write %q: %v %v", k, ok, err)
					return
				}
			}
		}(i, sc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStoreReplicaRecoveryEndToEnd(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{
		Partitions: 1, Replicas: 3,
		CheckpointEvery: 10, RecoveryTimeout: 2 * time.Second,
		Ring: fastRing(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 30; i++ {
		if err := sc.Insert(fmt.Sprintf("pre%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Crash replica 3, lose its checkpoints too (worst case: remote
	// checkpoint plus acceptor retransmission needed).
	c.Crash(1, 3)
	c.DropCheckpoints(1, 3)
	for i := 0; i < 20; i++ {
		if err := sc.Insert(fmt.Sprintf("mid%02d", i), []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Restart(1, 3); err != nil {
		t.Fatal(err)
	}
	// The recovered replica converges to the full database.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if srv := c.Server(1, 3); srv != nil && srv.SM().Len() == 50 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := c.Server(1, 3).SM().Len(); got != 50 {
		t.Fatalf("recovered replica has %d entries, want 50", got)
	}
	// And the cluster still serves writes.
	if err := sc.Insert("post", []byte("z")); err != nil {
		t.Fatal(err)
	}
}

func TestStoreGeoDeployment(t *testing.T) {
	topo := netem.EC2Topology()
	topo.SetScale(0.05) // shrink geo latencies 20x for test speed
	d := NewDeployment(topo)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{
		Partitions: 4, Replicas: 3, Global: true,
		SiteOf: func(p int) netem.Site { return netem.EC2Regions[p-1] },
		Ring: core.RingOptions{
			RetryInterval: 200 * time.Millisecond,
			SkipEnabled:   true,
			Delta:         20 * time.Millisecond,
			Lambda:        2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.EC2Regions[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sc.Timeout = 30 * time.Second
	for i := 0; i < 5; i++ {
		if err := sc.Insert(fmt.Sprintf("geo%d", i), []byte("v")); err != nil {
			t.Fatalf("geo insert %d: %v", i, err)
		}
	}
	entries, err := sc.Scan("geo0", "geo9")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("geo scan = %d entries, want 5", len(entries))
	}
}

func TestDLogEndToEnd(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartDLog(DLogOptions{Logs: 2, Servers: 3, Global: true, Ring: fastRing()})
	if err != nil {
		t.Fatal(err)
	}
	dc, cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Table 2 operations end to end.
	p0, err := dc.Append(1, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := dc.Append(1, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p0+1 {
		t.Errorf("positions %d, %d not consecutive", p0, p1)
	}
	v, err := dc.Read(1, p0)
	if err != nil || string(v) != "first" {
		t.Fatalf("read = %q, %v", v, err)
	}

	// Multi-append hits both logs atomically.
	positions, err := dc.MultiAppend([]dlog.LogID{1, 2}, []byte("both"))
	if err != nil {
		t.Fatal(err)
	}
	if len(positions) != 2 {
		t.Fatalf("multi-append positions = %v", positions)
	}
	v, err = dc.Read(2, positions[2])
	if err != nil || string(v) != "both" {
		t.Fatalf("read log2 = %q, %v", v, err)
	}

	// Trim discards the prefix.
	if err := dc.Trim(1, p1); err != nil {
		t.Fatal(err)
	}
	if _, err := dc.Read(1, p0); err == nil {
		t.Error("read of trimmed position succeeded")
	}
	if _, err := dc.Read(1, p1); err != nil {
		t.Errorf("read above trim failed: %v", err)
	}
}

func TestDLogConcurrentWritersSeeSamePositions(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartDLog(DLogOptions{Logs: 1, Servers: 3, Ring: fastRing()})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const perWriter = 15
	positions := make(chan uint64, writers*perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		dc, cl, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(dc *dlog.Client) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p, err := dc.Append(1, []byte("entry"))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				positions <- p
			}
		}(dc)
	}
	wg.Wait()
	close(positions)
	seen := make(map[uint64]bool)
	for p := range positions {
		if seen[p] {
			t.Fatalf("position %d assigned twice", p)
		}
		seen[p] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("got %d distinct positions, want %d", len(seen), writers*perWriter)
	}
}

func TestDLogServersConverge(t *testing.T) {
	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartDLog(DLogOptions{Logs: 2, Servers: 3, Global: true, Ring: fastRing()})
	if err != nil {
		t.Fatal(err)
	}
	dc, cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if _, err := dc.Append(dlog.LogID(i%2+1), []byte("e")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s := 1; s <= 3; s++ {
		for time.Now().Before(deadline) {
			if c.SM(s).LenOf(1)+c.SM(s).LenOf(2) == 20 {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if got := c.SM(s).LenOf(1) + c.SM(s).LenOf(2); got != 20 {
			t.Errorf("server %d has %d entries, want 20", s, got)
		}
	}
}

// TestClientsRideOutTransientOverload drives MRP-Store and dLog clients
// against coordinators with tiny proposal queues: every shed proposal
// comes back as an Overloaded reply and the smr client absorbs it with a
// bounded jittered backoff — no operation surfaces a hard failure, and
// the backoff counters prove the admission-control path actually ran.
func TestClientsRideOutTransientOverload(t *testing.T) {
	ring := fastRing()
	ring.MaxPending = 2
	ring.Window = 1

	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(StoreOptions{Partitions: 1, Replicas: 3, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				key := fmt.Sprintf("ov-%d-%d", w, i)
				if err := sc.Insert(key, []byte("v")); err != nil {
					errs <- fmt.Errorf("insert %s: %w", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cl.SMR.OverloadBackoffs() == 0 {
		t.Fatal("no overload backoffs recorded; the queue was never saturated and the test proves nothing")
	}
}

// TestDLogClientRidesOutOverload is the dLog flavour: concurrent appends
// through a 2-deep coordinator queue must all succeed via backoff.
func TestDLogClientRidesOutOverload(t *testing.T) {
	ring := fastRing()
	ring.MaxPending = 2
	ring.Window = 1

	d := NewDeployment(nil)
	defer d.Close()
	c, err := d.StartDLog(DLogOptions{Logs: 1, Servers: 3, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	dc, cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 12
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := dc.Append(dlog.LogID(1), []byte(fmt.Sprintf("e-%d-%d", w, i))); err != nil {
					errs <- fmt.Errorf("append %d-%d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cl.SMR.OverloadBackoffs() == 0 {
		t.Fatal("no overload backoffs recorded; the queue was never saturated")
	}
}
