package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"amcast/internal/core"
	"amcast/internal/obs"
	"amcast/internal/smr"
	"amcast/internal/storage"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// Observability wiring: every process the cluster layer boots registers
// its existing instrumentation (atomic counters, gauge snapshots, stall
// histograms) into the deployment's unified registry under stable dotted
// names with {process, ring} labels. Registration happens once per
// process id; the read functions look the live server up at scrape time,
// so restarts keep the same series instead of duplicating them.

// fsyncer is implemented by durable acceptor logs (storage.FileWAL).
type fsyncer interface{ Fsyncs() uint64 }

// wireClientObs registers a client process's flow-control counters.
func (d *Deployment) wireClientObs(id transport.ProcessID, cl *smr.Client) {
	lbl := map[string]string{"process": fmt.Sprintf("client%d", id)}
	d.Obs.Counter("mrp.client.retransmits_total", lbl, func() float64 {
		return float64(cl.Retransmits())
	})
	d.Obs.Counter("mrp.client.overload_backoffs_total", lbl, func() float64 {
		return float64(cl.OverloadBackoffs())
	})
}

// serverByID returns the live server for a process id (nil if down).
func (c *StoreCluster) serverByID(id transport.ProcessID) *store.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[id]
}

// wireWALObs registers an acceptor log's fsync counter, once per
// (process, ring) series even across restarts.
func (c *StoreCluster) wireWALObs(id transport.ProcessID, ring transport.RingID, lg storage.Log, proc string) {
	fs, ok := lg.(fsyncer)
	if !ok {
		return
	}
	key := logKey{ring, id}
	c.mu.Lock()
	if c.walWired[key] {
		c.mu.Unlock()
		return
	}
	c.walWired[key] = true
	c.mu.Unlock()
	c.D.Obs.Counter("mrp.wal.fsyncs_total", map[string]string{
		"process": proc,
		"ring":    strconv.FormatUint(uint64(ring), 10),
	}, func() float64 { return float64(fs.Fsyncs()) })
}

// wireStoreObs registers one store replica's metric catalog. Idempotent
// per process id (restarts re-use the registered series).
func (c *StoreCluster) wireStoreObs(p, r int) {
	id := ReplicaID(p, r)
	c.mu.Lock()
	if c.obsWired[id] {
		c.mu.Unlock()
		return
	}
	c.obsWired[id] = true
	c.mu.Unlock()

	proc := fmt.Sprintf("p%dr%d", p, r)
	rep := func() *smr.Replica {
		if s := c.serverByID(id); s != nil {
			return s.Replica()
		}
		return nil
	}
	groups := []transport.RingID{c.ringOf(p)}
	if c.opts.Global {
		groups = append(groups, GlobalRing)
	}
	registerProcessMetrics(c.D.Obs, proc, rep, groups)
}

// registerProcessMetrics registers the shared replica/node catalog for
// one process. rep returns the live replica at scrape time (nil while
// the process is down — series read 0 rather than disappearing).
func registerProcessMetrics(reg *obs.Registry, proc string, rep func() *smr.Replica, groups []transport.RingID) {
	node := func() *core.Node {
		if rp := rep(); rp != nil {
			return rp.CoreNode()
		}
		return nil
	}
	lbl := map[string]string{"process": proc}
	repMetric := func(name string, kind obs.Kind, read func(*smr.Replica) float64) {
		f := func() float64 {
			if rp := rep(); rp != nil {
				return read(rp)
			}
			return 0
		}
		if kind == obs.KindCounter {
			reg.Counter(name, lbl, f)
		} else {
			reg.Gauge(name, lbl, f)
		}
	}
	repMetric("mrp.replica.executed_total", obs.KindCounter, func(rp *smr.Replica) float64 { return float64(rp.ExecutedCount()) })
	repMetric("mrp.replica.checkpoints_total", obs.KindCounter, func(rp *smr.Replica) float64 { return float64(rp.CheckpointCount()) })
	repMetric("mrp.replica.local_reads_total", obs.KindCounter, func(rp *smr.Replica) float64 { return float64(rp.LocalReads()) })
	repMetric("mrp.replica.epoch", obs.KindGauge, func(rp *smr.Replica) float64 { return float64(rp.Epoch()) })
	repMetric("mrp.replica.read_wait_p99_seconds", obs.KindGauge, func(rp *smr.Replica) float64 {
		return rp.ReadWait().Quantile(0.99).Seconds()
	})
	repMetric("mrp.core.delivered_total", obs.KindCounter, func(rp *smr.Replica) float64 {
		return float64(rp.CoreNode().DeliveredCount())
	})

	for _, g := range groups {
		g := g
		rl := map[string]string{"process": proc, "ring": strconv.FormatUint(uint64(g), 10)}
		nodeMetric := func(name string, kind obs.Kind, read func(*core.Node) float64) {
			f := func() float64 {
				if n := node(); n != nil {
					return read(n)
				}
				return 0
			}
			if kind == obs.KindCounter {
				reg.Counter(name, rl, f)
			} else {
				reg.Gauge(name, rl, f)
			}
		}
		nodeMetric("mrp.ring.decided_total", obs.KindCounter, func(n *core.Node) float64 {
			decided, _, _ := n.RingStats(g)
			return float64(decided)
		})
		nodeMetric("mrp.ring.skipped_total", obs.KindCounter, func(n *core.Node) float64 {
			_, skipped, _ := n.RingStats(g)
			return float64(skipped)
		})
		nodeMetric("mrp.ring.lambda", obs.KindGauge, func(n *core.Node) float64 {
			l, _ := n.RingLambdaNow(g)
			return float64(l)
		})
		nodeMetric("mrp.ring.wal_failures_total", obs.KindCounter, func(n *core.Node) float64 {
			failures, _, _, _ := n.RingWALHealth(g)
			return float64(failures)
		})
		nodeMetric("mrp.ring.applied", obs.KindGauge, func(n *core.Node) float64 {
			return float64(n.DeliveredVector()[g])
		})
		nodeMetric("mrp.flow.lag", obs.KindGauge, func(n *core.Node) float64 {
			fs, _ := n.RingFlowStats(g)
			return float64(fs.Lag)
		})
		nodeMetric("mrp.flow.overruns_total", obs.KindCounter, func(n *core.Node) float64 {
			fs, _ := n.RingFlowStats(g)
			return float64(fs.Overruns)
		})
		nodeMetric("mrp.flow.shed_proposals_total", obs.KindCounter, func(n *core.Node) float64 {
			fs, _ := n.RingFlowStats(g)
			return float64(fs.ShedProposals)
		})
		nodeMetric("mrp.merge.stall_seconds_total", obs.KindCounter, func(n *core.Node) float64 {
			return stallFor(n, g).Total.Seconds()
		})
		nodeMetric("mrp.merge.stall_max_seconds", obs.KindGauge, func(n *core.Node) float64 {
			return stallFor(n, g).Max.Seconds()
		})
		nodeMetric("mrp.wal.batch_items_mean", obs.KindGauge, func(n *core.Node) float64 {
			wal, _ := n.RingIOGauges(g)
			if wal == nil {
				return 0
			}
			return wal.Mean()
		})
		nodeMetric("mrp.send.batch_items_mean", obs.KindGauge, func(n *core.Node) float64 {
			_, send := n.RingIOGauges(g)
			if send == nil {
				return 0
			}
			return send.Mean()
		})
	}
}

// stallFor returns the merge-stall summary of one subscribed ring.
func stallFor(n *core.Node, g transport.RingID) core.RingStall {
	for _, s := range n.MergeStalls() {
		if s.Ring == g {
			return s
		}
	}
	return core.RingStall{}
}

// DebugRings snapshots per-process protocol state for /debug/rings:
// subscription, delivered vector, per-ring decided/skipped/λ, flow
// control and merge-stall telemetry.
func (c *StoreCluster) DebugRings() any {
	c.mu.Lock()
	ids := make([]transport.ProcessID, 0, len(c.servers))
	for id := range c.servers {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		srv := c.serverByID(id)
		if srv == nil {
			continue
		}
		n := srv.Replica().CoreNode()
		rings := make([]map[string]any, 0, 2)
		for _, g := range n.Subscription() {
			decided, skipped, _ := n.RingStats(g)
			lambda, _ := n.RingLambdaNow(g)
			fs, _ := n.RingFlowStats(g)
			st := stallFor(n, g)
			rings = append(rings, map[string]any{
				"ring":           uint64(g),
				"decided":        decided,
				"skipped":        skipped,
				"lambda":         lambda,
				"applied":        n.DeliveredVector()[g],
				"flow":           fs,
				"stall_total_ns": int64(st.Total),
				"stall_max_ns":   int64(st.Max),
				"stall_p99_ns":   int64(st.P99),
				"stall_count":    st.Count,
			})
		}
		since := time.Duration(0)
		if d, ok := n.SinceProgress(); ok {
			since = d
		}
		out = append(out, map[string]any{
			"process":           fmt.Sprintf("p%d", id),
			"delivered_total":   n.DeliveredCount(),
			"since_progress_ns": int64(since),
			"executed":          srv.Replica().ExecutedCount(),
			"epoch":             srv.Replica().Epoch(),
			"rings":             rings,
		})
	}
	return map[string]any{"servers": out}
}

// ObsMux builds the cluster's observability endpoints: the deployment's
// /metrics and trace views plus this cluster's /debug/rings.
func (c *StoreCluster) ObsMux() *http.ServeMux {
	return obs.NewMux(c.D.Obs, c.D.Trace, map[string]obs.DebugProvider{
		"rings": c.DebugRings,
	})
}

// wireDLogObs registers one dLog server's metric catalog.
func (c *DLogCluster) wireDLogObs(s int, groups []transport.RingID) {
	id := DLogServerID(s)
	rep := func() *smr.Replica {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.reps[id]
	}
	registerProcessMetrics(c.D.Obs, fmt.Sprintf("dlog%d", s), rep, groups)
}

// DebugRings snapshots per-server protocol state for /debug/rings.
func (c *DLogCluster) DebugRings() any {
	c.mu.Lock()
	ids := make([]transport.ProcessID, 0, len(c.reps))
	for id := range c.reps {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]map[string]any, 0, len(ids))
	for _, id := range ids {
		c.mu.Lock()
		rp := c.reps[id]
		c.mu.Unlock()
		if rp == nil {
			continue
		}
		n := rp.CoreNode()
		rings := make([]map[string]any, 0, 2)
		for _, g := range n.Subscription() {
			decided, skipped, _ := n.RingStats(g)
			rings = append(rings, map[string]any{
				"ring":    uint64(g),
				"decided": decided,
				"skipped": skipped,
				"applied": n.DeliveredVector()[g],
			})
		}
		out = append(out, map[string]any{
			"process":         fmt.Sprintf("p%d", id),
			"delivered_total": n.DeliveredCount(),
			"executed":        rp.ExecutedCount(),
			"rings":           rings,
		})
	}
	return map[string]any{"servers": out}
}

// ObsMux builds the dLog cluster's observability endpoints.
func (c *DLogCluster) ObsMux() *http.ServeMux {
	return obs.NewMux(c.D.Obs, c.D.Trace, map[string]obs.DebugProvider{
		"rings": c.DebugRings,
	})
}
