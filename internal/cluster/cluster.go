// Package cluster assembles complete in-process deployments of the
// paper's systems — MRP-Store and dLog clusters over Multi-Ring Paxos with
// an emulated network — so integration tests, benchmarks (Figures 3–8) and
// examples share one wiring layer instead of re-plumbing rings, routers
// and schemas.
package cluster

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/dlog"
	"amcast/internal/netem"
	"amcast/internal/obs"
	"amcast/internal/reconfig"
	"amcast/internal/recovery"
	"amcast/internal/smr"
	"amcast/internal/storage"
	"amcast/internal/store"
	"amcast/internal/trace"
	"amcast/internal/transport"
)

// GlobalRing is the conventional ring id for the global group that all
// replicas subscribe to in global-ring configurations.
const GlobalRing transport.RingID = 1000

// ReplicaID computes the process id of replica r (1-based) of partition p
// (1-based).
func ReplicaID(p, r int) transport.ProcessID {
	return transport.ProcessID(p*100 + r)
}

// FileWALFactory returns a NewLog function that opens one FileWAL per
// (ring, process) under dir — real durable acceptor logs for deployments
// that exercise crash recovery or disk-bound throughput (the io bench),
// where the in-memory default would hide the cost being measured. Each log
// lives in dir/ring<R>-p<P>, so a restarted process recovers its own votes
// by replaying the same directory.
func FileWALFactory(dir string, opts storage.WALOptions) func(ring transport.RingID, self transport.ProcessID) (storage.Log, error) {
	return func(ring transport.RingID, self transport.ProcessID) (storage.Log, error) {
		return storage.OpenWAL(filepath.Join(dir, fmt.Sprintf("ring%d-p%d", ring, self)), opts)
	}
}

// Deployment owns the emulated network and coordination service, plus
// the deployment-wide observability surface: one metric registry and one
// trace collector spanning every simulated process.
type Deployment struct {
	Net *transport.Network
	Svc *coord.Service
	// Obs is the unified metric registry every process registers into.
	Obs *obs.Registry
	// Trace collects the per-process span recorders for cluster-wide
	// trace assembly (/debug/trace/<id>).
	Trace *trace.Collector

	nextClient  atomic.Uint32
	traceSample atomic.Uint64

	mu      sync.Mutex
	cleanup []func()
	recs    map[transport.ProcessID]*trace.Recorder
}

// NewDeployment creates a deployment over a topology (nil = zero-delay).
func NewDeployment(topo *netem.Topology) *Deployment {
	d := &Deployment{
		Net:   transport.NewNetwork(topo),
		Svc:   coord.NewService(),
		Obs:   obs.NewRegistry(),
		Trace: trace.NewCollector(),
		recs:  make(map[transport.ProcessID]*trace.Recorder),
	}
	// Process-wide GC/heap gauges and buffer-pool counters ride in every
	// deployment registry: memory pressure is part of the protocol story.
	obs.RegisterRuntime(d.Obs)
	obs.RegisterBufPool(d.Obs)
	d.nextClient.Store(20000)
	return d
}

// SetTraceSampling sets the root-sampling divisor on every process
// recorder, existing and future: 0 disables tracing, 1 samples every
// client submit, n samples every nth.
func (d *Deployment) SetTraceSampling(n uint64) {
	d.traceSample.Store(n)
	d.mu.Lock()
	recs := make([]*trace.Recorder, 0, len(d.recs))
	for _, r := range d.recs {
		recs = append(recs, r)
	}
	d.mu.Unlock()
	for _, r := range recs {
		r.SetSampling(n)
	}
}

// recorderFor returns the process's span recorder, creating and
// registering it on first use. Restarted processes keep their recorder,
// so the collector never accumulates duplicates.
func (d *Deployment) recorderFor(id transport.ProcessID, name string) *trace.Recorder {
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, ok := d.recs[id]; ok {
		return r
	}
	r := trace.NewRecorder(name, 0)
	r.SetSampling(d.traceSample.Load())
	d.Trace.Register(r)
	d.recs[id] = r
	return r
}

// Close shuts everything down in reverse start order.
func (d *Deployment) Close() {
	d.mu.Lock()
	fns := d.cleanup
	d.cleanup = nil
	d.mu.Unlock()
	for i := len(fns) - 1; i >= 0; i-- {
		fns[i]()
	}
	d.Net.Close()
}

func (d *Deployment) onClose(fn func()) {
	d.mu.Lock()
	d.cleanup = append(d.cleanup, fn)
	d.mu.Unlock()
}

// Client bundles a client-side stack: transport, node and smr client.
type Client struct {
	ID  transport.ProcessID
	SMR *smr.Client

	node *core.Node
	tr   transport.Transport
}

// Close releases the client's resources.
func (c *Client) Close() {
	c.SMR.Close()
	c.node.Stop()
	_ = c.tr.Close()
}

// NewClient attaches a fresh client process at a site.
func (d *Deployment) NewClient(site netem.Site) (*Client, error) {
	id := transport.ProcessID(d.nextClient.Add(1))
	tr := d.Net.Attach(id, site)
	router := transport.NewRouter(tr)
	rec := d.recorderFor(id, fmt.Sprintf("client%d", id))
	node, err := core.New(core.Config{Self: id, Router: router, Coord: d.Svc, Tracer: rec})
	if err != nil {
		return nil, err
	}
	cl, err := smr.NewClient(smr.ClientConfig{
		Self: id, Node: node, Transport: tr, Service: router.Service(),
		// Wire the coordination service so in-flight submissions re-route
		// on coordinator failover instead of waiting out retry timers.
		Coord:  d.Svc,
		Tracer: rec,
	})
	if err != nil {
		node.Stop()
		return nil, err
	}
	d.wireClientObs(id, cl)
	return &Client{ID: id, SMR: cl, node: node, tr: tr}, nil
}

// NewRawProcess attaches a bare process (transport + router) at a site.
// Reconfiguration controllers use it for their RPC traffic: each
// process's service channel has a single consumer, so the controller
// cannot share a client's.
func (d *Deployment) NewRawProcess(site netem.Site) (transport.ProcessID, *transport.Router) {
	id := transport.ProcessID(d.nextClient.Add(1))
	tr := d.Net.Attach(id, site)
	return id, transport.NewRouter(tr)
}

// NewReconfigController attaches a reconfiguration controller to the
// deployment: a store client for marker submission plus a raw process for
// the prepare/transfer RPCs. The returned cleanup releases both.
func (c *StoreCluster) NewReconfigController() (*reconfig.Controller, func(), error) {
	cl, err := c.D.NewClient(netem.SiteLocal)
	if err != nil {
		return nil, nil, err
	}
	id, router := c.D.NewRawProcess(netem.SiteLocal)
	ctrl, err := reconfig.NewController(reconfig.Config{
		Coord:     c.D.Svc,
		Client:    cl.SMR,
		Self:      id,
		Transport: router.Transport(),
		Service:   router.Service(),
	})
	if err != nil {
		cl.Close()
		_ = router.Transport().Close()
		return nil, nil, err
	}
	cleanup := func() {
		ctrl.Close()
		cl.Close()
		_ = router.Transport().Close()
	}
	return ctrl, cleanup, nil
}

// StoreOptions configures a StartStore deployment.
type StoreOptions struct {
	// Partitions and Replicas set the layout (paper: 3 partitions × 3
	// replicas in Figure 4; 4 regional partitions in Figure 7).
	Partitions int
	Replicas   int
	// Global adds a global ring all replicas subscribe to (Figure 4's
	// plain "MRP-Store"; false gives "MRP-Store indep. rings").
	Global bool
	// Kind selects hash or range partitioning (default hash).
	Kind store.SchemaKind
	// SiteOf places each partition's processes (nil = everything local).
	SiteOf func(partition int) netem.Site
	// SiteOfReplica, when set, places each replica individually and takes
	// precedence over SiteOf — e.g. spreading one partition's replicas
	// across regions so its ring pays WAN latency while a co-located
	// replica can still serve local reads.
	SiteOfReplica func(partition, replica int) netem.Site
	// Ring tunes the consensus rings.
	Ring core.RingOptions
	// Batch bounds the delivery batches executed by each replica.
	Batch core.BatchOptions
	// M is the deterministic merge quota (default 1).
	M int
	// GlobalLambda overrides rate-leveling λ on the global ring.
	GlobalLambda int
	// CheckpointEvery commands between replica checkpoints (0 off).
	CheckpointEvery int
	// SyncCheckpoints forces the legacy blocking checkpoint path
	// (benchmark comparison only; see smr.ReplicaConfig).
	SyncCheckpoints bool
	// RecoveryTimeout enables peer recovery on restart.
	RecoveryTimeout time.Duration
	// NewLog supplies acceptor logs per (ring, process); nil = memory.
	NewLog func(ring transport.RingID, self transport.ProcessID) (storage.Log, error)
	// NewCheckpointStore supplies each replica's stable checkpoint store
	// (e.g. a recovery.FileStore so checkpoint durability costs are
	// real); nil = in-memory.
	NewCheckpointStore func(self transport.ProcessID) (recovery.Store, error)
	// ExecWorkers sizes every replica's conflict-aware parallel apply
	// pool (see smr.ReplicaConfig.ExecWorkers): 0/1 sequential, >= 2
	// that many workers, negative GOMAXPROCS.
	ExecWorkers int
	// ExecWorkersOf, when set, overrides ExecWorkers per replica — a
	// test hook for mixing sequential and parallel appliers in one
	// cluster to check they stay byte-identical.
	ExecWorkersOf func(partition, replica int) int
	// Detector, when set, runs a heartbeat failure detector on every
	// store server: crashes are noticed and marked down by suspicion
	// quorum (coord.Detector) with no oracle MarkDown calls.
	Detector *coord.DetectorOptions
	// RetainLogs keeps each (ring, process) acceptor log across
	// Kill/Restart, so a restarted replica recovers from an intact WAL
	// even with the default in-memory logs. Ignored when the NewLog
	// factory already persists (e.g. FileWALFactory).
	RetainLogs bool
}

// StoreCluster is a running MRP-Store deployment.
type StoreCluster struct {
	D      *Deployment
	Schema store.Schema
	opts   StoreOptions

	mu       sync.Mutex
	servers  map[transport.ProcessID]*store.Server
	ckpts    map[transport.ProcessID]recovery.Store
	dets     map[transport.ProcessID]*coord.Detector
	logs     map[logKey]storage.Log       // retained WALs (RetainLogs)
	obsWired map[transport.ProcessID]bool // processes with registered metrics
	walWired map[logKey]bool              // logs with a registered fsync counter
	// partRing maps partition index -> partition ring id for partitions
	// added after boot (the initial layout uses ring id == index).
	partRing map[int]transport.RingID
}

// logKey identifies one acceptor log in the retained-WAL registry.
type logKey struct {
	ring transport.RingID
	id   transport.ProcessID
}

// ringOf returns partition p's ring id.
func (c *StoreCluster) ringOf(p int) transport.RingID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.partRing[p]; ok {
		return g
	}
	return transport.RingID(p)
}

// StartStore boots an MRP-Store cluster: one ring per partition (members:
// the partition's replicas with all roles), optionally a global ring whose
// acceptors are the first replica of each partition and whose learners are
// all replicas.
func (d *Deployment) StartStore(opts StoreOptions) (*StoreCluster, error) {
	if opts.Partitions == 0 {
		opts.Partitions = 3
	}
	if opts.Replicas == 0 {
		opts.Replicas = 3
	}
	if opts.Kind == 0 {
		opts.Kind = store.HashPartitioned
	}
	siteOf := opts.SiteOf
	if siteOf == nil {
		siteOf = func(int) netem.Site { return netem.SiteLocal }
	}

	groups := make([]transport.RingID, opts.Partitions)
	for p := 1; p <= opts.Partitions; p++ {
		groups[p-1] = transport.RingID(p)
		var members []coord.Member
		for r := 1; r <= opts.Replicas; r++ {
			members = append(members, coord.Member{
				ID:    ReplicaID(p, r),
				Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner,
			})
		}
		if err := d.Svc.CreateRing(transport.RingID(p), members); err != nil {
			return nil, err
		}
	}
	global := transport.RingID(0)
	if opts.Global {
		global = GlobalRing
		var members []coord.Member
		for p := 1; p <= opts.Partitions; p++ {
			for r := 1; r <= opts.Replicas; r++ {
				roles := coord.RoleProposer | coord.RoleLearner
				if r == 1 {
					roles |= coord.RoleAcceptor
				}
				members = append(members, coord.Member{ID: ReplicaID(p, r), Roles: roles})
			}
		}
		if err := d.Svc.CreateRing(global, members); err != nil {
			return nil, err
		}
	}

	var schema store.Schema
	if opts.Kind == store.RangePartitioned {
		schema = store.RangeSchema(groups, global)
	} else {
		schema = store.HashSchema(groups, global)
	}
	if err := store.PublishSchema(d.Svc, schema); err != nil {
		return nil, err
	}

	c := &StoreCluster{
		D:        d,
		Schema:   schema,
		opts:     opts,
		servers:  make(map[transport.ProcessID]*store.Server),
		ckpts:    make(map[transport.ProcessID]recovery.Store),
		dets:     make(map[transport.ProcessID]*coord.Detector),
		logs:     make(map[logKey]storage.Log),
		partRing: make(map[int]transport.RingID),
		obsWired: make(map[transport.ProcessID]bool),
		walWired: make(map[logKey]bool),
	}
	for p := 1; p <= opts.Partitions; p++ {
		for r := 1; r <= opts.Replicas; r++ {
			if err := c.startServer(p, r, false); err != nil {
				return nil, err
			}
		}
	}
	d.onClose(c.StopAll)
	return c, nil
}

// startServer boots one replica process. peerRecovery controls whether the
// replica consults partition peers for newer checkpoints.
func (c *StoreCluster) startServer(p, r int, peerRecovery bool) error {
	id := ReplicaID(p, r)
	site := netem.SiteLocal
	if c.opts.SiteOfReplica != nil {
		site = c.opts.SiteOfReplica(p, r)
	} else if c.opts.SiteOf != nil {
		site = c.opts.SiteOf(p)
	}
	tr := c.D.Net.Attach(id, site)
	router := transport.NewRouter(tr)
	var peers []transport.ProcessID
	for rr := 1; rr <= c.opts.Replicas; rr++ {
		if rr != r {
			peers = append(peers, ReplicaID(p, rr))
		}
	}
	c.mu.Lock()
	ckpt, ok := c.ckpts[id]
	if !ok {
		if c.opts.NewCheckpointStore != nil {
			var err error
			if ckpt, err = c.opts.NewCheckpointStore(id); err != nil {
				c.mu.Unlock()
				return fmt.Errorf("cluster: checkpoint store for %d: %w", id, err)
			}
		} else {
			ckpt = recovery.NewMemStore()
		}
		c.ckpts[id] = ckpt
	}
	c.mu.Unlock()

	cfg := store.ServerConfig{
		Self:            id,
		Partition:       c.ringOf(p),
		Peers:           peers,
		Router:          router,
		Coord:           c.D.Svc,
		Checkpoints:     ckpt,
		CheckpointEvery: c.opts.CheckpointEvery,
		SyncCheckpoints: c.opts.SyncCheckpoints,
		Ring:            c.opts.Ring,
		Batch:           c.opts.Batch,
		M:               c.opts.M,
		GlobalLambda:    c.opts.GlobalLambda,
		ExecWorkers:     c.opts.ExecWorkers,
		Tracer:          c.D.recorderFor(id, fmt.Sprintf("p%dr%d", p, r)),
	}
	if c.opts.ExecWorkersOf != nil {
		cfg.ExecWorkers = c.opts.ExecWorkersOf(p, r)
	}
	if peerRecovery {
		cfg.RecoveryTimeout = c.opts.RecoveryTimeout
	}
	if c.opts.RetainLogs {
		cfg.NewLog = func(ring transport.RingID) (storage.Log, error) {
			c.mu.Lock()
			lg, ok := c.logs[logKey{ring, id}]
			c.mu.Unlock()
			if ok {
				return lg, nil
			}
			if c.opts.NewLog != nil {
				var err error
				if lg, err = c.opts.NewLog(ring, id); err != nil {
					return nil, err
				}
			} else {
				lg = storage.NewMemLog()
			}
			c.mu.Lock()
			c.logs[logKey{ring, id}] = lg
			c.mu.Unlock()
			return lg, nil
		}
	} else if c.opts.NewLog != nil {
		cfg.NewLog = func(ring transport.RingID) (storage.Log, error) {
			return c.opts.NewLog(ring, id)
		}
	}
	if orig := cfg.NewLog; orig != nil {
		// Register an fsync counter for every durable acceptor log the
		// server opens (in-memory logs expose none).
		cfg.NewLog = func(ring transport.RingID) (storage.Log, error) {
			lg, err := orig(ring)
			if err == nil {
				c.wireWALObs(id, ring, lg, fmt.Sprintf("p%dr%d", p, r))
			}
			return lg, err
		}
	}
	srv, err := store.NewServer(cfg)
	if err != nil {
		return fmt.Errorf("cluster: start store server %d: %w", id, err)
	}
	var det *coord.Detector
	if c.opts.Detector != nil {
		det = coord.NewDetector(id, c.D.Svc, tr, router.Heartbeats(), *c.opts.Detector)
	}
	c.mu.Lock()
	c.servers[id] = srv
	if det != nil {
		c.dets[id] = det
	}
	c.mu.Unlock()
	c.wireStoreObs(p, r)
	return nil
}

// stopDetector halts and discards the failure detector running for a
// process, withdrawing its suspicion reports.
func (c *StoreCluster) stopDetector(id transport.ProcessID) {
	c.mu.Lock()
	det := c.dets[id]
	delete(c.dets, id)
	c.mu.Unlock()
	if det != nil {
		det.Stop()
	}
}

// Server returns the replica r of partition p.
func (c *StoreCluster) Server(p, r int) *store.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.servers[ReplicaID(p, r)]
}

// NewClient attaches a store client at a site.
func (c *StoreCluster) NewClient(site netem.Site) (*store.Client, *Client, error) {
	cl, err := c.D.NewClient(site)
	if err != nil {
		return nil, nil, err
	}
	sc, err := store.NewClient(c.D.Svc, cl.SMR)
	if err != nil {
		cl.Close()
		return nil, nil, err
	}
	return sc, cl, nil
}

// Crash kills replica r of partition p: network detach, server stop,
// liveness mark. Volatile state is lost; the checkpoint store survives
// (stable storage).
func (c *StoreCluster) Crash(p, r int) {
	id := ReplicaID(p, r)
	c.stopDetector(id)
	c.D.Net.Detach(id)
	c.mu.Lock()
	srv := c.servers[id]
	delete(c.servers, id)
	c.mu.Unlock()
	if srv != nil {
		srv.Stop()
	}
	c.D.Svc.MarkDown(id)
}

// Kill hard-crashes replica r of partition p with NO liveness mark: the
// process simply vanishes from the network. Detecting the crash is the
// failure detectors' job (StoreOptions.Detector) — there is no oracle.
func (c *StoreCluster) Kill(p, r int) {
	id := ReplicaID(p, r)
	c.stopDetector(id)
	c.D.Net.Detach(id)
	c.mu.Lock()
	srv := c.servers[id]
	delete(c.servers, id)
	c.mu.Unlock()
	if srv != nil {
		srv.Stop()
	}
}

// Restart recovers replica r of partition p from its stable checkpoint
// store, consulting peers when the cluster was configured with a
// RecoveryTimeout.
func (c *StoreCluster) Restart(p, r int) error {
	id := ReplicaID(p, r)
	c.D.Svc.MarkUp(id)
	return c.startServer(p, r, c.opts.RecoveryTimeout > 0)
}

// RestartQuiet reboots a killed replica with NO liveness mark: the peer
// detectors notice its resumed heartbeats and mark it up once the rejoin
// hysteresis is satisfied. Pair with Kill for oracle-free crash/recovery.
func (c *StoreCluster) RestartQuiet(p, r int) error {
	return c.startServer(p, r, c.opts.RecoveryTimeout > 0)
}

// AddPartition registers a new partition ring (online reconfiguration):
// partition index p maps to ring id group, with Replicas members holding
// all roles. The servers are NOT started — a scale-out split seeds their
// checkpoint stores first (SeedPartition) and boots them with
// StartPartition once the range transfer completed.
func (c *StoreCluster) AddPartition(p int, group transport.RingID) error {
	var members []coord.Member
	for r := 1; r <= c.opts.Replicas; r++ {
		members = append(members, coord.Member{
			ID:    ReplicaID(p, r),
			Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner,
		})
	}
	if err := c.D.Svc.CreateRing(group, members); err != nil {
		return err
	}
	c.mu.Lock()
	c.partRing[p] = group
	c.mu.Unlock()
	return nil
}

// SeedPartition installs a seed checkpoint (the split's handoff state)
// into every replica's stable checkpoint store before the partition
// boots, so the servers recover the transferred range exactly as they
// would any checkpoint.
func (c *StoreCluster) SeedPartition(p int, seed recovery.Checkpoint) error {
	for r := 1; r <= c.opts.Replicas; r++ {
		id := ReplicaID(p, r)
		c.mu.Lock()
		ckpt, ok := c.ckpts[id]
		if !ok {
			if c.opts.NewCheckpointStore != nil {
				var err error
				if ckpt, err = c.opts.NewCheckpointStore(id); err != nil {
					c.mu.Unlock()
					return fmt.Errorf("cluster: checkpoint store for %d: %w", id, err)
				}
			} else {
				ckpt = recovery.NewMemStore()
			}
			c.ckpts[id] = ckpt
		}
		c.mu.Unlock()
		if err := ckpt.Save(seed); err != nil {
			return fmt.Errorf("cluster: seed checkpoint for %d: %w", id, err)
		}
	}
	return nil
}

// StartPartition boots every replica of a partition added with
// AddPartition (after SeedPartition, for scale-out splits).
func (c *StoreCluster) StartPartition(p int) error {
	for r := 1; r <= c.opts.Replicas; r++ {
		if err := c.startServer(p, r, false); err != nil {
			return err
		}
	}
	return nil
}

// DropCheckpoints simulates losing a replica's stable storage.
func (c *StoreCluster) DropCheckpoints(p, r int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ckpts[ReplicaID(p, r)] = recovery.NewMemStore()
}

// StopAll halts every server and failure detector.
func (c *StoreCluster) StopAll() {
	c.mu.Lock()
	servers := c.servers
	c.servers = make(map[transport.ProcessID]*store.Server)
	dets := c.dets
	c.dets = make(map[transport.ProcessID]*coord.Detector)
	c.mu.Unlock()
	for _, d := range dets {
		d.Stop()
	}
	for _, s := range servers {
		s.Stop()
	}
}

// DLogOptions configures a StartDLog deployment.
type DLogOptions struct {
	// Logs is the number of shared logs (one ring each, ids 1..Logs).
	Logs int
	// Servers is the number of dLog server processes. Every server is a
	// member of every log ring and hosts every log (the paper co-locates
	// rings on three machines in Figures 5 and 6).
	Servers int
	// Global adds a common ring for multi-append (Figure 6 subscribes
	// learners to k rings "and a common ring shared by all learners").
	Global bool
	// Ring tunes the consensus rings.
	Ring core.RingOptions
	// Batch bounds the delivery batches executed by each server.
	Batch core.BatchOptions
	// M is the deterministic merge quota.
	M int
	// NewAcceptorLog supplies per-ring acceptor logs (Figure 6: one disk
	// per ring); nil = memory.
	NewAcceptorLog func(ring transport.RingID, self transport.ProcessID) (storage.Log, error)
	// NewDataDisk supplies the dLog entry store per server; nil = none
	// (memory only).
	NewDataDisk func(self transport.ProcessID) storage.Log
	// CacheLimit bounds each server's per-log entry cache in bytes.
	CacheLimit int
	// ExecWorkers sizes each server's conflict-aware parallel apply
	// pool (see smr.ReplicaConfig.ExecWorkers).
	ExecWorkers int
}

// DLogCluster is a running dLog deployment.
type DLogCluster struct {
	D      *Deployment
	Global transport.RingID
	opts   DLogOptions

	mu   sync.Mutex
	sms  map[transport.ProcessID]*dlog.SM
	reps map[transport.ProcessID]*smr.Replica
}

// DLogServerID is the process id of dLog server s (1-based).
func DLogServerID(s int) transport.ProcessID { return transport.ProcessID(9000 + s) }

// StartDLog boots a dLog cluster.
func (d *Deployment) StartDLog(opts DLogOptions) (*DLogCluster, error) {
	if opts.Logs == 0 {
		opts.Logs = 1
	}
	if opts.Servers == 0 {
		opts.Servers = 3
	}
	var members []coord.Member
	for s := 1; s <= opts.Servers; s++ {
		members = append(members, coord.Member{
			ID:    DLogServerID(s),
			Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner,
		})
	}
	groups := make([]transport.RingID, 0, opts.Logs+1)
	for l := 1; l <= opts.Logs; l++ {
		if err := d.Svc.CreateRing(transport.RingID(l), members); err != nil {
			return nil, err
		}
		groups = append(groups, transport.RingID(l))
	}
	global := transport.RingID(0)
	if opts.Global {
		global = GlobalRing
		if err := d.Svc.CreateRing(global, members); err != nil {
			return nil, err
		}
		groups = append(groups, global)
	}

	c := &DLogCluster{
		D:      d,
		Global: global,
		opts:   opts,
		sms:    make(map[transport.ProcessID]*dlog.SM),
		reps:   make(map[transport.ProcessID]*smr.Replica),
	}
	hosted := make([]dlog.LogID, opts.Logs)
	for l := 1; l <= opts.Logs; l++ {
		hosted[l-1] = dlog.LogID(l)
	}
	for s := 1; s <= opts.Servers; s++ {
		id := DLogServerID(s)
		tr := d.Net.Attach(id, netem.SiteLocal)
		router := transport.NewRouter(tr)
		var dataDisk storage.Log
		if opts.NewDataDisk != nil {
			dataDisk = opts.NewDataDisk(id)
		}
		sm := dlog.NewSM(dlog.SMConfig{Hosted: hosted, Disk: dataDisk, CacheLimit: opts.CacheLimit})
		rec := d.recorderFor(id, fmt.Sprintf("dlog%d", s))
		nodeCfg := core.Config{
			Self: id, Router: router, Coord: d.Svc,
			M: opts.M, Ring: opts.Ring, Batch: opts.Batch,
			Tracer: rec,
		}
		if opts.NewAcceptorLog != nil {
			nodeCfg.NewLog = func(ring transport.RingID) (storage.Log, error) {
				return opts.NewAcceptorLog(ring, id)
			}
		}
		node, err := core.New(nodeCfg)
		if err != nil {
			return nil, err
		}
		rep, err := smr.NewReplica(smr.ReplicaConfig{
			Self:        id,
			Partition:   transport.RingID(1), // all servers share one partition
			Groups:      groups,
			Node:        node,
			Transport:   tr,
			Service:     router.Service(),
			SM:          sm,
			ExecWorkers: opts.ExecWorkers,
			Tracer:      rec,
		}, recovery.Checkpoint{})
		if err != nil {
			node.Stop()
			return nil, fmt.Errorf("cluster: start dlog server %d: %w", id, err)
		}
		c.sms[id] = sm
		c.reps[id] = rep
		c.wireDLogObs(s, groups)
	}
	d.onClose(c.StopAll)
	return c, nil
}

// SM returns server s's state machine (instrumentation).
func (c *DLogCluster) SM(s int) *dlog.SM {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sms[DLogServerID(s)]
}

// NewClient attaches a dLog client. All servers of this layout host every
// log (one partition), so multi-appends need a single partition response.
func (c *DLogCluster) NewClient() (*dlog.Client, *Client, error) {
	cl, err := c.D.NewClient(netem.SiteLocal)
	if err != nil {
		return nil, nil, err
	}
	dc := dlog.NewClient(cl.SMR, c.Global)
	dc.Partitions = 1
	return dc, cl, nil
}

// StopAll halts every server.
func (c *DLogCluster) StopAll() {
	c.mu.Lock()
	reps := c.reps
	c.reps = make(map[transport.ProcessID]*smr.Replica)
	c.mu.Unlock()
	for _, r := range reps {
		r.Stop()
	}
}
