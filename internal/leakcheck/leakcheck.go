// Package leakcheck verifies at test-main exit that no goroutines
// leaked. It is a dependency-free stand-in for go.uber.org/goleak (the
// module deliberately has no external dependencies): after m.Run it
// snapshots all goroutine stacks, filters the known-benign ones, and
// retries with backoff so goroutines that are mid-shutdown get a chance
// to finish before being declared leaked.
//
// A leak here is almost always a Stop/Close path that forgot to join a
// goroutine — exactly the class of bug that turns into a resource-
// exhaustion incident in a long-running replica, which is why the
// heavyweight packages (ring, smr, cluster, chaos) gate on it.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"amcast/internal/bufpool"
)

// benign matches goroutine stacks that are part of the test harness or
// runtime rather than code under test.
var benign = []string{
	"leakcheck.suspicious(", // this snapshotting goroutine
	"testing.Main(",         // the test main goroutine
	"testing.(*M).",         // m.Run internals
	"testing.runFuzzing(",   // fuzzing harness
	"testing.runFuzzTests(", // fuzz seed harness
	"created by testing.",   // tRunner parents waiting on subtests
	"os/signal.",            // signal handling loop
	"runtime.ReadTrace",     // execution tracer
	"runtime.ensureSigM",    // signal mask goroutine
}

// Main runs the package's tests and then fails the process if goroutines
// leaked. Use from TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
func Main(m *testing.M) {
	code := m.Run()
	if code != 0 {
		os.Exit(code)
	}
	if leaked := Check(5 * time.Second); leaked != "" {
		fmt.Fprintf(os.Stderr, "leakcheck: goroutines leaked after tests:\n\n%s\n", leaked)
		os.Exit(1)
	}
	if n := CheckBuffers(5 * time.Second); n != 0 {
		fmt.Fprintf(os.Stderr, "leakcheck: %d pool buffers still outstanding after tests (missing Release)\n", n)
		os.Exit(1)
	}
	os.Exit(0)
}

// CheckBuffers polls until the process-wide buffer pool reports zero
// outstanding buffers or the deadline passes, returning the final count.
// Every bufpool.Get/Copy must be balanced by a final Release by the time
// the owning component stops; a nonzero count at test exit is a refcount
// leak on the pooled delivery path.
func CheckBuffers(deadline time.Duration) int64 {
	delay := 1 * time.Millisecond
	for end := time.Now().Add(deadline); ; {
		n := bufpool.Outstanding()
		if n == 0 || time.Now().After(end) {
			return n
		}
		// Release can trail a Stop by a scheduling beat (drain
		// goroutines): back off and re-read instead of flaking.
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// Check polls until no suspicious goroutines remain or the deadline
// passes, returning the offending stacks ("" when clean). Exported so
// individual tests can assert mid-run cleanliness around a Stop call.
func Check(deadline time.Duration) string {
	var leaked []string
	delay := 1 * time.Millisecond
	for end := time.Now().Add(deadline); ; {
		leaked = suspicious()
		if len(leaked) == 0 || time.Now().After(end) {
			break
		}
		// Shutdown is asynchronous in places (deferred closes, drain
		// goroutines): back off and re-snapshot instead of flaking.
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
	return strings.Join(leaked, "\n\n")
}

// suspicious snapshots all goroutine stacks and returns the non-benign
// ones. runtime.Stack with all=true already excludes system goroutines
// (GC workers and the like).
func suspicious() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
stacks:
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.TrimSpace(g) == "" {
			continue
		}
		for _, b := range benign {
			if strings.Contains(g, b) {
				continue stacks
			}
		}
		out = append(out, g)
	}
	return out
}
