package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestDetectsStrandedGoroutine proves the checker sees a blocked
// goroutine; the goroutine is released before the test exits so the
// package's own process stays clean.
func TestDetectsStrandedGoroutine(t *testing.T) {
	block := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-block
	}()
	<-parked

	leaked := Check(50 * time.Millisecond)
	if leaked == "" {
		t.Fatal("Check missed a deliberately stranded goroutine")
	}
	if !strings.Contains(leaked, "leakcheck_test") {
		t.Fatalf("leak report does not name the leaking frame:\n%s", leaked)
	}
	close(block)
	if leaked := Check(5 * time.Second); leaked != "" {
		t.Fatalf("goroutine still reported after release:\n%s", leaked)
	}
}

// TestCleanWhenNothingLeaks pins the no-false-positive side: a test
// binary with only harness goroutines reports clean immediately.
func TestCleanWhenNothingLeaks(t *testing.T) {
	if leaked := Check(time.Second); leaked != "" {
		t.Fatalf("false positive:\n%s", leaked)
	}
}
