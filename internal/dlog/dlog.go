// Package dlog implements dLog (Section 6.2): a distributed shared log
// where multiple concurrent writers append data to one or multiple logs
// atomically, built on Multi-Ring Paxos state-machine replication.
//
// Each log maps to a multicast group; append, read and trim commands are
// multicast to the log's group, and multi-append commands to a group all
// log servers subscribe to, so appends spanning logs are ordered against
// everything else. Servers keep recent appends in an in-memory cache and
// write entries to disk synchronously or asynchronously (Section 7.3);
// a trim flushes the cache up to the trim position.
package dlog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"amcast/internal/recovery"
	"amcast/internal/smr"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// LogID names one shared log. By convention a log's commands are multicast
// to the ring with the same numeric id.
type LogID uint32

// OpKind enumerates dLog operations (Table 2).
type OpKind uint8

const (
	// OpAppend appends a value to one log, returning its position.
	OpAppend OpKind = iota + 1
	// OpMultiAppend appends one value to several logs atomically.
	OpMultiAppend
	// OpRead returns the value at a position.
	OpRead
	// OpTrim discards log entries below a position.
	OpTrim
)

// Op is one dLog operation.
type Op struct {
	Kind  OpKind
	Log   LogID
	Pos   uint64
	Logs  []LogID // multi-append targets
	Value []byte
}

// Encode serializes the operation.
func (o Op) Encode() []byte {
	buf := make([]byte, 0, 1+4+8+2+4*len(o.Logs)+4+len(o.Value))
	buf = append(buf, byte(o.Kind))
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(o.Log))
	buf = append(buf, tmp[:4]...)
	binary.LittleEndian.PutUint64(tmp[:8], o.Pos)
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(o.Logs)))
	buf = append(buf, tmp[:2]...)
	for _, l := range o.Logs {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(l))
		buf = append(buf, tmp[:4]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(o.Value)))
	buf = append(buf, tmp[:4]...)
	return append(buf, o.Value...)
}

// DecodeOp parses an encoded operation.
func DecodeOp(buf []byte) (Op, error) {
	var o Op
	if len(buf) < 15 {
		return o, transport.ErrShortMessage
	}
	o.Kind = OpKind(buf[0])
	o.Log = LogID(binary.LittleEndian.Uint32(buf[1:5]))
	o.Pos = binary.LittleEndian.Uint64(buf[5:13])
	n := int(binary.LittleEndian.Uint16(buf[13:15]))
	buf = buf[15:]
	if len(buf) < 4*n+4 {
		return o, transport.ErrShortMessage
	}
	for i := 0; i < n; i++ {
		o.Logs = append(o.Logs, LogID(binary.LittleEndian.Uint32(buf[:4])))
		buf = buf[4:]
	}
	vn := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < vn {
		return o, transport.ErrShortMessage
	}
	if vn > 0 {
		o.Value = append([]byte(nil), buf[:vn]...)
	}
	return o, nil
}

// Status codes for results.
type Status uint8

const (
	// StatusOK indicates success.
	StatusOK Status = iota + 1
	// StatusNotFound indicates an out-of-range or trimmed position.
	StatusNotFound
	// StatusBadRequest indicates an undecodable operation.
	StatusBadRequest
)

// Result answers one operation. Positions maps each log the executing
// server hosts to the assigned append position.
type Result struct {
	Status    Status
	Positions map[LogID]uint64
	Value     []byte
}

// Encode serializes the result. Positions are emitted in ascending LogID
// order: these bytes are a replica-produced response, so they must be
// identical on every replica — map iteration order is not.
func (r Result) Encode() []byte {
	buf := make([]byte, 0, 1+2+12*len(r.Positions)+4+len(r.Value))
	buf = append(buf, byte(r.Status))
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(len(r.Positions)))
	buf = append(buf, tmp[:2]...)
	ids := make([]LogID, 0, len(r.Positions))
	for l := range r.Positions {
		ids = append(ids, l)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, l := range ids {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(l))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:8], r.Positions[l])
		buf = append(buf, tmp[:8]...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(r.Value)))
	buf = append(buf, tmp[:4]...)
	return append(buf, r.Value...)
}

// DecodeResult parses an encoded result.
func DecodeResult(buf []byte) (Result, error) {
	var r Result
	if len(buf) < 3 {
		return r, transport.ErrShortMessage
	}
	r.Status = Status(buf[0])
	n := int(binary.LittleEndian.Uint16(buf[1:3]))
	buf = buf[3:]
	if len(buf) < 12*n+4 {
		return r, transport.ErrShortMessage
	}
	if n > 0 {
		r.Positions = make(map[LogID]uint64, n)
	}
	for i := 0; i < n; i++ {
		l := LogID(binary.LittleEndian.Uint32(buf[:4]))
		r.Positions[l] = binary.LittleEndian.Uint64(buf[4:12])
		buf = buf[12:]
	}
	vn := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) < vn {
		return r, transport.ErrShortMessage
	}
	if vn > 0 {
		r.Value = append([]byte(nil), buf[:vn]...)
	}
	return r, nil
}

// logState is one hosted log's in-memory state.
type logState struct {
	base    uint64   // lowest retained position
	next    uint64   // next append position
	entries [][]byte // entries[i] holds position base+i (nil if evicted)
	bytes   int      // cached bytes, for the cache cap
}

// SM is the dLog state machine for one server, hosting a set of logs. It
// implements smr.StateMachine.
type SM struct {
	mu     sync.Mutex
	hosted map[LogID]*logState
	// disk receives every appended entry, keyed by (log, position);
	// wrap it in a storage.SimDisk to model sync/async device timing.
	disk storage.Log
	// cacheLimit bounds cached entry bytes per log (paper: 200 MB);
	// the oldest cached entries are dropped first (reads fall back to
	// disk).
	cacheLimit int

	// Snapshot pinning: while captures are outstanding, disk trims are
	// deferred so the background checkpoint writer can still resolve
	// cache-evicted entries from disk. The last capture's release
	// applies the pending trim (outside the lock).
	captures    int
	trimPending bool
}

// SMConfig configures a dLog state machine.
type SMConfig struct {
	// Hosted lists the logs this server replicates.
	Hosted []LogID
	// Disk persists appended entries; nil keeps entries in memory only.
	Disk storage.Log
	// CacheLimit bounds the in-memory cache per log in bytes
	// (default 200 MB, the paper's setting).
	CacheLimit int
}

// NewSM builds a dLog state machine.
func NewSM(cfg SMConfig) *SM {
	if cfg.CacheLimit == 0 {
		cfg.CacheLimit = 200 << 20
	}
	sm := &SM{
		hosted:     make(map[LogID]*logState, len(cfg.Hosted)),
		disk:       cfg.Disk,
		cacheLimit: cfg.CacheLimit,
	}
	for _, l := range cfg.Hosted {
		sm.hosted[l] = &logState{}
	}
	return sm
}

var (
	_ smr.StateMachine     = (*SM)(nil)
	_ smr.BatchExecutor    = (*SM)(nil)
	_ smr.SnapshotCapturer = (*SM)(nil)
)

// diskKey packs (log, position) into a storage key.
func diskKey(l LogID, pos uint64) uint64 {
	return uint64(l)<<40 | (pos & (1<<40 - 1))
}

// diskTrimWatermark returns the largest watermark that is safe to hand to
// the backing store's Trim, and whether any trim is safe at all.
// storage.Log.Trim is a global prefix drop over the packed (log, position)
// keyspace, so the watermark is capped by the lowest hosted log's retained
// base — trimming key-wise past it would wipe lower-numbered logs'
// retained records wholesale. A hosted log still retaining key 0 (log 0,
// base 0) makes every watermark unsafe. Callers hold s.mu.
func (s *SM) diskTrimWatermark() (uint64, bool) {
	w := uint64(0)
	first := true
	//lint:allow determinism commutative min with an absorbing zero: the result is the same whatever order the hosted logs are visited in
	for l, ls := range s.hosted {
		k := diskKey(l, ls.base)
		if k == 0 {
			return 0, false
		}
		if first || k-1 < w {
			w, first = k-1, false
		}
	}
	return w, !first
}

// Execute applies one encoded operation.
//
//lint:deterministic
func (s *SM) Execute(_ transport.RingID, raw []byte) []byte {
	op, err := DecodeOp(raw)
	if err != nil {
		return Result{Status: StatusBadRequest}.Encode()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(op).Encode()
}

// ExecuteBatch applies a run of encoded operations under one lock
// acquisition (batch-at-a-time delivery's entry point).
//
//lint:deterministic
func (s *SM) ExecuteBatch(_ []transport.RingID, ops [][]byte) [][]byte {
	out := make([][]byte, len(ops))
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, raw := range ops {
		op, err := DecodeOp(raw)
		if err != nil {
			out[i] = Result{Status: StatusBadRequest}.Encode()
			continue
		}
		out[i] = s.apply(op).Encode()
	}
	return out
}

func (s *SM) apply(op Op) Result {
	switch op.Kind {
	case OpAppend:
		ls, ok := s.hosted[op.Log]
		if !ok {
			return Result{Status: StatusNotFound}
		}
		pos := s.append(op.Log, ls, op.Value)
		return Result{Status: StatusOK, Positions: map[LogID]uint64{op.Log: pos}}
	case OpMultiAppend:
		// Apply to the subset of addressed logs hosted here; other
		// partitions' servers handle theirs (same global order).
		positions := make(map[LogID]uint64)
		for _, l := range op.Logs {
			if ls, ok := s.hosted[l]; ok {
				positions[l] = s.append(l, ls, op.Value)
			}
		}
		if len(positions) == 0 {
			return Result{Status: StatusNotFound}
		}
		return Result{Status: StatusOK, Positions: positions}
	case OpRead:
		ls, ok := s.hosted[op.Log]
		if !ok || op.Pos < ls.base || op.Pos >= ls.next {
			return Result{Status: StatusNotFound}
		}
		v := ls.entries[op.Pos-ls.base]
		if v == nil && s.disk != nil {
			if rec, ok := s.disk.Get(diskKey(op.Log, op.Pos)); ok {
				v = rec
			}
		}
		if v == nil {
			return Result{Status: StatusNotFound}
		}
		return Result{Status: StatusOK, Value: append([]byte(nil), v...)}
	case OpTrim:
		ls, ok := s.hosted[op.Log]
		if !ok {
			return Result{Status: StatusNotFound}
		}
		if op.Pos > ls.next {
			op.Pos = ls.next
		}
		for ls.base < op.Pos {
			e := ls.entries[0]
			ls.bytes -= len(e)
			ls.entries = ls.entries[1:]
			ls.base++
		}
		if s.disk != nil {
			// A trim "flushes the cache up to the trim position and
			// creates a new log file on disk" (Section 7.3): trim
			// the backing store too — deferred while snapshot
			// captures are outstanding, so the checkpoint writer can
			// still resolve evicted entries.
			if s.captures > 0 {
				s.trimPending = true
			} else if w, ok := s.diskTrimWatermark(); ok {
				_ = s.disk.Trim(w)
			}
		}
		return Result{Status: StatusOK, Positions: map[LogID]uint64{op.Log: ls.base}}
	default:
		return Result{Status: StatusBadRequest}
	}
}

// append stores one entry, persists it and maintains the cache cap.
func (s *SM) append(l LogID, ls *logState, v []byte) uint64 {
	pos := ls.next
	ls.next++
	cp := append([]byte(nil), v...)
	ls.entries = append(ls.entries, cp)
	ls.bytes += len(cp)
	if s.disk != nil {
		_ = s.disk.Put(diskKey(l, pos), cp)
	}
	// Evict oldest cached values beyond the cap (entries stay addressable
	// via disk).
	for i := 0; ls.bytes > s.cacheLimit && i < len(ls.entries); i++ {
		if ls.entries[i] != nil {
			ls.bytes -= len(ls.entries[i])
			ls.entries[i] = nil
		}
	}
	return pos
}

// LenOf reports retained entries of a log (instrumentation).
func (s *SM) LenOf(l LogID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ls, ok := s.hosted[l]; ok {
		return int(ls.next - ls.base)
	}
	return 0
}

// logSnapshot is one hosted log's captured view. The entries slice header
// array is copied at capture time, but the entry byte slices themselves
// are shared: an appended entry is never mutated afterwards (eviction and
// trim only drop references from the live state), so the capture stays a
// faithful point-in-time image while the live log keeps moving.
type logSnapshot struct {
	log     LogID
	base    uint64
	next    uint64
	entries [][]byte
}

// smSnapshot adapts a captured set of logs to smr.StateSnapshot. While it
// is outstanding (until Release), the SM defers disk trims so the lazy
// disk reads in Serialize stay answerable.
type smSnapshot struct {
	sm       *SM
	logs     []logSnapshot // ascending log id
	released sync.Once
}

var _ smr.ReleasableSnapshot = (*smSnapshot)(nil)

// CaptureSnapshot captures every hosted log with O(cached entries)
// pointer copies — no entry bytes are touched, so capture cost is
// independent of log data volume. Entries already evicted to disk are
// resolved lazily by Serialize; the capture pins disk trims until
// Release so those reads cannot race a trim into silent holes.
func (s *SM) CaptureSnapshot() smr.StateSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.captures++
	snap := &smSnapshot{sm: s, logs: make([]logSnapshot, 0, len(s.hosted))}
	for l, ls := range s.hosted {
		entries := make([][]byte, len(ls.entries))
		copy(entries, ls.entries)
		snap.logs = append(snap.logs, logSnapshot{log: l, base: ls.base, next: ls.next, entries: entries})
	}
	sort.Slice(snap.logs, func(i, j int) bool { return snap.logs[i].log < snap.logs[j].log })
	return snap
}

// Release unpins the capture; the last outstanding release applies the
// disk trim deferred while captures were in flight. The trim I/O runs
// outside the lock so command execution never waits on it; the watermark
// computed under the lock only falls below bases that can only advance,
// so a capture taken after the unlock cannot lose entries to it.
func (sn *smSnapshot) Release() {
	sn.released.Do(func() {
		s := sn.sm
		s.mu.Lock()
		s.captures--
		var watermark uint64
		doTrim := s.captures == 0 && s.trimPending && s.disk != nil
		if doTrim {
			s.trimPending = false
			watermark, doTrim = s.diskTrimWatermark()
		}
		s.mu.Unlock()
		if doTrim {
			_ = s.disk.Trim(watermark)
		}
	})
}

// Serialize encodes the captured logs in ascending log-id order, so
// identical states serialize to identical (checksummable) bytes. Entries
// evicted from the cache before the capture are re-read from disk here,
// off the delivery path (safe until Release: disk trims are deferred).
func (sn *smSnapshot) Serialize() []byte {
	disk := sn.sm.disk
	var buf []byte
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(sn.logs)))
	buf = append(buf, tmp[:4]...)
	for _, ls := range sn.logs {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(ls.log))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:8], ls.base)
		buf = append(buf, tmp[:8]...)
		binary.LittleEndian.PutUint64(tmp[:8], ls.next)
		buf = append(buf, tmp[:8]...)
		for i, e := range ls.entries {
			v := e
			if v == nil && disk != nil {
				if rec, ok := disk.Get(diskKey(ls.log, ls.base+uint64(i))); ok {
					v = rec
				}
			}
			binary.LittleEndian.PutUint32(tmp[:4], uint32(len(v)))
			buf = append(buf, tmp[:4]...)
			buf = append(buf, v...)
		}
	}
	return buf
}

// Snapshot serializes all hosted logs.
func (s *SM) Snapshot() []byte {
	snap := s.CaptureSnapshot()
	buf := snap.Serialize()
	snap.(*smSnapshot).Release()
	return buf
}

// Restore replaces state with a snapshot.
func (s *SM) Restore(snap []byte) error {
	if len(snap) < 4 {
		return recovery.ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(snap[:4]))
	snap = snap[4:]
	hosted := make(map[LogID]*logState, n)
	for i := 0; i < n; i++ {
		if len(snap) < 20 {
			return recovery.ErrCorrupt
		}
		l := LogID(binary.LittleEndian.Uint32(snap[:4]))
		ls := &logState{
			base: binary.LittleEndian.Uint64(snap[4:12]),
			next: binary.LittleEndian.Uint64(snap[12:20]),
		}
		snap = snap[20:]
		count := int(ls.next - ls.base)
		for j := 0; j < count; j++ {
			if len(snap) < 4 {
				return recovery.ErrCorrupt
			}
			vn := int(binary.LittleEndian.Uint32(snap[:4]))
			snap = snap[4:]
			if len(snap) < vn {
				return recovery.ErrCorrupt
			}
			e := append([]byte(nil), snap[:vn]...)
			ls.entries = append(ls.entries, e)
			ls.bytes += vn
			snap = snap[vn:]
		}
		hosted[l] = ls
	}
	s.mu.Lock()
	s.hosted = hosted
	s.mu.Unlock()
	return nil
}

// Client is the dLog client API (Table 2).
type Client struct {
	cl *smr.Client
	// Global is the group all log servers subscribe to, for
	// multi-append. Zero disables multi-append.
	Global transport.RingID
	// Timeout per operation.
	Timeout time.Duration
	// Partitions is the number of distinct partitions hosting logs;
	// MultiAppend waits for one response per involved partition. Zero
	// means one partition per log.
	Partitions int
}

// NewClient builds a dLog client.
func NewClient(cl *smr.Client, global transport.RingID) *Client {
	return &Client{cl: cl, Global: global, Timeout: 10 * time.Second}
}

// OverloadBackoffs reports how many times a coordinator shed one of this
// client's operations under admission control and the underlying smr
// client backed off (bounded, jittered) instead of retrying blindly.
// Transient overload never surfaces to callers; only sustained overload
// fails an operation, with an error wrapping ring.ErrOverloaded.
func (c *Client) OverloadBackoffs() uint64 { return c.cl.OverloadBackoffs() }

// groupOf maps a log to its multicast group (1:1 by convention).
func groupOf(l LogID) transport.RingID { return transport.RingID(l) }

// Append appends v to log l and returns the assigned position.
func (c *Client) Append(l LogID, v []byte) (uint64, error) {
	op := Op{Kind: OpAppend, Log: l, Value: v}
	resps, err := c.cl.Submit([]transport.RingID{groupOf(l)}, op.Encode(), []transport.RingID{groupOf(l)}, 1, c.Timeout)
	if err != nil {
		return 0, err
	}
	res, err := DecodeResult(resps[0])
	if err != nil {
		return 0, err
	}
	if res.Status != StatusOK {
		return 0, fmt.Errorf("dlog: append to %d: status %d", l, res.Status)
	}
	return res.Positions[l], nil
}

// MultiAppend appends v to every log in logs atomically and returns the
// positions per log. Requires a global group and one response from every
// involved partition; it assumes each log lives on its own partition (use
// MultiAppendN when one server hosts several of the logs).
func (c *Client) MultiAppend(logs []LogID, v []byte) (map[LogID]uint64, error) {
	want := len(logs)
	if c.Partitions > 0 && c.Partitions < want {
		want = c.Partitions
	}
	return c.MultiAppendN(logs, v, want)
}

// MultiAppendN is MultiAppend with an explicit count of distinct partitions
// hosting the logs (responses are counted per partition).
func (c *Client) MultiAppendN(logs []LogID, v []byte, wantPartitions int) (map[LogID]uint64, error) {
	if c.Global == 0 {
		return nil, fmt.Errorf("dlog: multi-append requires a global group")
	}
	op := Op{Kind: OpMultiAppend, Logs: logs, Value: v}
	resps, err := c.cl.Submit([]transport.RingID{c.Global}, op.Encode(), nil, wantPartitions, c.Timeout)
	if err != nil {
		return nil, err
	}
	out := make(map[LogID]uint64, len(logs))
	for _, raw := range resps {
		res, err := DecodeResult(raw)
		if err != nil {
			return nil, err
		}
		if res.Status != StatusOK {
			continue
		}
		for l, p := range res.Positions {
			out[l] = p
		}
	}
	if len(out) != len(logs) {
		return out, fmt.Errorf("dlog: multi-append reached %d/%d logs", len(out), len(logs))
	}
	return out, nil
}

// Read returns the value at position p in log l.
func (c *Client) Read(l LogID, p uint64) ([]byte, error) {
	op := Op{Kind: OpRead, Log: l, Pos: p}
	resps, err := c.cl.Submit([]transport.RingID{groupOf(l)}, op.Encode(), []transport.RingID{groupOf(l)}, 1, c.Timeout)
	if err != nil {
		return nil, err
	}
	res, err := DecodeResult(resps[0])
	if err != nil {
		return nil, err
	}
	if res.Status != StatusOK {
		return nil, fmt.Errorf("dlog: read %d@%d: status %d", l, p, res.Status)
	}
	return res.Value, nil
}

// Trim discards entries of log l below position p.
func (c *Client) Trim(l LogID, p uint64) error {
	op := Op{Kind: OpTrim, Log: l, Pos: p}
	resps, err := c.cl.Submit([]transport.RingID{groupOf(l)}, op.Encode(), []transport.RingID{groupOf(l)}, 1, c.Timeout)
	if err != nil {
		return err
	}
	res, err := DecodeResult(resps[0])
	if err != nil {
		return err
	}
	if res.Status != StatusOK {
		return fmt.Errorf("dlog: trim %d@%d: status %d", l, p, res.Status)
	}
	return nil
}
