package dlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"amcast/internal/smr"
	"amcast/internal/transport"
)

// TestParallelApplyEquivalence drives identical randomized op streams —
// appends, reads of live and just-staged positions, multi-appends, and
// trims (barriers) — through sequential batches and through an Applier.
// Results are compared decoded (Result.Positions is a map, so its
// encoding order is nondeterministic even between two sequential runs);
// snapshots are compared byte for byte (serialized in log-id order).
func TestParallelApplyEquivalence(t *testing.T) {
	const logs = 4
	rng := rand.New(rand.NewSource(0xd109))
	hosted := make([]LogID, logs)
	for i := range hosted {
		hosted[i] = LogID(i + 1)
	}
	seqSM := NewSM(SMConfig{Hosted: hosted})
	parSM := NewSM(SMConfig{Hosted: hosted})
	applier := smr.NewApplier(parSM, 4)
	defer applier.Close()

	next := make(map[LogID]uint64) // shadow of assigned positions
	randOp := func() Op {
		l := LogID(1 + rng.Intn(logs))
		switch roll := rng.Intn(100); {
		case roll < 45:
			op := Op{Kind: OpAppend, Log: l, Value: []byte(fmt.Sprintf("e%d", rng.Int63()))}
			next[l]++
			return op
		case roll < 60:
			ls := []LogID{}
			for _, c := range hosted {
				if rng.Intn(2) == 0 {
					ls = append(ls, c)
					next[c]++
				}
			}
			if len(ls) == 0 {
				ls = append(ls, l)
				next[l]++
			}
			return Op{Kind: OpMultiAppend, Logs: ls, Value: []byte("multi")}
		case roll < 95:
			// Read a random position around the written range, so some
			// hit staged appends from the same batch, some live entries,
			// and some miss.
			hi := next[l] + 2
			return Op{Kind: OpRead, Log: l, Pos: rng.Uint64() % hi}
		default:
			hi := next[l] + 1
			return Op{Kind: OpTrim, Log: l, Pos: rng.Uint64() % hi}
		}
	}

	for b := 0; b < 50; b++ {
		n := 1 + rng.Intn(48)
		groups := make([]transport.RingID, n)
		ops := make([][]byte, n)
		for i := 0; i < n; i++ {
			groups[i] = transport.RingID(1 + rng.Intn(logs))
			ops[i] = randOp().Encode()
		}
		seqOut := seqSM.ExecuteBatch(groups, ops)
		parOut := make([][]byte, n)
		applier.Apply(groups, ops, parOut)
		for i := range ops {
			sr, serr := DecodeResult(seqOut[i])
			pr, perr := DecodeResult(parOut[i])
			if serr != nil || perr != nil || !reflect.DeepEqual(sr, pr) {
				op, _ := DecodeOp(ops[i])
				t.Fatalf("batch %d op %d (%+v): sequential %+v (%v) != parallel %+v (%v)",
					b, i, op, sr, serr, pr, perr)
			}
		}
		if b%10 == 9 {
			if !bytes.Equal(seqSM.Snapshot(), parSM.Snapshot()) {
				t.Fatalf("log state diverged after batch %d", b)
			}
		}
	}
	if !bytes.Equal(seqSM.Snapshot(), parSM.Snapshot()) {
		t.Fatal("final log states differ")
	}
	if applier.Barriers() == 0 {
		t.Fatal("no trims executed as barriers; the stream did not exercise the barrier path")
	}
}
