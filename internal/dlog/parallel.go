package dlog

import (
	"fmt"
	"sync"

	"amcast/internal/smr"
	"amcast/internal/transport"
)

// SM implements smr.ConflictExecutor: operations conflict on the log id
// they touch, so appends and reads against distinct logs execute in
// parallel. Trims are barriers — they move the shared disk-trim
// watermark, which spans every hosted log.
//
// Position determinism: runs within a segment are log-disjoint and trims
// are barriers, so a log's next-append position cannot move between the
// staging snapshot and the run's commit. The positions predicted while
// staging are therefore exactly the positions the commit assigns, and
// responses are byte-identical to sequential execution.
var _ smr.ConflictExecutor = (*SM)(nil)

// ConflictKeys reports the log ids raw touches, or barrier=true for
// trims and undecodable input.
func (s *SM) ConflictKeys(raw []byte, dst []uint64) ([]uint64, bool) {
	op, err := DecodeOp(raw)
	if err != nil {
		return dst, true
	}
	switch op.Kind {
	case OpAppend, OpRead:
		return append(dst, uint64(op.Log)), false
	case OpMultiAppend:
		for _, l := range op.Logs {
			dst = append(dst, uint64(l))
		}
		return dst, false
	default:
		return dst, true
	}
}

// stagedLog is one log's view within a staged run: a [base, snapNext)
// prefix served from live state (safe — no other run touches this log)
// plus this run's own staged appends at [snapNext, next).
type stagedLog struct {
	ls       *logState
	base     uint64
	snapNext uint64
	next     uint64
	staged   [][]byte
}

func (sl *stagedLog) stageAppend(v []byte) uint64 {
	pos := sl.next
	sl.next++
	sl.staged = append(sl.staged, v)
	return pos
}

// dlogStaged is one conflict-free run's staging state.
type dlogStaged struct {
	sm      *SM
	logs    map[LogID]*stagedLog
	appends []Op // append ops to replay, in run order, at commit
}

var dlogStagedPool = sync.Pool{
	New: func() any { return &dlogStaged{logs: make(map[LogID]*stagedLog)} },
}

// StageRun executes one conflict-free run, filling out positionally.
// Safe concurrently with other StageRun calls: each run reads only its
// own logs' state (plus the internally synchronized disk).
func (s *SM) StageRun(_ []transport.RingID, ops [][]byte, out [][]byte) any {
	st := dlogStagedPool.Get().(*dlogStaged)
	st.sm = s
	for i, raw := range ops {
		op, err := DecodeOp(raw)
		if err != nil {
			out[i] = Result{Status: StatusBadRequest}.Encode()
			continue
		}
		out[i] = st.apply(op).Encode()
	}
	return st
}

// CommitRun replays the staged appends against live state. Called
// sequentially in run order on the apply goroutine; the replay assigns
// the same positions staging predicted (see the type comment).
func (s *SM) CommitRun(effects any) {
	st := effects.(*dlogStaged)
	s.mu.Lock()
	for _, op := range st.appends {
		switch op.Kind {
		case OpAppend:
			if ls, ok := s.hosted[op.Log]; ok {
				s.append(op.Log, ls, op.Value)
			}
		case OpMultiAppend:
			for _, l := range op.Logs {
				if ls, ok := s.hosted[l]; ok {
					s.append(l, ls, op.Value)
				}
			}
		}
	}
	s.mu.Unlock()
	st.release()
}

func (st *dlogStaged) release() {
	for i := range st.appends {
		st.appends[i] = Op{}
	}
	st.appends = st.appends[:0]
	clear(st.logs)
	st.sm = nil
	dlogStagedPool.Put(st)
}

// logOf resolves a hosted log, capturing its bounds under the lock on
// first touch. Trims are barriers, so the captured base cannot move
// while this run is staged.
func (st *dlogStaged) logOf(l LogID) (*stagedLog, bool) {
	if sl, ok := st.logs[l]; ok {
		return sl, true
	}
	s := st.sm
	s.mu.Lock()
	ls, ok := s.hosted[l]
	var base, next uint64
	if ok {
		base, next = ls.base, ls.next
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	sl := &stagedLog{ls: ls, base: base, snapNext: next, next: next}
	st.logs[l] = sl
	return sl, true
}

// apply mirrors SM.apply for the stageable kinds (ConflictKeys keeps
// trims out of staged runs).
func (st *dlogStaged) apply(op Op) Result {
	switch op.Kind {
	case OpAppend:
		sl, ok := st.logOf(op.Log)
		if !ok {
			return Result{Status: StatusNotFound}
		}
		pos := sl.stageAppend(op.Value)
		st.appends = append(st.appends, op)
		return Result{Status: StatusOK, Positions: map[LogID]uint64{op.Log: pos}}
	case OpMultiAppend:
		positions := make(map[LogID]uint64)
		for _, l := range op.Logs {
			if sl, ok := st.logOf(l); ok {
				positions[l] = sl.stageAppend(op.Value)
			}
		}
		if len(positions) == 0 {
			return Result{Status: StatusNotFound}
		}
		st.appends = append(st.appends, op)
		return Result{Status: StatusOK, Positions: positions}
	case OpRead:
		sl, ok := st.logOf(op.Log)
		if !ok || op.Pos < sl.base || op.Pos >= sl.next {
			return Result{Status: StatusNotFound}
		}
		var v []byte
		if op.Pos >= sl.snapNext {
			v = sl.staged[op.Pos-sl.snapNext]
		} else {
			v = sl.ls.entries[op.Pos-sl.base]
			if v == nil && st.sm.disk != nil {
				if rec, ok := st.sm.disk.Get(diskKey(op.Log, op.Pos)); ok {
					v = rec
				}
			}
		}
		if v == nil {
			return Result{Status: StatusNotFound}
		}
		return Result{Status: StatusOK, Value: append([]byte(nil), v...)}
	default:
		return Result{Status: StatusBadRequest}
	}
}

// Local reads: position reads need no multicast round.
var _ smr.LocalReader = (*SM)(nil)

// ReadLocal serves an OpRead against current state. Called with the
// replica's apply gate held in read mode (a batch-boundary state).
func (s *SM) ReadLocal(_ transport.RingID, raw []byte) ([]byte, bool) {
	op, err := DecodeOp(raw)
	if err != nil || op.Kind != OpRead {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.apply(op).Encode(), true
}

// ReadLocalAt reads position p of log l from one explicit server via the
// read-index path: the server answers once its applied state covers
// everything this client has observed, without a multicast round.
func (c *Client) ReadLocalAt(target transport.ProcessID, l LogID, p uint64) ([]byte, error) {
	op := Op{Kind: OpRead, Log: l, Pos: p}
	raw, err := c.cl.LocalRead(target, groupOf(l), op.Encode(), smr.ReadIndex, 0, c.Timeout)
	if err != nil {
		return nil, err
	}
	res, err := DecodeResult(raw)
	if err != nil {
		return nil, err
	}
	if res.Status != StatusOK {
		return nil, fmt.Errorf("dlog: local read %d@%d: status %d", l, p, res.Status)
	}
	return res.Value, nil
}
