package dlog

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"amcast/internal/storage"
	"amcast/internal/transport"
)

func TestOpRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpAppend, Log: 1, Value: []byte("entry")},
		{Kind: OpMultiAppend, Logs: []LogID{1, 2, 9}, Value: []byte("x")},
		{Kind: OpRead, Log: 2, Pos: 42},
		{Kind: OpTrim, Log: 3, Pos: 100},
	}
	for _, op := range ops {
		got, err := DecodeOp(op.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(op, got) {
			t.Errorf("round trip: got %+v want %+v", got, op)
		}
	}
}

func TestOpDecodeTruncated(t *testing.T) {
	full := (Op{Kind: OpMultiAppend, Logs: []LogID{1, 2}, Value: []byte("value")}).Encode()
	for i := 0; i < len(full); i++ {
		if _, err := DecodeOp(full[:i]); err == nil {
			t.Fatalf("accepted truncation at %d", i)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := Result{
		Status:    StatusOK,
		Positions: map[LogID]uint64{1: 10, 7: 3},
		Value:     []byte("payload"),
	}
	got, err := DecodeResult(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip: got %+v want %+v", got, r)
	}
}

func TestOpRoundTripQuick(t *testing.T) {
	f := func(kind uint8, logID uint32, pos uint64, value []byte) bool {
		op := Op{Kind: OpKind(kind), Log: LogID(logID), Pos: pos, Value: value}
		got, err := DecodeOp(op.Encode())
		if err != nil {
			return false
		}
		return got.Kind == op.Kind && got.Log == op.Log && got.Pos == op.Pos &&
			bytes.Equal(got.Value, op.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func execOp(t *testing.T, sm *SM, op Op) Result {
	t.Helper()
	res, err := DecodeResult(sm.Execute(1, op.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSMAppendReadTrim(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1}})
	r := execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: []byte("a")})
	if r.Status != StatusOK || r.Positions[1] != 0 {
		t.Fatalf("first append = %+v", r)
	}
	r = execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: []byte("b")})
	if r.Positions[1] != 1 {
		t.Fatalf("second append = %+v", r)
	}
	r = execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 0})
	if r.Status != StatusOK || string(r.Value) != "a" {
		t.Fatalf("read = %+v", r)
	}
	r = execOp(t, sm, Op{Kind: OpTrim, Log: 1, Pos: 1})
	if r.Status != StatusOK {
		t.Fatalf("trim = %+v", r)
	}
	if r := execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 0}); r.Status != StatusNotFound {
		t.Errorf("read of trimmed pos = %+v", r)
	}
	if r := execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 1}); r.Status != StatusOK {
		t.Errorf("read above trim = %+v", r)
	}
	if sm.LenOf(1) != 1 {
		t.Errorf("LenOf = %d", sm.LenOf(1))
	}
	if sm.LenOf(99) != 0 {
		t.Errorf("LenOf unknown log = %d", sm.LenOf(99))
	}
}

func TestSMUnhostedLog(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1}})
	if r := execOp(t, sm, Op{Kind: OpAppend, Log: 9, Value: []byte("x")}); r.Status != StatusNotFound {
		t.Errorf("append to unhosted = %+v", r)
	}
	if r := execOp(t, sm, Op{Kind: OpMultiAppend, Logs: []LogID{9}, Value: nil}); r.Status != StatusNotFound {
		t.Errorf("multi-append to unhosted = %+v", r)
	}
}

func TestSMMultiAppendSubset(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1, 2}})
	r := execOp(t, sm, Op{Kind: OpMultiAppend, Logs: []LogID{1, 2, 3}, Value: []byte("m")})
	if r.Status != StatusOK || len(r.Positions) != 2 {
		t.Fatalf("multi-append = %+v", r)
	}
}

func TestSMCacheEvictionFallsBackToDisk(t *testing.T) {
	disk := storage.NewMemLog()
	sm := NewSM(SMConfig{Hosted: []LogID{1}, Disk: disk, CacheLimit: 64})
	big := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 5; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: big})
	}
	// Early entries are evicted from cache, but reads must still work
	// via the backing disk.
	r := execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 0})
	if r.Status != StatusOK || !bytes.Equal(r.Value, big) {
		t.Fatalf("read of evicted entry = status %d", r.Status)
	}
}

func TestSMSnapshotRestore(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1, 2}})
	for i := 0; i < 10; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: []byte{byte(i)}})
	}
	execOp(t, sm, Op{Kind: OpAppend, Log: 2, Value: []byte("two")})
	execOp(t, sm, Op{Kind: OpTrim, Log: 1, Pos: 4})
	snap := sm.Snapshot()

	sm2 := NewSM(SMConfig{Hosted: []LogID{1, 2}})
	if err := sm2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if sm2.LenOf(1) != 6 || sm2.LenOf(2) != 1 {
		t.Fatalf("restored lens = %d, %d", sm2.LenOf(1), sm2.LenOf(2))
	}
	r := execOp(t, sm2, Op{Kind: OpRead, Log: 1, Pos: 7})
	if r.Status != StatusOK || r.Value[0] != 7 {
		t.Fatalf("restored read = %+v", r)
	}
	// Appends continue at the right position.
	r = execOp(t, sm2, Op{Kind: OpAppend, Log: 1, Value: []byte("next")})
	if r.Positions[1] != 10 {
		t.Fatalf("append after restore = %+v", r)
	}
	if err := sm2.Restore([]byte{1}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestSMGarbageOp(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1}})
	res, err := DecodeResult(sm.Execute(1, []byte{0xff, 0x01}))
	if err != nil || res.Status != StatusBadRequest {
		t.Errorf("garbage op = %+v, %v", res, err)
	}
}

// TestSMExecuteBatchMatchesExecute checks the dLog batch apply entry
// point is equivalent to per-op Execute.
func TestSMExecuteBatchMatchesExecute(t *testing.T) {
	ops := [][]byte{
		Op{Kind: OpAppend, Log: 1, Value: []byte("e0")}.Encode(),
		Op{Kind: OpAppend, Log: 1, Value: []byte("e1")}.Encode(),
		Op{Kind: OpRead, Log: 1, Pos: 0}.Encode(),
		Op{Kind: OpTrim, Log: 1, Pos: 1}.Encode(),
		Op{Kind: OpRead, Log: 1, Pos: 0}.Encode(),               // trimmed
		Op{Kind: OpAppend, Log: 9, Value: []byte("x")}.Encode(), // unhosted
		{0xFF}, // undecodable
	}
	groups := make([]transport.RingID, len(ops))
	for i := range groups {
		groups[i] = 1
	}
	single := NewSM(SMConfig{Hosted: []LogID{1}})
	batched := NewSM(SMConfig{Hosted: []LogID{1}})
	var want [][]byte
	for i, op := range ops {
		want = append(want, single.Execute(groups[i], op))
	}
	got := batched.ExecuteBatch(groups, ops)
	if len(got) != len(want) {
		t.Fatalf("results %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("result %d: batch %x, single %x", i, got[i], want[i])
		}
	}
}

// TestSMCaptureImmutableUnderAppends: a capture taken at one point must
// serialize to exactly that point's state even as the live log keeps
// appending and trimming (the cheap-capture contract of the non-blocking
// checkpoint pipeline).
func TestSMCaptureImmutableUnderAppends(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1}})
	for i := 0; i < 5; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: []byte{byte(i)}})
	}
	snap := sm.CaptureSnapshot()

	// Keep moving after the capture.
	for i := 5; i < 20; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: []byte{byte(i)}})
	}
	execOp(t, sm, Op{Kind: OpTrim, Log: 1, Pos: 10})

	sm2 := NewSM(SMConfig{Hosted: []LogID{1}})
	if err := sm2.Restore(snap.Serialize()); err != nil {
		t.Fatal(err)
	}
	if sm2.LenOf(1) != 5 {
		t.Fatalf("restored capture len = %d, want 5", sm2.LenOf(1))
	}
	for i := 0; i < 5; i++ {
		r := execOp(t, sm2, Op{Kind: OpRead, Log: 1, Pos: uint64(i)})
		if r.Status != StatusOK || r.Value[0] != byte(i) {
			t.Fatalf("capture read %d = %+v", i, r)
		}
	}
}

// TestSMSnapshotDeterministic: two servers that applied the same commands
// must produce byte-identical snapshots (logs are serialized in ascending
// log-id order, not map order), so snapshot checksums are comparable.
func TestSMSnapshotDeterministic(t *testing.T) {
	build := func() *SM {
		sm := NewSM(SMConfig{Hosted: []LogID{5, 1, 9, 3, 7}})
		for _, l := range []LogID{9, 1, 7, 3, 5} {
			for i := 0; i < 3; i++ {
				execOp(t, sm, Op{Kind: OpAppend, Log: l, Value: []byte{byte(l), byte(i)}})
			}
		}
		return sm
	}
	a, b := build().Snapshot(), build().Snapshot()
	if !bytes.Equal(a, b) {
		t.Error("identical states serialized to different bytes")
	}
	// And repeated snapshots of one SM agree too.
	sm := build()
	if !bytes.Equal(sm.Snapshot(), sm.Snapshot()) {
		t.Error("repeated snapshots differ")
	}
}

// TestSMCaptureDefersTrimUntilRelease: entries evicted to disk before a
// capture must stay resolvable until the capture is released — a trim
// racing the background checkpoint writer would otherwise delete them
// from disk and the checkpoint would silently serialize holes. After the
// release, the deferred disk trim must apply.
func TestSMCaptureDefersTrimUntilRelease(t *testing.T) {
	disk := storage.NewMemLog()
	sm := NewSM(SMConfig{Hosted: []LogID{1}, Disk: disk, CacheLimit: 64})
	big := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 5; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: big})
	}
	// Position 0 is evicted from the cache by now (64 B cap, 40 B entries).
	snap := sm.CaptureSnapshot()
	// A trim lands before the checkpoint writer serializes: the cache
	// drops the early positions, but the disk trim is deferred.
	execOp(t, sm, Op{Kind: OpTrim, Log: 1, Pos: 5})

	sm2 := NewSM(SMConfig{Hosted: []LogID{1}})
	if err := sm2.Restore(snap.Serialize()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r := execOp(t, sm2, Op{Kind: OpRead, Log: 1, Pos: uint64(i)})
		if r.Status != StatusOK || !bytes.Equal(r.Value, big) {
			t.Fatalf("restored read %d = status %d (len %d); capture lost an evicted entry", i, r.Status, len(r.Value))
		}
	}

	// Releasing the capture applies the deferred disk trim.
	if _, ok := disk.Get(diskKey(1, 0)); !ok {
		t.Fatal("disk entry gone before the capture was released")
	}
	snap.(interface{ Release() }).Release()
	if _, ok := disk.Get(diskKey(1, 0)); ok {
		t.Error("deferred disk trim not applied on release")
	}
	// Double release is harmless and does not unpin a later capture.
	snap.(interface{ Release() }).Release()
}

// TestSMTrimDoesNotWipeOtherLogsOnSharedDisk: the backing store's Trim is
// a global prefix drop over the packed (log, position) keyspace, so
// trimming a higher-numbered log must not discard lower-numbered logs'
// disk records — cache-evicted entries of those logs must stay readable
// (and checkpointable).
func TestSMTrimDoesNotWipeOtherLogsOnSharedDisk(t *testing.T) {
	disk := storage.NewMemLog()
	sm := NewSM(SMConfig{Hosted: []LogID{1, 2}, Disk: disk, CacheLimit: 64})
	big := bytes.Repeat([]byte("y"), 40)
	for i := 0; i < 5; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: big})
	}
	execOp(t, sm, Op{Kind: OpAppend, Log: 2, Value: []byte("two-0")})
	execOp(t, sm, Op{Kind: OpAppend, Log: 2, Value: []byte("two-1")})

	// Trim log 2: log 1's disk records (including cache-evicted position
	// 0) must survive.
	execOp(t, sm, Op{Kind: OpTrim, Log: 2, Pos: 1})
	r := execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 0})
	if r.Status != StatusOK || !bytes.Equal(r.Value, big) {
		t.Fatalf("log 1 evicted entry lost after trimming log 2: status %d", r.Status)
	}
	// And the snapshot still carries it.
	sm2 := NewSM(SMConfig{Hosted: []LogID{1, 2}})
	if err := sm2.Restore(sm.Snapshot()); err != nil {
		t.Fatal(err)
	}
	r = execOp(t, sm2, Op{Kind: OpRead, Log: 1, Pos: 0})
	if r.Status != StatusOK || !bytes.Equal(r.Value, big) {
		t.Fatalf("restored log 1 entry lost after trimming log 2: status %d", r.Status)
	}
	// Once log 1 itself is trimmed, the shared watermark may advance and
	// drop its prefix from disk.
	execOp(t, sm, Op{Kind: OpTrim, Log: 1, Pos: 5})
	if _, ok := disk.Get(diskKey(1, 0)); ok {
		t.Error("log 1 disk prefix survived its own trim")
	}
}

// TestSMTrimWithLogZeroHostedNeverTrimsDisk: a hosted log 0 still
// retaining position 0 occupies disk key 0, so no global watermark is
// safe — trimming another log must leave the disk untouched rather than
// wrapping the watermark and wiping log 0.
func TestSMTrimWithLogZeroHostedNeverTrimsDisk(t *testing.T) {
	disk := storage.NewMemLog()
	sm := NewSM(SMConfig{Hosted: []LogID{0, 2}, Disk: disk, CacheLimit: 64})
	big := bytes.Repeat([]byte("z"), 40)
	for i := 0; i < 5; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 0, Value: big})
	}
	execOp(t, sm, Op{Kind: OpAppend, Log: 2, Value: []byte("two")})
	execOp(t, sm, Op{Kind: OpTrim, Log: 2, Pos: 1})
	// Log 0's records — including the cache-evicted position 0 at disk
	// key 0 — must survive.
	r := execOp(t, sm, Op{Kind: OpRead, Log: 0, Pos: 0})
	if r.Status != StatusOK || !bytes.Equal(r.Value, big) {
		t.Fatalf("log 0 entry lost after trimming log 2: status %d", r.Status)
	}
}
