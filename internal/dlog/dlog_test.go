package dlog

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"amcast/internal/storage"
	"amcast/internal/transport"
)

func TestOpRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpAppend, Log: 1, Value: []byte("entry")},
		{Kind: OpMultiAppend, Logs: []LogID{1, 2, 9}, Value: []byte("x")},
		{Kind: OpRead, Log: 2, Pos: 42},
		{Kind: OpTrim, Log: 3, Pos: 100},
	}
	for _, op := range ops {
		got, err := DecodeOp(op.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(op, got) {
			t.Errorf("round trip: got %+v want %+v", got, op)
		}
	}
}

func TestOpDecodeTruncated(t *testing.T) {
	full := (Op{Kind: OpMultiAppend, Logs: []LogID{1, 2}, Value: []byte("value")}).Encode()
	for i := 0; i < len(full); i++ {
		if _, err := DecodeOp(full[:i]); err == nil {
			t.Fatalf("accepted truncation at %d", i)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	r := Result{
		Status:    StatusOK,
		Positions: map[LogID]uint64{1: 10, 7: 3},
		Value:     []byte("payload"),
	}
	got, err := DecodeResult(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Errorf("round trip: got %+v want %+v", got, r)
	}
}

func TestOpRoundTripQuick(t *testing.T) {
	f := func(kind uint8, logID uint32, pos uint64, value []byte) bool {
		op := Op{Kind: OpKind(kind), Log: LogID(logID), Pos: pos, Value: value}
		got, err := DecodeOp(op.Encode())
		if err != nil {
			return false
		}
		return got.Kind == op.Kind && got.Log == op.Log && got.Pos == op.Pos &&
			bytes.Equal(got.Value, op.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func execOp(t *testing.T, sm *SM, op Op) Result {
	t.Helper()
	res, err := DecodeResult(sm.Execute(1, op.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSMAppendReadTrim(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1}})
	r := execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: []byte("a")})
	if r.Status != StatusOK || r.Positions[1] != 0 {
		t.Fatalf("first append = %+v", r)
	}
	r = execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: []byte("b")})
	if r.Positions[1] != 1 {
		t.Fatalf("second append = %+v", r)
	}
	r = execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 0})
	if r.Status != StatusOK || string(r.Value) != "a" {
		t.Fatalf("read = %+v", r)
	}
	r = execOp(t, sm, Op{Kind: OpTrim, Log: 1, Pos: 1})
	if r.Status != StatusOK {
		t.Fatalf("trim = %+v", r)
	}
	if r := execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 0}); r.Status != StatusNotFound {
		t.Errorf("read of trimmed pos = %+v", r)
	}
	if r := execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 1}); r.Status != StatusOK {
		t.Errorf("read above trim = %+v", r)
	}
	if sm.LenOf(1) != 1 {
		t.Errorf("LenOf = %d", sm.LenOf(1))
	}
	if sm.LenOf(99) != 0 {
		t.Errorf("LenOf unknown log = %d", sm.LenOf(99))
	}
}

func TestSMUnhostedLog(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1}})
	if r := execOp(t, sm, Op{Kind: OpAppend, Log: 9, Value: []byte("x")}); r.Status != StatusNotFound {
		t.Errorf("append to unhosted = %+v", r)
	}
	if r := execOp(t, sm, Op{Kind: OpMultiAppend, Logs: []LogID{9}, Value: nil}); r.Status != StatusNotFound {
		t.Errorf("multi-append to unhosted = %+v", r)
	}
}

func TestSMMultiAppendSubset(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1, 2}})
	r := execOp(t, sm, Op{Kind: OpMultiAppend, Logs: []LogID{1, 2, 3}, Value: []byte("m")})
	if r.Status != StatusOK || len(r.Positions) != 2 {
		t.Fatalf("multi-append = %+v", r)
	}
}

func TestSMCacheEvictionFallsBackToDisk(t *testing.T) {
	disk := storage.NewMemLog()
	sm := NewSM(SMConfig{Hosted: []LogID{1}, Disk: disk, CacheLimit: 64})
	big := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 5; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: big})
	}
	// Early entries are evicted from cache, but reads must still work
	// via the backing disk.
	r := execOp(t, sm, Op{Kind: OpRead, Log: 1, Pos: 0})
	if r.Status != StatusOK || !bytes.Equal(r.Value, big) {
		t.Fatalf("read of evicted entry = status %d", r.Status)
	}
}

func TestSMSnapshotRestore(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1, 2}})
	for i := 0; i < 10; i++ {
		execOp(t, sm, Op{Kind: OpAppend, Log: 1, Value: []byte{byte(i)}})
	}
	execOp(t, sm, Op{Kind: OpAppend, Log: 2, Value: []byte("two")})
	execOp(t, sm, Op{Kind: OpTrim, Log: 1, Pos: 4})
	snap := sm.Snapshot()

	sm2 := NewSM(SMConfig{Hosted: []LogID{1, 2}})
	if err := sm2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if sm2.LenOf(1) != 6 || sm2.LenOf(2) != 1 {
		t.Fatalf("restored lens = %d, %d", sm2.LenOf(1), sm2.LenOf(2))
	}
	r := execOp(t, sm2, Op{Kind: OpRead, Log: 1, Pos: 7})
	if r.Status != StatusOK || r.Value[0] != 7 {
		t.Fatalf("restored read = %+v", r)
	}
	// Appends continue at the right position.
	r = execOp(t, sm2, Op{Kind: OpAppend, Log: 1, Value: []byte("next")})
	if r.Positions[1] != 10 {
		t.Fatalf("append after restore = %+v", r)
	}
	if err := sm2.Restore([]byte{1}); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestSMGarbageOp(t *testing.T) {
	sm := NewSM(SMConfig{Hosted: []LogID{1}})
	res, err := DecodeResult(sm.Execute(1, []byte{0xff, 0x01}))
	if err != nil || res.Status != StatusBadRequest {
		t.Errorf("garbage op = %+v, %v", res, err)
	}
}

// TestSMExecuteBatchMatchesExecute checks the dLog batch apply entry
// point is equivalent to per-op Execute.
func TestSMExecuteBatchMatchesExecute(t *testing.T) {
	ops := [][]byte{
		Op{Kind: OpAppend, Log: 1, Value: []byte("e0")}.Encode(),
		Op{Kind: OpAppend, Log: 1, Value: []byte("e1")}.Encode(),
		Op{Kind: OpRead, Log: 1, Pos: 0}.Encode(),
		Op{Kind: OpTrim, Log: 1, Pos: 1}.Encode(),
		Op{Kind: OpRead, Log: 1, Pos: 0}.Encode(),               // trimmed
		Op{Kind: OpAppend, Log: 9, Value: []byte("x")}.Encode(), // unhosted
		{0xFF}, // undecodable
	}
	groups := make([]transport.RingID, len(ops))
	for i := range groups {
		groups[i] = 1
	}
	single := NewSM(SMConfig{Hosted: []LogID{1}})
	batched := NewSM(SMConfig{Hosted: []LogID{1}})
	var want [][]byte
	for i, op := range ops {
		want = append(want, single.Execute(groups[i], op))
	}
	got := batched.ExecuteBatch(groups, ops)
	if len(got) != len(want) {
		t.Fatalf("results %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("result %d: batch %x, single %x", i, got[i], want[i])
		}
	}
}
