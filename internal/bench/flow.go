package bench

import (
	"fmt"
	"sync"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/netem"
	"amcast/internal/transport"
)

// FlowLevelingRow is one rate-leveling configuration on the EC2 WAN
// topology: a hot group and an idle group merged by every learner, with
// the idle group's skip target either preset (static λ, the paper's
// Section 4 knob) or driven by the merge-stall feedback loop.
type FlowLevelingRow struct {
	Config string `json:"config"`
	// Lambda is the configured (initial) skip target, msgs/s.
	Lambda   int  `json:"lambda"`
	Adaptive bool `json:"adaptive"`
	// HotMsgsPerS is the merged delivered throughput of the hot group at
	// a fast learner — the number the idle ring's rate leveling caps.
	HotMsgsPerS float64 `json:"hot_msgs_per_s"`
	// SkipInstances counts instances the idle ring skipped during the
	// measurement (skip traffic through WAL and network).
	SkipInstances uint64 `json:"skip_instances"`
	// LambdaPeak / LambdaFinal track the idle ring's adaptive target.
	LambdaPeak  int `json:"lambda_peak"`
	LambdaFinal int `json:"lambda_final"`
	// StragglerStallMs is the total time the measuring learner's merge
	// waited on the idle ring.
	StragglerStallMs float64 `json:"straggler_stall_ms"`
}

// FlowIsolationRow compares a fast learner's delivered throughput with
// and without one slow replica on the same ring (the slow one sits on
// the majority vote path, the worst case for the old coupled loop).
type FlowIsolationRow struct {
	FastBaselineMsgsPerS float64 `json:"fast_baseline_msgs_per_s"`
	FastWithSlowMsgsPerS float64 `json:"fast_with_slow_msgs_per_s"`
	SlowMsgsPerS         float64 `json:"slow_msgs_per_s"`
	// IsolationRatio = FastWithSlow / FastBaseline; the acceptance bar
	// is >= 0.9 (one slow replica costs the others at most 10%).
	IsolationRatio float64 `json:"isolation_ratio"`
	// Slow replica's delivery-stage accounting: overruns into catch-up,
	// entries dropped at overrun and re-served via retransmission.
	Overruns       uint64 `json:"overruns"`
	DroppedEntries uint64 `json:"dropped_entries"`
	ServedEntries  uint64 `json:"served_entries"`
}

// FlowResult aggregates the flow-control benchmark (cmd/bench -flow).
type FlowResult struct {
	Topology  string            `json:"topology"`
	DurationS float64           `json:"duration_s"`
	Leveling  []FlowLevelingRow `json:"leveling"`
	// MissetVsTuned shows the damage of a 4x-too-low static λ;
	// AdaptiveVsTuned must recover to >= 0.9.
	MissetVsTuned   float64          `json:"misset_vs_tuned_ratio"`
	AdaptiveVsTuned float64          `json:"adaptive_vs_tuned_ratio"`
	Isolation       FlowIsolationRow `json:"isolation"`
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r FlowResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

const (
	flowHotRing  transport.RingID = 1
	flowIdleRing transport.RingID = 2
	// flowTunedLambda is the well-tuned static skip target (the paper's
	// WAN setting); flowMissetLambda is the deliberately 4x-too-low one.
	flowTunedLambda  = 2000
	flowMissetLambda = flowTunedLambda / 4
	flowDeltaWAN     = 20 * time.Millisecond
)

// flowDeployment wires n processes across EC2 regions into the given
// rings (all roles everywhere) and returns the nodes in process order.
type flowDeployment struct {
	net   *transport.Network
	nodes []*core.Node
}

func (d *flowDeployment) close() {
	for _, n := range d.nodes {
		n.Stop()
	}
	d.net.Close()
}

func newFlowDeployment(o Options, rings []transport.RingID, ringOpts core.RingOptions, handlerOf func(i int) core.BatchHandler) (*flowDeployment, error) {
	topo := netem.EC2Topology()
	topo.SetScale(o.Scale)
	net := transport.NewNetwork(topo)
	svc := coord.NewService()
	const procs = 3
	for _, r := range rings {
		var members []coord.Member
		for i := 1; i <= procs; i++ {
			members = append(members, coord.Member{
				ID:    transport.ProcessID(i),
				Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner,
			})
		}
		if err := svc.CreateRing(r, members); err != nil {
			net.Close()
			return nil, err
		}
	}
	d := &flowDeployment{net: net}
	for i := 1; i <= procs; i++ {
		site := netem.EC2Regions[(i-1)%len(netem.EC2Regions)]
		router := transport.NewRouter(net.Attach(transport.ProcessID(i), site))
		node, err := core.New(core.Config{
			Self:   transport.ProcessID(i),
			Router: router,
			Coord:  svc,
			Ring:   ringOpts,
		})
		if err != nil {
			d.close()
			return nil, err
		}
		for _, r := range rings {
			if err := node.Join(r); err != nil {
				d.close()
				return nil, err
			}
		}
		if err := node.SubscribeBatch(handlerOf(i-1), rings...); err != nil {
			d.close()
			return nil, err
		}
		d.nodes = append(d.nodes, node)
	}
	return d, nil
}

// flowPump multicasts fixed-size values to a group from several
// goroutines until stop closes, pacing lightly so the scheduler is not
// starved (the ring's pipeline window is the real throttle).
func flowPump(node *core.Node, group transport.RingID, threads int, stop <-chan struct{}, wg *sync.WaitGroup) {
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				payload := make([]byte, 64)
				_ = node.Multicast(group, payload)
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}
}

// levelingMeasure runs one rate-leveling configuration: group 1 hot,
// group 2 idle, merged by all three learners across the EC2 WAN.
func levelingMeasure(o Options, config string, lambda int, adaptive bool) (FlowLevelingRow, error) {
	meter := metrics.NewMeter()
	var peakMu sync.Mutex
	handlerOf := func(i int) core.BatchHandler {
		if i != 1 {
			return func([]core.Delivery) {}
		}
		// Process 2 is the measuring learner.
		return func(ds []core.Delivery) {
			var hot uint64
			for _, dd := range ds {
				if dd.Group == flowHotRing {
					hot++
				}
			}
			if hot > 0 {
				meter.Add(hot, hot*64)
			}
		}
	}
	ringOpts := core.RingOptions{
		RetryInterval: 100 * time.Millisecond,
		Window:        256,
		SkipEnabled:   true,
		Delta:         flowDeltaWAN,
		Lambda:        lambda,
		AdaptiveSkip:  adaptive,
	}
	if adaptive {
		ringOpts.LambdaMin = lambda / 4
		ringOpts.LambdaMax = 200000
	}
	d, err := newFlowDeployment(o, []transport.RingID{flowHotRing, flowIdleRing}, ringOpts, handlerOf)
	if err != nil {
		return FlowLevelingRow{}, err
	}
	defer d.close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	flowPump(d.nodes[0], flowHotRing, 8, stop, &wg)

	// Warm up (elections, adaptive convergence), then measure.
	warmup := o.Duration / 2
	if warmup > 2*time.Second {
		warmup = 2 * time.Second
	}
	time.Sleep(warmup)
	meter.Reset()
	_, skippedBefore, _ := d.nodes[0].RingStats(flowIdleRing)
	lambdaPeak, _ := d.nodes[0].RingLambdaNow(flowIdleRing)
	sampleStop := make(chan struct{})
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-sampleStop:
				return
			case <-t.C:
				if lam, ok := d.nodes[0].RingLambdaNow(flowIdleRing); ok {
					peakMu.Lock()
					if lam > lambdaPeak {
						lambdaPeak = lam
					}
					peakMu.Unlock()
				}
			}
		}
	}()
	time.Sleep(o.Duration)
	rate, _ := meter.Rate()
	close(sampleStop)
	sampleWG.Wait()
	close(stop)
	wg.Wait()

	_, skippedAfter, _ := d.nodes[0].RingStats(flowIdleRing)
	lambdaFinal, _ := d.nodes[0].RingLambdaNow(flowIdleRing)
	row := FlowLevelingRow{
		Config:      config,
		Lambda:      lambda,
		Adaptive:    adaptive,
		HotMsgsPerS: rate,
		LambdaPeak:  lambdaPeak,
		LambdaFinal: lambdaFinal,
	}
	if skippedAfter > skippedBefore {
		row.SkipInstances = skippedAfter - skippedBefore
	}
	for _, st := range d.nodes[1].MergeStalls() {
		if st.Ring == flowIdleRing {
			row.StragglerStallMs = float64(st.Total) / 1e6
		}
	}
	return row, nil
}

// isolationMeasure runs one slow-replica configuration on a single ring:
// process 2 (the acceptor whose vote completes the majority — the worst
// spot for the old coupled event loop) consumes each delivery with an
// artificial delay when slow is set; process 1 is the measured fast
// learner.
func isolationMeasure(o Options, slow bool) (fastRate, slowRate float64, stats [3]uint64, err error) {
	fastMeter := metrics.NewMeter()
	slowMeter := metrics.NewMeter()
	handlerOf := func(i int) core.BatchHandler {
		switch i {
		case 0:
			return func(ds []core.Delivery) {
				fastMeter.Add(uint64(len(ds)), 0)
			}
		case 1:
			return func(ds []core.Delivery) {
				slowMeter.Add(uint64(len(ds)), 0)
				if slow {
					// ~500 msgs/s: an order of magnitude below the
					// ring's WAN decide rate.
					time.Sleep(time.Duration(len(ds)) * 2 * time.Millisecond)
				}
			}
		default:
			return func([]core.Delivery) {}
		}
	}
	ringOpts := core.RingOptions{
		RetryInterval: 100 * time.Millisecond,
		Window:        256,
		DeliverBuffer: 4096,
	}
	d, err := newFlowDeployment(o, []transport.RingID{flowHotRing}, ringOpts, handlerOf)
	if err != nil {
		return 0, 0, stats, err
	}
	defer d.close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	flowPump(d.nodes[0], flowHotRing, 8, stop, &wg)

	warmup := o.Duration / 2
	if warmup > 2*time.Second {
		warmup = 2 * time.Second
	}
	time.Sleep(warmup)
	fastMeter.Reset()
	slowMeter.Reset()
	time.Sleep(o.Duration)
	fastRate, _ = fastMeter.Rate()
	slowRate, _ = slowMeter.Rate()
	close(stop)
	wg.Wait()

	if fs, ok := d.nodes[1].RingFlowStats(flowHotRing); ok {
		stats = [3]uint64{fs.Overruns, fs.DroppedEntries, fs.ServedEntries}
	}
	return fastRate, slowRate, stats, nil
}

// FlowBench runs the end-to-end flow-control benchmark on the emulated
// EC2 WAN: (a) static-vs-adaptive rate leveling under a hot/idle group
// imbalance, (b) one-slow-replica isolation on a single ring.
func FlowBench(o Options) (FlowResult, error) {
	o = o.withDefaults()
	o.header("Flow control", fmt.Sprintf("adaptive rate leveling + slow-replica isolation (EC2 WAN scale %.2f)", o.Scale))
	res := FlowResult{Topology: "ec2-4-regions", DurationS: o.Duration.Seconds()}

	o.printf("%-28s %10s %14s %12s %10s %10s\n",
		"config", "λ(init)", "hot(msgs/s)", "skips", "λ(peak)", "stall(ms)")
	configs := []struct {
		name     string
		lambda   int
		adaptive bool
	}{
		{"static-tuned", flowTunedLambda, false},
		{"static-misset-4x-low", flowMissetLambda, false},
		{"adaptive-from-misset", flowMissetLambda, true},
	}
	rows := make(map[string]FlowLevelingRow, len(configs))
	for _, c := range configs {
		row, err := levelingMeasure(o, c.name, c.lambda, c.adaptive)
		if err != nil {
			return res, err
		}
		res.Leveling = append(res.Leveling, row)
		rows[c.name] = row
		o.printf("%-28s %10d %14.0f %12d %10d %10.1f\n",
			row.Config, row.Lambda, row.HotMsgsPerS, row.SkipInstances, row.LambdaPeak, row.StragglerStallMs)
	}
	if tuned := rows["static-tuned"].HotMsgsPerS; tuned > 0 {
		res.MissetVsTuned = rows["static-misset-4x-low"].HotMsgsPerS / tuned
		res.AdaptiveVsTuned = rows["adaptive-from-misset"].HotMsgsPerS / tuned
	}
	o.printf("mis-set λ vs tuned: %.2fx   adaptive vs tuned: %.2fx (bar: >= 0.90)\n",
		res.MissetVsTuned, res.AdaptiveVsTuned)

	fastBase, _, _, err := isolationMeasure(o, false)
	if err != nil {
		return res, err
	}
	fastSlow, slowRate, stats, err := isolationMeasure(o, true)
	if err != nil {
		return res, err
	}
	res.Isolation = FlowIsolationRow{
		FastBaselineMsgsPerS: fastBase,
		FastWithSlowMsgsPerS: fastSlow,
		SlowMsgsPerS:         slowRate,
		Overruns:             stats[0],
		DroppedEntries:       stats[1],
		ServedEntries:        stats[2],
	}
	if fastBase > 0 {
		res.Isolation.IsolationRatio = fastSlow / fastBase
	}
	o.printf("slow-replica isolation: baseline %.0f msgs/s, with slow replica %.0f msgs/s (ratio %.2f, bar: >= 0.90); slow consumed %.0f msgs/s, overruns=%d dropped=%d reserved=%d\n",
		fastBase, fastSlow, res.Isolation.IsolationRatio, slowRate, stats[0], stats[1], stats[2])
	return res, nil
}
