package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/netem"
)

// Observability benchmark workload shape.
const (
	obsWorkers    = 8
	obsValueBytes = 160
	obsRecords    = 512
	// obsRepeats runs each configuration in this many fresh deployments
	// and keeps the fastest: closed-loop throughput on a small machine is
	// bimodal with coordinator placement and merge-stall timing, and the
	// noise only ever subtracts, so the max estimates capacity.
	obsRepeats = 5
)

// ObsRow is one sampling configuration's measurement.
type ObsRow struct {
	// Sampling names the configuration: "off", "1%" or "100%".
	Sampling string `json:"sampling"`
	// Divisor is the every-Nth trace divisor behind it (0 = off).
	Divisor uint64  `json:"divisor"`
	OpsPerS float64 `json:"ops_per_s"`
	// OpsPerCPU is ops per CPU second — the tracing tax independent of
	// scheduler noise on small machines.
	OpsPerCPU float64 `json:"ops_per_cpu_s"`
	// Traces is how many distinct traces the collector assembled, and
	// Spans how many spans all recorders retained, at window end.
	Traces int `json:"traces"`
	Spans  int `json:"spans"`
}

// ObsResult aggregates the tracing-overhead comparison.
type ObsResult struct {
	Workload  string  `json:"workload"`
	DurationS float64 `json:"duration_s"`
	Off       ObsRow  `json:"off"`
	OnePct    ObsRow  `json:"one_percent"`
	Full      ObsRow  `json:"full"`
	// OverheadOnePct and OverheadFull are the throughput cost of
	// sampling relative to tracing off: 1 - on/off (0.02 = 2% slower).
	OverheadOnePct float64 `json:"overhead_one_percent"`
	OverheadFull   float64 `json:"overhead_full"`
}

// ObsBench measures what end-to-end tracing costs the write path. The
// same closed-loop update workload runs three times — tracing off,
// sampling every 100th submission (the production setting) and sampling
// everything — on a two-ring store with a global ring, so each sampled
// write crosses the full submit → forward → wal-commit → decide → merge
// → apply pipeline and every hop pays its span-recording branch.
func ObsBench(o Options) (ObsResult, error) {
	o = o.withDefaults()
	o.header("Tracing overhead", "closed-loop updates, 2 partitions x 3 replicas + global ring, per-value tracing off vs 1% vs 100% sampling")
	o.printf("%-8s %12s %12s %10s %10s\n", "sampling", "ops/s", "ops/cpu-s", "traces", "spans")

	res := ObsResult{
		Workload:  "closed-loop updates, 8 workers, 160 B values, 2 partitions x 3 replicas, global ring; per-value tracing off / every-100th / every submission",
		DurationS: o.Duration.Seconds(),
	}
	for _, cfg := range []struct {
		name    string
		divisor uint64
	}{
		{"off", 0},
		{"1%", 100},
		{"100%", 1},
	} {
		var row ObsRow
		for i := 0; i < obsRepeats; i++ {
			r, err := obsRun(o, cfg.name, cfg.divisor)
			if err != nil {
				return res, err
			}
			if i == 0 || r.OpsPerS > row.OpsPerS {
				row = r
			}
		}
		switch cfg.name {
		case "off":
			res.Off = row
		case "1%":
			res.OnePct = row
		case "100%":
			res.Full = row
		}
		o.printf("%-8s %12.0f %12.0f %10d %10d\n", row.Sampling, row.OpsPerS, row.OpsPerCPU, row.Traces, row.Spans)
	}
	if res.Off.OpsPerS > 0 {
		res.OverheadOnePct = 1 - res.OnePct.OpsPerS/res.Off.OpsPerS
		res.OverheadFull = 1 - res.Full.OpsPerS/res.Off.OpsPerS
	}
	o.printf("overhead: %.1f%% at 1%% sampling, %.1f%% at 100%%\n",
		res.OverheadOnePct*100, res.OverheadFull*100)
	return res, nil
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r ObsResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

// obsRun boots one deployment at the given trace divisor and drives the
// update workload for o.Duration.
func obsRun(o Options, name string, divisor uint64) (ObsRow, error) {
	row := ObsRow{Sampling: name, Divisor: divisor}

	d := cluster.NewDeployment(nil)
	defer d.Close()
	d.SetTraceSampling(divisor)
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions: 2,
		Replicas:   3,
		Global:     true,
		Ring: core.RingOptions{
			RetryInterval: 200 * time.Millisecond,
			SkipEnabled:   true,
			Delta:         5 * time.Millisecond,
			Lambda:        9000,
			BatchBytes:    32 << 10,
			Window:        256,
		},
	})
	if err != nil {
		return row, err
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		return row, err
	}
	defer cl.Close()

	value := make([]byte, obsValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	for i := 0; i < obsRecords; i++ {
		if err := sc.Insert(obsKey(i), value); err != nil {
			return row, fmt.Errorf("bench: obs preload: %w", err)
		}
	}

	var ops atomic.Uint64
	stop := make(chan struct{})
	errs := make(chan error, obsWorkers)
	var wg sync.WaitGroup
	for w := 0; w < obsWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint32(w)*2654435761 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*1664525 + 1013904223
				if err := sc.Update(obsKey(int(rng)%obsRecords), value); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				ops.Add(1)
			}
		}(w)
	}

	time.Sleep(200 * time.Millisecond)
	startOps := ops.Load()
	cpuBefore := cpuTime()
	start := time.Now()
	time.Sleep(o.Duration)
	elapsed := time.Since(start).Seconds()
	cpu := (cpuTime() - cpuBefore).Seconds()
	n := ops.Load() - startOps
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		return row, fmt.Errorf("bench: obs %s worker: %w", name, err)
	default:
	}
	if n == 0 {
		return row, fmt.Errorf("bench: obs %s executed nothing", name)
	}

	row.OpsPerS = float64(n) / elapsed
	row.OpsPerCPU = float64(n) / cpu
	row.Traces = len(d.Trace.TraceIDs(0))
	row.Spans = d.Trace.SpanCount()
	if divisor > 0 && row.Traces == 0 {
		return row, fmt.Errorf("bench: obs %s sampled no traces", name)
	}
	return row, nil
}

func obsKey(i int) string {
	return fmt.Sprintf("okey%06d", i)
}
