package bench

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/netem"
	"amcast/internal/smr"
	"amcast/internal/store"
	"amcast/internal/transport"
	"amcast/internal/ycsb"
)

// ExecApplyRow is one (workload, worker count) point of the parallel-
// apply scaling curve. Workers 0 is the sequential ExecuteBatch baseline
// every speedup is relative to.
type ExecApplyRow struct {
	Workload string  `json:"workload"`
	Workers  int     `json:"workers"`
	OpsPerS  float64 `json:"ops_per_s"`
	Speedup  float64 `json:"speedup_vs_sequential"`
	// MeanRunSize is the average conflict-run size (ops per run); low-
	// conflict read-heavy workloads should stay near 1.
	MeanRunSize float64 `json:"mean_run_size"`
	Barriers    uint64  `json:"barrier_ops"`
}

// ExecReadRow is one read-mode throughput measurement against a live
// partition.
type ExecReadRow struct {
	Mode    string  `json:"mode"`
	OpsPerS float64 `json:"ops_per_s"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// ExecResult aggregates the execution benchmark (cmd/bench -exec).
type ExecResult struct {
	// GoMaxProcs records the cores the run actually had: on a single-core
	// runner the apply curve cannot show wall-clock speedup regardless of
	// worker count, so readers must interpret Speedup against this.
	GoMaxProcs int            `json:"gomaxprocs"`
	DurationS  float64        `json:"duration_s"`
	Records    int            `json:"records"`
	BatchSize  int            `json:"batch_size"`
	Apply      []ExecApplyRow `json:"apply_scaling"`
	Reads      []ExecReadRow  `json:"reads"`
	// ReadIndexVsMulticast is read-index local-read ops/s over multicast-
	// read ops/s in the geo deployment — the partition's replicas spread
	// across EC2 regions with the client beside one of them. That is the
	// deployment local reads exist for: the multicast round pays WAN ring
	// circulation, the local read stays in-region.
	ReadIndexVsMulticast float64 `json:"read_index_vs_multicast"`
	// ReadIndexVsMulticastColocated is the same ratio with every process
	// on one zero-latency host, where both paths are CPU-bound and the
	// gap is only the consensus round's extra per-op work.
	ReadIndexVsMulticastColocated float64 `json:"read_index_vs_multicast_colocated"`
	// ReadWaitP99Ms is the p99 time read-index reads spent parked waiting
	// for the serving replica's applied vector to cover the requirement.
	ReadWaitP99Ms float64 `json:"read_wait_p99_ms"`
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r ExecResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

const (
	// execBatchSize is the delivery-batch size fed to the applier — large
	// enough that conflict-free runs saturate the worker pool.
	execBatchSize = 512
	// execOpPool is how many encoded ops each workload pre-generates, so
	// the measured loop pays for apply, not key generation.
	execOpPool = 64 * 1024
	// execValueBytes keeps update payloads small so the benchmark
	// measures scheduling, not memcpy.
	execValueBytes = 100
	// execReadWorkers is the closed-loop client count of the read phase —
	// high enough to expose the architectural split: multicast reads
	// serialize through the partition's ring, read-index reads fan out
	// over replicas and bypass consensus entirely.
	execReadWorkers = 16
)

var execWorkerCounts = []int{1, 2, 4, 8}

// ExecBench measures the tentpole from both ends: the conflict-aware
// parallel applier's throughput scaling on read-heavy YCSB mixes
// (workload C = zero write conflicts, workload B = 5% updates), and the
// read-index local-read path against the multicast read path on a live
// partition.
func ExecBench(o Options) (ExecResult, error) {
	o = o.withDefaults()
	o.header("Exec", "conflict-aware parallel apply + local reads")
	res := ExecResult{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		DurationS:  o.Duration.Seconds(),
		Records:    o.Records,
		BatchSize:  execBatchSize,
	}
	o.printf("gomaxprocs=%d (speedup is core-bound)\n", res.GoMaxProcs)
	o.printf("%-9s %8s %10s %8s %8s %9s\n", "workload", "workers", "ops/s", "speedup", "runsize", "barriers")

	for _, wl := range []ycsb.Workload{ycsb.WorkloadC, ycsb.WorkloadB} {
		ops, err := execOps(o, wl)
		if err != nil {
			return res, err
		}
		var sequential float64
		for _, workers := range append([]int{0}, execWorkerCounts...) {
			row, err := execApplyRun(o, wl, ops, workers)
			if err != nil {
				return res, err
			}
			if workers == 0 {
				sequential = row.OpsPerS
			}
			if sequential > 0 {
				row.Speedup = row.OpsPerS / sequential
			}
			res.Apply = append(res.Apply, row)
			o.printf("%-9s %8d %10.0f %8.2f %8.2f %9d\n",
				row.Workload, row.Workers, row.OpsPerS, row.Speedup, row.MeanRunSize, row.Barriers)
		}
	}

	if err := execReadBench(o, &res); err != nil {
		return res, err
	}
	for _, r := range res.Reads {
		o.printf("reads/%-15s %10.0f ops/s  p50 %6.2f ms  p99 %6.2f ms\n", r.Mode, r.OpsPerS, r.P50Ms, r.P99Ms)
	}
	o.printf("read-index vs multicast: %.2fx geo, %.2fx colocated; read-wait p99 %.3f ms\n",
		res.ReadIndexVsMulticast, res.ReadIndexVsMulticastColocated, res.ReadWaitP99Ms)
	return res, nil
}

// execOps pre-encodes a pool of store ops drawn from a YCSB workload.
func execOps(o Options, wl ycsb.Workload) ([][]byte, error) {
	f, err := ycsb.NewFactory(ycsb.Config{
		Workload: wl, Records: o.Records, ValueSize: execValueBytes, Seed: 1,
	})
	if err != nil {
		return nil, err
	}
	g := f.Generator(7)
	ops := make([][]byte, execOpPool)
	for i := range ops {
		op := g.Next()
		var sop store.Op
		switch op.Type {
		case ycsb.OpUpdate, ycsb.OpInsert, ycsb.OpReadModifyWrite:
			sop = store.Op{Kind: store.OpUpdate, Key: op.Key, Value: op.Value}
		default:
			sop = store.Op{Kind: store.OpRead, Key: op.Key}
		}
		ops[i] = sop.Encode()
	}
	return ops, nil
}

// execApplyRun drives pre-encoded batches through one applier (or the
// sequential baseline, workers 0) for the measurement window.
func execApplyRun(o Options, wl ycsb.Workload, ops [][]byte, workers int) (ExecApplyRow, error) {
	row := ExecApplyRow{Workload: wl.String(), Workers: workers}
	sm := store.NewSM()
	value := make([]byte, execValueBytes)
	for i := 0; i < o.Records; i++ {
		sm.Execute(1, store.Op{Kind: store.OpInsert, Key: ycsb.Key(i), Value: value}.Encode())
	}
	var applier *smr.Applier
	if workers > 0 {
		applier = smr.NewApplier(sm, workers)
		defer applier.Close()
	}

	groups := make([]transport.RingID, execBatchSize)
	for i := range groups {
		groups[i] = 1
	}
	out := make([][]byte, execBatchSize)
	var total uint64
	cursor := 0
	start := time.Now()
	for time.Since(start) < o.Duration {
		if cursor+execBatchSize > len(ops) {
			cursor = 0
		}
		batch := ops[cursor : cursor+execBatchSize]
		cursor += execBatchSize
		if applier != nil {
			applier.Apply(groups, batch, out)
		} else {
			copy(out, sm.ExecuteBatch(groups, batch))
		}
		total += execBatchSize
	}
	elapsed := time.Since(start).Seconds()
	if total == 0 {
		return row, fmt.Errorf("bench: exec %s/%d executed nothing", wl, workers)
	}
	row.OpsPerS = float64(total) / elapsed
	if applier != nil {
		row.MeanRunSize = applier.RunSizes().Mean()
		row.Barriers = applier.Barriers()
	} else {
		row.MeanRunSize = float64(execBatchSize)
	}
	return row, nil
}

// execReadBench measures closed-loop read throughput via the multicast
// path and the read-index local path in two deployments: everything
// co-located on one zero-latency host (both paths CPU-bound), and the
// paper's geo setting — one partition's replicas spread across EC2
// regions with the client beside one of them, where the multicast round
// circulates the WAN ring while the local read stays in-region.
func execReadBench(o Options, res *ExecResult) error {
	colo, err := execReadScenario(o, res, false)
	if err != nil {
		return err
	}
	geo, err := execReadScenario(o, res, true)
	if err != nil {
		return err
	}
	res.Reads = append(append(res.Reads, colo...), geo...)
	if colo[0].OpsPerS > 0 {
		res.ReadIndexVsMulticastColocated = colo[1].OpsPerS / colo[0].OpsPerS
	}
	if geo[0].OpsPerS > 0 {
		res.ReadIndexVsMulticast = geo[1].OpsPerS / geo[0].OpsPerS
	}
	return nil
}

// execReadScenario boots one partition (co-located or geo-distributed)
// and measures the multicast then the read-index path against it,
// returning the two rows in that order.
func execReadScenario(o Options, res *ExecResult, geo bool) ([]ExecReadRow, error) {
	var topo *netem.Topology
	site := netem.SiteLocal
	suffix := ""
	opts := cluster.StoreOptions{
		Partitions: 1, Replicas: 3,
		Ring: core.RingOptions{
			RetryInterval: 30 * time.Millisecond,
			SkipEnabled:   true,
			Delta:         5 * time.Millisecond,
			Lambda:        2000,
		},
	}
	if geo {
		topo = netem.EC2Topology()
		topo.SetScale(o.Scale)
		opts.SiteOfReplica = func(_, r int) netem.Site {
			return netem.EC2Regions[(r-1)%len(netem.EC2Regions)]
		}
		opts.Ring = core.RingOptions{
			RetryInterval: 200 * time.Millisecond,
			SkipEnabled:   true,
			Delta:         20 * time.Millisecond,
			Lambda:        2000,
		}
		site = netem.EC2Regions[0] // beside replica 1
		suffix = "/geo"
	}
	d := cluster.NewDeployment(topo)
	defer d.Close()
	c, err := d.StartStore(opts)
	if err != nil {
		return nil, err
	}
	sc, cl, err := c.NewClient(site)
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	records := o.Records
	if records > 2000 {
		records = 2000 // the preload runs through consensus; keep it quick
	}
	if geo && records > 512 {
		records = 512 // every geo preload batch pays a WAN round
	}
	value := make([]byte, execValueBytes)
	const preloadBatch = 256
	for base := 0; base < records; base += preloadBatch {
		n := preloadBatch
		if base+n > records {
			n = records - base
		}
		batch := make([]store.Op, n)
		for i := range batch {
			batch[i] = store.Op{Kind: store.OpInsert, Key: ycsb.Key(base + i), Value: value}
		}
		if _, err := sc.Batch(1, batch); err != nil {
			return nil, fmt.Errorf("bench: exec preload: %w", err)
		}
	}

	run := func(mode string, read func(key string) error) (ExecReadRow, error) {
		row := ExecReadRow{Mode: mode}
		lat := metrics.NewHistogram()
		var ops atomic.Uint64
		stop := make(chan struct{})
		errs := make(chan error, execReadWorkers)
		var wg sync.WaitGroup
		for w := 0; w < execReadWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := uint32(w)*2654435761 + 1
				for {
					select {
					case <-stop:
						return
					default:
					}
					rng = rng*1664525 + 1013904223
					key := ycsb.Key(int(rng) % records)
					start := time.Now()
					if err := read(key); err != nil {
						select {
						case errs <- err:
						default:
						}
						return
					}
					lat.Record(time.Since(start))
					ops.Add(1)
				}
			}(w)
		}
		start := time.Now()
		time.Sleep(o.Duration)
		elapsed := time.Since(start).Seconds()
		total := ops.Load()
		close(stop)
		wg.Wait()
		select {
		case err := <-errs:
			return row, fmt.Errorf("bench: exec reads %s: %w", mode, err)
		default:
		}
		if total == 0 {
			return row, fmt.Errorf("bench: exec reads %s executed nothing", mode)
		}
		row.OpsPerS = float64(total) / elapsed
		row.P50Ms = float64(lat.Quantile(0.5)) / float64(time.Millisecond)
		row.P99Ms = float64(lat.Quantile(0.99)) / float64(time.Millisecond)
		return row, nil
	}

	localRead := func(key string) error {
		_, _, err := sc.ReadLocal(key)
		return err
	}
	if geo {
		// A geo client reads from its nearest replica, not round-robin.
		target := cluster.ReplicaID(1, 1)
		localRead = func(key string) error {
			_, _, err := sc.ReadLocalAt(target, key)
			return err
		}
	}
	multicast, err := run("multicast"+suffix, func(key string) error {
		_, _, err := sc.Read(key)
		return err
	})
	if err != nil {
		return nil, err
	}
	local, err := run("read-index"+suffix, localRead)
	if err != nil {
		return nil, err
	}
	for r := 1; r <= 3; r++ {
		if h := c.Server(1, r).Replica().ReadWait(); h.Count() > 0 {
			if p := float64(h.Quantile(0.99)) / float64(time.Millisecond); p > res.ReadWaitP99Ms {
				res.ReadWaitP99Ms = p
			}
		}
	}
	return []ExecReadRow{multicast, local}, nil
}
