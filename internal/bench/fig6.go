package bench

import (
	"fmt"
	"sync"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/dlog"
	"amcast/internal/metrics"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// Fig6Point is one ring-count step of Figure 6.
type Fig6Point struct {
	Rings       int
	OpsPerS     float64 // aggregate append throughput
	ScalePct    float64 // relative to the previous step (the paper's %)
	Disk1CDF    []metrics.CDFPoint
	Disk1MeanMs float64
}

// Fig6Result aggregates the figure.
type Fig6Result struct {
	Points []Fig6Point
}

// Fig6 reproduces Figure 6: dLog vertical scalability in asynchronous
// mode. Each added ring gets its own (emulated) disk; learners subscribe
// to the k log rings plus a common ring; throughput should scale near
// linearly with rings.
func Fig6(o Options) (Fig6Result, error) {
	o = o.withDefaults()
	o.header("Figure 6", "dLog vertical scalability (async disks, one per ring, 1 KB appends in 32 KB batches)")
	o.printf("%6s %14s %10s %14s\n", "rings", "tput(ops/s)", "scale(%)", "disk1 mean(ms)")

	var res Fig6Result
	prev := 0.0
	for rings := 1; rings <= 5; rings++ {
		p, err := fig6Run(o, rings)
		if err != nil {
			return res, err
		}
		if prev > 0 {
			p.ScalePct = 100 * (p.OpsPerS / float64(rings)) / (prev / float64(rings-1))
		} else {
			p.ScalePct = 100
		}
		prev = p.OpsPerS
		res.Points = append(res.Points, p)
		o.printf("%6d %14.0f %10.0f %14.2f\n", p.Rings, p.OpsPerS, p.ScalePct, p.Disk1MeanMs)
	}
	o.printf("\nLatency CDF (appends to ring 1):\n")
	for _, p := range res.Points {
		o.printf("  %d ring(s):", p.Rings)
		for _, pt := range p.Disk1CDF {
			o.printf(" %.0f%%@%.1fms", pt.Fraction*100, float64(pt.Latency)/1e6)
		}
		o.printf("\n")
	}
	return res, nil
}

func fig6Run(o Options, rings int) (Fig6Point, error) {
	d := cluster.NewDeployment(nil)
	defer d.Close()
	// One asynchronous emulated disk per ring per server, as in the
	// paper's 5-disk acceptors.
	type diskKey struct {
		ring transport.RingID
		self transport.ProcessID
	}
	var mu sync.Mutex
	disks := make(map[diskKey]storage.Log)
	c, err := d.StartDLog(cluster.DLogOptions{
		Logs:    rings,
		Servers: 3,
		Global:  true,
		Ring: core.RingOptions{
			RetryInterval: 300 * time.Millisecond,
			SkipEnabled:   true,
			Delta:         5 * time.Millisecond,
			Lambda:        9000,
			BatchBytes:    32 << 10,
			Window:        128,
		},
		NewAcceptorLog: func(ring transport.RingID, self transport.ProcessID) (storage.Log, error) {
			mu.Lock()
			defer mu.Unlock()
			k := diskKey{ring, self}
			if l, ok := disks[k]; ok {
				return l, nil
			}
			l := storage.NewSimDisk(storage.NewMemLog(), storage.HDDSpec(), false, o.Scale)
			disks[k] = l
			return l, nil
		},
	})
	if err != nil {
		return Fig6Point{}, err
	}

	meter := metrics.NewMeter()
	disk1 := metrics.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	payload := make([]byte, 1024)
	// Enough closed-loop writers to keep every ring busy.
	writersPerRing := min(o.Clients/rings+1, 20)
	for r := 1; r <= rings; r++ {
		for t := 0; t < writersPerRing; t++ {
			dc, raw, err := c.NewClient()
			if err != nil {
				return Fig6Point{}, err
			}
			defer raw.Close()
			logID := dlog.LogID(r)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					start := time.Now()
					if _, err := dc.Append(logID, payload); err != nil {
						continue
					}
					if logID == 1 {
						disk1.Record(time.Since(start))
					}
					meter.Add(1, 1024)
				}
			}()
		}
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	ops, _ := meter.Rate()
	if ops == 0 {
		return Fig6Point{}, fmt.Errorf("bench: fig6 with %d rings made no progress", rings)
	}
	return Fig6Point{
		Rings:       rings,
		OpsPerS:     ops,
		Disk1CDF:    disk1.CDF(8),
		Disk1MeanMs: float64(disk1.Mean()) / 1e6,
	}, nil
}
