// Package bench regenerates every figure of the paper's evaluation
// (Section 8) against this repository's implementation:
//
//	Figure 3 — Multi-Ring Paxos baseline: throughput, latency, coordinator
//	           CPU and latency CDF across value sizes and storage modes.
//	Figure 4 — YCSB A–F: Cassandra model vs MRP-Store (independent rings)
//	           vs MRP-Store (global ring) vs MySQL model; workload F
//	           per-operation latency.
//	Figure 5 — dLog vs Bookkeeper model: throughput and latency vs number
//	           of client threads, synchronous disk writes.
//	Figure 6 — dLog vertical scalability: aggregate throughput and latency
//	           CDF vs number of rings, one disk per ring.
//	Figure 7 — MRP-Store horizontal scalability across four EC2 regions:
//	           aggregate throughput and latency CDF.
//	Figure 8 — recovery impact: throughput/latency timeline around a
//	           replica crash, checkpoints, log trimming and recovery.
//
// Absolute numbers come from an emulated substrate (see DESIGN.md), so the
// reproduction target is each figure's shape; EXPERIMENTS.md records
// paper-vs-measured values.
package bench

import (
	"fmt"
	"io"
	"syscall"
	"time"
)

// Options tunes all figure runners.
type Options struct {
	// Out receives the textual report (required).
	Out io.Writer
	// Duration is the measurement window per configuration.
	Duration time.Duration
	// Scale multiplies emulated latencies (disk and WAN). 1.0 is
	// realistic hardware; tests use smaller values for speed.
	Scale float64
	// Clients caps client-thread sweeps (paper figures use up to 200).
	Clients int
	// Records is the YCSB database size (paper: 1 GB of 1 KB records;
	// default scaled down).
	Records int
	// Verbose adds per-configuration progress lines.
	Verbose bool
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Clients == 0 {
		o.Clients = 100
	}
	if o.Records == 0 {
		o.Records = 2000
	}
	return o
}

func (o Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// cpuTime reads the process's consumed CPU time (user+system). The paper
// reports coordinator CPU (Figure 3, bottom-left); in this in-process
// reproduction the whole deployment shares the process, with the
// coordinator dominating, so process CPU is the documented proxy.
func cpuTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// header prints a figure banner.
func (o Options) header(fig, title string) {
	o.printf("\n=== %s: %s ===\n", fig, title)
}
