package bench

import (
	"io"
	"testing"
	"time"
)

// TestDeliveryBenchShort smoke-tests both delivery modes and the JSON
// snapshot with a short measurement window.
func TestDeliveryBenchShort(t *testing.T) {
	if testing.Short() {
		t.Skip("delivery bench needs a measurement window")
	}
	res, err := DeliveryBench(Options{Out: io.Discard, Duration: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerMessage.Executed == 0 || res.Batched.Executed == 0 {
		t.Fatalf("empty measurement: %+v", res)
	}
	path := t.TempDir() + "/delivery.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}
