package bench

import (
	"io"
	"testing"
	"time"
)

// TestFlowBenchShort smoke-tests the flow-control benchmark and its JSON
// snapshot with a short measurement window. It asserts the directional
// claims, not exact numbers: a mis-set static λ must cost throughput and
// the adaptive loop must recover most of it; one slow replica must not
// collapse the fast learners.
func TestFlowBenchShort(t *testing.T) {
	if testing.Short() {
		t.Skip("flow bench needs a measurement window")
	}
	res, err := FlowBench(Options{Out: io.Discard, Duration: 700 * time.Millisecond, Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leveling) != 3 {
		t.Fatalf("expected 3 leveling rows, got %+v", res.Leveling)
	}
	for _, row := range res.Leveling {
		if row.HotMsgsPerS <= 0 {
			t.Fatalf("empty measurement: %+v", row)
		}
	}
	if res.MissetVsTuned >= 0.8 {
		t.Errorf("mis-set λ should visibly degrade throughput, ratio %.2f", res.MissetVsTuned)
	}
	if res.AdaptiveVsTuned < 0.7 {
		t.Errorf("adaptive λ recovered only %.2fx of the tuned baseline", res.AdaptiveVsTuned)
	}
	if res.Isolation.IsolationRatio < 0.7 {
		t.Errorf("slow replica reduced fast learners to %.2fx", res.Isolation.IsolationRatio)
	}
	path := t.TempDir() + "/flow.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}
