package bench

import (
	"fmt"
	"sync"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/netem"
	"amcast/internal/store"
)

// Fig7Point is one region-count step of Figure 7.
type Fig7Point struct {
	Regions  int
	OpsPerS  float64 // aggregate throughput across regions
	ScalePct float64 // relative to the previous step
	// USWest2CDF is the latency CDF observed by the us-west-2 client (the
	// paper measures latency in that region).
	USWest2CDF    []metrics.CDFPoint
	USWest2MeanMs float64
}

// Fig7Result aggregates the figure.
type Fig7Result struct {
	Points []Fig7Point
}

// Fig7 reproduces Figure 7: MRP-Store deployed across up to four EC2
// regions (one partition per region, a global ring joining all replicas);
// clients send 1 KB updates to their local partition only. Throughput adds
// up across regions while local latency stays flat.
func Fig7(o Options) (Fig7Result, error) {
	o = o.withDefaults()
	o.header("Figure 7", fmt.Sprintf("MRP-Store horizontal scalability across EC2 regions (WAN scale %.2f)", o.Scale))
	o.printf("%8s %14s %10s %18s\n", "regions", "tput(ops/s)", "scale(%)", "us-west-2 mean(ms)")

	var res Fig7Result
	prev := 0.0
	for regions := 1; regions <= 4; regions++ {
		p, err := fig7Run(o, regions)
		if err != nil {
			return res, err
		}
		if prev > 0 {
			p.ScalePct = 100 * (p.OpsPerS / float64(regions)) / (prev / float64(regions-1))
		} else {
			p.ScalePct = 100
		}
		prev = p.OpsPerS
		res.Points = append(res.Points, p)
		o.printf("%8d %14.0f %10.0f %18.1f\n", p.Regions, p.OpsPerS, p.ScalePct, p.USWest2MeanMs)
	}
	o.printf("\nLatency CDF (client in %s):\n", measureRegion(4))
	for _, p := range res.Points {
		o.printf("  %d region(s):", p.Regions)
		for _, pt := range p.USWest2CDF {
			o.printf(" %.0f%%@%.0fms", pt.Fraction*100, float64(pt.Latency)/1e6)
		}
		o.printf("\n")
	}
	return res, nil
}

// measureRegion picks the region whose client records the latency CDF.
// The paper measures in us-west-2; this harness measures in the first
// deployed region so the measured client exists at every step and its
// latency is comparable across steps (the paper's us-west-2 likewise hosts
// a partition at every measured configuration).
func measureRegion(int) netem.Site {
	return netem.EC2Regions[0]
}

func fig7Run(o Options, regions int) (Fig7Point, error) {
	topo := netem.EC2Topology()
	topo.SetScale(o.Scale)
	d := cluster.NewDeployment(topo)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions: regions,
		Replicas:   3,
		Global:     true,
		Kind:       store.HashPartitioned,
		SiteOf:     func(p int) netem.Site { return netem.EC2Regions[p-1] },
		Ring: core.RingOptions{
			RetryInterval: 500 * time.Millisecond,
			SkipEnabled:   true,
			Delta:         20 * time.Millisecond, // paper's WAN Δ
			Lambda:        2000,                  // paper's WAN λ
			BatchBytes:    32 << 10,
			Window:        256,
		},
		// The global ring is idle except for scans; a higher λ lets its
		// skip stream run ahead so local delivery never waits on it.
		GlobalLambda: 20000,
	})
	if err != nil {
		return Fig7Point{}, err
	}

	// Let rings elect and pre-execute phase 1 before measuring.
	time.Sleep(300 * time.Millisecond)

	meter := metrics.NewMeter()
	measured := metrics.NewHistogram()
	measureSite := measureRegion(regions)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	payload := make([]byte, 1024)
	// A constant per-region client pool keeps each region's offered load
	// fixed, so aggregate throughput grows with regions (the paper adds
	// one client machine per region). The pool is kept small so that even
	// the 4-region deployment stays below the single host's capacity —
	// this harness emulates all 12+ servers in one process, so beyond
	// that point "scalability" would only measure host CPU saturation.
	clientsPerRegion := min(o.Clients, 4)
	for p := 1; p <= regions; p++ {
		site := netem.EC2Regions[p-1]
		// Keys owned by this partition so clients write locally only.
		keys := localKeys(c.Schema, p, 64)
		for t := 0; t < clientsPerRegion; t++ {
			sc, raw, err := c.NewClient(site)
			if err != nil {
				return Fig7Point{}, err
			}
			defer raw.Close()
			sc.Timeout = 60 * time.Second
			local := site == measureSite
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				// Seed this worker's key once.
				key := keys[t%len(keys)]
				if err := sc.Insert(key, payload); err != nil {
					return
				}
				for {
					select {
					case <-stop:
						return
					default:
					}
					start := time.Now()
					if err := sc.Update(key, payload); err != nil {
						continue
					}
					if local {
						measured.Record(time.Since(start))
					}
					meter.Add(1, 1024)
					// Fixed think time caps each region's offered
					// load (~paper's one client machine per region)
					// below the emulation host's capacity.
					time.Sleep(time.Millisecond)
				}
			}(t)
		}
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	ops, _ := meter.Rate()
	if ops == 0 {
		return Fig7Point{}, fmt.Errorf("bench: fig7 with %d regions made no progress", regions)
	}
	return Fig7Point{
		Regions:       regions,
		OpsPerS:       ops,
		USWest2CDF:    measured.CDF(8),
		USWest2MeanMs: float64(measured.Mean()) / 1e6,
	}, nil
}

// localKeys finds keys the hash schema maps to partition p.
func localKeys(schema store.Schema, p int, want int) []string {
	var out []string
	for i := 0; len(out) < want && i < 100000; i++ {
		k := fmt.Sprintf("region%d-key%06d", p, i)
		if int(schema.PartitionOf(k)) == p {
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		out = []string{fmt.Sprintf("region%d-fallback", p)}
	}
	return out
}
