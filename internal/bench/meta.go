package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
)

// Meta is the uniform run-environment stamp carried by every BENCH_*.json
// snapshot: without it a CI trajectory cannot distinguish a regression
// from a host or toolchain change.
type Meta struct {
	// Commit is the VCS revision the binary was built from (empty when
	// built outside a checkout or without VCS stamping).
	Commit string `json:"commit,omitempty"`
	// Dirty marks a build from a modified working tree.
	Dirty     bool   `json:"dirty,omitempty"`
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the parallelism the run actually had.
	GOMAXPROCS int `json:"gomaxprocs"`
	// GOGC is the collector target as configured ("100" when unset):
	// memory benchmarks are meaningless without it.
	GOGC string `json:"gogc"`
}

// runMeta snapshots the environment of this benchmark process.
func runMeta() Meta {
	m := Meta{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOGC:       os.Getenv("GOGC"),
	}
	if m.GOGC == "" {
		m.GOGC = "100"
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Commit = s.Value
			case "vcs.modified":
				m.Dirty = s.Value == "true"
			}
		}
	}
	return m
}

// writeResultJSON snapshots one benchmark result to path with the uniform
// run metadata stamped in under "meta". Every result's WriteJSON funnels
// through here so no snapshot ships unstamped.
func writeResultJSON(path string, r any) error {
	buf, err := json.Marshal(r)
	if err != nil {
		return err
	}
	doc := make(map[string]any)
	if err := json.Unmarshal(buf, &doc); err != nil {
		return err
	}
	doc["meta"] = runMeta()
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
