package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/netem"
	"amcast/internal/reconfig"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// ReconfigRow is one live-split measurement: a range-partitioned store
// under sustained closed-loop update load while the partition splits.
type ReconfigRow struct {
	// Mode is "scale-out" (new replicas, chunked range transfer) or
	// "in-place" (same replicas resubscribe; no data moves).
	Mode string `json:"mode"`
	// Records is the database size at split time.
	Records int `json:"records"`
	// MovedKeys is how many keys migrated to the new partition.
	MovedKeys int `json:"moved_keys"`
	// SplitStallMs is the longest an OpSplit marker stalled execution on
	// any old replica — the O(log n) copy-on-write tree split. The
	// acceptance bar: it must NOT grow with Records.
	SplitStallMs float64 `json:"split_stall_ms"`
	// ResubStallMs is the longest an epoch transition blocked a merge
	// goroutine (in-place mode).
	ResubStallMs float64 `json:"resubscribe_stall_ms"`
	// Phase durations of the controller protocol.
	PrepareMs    float64 `json:"prepare_ms"`
	MarkerMs     float64 `json:"marker_ms"`
	TransferMs   float64 `json:"transfer_ms"`
	TotalSplitMs float64 `json:"total_split_ms"`
	// SteadyOpsPerS is client throughput before the split starts;
	// DuringOpsPerS is throughput over the split window; AfterOpsPerS is
	// throughput once the new schema is serving. Note the in-place row's
	// after-split throughput: closed-loop clients whose replicas merge
	// two rings are paced by the Δ/λ merge-turn latency (the paper's
	// latency/rate-leveling trade-off), so a small closed loop reads
	// slower even though open-loop capacity grew with the added ring.
	SteadyOpsPerS float64 `json:"steady_ops_per_s"`
	DuringOpsPerS float64 `json:"during_ops_per_s"`
	AfterOpsPerS  float64 `json:"after_ops_per_s"`
	// DipRatio is DuringOpsPerS / SteadyOpsPerS (1.0 = split is free).
	DipRatio float64 `json:"dip_ratio_during_vs_steady"`
	// P99BeforeMs / MaxDuringMs are client-observed update latencies.
	P99BeforeMs  float64 `json:"p99_before_ms"`
	MaxDuringMs  float64 `json:"max_during_ms"`
	SchemaEpoch  int64   `json:"schema_epoch"`
	MigratedCtr  uint64  `json:"migrated_keys_counter"`
	ReplicaEpoch uint64  `json:"replica_epoch"`
}

// ReconfigResult aggregates the reconfiguration benchmark
// (cmd/bench -reconfig).
type ReconfigResult struct {
	Workload  string        `json:"workload"`
	DurationS float64       `json:"duration_s"`
	Rows      []ReconfigRow `json:"rows"`
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r ReconfigResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

const (
	reconfigWorkers    = 4
	reconfigValueBytes = 128
)

// reconfigRecordCounts are the database sizes compared: the split stall
// must stay flat while the moved-key count grows ~8x.
var reconfigRecordCounts = []int{4096, 32768}

// ReconfigBench measures what a live partition split costs the clients:
// for each database size it drives a closed-loop update workload against
// a one-partition range store, performs a scale-out split (new replica
// set, chunked range transfer, schema flip) in the middle of the run, and
// reports the throughput dip, the latency spike and the delivery stall.
// A final row runs the in-place mode (same replicas resubscribe to a new
// ring at the marker) where no data moves at all.
func ReconfigBench(o Options) (ReconfigResult, error) {
	o = o.withDefaults()
	o.header("Reconfig", "live partition split under load: delivery stall and throughput dip")
	o.printf("%-10s %9s %8s %11s %11s %10s %10s %8s %10s\n",
		"mode", "records", "moved", "stall(ms)", "resub(ms)", "steady", "during", "dip", "split(ms)")

	res := ReconfigResult{
		Workload: fmt.Sprintf("1 partition x 3 replicas, %d closed-loop update clients, %d B values, split at the key-space midpoint mid-run",
			reconfigWorkers, reconfigValueBytes),
		DurationS: o.Duration.Seconds(),
	}
	for _, records := range reconfigRecordCounts {
		row, err := reconfigRun(o, records, false)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, row)
		printReconfigRow(o, row)
	}
	row, err := reconfigRun(o, reconfigRecordCounts[0], true)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)
	printReconfigRow(o, row)
	return res, nil
}

func printReconfigRow(o Options, r ReconfigRow) {
	o.printf("%-10s %9d %8d %11.3f %11.3f %10.0f %10.0f %8.2f %10.1f (prep %.1f + marker %.1f + xfer %.1f)\n",
		r.Mode, r.Records, r.MovedKeys, r.SplitStallMs, r.ResubStallMs,
		r.SteadyOpsPerS, r.DuringOpsPerS, r.DipRatio, r.TotalSplitMs,
		r.PrepareMs, r.MarkerMs, r.TransferMs)
}

// reconfigRun boots the store, preloads, runs the update workload and
// splits the partition mid-run.
func reconfigRun(o Options, records int, inPlace bool) (ReconfigRow, error) {
	mode := "scale-out"
	if inPlace {
		mode = "in-place"
	}
	row := ReconfigRow{Mode: mode, Records: records}

	d := cluster.NewDeployment(nil)
	defer d.Close()
	storeOpts := cluster.StoreOptions{
		Partitions: 1,
		Replicas:   3,
		Kind:       store.RangePartitioned,
	}
	if inPlace {
		// In-place splits merge the old and new rings on the same
		// replicas; rate leveling (skips) keeps the merge from waiting
		// on whichever ring is momentarily idle — exactly the paper's
		// Section 4 mechanism. λ is the maximum expected per-ring rate:
		// it must outrun the busy ring's instance rate or the idle
		// ring's skip cadence becomes the merge's pace.
		storeOpts.Ring = core.RingOptions{SkipEnabled: true, Delta: time.Millisecond, Lambda: 20000, RetryInterval: 50 * time.Millisecond}
	}
	c, err := d.StartStore(storeOpts)
	if err != nil {
		return row, err
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		return row, err
	}
	defer cl.Close()
	defer sc.Close()

	value := make([]byte, reconfigValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	const batch = 256
	for base := 0; base < records; base += batch {
		n := batch
		if base+n > records {
			n = records - base
		}
		ops := make([]store.Op, n)
		for i := range ops {
			ops[i] = store.Op{Kind: store.OpInsert, Key: reconfigKey(base + i), Value: value}
		}
		if _, err := sc.Batch(1, ops); err != nil {
			return row, fmt.Errorf("bench: reconfig preload: %w", err)
		}
	}
	splitKey := reconfigKey(records / 2)

	oldReplicas := []transport.ProcessID{cluster.ReplicaID(1, 1), cluster.ReplicaID(1, 2), cluster.ReplicaID(1, 3)}
	if inPlace {
		var members []coord.Member
		for _, id := range oldReplicas {
			members = append(members, coord.Member{ID: id, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner})
		}
		if err := d.Svc.CreateRing(2, members); err != nil {
			return row, err
		}
	} else if err := c.AddPartition(2, 2); err != nil {
		return row, err
	}
	ctrl, cleanup, err := c.NewReconfigController()
	if err != nil {
		return row, err
	}
	defer cleanup()

	// Closed-loop update workload over the whole key space.
	latBefore := metrics.NewHistogram()
	latDuring := metrics.NewHistogram()
	var phase atomic.Int32 // 0 before, 1 during, 2 after
	var ops atomic.Uint64
	stop := make(chan struct{})
	errs := make(chan error, reconfigWorkers)
	var wg sync.WaitGroup
	for w := 0; w < reconfigWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint32(w)*2654435761 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*1664525 + 1013904223
				key := reconfigKey(int(rng) % records)
				start := time.Now()
				if err := sc.Update(key, value); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				switch phase.Load() {
				case 0:
					latBefore.Record(time.Since(start))
				case 1:
					latDuring.Record(time.Since(start))
				}
				ops.Add(1)
			}
		}(w)
	}

	window := o.Duration / 3
	t0 := time.Now()
	time.Sleep(window)
	steadyOps := ops.Load()
	steadyS := time.Since(t0).Seconds()

	phase.Store(1)
	splitStart := time.Now()
	res, err := ctrl.Split(reconfig.SplitSpec{
		OldGroup:    1,
		NewGroup:    2,
		Key:         splitKey,
		InPlace:     inPlace,
		OldReplicas: oldReplicas,
	}, func(res *reconfig.SplitResult) error {
		if inPlace {
			return nil
		}
		if err := c.SeedPartition(2, res.Seed); err != nil {
			return err
		}
		return c.StartPartition(2)
	})
	if err != nil {
		close(stop)
		wg.Wait()
		return row, fmt.Errorf("bench: %s split: %w", mode, err)
	}
	// Keep the "during" window open past the flip so stale-client
	// refresh-and-retry traffic counts against the dip.
	time.Sleep(window / 4)
	splitS := time.Since(splitStart).Seconds()
	duringOps := ops.Load() - steadyOps

	phase.Store(2)
	afterStart := time.Now()
	startAfter := ops.Load()
	time.Sleep(window)
	afterOps := ops.Load() - startAfter
	afterS := time.Since(afterStart).Seconds()

	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		return row, fmt.Errorf("bench: reconfig %s worker: %w", mode, err)
	default:
	}

	row.MovedKeys = res.MovedKeys
	row.PrepareMs = ms(res.PrepareDuration)
	row.MarkerMs = ms(res.MarkerDuration)
	row.TransferMs = ms(res.TransferDuration)
	row.TotalSplitMs = splitS * 1e3
	row.SteadyOpsPerS = float64(steadyOps) / steadyS
	row.DuringOpsPerS = float64(duringOps) / splitS
	row.AfterOpsPerS = float64(afterOps) / afterS
	if row.SteadyOpsPerS > 0 {
		row.DipRatio = row.DuringOpsPerS / row.SteadyOpsPerS
	}
	row.P99BeforeMs = ms(latBefore.Quantile(0.99))
	row.MaxDuringMs = ms(latDuring.Max())
	row.SchemaEpoch = ctrl.Metrics.SchemaEpoch.Load()
	row.MigratedCtr = ctrl.Metrics.MigratedKeys.Load()
	for r := 1; r <= 3; r++ {
		srv := c.Server(1, r)
		if s := ms(srv.SM().SplitStallMax()); s > row.SplitStallMs {
			row.SplitStallMs = s
		}
		if s := ms(srv.Replica().ResubscribeStallMax()); s > row.ResubStallMs {
			row.ResubStallMs = s
		}
		if e := srv.Replica().Epoch(); e > row.ReplicaEpoch {
			row.ReplicaEpoch = e
		}
	}
	if ops.Load() == 0 {
		return row, fmt.Errorf("bench: reconfig %s executed nothing", mode)
	}
	return row, nil
}

func reconfigKey(i int) string { return fmt.Sprintf("user%08d", i) }

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
