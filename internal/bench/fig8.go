package bench

import (
	"fmt"
	"sync"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// Fig8Sample is one per-second sample of the recovery timeline.
type Fig8Sample struct {
	AtSec   float64
	OpsPerS float64
	MeanMs  float64
}

// Fig8Events records when the experiment's numbered events happened
// (the paper's ①..⑤ annotations).
type Fig8Events struct {
	CrashAtSec   float64
	RestartAtSec float64
	RecoveredSec float64 // when the restarted replica caught up
}

// Fig8Result aggregates the figure.
type Fig8Result struct {
	Samples []Fig8Sample
	Events  Fig8Events
}

// Fig8 reproduces Figure 8: impact of recovery on performance. One
// partition with three replicas runs at ~75% of peak load with periodic
// checkpoints and acceptor log trimming; one replica is killed early and
// restarted late, recovering a remote checkpoint plus retransmissions.
// The timeline (paper: kill @20 s, restart @240 s of 300 s) scales with
// o.Duration: kill at 10% and restart at 70%.
func Fig8(o Options) (Fig8Result, error) {
	o = o.withDefaults()
	if o.Duration < 2*time.Second {
		o.Duration = 2 * time.Second
	}
	o.header("Figure 8", fmt.Sprintf("Impact of recovery on performance (%.0fs timeline)", o.Duration.Seconds()))

	d := cluster.NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions:      1,
		Replicas:        3,
		CheckpointEvery: 500,
		RecoveryTimeout: 2 * time.Second,
		Ring: core.RingOptions{
			RetryInterval: 200 * time.Millisecond,
			TrimInterval:  500 * time.Millisecond,
			BatchBytes:    32 << 10,
			Window:        128,
		},
		NewLog: func(transport.RingID, transport.ProcessID) (storage.Log, error) {
			return storage.NewSimDisk(storage.NewMemLog(), storage.SSDSpec(), false, o.Scale), nil
		},
	})
	if err != nil {
		return Fig8Result{}, err
	}

	// Drive load at roughly 75% of peak with a fixed client pool.
	const clients = 12
	meter := metrics.NewMeter()
	hist := metrics.NewHistogram()
	var histMu sync.Mutex
	window := metrics.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	payload := make([]byte, 1024)
	for t := 0; t < clients; t++ {
		sc, raw, err := c.NewClient("local")
		if err != nil {
			return Fig8Result{}, err
		}
		defer raw.Close()
		key := fmt.Sprintf("key%03d", t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sc.Insert(key, payload); err != nil {
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if err := sc.Update(key, payload); err != nil {
					continue
				}
				d := time.Since(start)
				meter.Add(1, 1024)
				hist.Record(d)
				histMu.Lock()
				window.Record(d)
				histMu.Unlock()
				// ~75% load: brief pause between ops.
				time.Sleep(time.Duration(float64(d) * 0.3))
			}
		}()
	}

	var res Fig8Result
	crashAt := time.Duration(float64(o.Duration) * 0.1)
	restartAt := time.Duration(float64(o.Duration) * 0.7)
	sampleEvery := o.Duration / 30
	if sampleEvery < 100*time.Millisecond {
		sampleEvery = 100 * time.Millisecond
	}
	start := time.Now()
	crashed, restarted := false, false
	meter.Reset()
	for time.Since(start) < o.Duration {
		time.Sleep(sampleEvery)
		elapsed := time.Since(start)
		ops, _ := meter.Rate()
		meter.Reset()
		histMu.Lock()
		mean := float64(window.Mean()) / 1e6
		window = metrics.NewHistogram()
		histMu.Unlock()
		res.Samples = append(res.Samples, Fig8Sample{
			AtSec: elapsed.Seconds(), OpsPerS: ops, MeanMs: mean,
		})
		if !crashed && elapsed >= crashAt {
			c.Crash(1, 3)
			crashed = true
			res.Events.CrashAtSec = elapsed.Seconds()
			o.printf("t=%5.1fs  EVENT 1: replica terminated\n", elapsed.Seconds())
		}
		if !restarted && elapsed >= restartAt {
			if err := c.Restart(1, 3); err != nil {
				return res, fmt.Errorf("restart replica: %w", err)
			}
			restarted = true
			res.Events.RestartAtSec = elapsed.Seconds()
			o.printf("t=%5.1fs  EVENT 4: replica recovery begins\n", elapsed.Seconds())
		}
	}
	close(stop)
	wg.Wait()

	// Wait briefly for the restarted replica to converge and record when.
	target := c.Server(1, 1).SM().Len()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		srv := c.Server(1, 3)
		if srv != nil && srv.SM().Len() >= target {
			res.Events.RecoveredSec = time.Since(start).Seconds()
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	o.printf("\n%8s %12s %10s\n", "t(s)", "tput(ops/s)", "mean(ms)")
	for _, s := range res.Samples {
		o.printf("%8.1f %12.0f %10.2f\n", s.AtSec, s.OpsPerS, s.MeanMs)
	}
	o.printf("\nevents: crash@%.1fs restart@%.1fs recovered@%.1fs (replica 3 entries: %d, live replica: %d)\n",
		res.Events.CrashAtSec, res.Events.RestartAtSec, res.Events.RecoveredSec,
		smLen(c, 1, 3), target)
	return res, nil
}

func smLen(c *cluster.StoreCluster, p, r int) int {
	srv := c.Server(p, r)
	if srv == nil {
		return -1
	}
	return srv.SM().Len()
}
