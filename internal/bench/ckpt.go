package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/metrics"
	"amcast/internal/netem"
	"amcast/internal/recovery"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// CkptRow is one (mode, state size) measurement of the checkpoint
// benchmark: an MRP-Store partition serving a closed-loop update workload
// while checkpointing continuously.
type CkptRow struct {
	Mode string `json:"mode"`
	// OpsPerS is client-observed update throughput while checkpoints are
	// being taken.
	OpsPerS float64 `json:"ops_per_s"`
	// ThroughputVsSteady is OpsPerS over the same workload's throughput
	// with checkpoints disabled (1.0 = checkpoints are free).
	ThroughputVsSteady float64 `json:"throughput_vs_steady"`
	// P99Ms / MaxMs are client-observed update latencies.
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// MaxStallMs is the longest a checkpoint blocked the delivery
	// goroutine (capture only on the async path; capture + serialize +
	// durable write on the sync path), maxed over the partition's
	// replicas.
	MaxStallMs float64 `json:"max_delivery_stall_ms"`
	// Checkpoints / Coalesced count durable writes and captures
	// superseded before being written, summed over replicas.
	Checkpoints uint64 `json:"durable_checkpoints"`
	Coalesced   uint64 `json:"coalesced_captures"`
}

// CkptSizeRow compares both pipelines at one database size.
type CkptSizeRow struct {
	Records    int `json:"records"`
	StateBytes int `json:"state_bytes"`
	// SteadyOpsPerS is the checkpoint-free control run.
	SteadyOpsPerS float64 `json:"steady_ops_per_s"`
	// Sync is the seed's blocking pipeline (full-state serialization +
	// write + fsync inline in deliverBatch).
	Sync CkptRow `json:"sync_seed"`
	// Async is the COW capture + background writer pipeline.
	Async CkptRow `json:"cow_async"`
	// StallRatio is Sync.MaxStallMs / Async.MaxStallMs.
	StallRatio float64 `json:"stall_ratio_sync_vs_async"`
}

// CkptResult aggregates the checkpoint benchmark (cmd/bench -ckpt).
type CkptResult struct {
	Workload  string        `json:"workload"`
	DurationS float64       `json:"duration_s"`
	Sizes     []CkptSizeRow `json:"sizes"`
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r CkptResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

const (
	// ckptValueBytes is the stored value size; records × value ≈ state.
	ckptValueBytes = 256
	// ckptEvery is the commands-per-checkpoint cadence during measured
	// runs — low enough that several checkpoints land in every window.
	ckptEvery = 2000
	// ckptWorkers is the closed-loop client thread count.
	ckptWorkers = 4
)

// ckptRecordCounts are the database sizes compared (~256 KB, ~2 MB and
// ~8 MB of serialized state) — enough spread to show the sync pipeline's
// stall growing linearly with state while the COW capture stays flat.
var ckptRecordCounts = []int{1024, 8192, 32768}

// CkptBench measures how much checkpointing disturbs delivery: for each
// database size it runs the same closed-loop update workload three times —
// checkpoints off (steady control), the seed's synchronous inline
// checkpoint path, and the COW-capture + background-writer pipeline — and
// reports throughput, client-observed p99/max latency and the longest
// delivery stall a checkpoint caused. Checkpoints go to real files
// (write + fsync + rename + dir fsync) so the sync mode pays what the seed
// actually paid.
func CkptBench(o Options) (CkptResult, error) {
	o = o.withDefaults()
	o.header("Checkpoint", "delivery impact: sync-seed vs COW-async checkpoint pipeline")
	o.printf("%-10s %9s %12s %10s %9s %9s %11s %6s %6s\n",
		"mode", "records", "state", "ops/s", "vs-steady", "p99(ms)", "stall(ms)", "ckpts", "coal")

	res := CkptResult{
		Workload: fmt.Sprintf("1 partition x 3 replicas, %d closed-loop update clients, %d B values, checkpoint every %d cmds, FileStore checkpoints",
			ckptWorkers, ckptValueBytes, ckptEvery),
		DurationS: o.Duration.Seconds(),
	}
	for _, records := range ckptRecordCounts {
		row := CkptSizeRow{Records: records, StateBytes: records * (ckptValueBytes + 16)}
		steady, err := ckptRun(o, records, 0, false)
		if err != nil {
			return res, err
		}
		row.SteadyOpsPerS = steady.OpsPerS
		if row.Sync, err = ckptRun(o, records, ckptEvery, true); err != nil {
			return res, err
		}
		if row.Async, err = ckptRun(o, records, ckptEvery, false); err != nil {
			return res, err
		}
		if steady.OpsPerS > 0 {
			row.Sync.ThroughputVsSteady = row.Sync.OpsPerS / steady.OpsPerS
			row.Async.ThroughputVsSteady = row.Async.OpsPerS / steady.OpsPerS
		}
		if row.Async.MaxStallMs > 0 {
			row.StallRatio = row.Sync.MaxStallMs / row.Async.MaxStallMs
		}
		res.Sizes = append(res.Sizes, row)
		for _, r := range []CkptRow{row.Sync, row.Async} {
			o.printf("%-10s %9d %12d %10.0f %9.2f %9.2f %11.3f %6d %6d\n",
				r.Mode, records, row.StateBytes, r.OpsPerS, r.ThroughputVsSteady,
				r.P99Ms, r.MaxStallMs, r.Checkpoints, r.Coalesced)
		}
	}
	return res, nil
}

// ckptRun boots one store partition, preloads records and drives the
// update workload for o.Duration. checkpointEvery 0 is the steady control.
func ckptRun(o Options, records, checkpointEvery int, syncCkpt bool) (CkptRow, error) {
	mode := "steady"
	if checkpointEvery > 0 {
		if syncCkpt {
			mode = "sync-seed"
		} else {
			mode = "cow-async"
		}
	}
	row := CkptRow{Mode: mode}

	ckptDir, err := os.MkdirTemp("", "amcast-ckptbench-*")
	if err != nil {
		return row, err
	}
	defer func() { _ = os.RemoveAll(ckptDir) }()

	d := cluster.NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions:      1,
		Replicas:        3,
		CheckpointEvery: checkpointEvery,
		SyncCheckpoints: syncCkpt,
		NewCheckpointStore: func(self transport.ProcessID) (recovery.Store, error) {
			return recovery.NewFileStore(filepath.Join(ckptDir, fmt.Sprintf("p%d", self)))
		},
	})
	if err != nil {
		return row, err
	}
	sc, cl, err := c.NewClient(netem.SiteLocal)
	if err != nil {
		return row, err
	}
	defer cl.Close()

	// Preload through consensus in batched inserts.
	value := make([]byte, ckptValueBytes)
	for i := range value {
		value[i] = byte(i)
	}
	const batch = 256
	for base := 0; base < records; base += batch {
		n := batch
		if base+n > records {
			n = records - base
		}
		ops := make([]store.Op, n)
		for i := range ops {
			ops[i] = store.Op{Kind: store.OpInsert, Key: ckptKey(base + i), Value: value}
		}
		if _, err := sc.Batch(1, ops); err != nil {
			return row, fmt.Errorf("bench: ckpt preload: %w", err)
		}
	}

	// Baselines after preload, so the reported counters cover only the
	// measured window. (Preload runs in OpBatch commands — far fewer
	// commands than a checkpoint interval — but stay exact regardless.)
	var baseCkpts, baseCoalesced [3]uint64
	for r := 1; r <= 3; r++ {
		rep := c.Server(1, r).Replica()
		baseCkpts[r-1] = rep.CheckpointCount()
		baseCoalesced[r-1] = rep.CheckpointsCoalesced()
	}

	// Closed-loop update workload.
	lat := metrics.NewHistogram()
	var ops atomic.Uint64
	stop := make(chan struct{})
	errs := make(chan error, ckptWorkers)
	var wg sync.WaitGroup
	for w := 0; w < ckptWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint32(w)*2654435761 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*1664525 + 1013904223
				key := ckptKey(int(rng) % records)
				start := time.Now()
				if err := sc.Update(key, value); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				lat.Record(time.Since(start))
				ops.Add(1)
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(o.Duration)
	elapsed := time.Since(start).Seconds()
	total := ops.Load()
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		return row, fmt.Errorf("bench: ckpt %s worker: %w", mode, err)
	default:
	}

	row.OpsPerS = float64(total) / elapsed
	row.P99Ms = float64(lat.Quantile(0.99)) / float64(time.Millisecond)
	row.MaxMs = float64(lat.Max()) / float64(time.Millisecond)
	for r := 1; r <= 3; r++ {
		rep := c.Server(1, r).Replica()
		if s := rep.CheckpointStallMax(); float64(s)/float64(time.Millisecond) > row.MaxStallMs {
			row.MaxStallMs = float64(s) / float64(time.Millisecond)
		}
		row.Checkpoints += rep.CheckpointCount() - baseCkpts[r-1]
		row.Coalesced += rep.CheckpointsCoalesced() - baseCoalesced[r-1]
	}
	if total == 0 {
		return row, fmt.Errorf("bench: ckpt %s executed nothing", mode)
	}
	return row, nil
}

func ckptKey(i int) string { return fmt.Sprintf("user%08d", i) }
