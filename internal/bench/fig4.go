package bench

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"amcast/internal/baseline"
	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/store"
	"amcast/internal/transport"
	"amcast/internal/ycsb"
)

// Fig4System names one of the compared systems.
type Fig4System string

// The four systems of Figure 4.
const (
	SysCassandra Fig4System = "Cassandra"
	SysMRPIndep  Fig4System = "MRP-Store (indep. rings)"
	SysMRPGlobal Fig4System = "MRP-Store"
	SysMySQL     Fig4System = "MySQL"
)

// Fig4Systems lists them in the paper's order.
var Fig4Systems = []Fig4System{SysCassandra, SysMRPIndep, SysMRPGlobal, SysMySQL}

// Fig4Cell is one (system, workload) bar of the top graph.
type Fig4Cell struct {
	System   Fig4System
	Workload ycsb.Workload
	OpsPerS  float64
}

// Fig4Latency is one bar of the bottom graph (workload F latencies).
type Fig4Latency struct {
	System Fig4System
	Op     string // Read, Update, Read-Mod-Write
	MeanMs float64
}

// Fig4Result aggregates the figure.
type Fig4Result struct {
	Cells    []Fig4Cell
	FLatency []Fig4Latency
}

// kvSystem abstracts the four compared stores for the YCSB driver.
type kvSystem interface {
	// Do executes one YCSB op and returns an error on failure.
	Do(op ycsb.Op) error
	// Load inserts an initial record.
	Load(key string, value []byte) error
	// Close tears the client (not the servers) down.
	Close()
}

// Fig4 reproduces Figure 4: YCSB workloads A–F over the four systems, and
// workload F's per-operation latency.
func Fig4(o Options) (Fig4Result, error) {
	o = o.withDefaults()
	threads := min(o.Clients, 100)
	o.header("Figure 4", fmt.Sprintf("YCSB (%d records, %d client threads)", o.Records, threads))
	o.printf("%-26s", "system")
	for _, w := range ycsb.Workloads {
		o.printf(" %9s", "wl-"+w.String())
	}
	o.printf("\n")

	var res Fig4Result
	latencies := make(map[Fig4System]map[string]*metrics.Histogram)
	for _, sys := range Fig4Systems {
		o.printf("%-26s", sys)
		latencies[sys] = map[string]*metrics.Histogram{
			"Read":           metrics.NewHistogram(),
			"Update":         metrics.NewHistogram(),
			"Read-Mod-Write": metrics.NewHistogram(),
		}
		for _, w := range ycsb.Workloads {
			ops, err := fig4Run(o, sys, w, threads, latencies[sys])
			if err != nil {
				return res, fmt.Errorf("fig4 %s/%s: %w", sys, w, err)
			}
			res.Cells = append(res.Cells, Fig4Cell{System: sys, Workload: w, OpsPerS: ops})
			o.printf(" %9.0f", ops)
		}
		o.printf("\n")
	}

	o.printf("\nWorkload F latency (ms):\n%-26s %10s %10s %10s\n", "system", "Read", "Update", "RMW")
	for _, sys := range Fig4Systems {
		h := latencies[sys]
		read := float64(h["Read"].Mean()) / 1e6
		upd := float64(h["Update"].Mean()) / 1e6
		rmw := float64(h["Read-Mod-Write"].Mean()) / 1e6
		o.printf("%-26s %10.3f %10.3f %10.3f\n", sys, read, upd, rmw)
		res.FLatency = append(res.FLatency,
			Fig4Latency{System: sys, Op: "Read", MeanMs: read},
			Fig4Latency{System: sys, Op: "Update", MeanMs: upd},
			Fig4Latency{System: sys, Op: "Read-Mod-Write", MeanMs: rmw},
		)
	}
	return res, nil
}

// Fig4YCSBOnMRP runs one YCSB workload against the global-ring MRP-Store
// configuration and returns its throughput (exported for the top-level
// Table 1 benchmark).
func Fig4YCSBOnMRP(o Options, w ycsb.Workload) (float64, error) {
	o = o.withDefaults()
	return fig4Run(o, SysMRPGlobal, w, min(o.Clients, 100), nil)
}

// fig4Run boots one system, loads the database and drives one workload.
func fig4Run(o Options, sys Fig4System, w ycsb.Workload, threads int, fLat map[string]*metrics.Histogram) (float64, error) {
	mk, teardown, err := fig4Boot(o, sys)
	if err != nil {
		return 0, err
	}
	defer teardown()

	// Load phase through a single client (batched under the hood for the
	// replicated systems by ring packing).
	loader := mk()
	value := make([]byte, 1024)
	var loadWG sync.WaitGroup
	loadErr := make(chan error, 8)
	keys := ycsb.LoadKeys(o.Records)
	chunk := (len(keys) + 7) / 8
	for c := 0; c < len(keys); c += chunk {
		end := min(c+chunk, len(keys))
		part := keys[c:end]
		cl := mk()
		loadWG.Add(1)
		go func(cl kvSystem, part []string) {
			defer loadWG.Done()
			defer cl.Close()
			for _, k := range part {
				if err := cl.Load(k, value); err != nil {
					select {
					case loadErr <- err:
					default:
					}
					return
				}
			}
		}(cl, part)
	}
	loadWG.Wait()
	loader.Close()
	select {
	case err := <-loadErr:
		return 0, fmt.Errorf("load phase: %w", err)
	default:
	}

	factory, err := ycsb.NewFactory(ycsb.Config{
		Workload: w, Records: o.Records, ValueSize: 1024, MaxScanLength: 20, Seed: 7,
	})
	if err != nil {
		return 0, err
	}

	stop := make(chan struct{})
	meter := metrics.NewMeter()
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		gen := factory.Generator(int64(t))
		cl := mk()
		wg.Add(1)
		go func(cl kvSystem) {
			defer wg.Done()
			defer cl.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				op := gen.Next()
				start := time.Now()
				if err := cl.Do(op); err != nil {
					continue // overload shedding: retry next op
				}
				meter.Add(1, uint64(len(op.Value)))
				if w == ycsb.WorkloadF && fLat != nil {
					d := time.Since(start)
					switch op.Type {
					case ycsb.OpRead:
						fLat["Read"].Record(d)
					case ycsb.OpUpdate:
						fLat["Update"].Record(d)
					case ycsb.OpReadModifyWrite:
						fLat["Read-Mod-Write"].Record(d)
					}
				}
			}
		}(cl)
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	ops, _ := meter.Rate()
	return ops, nil
}

// fig4Boot starts servers for one system and returns a client factory.
func fig4Boot(o Options, sys Fig4System) (mk func() kvSystem, teardown func(), err error) {
	switch sys {
	case SysCassandra:
		net := transport.NewNetwork(nil)
		ev, err := baseline.StartEventual(baseline.EventualConfig{Net: net, Partitions: 3, ReplicationFactor: 3})
		if err != nil {
			net.Close()
			return nil, nil, err
		}
		var idSeq transport.ProcessID = 50000
		var mu sync.Mutex
		mk = func() kvSystem {
			mu.Lock()
			idSeq++
			id := idSeq
			mu.Unlock()
			return &eventualKV{c: ev.NewClient(id)}
		}
		return mk, func() { ev.Stop(); net.Close() }, nil
	case SysMySQL:
		net := transport.NewNetwork(nil)
		sn, err := baseline.StartSingleNode(baseline.SingleNodeConfig{
			Net: net,
			WAL: storage.NewSimDisk(storage.NewMemLog(), storage.SSDSpec(), false, o.Scale),
		})
		if err != nil {
			net.Close()
			return nil, nil, err
		}
		var idSeq transport.ProcessID = 51000
		var mu sync.Mutex
		mk = func() kvSystem {
			mu.Lock()
			idSeq++
			id := idSeq
			mu.Unlock()
			return &singleKV{c: sn.NewClient(id)}
		}
		return mk, func() { sn.Stop(); net.Close() }, nil
	default: // the two MRP-Store configurations
		d := cluster.NewDeployment(nil)
		sc, err := d.StartStore(cluster.StoreOptions{
			Partitions: 3,
			Replicas:   3,
			Global:     sys == SysMRPGlobal,
			Kind:       store.HashPartitioned,
			Ring: core.RingOptions{
				RetryInterval: 200 * time.Millisecond,
				SkipEnabled:   true,
				Delta:         5 * time.Millisecond,
				Lambda:        9000,
				BatchBytes:    32 << 10,
				Window:        256,
			},
		})
		if err != nil {
			d.Close()
			return nil, nil, err
		}
		mk = func() kvSystem {
			client, raw, err := sc.NewClient(netem.SiteLocal)
			if err != nil {
				panic(fmt.Sprintf("bench: new store client: %v", err))
			}
			return &mrpKV{c: client, raw: raw}
		}
		return mk, d.Close, nil
	}
}

// scanHi derives a scan upper bound from a YCSB key and scan length.
func scanHi(key string, length int) string {
	idx := 0
	if n, err := strconv.Atoi(strings.TrimPrefix(key, "user")); err == nil {
		idx = n
	}
	return ycsb.Key(idx + length)
}

// mrpKV adapts the MRP-Store client.
type mrpKV struct {
	c   *store.Client
	raw *cluster.Client
}

func (m *mrpKV) Load(key string, value []byte) error { return m.c.Insert(key, value) }

func (m *mrpKV) Do(op ycsb.Op) error {
	switch op.Type {
	case ycsb.OpRead:
		_, _, err := m.c.Read(op.Key)
		return err
	case ycsb.OpUpdate:
		return m.c.Update(op.Key, op.Value)
	case ycsb.OpInsert:
		return m.c.Insert(op.Key, op.Value)
	case ycsb.OpScan:
		_, err := m.c.Scan(op.Key, scanHi(op.Key, op.ScanLength))
		return err
	case ycsb.OpReadModifyWrite:
		if _, _, err := m.c.Read(op.Key); err != nil {
			return err
		}
		return m.c.Update(op.Key, op.Value)
	}
	return nil
}

func (m *mrpKV) Close() { m.raw.Close() }

// eventualKV adapts the Cassandra model.
type eventualKV struct{ c *baseline.EventualClient }

func (e *eventualKV) Load(key string, value []byte) error {
	_, err := e.c.Do(store.Op{Kind: store.OpInsert, Key: key, Value: value})
	return err
}

func (e *eventualKV) Do(op ycsb.Op) error {
	switch op.Type {
	case ycsb.OpRead:
		_, err := e.c.Do(store.Op{Kind: store.OpRead, Key: op.Key})
		return err
	case ycsb.OpUpdate:
		_, err := e.c.Do(store.Op{Kind: store.OpUpdate, Key: op.Key, Value: op.Value})
		return err
	case ycsb.OpInsert:
		_, err := e.c.Do(store.Op{Kind: store.OpInsert, Key: op.Key, Value: op.Value})
		return err
	case ycsb.OpScan:
		_, err := e.c.Scan(op.Key, scanHi(op.Key, op.ScanLength))
		return err
	case ycsb.OpReadModifyWrite:
		if _, err := e.c.Do(store.Op{Kind: store.OpRead, Key: op.Key}); err != nil {
			return err
		}
		_, err := e.c.Do(store.Op{Kind: store.OpUpdate, Key: op.Key, Value: op.Value})
		return err
	}
	return nil
}

func (e *eventualKV) Close() { e.c.Close() }

// singleKV adapts the MySQL model.
type singleKV struct{ c *baseline.SingleNodeClient }

func (s *singleKV) Load(key string, value []byte) error {
	_, err := s.c.Do(store.Op{Kind: store.OpInsert, Key: key, Value: value})
	return err
}

func (s *singleKV) Do(op ycsb.Op) error {
	switch op.Type {
	case ycsb.OpRead:
		_, err := s.c.Do(store.Op{Kind: store.OpRead, Key: op.Key})
		return err
	case ycsb.OpUpdate:
		_, err := s.c.Do(store.Op{Kind: store.OpUpdate, Key: op.Key, Value: op.Value})
		return err
	case ycsb.OpInsert:
		_, err := s.c.Do(store.Op{Kind: store.OpInsert, Key: op.Key, Value: op.Value})
		return err
	case ycsb.OpScan:
		_, err := s.c.Do(store.Op{Kind: store.OpScan, Key: op.Key, KeyHi: scanHi(op.Key, op.ScanLength)})
		return err
	case ycsb.OpReadModifyWrite:
		if _, err := s.c.Do(store.Op{Kind: store.OpRead, Key: op.Key}); err != nil {
			return err
		}
		_, err := s.c.Do(store.Op{Kind: store.OpUpdate, Key: op.Key, Value: op.Value})
		return err
	}
	return nil
}

func (s *singleKV) Close() { s.c.Close() }
