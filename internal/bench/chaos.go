package bench

import (
	"fmt"
	"time"

	"amcast/internal/chaos"
)

// ChaosResult aggregates the chaos campaigns (cmd/bench -chaos): each
// row is one campaign's full report — detection and recovery latency
// percentiles, the longest client-observed unavailability window, the
// throughput dip under faults, and the acked-write ledger. The headline
// acceptance bar is LostWrites == 0 on every row with Liveness and
// Converged true.
type ChaosResult struct {
	DurationS float64        `json:"duration_s"`
	Campaigns []chaos.Report `json:"campaigns"`
	// Passed is true iff every campaign passed (no lost acked writes,
	// liveness restored within bound, replicas converged, no errors).
	Passed bool `json:"passed"`
	// Rollups across campaigns (worst case, since each campaign is a
	// different fault class).
	WorstDetectP99Ms        float64 `json:"worst_detect_p99_ms"`
	WorstRecoverP99Ms       float64 `json:"worst_recover_p99_ms"`
	WorstUnavailabilityMs   float64 `json:"worst_unavailability_ms"`
	WorstThroughputDip      float64 `json:"worst_throughput_dip"`
	TotalAckedWrites        uint64  `json:"total_acked_writes"`
	TotalLostWrites         int     `json:"total_lost_writes"`
	TotalKills              int     `json:"total_kills"`
	TotalRestartsReadmitted int     `json:"total_restarts_readmitted"`
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r ChaosResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

// ChaosBench runs the four chaos campaigns back to back under live
// client load: repeated coordinator kills, rolling replica kills during
// a live partition split, a WAN region cut and heal, and a disk-full
// acceptor. Every campaign runs with the heartbeat failure detectors on
// and no MarkDown oracle anywhere — detection, failover, and
// re-admission are measured, not scripted.
func ChaosBench(o Options) (ChaosResult, error) {
	o = o.withDefaults()
	o.header("Chaos", "failure detection, failover and recovery under injected faults")

	// The WAN campaign compresses EC2 geo latencies like the cluster
	// tests do (0.05 at the default -scale 0.25); -scale 5 would run it
	// with realistic 2014-era RTTs.
	const wanScale = 0.2
	// The coordinator-failover campaign is the only one that scales with
	// the requested duration: each kill/restart cycle is ~2.8 s.
	cycles := int(o.Duration / (2800 * time.Millisecond))
	if cycles < 1 {
		cycles = 1
	}
	specs := []chaos.Spec{
		chaos.CoordinatorFailover(cycles),
		chaos.RollingKillsDuringSplit(),
		chaos.WANPartitionHeal(o.Scale * wanScale),
		chaos.DiskFullAcceptor(),
	}

	start := time.Now()
	res := ChaosResult{Passed: true}
	o.printf("%-28s %6s %6s %10s %10s %10s %8s %6s %6s\n",
		"campaign", "kills", "acked", "detP99ms", "recP99ms", "unavailms", "dip", "lost", "pass")
	for _, spec := range specs {
		rep, err := chaos.Execute(spec)
		if err != nil {
			return res, fmt.Errorf("campaign %s: %w", spec.Name, err)
		}
		res.Campaigns = append(res.Campaigns, *rep)
		res.Passed = res.Passed && rep.Passed()
		res.WorstDetectP99Ms = max(res.WorstDetectP99Ms, rep.DetectP99Ms)
		res.WorstRecoverP99Ms = max(res.WorstRecoverP99Ms, rep.RecoverP99Ms)
		res.WorstUnavailabilityMs = max(res.WorstUnavailabilityMs, rep.MaxUnavailabilityMs)
		res.WorstThroughputDip = max(res.WorstThroughputDip, rep.ThroughputDip)
		res.TotalAckedWrites += rep.AckedWrites
		res.TotalLostWrites += rep.LostWrites
		res.TotalKills += rep.Kills
		res.TotalRestartsReadmitted += rep.Restarts
		o.printf("%-28s %6d %6d %10.1f %10.1f %10.1f %7.0f%% %6d %6v\n",
			rep.Name, rep.Kills, rep.AckedWrites, rep.DetectP99Ms, rep.RecoverP99Ms,
			rep.MaxUnavailabilityMs, rep.ThroughputDip*100, rep.LostWrites, rep.Passed())
	}
	res.DurationS = time.Since(start).Seconds()
	o.printf("worst-case: detect p99 %.1f ms, recover p99 %.1f ms, unavailability %.1f ms; %d acked writes, %d lost (bar: 0)\n",
		res.WorstDetectP99Ms, res.WorstRecoverP99Ms, res.WorstUnavailabilityMs,
		res.TotalAckedWrites, res.TotalLostWrites)
	if !res.Passed {
		return res, fmt.Errorf("chaos campaigns failed (lost=%d)", res.TotalLostWrites)
	}
	return res, nil
}
