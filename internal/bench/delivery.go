package bench

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/recovery"
	"amcast/internal/smr"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// DeliveryMode names one configuration of the delivery-pipeline benchmark.
type DeliveryMode string

// Delivery benchmark modes.
const (
	// DeliveryPerMessage sets BatchOptions.MaxMessages = 1: the tightest
	// batching the refactored pipeline offers. Batch bounds hold at
	// consensus-instance granularity, so under this workload's 32 KB
	// message packing a "batch" is still one packed instance (~150
	// messages); the mode measures per-instance flushing, not the
	// seed's true per-message callbacks. The real before/after number
	// is SpeedupVsSeed, measured against a driver built at the seed
	// commit.
	DeliveryPerMessage DeliveryMode = "per-message"
	// DeliveryBatched uses the default batch bounds: the merge hands
	// batches of consecutive deliveries to the replica, which executes
	// them under one lock through the state machine's batch entry point.
	DeliveryBatched DeliveryMode = "batched"
)

// DeliveryRow is one mode's measurement.
type DeliveryRow struct {
	Mode DeliveryMode `json:"mode"`
	// MsgsPerS is delivered messages per wall-clock second.
	MsgsPerS float64 `json:"msgs_per_s"`
	// MsgsPerCPU is delivered messages per CPU second (user+system,
	// process-wide): the pipeline's efficiency, robust to scheduler
	// noise on small machines.
	MsgsPerCPU float64 `json:"msgs_per_cpu_s"`
	Mbps       float64 `json:"mbps"`
	Executed   uint64  `json:"executed"`
	Delivered  uint64  `json:"delivered"`
}

// Delivery benchmark workload shape.
const (
	deliveryThreads   = 10
	deliveryValueSize = 160
	deliveryWindow    = 1024 // in-flight commands per proposer thread
	learnerReplicas   = 8
)

// SeedBaseline records a measurement of the pre-refactor (seed) delivery
// pipeline on the same workload, taken with a driver built at the seed
// commit on the same host. The in-tree per-message mode is NOT that
// baseline: it is a thin adapter over the batched pipeline and shares its
// optimizations (ring-buffer dedup windows, pooled decision buffers,
// in-place batch decoding), so comparing against it understates the
// refactor.
type SeedBaseline struct {
	Commit   string  `json:"commit"`
	Pipeline string  `json:"pipeline"`
	MsgsPerS float64 `json:"msgs_per_s"`
}

// DeliveryResult aggregates the before/after comparison.
type DeliveryResult struct {
	Workload   string      `json:"workload"`
	DurationS  float64     `json:"duration_s"`
	PerMessage DeliveryRow `json:"per_message"`
	Batched    DeliveryRow `json:"batched"`
	// Speedup is batched vs the in-tree MaxMessages=1 mode. Both share
	// this tree's pipeline optimizations and both batch at instance
	// granularity under packing, so this is a lower bound on batching's
	// effect; SpeedupVsSeed is the before/after headline.
	Speedup float64 `json:"speedup"`
	// SeedBaseline/SpeedupVsSeed compare against the recorded
	// pre-refactor measurement when one is supplied (cmd/bench
	// -seed-baseline).
	SeedBaseline  *SeedBaseline `json:"seed_baseline,omitempty"`
	SpeedupVsSeed float64       `json:"speedup_vs_seed,omitempty"`
}

// DeliveryBench measures the ring → core → SMR delivery pipeline on the
// Figure 3-style workload — a single multicast group with three replica
// processes — driven open-loop so the delivery side, not client
// round-trips, is the bottleneck. Proposers flood small MRP-Store commands
// with the paper's 32 KB message packing; replicas execute them through
// the full smr.Replica stack (dedup, state machine, checkpoint
// accounting). It runs the workload twice, per-message and batched, and
// reports delivered-messages/sec for each.
func DeliveryBench(o Options) (DeliveryResult, error) {
	o = o.withDefaults()
	o.header("Delivery pipeline", "per-message vs batch-at-a-time execution (1 ring, 8 learner replicas, open-loop proposers)")
	o.printf("%-14s %14s %14s %10s\n", "mode", "msgs/s", "msgs/cpu-s", "Mbit/s")

	res := DeliveryResult{
		Workload:  "fig3-style single ring, 8 learner replicas, 10 open-loop proposers, 200 B commands, 32 KB packing; delivered msgs/s aggregated over replicas",
		DurationS: o.Duration.Seconds(),
	}
	for _, mode := range []DeliveryMode{DeliveryPerMessage, DeliveryBatched} {
		row, err := deliveryRun(o, mode)
		if err != nil {
			return res, err
		}
		switch mode {
		case DeliveryPerMessage:
			res.PerMessage = row
		case DeliveryBatched:
			res.Batched = row
		}
		o.printf("%-14s %14.0f %14.0f %10.2f\n", mode, row.MsgsPerS, row.MsgsPerCPU, row.Mbps)
	}
	if res.PerMessage.MsgsPerS > 0 {
		res.Speedup = res.Batched.MsgsPerS / res.PerMessage.MsgsPerS
	}
	o.printf("speedup: %.2fx\n", res.Speedup)
	return res, nil
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r DeliveryResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

// deliveryRun measures one mode. The network is the zero-delay in-process
// fabric: with link emulation the proposal side throttles both modes
// identically and the delivery pipeline never saturates, which is the
// stage this benchmark isolates.
func deliveryRun(o Options, mode DeliveryMode) (DeliveryRow, error) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	// Two acceptors: one vote hop per instance keeps the coordinator's
	// window open long enough for 32 KB message packing to engage (a
	// zero-latency lone acceptor decides before proposals can queue),
	// while the per-instance consensus cost — identical in both modes —
	// stays small against the ring → core → SMR delivery path this
	// benchmark compares. The remaining members are learner-only
	// replicas: atomic multicast fans every message out to all
	// subscribers, so the delivery pipeline is the system's dominant
	// cost, as in a production deployment with many subscribers.
	members := []coord.Member{
		{ID: 1, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
		{ID: 2, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
	}
	for i := 3; i <= learnerReplicas; i++ {
		members = append(members, coord.Member{
			ID:    transport.ProcessID(i),
			Roles: coord.RoleProposer | coord.RoleLearner,
		})
	}
	if err := svc.CreateRing(1, members); err != nil {
		return DeliveryRow{}, err
	}

	// Replicas running the full SMR stack over MRP-Store state
	// machines. No response transport: the workload is open-loop, so the
	// measured path is exactly ring decide → merge → replica execute.
	replicas := make([]*smr.Replica, 0, learnerReplicas)
	nodes := make([]*core.Node, 0, learnerReplicas)
	for i := 0; i < learnerReplicas; i++ {
		router := transport.NewRouter(net.Attach(transport.ProcessID(i+1), netem.SiteLocal))
		cfg := core.Config{
			Self:   transport.ProcessID(i + 1),
			Router: router,
			Coord:  svc,
			Ring: core.RingOptions{
				RetryInterval: 100 * time.Millisecond,
				Window:        128,
				BatchBytes:    32 << 10,
			},
		}
		if mode == DeliveryPerMessage {
			cfg.Batch = core.BatchOptions{MaxMessages: 1}
		}
		node, err := core.New(cfg)
		if err != nil {
			return DeliveryRow{}, err
		}
		nodes = append(nodes, node)
		rep, err := smr.NewReplica(smr.ReplicaConfig{
			Self:      transport.ProcessID(i + 1),
			Partition: 1,
			Groups:    []transport.RingID{1},
			Node:      node,
			Service:   router.Service(),
			SM:        store.NewSM(),
		}, recovery.Checkpoint{})
		if err != nil {
			node.Stop()
			return DeliveryRow{}, err
		}
		replicas = append(replicas, rep)
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	// Proposer deliveryThreads flooding single-key inserts, self-clocked against
	// the execution counter: each thread keeps a large window of commands
	// in flight — enough to saturate the delivery pipeline, small enough
	// that the coordinator never sheds (shed commands would waste
	// producer CPU and punch sequence gaps into the dedup windows).

	client, err := core.New(core.Config{
		Self:   transport.ProcessID(100),
		Router: transport.NewRouter(net.Attach(100, netem.SiteLocal)),
		Coord:  svc,
	})
	if err != nil {
		return DeliveryRow{}, err
	}
	defer client.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < deliveryThreads; t++ {
		wg.Add(1)
		go func(clientID transport.ProcessID) {
			defer wg.Done()
			payload := make([]byte, deliveryValueSize)
			binary.LittleEndian.PutUint32(payload[:4], uint32(clientID))
			op := store.Op{Kind: store.OpInsert, Key: fmt.Sprintf("k%d", clientID), Value: payload}.Encode()
			seq := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				seq++
				if seq%64 == 0 {
					// Self-clocking: stay ~deliveryWindow commands
					// ahead of this thread's share of executions.
					for seq > replicas[0].ExecutedCount()/deliveryThreads+deliveryWindow {
						select {
						case <-stop:
							return
						case <-time.After(500 * time.Microsecond):
						}
					}
				}
				// The in-process transport passes slices by reference,
				// so each command needs its own encoding.
				cmd := smr.Command{Client: clientID, Seq: seq, Op: op}
				if err := client.Multicast(1, cmd.Encode()); err != nil {
					return
				}
			}
		}(transport.ProcessID(200 + t))
	}

	// Warm up, then measure delivered (executed) commands aggregated
	// over all replicas — atomic multicast's delivery throughput —
	// across the window.
	aggregate := func() (exec, deliv uint64) {
		for i, r := range replicas {
			exec += r.ExecutedCount()
			deliv += nodes[i].DeliveredCount()
		}
		return
	}
	time.Sleep(300 * time.Millisecond)
	startExec, startDeliv := aggregate()
	cpuBefore := cpuTime()
	start := time.Now()
	time.Sleep(o.Duration)
	elapsed := time.Since(start).Seconds()
	cpu := (cpuTime() - cpuBefore).Seconds()
	endExec, endDeliv := aggregate()
	execN := endExec - startExec
	delivN := endDeliv - startDeliv
	close(stop)
	wg.Wait()

	row := DeliveryRow{
		Mode:       mode,
		MsgsPerS:   float64(execN) / elapsed,
		MsgsPerCPU: float64(execN) / cpu,
		Mbps:       float64(execN) * deliveryValueSize * 8 / elapsed / 1e6,
		Executed:   execN,
		Delivered:  delivN,
	}
	if execN == 0 {
		return row, fmt.Errorf("bench: delivery %s executed nothing", mode)
	}
	return row, nil
}
