package bench

import (
	"sync"
	"time"

	"amcast/internal/baseline"
	"amcast/internal/cluster"
	"amcast/internal/core"
	"amcast/internal/dlog"
	"amcast/internal/metrics"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// Fig5Point is one x-position of Figure 5 for one system.
type Fig5Point struct {
	System  string // "dLog" or "Bookkeeper"
	Clients int
	OpsPerS float64
	MeanMs  float64
}

// Fig5Result aggregates the figure.
type Fig5Result struct {
	Points []Fig5Point
}

// fig5ClientSteps mirrors the paper's client-thread sweep (up to 200).
var fig5ClientSteps = []int{1, 5, 25, 50, 100, 200}

// Fig5 reproduces Figure 5: dLog vs the Bookkeeper model, 1 KB appends
// written synchronously to disk, throughput and latency vs client threads.
func Fig5(o Options) (Fig5Result, error) {
	o = o.withDefaults()
	o.header("Figure 5", "dLog vs Bookkeeper (1 KB appends, synchronous disk)")
	o.printf("%-12s %8s %12s %10s\n", "system", "clients", "tput(ops/s)", "mean(ms)")

	var res Fig5Result
	for _, clients := range fig5ClientSteps {
		if clients > o.Clients {
			break
		}
		p, err := fig5DLog(o, clients)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, p)
		o.printf("%-12s %8d %12.0f %10.2f\n", p.System, p.Clients, p.OpsPerS, p.MeanMs)
	}
	for _, clients := range fig5ClientSteps {
		if clients > o.Clients {
			break
		}
		p, err := fig5Bookkeeper(o, clients)
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, p)
		o.printf("%-12s %8d %12.0f %10.2f\n", p.System, p.Clients, p.OpsPerS, p.MeanMs)
	}
	return res, nil
}

// Fig5DLogPoint measures one dLog configuration (exported for the
// top-level Table 2 benchmark).
func Fig5DLogPoint(o Options, clients int) (Fig5Point, error) {
	return fig5DLog(o.withDefaults(), clients)
}

func fig5DLog(o Options, clients int) (Fig5Point, error) {
	d := cluster.NewDeployment(nil)
	defer d.Close()
	// Two rings, three servers; acceptor logs on synchronous SSDs, ring
	// batching packs 1 KB appends into 32 KB packets (Section 7.3).
	c, err := d.StartDLog(cluster.DLogOptions{
		Logs:    2,
		Servers: 3,
		Global:  true,
		Ring: core.RingOptions{
			RetryInterval: 300 * time.Millisecond,
			SkipEnabled:   true,
			Delta:         5 * time.Millisecond,
			Lambda:        9000,
			BatchBytes:    32 << 10,
			Window:        64,
		},
		NewAcceptorLog: func(transport.RingID, transport.ProcessID) (storage.Log, error) {
			return storage.NewSimDisk(storage.NewMemLog(), storage.SSDSpec(), true, o.Scale), nil
		},
	})
	if err != nil {
		return Fig5Point{}, err
	}
	meter := metrics.NewMeter()
	hist := metrics.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	payload := make([]byte, 1024)
	for t := 0; t < clients; t++ {
		dc, raw, err := c.NewClient()
		if err != nil {
			return Fig5Point{}, err
		}
		defer raw.Close()
		logID := dlog.LogID(t%2 + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if _, err := dc.Append(logID, payload); err != nil {
					continue
				}
				hist.Record(time.Since(start))
				meter.Add(1, 1024)
			}
		}()
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	ops, _ := meter.Rate()
	return Fig5Point{System: "dLog", Clients: clients, OpsPerS: ops, MeanMs: float64(hist.Mean()) / 1e6}, nil
}

func fig5Bookkeeper(o Options, clients int) (Fig5Point, error) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	b, err := baseline.StartBookLog(baseline.BookLogConfig{
		Net:           net,
		Ensemble:      3,
		FlushInterval: 20 * time.Millisecond,
		NewDisk: func() storage.Log {
			return storage.NewSimDisk(storage.NewMemLog(), storage.SSDSpec(), true, o.Scale)
		},
	})
	if err != nil {
		return Fig5Point{}, err
	}
	defer b.Stop()

	meter := metrics.NewMeter()
	hist := metrics.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	payload := make([]byte, 1024)
	for t := 0; t < clients; t++ {
		bc := b.NewClient(transport.ProcessID(60000 + t))
		defer bc.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if _, err := bc.Append(payload); err != nil {
					continue
				}
				hist.Record(time.Since(start))
				meter.Add(1, 1024)
			}
		}()
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	ops, _ := meter.Rate()
	return Fig5Point{System: "Bookkeeper", Clients: clients, OpsPerS: ops, MeanMs: float64(hist.Mean()) / 1e6}, nil
}
