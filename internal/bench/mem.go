package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/bufpool"
	"amcast/internal/core"
	"amcast/internal/obs"
	"amcast/internal/transport"
)

// MemRow is one workload's memory profile: how many heap allocations and
// bytes each delivered message cost, and what the collector did about it.
type MemRow struct {
	Workload string  `json:"workload"`
	MsgsPerS float64 `json:"msgs_per_s"`
	// AllocsPerMsg is Δruntime.MemStats.Mallocs over the measurement
	// window divided by messages delivered in it — process-wide, so it
	// charges the sender, decoder and delivery path together.
	AllocsPerMsg float64 `json:"allocs_per_msg"`
	BytesPerMsg  float64 `json:"bytes_per_msg"`
	// GC pauses during the window (stop-the-world phases only).
	GCCycles     uint32  `json:"gc_cycles"`
	GCPauseP50Us float64 `json:"gc_pause_p50_us"`
	GCPauseP99Us float64 `json:"gc_pause_p99_us"`
	HeapInuseMB  float64 `json:"heap_inuse_mb"`
	Delivered    uint64  `json:"delivered"`
}

// MemResult aggregates the memory benchmark: a pooled/unpooled A/B over
// the TCP read path (the only path with a true pre-pool toggle), plus
// pool-engaged rows for the fig3-style delivery pipeline and the EC2 WAN
// topology, and a snapshot of the telemetry registry that watches it all.
type MemResult struct {
	DurationS float64 `json:"duration_s"`
	// TCP loopback, raw ring-kind frames: pooled read path vs the
	// pre-pool per-frame-allocation baseline (SetPooling(false)).
	TCPPooled   MemRow `json:"tcp_pooled"`
	TCPUnpooled MemRow `json:"tcp_unpooled"`
	// AllocReductionPct is the headline: percent of per-message heap
	// allocations the pooled read path eliminates.
	AllocReductionPct float64 `json:"alloc_reduction_pct"`
	// GCPauseP99DeltaUs is unpooled minus pooled p99 pause (positive =
	// the pool reduced tail pauses).
	GCPauseP99DeltaUs float64 `json:"gc_pause_p99_delta_us"`
	// ThroughputRatio is pooled over unpooled msgs/s on the TCP path
	// (the pool must not cost throughput).
	ThroughputRatio float64 `json:"throughput_ratio"`
	// Fig3 runs the same fig3-style batched workload as the -delivery
	// benchmark with the pool engaged on the ring hot path (WAL records,
	// packed batches, accepted-map payloads); its msgs_per_s is directly
	// comparable to BENCH_delivery.json's batched row.
	Fig3 MemRow `json:"fig3"`
	// WAN profiles the same stack across the emulated EC2 4-region
	// topology, where WAN RTTs pace the pipeline.
	WAN MemRow `json:"wan"`
	// Pool is the buffer pool's cumulative view at the end of the run.
	Pool bufpool.Stats `json:"pool"`
	// Registry snapshots the GC/heap/pool telemetry exactly as a scraper
	// would see it on /metrics.
	Registry []obs.Sample `json:"registry"`
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r MemResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

// memValueSize matches the delivery benchmark's command payload.
const memValueSize = 160

// MemBench measures GC pressure on the delivery path. The headline is
// the TCP read-side A/B: the pooled loop (many frames per syscall into a
// refcounted block, zero per-frame allocations) against the pre-pool
// baseline (one heap buffer per frame), same frames, same machine, same
// process. The fig3-style and WAN rows profile the full pipeline with
// the pool engaged.
func MemBench(o Options) (MemResult, error) {
	o = o.withDefaults()
	o.header("Memory", "allocs/msg and GC pauses: pooled vs pre-pool read path, fig3-style and WAN pipelines")
	o.printf("%-14s %14s %12s %12s %12s %12s\n", "workload", "msgs/s", "allocs/msg", "B/msg", "gc p99 us", "heap MB")

	res := MemResult{DurationS: o.Duration.Seconds()}

	row, err := memTCPRun(o, true)
	if err != nil {
		return res, err
	}
	res.TCPPooled = row
	o.printRow(row)

	if row, err = memTCPRun(o, false); err != nil {
		return res, err
	}
	res.TCPUnpooled = row
	o.printRow(row)

	if res.TCPUnpooled.AllocsPerMsg > 0 {
		res.AllocReductionPct = 100 * (1 - res.TCPPooled.AllocsPerMsg/res.TCPUnpooled.AllocsPerMsg)
	}
	res.GCPauseP99DeltaUs = res.TCPUnpooled.GCPauseP99Us - res.TCPPooled.GCPauseP99Us
	if res.TCPUnpooled.MsgsPerS > 0 {
		res.ThroughputRatio = res.TCPPooled.MsgsPerS / res.TCPUnpooled.MsgsPerS
	}
	o.printf("alloc reduction: %.1f%%   gc p99 delta: %.0f us   throughput: %.2fx\n",
		res.AllocReductionPct, res.GCPauseP99DeltaUs, res.ThroughputRatio)

	if res.Fig3, err = memPipelineRun(o, "fig3-batched", func() (DeliveryRow, error) {
		return deliveryRun(o, DeliveryBatched)
	}); err != nil {
		return res, err
	}
	o.printRow(res.Fig3)

	if res.WAN, err = memWANRun(o); err != nil {
		return res, err
	}
	o.printRow(res.WAN)

	// Telemetry snapshot: the same series a live deployment would expose.
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	obs.RegisterBufPool(reg)
	res.Pool = bufpool.Snapshot()
	res.Registry = reg.Samples()
	return res, nil
}

func (o Options) printRow(r MemRow) {
	o.printf("%-14s %14.0f %12.2f %12.0f %12.1f %12.1f\n",
		r.Workload, r.MsgsPerS, r.AllocsPerMsg, r.BytesPerMsg, r.GCPauseP99Us, r.HeapInuseMB)
}

// memTCPRun floods ring-kind frames across a real TCP loopback
// connection and profiles the receiver's read path. The sender coalesces
// bursts with SendBatch (its per-burst encode cost is identical in both
// modes), the receiver drains Recv honoring the pooled-ownership
// contract.
func memTCPRun(o Options, pooled bool) (MemRow, error) {
	name := "tcp-pooled"
	if !pooled {
		name = "tcp-unpooled"
	}
	recv, err := transport.ListenTCP(2, "127.0.0.1:0")
	if err != nil {
		return MemRow{}, err
	}
	recv.SetPooling(pooled)
	send, err := transport.ListenTCP(1, "127.0.0.1:0")
	if err != nil {
		_ = recv.Close()
		return MemRow{}, err
	}
	send.SetPeer(2, recv.Addr())

	var delivered atomic.Uint64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range recv.Recv() {
			// The consumer side of the ownership contract: drop the
			// block/payload refs once the message is consumed.
			m.ReleaseRefs()
			delivered.Add(1)
		}
	}()

	// Sender: bursts of Phase2-kind messages with fixed payloads, the
	// shape a follower's read loop sees at steady state. The burst slice
	// and payload are reused so the sender's own allocation cost stays
	// flat across modes. Sends are window-limited against the consumer —
	// the shape every real ring gives this path (core.RingOptions.Window)
	// — so the receive queue stays bounded and the measurement reflects
	// steady state rather than unbounded overload backlog growth.
	const burst = 64
	const window = 1024
	payload := make([]byte, memValueSize)
	msgs := make([]transport.Message, burst)
	for i := range msgs {
		msgs[i] = transport.Message{
			Kind:  transport.KindPhase2,
			To:    2,
			Ring:  1,
			Value: transport.Value{ID: uint64(i + 1), Data: payload},
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for seq-delivered.Load() > window {
				select {
				case <-stop:
					return
				default:
					time.Sleep(20 * time.Microsecond)
				}
			}
			for i := range msgs {
				seq++
				msgs[i].Seq = seq
				msgs[i].Instance = seq
			}
			if err := send.SendBatch(msgs); err != nil {
				return
			}
		}
	}()

	// Warm up (pool free lists fill, TCP windows open), then measure.
	time.Sleep(200 * time.Millisecond)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	startN := delivered.Load()
	start := time.Now()
	time.Sleep(o.Duration)
	elapsed := time.Since(start).Seconds()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	n := delivered.Load() - startN

	close(stop)
	wg.Wait()
	_ = send.Close()
	_ = recv.Close()
	<-done

	if n == 0 {
		return MemRow{}, fmt.Errorf("bench: mem %s delivered nothing", name)
	}
	return memRowFrom(name, n, elapsed, &before, &after), nil
}

// memPipelineRun profiles one full-pipeline workload run: MemStats are
// snapshotted around the run, so setup and teardown allocations are
// charged to it — a deliberate overestimate that keeps the number honest.
// No GC is forced first: the malloc counters are monotonic regardless,
// and resetting the collector to a small live set would hand the run
// more GC cycles than the standalone delivery benchmark it is compared
// against (BENCH_delivery.json's batched row) pays.
func memPipelineRun(o Options, name string, run func() (DeliveryRow, error)) (MemRow, error) {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	row, err := run()
	elapsed := time.Since(start).Seconds()
	if err != nil {
		return MemRow{}, err
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	r := memRowFrom(name, row.Executed, elapsed, &before, &after)
	r.MsgsPerS = row.MsgsPerS // the run's own measurement window, not ours
	return r, nil
}

// memWANRun profiles the delivery pipeline across the emulated EC2
// 4-region topology: WAN RTTs pace proposals, so this is the GC profile
// of a geo-replicated steady state rather than a saturated loopback.
func memWANRun(o Options) (MemRow, error) {
	return memPipelineRun(o, "wan-ec2", func() (DeliveryRow, error) {
		ringOpts := core.RingOptions{
			RetryInterval: 100 * time.Millisecond,
			Window:        256,
			DeliverBuffer: 4096,
		}
		d, err := newFlowDeployment(o, []transport.RingID{1}, ringOpts, func(int) core.BatchHandler {
			return func([]core.Delivery) {}
		})
		if err != nil {
			return DeliveryRow{}, err
		}
		defer d.close()

		stop := make(chan struct{})
		var wg sync.WaitGroup
		flowPump(d.nodes[0], 1, 4, stop, &wg)
		time.Sleep(200 * time.Millisecond)
		start := d.nodes[1].DeliveredCount()
		t0 := time.Now()
		time.Sleep(o.Duration)
		elapsed := time.Since(t0).Seconds()
		n := d.nodes[1].DeliveredCount() - start
		close(stop)
		wg.Wait()
		if n == 0 {
			return DeliveryRow{}, fmt.Errorf("bench: mem wan delivered nothing")
		}
		return DeliveryRow{Executed: n, MsgsPerS: float64(n) / elapsed}, nil
	})
}

// memRowFrom folds two MemStats snapshots into a row.
func memRowFrom(name string, n uint64, elapsed float64, before, after *runtime.MemStats) MemRow {
	pauses := pausesBetween(before, after)
	return MemRow{
		Workload:     name,
		MsgsPerS:     float64(n) / elapsed,
		AllocsPerMsg: float64(after.Mallocs-before.Mallocs) / float64(n),
		BytesPerMsg:  float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		GCCycles:     after.NumGC - before.NumGC,
		GCPauseP50Us: quantileUs(pauses, 0.50),
		GCPauseP99Us: quantileUs(pauses, 0.99),
		HeapInuseMB:  float64(after.HeapInuse) / (1 << 20),
		Delivered:    n,
	}
}

// pausesBetween extracts the GC pauses (ns) that happened between two
// snapshots from the PauseNs circular buffer (which keeps the last 256).
func pausesBetween(before, after *runtime.MemStats) []uint64 {
	n := int(after.NumGC - before.NumGC)
	if n > len(after.PauseNs) {
		n = len(after.PauseNs)
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, after.PauseNs[(int(after.NumGC)-1-i+len(after.PauseNs))%len(after.PauseNs)])
	}
	return out
}

func quantileUs(pauses []uint64, q float64) float64 {
	if len(pauses) == 0 {
		return 0
	}
	s := append([]uint64(nil), pauses...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[int(q*float64(len(s)-1))]) / 1e3
}
