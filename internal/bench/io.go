package bench

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// IORow is one acceptor-log I/O configuration's measurement.
type IORow struct {
	Mode string `json:"mode"`
	// AcceptsPerS is durable vote records per wall-clock second.
	AcceptsPerS float64 `json:"accepts_per_s"`
	Accepts     uint64  `json:"accepts"`
	// Fsyncs is write barriers issued over the window; per-put mode pays
	// one per accept, group commit one per batch.
	Fsyncs          uint64  `json:"fsyncs"`
	FsyncsPerAccept float64 `json:"fsyncs_per_accept"`
	// MeanBatch is the average records per commit (1 for per-put).
	MeanBatch float64 `json:"mean_batch"`
}

// IORingRow corroborates the microbenchmark on the real acceptor hot
// path: a ring over FileWAL acceptors with the staged group-commit
// pipeline, reporting the coordinator's vote-log rate and batch shapes.
type IORingRow struct {
	AcceptsPerS     float64 `json:"accepts_per_s"`
	Accepts         uint64  `json:"accepts"`
	Fsyncs          uint64  `json:"fsyncs"`
	FsyncsPerAccept float64 `json:"fsyncs_per_accept"`
	// MeanWALBatch is records per Log.PutBatch staged by the run loop.
	MeanWALBatch float64 `json:"mean_wal_batch"`
	// MeanSendBatch is messages per coalesced transport flush.
	MeanSendBatch float64 `json:"mean_send_batch"`
}

// IOResult aggregates the acceptor I/O comparison (cmd/bench -io).
type IOResult struct {
	Workload  string  `json:"workload"`
	DurationS float64 `json:"duration_s"`
	// PerPut commits every vote with its own flush + fsync — the seed's
	// acceptor behaviour under SyncEveryPut.
	PerPut IORow `json:"per_put_fsync"`
	// GroupCommit commits one drained burst per flush + fsync.
	GroupCommit IORow `json:"group_commit"`
	// Speedup is group-commit accepts/s over per-put accepts/s.
	Speedup float64 `json:"speedup"`
	// Ring is the end-to-end corroboration over a live ring (group
	// commit only; the per-message path no longer exists in-tree).
	Ring *IORingRow `json:"ring_group_commit,omitempty"`
}

// ioBurst is the group-commit batch size, matching the ring run loop's
// drain bound (one commit covers at most 1+128 handled messages).
const ioBurst = 128

// ioRecordBytes approximates one Phase 2 vote record for a small command:
// accept framing plus a ~200 B payload.
const ioRecordBytes = 220

// IOBench measures the acceptor vote log under SyncEveryPut — the paper's
// synchronous disk mode (Section 6.4 / Figure 7 durability) — comparing
// the seed's per-put fsync against group commit on the same host and
// filesystem, then corroborates on a live ring with FileWAL acceptors.
func IOBench(o Options) (IOResult, error) {
	o = o.withDefaults()
	o.header("Acceptor I/O", "per-put fsync vs group commit, SyncEveryPut vote log")
	o.printf("%-14s %14s %10s %12s %10s\n", "mode", "accepts/s", "fsyncs", "fsync/accept", "batch")

	res := IOResult{
		Workload:  fmt.Sprintf("SyncEveryPut FileWAL, %d B vote records; group commit in bursts of %d (the run-loop drain bound); ring row: 2 FileWAL acceptors, open-loop proposers, packing off", ioRecordBytes, ioBurst),
		DurationS: o.Duration.Seconds(),
	}
	perPut, err := ioWALRun(o, false)
	if err != nil {
		return res, err
	}
	res.PerPut = perPut
	groupCommit, err := ioWALRun(o, true)
	if err != nil {
		return res, err
	}
	res.GroupCommit = groupCommit
	for _, row := range []IORow{res.PerPut, res.GroupCommit} {
		o.printf("%-14s %14.0f %10d %12.3f %10.1f\n",
			row.Mode, row.AcceptsPerS, row.Fsyncs, row.FsyncsPerAccept, row.MeanBatch)
	}
	if res.PerPut.AcceptsPerS > 0 {
		res.Speedup = res.GroupCommit.AcceptsPerS / res.PerPut.AcceptsPerS
	}
	o.printf("speedup: %.2fx\n", res.Speedup)

	ring, err := ioRingRun(o)
	if err != nil {
		return res, err
	}
	res.Ring = &ring
	o.printf("ring (group commit): %.0f accepts/s, %.3f fsync/accept, wal batch %.1f, send batch %.1f\n",
		ring.AcceptsPerS, ring.FsyncsPerAccept, ring.MeanWALBatch, ring.MeanSendBatch)
	return res, nil
}

// WriteJSON writes the result snapshot (for the CI trajectory).
func (r IOResult) WriteJSON(path string) error {
	return writeResultJSON(path, r)
}

// ioWALRun drives one FileWAL for o.Duration, per-put or batched.
func ioWALRun(o Options, group bool) (IORow, error) {
	dir, err := os.MkdirTemp("", "amcast-iobench-*")
	if err != nil {
		return IORow{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	wal, err := storage.OpenWAL(dir, storage.WALOptions{Mode: storage.SyncEveryPut})
	if err != nil {
		return IORow{}, err
	}
	defer func() { _ = wal.Close() }()

	rec := make([]byte, ioRecordBytes)
	for i := range rec {
		rec[i] = byte(i)
	}
	row := IORow{Mode: "per-put-fsync"}
	if group {
		row.Mode = "group-commit"
	}
	var (
		inst     uint64
		accepts  uint64
		deadline = time.Now().Add(o.Duration)
	)
	start := time.Now()
	if group {
		batch := make([]storage.Record, ioBurst)
		for i := range batch {
			batch[i].Data = make([]byte, ioRecordBytes)
			copy(batch[i].Data, rec)
		}
		for time.Now().Before(deadline) {
			for i := range batch {
				inst++
				batch[i].Instance = inst
				binary.LittleEndian.PutUint64(batch[i].Data[:8], inst)
			}
			if err := wal.PutBatch(batch); err != nil {
				return row, err
			}
			accepts += uint64(len(batch))
		}
	} else {
		for time.Now().Before(deadline) {
			for i := 0; i < 32; i++ {
				inst++
				binary.LittleEndian.PutUint64(rec[:8], inst)
				if err := wal.Put(inst, rec); err != nil {
					return row, err
				}
				accepts++
			}
		}
	}
	elapsed := time.Since(start).Seconds()

	row.Accepts = accepts
	row.AcceptsPerS = float64(accepts) / elapsed
	row.Fsyncs = wal.Fsyncs()
	if accepts > 0 {
		row.FsyncsPerAccept = float64(row.Fsyncs) / float64(accepts)
	}
	row.MeanBatch = 1
	if group {
		row.MeanBatch = wal.BatchGauge().Mean()
	}
	if accepts == 0 {
		return row, fmt.Errorf("bench: io %s wrote nothing", row.Mode)
	}
	return row, nil
}

// ioRingRun measures the live acceptor hot path: a two-acceptor ring whose
// votes land in SyncEveryPut FileWALs through the run loop's staged group
// commit, driven by open-loop proposers with message packing off (as the
// paper's synchronous-disk experiments run).
func ioRingRun(o Options) (IORingRow, error) {
	dir, err := os.MkdirTemp("", "amcast-ioring-*")
	if err != nil {
		return IORingRow{}, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	members := []coord.Member{
		{ID: 1, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
		{ID: 2, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
	}
	if err := svc.CreateRing(1, members); err != nil {
		return IORingRow{}, err
	}

	// Capture the coordinator's WAL so fsyncs can be read directly.
	var mu sync.Mutex
	wals := make(map[transport.ProcessID]*storage.FileWAL)
	factory := cluster.FileWALFactory(dir, storage.WALOptions{Mode: storage.SyncEveryPut})
	nodes := make([]*core.Node, 0, 2)
	for id := transport.ProcessID(1); id <= 2; id++ {
		self := id
		router := transport.NewRouter(net.Attach(self, netem.SiteLocal))
		node, err := core.New(core.Config{
			Self:   self,
			Router: router,
			Coord:  svc,
			Ring:   core.RingOptions{RetryInterval: 100 * time.Millisecond, Window: 256},
			NewLog: func(ring transport.RingID) (storage.Log, error) {
				log, err := factory(ring, self)
				if err != nil {
					return nil, err
				}
				mu.Lock()
				wals[self] = log.(*storage.FileWAL)
				mu.Unlock()
				return log, nil
			},
		})
		if err != nil {
			return IORingRow{}, err
		}
		defer node.Stop()
		if err := node.Join(1); err != nil {
			return IORingRow{}, err
		}
		// Drain deliveries so backpressure never stalls the ring.
		if err := node.SubscribeBatch(func([]core.Delivery) {}, 1); err != nil {
			return IORingRow{}, err
		}
		nodes = append(nodes, node)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for t := 0; t < 4; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			payload := make([]byte, ioRecordBytes-32)
			binary.LittleEndian.PutUint32(payload[:4], uint32(t))
			sent := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sent++
				if sent%64 == 0 {
					// Self-clock against deliveries so the coordinator
					// never sheds.
					for sent > nodes[0].DeliveredCount()/4+2048 {
						select {
						case <-stop:
							return
						case <-time.After(500 * time.Microsecond):
						}
					}
				}
				if err := nodes[t%2].Multicast(1, payload); err != nil {
					return
				}
			}
		}(t)
	}

	time.Sleep(300 * time.Millisecond)
	mu.Lock()
	wal := wals[1]
	mu.Unlock()
	if wal == nil {
		close(stop)
		wg.Wait()
		return IORingRow{}, fmt.Errorf("bench: coordinator WAL not opened")
	}
	walGauge, sendGauge := nodes[0].RingIOGauges(1)
	startBatches, startItems, _ := walGauge.Snapshot()
	startSendBatches, startSendItems, _ := sendGauge.Snapshot()
	startFsyncs := wal.Fsyncs()
	start := time.Now()
	time.Sleep(o.Duration)
	elapsed := time.Since(start).Seconds()
	endBatches, endItems, _ := walGauge.Snapshot()
	endSendBatches, endSendItems, _ := sendGauge.Snapshot()
	endFsyncs := wal.Fsyncs()
	close(stop)
	wg.Wait()

	row := IORingRow{
		Accepts:     endItems - startItems,
		Fsyncs:      endFsyncs - startFsyncs,
		AcceptsPerS: float64(endItems-startItems) / elapsed,
	}
	if row.Accepts > 0 {
		row.FsyncsPerAccept = float64(row.Fsyncs) / float64(row.Accepts)
	}
	if b := endBatches - startBatches; b > 0 {
		row.MeanWALBatch = float64(endItems-startItems) / float64(b)
	}
	if b := endSendBatches - startSendBatches; b > 0 {
		row.MeanSendBatch = float64(endSendItems-startSendItems) / float64(b)
	}
	if row.Accepts == 0 {
		return row, fmt.Errorf("bench: io ring accepted nothing")
	}
	return row, nil
}
