package bench

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"amcast/internal/cluster"
	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/store"
	"amcast/internal/transport"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Config  string
	OpsPerS float64
	MeanMs  float64
}

// AblationResult aggregates one study.
type AblationResult struct {
	Name string
	Rows []AblationRow
}

// twoGroupFixture builds a 3-process deployment participating in two rings
// and returns a closed-loop measurement of multicasting to both groups.
func twoGroupMeasure(o Options, m int, skip bool, batch int, loadRatio int) (AblationRow, error) {
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	for _, ring := range []transport.RingID{1, 2} {
		var members []coord.Member
		for i := 1; i <= 3; i++ {
			members = append(members, coord.Member{
				ID:    transport.ProcessID(i),
				Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner,
			})
		}
		if err := svc.CreateRing(ring, members); err != nil {
			return AblationRow{}, err
		}
	}

	type waiter struct {
		mu sync.Mutex
		m  map[uint64]chan struct{}
	}
	w := &waiter{m: make(map[uint64]chan struct{})}
	hist := metrics.NewHistogram()
	meter := metrics.NewMeter()

	var nodes []*core.Node
	for i := 1; i <= 3; i++ {
		first := i == 1
		router := transport.NewRouter(net.Attach(transport.ProcessID(i), "h"))
		node, err := core.New(core.Config{
			Self:   transport.ProcessID(i),
			Router: router,
			Coord:  svc,
			M:      m,
			Ring: core.RingOptions{
				RetryInterval: 100 * time.Millisecond,
				SkipEnabled:   skip,
				Delta:         5 * time.Millisecond,
				Lambda:        5000,
				BatchBytes:    batch,
				Window:        128,
			},
		})
		if err != nil {
			return AblationRow{}, err
		}
		if err := node.Join(1); err != nil {
			return AblationRow{}, err
		}
		if err := node.Join(2); err != nil {
			return AblationRow{}, err
		}
		handler := func(ds []core.Delivery) {
			var count, bytes uint64
			now := time.Now().UnixNano()
			for _, d := range ds {
				if len(d.Data) < 16 {
					continue
				}
				count++
				bytes += uint64(len(d.Data))
				key := binary.LittleEndian.Uint64(d.Data[:8])
				if first {
					sentAt := int64(binary.LittleEndian.Uint64(d.Data[8:16]))
					hist.Record(time.Duration(now - sentAt))
				}
				w.mu.Lock()
				ch := w.m[key]
				w.mu.Unlock()
				if ch != nil {
					select {
					case ch <- struct{}{}:
					default:
					}
				}
			}
			if first && count > 0 {
				meter.Add(count, bytes)
			}
		}
		if err := node.SubscribeBatch(handler, 1, 2); err != nil {
			return AblationRow{}, err
		}
		nodes = append(nodes, node)
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const threads = 8
	for t := 0; t < threads; t++ {
		// loadRatio:1 imbalance between groups 1 and 2.
		group := transport.RingID(1)
		if loadRatio > 0 && t%(loadRatio+1) == loadRatio {
			group = 2
		}
		key := uint64(777)<<32 | uint64(t)
		ch := make(chan struct{}, 1)
		w.mu.Lock()
		w.m[key] = ch
		w.mu.Unlock()
		wg.Add(1)
		go func(group transport.RingID) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Fresh payload per send: the in-process transport passes
				// slices by reference, so reusing one buffer would race
				// with acceptors copying it.
				payload := make([]byte, 512)
				binary.LittleEndian.PutUint64(payload[:8], key)
				binary.LittleEndian.PutUint64(payload[8:16], uint64(time.Now().UnixNano()))
				if err := nodes[0].Multicast(group, payload); err != nil {
					return
				}
				select {
				case <-ch:
				case <-stop:
					return
				case <-time.After(5 * time.Second):
				}
			}
		}(group)
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	ops, _ := meter.Rate()
	return AblationRow{OpsPerS: ops, MeanMs: float64(hist.Mean()) / 1e6}, nil
}

// AblationMergeM studies the deterministic-merge quota M (the paper fixes
// M=1; larger M trades cross-group fairness for fewer turn switches).
func AblationMergeM(o Options) (AblationResult, error) {
	o = o.withDefaults()
	o.header("Ablation", "deterministic merge quota M (2 groups, balanced load)")
	o.printf("%8s %12s %10s\n", "M", "tput(ops/s)", "mean(ms)")
	res := AblationResult{Name: "merge-M"}
	for _, m := range []int{1, 4, 16, 64} {
		row, err := twoGroupMeasure(o, m, true, 0, 1)
		if err != nil {
			return res, err
		}
		row.Config = fmt.Sprintf("M=%d", m)
		res.Rows = append(res.Rows, row)
		o.printf("%8d %12.0f %10.2f\n", m, row.OpsPerS, row.MeanMs)
	}
	return res, nil
}

// AblationSkip studies rate leveling under a 7:1 group load imbalance:
// without skips the merge stalls at the slow group's pace.
func AblationSkip(o Options) (AblationResult, error) {
	o = o.withDefaults()
	o.header("Ablation", "rate leveling (7:1 group load imbalance)")
	o.printf("%14s %12s %10s\n", "skips", "tput(ops/s)", "mean(ms)")
	res := AblationResult{Name: "rate-leveling"}
	for _, skip := range []bool{true, false} {
		row, err := twoGroupMeasure(o, 1, skip, 0, 7)
		if err != nil {
			return res, err
		}
		row.Config = fmt.Sprintf("skip=%v", skip)
		res.Rows = append(res.Rows, row)
		o.printf("%14v %12.0f %10.2f\n", skip, row.OpsPerS, row.MeanMs)
	}
	return res, nil
}

// AblationBatch studies coordinator message packing.
func AblationBatch(o Options) (AblationResult, error) {
	o = o.withDefaults()
	o.header("Ablation", "message packing (32 KB batches vs none)")
	o.printf("%14s %12s %10s\n", "batch", "tput(ops/s)", "mean(ms)")
	res := AblationResult{Name: "batching"}
	for _, batch := range []int{0, 32 << 10} {
		row, err := twoGroupMeasure(o, 1, true, batch, 1)
		if err != nil {
			return res, err
		}
		row.Config = fmt.Sprintf("batch=%d", batch)
		res.Rows = append(res.Rows, row)
		o.printf("%14d %12.0f %10.2f\n", batch, row.OpsPerS, row.MeanMs)
	}
	return res, nil
}

// AblationGlobalRing generalizes Figure 4's two MRP-Store configurations:
// the throughput cost of a global ring as partitions scale.
func AblationGlobalRing(o Options) (AblationResult, error) {
	o = o.withDefaults()
	o.header("Ablation", "global ring cost vs independent rings (single-key updates)")
	o.printf("%24s %12s %10s\n", "config", "tput(ops/s)", "mean(ms)")
	res := AblationResult{Name: "global-ring"}
	for _, partitions := range []int{1, 2, 4} {
		for _, global := range []bool{false, true} {
			row, err := globalRingMeasure(o, partitions, global)
			if err != nil {
				return res, err
			}
			row.Config = fmt.Sprintf("P=%d global=%v", partitions, global)
			res.Rows = append(res.Rows, row)
			o.printf("%24s %12.0f %10.2f\n", row.Config, row.OpsPerS, row.MeanMs)
		}
	}
	return res, nil
}

func globalRingMeasure(o Options, partitions int, global bool) (AblationRow, error) {
	d := cluster.NewDeployment(nil)
	defer d.Close()
	c, err := d.StartStore(cluster.StoreOptions{
		Partitions: partitions,
		Replicas:   3,
		Global:     global,
		Kind:       store.HashPartitioned,
		Ring: core.RingOptions{
			RetryInterval: 100 * time.Millisecond,
			SkipEnabled:   true,
			Delta:         5 * time.Millisecond,
			Lambda:        5000,
			BatchBytes:    32 << 10,
			Window:        128,
		},
	})
	if err != nil {
		return AblationRow{}, err
	}
	time.Sleep(100 * time.Millisecond)

	meter := metrics.NewMeter()
	hist := metrics.NewHistogram()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	payload := make([]byte, 1024)
	clients := min(o.Clients, 4*partitions)
	for t := 0; t < clients; t++ {
		sc, raw, err := c.NewClient("local")
		if err != nil {
			return AblationRow{}, err
		}
		defer raw.Close()
		key := fmt.Sprintf("abl-key-%d", t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sc.Insert(key, payload); err != nil {
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				if err := sc.Update(key, payload); err != nil {
					continue
				}
				hist.Record(time.Since(start))
				meter.Add(1, 1024)
			}
		}()
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	ops, _ := meter.Rate()
	return AblationRow{OpsPerS: ops, MeanMs: float64(hist.Mean()) / 1e6}, nil
}
