package bench

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/netem"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// Fig3Row is one (value size, storage mode) cell of Figure 3.
type Fig3Row struct {
	Mode       storage.Mode
	ValueSize  int
	Mbps       float64
	MeanMs     float64
	P99Ms      float64
	CPUPercent float64
	CDF        []metrics.CDFPoint // populated for the 32 KB column
}

// Fig3Result aggregates the figure.
type Fig3Result struct {
	Rows []Fig3Row
}

// fig3Sizes are the paper's request sizes (512 B .. 32 KB).
var fig3Sizes = []int{512, 2048, 8192, 32768}

// Fig3 reproduces Figure 3: a single multicast group with three processes
// (all proposers, acceptors and learners; one coordinator), 10 proposer
// threads, batching disabled, across five storage modes.
func Fig3(o Options) (Fig3Result, error) {
	o = o.withDefaults()
	o.header("Figure 3", "Multi-Ring Paxos baseline (1 ring, 3 processes, 10 proposer threads, no batching)")
	o.printf("%-18s %8s %12s %10s %10s %8s\n", "mode", "size", "tput(Mbps)", "mean(ms)", "p99(ms)", "cpu(%)")

	var res Fig3Result
	for _, mode := range storage.Modes {
		for _, size := range fig3Sizes {
			row, err := fig3Run(o, mode, size)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, row)
			o.printf("%-18s %8d %12.2f %10.3f %10.3f %8.1f\n",
				mode, size, row.Mbps, row.MeanMs, row.P99Ms, row.CPUPercent)
		}
	}
	// Latency CDF for 32 KB values (bottom-right graph).
	o.printf("\nLatency CDF (32 KB values):\n")
	for _, row := range res.Rows {
		if row.ValueSize != 32768 || len(row.CDF) == 0 {
			continue
		}
		o.printf("  %-18s:", row.Mode)
		for _, p := range row.CDF {
			o.printf(" %.0f%%@%.1fms", p.Fraction*100, float64(p.Latency)/1e6)
		}
		o.printf("\n")
	}
	return res, nil
}

// fig3Run measures one configuration.
func fig3Run(o Options, mode storage.Mode, size int) (Fig3Row, error) {
	net := transport.NewNetwork(netem.LANTopology("h1", "h2", "h3"))
	defer net.Close()
	svc := coord.NewService()
	members := []coord.Member{
		{ID: 1, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
		{ID: 2, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
		{ID: 3, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner},
	}
	if err := svc.CreateRing(1, members); err != nil {
		return Fig3Row{}, err
	}

	hist := metrics.NewHistogram()
	meter := metrics.NewMeter()

	// Per-node waiter registries for the closed-loop proposer threads.
	type waiters struct {
		mu sync.Mutex
		m  map[uint64]chan struct{}
	}
	nodes := make([]*core.Node, 3)
	nodeWaiters := make([]*waiters, 3)
	sites := []netem.Site{"h1", "h2", "h3"}
	for i := 0; i < 3; i++ {
		i := i
		w := &waiters{m: make(map[uint64]chan struct{})}
		nodeWaiters[i] = w
		router := transport.NewRouter(net.Attach(transport.ProcessID(i+1), sites[i]))
		node, err := core.New(core.Config{
			Self:   transport.ProcessID(i + 1),
			Router: router,
			Coord:  svc,
			NewLog: func(transport.RingID) (storage.Log, error) { return storage.NewModeLog(mode, o.Scale), nil },
			Ring:   core.RingOptions{RetryInterval: 100 * time.Millisecond, Window: 64},
		})
		if err != nil {
			return Fig3Row{}, err
		}
		if err := node.Join(1); err != nil {
			return Fig3Row{}, err
		}
		handler := func(ds []core.Delivery) {
			var count, bytes uint64
			now := time.Now().UnixNano()
			for _, d := range ds {
				if len(d.Data) < 16 {
					continue
				}
				count++
				bytes += uint64(len(d.Data))
				// The key's high 32 bits (bytes 4..8 little-endian)
				// name the originating node.
				origin := binary.LittleEndian.Uint32(d.Data[4:8])
				if int(origin) != i+1 {
					continue
				}
				sentAt := int64(binary.LittleEndian.Uint64(d.Data[8:16]))
				hist.Record(time.Duration(now - sentAt))
				key := binary.LittleEndian.Uint64(d.Data[:8]) // origin|threadSeq
				w.mu.Lock()
				ch := w.m[key]
				w.mu.Unlock()
				if ch != nil {
					select {
					case ch <- struct{}{}:
					default:
					}
				}
			}
			if i == 0 && count > 0 {
				// Count throughput at one learner only (the stream
				// is identical at all three), once per batch.
				meter.Add(count, bytes)
			}
		}
		if err := node.SubscribeBatch(handler, 1); err != nil {
			return Fig3Row{}, err
		}
		nodes[i] = node
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	// 10 closed-loop proposer threads spread over the 3 processes.
	const threads = 10
	stop := make(chan struct{})
	var wg sync.WaitGroup
	cpuBefore := cpuTime()
	start := time.Now()
	meter.Reset()
	for t := 0; t < threads; t++ {
		nodeIdx := t % 3
		node := nodes[nodeIdx]
		w := nodeWaiters[nodeIdx]
		key := uint64(nodeIdx+1)<<32 | uint64(t)
		ch := make(chan struct{}, 1)
		w.mu.Lock()
		w.m[key] = ch
		w.mu.Unlock()
		wg.Add(1)
		go func(nodeID uint32) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Fresh payload per send: the in-process transport passes
				// slices by reference, so reusing one buffer would race
				// with acceptors copying it.
				payload := make([]byte, size)
				binary.LittleEndian.PutUint64(payload[:8], key)
				binary.LittleEndian.PutUint64(payload[8:16], uint64(time.Now().UnixNano()))
				if err := node.Multicast(1, payload); err != nil {
					return
				}
				select {
				case <-ch:
				case <-stop:
					return
				case <-time.After(10 * time.Second):
					// Lost proposal under overload: retry.
				}
			}
		}(uint32(nodeIdx + 1))
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	cpu := cpuTime() - cpuBefore

	_, mbps := meter.Rate()
	row := Fig3Row{
		Mode:       mode,
		ValueSize:  size,
		Mbps:       mbps,
		MeanMs:     float64(hist.Mean()) / 1e6,
		P99Ms:      float64(hist.Quantile(0.99)) / 1e6,
		CPUPercent: 100 * float64(cpu) / float64(elapsed),
	}
	if size == 32768 {
		row.CDF = hist.CDF(10)
	}
	if row.Mbps == 0 && hist.Count() == 0 {
		return row, fmt.Errorf("bench: fig3 %v/%d produced no deliveries", mode, size)
	}
	return row, nil
}
