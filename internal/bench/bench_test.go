package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fastOpts shrinks every figure for CI speed: short windows, scaled-down
// device/WAN latencies, few clients.
func fastOpts(buf *bytes.Buffer) Options {
	return Options{
		Out:      buf,
		Duration: 300 * time.Millisecond,
		Scale:    0.02,
		Clients:  8,
		Records:  200,
	}
}

func TestFig3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	res, err := Fig3(fastOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 { // 5 modes × 4 sizes
		t.Fatalf("rows = %d, want 20", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Mbps <= 0 {
			t.Errorf("%v/%d: zero throughput", r.Mode, r.ValueSize)
		}
	}
	if !strings.Contains(buf.String(), "Latency CDF") {
		t.Error("report missing CDF section")
	}
}

// TestFig3Shape pins the storage-mode ordering the paper shows: in-memory
// beats async disk, async beats sync, SSD beats HDD in sync mode.
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	o := fastOpts(&buf)
	o.Duration = 500 * time.Millisecond
	o.Scale = 0.2
	res, err := Fig3(o)
	if err != nil {
		t.Fatal(err)
	}
	tput := make(map[string]float64)
	for _, r := range res.Rows {
		if r.ValueSize == 32768 {
			tput[r.Mode.String()] = r.Mbps
		}
	}
	if tput["Sync Disk (SSD)"] <= tput["Sync Disk"] {
		t.Errorf("sync SSD (%.1f) should beat sync HDD (%.1f)", tput["Sync Disk (SSD)"], tput["Sync Disk"])
	}
	if tput["In Memory"] < tput["Sync Disk"] {
		t.Errorf("in-memory (%.1f) should beat sync HDD (%.1f)", tput["In Memory"], tput["Sync Disk"])
	}
}

func TestFig4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	res, err := Fig4(fastOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 24 { // 4 systems × 6 workloads
		t.Fatalf("cells = %d, want 24", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.OpsPerS <= 0 {
			t.Errorf("%s/%s: zero throughput", c.System, c.Workload)
		}
	}
	if len(res.FLatency) != 12 {
		t.Errorf("F latencies = %d, want 12", len(res.FLatency))
	}
}

func TestFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	res, err := Fig5(fastOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.OpsPerS <= 0 {
			t.Errorf("%s@%d clients: zero throughput", p.System, p.Clients)
		}
	}
}

func TestFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	res, err := Fig6(fastOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(res.Points))
	}
	// Vertical scalability: 5 rings must beat 1 ring.
	if res.Points[4].OpsPerS <= res.Points[0].OpsPerS {
		t.Errorf("5 rings (%.0f ops/s) should beat 1 ring (%.0f ops/s)",
			res.Points[4].OpsPerS, res.Points[0].OpsPerS)
	}
}

func TestFig7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	o := fastOpts(&buf)
	o.Duration = 500 * time.Millisecond
	res, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	// Horizontal scalability: 4 regions must beat 1 region.
	if res.Points[3].OpsPerS <= res.Points[0].OpsPerS {
		t.Errorf("4 regions (%.0f) should beat 1 region (%.0f)",
			res.Points[3].OpsPerS, res.Points[0].OpsPerS)
	}
}

func TestFig8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	o := fastOpts(&buf)
	o.Duration = 3 * time.Second
	res, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 10 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	if res.Events.CrashAtSec == 0 || res.Events.RestartAtSec == 0 {
		t.Error("crash/restart events missing")
	}
	// Service keeps running through the crash: samples after the crash
	// still show progress.
	after := 0.0
	for _, s := range res.Samples {
		if s.AtSec > res.Events.CrashAtSec {
			after += s.OpsPerS
		}
	}
	if after == 0 {
		t.Error("no throughput after replica crash; availability lost")
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	o := fastOpts(&buf)
	if res, err := AblationMergeM(o); err != nil || len(res.Rows) != 4 {
		t.Fatalf("merge-M: %v (%d rows)", err, len(res.Rows))
	}
	if res, err := AblationSkip(o); err != nil || len(res.Rows) != 2 {
		t.Fatalf("skip: %v (%d rows)", err, len(res.Rows))
	}
	if res, err := AblationBatch(o); err != nil || len(res.Rows) != 2 {
		t.Fatalf("batch: %v (%d rows)", err, len(res.Rows))
	}
	if res, err := AblationGlobalRing(o); err != nil || len(res.Rows) != 6 {
		t.Fatalf("global-ring: %v (%d rows)", err, len(res.Rows))
	}
}
