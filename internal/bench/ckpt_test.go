package bench

import (
	"io"
	"testing"
	"time"
)

// TestCkptBenchShort smoke-tests the checkpoint comparison with one small
// database size and a short window, including the JSON snapshot.
func TestCkptBenchShort(t *testing.T) {
	if testing.Short() {
		t.Skip("ckpt bench needs a measurement window")
	}
	oldSizes := ckptRecordCounts
	ckptRecordCounts = []int{512}
	defer func() { ckptRecordCounts = oldSizes }()

	// The window must comfortably exceed ckptEvery commands even on a
	// slow (race-instrumented) host, or no checkpoint interval elapses
	// and the run legitimately reports zero checkpoints.
	res, err := CkptBench(Options{Out: io.Discard, Duration: 800 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sizes) != 1 {
		t.Fatalf("sizes = %d, want 1", len(res.Sizes))
	}
	row := res.Sizes[0]
	if row.SteadyOpsPerS == 0 || row.Sync.OpsPerS == 0 || row.Async.OpsPerS == 0 {
		t.Fatalf("empty measurement: %+v", row)
	}
	if row.Sync.Checkpoints == 0 || row.Async.Checkpoints+row.Async.Coalesced == 0 {
		t.Fatalf("no checkpoints during measured runs: %+v", row)
	}
	path := t.TempDir() + "/ckpt.json"
	if err := res.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
}
