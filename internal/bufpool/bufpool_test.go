package bufpool

import (
	"bytes"
	"sync"
	"testing"
)

// TestClassFor pins the size-class boundaries: exact powers of two stay
// in their own class, one byte over spills to the next, and anything
// beyond MaxPooled is unpooled.
func TestClassFor(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0}, {1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 20, numClasses - 1}, {1<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestGetReleaseRecycles proves the final Release really returns the
// buffer (struct and backing array) to its class free list.
func TestGetReleaseRecycles(t *testing.T) {
	Drain()
	a := Get(100)
	if a.Len() != 100 || len(a.Bytes()) != 100 {
		t.Fatalf("Get(100): len %d bytes %d", a.Len(), len(a.Bytes()))
	}
	a.Release()
	b := Get(90) // same class (128)
	if a != b {
		t.Errorf("Get after Release allocated a fresh Buf; want recycled")
	}
	if b.Len() != 90 {
		t.Errorf("recycled Buf has stale length %d, want 90", b.Len())
	}
	b.Release()
}

// TestCopyDetaches proves Copy snapshots the source bytes.
func TestCopyDetaches(t *testing.T) {
	src := []byte("payload-bytes")
	b := Copy(src)
	src[0] = 'X'
	if !bytes.Equal(b.Bytes(), []byte("payload-bytes")) {
		t.Errorf("Copy aliases its source: %q", b.Bytes())
	}
	b.Release()
}

// TestOversizeUnpooled: requests beyond MaxPooled come from the heap
// but keep the refcount discipline.
func TestOversizeUnpooled(t *testing.T) {
	before := Snapshot().Oversize
	b := Get(MaxPooled + 1)
	if b.class != -1 {
		t.Errorf("oversize Get got class %d, want -1", b.class)
	}
	if got := Snapshot().Oversize; got != before+1 {
		t.Errorf("oversize stat = %d, want %d", got, before+1)
	}
	b.Retain()
	b.Release()
	b.Release()
}

// TestDoubleReleasePanics: a second final Release must panic, because
// it means two holders both believed they owned the last reference.
func TestDoubleReleasePanics(t *testing.T) {
	b := Get(32)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Errorf("double Release did not panic")
		}
	}()
	b.Release()
}

// TestRetainAfterReleasePanics: reviving a dead buffer is a
// use-after-free in the making.
func TestRetainAfterReleasePanics(t *testing.T) {
	Drain() // keep the dead Buf out of the free list's reach
	b := Get(32)
	b.Release()
	defer func() {
		if recover() == nil {
			t.Errorf("Retain after final Release did not panic")
		}
		Drain() // drop the corrupted refcount Buf
	}()
	b.Retain()
}

// TestNilSafe: nil receivers are inert so optional buffers need no
// call-site guards.
func TestNilSafe(t *testing.T) {
	var b *Buf
	b.Retain()
	b.Release()
	if b.Bytes() != nil || b.Len() != 0 || b.Refs() != 0 {
		t.Errorf("nil Buf not inert")
	}
}

// TestConcurrentHolders hammers Retain/Release from many goroutines
// under -race: the refcount must serialize the final release and the
// outstanding gauge must return to its starting point.
func TestConcurrentHolders(t *testing.T) {
	start := Outstanding()
	const holders = 16
	for iter := 0; iter < 100; iter++ {
		b := Copy([]byte("shared"))
		var wg sync.WaitGroup
		for h := 0; h < holders; h++ {
			b.Retain()
			wg.Add(1)
			go func() {
				defer wg.Done()
				if !bytes.Equal(b.Bytes(), []byte("shared")) {
					t.Errorf("holder read %q", b.Bytes())
				}
				b.Release()
			}()
		}
		b.Release() // creator's ref
		wg.Wait()
	}
	if got := Outstanding(); got != start {
		t.Errorf("outstanding = %d after balanced use, want %d", got, start)
	}
}

// TestStatsHitMiss: a cold Get misses, a recycled Get hits.
func TestStatsHitMiss(t *testing.T) {
	Drain()
	before := Snapshot()
	a := Get(256)
	a.Release()
	b := Get(256)
	b.Release()
	after := Snapshot()
	if after.Misses != before.Misses+1 {
		t.Errorf("misses %d → %d, want +1", before.Misses, after.Misses)
	}
	if after.Hits != before.Hits+1 {
		t.Errorf("hits %d → %d, want +1", before.Hits, after.Hits)
	}
}

// TestAllocsSteadyState pins the whole point of the package: once the
// free list is warm, a Get/Copy/Release cycle performs zero heap
// allocations.
func TestAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates alloc counts")
	}
	payload := make([]byte, 200)
	// Warm the class.
	Get(len(payload)).Release()
	allocs := testing.AllocsPerRun(1000, func() {
		b := Copy(payload)
		b.Retain()
		b.Release()
		b.Release()
	})
	if allocs > 0 {
		t.Errorf("steady-state Copy/Retain/Release allocates %.1f/op, want 0", allocs)
	}
}
