//go:build !race && !bufpooldebug

package bufpool

// Unguarded builds skip the recycle-time memory poisoning; the
// refcount misuse panics remain active. See guard_on.go.
const guarded = false

func guardPoison([]byte) {}
