// Package bufpool provides size-classed, reference-counted buffer pools
// for the steady-state delivery path.
//
// The protocol stack moves one payload through many holders: the TCP
// read block it arrives in, the acceptor's accepted map, the WAL batch,
// the forward queue, the merge layer and finally the state machine. A
// naive implementation allocates at each hop and leaves the garbage
// collector to clean up millions of short-to-medium-lived buffers per
// second; at NIC-bound rates the collector becomes the throughput
// ceiling. bufpool instead recycles buffers through explicit reference
// counting: a payload is copied at most once (off the inbound read
// block, into a pooled buffer) and every downstream holder takes a ref
// on the same buffer, releasing it deterministically when done.
//
// Pools are deliberately NOT built on sync.Pool: the runtime clears
// sync.Pool on every GC cycle, which makes allocation-regression tests
// (testing.AllocsPerRun) nondeterministic and re-introduces allocation
// spikes after each collection. Instead each size class keeps a small
// bounded free list; overflow falls back to the allocator.
//
// Ownership contract: Get and Copy return a buffer with one reference,
// owned by the caller. Every Retain must be paired with exactly one
// Release; the final Release recycles the buffer. Releasing or
// retaining a dead buffer panics (always for double-release; guard
// builds — `-race` or the bufpooldebug tag — additionally poison
// recycled memory to surface use-after-release reads).
package bufpool

import (
	"sync"
	"sync/atomic"
)

const (
	// minClassBits..maxClassBits cover 64 B to 1 MiB in powers of two;
	// larger requests fall back to plain heap buffers (unpooled, still
	// refcounted so callers need no special case).
	minClassBits = 6
	maxClassBits = 20
	numClasses   = maxClassBits - minClassBits + 1

	// MaxPooled is the largest request served from a pool.
	MaxPooled = 1 << maxClassBits

	// freeListCap bounds each class's free list. 64 buffers of the
	// largest class is 64 MiB worst case, but in practice only the
	// small payload classes fill up; the bound exists so a burst of
	// jumbo frames cannot pin memory forever.
	freeListCap = 64
)

// A Buf is a reference-counted, possibly pooled byte buffer.
// The zero value is not usable; obtain Bufs from Get or Copy.
type Buf struct {
	data  []byte
	n     int
	class int32 // -1 when unpooled
	refs  atomic.Int32
}

// Bytes returns the buffer's payload slice. Nil-safe: a nil Buf yields
// a nil slice. The slice must not be used after the final Release.
func (b *Buf) Bytes() []byte {
	if b == nil {
		return nil
	}
	return b.data[:b.n]
}

// Len returns the requested length. Nil-safe.
func (b *Buf) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Retain adds a reference for a new holder. Nil-safe so callers can
// blindly retain optional buffers.
func (b *Buf) Retain() {
	if b == nil {
		return
	}
	if n := b.refs.Add(1); n <= 1 {
		panic("bufpool: Retain of released buffer")
	}
}

// Release drops one reference; the final release recycles the buffer.
// Nil-safe. Releasing more times than retained panics — a double
// release means two holders think they own the buffer and one of them
// will observe recycled bytes.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	n := b.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("bufpool: Release of already-released buffer")
	}
	outstanding.Add(-1)
	if b.class < 0 {
		return // unpooled: let the GC have it
	}
	guardPoison(b.data)
	c := &classes[b.class]
	c.mu.Lock()
	if len(c.free) < freeListCap {
		c.free = append(c.free, b)
	}
	c.mu.Unlock()
}

// Refs reports the current reference count (for tests and debugging).
func (b *Buf) Refs() int32 {
	if b == nil {
		return 0
	}
	return b.refs.Load()
}

type class struct {
	mu   sync.Mutex
	free []*Buf
	_    [40]byte // keep neighbouring classes off one cache line
}

var (
	classes     [numClasses]class
	hits        atomic.Uint64
	misses      atomic.Uint64
	oversize    atomic.Uint64
	outstanding atomic.Int64
)

// classFor returns the smallest class index whose capacity holds n, or
// -1 if n exceeds MaxPooled.
func classFor(n int) int {
	if n > MaxPooled {
		return -1
	}
	c := 0
	for size := 1 << minClassBits; size < n; size <<= 1 {
		c++
	}
	return c
}

// Get returns a buffer of length n with one reference, recycled from
// the matching size-class pool when possible. Requests larger than
// MaxPooled are served from the heap (still refcounted).
func Get(n int) *Buf {
	outstanding.Add(1)
	ci := classFor(n)
	if ci < 0 {
		oversize.Add(1)
		b := &Buf{data: make([]byte, n), n: n, class: -1}
		b.refs.Store(1)
		return b
	}
	c := &classes[ci]
	c.mu.Lock()
	if last := len(c.free) - 1; last >= 0 {
		b := c.free[last]
		c.free[last] = nil
		c.free = c.free[:last]
		c.mu.Unlock()
		hits.Add(1)
		b.n = n
		b.refs.Store(1)
		return b
	}
	c.mu.Unlock()
	misses.Add(1)
	b := &Buf{data: make([]byte, 1<<(minClassBits+ci)), n: n, class: int32(ci)}
	b.refs.Store(1)
	return b
}

// Copy returns a pooled buffer holding a copy of p, with one reference.
func Copy(p []byte) *Buf {
	b := Get(len(p))
	copy(b.data, p)
	return b
}

// Stats is a point-in-time snapshot of pool activity.
type Stats struct {
	// Hits counts Gets served from a free list; Misses counts Gets
	// that hit the allocator; Oversize counts Gets beyond MaxPooled.
	Hits, Misses, Oversize uint64
	// Outstanding is the number of live (unreleased) buffers.
	Outstanding int64
}

// Snapshot returns current pool statistics.
func Snapshot() Stats {
	return Stats{
		Hits:        hits.Load(),
		Misses:      misses.Load(),
		Oversize:    oversize.Load(),
		Outstanding: outstanding.Load(),
	}
}

// Outstanding returns the number of live buffers. Zero at process
// quiescence means every Get/Copy was balanced by a final Release;
// internal/leakcheck asserts this at test-binary exit.
func Outstanding() int64 { return outstanding.Load() }

// Drain empties every free list (for tests that want a cold pool).
func Drain() {
	for i := range classes {
		c := &classes[i]
		c.mu.Lock()
		c.free = nil
		c.mu.Unlock()
	}
}
