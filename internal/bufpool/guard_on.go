//go:build race || bufpooldebug

package bufpool

// Guarded builds (`-race` or the bufpooldebug tag) poison recycled
// buffers so a holder that kept a slice past its final Release reads
// 0xDB garbage instead of silently observing the next frame's bytes.
// The refcount misuse panics (double release, retain-after-free) are
// always on — only the memory poisoning is gated, because filling a
// megabyte class on every recycle is too slow for the hot path.
const guarded = true

func guardPoison(p []byte) {
	for i := range p {
		p[i] = 0xDB
	}
}
