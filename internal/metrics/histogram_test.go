package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// lockedHistogram is the pre-atomic reference implementation, kept here
// verbatim so the equivalence test pins the lock-free version against it.
type lockedHistogram struct {
	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

func newLockedHistogram() *lockedHistogram {
	return &lockedHistogram{counts: make([]uint64, histBuckets), min: math.MaxInt64}
}

func (h *lockedHistogram) Record(d time.Duration) {
	h.mu.Lock()
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

func (h *lockedHistogram) quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	target := uint64(q * float64(h.total))
	if target >= h.total {
		target = h.total - 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum > target {
			return bucketValue(b)
		}
	}
	return h.max
}

// TestHistogramEquivalentToLocked feeds identical sample streams to the
// atomic histogram and the locked reference and requires every exported
// statistic to agree exactly: the lock removal must not change results.
func TestHistogramEquivalentToLocked(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	atomicH := NewHistogram()
	lockedH := newLockedHistogram()
	for i := 0; i < 100000; i++ {
		var d time.Duration
		switch i % 4 {
		case 0:
			d = time.Duration(rng.Int63n(int64(time.Millisecond)))
		case 1:
			d = time.Duration(rng.Int63n(int64(time.Second)))
		case 2:
			d = time.Duration(rng.Int63n(int64(time.Microsecond))) // below first bucket
		default:
			d = time.Duration(rng.Int63n(int64(30 * time.Minute))) // above last bucket
		}
		atomicH.Record(d)
		lockedH.Record(d)
	}
	if got, want := atomicH.Count(), lockedH.total; got != want {
		t.Fatalf("Count %d != %d", got, want)
	}
	if got, want := atomicH.Mean(), lockedH.sum/time.Duration(lockedH.total); got != want {
		t.Fatalf("Mean %v != %v", got, want)
	}
	if got, want := atomicH.Min(), lockedH.min; got != want {
		t.Fatalf("Min %v != %v", got, want)
	}
	if got, want := atomicH.Max(), lockedH.max; got != want {
		t.Fatalf("Max %v != %v", got, want)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0} {
		if got, want := atomicH.Quantile(q), lockedH.quantile(q); got != want {
			t.Fatalf("Quantile(%v) %v != %v", q, got, want)
		}
	}
	for b := range atomicH.counts {
		if atomicH.counts[b].Load() != lockedH.counts[b] {
			t.Fatalf("bucket %d: %d != %d", b, atomicH.counts[b].Load(), lockedH.counts[b])
		}
	}
}

// TestHistogramConcurrentRecord hammers Record from many goroutines and
// checks the aggregate totals: no sample may be lost or double counted.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const perWorker = 50000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Record(time.Duration(1 + rng.Int63n(int64(time.Second))))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("lost samples: Count %d != %d", got, workers*perWorker)
	}
	var cum uint64
	for b := range h.counts {
		cum += h.counts[b].Load()
	}
	if cum != workers*perWorker {
		t.Fatalf("bucket sum %d != %d", cum, workers*perWorker)
	}
	if h.Min() <= 0 || h.Max() > time.Second {
		t.Fatalf("min/max out of range: %v %v", h.Min(), h.Max())
	}
}

// BenchmarkHistogramRecordParallel measures Record under contention —
// the satellite's reason for the per-bucket atomics.
func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		d := 37 * time.Microsecond
		for pb.Next() {
			h.Record(d)
			d += time.Microsecond
		}
	})
}

// BenchmarkLockedHistogramRecordParallel is the mutex baseline.
func BenchmarkLockedHistogramRecordParallel(b *testing.B) {
	h := newLockedHistogram()
	b.RunParallel(func(pb *testing.PB) {
		d := 37 * time.Microsecond
		for pb.Next() {
			h.Record(d)
			d += time.Microsecond
		}
	})
}
