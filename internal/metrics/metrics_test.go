package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if mean := h.Mean(); mean < 45*time.Millisecond || mean > 56*time.Millisecond {
		t.Errorf("Mean = %v, want ~50.5ms", mean)
	}
	if min := h.Min(); min != time.Millisecond {
		t.Errorf("Min = %v", min)
	}
	if max := h.Max(); max != 100*time.Millisecond {
		t.Errorf("Max = %v", max)
	}
	p50 := h.Quantile(0.5)
	if p50 < 40*time.Millisecond || p50 > 60*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Millisecond || p99 > 110*time.Millisecond {
		t.Errorf("p99 = %v, want ~99ms", p99)
	}
}

func TestHistogramPrecision(t *testing.T) {
	// Quantile of a constant stream must be within ~5% of the value.
	f := func(usRaw uint32) bool {
		us := int64(usRaw%1000000) + 1
		d := time.Duration(us) * time.Microsecond
		h := NewHistogram()
		for i := 0; i < 10; i++ {
			h.Record(d)
		}
		got := h.Quantile(0.5)
		rel := math.Abs(float64(got-d)) / float64(d)
		return rel < 0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * 37 * time.Microsecond)
	}
	last := time.Duration(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < last {
			t.Fatalf("quantile %v < quantile at lower q (%v < %v)", q, v, last)
		}
		last = v
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	cdf := h.CDF(10)
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	lastF := 0.0
	for _, p := range cdf {
		if p.Fraction < lastF {
			t.Fatal("CDF fractions not monotone")
		}
		lastF = p.Fraction
	}
	if lastF < 0.999 {
		t.Errorf("CDF ends at %v, want ~1.0", lastF)
	}
	if NewHistogram().CDF(10) != nil {
		t.Error("empty histogram should yield nil CDF")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestHistogramSnapshotFormat(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * time.Millisecond)
	s := h.Snapshot()
	if len(s) == 0 || s[0] != 'n' {
		t.Errorf("Snapshot = %q", s)
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Add(10, 1000)
	m.Add(5, 500)
	n, b := m.Counts()
	if n != 15 || b != 1500 {
		t.Errorf("Counts = %d, %d", n, b)
	}
	time.Sleep(20 * time.Millisecond)
	ops, mbps := m.Rate()
	if ops <= 0 || mbps <= 0 {
		t.Errorf("Rate = %v, %v", ops, mbps)
	}
	m.Reset()
	if n, _ := m.Counts(); n != 0 {
		t.Error("Reset did not clear counts")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.Append(1)
	time.Sleep(5 * time.Millisecond)
	s.Append(2)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("Points = %d", len(pts))
	}
	if pts[1].At <= pts[0].At {
		t.Error("timestamps not increasing")
	}
	if pts[0].Value != 1 || pts[1].Value != 2 {
		t.Error("values wrong")
	}
	sorted := s.SortedCopy()
	if len(sorted) != 2 || sorted[0].At > sorted[1].At {
		t.Error("SortedCopy broken")
	}
}
