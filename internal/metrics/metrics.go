// Package metrics provides the measurement primitives the benchmark
// harness uses to regenerate the paper's figures: latency histograms with
// quantiles and CDF extraction, throughput meters, and time series for the
// recovery timeline (Figure 8).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram records durations in logarithmic buckets (HdrHistogram-style:
// ~5% relative precision). Recording is lock-free — one atomic add per
// bucket plus atomic total/sum and CAS-raced min/max — so it can sit on
// concurrent hot paths (every traced request, every merge stall) without
// a global mutex serializing recorders. Readers observe a possibly
// slightly torn view under concurrent recording (each counter is
// individually consistent); quantiles clamp accordingly, which is the
// standard telemetry trade.
type Histogram struct {
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; MaxInt64 when empty
	max    atomic.Int64 // nanoseconds
}

// bucketCount covers 1µs..~17min with 64 buckets per octave step below.
const (
	histBuckets = 1024
	// histGrowth is the per-bucket growth factor: bucket i covers
	// [base*g^i, base*g^(i+1)).
	histGrowth = 1.05
	histBase   = float64(time.Microsecond)
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{counts: make([]atomic.Uint64, histBuckets)}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketOf(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	b := int(math.Log(float64(d)/histBase) / math.Log(histGrowth))
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func bucketValue(b int) time.Duration {
	return time.Duration(histBase * math.Pow(histGrowth, float64(b)+0.5))
}

// Record adds one sample. Lock-free: safe for any number of concurrent
// recorders.
func (h *Histogram) Record(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.min.Load()
		if int64(d) >= cur || h.min.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	return h.total.Load()
}

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()) / time.Duration(total)
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() time.Duration {
	if h.total.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load())
}

// Quantile returns the q-quantile (0 < q <= 1), e.g. 0.5 for the median.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for b := range h.counts {
		cum += h.counts[b].Load()
		if cum > target {
			return bucketValue(b)
		}
	}
	return h.Max()
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Latency  time.Duration
	Fraction float64
}

// CDF extracts up to n evenly spaced points of the latency CDF, as plotted
// in the paper's latency CDF graphs (Figures 3, 6 and 7).
func (h *Histogram) CDF(n int) []CDFPoint {
	total := h.total.Load()
	if total == 0 || n <= 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	step := 1.0 / float64(n)
	next := step
	for b := range h.counts {
		c := h.counts[b].Load()
		if c == 0 {
			continue
		}
		cum += c
		frac := float64(cum) / float64(total)
		if frac >= next || cum >= total {
			out = append(out, CDFPoint{Latency: bucketValue(b), Fraction: frac})
			for next <= frac {
				next += step
			}
		}
	}
	return out
}

// Snapshot formats the histogram for reports.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms",
		h.Count(),
		ms(h.Mean()), ms(h.Quantile(0.50)), ms(h.Quantile(0.95)),
		ms(h.Quantile(0.99)), ms(h.Max()))
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Meter counts events and bytes over a measurement window.
type Meter struct {
	mu    sync.Mutex
	n     uint64
	bytes uint64
	start time.Time
}

// NewMeter starts a meter.
func NewMeter() *Meter {
	return &Meter{start: time.Now()}
}

// Add records n events totalling b bytes.
func (m *Meter) Add(n, b uint64) {
	m.mu.Lock()
	m.n += n
	m.bytes += b
	m.mu.Unlock()
}

// Reset zeroes the meter and restarts its clock.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.n, m.bytes = 0, 0
	m.start = time.Now()
	m.mu.Unlock()
}

// Rate returns events/sec and megabits/sec since start or last Reset.
func (m *Meter) Rate() (opsPerSec, mbps float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0, 0
	}
	return float64(m.n) / elapsed, float64(m.bytes) * 8 / 1e6 / elapsed
}

// Counts returns raw totals.
func (m *Meter) Counts() (n, bytes uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n, m.bytes
}

// Counter is a lock-free monotonically increasing event counter, for hot
// paths where a Meter's mutex would show up (e.g. fsyncs issued by the
// acceptor WAL). The zero value is ready to use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one event.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Gauge is a lock-free settable instantaneous value — e.g. the schema
// epoch a process currently operates under. The zero value is ready to
// use and reads 0.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v is larger (monotonic gauges such as
// epochs, where concurrent setters must never move it backwards).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// BatchGauge tracks the size distribution of batches flowing through a hot
// path — group-commit WAL batches, coalesced network flushes — cheaply
// enough to stay enabled in production: three atomics per observation. The
// zero value is ready to use.
type BatchGauge struct {
	batches atomic.Uint64
	items   atomic.Uint64
	max     atomic.Uint64
}

// Observe records one batch of the given size.
func (g *BatchGauge) Observe(size int) {
	if size <= 0 {
		return
	}
	g.batches.Add(1)
	g.items.Add(uint64(size))
	for {
		cur := g.max.Load()
		if uint64(size) <= cur || g.max.CompareAndSwap(cur, uint64(size)) {
			return
		}
	}
}

// Snapshot returns the totals so far.
func (g *BatchGauge) Snapshot() (batches, items, maxSize uint64) {
	return g.batches.Load(), g.items.Load(), g.max.Load()
}

// Mean returns the average batch size (0 if nothing was observed).
func (g *BatchGauge) Mean() float64 {
	b := g.batches.Load()
	if b == 0 {
		return 0
	}
	return float64(g.items.Load()) / float64(b)
}

// EWMA is an exponentially weighted moving average: each Update folds a
// new sample in with weight alpha. The first sample initializes the
// average directly, so a freshly started rate tracker does not spend its
// first windows climbing from zero. Not safe for concurrent use — it is
// meant for single-goroutine accounting (e.g. a ring coordinator's
// decided-rate tracking per Δ window).
type EWMA struct {
	alpha float64
	v     float64
	init  bool
}

// NewEWMA returns an EWMA with the given sample weight (0 < alpha <= 1).
func NewEWMA(alpha float64) *EWMA {
	return &EWMA{alpha: alpha}
}

// Update folds one sample in and returns the new average.
func (e *EWMA) Update(sample float64) float64 {
	if !e.init {
		e.v, e.init = sample, true
		return e.v
	}
	e.v = e.alpha*sample + (1-e.alpha)*e.v
	return e.v
}

// Value returns the current average (0 before the first sample).
func (e *EWMA) Value() float64 { return e.v }

// SeriesPoint is one sample of a time series.
type SeriesPoint struct {
	At    time.Duration // offset from series start
	Value float64
}

// Series collects a time series, e.g. throughput per second during the
// recovery experiment (Figure 8).
type Series struct {
	mu     sync.Mutex
	start  time.Time
	points []SeriesPoint
}

// NewSeries starts a series clocked from now.
func NewSeries() *Series {
	return &Series{start: time.Now()}
}

// Append records a sample at the current offset.
func (s *Series) Append(v float64) {
	s.mu.Lock()
	s.points = append(s.points, SeriesPoint{At: time.Since(s.start), Value: v})
	s.mu.Unlock()
}

// Points returns a copy of the collected samples.
func (s *Series) Points() []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SeriesPoint(nil), s.points...)
}

// SortedCopy returns samples sorted by time (Append is already ordered when
// called from one goroutine; this guards multi-recorder series).
func (s *Series) SortedCopy() []SeriesPoint {
	pts := s.Points()
	sort.Slice(pts, func(i, j int) bool { return pts[i].At < pts[j].At })
	return pts
}
