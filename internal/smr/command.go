// Package smr provides state-machine replication on top of Multi-Ring
// Paxos (Section 6: both MRP-Store and dLog "use state-machine replication
// implemented with Multi-Ring Paxos").
//
// Clients wrap operations in commands (client id, sequence number,
// opaque operation), multicast them to the group owning the data, and wait
// for the first replica response (Section 7.2). Replicas deliver commands
// in merged order, execute them against a StateMachine, reply directly to
// the client, and periodically checkpoint — integrating with the trim
// protocol of Section 5.2.
package smr

import (
	"encoding/binary"

	"amcast/internal/transport"
)

// Command is a client request replicated through atomic multicast.
type Command struct {
	// Client is the submitting process.
	Client transport.ProcessID
	// Seq is the client-local sequence number, used for response
	// matching and duplicate suppression.
	Seq uint64
	// Op is the service-specific operation payload.
	Op []byte
}

// Encode serializes the command.
func (c Command) Encode() []byte {
	buf := make([]byte, 12+len(c.Op))
	binary.LittleEndian.PutUint32(buf[:4], uint32(c.Client))
	binary.LittleEndian.PutUint64(buf[4:12], c.Seq)
	copy(buf[12:], c.Op)
	return buf
}

// DecodeCommand parses Encode output. The Op slice aliases buf.
func DecodeCommand(buf []byte) (Command, error) {
	if len(buf) < 12 {
		return Command{}, transport.ErrShortMessage
	}
	return Command{
		Client: transport.ProcessID(binary.LittleEndian.Uint32(buf[:4])),
		Seq:    binary.LittleEndian.Uint64(buf[4:12]),
		Op:     buf[12:],
	}, nil
}
