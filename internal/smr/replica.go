package smr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"amcast/internal/core"
	"amcast/internal/metrics"
	"amcast/internal/recovery"
	"amcast/internal/trace"
	"amcast/internal/transport"
)

// StateMachine is the deterministic service a Replica replicates.
// Execute, Snapshot and Restore are always invoked from a single
// goroutine.
type StateMachine interface {
	// Execute applies one operation and returns the response sent back
	// to the client.
	Execute(group transport.RingID, op []byte) []byte
	// Snapshot serializes the complete state.
	Snapshot() []byte
	// Restore replaces the state with a snapshot.
	Restore(snapshot []byte) error
}

// BatchExecutor is an optional StateMachine extension: state machines
// implement it to apply a run of operations under one internal
// synchronization acquisition instead of per-operation. ExecuteBatch must
// be equivalent to calling Execute for each (group, op) pair in order and
// returning the responses positionally.
type BatchExecutor interface {
	ExecuteBatch(groups []transport.RingID, ops [][]byte) [][]byte
}

// StateSnapshot is an immutable point-in-time capture of a state
// machine's state. Serialize encodes the captured state; it may be called
// from a background goroutine concurrently with new commands executing
// against the live state, so implementations must not read mutable state.
type StateSnapshot interface {
	Serialize() []byte
}

// SnapshotCapturer is an optional StateMachine extension for non-blocking
// checkpoints: CaptureSnapshot returns a cheap (ideally O(1)) immutable
// view of the current state, letting the replica hand serialization to a
// background checkpoint writer instead of stalling delivery for the full
// encoding. CaptureSnapshot is called from the delivery goroutine at a
// batch boundary; the returned snapshot must reflect exactly the state
// after the last executed command.
type SnapshotCapturer interface {
	CaptureSnapshot() StateSnapshot
}

// ReleasableSnapshot is an optional StateSnapshot extension for state
// machines that pin resources while a capture is outstanding (e.g. dLog
// defers disk trims so lazily-resolved entries stay readable). The
// checkpoint writer calls Release exactly once per capture — after
// Serialize, or when the capture is superseded or dropped at shutdown.
type ReleasableSnapshot interface {
	Release()
}

// releaseSnapshot releases a capture's pinned resources, if any.
func releaseSnapshot(s StateSnapshot) {
	if r, ok := s.(ReleasableSnapshot); ok {
		r.Release()
	}
}

// ReplicaConfig configures a replica process.
type ReplicaConfig struct {
	// Self is this replica's process id.
	Self transport.ProcessID
	// Partition identifies the replica's partition. By convention it is
	// the partition's own ring id; it tags responses so clients can
	// count distinct partitions on multi-partition operations.
	Partition transport.RingID
	// Groups is the subscription: the partition's ring(s) plus any
	// global ring. Replicas subscribing to the same set form a
	// partition in the sense of Section 5.2.
	Groups []transport.RingID
	// Peers are the other replicas of the same partition, used for
	// remote checkpoints during recovery.
	Peers []transport.ProcessID

	// Node is the Multi-Ring Paxos endpoint (not yet subscribed; the
	// replica subscribes after recovery so StartVector can be applied).
	// Build it with BuildNode, which handles recovery.
	Node *core.Node
	// Transport sends client responses and recovery RPC replies.
	Transport transport.Transport
	// Service is the non-consensus message channel of this process's
	// router.
	Service <-chan transport.Message
	// SM is the replicated state machine.
	SM StateMachine
	// Checkpoints persists checkpoints (required when CheckpointEvery
	// or trim is used).
	Checkpoints recovery.Store
	// CheckpointEvery takes a checkpoint after this many commands.
	// Zero disables periodic checkpoints.
	CheckpointEvery int
	// SyncCheckpoints forces the legacy blocking behaviour: the full
	// serialization and durable write run inline on the delivery
	// goroutine, stalling every subscribed group for the duration. Only
	// for comparison benchmarks (cmd/bench -ckpt); production replicas
	// leave it false and use the background checkpoint writer.
	SyncCheckpoints bool
	// ServiceHook, if set, is offered service messages the replica does
	// not handle itself (e.g. MRP-Store's partition-split range
	// transfers). It runs on the replica's service goroutine; it returns
	// true when it consumed the message.
	ServiceHook func(transport.Message) bool
	// ExecWorkers sizes the conflict-aware parallel apply pool when the
	// state machine implements ConflictExecutor: 0 or 1 applies
	// sequentially (the default), >= 2 uses that many workers, and a
	// negative value sizes the pool to GOMAXPROCS. Results, state and
	// checkpoints are byte-identical either way.
	ExecWorkers int
	// Tracer, when set, records "apply" spans for sampled deliveries and
	// rides the trace context back on the client response frame. Purely
	// telemetry; never feeds replicated state.
	Tracer *trace.Recorder
}

// Replica drives a replicated state machine: it subscribes to the
// partition's groups, executes delivered commands, responds to clients,
// checkpoints, answers the trim protocol and serves recovery RPCs.
type Replica struct {
	cfg     ReplicaConfig
	tr      transport.Transport
	batchSM BatchExecutor    // non-nil when SM supports batch apply
	snapSM  SnapshotCapturer // non-nil when SM supports cheap capture
	applier *Applier         // non-nil when parallel apply is enabled

	// applyGate serializes command application (write side, held across
	// deliverBatch) against local reads (read side): a parallel batch
	// commits its runs out of delivery order, so mid-batch states are
	// not prefixes of the delivered order and must never be observed.
	applyGate sync.RWMutex

	// Read-index state: appliedVec is the delivered prefix whose
	// commands have all been executed (advanced by the node's
	// batch-boundary callback, including skip-only flushes); waiters
	// park until it covers their requirement.
	readMu      sync.Mutex
	appliedVec  recovery.Vector
	readWaiters []*readWaiter
	readWait    *metrics.Histogram
	localReads  atomic.Uint64

	// mu guards safeVec/safeEpoch, the only state shared with the
	// service loop (trim and recovery RPCs). Everything below it is owned
	// by the merge goroutine, so batch execution never holds a lock a
	// service RPC could wait on.
	mu        sync.Mutex
	safeVec   recovery.Vector // vector of the last durable checkpoint
	safeEpoch uint64          // subscription epoch of that checkpoint

	// resubArmed is set while an epoch transition is registered with the
	// node and cleared once the merge applies it (observed at a batch
	// boundary, where the transition is checkpointed immediately).
	resubArmed atomic.Bool
	epoch      uint64 // merge-goroutine view of the subscription epoch

	// Checkpoint writer pipeline: the delivery goroutine captures
	// (vector, cursor, dedup, snapshot) at a batch boundary and parks it
	// in ckptPending; the writer goroutine serializes and persists it.
	// At most one capture is pending — a newer capture supersedes an
	// unwritten older one (their waiters carry over), so a slow disk
	// coalesces checkpoints instead of queueing them.
	ckptMu      sync.Mutex
	ckptPending *ckptCapture
	ckptKick    chan struct{} // signals the writer (buffered, 1)
	ckptDone    chan struct{} // closed when the writer exits
	ckptRetry   atomic.Bool   // a Save failed; retry at the next batch boundary
	ckptStallNs atomic.Int64  // max time checkpointing blocked delivery
	coalesced   atomic.Uint64 // captures superseded before being written

	// Merge-goroutine-owned execution state.
	dedup     map[transport.ProcessID]*clientWindow // duplicate suppression
	executed  uint64
	sinceCkpt int

	// Scratch buffers for batch execution, owned by the merge goroutine
	// and reused across batches: the current run of dedup-cleared
	// commands awaiting execution, and the batch's pending responses.
	runGroups []transport.RingID
	runOps    [][]byte
	runWins   []*clientWindow
	runSeqs   []uint64
	runResp   []int // respBuf index whose Payload the run result fills
	runKeys   map[cmdKey]struct{}
	respBuf   []transport.Message
	outBuf    [][]byte // parallel-apply result staging, reused across runs

	executedTotal atomic.Uint64
	checkpoints   atomic.Uint64

	done     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once
}

// cmdKey identifies a client command for duplicate detection within one
// execution run.
type cmdKey struct {
	client transport.ProcessID
	seq    uint64
}

// BuildNodeResult carries what BuildNode recovered.
type BuildNodeResult struct {
	// Node is ready to Join/Subscribe with recovery applied.
	Node *core.Node
	// Checkpoint is the state snapshot to restore (nil state if none).
	Checkpoint recovery.Checkpoint
	// Remote reports whether the checkpoint came from a peer.
	Remote bool
}

// RecoveryOptions parameterizes BuildNode.
type RecoveryOptions struct {
	// Self, Router, Coord, NewLog, M, Ring: as core.Config.
	Core core.Config
	// Store is the local checkpoint store.
	Store recovery.Store
	// Peers are partition peers to query for newer checkpoints.
	Peers []transport.ProcessID
	// Service is the process's service channel (consumed during
	// recovery only; hand it to the Replica afterwards).
	Service <-chan transport.Message
	// Timeout bounds waiting for peer checkpoint responses.
	Timeout time.Duration
}

// BuildNode performs replica recovery per Section 5.2 and returns a
// configured (but not yet joined/subscribed) core.Node:
//
//  1. Load the latest local checkpoint.
//  2. Ask partition peers for their checkpoint tuples and wait for a
//     recovery quorum Q_R (majority of the partition, counting self).
//  3. Select the most up-to-date checkpoint (Predicate 3); if remote,
//     fetch its snapshot.
//  4. Configure the node's StartVector/StartCursor from it.
//
// On a fresh partition (no checkpoints anywhere) it returns a clean node.
func BuildNode(opts RecoveryOptions) (BuildNodeResult, error) {
	if opts.Timeout == 0 {
		opts.Timeout = 2 * time.Second
	}
	var local recovery.Checkpoint
	if opts.Store != nil {
		if cp, ok := opts.Store.Latest(); ok {
			local = cp
		}
	}
	localEpoch := uint64(0)
	if cur, err := decodeStateCursor(local.State); err == nil {
		localEpoch = cur.Epoch
	}
	best := local
	bestEpoch := localEpoch
	bestPeer := transport.ProcessID(0)
	remote := false

	tr := opts.Core.Router.Transport()
	if len(opts.Peers) > 0 && opts.Service != nil {
		quorum := (len(opts.Peers)+1)/2 + 1 // majority incl. self
		reqSeq := uint64(time.Now().UnixNano())
		for _, p := range opts.Peers {
			_ = tr.Send(p, transport.Message{Kind: transport.KindCheckpointReq, Seq: reqSeq})
		}
		got := 1 // self
		deadline := time.After(opts.Timeout)
	collect:
		for got < quorum {
			select {
			case m, ok := <-opts.Service:
				if !ok {
					break collect
				}
				if m.Kind != transport.KindCheckpointResp || m.Seq != reqSeq {
					continue // stale traffic during recovery
				}
				vec, rest, err := recovery.DecodeVector(m.Payload)
				if err != nil {
					continue
				}
				// Subscription epoch rides after the vector (absent
				// in pre-reconfig responses → epoch 0). A higher
				// epoch wins outright: vectors across an epoch
				// boundary are not comparable entrywise (the group
				// set changed), but the transition itself was
				// checkpointed, so the higher-epoch tuple is by
				// construction the later one.
				var epoch uint64
				if len(rest) >= 8 {
					epoch = binary.LittleEndian.Uint64(rest[:8])
				}
				got++
				if epoch > bestEpoch || (epoch == bestEpoch && recovery.Compare(vec, best.Vector) > 0) {
					best = recovery.Checkpoint{Vector: vec}
					bestEpoch = epoch
					bestPeer = m.From
				}
			case <-deadline:
				break collect
			}
		}
		// Fetch the remote snapshot if a peer is ahead of us. The peer
		// streams it as KindSnapshotChunk frames (a monolithic response
		// could not carry a state larger than one transport frame);
		// reassemble and verify before adopting it. On ANY failure —
		// timeout, inconsistent framing, CRC mismatch, undecodable
		// checkpoint — fall back to the LOCAL checkpoint: a vector
		// without its state must never survive here, because restarting
		// with a safeVec we do not actually hold would let the trim
		// protocol (Predicate 2) discard instances we still need.
		if bestPeer != 0 {
			_ = tr.Send(bestPeer, transport.Message{Kind: transport.KindSnapshotReq, Seq: reqSeq})
			deadline := time.After(opts.Timeout)
			var asm *ChunkAssembly
			best = local
		fetch:
			for {
				select {
				case m, ok := <-opts.Service:
					if !ok {
						break fetch
					}
					if m.Kind != transport.KindSnapshotChunk || m.Seq != reqSeq {
						continue
					}
					if asm == nil {
						if asm = NewChunkAssembly(m); asm == nil {
							break fetch
						}
					}
					done, err := asm.Add(m)
					if err != nil {
						break fetch
					}
					if !done {
						continue
					}
					cp, err := recovery.DecodeCheckpoint(asm.buf)
					if err != nil {
						break fetch
					}
					best = cp
					remote = true
					break fetch
				case <-deadline:
					// The acceptors still have the gap between the
					// local checkpoint and the tip (Predicate 5).
					break fetch
				}
			}
		}
	}

	cfg := opts.Core
	if len(best.Vector) > 0 {
		cfg.StartVector = best.Vector
		if cur, err := decodeStateCursor(best.State); err == nil {
			cfg.StartCursor = cur
		}
	}
	node, err := core.New(cfg)
	if err != nil {
		return BuildNodeResult{}, err
	}
	return BuildNodeResult{Node: node, Checkpoint: best, Remote: remote}, nil
}

// Checkpoint state layout: cursorLen(4) || cursor || dedupLen(4) || dedup ||
// snapshot. The cursor rides inside the checkpoint so recovery resumes the
// deterministic merge at the exact position; dedup state rides along so
// duplicate suppression survives restarts.
//
//lint:deterministic
func encodeStateParts(cur core.Cursor, dedup []byte, snap []byte) []byte {
	cb := cur.Encode()
	buf := make([]byte, 0, 8+len(cb)+len(dedup)+len(snap))
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(cb)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, cb...)
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(dedup)))
	buf = append(buf, tmp[:]...)
	buf = append(buf, dedup...)
	return append(buf, snap...)
}

func decodeStateParts(state []byte) (core.Cursor, []byte, []byte, error) {
	if len(state) < 4 {
		return core.Cursor{}, nil, nil, recovery.ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(state[:4]))
	state = state[4:]
	if len(state) < n+4 {
		return core.Cursor{}, nil, nil, recovery.ErrCorrupt
	}
	cur, err := core.DecodeCursor(state[:n])
	if err != nil {
		return core.Cursor{}, nil, nil, err
	}
	state = state[n:]
	dn := int(binary.LittleEndian.Uint32(state[:4]))
	state = state[4:]
	if len(state) < dn {
		return core.Cursor{}, nil, nil, recovery.ErrCorrupt
	}
	return cur, state[:dn], state[dn:], nil
}

func decodeStateCursor(state []byte) (core.Cursor, error) {
	cur, _, _, err := decodeStateParts(state)
	return cur, err
}

// clientWindow tracks which of one client's command sequence numbers were
// already executed. Commands from a single client can arrive out of order
// across groups (different rings interleave), so a plain high-water mark is
// not enough: floor covers the contiguous executed prefix, and executed
// seqs above it sit in a fixed ring of slots indexed by seq — array reads
// on the execution hot path where a map would pay a hash and probe per
// command. Seqs evicted by a slot collision while still above the floor
// (pathologically sparse clients) spill into an overflow map so duplicate
// detection never silently forgets an executed command.
type clientWindow struct {
	floor    uint64
	seqs     []uint64 // seq held by each slot (0 = empty), indexed seq & mask
	resp     [][]byte // cached response per slot, for duplicate re-replies
	overflow map[uint64][]byte
}

// Ring sizing (powers of two): windows double on slot collision up to
// windowSlotsMax, beyond which collisions spill to the overflow map. The
// floor also bounds cached-response retention — a floor-covered slot is
// overwritten (without growing) once a newer congruent seq lands — so the
// minimum is sized to keep re-replies for lost acks answering with the
// real response for at least the last windowSlotsMin commands per client.
const (
	windowSlotsMin = 512
	windowSlotsMax = 8192
)

func newClientWindow(floor uint64) *clientWindow {
	return &clientWindow{
		floor: floor,
		seqs:  make([]uint64, windowSlotsMin),
		resp:  make([][]byte, windowSlotsMin),
	}
}

// grow doubles the ring. Seqs present are distinct modulo the old size, so
// they stay collision-free modulo the doubled size.
func (w *clientWindow) grow() {
	n := uint64(len(w.seqs)) * 2
	seqs := make([]uint64, n)
	resp := make([][]byte, n)
	for j, s := range w.seqs {
		if s != 0 {
			seqs[s&(n-1)] = s
			resp[s&(n-1)] = w.resp[j]
		}
	}
	w.seqs, w.resp = seqs, resp
}

// check reports whether seq was executed; if it was, the cached response
// (possibly nil if evicted) is returned.
func (w *clientWindow) check(seq uint64) (dup bool, resp []byte) {
	i := seq & uint64(len(w.seqs)-1)
	if w.seqs[i] == seq {
		return true, w.resp[i]
	}
	if seq <= w.floor {
		return true, w.overflow[seq]
	}
	if len(w.overflow) > 0 {
		if r, ok := w.overflow[seq]; ok {
			return true, r
		}
	}
	return false, nil
}

// record marks seq executed with its response and advances the floor over
// any now-contiguous prefix.
func (w *clientWindow) record(seq uint64, resp []byte) {
	i := seq & uint64(len(w.seqs)-1)
	for w.seqs[i] != 0 && w.seqs[i] > w.floor && w.seqs[i] != seq {
		if len(w.seqs) < windowSlotsMax {
			w.grow()
			i = seq & uint64(len(w.seqs)-1)
			continue
		}
		// Ring at capacity: spill the collision victim so the
		// duplicate check still finds it.
		if w.overflow == nil {
			w.overflow = make(map[uint64][]byte)
		}
		w.overflow[w.seqs[i]] = w.resp[i]
		break
	}
	w.seqs[i], w.resp[i] = seq, resp
	mask := uint64(len(w.seqs) - 1)
	for {
		next := (w.floor + 1) & mask
		if w.seqs[next] == w.floor+1 {
			w.floor++
			continue
		}
		if len(w.overflow) > 0 {
			if _, ok := w.overflow[w.floor+1]; ok {
				delete(w.overflow, w.floor+1)
				w.floor++
				continue
			}
		}
		break
	}
	if len(w.overflow) > 1024 {
		// Rare: shed a pathological overflow's floor-covered entries.
		for s := range w.overflow {
			if s <= w.floor {
				delete(w.overflow, s)
			}
		}
	}
}

// encodeDedup serializes the duplicate-suppression floors in ascending
// client-id order, so identical dedup states encode to identical
// (checksummable) bytes regardless of map iteration order.
//
//lint:deterministic
func encodeDedup(dedup map[transport.ProcessID]*clientWindow) []byte {
	ids := make([]transport.ProcessID, 0, len(dedup))
	for c := range dedup {
		ids = append(ids, c)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 4, 4+12*len(ids))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(ids)))
	var tmp [8]byte
	for _, c := range ids {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(c))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:8], dedup[c].floor)
		buf = append(buf, tmp[:8]...)
	}
	return buf
}

// decodeDedup parses encodeDedup output. Truncated or oversized input
// returns ErrCorrupt instead of a silently partial table — a damaged dedup
// table restored into a replica would re-execute commands it already
// executed.
func decodeDedup(buf []byte) (map[transport.ProcessID]*clientWindow, error) {
	if len(buf) < 4 {
		return nil, recovery.ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) != 12*n {
		return nil, recovery.ErrCorrupt
	}
	out := make(map[transport.ProcessID]*clientWindow, n)
	for i := 0; i < n; i++ {
		c := transport.ProcessID(binary.LittleEndian.Uint32(buf[:4]))
		out[c] = newClientWindow(binary.LittleEndian.Uint64(buf[4:12]))
		buf = buf[12:]
	}
	return out, nil
}

// NewReplica starts a replica: it restores the recovered checkpoint into
// the state machine, joins and subscribes the node, and begins executing.
func NewReplica(cfg ReplicaConfig, recovered recovery.Checkpoint) (*Replica, error) {
	if cfg.Node == nil || cfg.SM == nil {
		return nil, errors.New("smr: Node and SM are required")
	}
	r := &Replica{
		cfg:      cfg,
		tr:       cfg.Transport,
		dedup:    make(map[transport.ProcessID]*clientWindow),
		safeVec:  make(recovery.Vector),
		runKeys:  make(map[cmdKey]struct{}),
		ckptKick: make(chan struct{}, 1),
		ckptDone: make(chan struct{}),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
		readWait: metrics.NewHistogram(),
	}
	r.batchSM, _ = cfg.SM.(BatchExecutor)
	r.snapSM, _ = cfg.SM.(SnapshotCapturer)
	if cx, ok := cfg.SM.(ConflictExecutor); ok && (cfg.ExecWorkers >= 2 || cfg.ExecWorkers < 0) {
		r.applier = NewApplier(cx, cfg.ExecWorkers)
	}
	groups := cfg.Groups
	if len(recovered.State) > 0 {
		cur, dedup, snap, err := decodeStateParts(recovered.State)
		if err != nil {
			return nil, fmt.Errorf("smr: corrupt recovered checkpoint: %w", err)
		}
		if err := cfg.SM.Restore(snap); err != nil {
			return nil, fmt.Errorf("smr: restore snapshot: %w", err)
		}
		if r.dedup, err = decodeDedup(dedup); err != nil {
			return nil, fmt.Errorf("smr: corrupt recovered dedup table: %w", err)
		}
		r.safeVec = recovered.Vector.Clone()
		r.safeEpoch = cur.Epoch
		r.epoch = cur.Epoch
		// The checkpointed cursor records the subscription in force when
		// it was taken — including epoch transitions applied since the
		// replica was configured. Restoring it (rather than cfg.Groups)
		// is what lets a killed replica come back with its post-split
		// group set.
		if len(cur.Groups) > 0 {
			groups = append([]transport.RingID(nil), cur.Groups...)
		}
		// Re-persist locally so our own store has what we installed.
		if cfg.Checkpoints != nil {
			if err := cfg.Checkpoints.Save(recovered); err != nil {
				return nil, fmt.Errorf("smr: persist recovered checkpoint: %w", err)
			}
		}
	} else if len(recovered.Vector) > 0 {
		r.safeVec = recovered.Vector.Clone()
	}
	r.cfg.Groups = groups
	for _, g := range groups {
		if err := cfg.Node.Join(g); err != nil {
			return nil, fmt.Errorf("smr: join group %d: %w", g, err)
		}
	}
	// Keep the checkpoint cadence: one delivery batch must not span more
	// than one checkpoint interval.
	if cfg.CheckpointEvery > 0 {
		cfg.Node.LimitBatch(cfg.CheckpointEvery)
	}
	cfg.Node.SetBatchBoundary(r.noteBoundary)
	if err := cfg.Node.SubscribeBatch(r.deliverBatch, groups...); err != nil {
		return nil, fmt.Errorf("smr: subscribe: %w", err)
	}
	// Seed the applied vector with the subscription's start positions so
	// read-index coverage checks know which groups this replica serves
	// even before the first batch boundary (noteBoundary merges maxima,
	// so a boundary that already fired is never regressed).
	seed := cfg.Node.DeliveredVector()
	r.readMu.Lock()
	if r.appliedVec == nil {
		r.appliedVec = seed
	} else {
		for g, k := range seed {
			if k > r.appliedVec[g] {
				r.appliedVec[g] = k
			} else if _, ok := r.appliedVec[g]; !ok {
				r.appliedVec[g] = k
			}
		}
	}
	r.readMu.Unlock()
	go r.checkpointWriter()
	go r.serviceLoop()
	return r, nil
}

// deliverBatch executes one batch of delivered commands; it runs on the
// merge goroutine, so state machine access is single-threaded and the
// whole pass — duplicate suppression, execution (through the state
// machine's batch entry point when it has one) and checkpoint accounting
// — touches only merge-owned state, lock-free. Client responses are
// flushed together after execution.
//
// Ownership: d.Data may alias pooled buffers the core releases when this
// handler returns, so everything here — decode, execute, reply flush —
// happens synchronously inside the call, and nothing (state machine
// input, dedup-window responses, respBuf payloads) retains a slice of
// d.Data past it. A state machine that wants to keep command bytes must
// copy them.
//
//lint:deterministic
func (r *Replica) deliverBatch(ds []core.Delivery) {
	// Local reads are shut out for the duration: parallel apply commits
	// runs out of delivery order, so mid-batch states are not prefixes
	// of the delivered order.
	r.applyGate.Lock()
	r.respBuf = r.respBuf[:0]
	executed := 0

	for _, d := range ds {
		cmd, err := DecodeCommand(d.Data)
		if err != nil {
			continue // not a command (foreign traffic on a shared group)
		}
		w := r.dedup[cmd.Client]
		if w == nil {
			w = newClientWindow(0)
			r.dedup[cmd.Client] = w
		}
		key := cmdKey{cmd.Client, cmd.Seq}
		if _, pending := r.runKeys[key]; pending {
			// The same command appears twice in one batch: settle the
			// run so the window exposes the first occurrence's result
			// and the repeat is suppressed as the duplicate it is.
			executed += r.flushRun()
		}
		dup, resp := w.check(cmd.Seq)
		if dup {
			r.appendResp(cmd, d.Group, resp)
			continue
		}
		r.runKeys[key] = struct{}{}
		r.runGroups = append(r.runGroups, d.Group)
		r.runOps = append(r.runOps, cmd.Op)
		r.runWins = append(r.runWins, w)
		r.runSeqs = append(r.runSeqs, cmd.Seq)
		idx := r.appendResp(cmd, d.Group, nil)
		r.runResp = append(r.runResp, idx)
		if r.cfg.Tracer != nil && d.Trace.Sampled() {
			r.cfg.Tracer.Add(d.Trace, "apply", uint32(d.Group), d.Instance, d.ValueID, time.Now(), 0) //lint:allow determinism trace telemetry only: the span timestamp feeds the trace recorder, never replicated state
			if idx >= 0 {
				// Ride the context back on the reply frame so the trace
				// spans the full round trip on the wire as well.
				r.respBuf[idx].Traces = []transport.TraceRef{{ValueID: d.ValueID, Ctx: d.Trace}}
			}
		}
	}
	executed += r.flushRun()
	r.executed += uint64(executed)
	r.sinceCkpt += executed
	takeCkpt := r.cfg.CheckpointEvery > 0 && r.sinceCkpt >= r.cfg.CheckpointEvery
	if takeCkpt {
		// Carry the overshoot: a checkpoint is taken at the first
		// batch boundary after each interval. One oversized batch
		// (a packed instance can exceed LimitBatch) yields a single
		// checkpoint — taking several at the same boundary would
		// snapshot identical state.
		r.sinceCkpt %= r.cfg.CheckpointEvery
	} else if r.cfg.CheckpointEvery > 0 && r.ckptRetry.Load() {
		// A previous durable write failed: retry at this batch boundary
		// instead of silently waiting out another full interval while
		// trim stays pinned at the stale safeVec.
		takeCkpt = true
	}
	if r.resubArmed.Load() {
		// An epoch transition is registered with the node; the merge cut
		// the marker batch right here if it fired. Checkpoint the
		// transition immediately so recovery — local or via a peer's
		// higher-epoch tuple — restores the new subscription instead of
		// replaying the marker unarmed.
		if cur := r.cfg.Node.MergeCursor(); cur.Epoch > r.epoch {
			r.epoch = cur.Epoch
			r.resubArmed.Store(false)
			takeCkpt = r.cfg.Checkpoints != nil
		}
	}

	if executed > 0 {
		r.executedTotal.Add(uint64(executed))
	}
	// Checkpoint at the batch boundary: DeliveredVector/MergeCursor
	// describe exactly the state after this batch (Section 5.2).
	if takeCkpt {
		r.checkpoint(nil)
	}
	r.applyGate.Unlock()
	// Flush the batch's client responses. Ring carries the delivery
	// group, Count the partition tag, so clients can both match
	// single-group commands and count distinct partitions on
	// multi-partition ones. Instance carries the post-batch delivered
	// high-water mark of the response's group: the client folds it into
	// its observed vector, which is exactly the requirement a read-index
	// local read later presents (read-your-writes).
	var vec recovery.Vector
	if len(r.respBuf) > 0 {
		vec = r.cfg.Node.DeliveredVector()
	}
	for i := range r.respBuf {
		r.respBuf[i].Instance = vec[r.respBuf[i].Ring]
		_ = r.tr.Send(r.respBuf[i].To, r.respBuf[i])
		r.respBuf[i] = transport.Message{} // release payload references
	}
}

// appendResp queues a client response for the batch flush and returns its
// index in respBuf (-1 when the replica has no transport). The destination
// rides in Message.To until Send stamps it.
func (r *Replica) appendResp(cmd Command, group transport.RingID, payload []byte) int {
	if r.tr == nil {
		return -1
	}
	r.respBuf = append(r.respBuf, transport.Message{
		Kind:    transport.KindResponse,
		To:      cmd.Client,
		Ring:    group,
		Count:   uint32(r.cfg.Partition),
		Seq:     cmd.Seq,
		Payload: payload,
	})
	return len(r.respBuf) - 1
}

// flushRun executes the pending run of dedup-cleared commands — through
// the state machine's batch entry point when available — records results
// in the client windows and fills the queued responses. Runs on the merge
// goroutine. Returns the number of commands executed.
func (r *Replica) flushRun() int {
	nrun := len(r.runOps)
	if nrun == 0 {
		return 0
	}
	if r.applier != nil && nrun > 1 {
		// Conflict-aware parallel apply: results come back positionally
		// in r.outBuf (reused across batches), byte-identical to
		// sequential execution.
		for len(r.outBuf) < nrun {
			r.outBuf = append(r.outBuf, nil)
		}
		out := r.outBuf[:nrun]
		r.applier.Apply(r.runGroups, r.runOps, out)
		for i := range out {
			r.settleRun(i, out[i])
			out[i] = nil // release result references
		}
	} else if r.batchSM != nil && nrun > 1 {
		for i, out := range r.batchSM.ExecuteBatch(r.runGroups, r.runOps) {
			r.settleRun(i, out)
		}
	} else {
		for i, op := range r.runOps {
			r.settleRun(i, r.cfg.SM.Execute(r.runGroups[i], op))
		}
	}
	r.runGroups = r.runGroups[:0]
	r.runOps = r.runOps[:0]
	r.runWins = r.runWins[:0]
	r.runSeqs = r.runSeqs[:0]
	r.runResp = r.runResp[:0]
	clear(r.runKeys)
	return nrun
}

// settleRun records one run entry's execution result.
func (r *Replica) settleRun(i int, out []byte) {
	r.runWins[i].record(r.runSeqs[i], out)
	if idx := r.runResp[i]; idx >= 0 {
		r.respBuf[idx].Payload = out
	}
}

// ckptCapture is everything the checkpoint writer needs, captured
// consistently at a batch boundary on the merge goroutine. Exactly one of
// snap/state is set: snap when the state machine supports cheap capture
// (serialization then runs on the writer), state when the full snapshot
// had to be serialized at capture time.
type ckptCapture struct {
	vector  recovery.Vector
	cursor  core.Cursor
	dedup   []byte
	snap    StateSnapshot
	state   []byte
	waiters []chan bool // signalled (buffered) once durably written or dropped
}

// checkpoint captures the state machine with its identifying tuple and
// merge cursor and hands the capture to the background writer. Runs on the
// merge goroutine at a batch boundary (inside deliverBatch), so vector,
// cursor and snapshot are mutually consistent (Section 5.2). With a
// SnapshotCapturer state machine the blocking part is an O(1) root capture
// plus the (small) dedup encoding — microseconds, independent of state
// size; serialization, CRC and the durable write all happen off the
// delivery path. safeVec advances only on the writer's durability ack, so
// trim never outruns a checkpoint that is actually on disk.
func (r *Replica) checkpoint(waiter chan bool) {
	if r.cfg.Checkpoints == nil {
		if waiter != nil {
			waiter <- false
		}
		return
	}
	start := time.Now() //lint:allow determinism checkpoint-stall telemetry only: the duration feeds a local gauge, never replicated state or checkpoint bytes
	r.ckptRetry.Store(false)
	c := &ckptCapture{
		vector: r.cfg.Node.DeliveredVector(),
		cursor: r.cfg.Node.MergeCursor(),
		dedup:  encodeDedup(r.dedup), // merge-goroutine-owned state
	}
	if waiter != nil {
		c.waiters = append(c.waiters, waiter)
	}
	if r.snapSM != nil {
		c.snap = r.snapSM.CaptureSnapshot()
	} else {
		c.state = r.cfg.SM.Snapshot()
	}
	if r.cfg.SyncCheckpoints {
		r.writeCheckpoint(c) // legacy blocking path, for comparison only
	} else {
		r.enqueueCheckpoint(c)
	}
	r.noteStall(time.Since(start)) //lint:allow determinism checkpoint-stall telemetry only: the duration feeds a local gauge, never replicated state or checkpoint bytes
}

// enqueueCheckpoint parks a capture for the writer, coalescing: if an
// older capture is still waiting, the newer one supersedes it (at most one
// pending), carrying the old capture's waiters since they will be acked by
// an at-least-as-new durable checkpoint.
func (r *Replica) enqueueCheckpoint(c *ckptCapture) {
	r.ckptMu.Lock()
	if prev := r.ckptPending; prev != nil {
		c.waiters = append(c.waiters, prev.waiters...)
		if prev.snap != nil {
			releaseSnapshot(prev.snap)
		}
		r.coalesced.Add(1)
	}
	r.ckptPending = c
	r.ckptMu.Unlock()
	select {
	case r.ckptKick <- struct{}{}:
	default:
	}
}

// writeCheckpoint serializes and durably persists one capture, advancing
// safeVec on success. On failure it arms the retry flag so the next batch
// boundary re-captures instead of waiting out a full interval.
func (r *Replica) writeCheckpoint(c *ckptCapture) {
	ok := false
	defer func() {
		for _, w := range c.waiters {
			w <- ok
		}
	}()
	snap := c.state
	if c.snap != nil {
		snap = c.snap.Serialize()
		releaseSnapshot(c.snap)
	}
	state := encodeStateParts(c.cursor, c.dedup, snap)
	if err := r.cfg.Checkpoints.Save(recovery.Checkpoint{Vector: c.vector, State: state}); err != nil {
		r.ckptRetry.Store(true)
		return // keep serving; trim just cannot advance yet
	}
	r.mu.Lock()
	if c.cursor.Epoch > r.safeEpoch ||
		(c.cursor.Epoch == r.safeEpoch && recovery.Compare(c.vector, r.safeVec) > 0) {
		r.safeVec = c.vector.Clone()
		r.safeEpoch = c.cursor.Epoch
	}
	r.mu.Unlock()
	r.checkpoints.Add(1)
}

// checkpointWriter is the dedicated background goroutine that turns
// captures into durable checkpoints, one at a time.
func (r *Replica) checkpointWriter() {
	defer close(r.ckptDone)
	defer func() {
		// Fail any capture still parked at shutdown so waiters unblock
		// and pinned resources release.
		r.ckptMu.Lock()
		c := r.ckptPending
		r.ckptPending = nil
		r.ckptMu.Unlock()
		if c != nil {
			if c.snap != nil {
				releaseSnapshot(c.snap)
			}
			for _, w := range c.waiters {
				w <- false
			}
		}
	}()
	for {
		select {
		case <-r.done:
			return
		case <-r.ckptKick:
			for {
				r.ckptMu.Lock()
				c := r.ckptPending
				r.ckptPending = nil
				r.ckptMu.Unlock()
				if c == nil {
					break
				}
				r.writeCheckpoint(c)
			}
		}
	}
}

// noteStall records the time a checkpoint blocked the delivery goroutine
// (capture only on the async path; capture+serialize+write when
// SyncCheckpoints).
func (r *Replica) noteStall(d time.Duration) {
	for {
		cur := r.ckptStallNs.Load()
		if int64(d) <= cur || r.ckptStallNs.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// CheckpointStallMax reports the longest delivery stall a checkpoint has
// caused since start (instrumentation for cmd/bench -ckpt).
func (r *Replica) CheckpointStallMax() time.Duration {
	return time.Duration(r.ckptStallNs.Load())
}

// CheckpointsCoalesced reports captures superseded before being written
// (instrumentation).
func (r *Replica) CheckpointsCoalesced() uint64 { return r.coalesced.Load() }

// ForceCheckpoint takes a checkpoint outside the delivery path and waits
// for it to be durable; used by services that checkpoint on a timer while
// idle. It is only safe when no command is concurrently executing (the
// caller pauses traffic), so it is primarily for tests and controlled
// experiments.
func (r *Replica) ForceCheckpoint() {
	if r.cfg.Checkpoints == nil {
		return
	}
	if r.cfg.SyncCheckpoints {
		r.checkpoint(nil)
		return
	}
	w := make(chan bool, 1)
	// The apply gate's read side keeps the capture off a mid-batch
	// state: delivery holds the write side across each batch, so the
	// capture waits for a batch boundary (and dedup state is stable).
	r.applyGate.RLock()
	r.checkpoint(w)
	r.applyGate.RUnlock()
	select {
	case <-w:
	case <-r.done:
	}
}

// serviceLoop answers trim and recovery RPCs.
func (r *Replica) serviceLoop() {
	defer close(r.loopDone)
	for {
		select {
		case <-r.done:
			return
		case m, ok := <-r.cfg.Service:
			if !ok {
				return
			}
			r.handleService(m)
		}
	}
}

func (r *Replica) handleService(m transport.Message) {
	switch m.Kind {
	case transport.KindSafeReq:
		// Trim protocol: report k[x]p, the group's instance in our
		// last durable checkpoint (Section 5.2, Predicate 2).
		r.mu.Lock()
		k := r.safeVec[m.Ring]
		r.mu.Unlock()
		if r.tr != nil {
			_ = r.tr.Send(m.From, transport.Message{
				Kind:     transport.KindSafeResp,
				Ring:     m.Ring,
				Instance: k,
			})
		}
	case transport.KindCheckpointReq:
		r.mu.Lock()
		vec := r.safeVec.Clone()
		epoch := r.safeEpoch
		r.mu.Unlock()
		if r.tr != nil {
			// The subscription epoch rides after the vector so the
			// recovering peer can rank tuples across reconfigurations.
			payload := recovery.EncodeVector(vec)
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], epoch)
			_ = r.tr.Send(m.From, transport.Message{
				Kind:    transport.KindCheckpointResp,
				Seq:     m.Seq,
				Payload: append(payload, tmp[:]...),
			})
		}
	case transport.KindSnapshotReq:
		if r.cfg.Checkpoints == nil || r.tr == nil {
			return
		}
		cp, ok := r.cfg.Checkpoints.Latest()
		if !ok {
			return
		}
		// Stream the checkpoint in bounded chunks; a monolithic frame
		// cannot carry states past the transport frame cap.
		sendSnapshotChunks(r.tr, m.From, m.Seq, cp.Encode())
	case transport.KindLocalRead:
		// Local reads run on their own goroutine: a read-index wait can
		// park until delivery covers the requirement, and the service
		// loop must keep answering trim and recovery RPCs meanwhile.
		go r.serveLocalRead(m)
	case transport.KindReconfigPrepare:
		// Reconfiguration handshake: arm the epoch transition before the
		// controller multicasts the marker, and ack so the controller
		// knows every learner will cut at the same point. Count 1 is the
		// abort path: disarm a prepared transition whose marker will
		// never be multicast.
		if m.Count == 1 {
			if r.cfg.Node.CancelResubscribe(m.Instance) {
				r.resubArmed.Store(false)
			}
			return
		}
		groups, err := DecodeRingIDs(m.Payload)
		if err == nil {
			err = r.Resubscribe(m.Instance, groups...)
		}
		if r.tr != nil {
			ack := transport.Message{Kind: transport.KindReconfigAck, Seq: m.Seq}
			if err != nil {
				ack.Instance = 1
				ack.Payload = []byte(err.Error())
			}
			_ = r.tr.Send(m.From, ack)
		}
	default:
		if r.cfg.ServiceHook != nil {
			r.cfg.ServiceHook(m)
		}
	}
}

// Resubscribe arms an epoch transition: the replica joins any groups it
// has not joined yet and registers the marker with the node; when the
// merge delivers the marker value the subscription switches to groups and
// the transition is checkpointed at that exact batch boundary. Safe to
// call from the service goroutine (the reconfig prepare RPC) or from
// application code.
func (r *Replica) Resubscribe(marker uint64, groups ...transport.RingID) error {
	if len(groups) == 0 {
		return errors.New("smr: empty resubscription")
	}
	for _, g := range groups {
		if err := r.cfg.Node.Join(g); err != nil {
			return fmt.Errorf("smr: join group %d: %w", g, err)
		}
	}
	if err := r.cfg.Node.PrepareResubscribe(marker, groups...); err != nil {
		return err
	}
	r.resubArmed.Store(true)
	return nil
}

// Halted reports whether this replica's delivery has stopped prematurely
// — one of its subscribed rings terminated its delivery stream (e.g. the
// learner fell so far behind that its catch-up range was trimmed from
// every acceptor) and the deterministic merge exited. The replica keeps
// answering service RPCs but executes nothing further; recover it via a
// restart (BuildNode performs the Section 5.2 checkpoint transfer).
func (r *Replica) Halted() (transport.RingID, bool) {
	return r.cfg.Node.MergeHalted()
}

// Epoch reports the subscription epoch of the last durable checkpoint.
func (r *Replica) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.safeEpoch
}

// Subscription reports the node's current subscribed groups (ascending).
func (r *Replica) Subscription() []transport.RingID {
	return r.cfg.Node.Subscription()
}

// CoreNode exposes the replica's consensus node (diagnostics: ring
// stats, merge stalls, WAL health).
func (r *Replica) CoreNode() *core.Node { return r.cfg.Node }

// ResubscribeStallMax reports the longest an epoch transition blocked the
// node's merge goroutine (instrumentation for cmd/bench -reconfig).
func (r *Replica) ResubscribeStallMax() time.Duration {
	return r.cfg.Node.ResubscribeStallMax()
}

// EncodeRingIDs serializes a group list for reconfiguration RPC payloads.
//
//lint:deterministic
func EncodeRingIDs(ids []transport.RingID) []byte {
	buf := make([]byte, 4, 4+4*len(ids))
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(ids)))
	var tmp [4]byte
	for _, g := range ids {
		binary.LittleEndian.PutUint32(tmp[:], uint32(g))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// DecodeRingIDs parses EncodeRingIDs output.
func DecodeRingIDs(buf []byte) ([]transport.RingID, error) {
	if len(buf) < 4 {
		return nil, recovery.ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(buf[:4]))
	buf = buf[4:]
	if len(buf) != 4*n {
		return nil, recovery.ErrCorrupt
	}
	out := make([]transport.RingID, n)
	for i := range out {
		out[i] = transport.RingID(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return out, nil
}

// SeedCheckpoint builds the checkpoint a freshly split-off partition
// replica boots from: the transferred state snapshot under the new
// subscription at the given epoch, delivery starting at each group's
// first instance, with an empty duplicate-suppression table.
func SeedCheckpoint(groups []transport.RingID, epoch uint64, snap []byte) recovery.Checkpoint {
	sorted := append([]transport.RingID(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	vec := make(recovery.Vector, len(sorted))
	for _, g := range sorted {
		vec[g] = 0
	}
	cur := core.Cursor{Groups: sorted, Credits: make([]uint64, len(sorted)), Epoch: epoch}
	return recovery.Checkpoint{Vector: vec, State: encodeStateParts(cur, encodeDedup(nil), snap)}
}

// ExecutedCount reports commands executed (excluding duplicates).
func (r *Replica) ExecutedCount() uint64 { return r.executedTotal.Load() }

// CheckpointCount reports checkpoints taken since start.
func (r *Replica) CheckpointCount() uint64 { return r.checkpoints.Load() }

// SafeVector returns the tuple of the last durable checkpoint.
func (r *Replica) SafeVector() recovery.Vector {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.safeVec.Clone()
}

// Stop halts the replica, its checkpoint writer and its node. The node
// stops first — Node.Stop joins the merge goroutine — so no capture can
// be enqueued after the checkpoint writer drains and every capture is
// written or released exactly once.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() {
		r.cfg.Node.Stop()
		close(r.done)
		<-r.loopDone
		<-r.ckptDone
		if r.applier != nil {
			r.applier.Close()
		}
	})
}

// Applier exposes the parallel-apply scheduler for instrumentation (nil
// when the replica executes sequentially).
func (r *Replica) Applier() *Applier { return r.applier }
