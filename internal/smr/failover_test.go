package smr

import (
	"encoding/binary"
	"testing"
	"time"

	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/transport"
)

// coordClient builds a second client wired with the coordination service,
// so submissions ride out coordinator failover.
func (h *smrHarness) coordClient(t *testing.T, id transport.ProcessID) *Client {
	t.Helper()
	tr := h.net.Attach(id, netem.SiteLocal)
	router := transport.NewRouter(tr)
	node, err := core.New(core.Config{Self: id, Router: router, Coord: h.svc})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{Self: id, Node: node, Transport: tr, Service: router.Service(), Coord: h.svc})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		node.Stop()
	})
	return cl
}

// TestClientReroutesOnReelection: a proposal in flight to a crashed
// coordinator must be re-routed to the newly elected one as soon as the
// configuration changes — well before the retry-timer backstop (timeout/4)
// would fire.
func TestClientReroutesOnReelection(t *testing.T) {
	h := newSMRHarness(t, 0)
	cl := h.coordClient(t, 11)

	// Warm up through the original coordinator (replica 1).
	if _, err := cl.Submit([]transport.RingID{1}, addOp(1), []transport.RingID{1}, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Crash the coordinator process without telling anyone.
	h.net.Detach(1)
	h.replicas[1].Stop()

	type result struct {
		total uint64
		err   error
	}
	done := make(chan result, 1)
	const timeout = 30 * time.Second // retry backstop at 7.5s: re-route must beat it
	go func() {
		resps, err := cl.Submit([]transport.RingID{1}, addOp(2), []transport.RingID{1}, 1, timeout)
		if err != nil {
			done <- result{0, err}
			return
		}
		done <- result{binary.LittleEndian.Uint64(resps[0]), nil}
	}()

	// Let the proposal go to the dead coordinator, then "detect" the crash.
	time.Sleep(300 * time.Millisecond)
	reelected := time.Now()
	h.svc.MarkDown(1)

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("submit during failover: %v", r.err)
		}
		if el := time.Since(reelected); el > 3*time.Second {
			t.Fatalf("re-route took %v, want watch-driven (< 3s, not the 7.5s retry backstop)", el)
		}
		if r.total != 3 {
			t.Fatalf("total = %d, want 3", r.total)
		}
	case <-time.After(timeout + time.Second):
		t.Fatal("submit never completed after re-election")
	}
}

// TestClientToleratesNoCoordinatorWindow: while no coordinator exists at
// all, a Coord-wired client must wait instead of surfacing
// ErrNoCoordinator, and complete once one is elected.
func TestClientToleratesNoCoordinatorWindow(t *testing.T) {
	h := newSMRHarness(t, 0)
	cl := h.coordClient(t, 11)

	if _, err := cl.Submit([]transport.RingID{1}, addOp(1), []transport.RingID{1}, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Take every acceptor out: Coordinator becomes 0.
	for _, id := range replicaIDs() {
		h.svc.MarkDown(id)
	}
	if cfg, _ := h.svc.Ring(1); cfg.Coordinator != 0 {
		t.Fatalf("want no coordinator, got %d", cfg.Coordinator)
	}

	done := make(chan error, 1)
	go func() {
		_, err := cl.Submit([]transport.RingID{1}, addOp(2), []transport.RingID{1}, 1, 30*time.Second)
		done <- err
	}()

	// The old behaviour failed here instantly with ErrNoCoordinator.
	select {
	case err := <-done:
		t.Fatalf("submit gave up during the no-coordinator window: %v", err)
	case <-time.After(300 * time.Millisecond):
	}

	// Restore a quorum; the watcher should re-send promptly.
	h.svc.MarkUp(2)
	h.svc.MarkUp(3)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("submit after re-election: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("submit never completed after the quorum returned")
	}
}
