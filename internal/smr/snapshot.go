package smr

import (
	"hash/crc32"

	"amcast/internal/recovery"
	"amcast/internal/transport"
)

// snapshotChunkSize bounds one chunked-transfer payload. It is kept far
// below transport's 64 MB frame cap so a multi-gigabyte checkpoint streams
// as many small frames instead of one monolithic KindSnapshotResp-style
// message that could never fit a frame (and would previously fail recovery
// silently). Variable so tests can force multi-chunk transfers with small
// states.
var snapshotChunkSize = 256 << 10

// SendChunked streams an encoded blob to a peer as chunked frames of the
// given kind (KindSnapshotChunk for checkpoints, KindRangeChunk for
// partition-split range transfers). Each frame carries the request Seq,
// its chunk index (Votes), the chunk count (Count), the byte offset
// (Instance), the total encoded size (Value.ID) and the CRC of the full
// encoding (Ballot), so the receiver can reassemble and verify before
// decoding.
func SendChunked(tr transport.Transport, to transport.ProcessID, kind transport.Kind, seq uint64, enc []byte) {
	crc := crc32.ChecksumIEEE(enc)
	total := (len(enc) + snapshotChunkSize - 1) / snapshotChunkSize
	if total == 0 {
		total = 1
	}
	for i := 0; i < total; i++ {
		off := i * snapshotChunkSize
		end := off + snapshotChunkSize
		if end > len(enc) {
			end = len(enc)
		}
		if tr.Send(to, transport.Message{
			Kind:     kind,
			Seq:      seq,
			Instance: uint64(off),
			Count:    uint32(total),
			Votes:    uint32(i),
			Ballot:   crc,
			Value:    transport.Value{ID: uint64(len(enc))},
			Payload:  enc[off:end],
		}) != nil {
			return // link down; the peer's fetch deadline handles it
		}
	}
}

// sendSnapshotChunks streams an encoded checkpoint to a recovering peer.
func sendSnapshotChunks(tr transport.Transport, to transport.ProcessID, seq uint64, enc []byte) {
	SendChunked(tr, to, transport.KindSnapshotChunk, seq, enc)
}

// Assembly sanity caps: the claimed transfer size and chunk count come
// from a peer's frame, so a corrupt first chunk must not drive the
// allocations below — reject absurd framing and fall back to the local
// checkpoint instead of attempting a multi-terabyte make.
const (
	maxSnapshotTransfer uint64 = 16 << 30 // bytes of reassembled checkpoint
	maxSnapshotChunks          = 1 << 20
)

// ChunkAssembly reassembles a chunked transfer (the receive side of
// SendChunked). Recovery uses it for checkpoint fetches; the reconfig
// controller reuses it verbatim for CRC-verified range transfers.
type ChunkAssembly struct {
	buf  []byte
	got  []bool
	left int
	crc  uint32
}

// NewChunkAssembly sizes an assembly from the first chunk's framing.
// Returns nil if the framing is nonsensical.
func NewChunkAssembly(m transport.Message) *ChunkAssembly {
	total := int(m.Count)
	size64 := m.Value.ID
	// The int round-trip additionally rejects sizes past the platform's
	// address space (32-bit builds cap below maxSnapshotTransfer).
	if total < 1 || total > maxSnapshotChunks || size64 > maxSnapshotTransfer ||
		uint64(int(size64)) != size64 || size64 > 0 && uint64(total) > size64 {
		return nil
	}
	size := int(size64)
	return &ChunkAssembly{
		buf:  make([]byte, size),
		got:  make([]bool, total),
		left: total,
		crc:  m.Ballot,
	}
}

// Add incorporates one chunk. It returns done=true once every chunk has
// arrived and the reassembled bytes pass the transfer CRC; a non-nil error
// reports an inconsistent or corrupt transfer (the caller falls back or
// aborts).
func (a *ChunkAssembly) Add(m transport.Message) (done bool, err error) {
	idx := int(m.Votes)
	if idx < 0 || idx >= len(a.got) || m.Ballot != a.crc || m.Value.ID != uint64(len(a.buf)) {
		return false, recovery.ErrCorrupt
	}
	if m.Instance > uint64(len(a.buf)) {
		return false, recovery.ErrCorrupt
	}
	off := int(m.Instance)
	if off+len(m.Payload) > len(a.buf) {
		return false, recovery.ErrCorrupt
	}
	if a.got[idx] {
		return false, nil // duplicate frame (retransmission); ignore
	}
	copy(a.buf[off:], m.Payload)
	a.got[idx] = true
	a.left--
	if a.left > 0 {
		return false, nil
	}
	if crc32.ChecksumIEEE(a.buf) != a.crc {
		return true, recovery.ErrCorrupt
	}
	return true, nil
}

// Bytes returns the reassembled transfer; valid only after Add reported
// done with a nil error.
func (a *ChunkAssembly) Bytes() []byte { return a.buf }
