package smr

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"amcast/internal/coord"
	"amcast/internal/core"
	"amcast/internal/netem"
	"amcast/internal/recovery"
	"amcast/internal/storage"
	"amcast/internal/transport"
)

// counterSM is a trivial state machine: ops are "add <n>" encoded as 8
// bytes; the response is the running total. Snapshot/Restore serialize the
// counter, padded with pad zero bytes so tests can inflate the state to
// exercise multi-chunk snapshot transfers.
type counterSM struct {
	mu    sync.Mutex
	total uint64
	pad   int
	log   []uint64 // applied values, for order checks
}

func addOp(n uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], n)
	return b[:]
}

func (c *counterSM) Execute(_ transport.RingID, op []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := binary.LittleEndian.Uint64(op)
	c.total += n
	c.log = append(c.log, n)
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], c.total)
	return out[:]
}

func (c *counterSM) Snapshot() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]byte, 8+c.pad)
	binary.LittleEndian.PutUint64(out[:8], c.total)
	return out
}

func (c *counterSM) Restore(snap []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total = binary.LittleEndian.Uint64(snap)
	c.log = nil
	return nil
}

func (c *counterSM) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// smrHarness wires one partition (ring 1) with three replica processes
// (ids 1..3) and one client process (id 10).
type smrHarness struct {
	t        *testing.T
	net      *transport.Network
	svc      *coord.Service
	pad      int // snapshot padding, to force multi-chunk transfers
	replicas map[transport.ProcessID]*Replica
	sms      map[transport.ProcessID]*counterSM
	stores   map[transport.ProcessID]*recovery.MemStore
	client   *Client
}

func replicaIDs() []transport.ProcessID { return []transport.ProcessID{1, 2, 3} }

func newSMRHarness(t *testing.T, checkpointEvery int) *smrHarness {
	return newSMRHarnessPad(t, checkpointEvery, 0)
}

func newSMRHarnessPad(t *testing.T, checkpointEvery, pad int) *smrHarness {
	t.Helper()
	h := &smrHarness{
		t:        t,
		net:      transport.NewNetwork(nil),
		svc:      coord.NewService(),
		pad:      pad,
		replicas: make(map[transport.ProcessID]*Replica),
		sms:      make(map[transport.ProcessID]*counterSM),
		stores:   make(map[transport.ProcessID]*recovery.MemStore),
	}
	var members []coord.Member
	for _, id := range replicaIDs() {
		members = append(members, coord.Member{ID: id, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner})
	}
	if err := h.svc.CreateRing(1, members); err != nil {
		t.Fatal(err)
	}
	for _, id := range replicaIDs() {
		h.stores[id] = recovery.NewMemStore()
		h.startReplica(id, checkpointEvery, 0)
	}
	// Client process.
	tr := h.net.Attach(10, netem.SiteLocal)
	router := transport.NewRouter(tr)
	node, err := core.New(core.Config{Self: 10, Router: router, Coord: h.svc})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClient(ClientConfig{Self: 10, Node: node, Transport: tr, Service: router.Service()})
	if err != nil {
		t.Fatal(err)
	}
	h.client = cl
	t.Cleanup(func() {
		cl.Close()
		node.Stop()
		for _, r := range h.replicas {
			r.Stop()
		}
		h.net.Close()
	})
	return h
}

// startReplica boots (or re-boots) replica id. recoveryTimeout > 0 enables
// peer recovery.
func (h *smrHarness) startReplica(id transport.ProcessID, checkpointEvery int, recoveryTimeout time.Duration) {
	h.t.Helper()
	tr := h.net.Attach(id, netem.SiteLocal)
	router := transport.NewRouter(tr)
	var peers []transport.ProcessID
	for _, p := range replicaIDs() {
		if p != id {
			peers = append(peers, p)
		}
	}
	opts := RecoveryOptions{
		Core: core.Config{
			Self:   id,
			Router: router,
			Coord:  h.svc,
			Ring:   core.RingOptions{RetryInterval: 30 * time.Millisecond},
		},
		Store:   h.stores[id],
		Service: router.Service(),
		Timeout: recoveryTimeout,
	}
	if recoveryTimeout > 0 {
		opts.Peers = peers
	}
	built, err := BuildNode(opts)
	if err != nil {
		h.t.Fatal(err)
	}
	sm := &counterSM{pad: h.pad}
	rep, err := NewReplica(ReplicaConfig{
		Self:            id,
		Partition:       1,
		Groups:          []transport.RingID{1},
		Peers:           peers,
		Node:            built.Node,
		Transport:       tr,
		Service:         router.Service(),
		SM:              sm,
		Checkpoints:     h.stores[id],
		CheckpointEvery: checkpointEvery,
	}, built.Checkpoint)
	if err != nil {
		h.t.Fatal(err)
	}
	h.replicas[id] = rep
	h.sms[id] = sm
}

func (h *smrHarness) submit(n uint64) uint64 {
	h.t.Helper()
	resps, err := h.client.Submit([]transport.RingID{1}, addOp(n), []transport.RingID{1}, 1, 5*time.Second)
	if err != nil {
		h.t.Fatalf("submit: %v", err)
	}
	return binary.LittleEndian.Uint64(resps[0])
}

func TestCommandRoundTrip(t *testing.T) {
	c := Command{Client: 7, Seq: 99, Op: []byte("operation")}
	got, err := DecodeCommand(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Client != 7 || got.Seq != 99 || string(got.Op) != "operation" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := DecodeCommand([]byte{1}); err == nil {
		t.Error("short command accepted")
	}
}

func TestClientWindow(t *testing.T) {
	w := newClientWindow(0)
	if dup, _ := w.check(1); dup {
		t.Error("fresh seq reported dup")
	}
	w.record(1, []byte("r1"))
	if dup, resp := w.check(1); !dup || string(resp) != "r1" {
		t.Error("recorded seq not dup or lost response")
	}
	// Out of order: 3 before 2.
	w.record(3, []byte("r3"))
	if w.floor != 1 {
		t.Errorf("floor = %d, want 1", w.floor)
	}
	if dup, _ := w.check(2); dup {
		t.Error("unexecuted seq 2 reported dup")
	}
	w.record(2, []byte("r2"))
	if w.floor != 3 {
		t.Errorf("floor = %d, want 3 after gap fill", w.floor)
	}
	if dup, resp := w.check(3); !dup || string(resp) != "r3" {
		t.Error("seq 3 lost after floor advance")
	}
}

func TestExecuteAndRespond(t *testing.T) {
	h := newSMRHarness(t, 0)
	if got := h.submit(5); got != 5 {
		t.Errorf("response = %d, want 5", got)
	}
	if got := h.submit(7); got != 12 {
		t.Errorf("response = %d, want 12", got)
	}
}

func TestAllReplicasConverge(t *testing.T) {
	h := newSMRHarness(t, 0)
	var want uint64
	for i := uint64(1); i <= 50; i++ {
		h.submit(i)
		want += i
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, id := range replicaIDs() {
		for h.sms[id].Total() != want && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if got := h.sms[id].Total(); got != want {
			t.Errorf("replica %d total = %d, want %d", id, got, want)
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	h := newSMRHarness(t, 0)
	h.submit(10)
	// Re-send the same command (same client, same seq) directly.
	tr := h.net.Attach(11, netem.SiteLocal)
	defer func() { _ = tr.Close() }()
	cmd := Command{Client: 10, Seq: 1, Op: addOp(10)}
	rc, _ := h.svc.Ring(1)
	_ = tr.Send(rc.Coordinator, transport.Message{
		Kind:  transport.KindProposal,
		Ring:  1,
		Value: transport.Value{ID: transport.MakeValueID(11, 1), Count: 1, Data: cmd.Encode()},
	})
	time.Sleep(300 * time.Millisecond)
	for _, id := range replicaIDs() {
		if got := h.sms[id].Total(); got != 10 {
			t.Errorf("replica %d total = %d after duplicate, want 10", id, got)
		}
	}
}

func TestCheckpointsTaken(t *testing.T) {
	h := newSMRHarness(t, 10)
	for i := 0; i < 25; i++ {
		h.submit(1)
	}
	// 25 commands at CheckpointEvery=10 capture checkpoints at two batch
	// boundaries. The background writer may coalesce bursts into fewer
	// durable writes, but every capture must be accounted for and the
	// safe vector must reach the newest captured boundary (instance 20+:
	// commands plus any skips keep it at least at the command count).
	deadline := time.Now().Add(5 * time.Second)
	for h.replicas[1].SafeVector()[1] < 20 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := h.replicas[1].CheckpointCount(); got < 1 {
		t.Errorf("durable checkpoints = %d, want >= 1", got)
	}
	if total := h.replicas[1].CheckpointCount() + h.replicas[1].CheckpointsCoalesced(); total < 2 {
		t.Errorf("captures accounted = %d, want >= 2", total)
	}
	vec := h.replicas[1].SafeVector()
	if vec[1] < 20 {
		t.Errorf("safe vector = %v, want group 1 >= 20", vec)
	}
	cp, ok := h.stores[1].Latest()
	if !ok {
		t.Fatal("no checkpoint in store")
	}
	if _, _, _, err := decodeStateParts(cp.State); err != nil {
		t.Errorf("stored checkpoint state corrupt: %v", err)
	}
}

func TestReplicaRecoveryLocalCheckpoint(t *testing.T) {
	h := newSMRHarness(t, 5)
	var want uint64
	for i := uint64(1); i <= 20; i++ {
		h.submit(i)
		want += i
	}
	// Wait for replica 3 to have executed everything, then crash it.
	deadline := time.Now().Add(5 * time.Second)
	for h.sms[3].Total() != want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	h.net.Detach(3)
	h.replicas[3].Stop()
	h.svc.MarkDown(3)

	// More traffic while replica 3 is down.
	for i := uint64(1); i <= 10; i++ {
		h.submit(100 + i)
		want += 100 + i
	}

	// Restart replica 3: local checkpoint + acceptor retransmission.
	h.svc.MarkUp(3)
	h.startReplica(3, 5, 0)
	deadline = time.Now().Add(10 * time.Second)
	for h.sms[3].Total() != want && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := h.sms[3].Total(); got != want {
		t.Errorf("recovered replica total = %d, want %d", got, want)
	}
}

func TestReplicaRecoveryRemoteCheckpoint(t *testing.T) {
	h := newSMRHarness(t, 5)
	var want uint64
	for i := uint64(1); i <= 20; i++ {
		h.submit(i)
		want += i
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.sms[3].Total() != want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	h.net.Detach(3)
	h.replicas[3].Stop()
	h.svc.MarkDown(3)
	// Discard replica 3's local checkpoints entirely: recovery must pull a
	// remote checkpoint from a peer (quorum Q_R).
	h.stores[3] = recovery.NewMemStore()

	for i := uint64(1); i <= 10; i++ {
		h.submit(200 + i)
		want += 200 + i
	}

	h.svc.MarkUp(3)
	h.startReplica(3, 5, 3*time.Second)
	deadline = time.Now().Add(10 * time.Second)
	for h.sms[3].Total() != want && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := h.sms[3].Total(); got != want {
		t.Errorf("remotely recovered replica total = %d, want %d", got, want)
	}
}

func TestTrimAfterCheckpoints(t *testing.T) {
	// End-to-end trim: replicas checkpoint, coordinator gathers safe
	// vectors, acceptors trim. Requires TrimInterval on rings.
	net := transport.NewNetwork(nil)
	defer net.Close()
	svc := coord.NewService()
	var members []coord.Member
	for _, id := range replicaIDs() {
		members = append(members, coord.Member{ID: id, Roles: coord.RoleProposer | coord.RoleAcceptor | coord.RoleLearner})
	}
	if err := svc.CreateRing(1, members); err != nil {
		t.Fatal(err)
	}
	logs := make(map[transport.ProcessID]*storage.MemLog)
	replicas := make(map[transport.ProcessID]*Replica)
	for _, id := range replicaIDs() {
		tr := net.Attach(id, netem.SiteLocal)
		router := transport.NewRouter(tr)
		log := storage.NewMemLog()
		logs[id] = log
		node, err := core.New(core.Config{
			Self: id, Router: router, Coord: svc,
			NewLog: func(transport.RingID) (storage.Log, error) { return log, nil },
			Ring:   core.RingOptions{RetryInterval: 30 * time.Millisecond, TrimInterval: 50 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := NewReplica(ReplicaConfig{
			Self: id, Partition: 1, Groups: []transport.RingID{1},
			Node: node, Transport: tr, Service: router.Service(),
			SM: &counterSM{}, Checkpoints: recovery.NewMemStore(), CheckpointEvery: 5,
		}, recovery.Checkpoint{})
		if err != nil {
			t.Fatal(err)
		}
		replicas[id] = rep
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()

	// Client.
	ctr := net.Attach(10, netem.SiteLocal)
	crouter := transport.NewRouter(ctr)
	cnode, err := core.New(core.Config{Self: 10, Router: crouter, Coord: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer cnode.Stop()
	cl, err := NewClient(ClientConfig{Self: 10, Node: cnode, Transport: ctr, Service: crouter.Service()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 30; i++ {
		if _, err := cl.Submit([]transport.RingID{1}, addOp(1), []transport.RingID{1}, 1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Eventually acceptor logs get trimmed.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if logs[1].FirstRetained() > 1 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("acceptor log never trimmed; firstRetained=%d", logs[1].FirstRetained())
}

func TestClientTimeout(t *testing.T) {
	h := newSMRHarness(t, 0)
	// Multicast to a ring that exists but whose members never respond to
	// this client: use an unknown group to force an immediate error, and
	// a blocked network to force a timeout.
	if _, err := h.client.Submit([]transport.RingID{99}, addOp(1), []transport.RingID{99}, 1, 200*time.Millisecond); err == nil {
		t.Error("submit to unknown group should fail")
	}
}

func TestConcurrentClients(t *testing.T) {
	h := newSMRHarness(t, 0)
	const workers = 8
	const perWorker = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := h.client.Submit([]transport.RingID{1}, addOp(1), []transport.RingID{1}, 1, 10*time.Second); err != nil {
					errs <- fmt.Errorf("submit: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := uint64(workers * perWorker)
	deadline := time.Now().Add(5 * time.Second)
	for h.sms[1].Total() != want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := h.sms[1].Total(); got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
}
